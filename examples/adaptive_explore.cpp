// Adaptive-join explorer: shows the machinery of §4 on a loaded graph —
// Algorithm 2 calibration for one property, the per-query
// sequential-vs-fallback decisions under each search strategy, and the
// simulated cache profile of binary search vs the ID-to-Position index
// for the same probe stream (the Table 6 measurement, on one query).
//
// Usage: adaptive_explore [universities]

#include <cstdio>
#include <cstdlib>

#include "common/strings.h"
#include "engine/parj_engine.h"
#include "join/calibration.h"
#include "join/trace_replay.h"
#include "workload/lubm.h"

int main(int argc, char** argv) {
  const int universities = argc > 1 ? std::atoi(argv[1]) : 1;
  parj::workload::GeneratedData data = parj::workload::GenerateLubm(
      {.universities = universities, .seed = 42});
  auto engine = parj::engine::ParjEngine::FromEncoded(std::move(data.dict),
                                                      std::move(data.triples));
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  const auto& db = engine->database();

  // ---- 1. Calibration (Algorithm 2) on the largest replica.
  const parj::storage::TableReplica* largest = nullptr;
  for (parj::PredicateId pid = 1; pid <= db.predicate_count(); ++pid) {
    const auto& so = db.entry(pid).table.so();
    if (largest == nullptr || so.key_count() > largest->key_count()) {
      largest = &so;
    }
  }
  std::printf("calibrating on the largest S-O key array (%s keys)...\n",
              parj::FormatCount(largest->key_count()).c_str());
  auto binary_cal = parj::join::CalibrateWindow(
      largest->keys(), parj::join::CalibrationMode::kVersusBinarySearch,
      nullptr);
  std::printf("  vs binary search: window %.0f positions -> value "
              "threshold %lld (after %d iterations)\n",
              binary_cal.window_positions,
              static_cast<long long>(binary_cal.threshold_value),
              binary_cal.iterations);

  // ---- 2. Adaptive decisions per strategy on a heavy query.
  const auto queries = parj::workload::LubmQueries();
  const auto& query = queries[8];  // LUBM9, the advisor/course triangle
  std::printf("\nquery %s decisions by strategy:\n", query.name.c_str());
  for (parj::join::SearchStrategy strategy :
       {parj::join::SearchStrategy::kBinary,
        parj::join::SearchStrategy::kAdaptiveBinary,
        parj::join::SearchStrategy::kIndex,
        parj::join::SearchStrategy::kAdaptiveIndex}) {
    parj::engine::QueryOptions opts;
    opts.strategy = strategy;
    opts.mode = parj::join::ResultMode::kCount;
    auto r = engine->Execute(query.sparql, opts);
    if (!r.ok()) return 1;
    std::printf("  %-9s %8s ms   #seq=%-12s #binary=%-10s #index=%s\n",
                parj::join::SearchStrategyName(strategy),
                parj::FormatMillis(r->total_millis()).c_str(),
                parj::FormatCount(r->counters.sequential_searches).c_str(),
                parj::FormatCount(r->counters.binary_searches).c_str(),
                parj::FormatCount(r->counters.index_lookups).c_str());
  }

  // ---- 3. Cache-model replay (Table 6 on one query).
  parj::engine::QueryOptions trace_opts;
  trace_opts.strategy = parj::join::SearchStrategy::kAdaptiveBinary;
  trace_opts.mode = parj::join::ResultMode::kCount;
  trace_opts.collect_probe_trace = true;
  auto traced = engine->Execute(query.sparql, trace_opts);
  if (!traced.ok()) return 1;
  auto binary = parj::join::ReplaySearchTrace(
      db, traced->plan, traced->trace,
      parj::join::SearchStrategy::kAdaptiveBinary);
  auto indexed = parj::join::ReplaySearchTrace(
      db, traced->plan, traced->trace,
      parj::join::SearchStrategy::kAdaptiveIndex);
  if (!binary.ok() || !indexed.ok()) return 1;
  std::printf("\nsimulated lookup cost for the same probe stream:\n");
  std::printf("  binary search:      %12s cycles  L1=%s L2=%s L3=%s misses\n",
              parj::FormatCount(binary->cache.cycles).c_str(),
              parj::FormatCount(binary->cache.l1_misses).c_str(),
              parj::FormatCount(binary->cache.l2_misses).c_str(),
              parj::FormatCount(binary->cache.l3_misses).c_str());
  std::printf("  ID-to-Position idx: %12s cycles  L1=%s L2=%s L3=%s misses\n",
              parj::FormatCount(indexed->cache.cycles).c_str(),
              parj::FormatCount(indexed->cache.l1_misses).c_str(),
              parj::FormatCount(indexed->cache.l2_misses).c_str(),
              parj::FormatCount(indexed->cache.l3_misses).c_str());
  return 0;
}
