// Quickstart: load a tiny RDF graph from N-Triples text, run a SPARQL BGP
// join, and print decoded results. This is the paper's §3 running example
// (professors, courses, universities).

#include <cstdio>

#include "engine/parj_engine.h"

namespace {

constexpr char kData[] = R"(
<http://ex/ProfessorA> <http://ex/teaches> <http://ex/Mathematics> .
<http://ex/ProfessorB> <http://ex/teaches> <http://ex/Chemistry> .
<http://ex/ProfessorC> <http://ex/teaches> <http://ex/Literature> .
<http://ex/ProfessorA> <http://ex/teaches> <http://ex/Physics> .
<http://ex/ProfessorA> <http://ex/worksFor> <http://ex/University1> .
<http://ex/ProfessorB> <http://ex/worksFor> <http://ex/University2> .
<http://ex/ProfessorC> <http://ex/worksFor> <http://ex/University2> .
)";

constexpr char kQuery[] = R"(
PREFIX ex: <http://ex/>
SELECT ?professor ?course ?university WHERE {
  ?professor ex:teaches ?course .
  ?professor ex:worksFor ?university .
})";

}  // namespace

int main() {
  // 1. Load. The engine dictionary-encodes the graph and builds the
  //    doubly-replicated, vertically partitioned tables of the paper.
  auto engine = parj::engine::ParjEngine::FromNTriplesText(kData);
  if (!engine.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %llu triples over %zu properties\n",
              static_cast<unsigned long long>(engine->database().total_triples()),
              engine->database().predicate_count());

  // 2. Inspect the plan the optimizer picks.
  auto plan = engine->Explain(kQuery);
  if (plan.ok()) std::printf("\n%s\n", plan->ToString().c_str());

  // 3. Execute (materialized; use ResultMode::kCount for the paper's
  //    silent mode) and decode rows through the dictionary.
  auto result = engine->Execute(kQuery);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("%llu results:\n",
              static_cast<unsigned long long>(result->row_count));
  for (size_t row = 0; row < result->row_count; ++row) {
    for (const std::string& cell : engine->DecodeRow(*result, row)) {
      std::printf("  %s", cell.c_str());
    }
    std::printf("\n");
  }
  return 0;
}
