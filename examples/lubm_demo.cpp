// LUBM demo: generate a LUBM-shaped university graph, load it, and run the
// paper's ten benchmark queries single- and multi-threaded, printing
// timings and the adaptive join's decision counters.
//
// Usage: lubm_demo [universities] [threads]

#include <cstdio>
#include <cstdlib>

#include "common/strings.h"
#include "engine/parj_engine.h"
#include "workload/lubm.h"

int main(int argc, char** argv) {
  const int universities = argc > 1 ? std::atoi(argv[1]) : 1;
  const int threads = argc > 2 ? std::atoi(argv[2]) : 8;

  std::printf("generating LUBM data for %d universit%s...\n", universities,
              universities == 1 ? "y" : "ies");
  parj::workload::GeneratedData data = parj::workload::GenerateLubm(
      {.universities = universities, .seed = 42});
  std::printf("  %s triples, %s distinct resources, %u properties\n",
              parj::FormatCount(data.triples.size()).c_str(),
              parj::FormatCount(data.dict.resource_count()).c_str(),
              data.dict.predicate_count());

  auto engine = parj::engine::ParjEngine::FromEncoded(std::move(data.dict),
                                                      std::move(data.triples));
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  const auto& db = engine->database();
  std::printf("  table memory: %s bytes (dictionary: %s bytes)\n\n",
              parj::FormatCount(db.TableMemoryUsage()).c_str(),
              parj::FormatCount(db.DictionaryMemoryUsage()).c_str());

  std::printf("%-8s %12s %12s %10s %12s %12s\n", "query", "1-thread(ms)",
              "N-thread(ms)", "rows", "#sequential", "#fallback");
  for (const auto& q : parj::workload::LubmQueries()) {
    parj::engine::QueryOptions single;
    single.strategy = parj::join::SearchStrategy::kAdaptiveIndex;
    single.mode = parj::join::ResultMode::kCount;
    auto r1 = engine->Execute(q.sparql, single);
    if (!r1.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", q.name.c_str(),
                   r1.status().ToString().c_str());
      return 1;
    }
    parj::engine::QueryOptions multi = single;
    multi.num_threads = threads;
    multi.emulate_parallel = true;  // models N cores (see DESIGN.md)
    auto rn = engine->Execute(q.sparql, multi);
    if (!rn.ok()) return 1;

    std::printf("%-8s %12s %12s %10s %12s %12s\n", q.name.c_str(),
                parj::FormatMillis(r1->total_millis()).c_str(),
                parj::FormatMillis(rn->emulated_total_millis()).c_str(),
                parj::FormatCount(r1->row_count).c_str(),
                parj::FormatCount(r1->counters.sequential_searches).c_str(),
                parj::FormatCount(r1->counters.binary_searches +
                                  r1->counters.index_lookups).c_str());
  }
  return 0;
}
