// WatDiv demo: generate the WatDiv-shaped social-commerce graph and run
// the basic workload (linear / star / snowflake / complex), comparing PARJ
// against the materializing baseline engines on the same data — a small
// interactive version of the Table 3 experiment.
//
// Usage: watdiv_demo [scale] [threads]

#include <cstdio>
#include <cstdlib>

#include "baseline/hash_join_engine.h"
#include "baseline/sort_merge_engine.h"
#include "common/strings.h"
#include "common/timer.h"
#include "engine/parj_engine.h"
#include "query/optimizer.h"
#include "query/parser.h"
#include "workload/watdiv.h"

namespace {

double TimeBaseline(const parj::baseline::BaselineEngine& engine,
                    const parj::storage::Database& db,
                    const std::string& sparql) {
  auto ast = parj::query::ParseQuery(sparql);
  auto encoded = parj::query::EncodeQuery(*ast, db);
  parj::Stopwatch timer;
  auto r = engine.Execute(*encoded);
  if (!r.ok()) return -1.0;
  return timer.ElapsedMillis();
}

}  // namespace

int main(int argc, char** argv) {
  const int scale = argc > 1 ? std::atoi(argv[1]) : 1;
  const int threads = argc > 2 ? std::atoi(argv[2]) : 8;

  std::printf("generating WatDiv data at scale %d...\n", scale);
  parj::workload::GeneratedData data =
      parj::workload::GenerateWatdiv({.scale = scale, .seed = 7});
  std::printf("  %s triples, %u properties\n\n",
              parj::FormatCount(data.triples.size()).c_str(),
              data.dict.predicate_count());

  auto engine = parj::engine::ParjEngine::FromEncoded(std::move(data.dict),
                                                      std::move(data.triples));
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  const auto& db = engine->database();
  parj::baseline::HashJoinEngine hash(&db);
  parj::baseline::SortMergeEngine merge(&db);

  std::printf("%-6s %12s %12s %12s %12s %10s\n", "query", "PARJ-1(ms)",
              ("PARJ-" + std::to_string(threads) + "(ms)").c_str(), "hash(ms)",
              "merge(ms)", "rows");
  for (const auto& q : parj::workload::WatdivBasicQueries()) {
    parj::engine::QueryOptions single;
    single.strategy = parj::join::SearchStrategy::kAdaptiveIndex;
    single.mode = parj::join::ResultMode::kCount;
    auto r1 = engine->Execute(q.sparql, single);
    if (!r1.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", q.name.c_str(),
                   r1.status().ToString().c_str());
      return 1;
    }
    parj::engine::QueryOptions multi = single;
    multi.num_threads = threads;
    multi.emulate_parallel = true;
    auto rn = engine->Execute(q.sparql, multi);
    if (!rn.ok()) return 1;

    std::printf("%-6s %12s %12s %12s %12s %10s\n", q.name.c_str(),
                parj::FormatMillis(r1->total_millis()).c_str(),
                parj::FormatMillis(rn->emulated_total_millis()).c_str(),
                parj::FormatMillis(TimeBaseline(hash, db, q.sparql)).c_str(),
                parj::FormatMillis(TimeBaseline(merge, db, q.sparql)).c_str(),
                parj::FormatCount(r1->row_count).c_str());
  }
  return 0;
}
