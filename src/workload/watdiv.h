#ifndef PARJ_WORKLOAD_WATDIV_H_
#define PARJ_WORKLOAD_WATDIV_H_

#include "workload/data.h"

namespace parj::workload {

/// Options for the WatDiv-shaped generator. One scale unit produces
/// roughly 40k triples (1000 users, 250 products plus their reviews,
/// purchases, offers and social edges). The paper's experiments use
/// WatDiv scale 1000 (~110M triples); container-friendly scales keep the
/// same workload taxonomy and stress points.
struct WatdivOptions {
  int scale = 1;
  uint64_t seed = 7;
};

/// From-scratch generator reproducing the WatDiv schema shape: a social
/// commerce graph of users (follows / friendOf social edges with Zipf
/// popularity, likes, subscriptions, purchases, demographics), products
/// (genres, captions, labels, reviews), offers sold by retailers and
/// websites. Entity IRIs are deterministic (wsdbm:User0, wsdbm:Product7,
/// ...), so the query templates below reference constants valid at every
/// scale.
GeneratedData GenerateWatdiv(const WatdivOptions& options);

/// WatDiv basic testing workload: linear (L1-L5), star (S1-S7), snowflake
/// (F1-F5) and complex (C1-C3) templates, matching Table 3's query grid.
std::vector<NamedQuery> WatdivBasicQueries();

/// Incremental linear extension: IL-1-k and IL-2-k walk paths of length
/// k = 5..10 from a constant start (a user / a retailer); IL-3-k walks the
/// same paths unbounded — the huge-result stress series of Table 4.
std::vector<NamedQuery> WatdivIncrementalLinearQueries();

/// Mixed linear extension: ML-1-k (from a constant user) and ML-2-k
/// (unbounded) alternate forward and backward traversals, producing the
/// subject-object and object-object join chains that force exchange-based
/// systems to rehash large intermediates (paper §5.2, query ML1-7).
std::vector<NamedQuery> WatdivMixedLinearQueries();

}  // namespace parj::workload

#endif  // PARJ_WORKLOAD_WATDIV_H_
