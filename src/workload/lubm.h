#ifndef PARJ_WORKLOAD_LUBM_H_
#define PARJ_WORKLOAD_LUBM_H_

#include "workload/data.h"

namespace parj::workload {

/// Options for the LUBM-shaped generator. `universities` plays the role of
/// the benchmark's scale factor (the paper's experiments use scales 1280
/// to 10240; one university yields roughly 100k triples here, as in the
/// original UBA generator).
struct LubmOptions {
  int universities = 1;
  uint64_t seed = 42;
  /// Emit the Univ-Bench RDFS ontology (rdfs:subClassOf /
  /// rdfs:subPropertyOf statements: professor ranks under Professor under
  /// Faculty under Person, students under Student under Person, headOf
  /// under worksFor under memberOf, the three degree properties under
  /// degreeFrom, ...). Off by default so the instance data keeps exactly
  /// the paper's 17 LUBM properties; the reasoning experiments enable it.
  bool emit_ontology = false;
};

/// From-scratch generator reproducing the Univ-Bench schema: universities
/// contain departments; departments employ full/associate/assistant
/// professors and lecturers, run courses and research groups, and enroll
/// undergraduate and graduate students; faculty hold degrees from random
/// universities, head departments, teach courses and author publications;
/// students take courses, have advisors and assist courses. The dataset
/// uses exactly the 17 properties (including rdf:type) the paper reports
/// for LUBM, with the original generator's cardinality ratios.
///
/// Entity IRIs are deterministic (independent of the RNG), so the
/// benchmark queries can reference constants such as
/// <http://www.Department0.University0.edu> at any scale.
GeneratedData GenerateLubm(const LubmOptions& options);

/// The paper's ten LUBM queries (L1-L7 are the variants commonly used for
/// systems without reasoning [Trinity.RDF]; L8-L10 come from the dynamic
/// exchange operator paper), re-expressed over this generator's schema
/// with each query's published role preserved: L4-L6 selective point
/// queries, L2 simple but unselective, L1/L3/L7-L10 heavy multi-joins.
std::vector<NamedQuery> LubmQueries();

/// Queries that only produce complete answers under the Univ-Bench
/// class/property hierarchies (require emit_ontology plus either backward
/// chaining or materialization): instances of abstract classes
/// (ub:Professor, ub:Faculty, ub:Person) and abstract properties
/// (ub:memberOf as super-property, ub:degreeFrom).
std::vector<NamedQuery> LubmReasoningQueries();

}  // namespace parj::workload

#endif  // PARJ_WORKLOAD_LUBM_H_
