#ifndef PARJ_WORKLOAD_DATA_H_
#define PARJ_WORKLOAD_DATA_H_

#include <string>
#include <vector>

#include "common/types.h"
#include "dict/dictionary.h"

namespace parj::workload {

/// A generated dataset: dictionary plus encoded triples, ready for
/// Database::Build / ParjEngine::FromEncoded without string round-trips.
struct GeneratedData {
  dict::Dictionary dict;
  std::vector<EncodedTriple> triples;
};

/// A benchmark query with its workload name (e.g. "LUBM3", "IL-2-7").
struct NamedQuery {
  std::string name;
  std::string sparql;
};

}  // namespace parj::workload

#endif  // PARJ_WORKLOAD_DATA_H_
