#include "workload/lubm.h"

#include <string>

#include "common/rng.h"

namespace parj::workload {

namespace {

constexpr char kUb[] = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#";
constexpr char kRdfType[] =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// Builds encoded triples while interning IRIs through the dictionary.
class LubmBuilder {
 public:
  explicit LubmBuilder(uint64_t seed) : rng_(seed) {
    type_ = data_.dict.EncodePredicate(rdf::Term::Iri(kRdfType));
    sub_organization_of_ = Pred("subOrganizationOf");
    works_for_ = Pred("worksFor");
    member_of_ = Pred("memberOf");
    teacher_of_ = Pred("teacherOf");
    takes_course_ = Pred("takesCourse");
    advisor_ = Pred("advisor");
    head_of_ = Pred("headOf");
    undergrad_degree_from_ = Pred("undergraduateDegreeFrom");
    masters_degree_from_ = Pred("mastersDegreeFrom");
    doctoral_degree_from_ = Pred("doctoralDegreeFrom");
    publication_author_ = Pred("publicationAuthor");
    teaching_assistant_of_ = Pred("teachingAssistantOf");
    name_ = Pred("name");
    email_ = Pred("emailAddress");
    telephone_ = Pred("telephone");
    research_interest_ = Pred("researchInterest");

    class_university_ = Class("University");
    class_department_ = Class("Department");
    class_full_professor_ = Class("FullProfessor");
    class_associate_professor_ = Class("AssociateProfessor");
    class_assistant_professor_ = Class("AssistantProfessor");
    class_lecturer_ = Class("Lecturer");
    class_course_ = Class("Course");
    class_graduate_course_ = Class("GraduateCourse");
    class_undergraduate_student_ = Class("UndergraduateStudent");
    class_graduate_student_ = Class("GraduateStudent");
    class_publication_ = Class("Publication");
    class_research_group_ = Class("ResearchGroup");
  }

  GeneratedData Generate(int universities, bool emit_ontology) {
    universities_ = universities;
    if (emit_ontology) EmitOntology();
    university_ids_.reserve(universities);
    for (int u = 0; u < universities; ++u) {
      university_ids_.push_back(
          Iri("http://www.University" + std::to_string(u) + ".edu"));
    }
    for (int u = 0; u < universities; ++u) {
      Emit(university_ids_[u], type_, class_university_);
      const int departments = static_cast<int>(rng_.UniformRange(15, 25));
      for (int d = 0; d < departments; ++d) {
        GenerateDepartment(u, d);
      }
    }
    return std::move(data_);
  }

 private:
  PredicateId Pred(const std::string& local) {
    return data_.dict.EncodePredicate(rdf::Term::Iri(kUb + local));
  }
  TermId Class(const std::string& local) {
    return data_.dict.EncodeResource(rdf::Term::Iri(kUb + local));
  }
  TermId Iri(std::string iri) {
    return data_.dict.EncodeResource(rdf::Term::Iri(std::move(iri)));
  }
  TermId Literal(std::string value) {
    return data_.dict.EncodeResource(rdf::Term::Literal(std::move(value)));
  }

  void Emit(TermId s, PredicateId p, TermId o) {
    data_.triples.push_back(EncodedTriple{s, p, o});
  }

  TermId RandomUniversity() {
    return university_ids_[rng_.Uniform(university_ids_.size())];
  }

  /// The Univ-Bench RDFS skeleton. Abstract classes/properties (Person,
  /// Faculty, Professor, Student, Organization, degreeFrom) only occur
  /// here — answering queries over them needs hierarchy reasoning.
  void EmitOntology() {
    const PredicateId sub_class = data_.dict.EncodePredicate(
        rdf::Term::Iri("http://www.w3.org/2000/01/rdf-schema#subClassOf"));
    const PredicateId sub_property = data_.dict.EncodePredicate(
        rdf::Term::Iri("http://www.w3.org/2000/01/rdf-schema#subPropertyOf"));

    const TermId person = Class("Person");
    const TermId faculty = Class("Faculty");
    const TermId professor = Class("Professor");
    const TermId student = Class("Student");
    const TermId organization = Class("Organization");

    auto sub = [&](TermId child, TermId parent) {
      Emit(child, sub_class, parent);
    };
    sub(faculty, person);
    sub(student, person);
    sub(professor, faculty);
    sub(class_full_professor_, professor);
    sub(class_associate_professor_, professor);
    sub(class_assistant_professor_, professor);
    sub(class_lecturer_, faculty);
    sub(class_undergraduate_student_, student);
    sub(class_graduate_student_, student);
    sub(class_graduate_course_, class_course_);
    sub(class_university_, organization);
    sub(class_department_, organization);
    sub(class_research_group_, organization);

    // Property hierarchy: properties appear as resources here.
    auto prop_resource = [&](const std::string& local) {
      return data_.dict.EncodeResource(rdf::Term::Iri(kUb + local));
    };
    const TermId degree_from = prop_resource("degreeFrom");  // abstract
    auto subp = [&](const std::string& child, TermId parent) {
      Emit(prop_resource(child), sub_property, parent);
    };
    subp("headOf", prop_resource("worksFor"));
    subp("worksFor", prop_resource("memberOf"));
    subp("undergraduateDegreeFrom", degree_from);
    subp("mastersDegreeFrom", degree_from);
    subp("doctoralDegreeFrom", degree_from);
  }

  void EmitPersonDetails(TermId person, const std::string& base) {
    Emit(person, name_, Literal(base));
    Emit(person, email_, Literal(base + "@example.edu"));
    Emit(person, telephone_,
         Literal("xxx-xxx-" + std::to_string(rng_.Uniform(10000))));
  }

  void GenerateDepartment(int u, int d) {
    const std::string dept_base = "http://www.Department" +
                                  std::to_string(d) + ".University" +
                                  std::to_string(u) + ".edu";
    const TermId dept = Iri(dept_base);
    Emit(dept, type_, class_department_);
    Emit(dept, sub_organization_of_, university_ids_[u]);

    const int research_groups = static_cast<int>(rng_.UniformRange(10, 20));
    for (int g = 0; g < research_groups; ++g) {
      TermId group = Iri(dept_base + "/ResearchGroup" + std::to_string(g));
      Emit(group, type_, class_research_group_);
      Emit(group, sub_organization_of_, dept);
    }

    // Faculty.
    struct Faculty {
      TermId id;
      bool professor;
    };
    std::vector<Faculty> faculty;
    std::vector<TermId> professors;

    auto add_faculty = [&](const char* kind, TermId cls, int count,
                           bool professor) {
      for (int i = 0; i < count; ++i) {
        TermId person =
            Iri(dept_base + "/" + kind + std::to_string(i));
        Emit(person, type_, cls);
        Emit(person, works_for_, dept);
        EmitPersonDetails(person, std::string(kind) + std::to_string(i) +
                                      ".D" + std::to_string(d) + ".U" +
                                      std::to_string(u));
        Emit(person, undergrad_degree_from_, RandomUniversity());
        if (professor) {
          Emit(person, masters_degree_from_, RandomUniversity());
          Emit(person, doctoral_degree_from_, RandomUniversity());
          Emit(person, research_interest_,
               Literal("Research" + std::to_string(rng_.Uniform(30))));
          professors.push_back(person);
        }
        faculty.push_back(Faculty{person, professor});
      }
    };
    add_faculty("FullProfessor", class_full_professor_,
                static_cast<int>(rng_.UniformRange(7, 10)), true);
    add_faculty("AssociateProfessor", class_associate_professor_,
                static_cast<int>(rng_.UniformRange(10, 14)), true);
    add_faculty("AssistantProfessor", class_assistant_professor_,
                static_cast<int>(rng_.UniformRange(8, 11)), true);
    add_faculty("Lecturer", class_lecturer_,
                static_cast<int>(rng_.UniformRange(5, 7)), false);

    // The first full professor heads the department.
    Emit(faculty[0].id, head_of_, dept);

    // Courses: every faculty member teaches 1-2 undergraduate courses and
    // professors additionally teach 1-2 graduate courses.
    std::vector<TermId> courses;
    std::vector<TermId> graduate_courses;
    int course_counter = 0;
    int graduate_counter = 0;
    for (const Faculty& f : faculty) {
      const int teaches = static_cast<int>(rng_.UniformRange(1, 2));
      for (int c = 0; c < teaches; ++c) {
        TermId course =
            Iri(dept_base + "/Course" + std::to_string(course_counter++));
        Emit(course, type_, class_course_);
        Emit(f.id, teacher_of_, course);
        courses.push_back(course);
      }
      if (f.professor) {
        const int grad = static_cast<int>(rng_.UniformRange(1, 2));
        for (int c = 0; c < grad; ++c) {
          TermId course = Iri(dept_base + "/GraduateCourse" +
                              std::to_string(graduate_counter++));
          Emit(course, type_, class_graduate_course_);
          Emit(f.id, teacher_of_, course);
          graduate_courses.push_back(course);
        }
      }
    }

    // Undergraduate students: ratio ~8-14 per faculty member.
    const int undergrads =
        static_cast<int>(faculty.size() * rng_.UniformRange(8, 14));
    std::vector<TermId> undergrad_ids;
    undergrad_ids.reserve(undergrads);
    for (int i = 0; i < undergrads; ++i) {
      TermId student =
          Iri(dept_base + "/UndergraduateStudent" + std::to_string(i));
      Emit(student, type_, class_undergraduate_student_);
      Emit(student, member_of_, dept);
      const int takes = static_cast<int>(rng_.UniformRange(2, 4));
      for (int c = 0; c < takes; ++c) {
        Emit(student, takes_course_, courses[rng_.Uniform(courses.size())]);
      }
      if (rng_.Chance(0.2)) {
        Emit(student, advisor_, professors[rng_.Uniform(professors.size())]);
      }
      undergrad_ids.push_back(student);
    }

    // Graduate students: ratio ~3-4 per faculty member.
    const int grads =
        static_cast<int>(faculty.size() * rng_.UniformRange(3, 4));
    std::vector<TermId> grad_ids;
    grad_ids.reserve(grads);
    for (int i = 0; i < grads; ++i) {
      TermId student = Iri(dept_base + "/GraduateStudent" + std::to_string(i));
      Emit(student, type_, class_graduate_student_);
      Emit(student, member_of_, dept);
      Emit(student, undergrad_degree_from_, RandomUniversity());
      const int takes = static_cast<int>(rng_.UniformRange(1, 3));
      for (int c = 0; c < takes; ++c) {
        Emit(student, takes_course_,
             graduate_courses[rng_.Uniform(graduate_courses.size())]);
      }
      Emit(student, advisor_, professors[rng_.Uniform(professors.size())]);
      if (rng_.Chance(0.2)) {
        Emit(student, teaching_assistant_of_,
             courses[rng_.Uniform(courses.size())]);
      }
      grad_ids.push_back(student);
    }

    // Publications: every professor authors 3-8; 40% get a graduate
    // student co-author.
    int publication_counter = 0;
    for (TermId professor : professors) {
      const int pubs = static_cast<int>(rng_.UniformRange(3, 8));
      for (int i = 0; i < pubs; ++i) {
        TermId pub = Iri(dept_base + "/Publication" +
                         std::to_string(publication_counter++));
        Emit(pub, type_, class_publication_);
        Emit(pub, publication_author_, professor);
        if (!grad_ids.empty() && rng_.Chance(0.4)) {
          Emit(pub, publication_author_,
               grad_ids[rng_.Uniform(grad_ids.size())]);
        }
      }
    }
  }

  Rng rng_;
  GeneratedData data_;
  int universities_ = 0;
  std::vector<TermId> university_ids_;

  PredicateId type_, sub_organization_of_, works_for_, member_of_,
      teacher_of_, takes_course_, advisor_, head_of_, undergrad_degree_from_,
      masters_degree_from_, doctoral_degree_from_, publication_author_,
      teaching_assistant_of_, name_, email_, telephone_, research_interest_;
  TermId class_university_, class_department_, class_full_professor_,
      class_associate_professor_, class_assistant_professor_, class_lecturer_,
      class_course_, class_graduate_course_, class_undergraduate_student_,
      class_graduate_student_, class_publication_, class_research_group_;
};

}  // namespace

GeneratedData GenerateLubm(const LubmOptions& options) {
  LubmBuilder builder(options.seed);
  return builder.Generate(options.universities, options.emit_ontology);
}

std::vector<NamedQuery> LubmQueries() {
  const std::string prefix =
      "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n";
  std::vector<NamedQuery> queries;

  // L1 (heavy; cyclic join of students, departments and degree
  // universities — the Trinity.RDF-style triangle).
  queries.push_back({"LUBM1", prefix + R"(
SELECT ?x ?y ?z WHERE {
  ?x a ub:GraduateStudent .
  ?y a ub:University .
  ?z a ub:Department .
  ?x ub:memberOf ?z .
  ?z ub:subOrganizationOf ?y .
  ?x ub:undergraduateDegreeFrom ?y .
})"});

  // L2 (simple but unselective: every undergraduate enrollment).
  queries.push_back({"LUBM2", prefix + R"(
SELECT ?x ?y WHERE {
  ?x a ub:UndergraduateStudent .
  ?x ub:takesCourse ?y .
})"});

  // L3 (heavy: professor publications joined through department chain).
  queries.push_back({"LUBM3", prefix + R"(
SELECT ?x ?y ?z ?w WHERE {
  ?w ub:publicationAuthor ?x .
  ?x a ub:FullProfessor .
  ?x ub:worksFor ?y .
  ?y ub:subOrganizationOf ?z .
})"});

  // L4 (selective point query with a property star).
  queries.push_back({"LUBM4", prefix + R"(
SELECT ?x ?n ?e ?t WHERE {
  ?x ub:worksFor <http://www.Department0.University0.edu> .
  ?x a ub:FullProfessor .
  ?x ub:name ?n .
  ?x ub:emailAddress ?e .
  ?x ub:telephone ?t .
})"});

  // L5 (selective point query).
  queries.push_back({"LUBM5", prefix + R"(
SELECT ?x WHERE {
  ?x a ub:UndergraduateStudent .
  ?x ub:memberOf <http://www.Department0.University0.edu> .
})"});

  // L6 (selective: students of one specific graduate course).
  queries.push_back({"LUBM6", prefix + R"(
SELECT ?x WHERE {
  ?x a ub:GraduateStudent .
  ?x ub:takesCourse
      <http://www.Department0.University0.edu/GraduateCourse0> .
})"});

  // L7 (heavy chain: enrollments joined to teachers and departments).
  queries.push_back({"LUBM7", prefix + R"(
SELECT ?x ?y ?z WHERE {
  ?x ub:takesCourse ?y .
  ?z ub:teacherOf ?y .
  ?z ub:worksFor ?w .
  ?w ub:subOrganizationOf ?u .
})"});

  // L8 (large intermediate results, few final answers: students advised
  // by their department head who shares their degree university).
  queries.push_back({"LUBM8", prefix + R"(
SELECT ?x ?y WHERE {
  ?x ub:advisor ?y .
  ?y ub:headOf ?z .
  ?x ub:memberOf ?z .
  ?x ub:undergraduateDegreeFrom ?w .
  ?y ub:doctoralDegreeFrom ?w .
})"});

  // L9 (heaviest: the classic advisor/course triangle).
  queries.push_back({"LUBM9", prefix + R"(
SELECT ?x ?y ?z WHERE {
  ?x ub:advisor ?y .
  ?y ub:teacherOf ?z .
  ?x ub:takesCourse ?z .
})"});

  // L10 (heavy cyclic: publications whose author's doctoral university
  // hosts the author's department).
  queries.push_back({"LUBM10", prefix + R"(
SELECT ?p ?a ?d WHERE {
  ?p ub:publicationAuthor ?a .
  ?a ub:worksFor ?d .
  ?d ub:subOrganizationOf ?u .
  ?a ub:doctoralDegreeFrom ?u .
})"});

  return queries;
}

std::vector<NamedQuery> LubmReasoningQueries() {
  const std::string prefix =
      "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n";
  std::vector<NamedQuery> queries;

  // R1: instances of an abstract class (3-way subclass union).
  queries.push_back({"LUBM-R1", prefix + R"(
SELECT ?x WHERE {
  ?x a ub:Professor .
})"});

  // R2: abstract super-property (memberOf U worksFor U headOf).
  queries.push_back({"LUBM-R2", prefix + R"(
SELECT ?x ?y WHERE {
  ?x ub:memberOf ?y .
})"});

  // R3: star mixing an abstract class with an abstract property
  // (degreeFrom has no direct assertions at all).
  queries.push_back({"LUBM-R3", prefix + R"(
SELECT ?x ?u WHERE {
  ?x a ub:Faculty .
  ?x ub:degreeFrom ?u .
})"});

  // R4: join over two hierarchies (Person members of organizations).
  queries.push_back({"LUBM-R4", prefix + R"(
SELECT ?x ?d WHERE {
  ?x a ub:Person .
  ?x ub:memberOf ?d .
  ?d ub:subOrganizationOf ?u .
})"});

  return queries;
}

}  // namespace parj::workload
