#include "workload/watdiv.h"

#include <string>

#include "common/rng.h"

namespace parj::workload {

namespace {

constexpr char kWsdbm[] = "http://db.uwaterloo.ca/~galuc/wsdbm/";
constexpr char kSorg[] = "http://schema.org/";
constexpr char kRev[] = "http://purl.org/stuff/rev#";
constexpr char kGr[] = "http://purl.org/goodrelations/";
constexpr char kFoaf[] = "http://xmlns.com/foaf/";
constexpr char kRdfs[] = "http://www.w3.org/2000/01/rdf-schema#";
constexpr char kRdfType[] =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
constexpr char kXsdInteger[] = "http://www.w3.org/2001/XMLSchema#integer";

class WatdivBuilder {
 public:
  explicit WatdivBuilder(uint64_t seed) : rng_(seed) {}

  GeneratedData Generate(int scale) {
    const size_t users = 1000 * static_cast<size_t>(scale);
    const size_t products = 250 * static_cast<size_t>(scale);
    const size_t reviews = 1250 * static_cast<size_t>(scale);
    const size_t purchases = 2500 * static_cast<size_t>(scale);
    const size_t offers = 900 * static_cast<size_t>(scale);
    const size_t retailers = 5 * static_cast<size_t>(scale);
    const size_t websites = 50 * static_cast<size_t>(scale);
    const size_t genres = 24;
    const size_t countries = 25;
    const size_t languages = 12;
    const size_t age_groups = 9;

    InternPredicates();

    auto ids = [&](const char* ns, const char* name, size_t count) {
      std::vector<TermId> out;
      out.reserve(count);
      for (size_t i = 0; i < count; ++i) {
        out.push_back(Iri(std::string(ns) + name + std::to_string(i)));
      }
      return out;
    };
    user_ids_ = ids(kWsdbm, "User", users);
    product_ids_ = ids(kWsdbm, "Product", products);
    review_ids_ = ids(kWsdbm, "Review", reviews);
    purchase_ids_ = ids(kWsdbm, "Purchase", purchases);
    offer_ids_ = ids(kWsdbm, "Offer", offers);
    retailer_ids_ = ids(kWsdbm, "Retailer", retailers);
    website_ids_ = ids(kWsdbm, "Website", websites);
    genre_ids_ = ids(kWsdbm, "Genre", genres);
    country_ids_ = ids(kWsdbm, "Country", countries);
    language_ids_ = ids(kWsdbm, "Language", languages);
    age_group_ids_ = ids(kWsdbm, "AgeGroup", age_groups);

    const TermId class_user = Iri(std::string(kWsdbm) + "User");
    const TermId class_product = Iri(std::string(kWsdbm) + "Product");
    const TermId class_review = Iri(std::string(kWsdbm) + "Review");
    const TermId class_purchase = Iri(std::string(kWsdbm) + "Purchase");
    const TermId class_offer = Iri(std::string(kWsdbm) + "Offer");
    const TermId class_retailer = Iri(std::string(kWsdbm) + "Retailer");
    const TermId class_website = Iri(std::string(kWsdbm) + "Website");
    std::vector<TermId> product_categories;
    for (int c = 0; c < 10; ++c) {
      product_categories.push_back(
          Iri(std::string(kWsdbm) + "ProductCategory" + std::to_string(c)));
    }
    const TermId lit_male = Literal("male");
    const TermId lit_female = Literal("female");

    // ---- Users: demographics + Zipf-skewed social edges.
    for (size_t u = 0; u < users; ++u) {
      const TermId user = user_ids_[u];
      Emit(user, type_, class_user);
      Emit(user, nationality_, country_ids_[rng_.Zipf(countries, 0.7)]);
      if (rng_.Chance(0.7)) {
        Emit(user, gender_, rng_.Chance(0.5) ? lit_male : lit_female);
      }
      if (rng_.Chance(0.6)) {
        Emit(user, age_, age_group_ids_[rng_.Uniform(age_groups)]);
      }
      const size_t follows = rng_.UniformRange(2, 6);
      for (size_t i = 0; i < follows; ++i) {
        Emit(user, follows_, user_ids_[rng_.Zipf(users, 0.9)]);
      }
      const size_t friends = rng_.UniformRange(3, 9);
      for (size_t i = 0; i < friends; ++i) {
        Emit(user, friend_of_, user_ids_[rng_.Zipf(users, 0.6)]);
      }
      const size_t likes = rng_.UniformRange(1, 4);
      for (size_t i = 0; i < likes; ++i) {
        Emit(user, likes_, product_ids_[rng_.Zipf(products, 0.5)]);
      }
      if (rng_.Chance(0.8)) {
        Emit(user, subscribes_, website_ids_[rng_.Zipf(websites, 0.8)]);
      }
    }

    // ---- Products.
    for (size_t p = 0; p < products; ++p) {
      const TermId product = product_ids_[p];
      Emit(product, type_, class_product);
      Emit(product, type_, product_categories[rng_.Uniform(10)]);
      Emit(product, caption_, Literal("caption" + std::to_string(p)));
      if (rng_.Chance(0.8)) {
        Emit(product, label_, Literal("label" + std::to_string(p)));
      }
      if (rng_.Chance(0.4)) {
        Emit(product, content_rating_,
             Literal("rating" + std::to_string(rng_.Uniform(5))));
      }
      const size_t product_genres = rng_.UniformRange(1, 3);
      for (size_t g = 0; g < product_genres; ++g) {
        Emit(product, has_genre_, genre_ids_[rng_.Zipf(genres, 0.5)]);
      }
    }

    // ---- Reviews: product (Zipf) -> review -> reviewer (Zipf).
    for (size_t r = 0; r < reviews; ++r) {
      const TermId review = review_ids_[r];
      Emit(review, type_, class_review);
      Emit(product_ids_[rng_.Uniform(products)], has_review_, review);
      Emit(review, reviewer_, user_ids_[rng_.Zipf(users, 0.8)]);
      Emit(review, rating_, IntegerLiteral(1 + rng_.Uniform(10)));
      Emit(review, total_votes_, IntegerLiteral(rng_.Uniform(500)));
    }

    // ---- Purchases.
    for (size_t p = 0; p < purchases; ++p) {
      const TermId purchase = purchase_ids_[p];
      Emit(purchase, type_, class_purchase);
      Emit(user_ids_[rng_.Zipf(users, 0.7)], makes_purchase_, purchase);
      Emit(purchase, purchase_for_, product_ids_[rng_.Zipf(products, 0.5)]);
      Emit(purchase, purchase_date_,
           Literal("2019-03-" + std::to_string(1 + rng_.Uniform(28))));
    }

    // ---- Offers: retailer (round-robin) -> offer -> product (Zipf).
    for (size_t o = 0; o < offers; ++o) {
      const TermId offer = offer_ids_[o];
      Emit(offer, type_, class_offer);
      Emit(retailer_ids_[o % retailers], offers_, offer);
      Emit(offer, includes_, product_ids_[rng_.Zipf(products, 0.5)]);
      Emit(offer, price_, IntegerLiteral(1 + rng_.Uniform(2000)));
      Emit(offer, valid_through_,
           Literal("2020-0" + std::to_string(1 + rng_.Uniform(9))));
      Emit(offer, serial_number_, IntegerLiteral(100000 + o));
    }

    for (size_t r = 0; r < retailers; ++r) {
      Emit(retailer_ids_[r], type_, class_retailer);
    }
    for (size_t w = 0; w < websites; ++w) {
      Emit(website_ids_[w], type_, class_website);
      Emit(website_ids_[w], language_, language_ids_[rng_.Uniform(languages)]);
    }

    return std::move(data_);
  }

 private:
  void InternPredicates() {
    type_ = data_.dict.EncodePredicate(rdf::Term::Iri(kRdfType));
    follows_ = Pred(kWsdbm, "follows");
    friend_of_ = Pred(kWsdbm, "friendOf");
    likes_ = Pred(kWsdbm, "likes");
    subscribes_ = Pred(kWsdbm, "subscribes");
    makes_purchase_ = Pred(kWsdbm, "makesPurchase");
    purchase_for_ = Pred(kWsdbm, "purchaseFor");
    purchase_date_ = Pred(kWsdbm, "purchaseDate");
    has_genre_ = Pred(kWsdbm, "hasGenre");
    gender_ = Pred(kWsdbm, "gender");
    nationality_ = Pred(kSorg, "nationality");
    caption_ = Pred(kSorg, "caption");
    content_rating_ = Pred(kSorg, "contentRating");
    language_ = Pred(kSorg, "language");
    label_ = Pred(kRdfs, "label");
    age_ = Pred(kFoaf, "age");
    has_review_ = Pred(kRev, "hasReview");
    reviewer_ = Pred(kRev, "reviewer");
    rating_ = Pred(kRev, "rating");
    total_votes_ = Pred(kRev, "totalVotes");
    offers_ = Pred(kGr, "offers");
    includes_ = Pred(kGr, "includes");
    price_ = Pred(kGr, "price");
    valid_through_ = Pred(kGr, "validThrough");
    serial_number_ = Pred(kGr, "serialNumber");
  }

  PredicateId Pred(const char* ns, const char* local) {
    return data_.dict.EncodePredicate(rdf::Term::Iri(std::string(ns) + local));
  }
  TermId Iri(std::string iri) {
    return data_.dict.EncodeResource(rdf::Term::Iri(std::move(iri)));
  }
  TermId Literal(std::string value) {
    return data_.dict.EncodeResource(rdf::Term::Literal(std::move(value)));
  }
  TermId IntegerLiteral(uint64_t value) {
    return data_.dict.EncodeResource(
        rdf::Term::TypedLiteral(std::to_string(value), kXsdInteger));
  }

  void Emit(TermId s, PredicateId p, TermId o) {
    data_.triples.push_back(EncodedTriple{s, p, o});
  }

  Rng rng_;
  GeneratedData data_;
  std::vector<TermId> user_ids_, product_ids_, review_ids_, purchase_ids_,
      offer_ids_, retailer_ids_, website_ids_, genre_ids_, country_ids_,
      language_ids_, age_group_ids_;

  PredicateId type_, follows_, friend_of_, likes_, subscribes_,
      makes_purchase_, purchase_for_, purchase_date_, has_genre_, gender_,
      nationality_, caption_, content_rating_, language_, label_, age_,
      has_review_, reviewer_, rating_, total_votes_, offers_, includes_,
      price_, valid_through_, serial_number_;
};

const std::string& Prefixes() {
  static const std::string kPrefixes =
      "PREFIX wsdbm: <http://db.uwaterloo.ca/~galuc/wsdbm/>\n"
      "PREFIX sorg: <http://schema.org/>\n"
      "PREFIX rev: <http://purl.org/stuff/rev#>\n"
      "PREFIX gr: <http://purl.org/goodrelations/>\n"
      "PREFIX foaf: <http://xmlns.com/foaf/>\n"
      "PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>\n";
  return kPrefixes;
}

/// The IL path template: property + direction per hop, cycled. Hop i walks
/// var(i) -> var(i+1); `forward` false swaps subject and object.
struct Hop {
  const char* property;
  bool forward;
};

std::string BuildPath(const std::string& start_constant,
                      const std::vector<Hop>& hops, int length) {
  std::string q = Prefixes() + "SELECT * WHERE {\n";
  for (int i = 0; i < length; ++i) {
    const Hop& hop = hops[i];
    std::string from = i == 0 && !start_constant.empty()
                           ? start_constant
                           : "?v" + std::to_string(i);
    std::string to = "?v" + std::to_string(i + 1);
    if (hop.forward) {
      q += "  " + from + " " + hop.property + " " + to + " .\n";
    } else {
      q += "  " + to + " " + hop.property + " " + from + " .\n";
    }
  }
  q += "}";
  return q;
}

}  // namespace

GeneratedData GenerateWatdiv(const WatdivOptions& options) {
  WatdivBuilder builder(options.seed);
  return builder.Generate(options.scale);
}

std::vector<NamedQuery> WatdivBasicQueries() {
  const std::string& p = Prefixes();
  std::vector<NamedQuery> q;

  // ---- Linear.
  q.push_back({"L1", p + R"(SELECT * WHERE {
  ?v0 wsdbm:subscribes wsdbm:Website10 .
  ?v0 wsdbm:likes ?v1 .
})"});
  q.push_back({"L2", p + R"(SELECT * WHERE {
  ?v0 sorg:nationality wsdbm:Country5 .
  ?v0 wsdbm:follows ?v1 .
})"});
  q.push_back({"L3", p + R"(SELECT * WHERE {
  ?v0 wsdbm:likes wsdbm:Product0 .
  ?v0 wsdbm:subscribes ?v1 .
})"});
  q.push_back({"L4", p + R"(SELECT * WHERE {
  ?v0 rev:hasReview ?v1 .
  ?v1 rev:reviewer wsdbm:User42 .
})"});
  q.push_back({"L5", p + R"(SELECT * WHERE {
  ?v0 gr:includes wsdbm:Product7 .
  ?v1 gr:offers ?v0 .
})"});

  // ---- Star.
  q.push_back({"S1", p + R"(SELECT * WHERE {
  wsdbm:Retailer2 gr:offers ?v0 .
  ?v0 gr:includes ?v1 .
  ?v0 gr:price ?v2 .
  ?v0 gr:validThrough ?v3 .
  ?v0 gr:serialNumber ?v4 .
  ?v1 sorg:caption ?v5 .
  ?v1 wsdbm:hasGenre ?v6 .
  ?v1 rdfs:label ?v7 .
})"});
  q.push_back({"S2", p + R"(SELECT * WHERE {
  ?v0 sorg:nationality wsdbm:Country1 .
  ?v0 wsdbm:gender ?v1 .
  ?v0 foaf:age ?v2 .
  ?v0 a wsdbm:User .
})"});
  q.push_back({"S3", p + R"(SELECT * WHERE {
  ?v0 wsdbm:hasGenre wsdbm:Genre5 .
  ?v0 sorg:caption ?v1 .
  ?v0 sorg:contentRating ?v2 .
})"});
  q.push_back({"S4", p + R"(SELECT * WHERE {
  ?v0 foaf:age wsdbm:AgeGroup3 .
  ?v0 sorg:nationality ?v1 .
  ?v0 wsdbm:gender ?v2 .
})"});
  q.push_back({"S5", p + R"(SELECT * WHERE {
  ?v0 wsdbm:hasGenre wsdbm:Genre2 .
  ?v0 rdfs:label ?v1 .
  ?v0 sorg:caption ?v2 .
  ?v0 a wsdbm:Product .
})"});
  q.push_back({"S6", p + R"(SELECT * WHERE {
  ?v0 rev:rating 9 .
  ?v0 rev:reviewer ?v1 .
  ?v0 rev:totalVotes ?v2 .
})"});
  q.push_back({"S7", p + R"(SELECT * WHERE {
  ?v0 rev:reviewer wsdbm:User0 .
  ?v0 rev:rating ?v1 .
  ?v0 rev:totalVotes ?v2 .
})"});

  // ---- Snowflake.
  q.push_back({"F1", p + R"(SELECT * WHERE {
  ?v0 wsdbm:hasGenre wsdbm:Genre2 .
  ?v0 rev:hasReview ?v1 .
  ?v1 rev:reviewer ?v2 .
  ?v2 sorg:nationality ?v3 .
  ?v0 sorg:caption ?v4 .
})"});
  q.push_back({"F2", p + R"(SELECT * WHERE {
  wsdbm:Retailer0 gr:offers ?v0 .
  ?v0 gr:includes ?v1 .
  ?v0 gr:price ?v2 .
  ?v1 wsdbm:hasGenre ?v3 .
  ?v1 sorg:caption ?v4 .
})"});
  q.push_back({"F3", p + R"(SELECT * WHERE {
  ?v0 wsdbm:makesPurchase ?v1 .
  ?v1 wsdbm:purchaseFor ?v2 .
  ?v2 wsdbm:hasGenre wsdbm:Genre3 .
  ?v0 sorg:nationality ?v3 .
})"});
  q.push_back({"F4", p + R"(SELECT * WHERE {
  ?v0 wsdbm:subscribes ?v1 .
  ?v1 sorg:language wsdbm:Language0 .
  ?v0 wsdbm:likes ?v2 .
  ?v2 sorg:caption ?v3 .
})"});
  q.push_back({"F5", p + R"(SELECT * WHERE {
  wsdbm:Retailer1 gr:offers ?v0 .
  ?v0 gr:includes ?v1 .
  ?v1 rev:hasReview ?v2 .
  ?v2 rev:reviewer ?v3 .
  ?v0 gr:price ?v4 .
})"});

  // ---- Complex.
  q.push_back({"C1", p + R"(SELECT * WHERE {
  ?v0 wsdbm:likes ?v1 .
  ?v0 wsdbm:friendOf ?v2 .
  ?v2 wsdbm:likes ?v3 .
  ?v1 wsdbm:hasGenre ?v4 .
  ?v3 wsdbm:hasGenre ?v4 .
})"});
  q.push_back({"C2", p + R"(SELECT * WHERE {
  ?v0 sorg:nationality wsdbm:Country0 .
  ?v0 wsdbm:follows ?v1 .
  ?v1 wsdbm:makesPurchase ?v2 .
  ?v2 wsdbm:purchaseFor ?v3 .
  ?v3 rev:hasReview ?v4 .
  ?v4 rev:reviewer ?v5 .
  ?v5 sorg:nationality wsdbm:Country1 .
})"});
  q.push_back({"C3", p + R"(SELECT * WHERE {
  ?v0 wsdbm:friendOf ?v1 .
  ?v0 wsdbm:likes ?v2 .
  ?v0 sorg:nationality ?v3 .
  ?v0 a wsdbm:User .
})"});
  return q;
}

std::vector<NamedQuery> WatdivIncrementalLinearQueries() {
  // User-centric cycle: user -follows-> user -friendOf-> user -likes->
  // product -hasReview-> review -reviewer-> user -...
  const std::vector<Hop> user_cycle = {
      {"wsdbm:follows", true},  {"wsdbm:friendOf", true},
      {"wsdbm:likes", true},    {"rev:hasReview", true},
      {"rev:reviewer", true},   {"wsdbm:follows", true},
      {"wsdbm:friendOf", true}, {"wsdbm:likes", true},
      {"rev:hasReview", true},  {"rev:reviewer", true},
  };
  // Retailer-centric: retailer -offers-> offer -includes-> product
  // -hasReview-> review -reviewer-> user -follows-> ...
  const std::vector<Hop> retailer_cycle = {
      {"gr:offers", true},      {"gr:includes", true},
      {"rev:hasReview", true},  {"rev:reviewer", true},
      {"wsdbm:follows", true},  {"wsdbm:friendOf", true},
      {"wsdbm:likes", true},    {"rev:hasReview", true},
      {"rev:reviewer", true},   {"wsdbm:follows", true},
  };
  std::vector<NamedQuery> q;
  for (int k = 5; k <= 10; ++k) {
    q.push_back({"IL-1-" + std::to_string(k),
                 BuildPath("wsdbm:User0", user_cycle, k)});
  }
  for (int k = 5; k <= 10; ++k) {
    q.push_back({"IL-2-" + std::to_string(k),
                 BuildPath("wsdbm:Retailer0", retailer_cycle, k)});
  }
  for (int k = 5; k <= 10; ++k) {
    q.push_back({"IL-3-" + std::to_string(k), BuildPath("", user_cycle, k)});
  }
  return q;
}

std::vector<NamedQuery> WatdivMixedLinearQueries() {
  // Alternating forward/backward hops produce the object-object and
  // subject-subject join chains that force exchange-based systems to
  // rehash (paper §5.2). ML-1 walks purchase/like neighbourhoods from a
  // constant user and stays selective at every length; ML-2 starts from an
  // unbounded backward purchase scan and grows non-monotonically, like the
  // paper's ML-2 column.
  const std::vector<Hop> mixed_user = {
      {"wsdbm:makesPurchase", true}, {"wsdbm:purchaseFor", true},
      {"wsdbm:purchaseFor", false},  {"wsdbm:makesPurchase", false},
      {"wsdbm:likes", true},         {"rev:hasReview", true},
      {"rev:reviewer", true},        {"wsdbm:subscribes", true},
      {"sorg:language", true},       {"sorg:language", false},
  };
  const std::vector<Hop> mixed_product = {
      {"wsdbm:purchaseFor", false},  {"wsdbm:makesPurchase", false},
      {"wsdbm:likes", true},         {"wsdbm:likes", false},
      {"wsdbm:friendOf", true},      {"wsdbm:friendOf", false},
      {"wsdbm:subscribes", true},    {"sorg:language", true},
      {"sorg:language", false},      {"sorg:language", true},
  };
  std::vector<NamedQuery> q;
  for (int k = 5; k <= 10; ++k) {
    q.push_back({"ML-1-" + std::to_string(k),
                 BuildPath("wsdbm:User0", mixed_user, k)});
  }
  for (int k = 5; k <= 10; ++k) {
    q.push_back({"ML-2-" + std::to_string(k), BuildPath("", mixed_product, k)});
  }
  return q;
}

}  // namespace parj::workload
