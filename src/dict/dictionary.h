#ifndef PARJ_DICT_DICTIONARY_H_
#define PARJ_DICT_DICTIONARY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "rdf/term.h"

namespace parj::dict {

/// Dictionary encoding for RDF terms (paper §3): every distinct value that
/// appears in a subject or object position receives a dense integer ID from
/// one shared ID space (1..N); predicates receive IDs from a second,
/// independent space. ID 0 is reserved as invalid in both spaces.
///
/// The dictionary is append-only; IDs are assigned in first-seen order,
/// which the loader exploits to make encoding deterministic for a given
/// input order.
class Dictionary {
 public:
  Dictionary() = default;

  // Movable but not implicitly copyable: the dictionary can hold hundreds
  // of MB. Use Clone() when a copy is genuinely needed (e.g. building a
  // materialized database next to the base one).
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;

  /// Explicit deep copy preserving all ID assignments.
  Dictionary Clone() const;

  /// Returns the ID for `term`, inserting it if absent.
  TermId EncodeResource(const rdf::Term& term);

  /// Returns the ID for predicate `term`, inserting it if absent.
  PredicateId EncodePredicate(const rdf::Term& term);

  /// Returns the ID for `term` or kInvalidTermId when absent.
  TermId LookupResource(const rdf::Term& term) const;

  /// Returns the predicate ID or kInvalidPredicateId when absent.
  PredicateId LookupPredicate(const rdf::Term& term) const;

  /// Decodes a resource ID. Asserts on out-of-range IDs.
  const rdf::Term& DecodeResource(TermId id) const;

  /// Decodes a predicate ID. Asserts on out-of-range IDs.
  const rdf::Term& DecodePredicate(PredicateId id) const;

  /// Encodes a string-level triple, inserting unseen terms.
  EncodedTriple Encode(const rdf::Triple& triple);

  /// Encodes without inserting; any unseen term yields NotFound.
  Result<EncodedTriple> EncodeExisting(const rdf::Triple& triple) const;

  /// Decodes an encoded triple back to string level.
  rdf::Triple Decode(const EncodedTriple& triple) const;

  /// Number of distinct resources (max resource ID).
  TermId resource_count() const {
    return static_cast<TermId>(resources_.size());
  }

  /// Number of distinct predicates (max predicate ID).
  PredicateId predicate_count() const {
    return static_cast<PredicateId>(predicates_.size());
  }

  /// Approximate heap footprint in bytes (strings + hash tables).
  size_t MemoryUsage() const;

 private:
  std::vector<rdf::Term> resources_;    // index = id - 1
  std::vector<rdf::Term> predicates_;   // index = id - 1
  std::unordered_map<std::string, TermId> resource_ids_;
  std::unordered_map<std::string, PredicateId> predicate_ids_;
};

}  // namespace parj::dict

#endif  // PARJ_DICT_DICTIONARY_H_
