#ifndef PARJ_DICT_DICTIONARY_H_
#define PARJ_DICT_DICTIONARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "rdf/term.h"

namespace parj::dict {

/// Transparent (heterogeneous) hash for the dictionary's key maps: lets
/// lookups probe with a `std::string_view` into a reused buffer, so a hit
/// never allocates a key string. `std::hash<std::string_view>` is
/// guaranteed to agree with `std::hash<std::string>` on equal content.
struct TermKeyHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

/// Map from a term's canonical dictionary key to an ID, with transparent
/// lookup. Shared by the Dictionary itself and the chunk-local delta maps
/// of the sharded encoder.
template <typename V>
using TermKeyMap = std::unordered_map<std::string, V, TermKeyHash,
                                      std::equal_to<>>;

namespace internal {
/// Per-thread scratch buffer for building dictionary keys. Reused across
/// calls, so after warm-up key construction never allocates.
std::string& TlsKeyBuffer();
}  // namespace internal

/// Dictionary encoding for RDF terms (paper §3): every distinct value that
/// appears in a subject or object position receives a dense integer ID from
/// one shared ID space (1..N); predicates receive IDs from a second,
/// independent space. ID 0 is reserved as invalid in both spaces.
///
/// The dictionary is append-only; IDs are assigned in first-seen order,
/// which the loader exploits to make encoding deterministic for a given
/// input order. Concurrent READERS (Lookup*/Decode*) are safe; any write
/// (Encode* miss) requires exclusive access — the parallel bulk loader
/// gets both by encoding chunks against a frozen dictionary plus
/// chunk-local deltas (see dict/sharded_encoder.h).
class Dictionary {
 public:
  Dictionary() = default;

  // Movable but not implicitly copyable: the dictionary can hold hundreds
  // of MB. Use Clone() when a copy is genuinely needed (e.g. building a
  // materialized database next to the base one).
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;

  /// Explicit deep copy preserving all ID assignments.
  Dictionary Clone() const;

  /// Bulk-builds a dictionary whose ID assignment is positional:
  /// resources[i] gets ID i+1, predicates[i] gets ID i+1. Used by the
  /// parallel snapshot loader, which decodes the term arrays up front.
  /// A duplicate term in either list yields ParseError.
  static Result<Dictionary> FromTerms(std::vector<rdf::Term> resources,
                                      std::vector<rdf::Term> predicates);

  /// Pre-sizes the hash tables and term arrays (load-time optimization;
  /// never required for correctness).
  void Reserve(size_t resources, size_t predicates);

  /// Returns the ID for `term`, inserting it if absent.
  TermId EncodeResource(const rdf::Term& term);
  /// Move-inserting variant for bulk paths (the sharded encoder's merge).
  TermId EncodeResource(rdf::Term&& term);

  /// Returns the ID for predicate `term`, inserting it if absent.
  PredicateId EncodePredicate(const rdf::Term& term);
  PredicateId EncodePredicate(rdf::Term&& term);

  /// Returns the ID for `term` or kInvalidTermId when absent.
  /// Allocation-free on hits (transparent map probe on a reused buffer).
  TermId LookupResource(const rdf::Term& term) const;

  /// Returns the predicate ID or kInvalidPredicateId when absent.
  PredicateId LookupPredicate(const rdf::Term& term) const;

  /// Lookup by a precomputed canonical key (Term::AppendDictionaryKey);
  /// lets callers that already built the key probe without rebuilding it.
  TermId LookupResourceByKey(std::string_view key) const;
  PredicateId LookupPredicateByKey(std::string_view key) const;

  /// Decodes a resource ID. Asserts on out-of-range IDs.
  const rdf::Term& DecodeResource(TermId id) const;

  /// Decodes a predicate ID. Asserts on out-of-range IDs.
  const rdf::Term& DecodePredicate(PredicateId id) const;

  /// Encodes a string-level triple, inserting unseen terms.
  EncodedTriple Encode(const rdf::Triple& triple);

  /// Encodes without inserting; any unseen term yields NotFound.
  Result<EncodedTriple> EncodeExisting(const rdf::Triple& triple) const;

  /// Decodes an encoded triple back to string level.
  rdf::Triple Decode(const EncodedTriple& triple) const;

  /// Number of distinct resources (max resource ID).
  TermId resource_count() const {
    return static_cast<TermId>(resources_.size());
  }

  /// Number of distinct predicates (max predicate ID).
  PredicateId predicate_count() const {
    return static_cast<PredicateId>(predicates_.size());
  }

  /// Approximate heap footprint in bytes (strings + hash tables).
  size_t MemoryUsage() const;

 private:
  std::vector<rdf::Term> resources_;    // index = id - 1
  std::vector<rdf::Term> predicates_;   // index = id - 1
  TermKeyMap<TermId> resource_ids_;
  TermKeyMap<PredicateId> predicate_ids_;
};

}  // namespace parj::dict

#endif  // PARJ_DICT_DICTIONARY_H_
