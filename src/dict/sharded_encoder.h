#ifndef PARJ_DICT_SHARDED_ENCODER_H_
#define PARJ_DICT_SHARDED_ENCODER_H_

#include <span>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "dict/dictionary.h"
#include "rdf/term.h"

namespace parj::server {
class ThreadPool;
}  // namespace parj::server

namespace parj::dict {

/// Deterministic two-phase parallel dictionary encoding (bulk-load
/// pipeline, DESIGN.md §10).
///
/// Phase 1 — EncodeChunk, one call per input chunk, all concurrent: each
/// chunk encodes its triples against a FROZEN base dictionary (read-only,
/// safely shared) plus a chunk-local delta dictionary that assigns
/// provisional IDs (kDeltaTag | local-index) to terms the base does not
/// know, in first-occurrence order within the chunk.
///
/// Phase 2 — MergeEncodedChunks: deltas are folded into the base IN CHUNK
/// ORDER, so a term's final ID equals the ID a serial first-occurrence
/// scan of the concatenated input would have assigned — byte-identical
/// dictionaries and snapshots whatever the thread count or chunk size.
/// The per-chunk patch of provisional IDs to final IDs runs in parallel.

/// High bit of a TermId marks a provisional chunk-local delta index during
/// phase 1. Final dictionaries must stay below this (2^31 terms), which
/// MergeEncodedChunks enforces.
inline constexpr TermId kDeltaTag = TermId{1} << 31;

/// One chunk's provisional encoding.
struct EncodedChunk {
  /// Triples whose IDs are either final (base hits) or provisional
  /// (kDeltaTag set; low bits index the delta lists below).
  std::vector<EncodedTriple> triples;
  /// Terms unknown to the base, in first-occurrence (subject, predicate,
  /// object within each triple) order.
  std::vector<rdf::Term> delta_resources;
  std::vector<rdf::Term> delta_predicates;
};

/// Phase 1: encodes `triples` against the frozen `base` plus a fresh
/// chunk-local delta. Safe to run concurrently with other EncodeChunk
/// calls sharing `base`, as long as nothing mutates `base` meanwhile.
/// Base hits are allocation-free (transparent-hash probe).
EncodedChunk EncodeChunk(const Dictionary& base,
                         std::span<const rdf::Triple> triples);

/// Phases 2+3: merges every chunk's delta into `*base` in chunk order,
/// patches all provisional IDs to final ones (on `pool` when non-null),
/// and returns the chunks' triples concatenated in chunk order. Fails
/// with Internal if the dictionary would cross the kDeltaTag capacity.
Result<std::vector<EncodedTriple>> MergeEncodedChunks(
    Dictionary* base, std::vector<EncodedChunk> chunks,
    server::ThreadPool* pool = nullptr);

}  // namespace parj::dict

#endif  // PARJ_DICT_SHARDED_ENCODER_H_
