#include "dict/dictionary.h"

#include "common/logging.h"

namespace parj::dict {

Dictionary Dictionary::Clone() const {
  Dictionary copy;
  copy.resources_ = resources_;
  copy.predicates_ = predicates_;
  copy.resource_ids_ = resource_ids_;
  copy.predicate_ids_ = predicate_ids_;
  return copy;
}

TermId Dictionary::EncodeResource(const rdf::Term& term) {
  std::string key = term.DictionaryKey();
  auto it = resource_ids_.find(key);
  if (it != resource_ids_.end()) return it->second;
  resources_.push_back(term);
  TermId id = static_cast<TermId>(resources_.size());
  resource_ids_.emplace(std::move(key), id);
  return id;
}

PredicateId Dictionary::EncodePredicate(const rdf::Term& term) {
  std::string key = term.DictionaryKey();
  auto it = predicate_ids_.find(key);
  if (it != predicate_ids_.end()) return it->second;
  predicates_.push_back(term);
  PredicateId id = static_cast<PredicateId>(predicates_.size());
  predicate_ids_.emplace(std::move(key), id);
  return id;
}

TermId Dictionary::LookupResource(const rdf::Term& term) const {
  auto it = resource_ids_.find(term.DictionaryKey());
  return it == resource_ids_.end() ? kInvalidTermId : it->second;
}

PredicateId Dictionary::LookupPredicate(const rdf::Term& term) const {
  auto it = predicate_ids_.find(term.DictionaryKey());
  return it == predicate_ids_.end() ? kInvalidPredicateId : it->second;
}

const rdf::Term& Dictionary::DecodeResource(TermId id) const {
  PARJ_CHECK(id != kInvalidTermId && id <= resources_.size())
      << "resource id out of range: " << id;
  return resources_[id - 1];
}

const rdf::Term& Dictionary::DecodePredicate(PredicateId id) const {
  PARJ_CHECK(id != kInvalidPredicateId && id <= predicates_.size())
      << "predicate id out of range: " << id;
  return predicates_[id - 1];
}

EncodedTriple Dictionary::Encode(const rdf::Triple& triple) {
  EncodedTriple out;
  out.subject = EncodeResource(triple.subject);
  out.predicate = EncodePredicate(triple.predicate);
  out.object = EncodeResource(triple.object);
  return out;
}

Result<EncodedTriple> Dictionary::EncodeExisting(
    const rdf::Triple& triple) const {
  EncodedTriple out;
  out.subject = LookupResource(triple.subject);
  out.predicate = LookupPredicate(triple.predicate);
  out.object = LookupResource(triple.object);
  if (out.subject == kInvalidTermId) {
    return Status::NotFound("subject not in dictionary: " +
                            triple.subject.ToNTriples());
  }
  if (out.predicate == kInvalidPredicateId) {
    return Status::NotFound("predicate not in dictionary: " +
                            triple.predicate.ToNTriples());
  }
  if (out.object == kInvalidTermId) {
    return Status::NotFound("object not in dictionary: " +
                            triple.object.ToNTriples());
  }
  return out;
}

rdf::Triple Dictionary::Decode(const EncodedTriple& triple) const {
  return rdf::Triple{DecodeResource(triple.subject),
                     DecodePredicate(triple.predicate),
                     DecodeResource(triple.object)};
}

size_t Dictionary::MemoryUsage() const {
  size_t bytes = 0;
  auto term_bytes = [](const rdf::Term& t) {
    return sizeof(rdf::Term) + t.lexical().capacity() +
           t.datatype().capacity() + t.lang().capacity();
  };
  for (const auto& t : resources_) bytes += term_bytes(t);
  for (const auto& t : predicates_) bytes += term_bytes(t);
  for (const auto& [k, v] : resource_ids_) {
    bytes += k.capacity() + sizeof(v) + 32;  // bucket overhead estimate
  }
  for (const auto& [k, v] : predicate_ids_) {
    bytes += k.capacity() + sizeof(v) + 32;
  }
  return bytes;
}

}  // namespace parj::dict
