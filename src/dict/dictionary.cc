#include "dict/dictionary.h"

#include <utility>

#include "common/logging.h"

namespace parj::dict {

namespace internal {

std::string& TlsKeyBuffer() {
  thread_local std::string buffer;
  return buffer;
}

}  // namespace internal

namespace {

/// Builds `term`'s canonical key in the thread-local scratch buffer and
/// returns a view of it (valid until the next call on this thread).
std::string_view ScratchKey(const rdf::Term& term) {
  std::string& key = internal::TlsKeyBuffer();
  key.clear();
  term.AppendDictionaryKey(&key);
  return key;
}

}  // namespace

Dictionary Dictionary::Clone() const {
  Dictionary copy;
  copy.resources_ = resources_;
  copy.predicates_ = predicates_;
  copy.resource_ids_ = resource_ids_;
  copy.predicate_ids_ = predicate_ids_;
  return copy;
}

Result<Dictionary> Dictionary::FromTerms(std::vector<rdf::Term> resources,
                                         std::vector<rdf::Term> predicates) {
  Dictionary dict;
  dict.resources_ = std::move(resources);
  dict.predicates_ = std::move(predicates);
  dict.resource_ids_.reserve(dict.resources_.size());
  dict.predicate_ids_.reserve(dict.predicates_.size());
  for (size_t i = 0; i < dict.resources_.size(); ++i) {
    auto [it, inserted] = dict.resource_ids_.emplace(
        dict.resources_[i].DictionaryKey(), static_cast<TermId>(i + 1));
    if (!inserted) {
      return Status::ParseError("duplicate resource term '" + it->first +
                                "' in bulk dictionary build");
    }
  }
  for (size_t i = 0; i < dict.predicates_.size(); ++i) {
    auto [it, inserted] = dict.predicate_ids_.emplace(
        dict.predicates_[i].DictionaryKey(), static_cast<PredicateId>(i + 1));
    if (!inserted) {
      return Status::ParseError("duplicate predicate term '" + it->first +
                                "' in bulk dictionary build");
    }
  }
  return dict;
}

void Dictionary::Reserve(size_t resources, size_t predicates) {
  resources_.reserve(resources);
  predicates_.reserve(predicates);
  resource_ids_.reserve(resources);
  predicate_ids_.reserve(predicates);
}

TermId Dictionary::EncodeResource(const rdf::Term& term) {
  const std::string_view key = ScratchKey(term);
  auto it = resource_ids_.find(key);
  if (it != resource_ids_.end()) return it->second;  // hit: no allocation
  resources_.push_back(term);
  TermId id = static_cast<TermId>(resources_.size());
  resource_ids_.emplace(std::string(key), id);
  return id;
}

TermId Dictionary::EncodeResource(rdf::Term&& term) {
  const std::string_view key = ScratchKey(term);
  auto it = resource_ids_.find(key);
  if (it != resource_ids_.end()) return it->second;
  resources_.push_back(std::move(term));
  TermId id = static_cast<TermId>(resources_.size());
  resource_ids_.emplace(std::string(key), id);
  return id;
}

PredicateId Dictionary::EncodePredicate(const rdf::Term& term) {
  const std::string_view key = ScratchKey(term);
  auto it = predicate_ids_.find(key);
  if (it != predicate_ids_.end()) return it->second;
  predicates_.push_back(term);
  PredicateId id = static_cast<PredicateId>(predicates_.size());
  predicate_ids_.emplace(std::string(key), id);
  return id;
}

PredicateId Dictionary::EncodePredicate(rdf::Term&& term) {
  const std::string_view key = ScratchKey(term);
  auto it = predicate_ids_.find(key);
  if (it != predicate_ids_.end()) return it->second;
  predicates_.push_back(std::move(term));
  PredicateId id = static_cast<PredicateId>(predicates_.size());
  predicate_ids_.emplace(std::string(key), id);
  return id;
}

TermId Dictionary::LookupResource(const rdf::Term& term) const {
  return LookupResourceByKey(ScratchKey(term));
}

PredicateId Dictionary::LookupPredicate(const rdf::Term& term) const {
  return LookupPredicateByKey(ScratchKey(term));
}

TermId Dictionary::LookupResourceByKey(std::string_view key) const {
  auto it = resource_ids_.find(key);
  return it == resource_ids_.end() ? kInvalidTermId : it->second;
}

PredicateId Dictionary::LookupPredicateByKey(std::string_view key) const {
  auto it = predicate_ids_.find(key);
  return it == predicate_ids_.end() ? kInvalidPredicateId : it->second;
}

const rdf::Term& Dictionary::DecodeResource(TermId id) const {
  PARJ_CHECK(id != kInvalidTermId && id <= resources_.size())
      << "resource id out of range: " << id;
  return resources_[id - 1];
}

const rdf::Term& Dictionary::DecodePredicate(PredicateId id) const {
  PARJ_CHECK(id != kInvalidPredicateId && id <= predicates_.size())
      << "predicate id out of range: " << id;
  return predicates_[id - 1];
}

EncodedTriple Dictionary::Encode(const rdf::Triple& triple) {
  EncodedTriple out;
  out.subject = EncodeResource(triple.subject);
  out.predicate = EncodePredicate(triple.predicate);
  out.object = EncodeResource(triple.object);
  return out;
}

Result<EncodedTriple> Dictionary::EncodeExisting(
    const rdf::Triple& triple) const {
  EncodedTriple out;
  out.subject = LookupResource(triple.subject);
  out.predicate = LookupPredicate(triple.predicate);
  out.object = LookupResource(triple.object);
  if (out.subject == kInvalidTermId) {
    return Status::NotFound("subject not in dictionary: " +
                            triple.subject.ToNTriples());
  }
  if (out.predicate == kInvalidPredicateId) {
    return Status::NotFound("predicate not in dictionary: " +
                            triple.predicate.ToNTriples());
  }
  if (out.object == kInvalidTermId) {
    return Status::NotFound("object not in dictionary: " +
                            triple.object.ToNTriples());
  }
  return out;
}

rdf::Triple Dictionary::Decode(const EncodedTriple& triple) const {
  return rdf::Triple{DecodeResource(triple.subject),
                     DecodePredicate(triple.predicate),
                     DecodeResource(triple.object)};
}

size_t Dictionary::MemoryUsage() const {
  size_t bytes = 0;
  auto term_bytes = [](const rdf::Term& t) {
    return sizeof(rdf::Term) + t.lexical().capacity() +
           t.datatype().capacity() + t.lang().capacity();
  };
  for (const auto& t : resources_) bytes += term_bytes(t);
  for (const auto& t : predicates_) bytes += term_bytes(t);
  for (const auto& [k, v] : resource_ids_) {
    bytes += k.capacity() + sizeof(v) + 32;  // bucket overhead estimate
  }
  for (const auto& [k, v] : predicate_ids_) {
    bytes += k.capacity() + sizeof(v) + 32;
  }
  return bytes;
}

}  // namespace parj::dict
