#include "dict/sharded_encoder.h"

#include <utility>

#include "server/thread_pool.h"

namespace parj::dict {

namespace {

/// Encodes one term against base + delta, assigning a provisional delta
/// index on a double miss. `delta_ids` maps key -> local index into
/// `delta_terms`.
template <typename LookupByKey>
TermId EncodeTermAgainst(const rdf::Term& term, const LookupByKey& base_lookup,
                         TermKeyMap<TermId>* delta_ids,
                         std::vector<rdf::Term>* delta_terms) {
  std::string& key = internal::TlsKeyBuffer();
  key.clear();
  term.AppendDictionaryKey(&key);
  const std::string_view view(key);
  const TermId base_id = base_lookup(view);
  if (base_id != kInvalidTermId) return base_id;
  auto it = delta_ids->find(view);
  if (it != delta_ids->end()) return kDeltaTag | it->second;
  const TermId local = static_cast<TermId>(delta_terms->size());
  delta_terms->push_back(term);
  delta_ids->emplace(std::string(view), local);
  return kDeltaTag | local;
}

}  // namespace

EncodedChunk EncodeChunk(const Dictionary& base,
                         std::span<const rdf::Triple> triples) {
  EncodedChunk out;
  out.triples.reserve(triples.size());
  TermKeyMap<TermId> resource_delta_ids;
  TermKeyMap<TermId> predicate_delta_ids;
  const auto resource_lookup = [&base](std::string_view key) {
    return base.LookupResourceByKey(key);
  };
  const auto predicate_lookup = [&base](std::string_view key) {
    return base.LookupPredicateByKey(key);
  };
  for (const rdf::Triple& t : triples) {
    EncodedTriple e;
    e.subject = EncodeTermAgainst(t.subject, resource_lookup,
                                  &resource_delta_ids, &out.delta_resources);
    e.predicate = EncodeTermAgainst(t.predicate, predicate_lookup,
                                    &predicate_delta_ids,
                                    &out.delta_predicates);
    e.object = EncodeTermAgainst(t.object, resource_lookup,
                                 &resource_delta_ids, &out.delta_resources);
    out.triples.push_back(e);
  }
  return out;
}

Result<std::vector<EncodedTriple>> MergeEncodedChunks(
    Dictionary* base, std::vector<EncodedChunk> chunks,
    server::ThreadPool* pool) {
  // Phase 2 (serial, chunk order): every delta term receives its final ID
  // exactly as a serial first-occurrence scan would have assigned it — a
  // term introduced by an earlier chunk resolves to that earlier ID.
  std::vector<std::vector<TermId>> resource_remap(chunks.size());
  std::vector<std::vector<PredicateId>> predicate_remap(chunks.size());
  uint64_t total_triples = 0;
  for (size_t c = 0; c < chunks.size(); ++c) {
    EncodedChunk& chunk = chunks[c];
    resource_remap[c].reserve(chunk.delta_resources.size());
    for (rdf::Term& term : chunk.delta_resources) {
      resource_remap[c].push_back(base->EncodeResource(std::move(term)));
    }
    chunk.delta_resources.clear();
    predicate_remap[c].reserve(chunk.delta_predicates.size());
    for (rdf::Term& term : chunk.delta_predicates) {
      predicate_remap[c].push_back(base->EncodePredicate(std::move(term)));
    }
    chunk.delta_predicates.clear();
    total_triples += chunk.triples.size();
  }
  if (base->resource_count() >= kDeltaTag ||
      base->predicate_count() >= kDeltaTag) {
    return Status::Internal(
        "dictionary exceeds 2^31 terms; sharded encoding tag space "
        "exhausted");
  }

  // Phase 3 (parallel): patch provisional IDs and concatenate, each chunk
  // writing its own pre-computed slice of the output.
  std::vector<size_t> offsets(chunks.size() + 1, 0);
  for (size_t c = 0; c < chunks.size(); ++c) {
    offsets[c + 1] = offsets[c] + chunks[c].triples.size();
  }
  std::vector<EncodedTriple> out(total_triples);
  auto patch_chunk = [&](size_t c) {
    const std::vector<TermId>& res_map = resource_remap[c];
    const std::vector<PredicateId>& pred_map = predicate_remap[c];
    EncodedTriple* dst = out.data() + offsets[c];
    for (const EncodedTriple& t : chunks[c].triples) {
      EncodedTriple patched = t;
      if (patched.subject & kDeltaTag) {
        patched.subject = res_map[patched.subject & ~kDeltaTag];
      }
      if (patched.predicate & kDeltaTag) {
        patched.predicate = pred_map[patched.predicate & ~kDeltaTag];
      }
      if (patched.object & kDeltaTag) {
        patched.object = res_map[patched.object & ~kDeltaTag];
      }
      *dst++ = patched;
    }
  };
  if (pool != nullptr && chunks.size() > 1) {
    pool->ParallelFor(chunks.size(), patch_chunk);
  } else {
    for (size_t c = 0; c < chunks.size(); ++c) patch_chunk(c);
  }
  return out;
}

}  // namespace parj::dict
