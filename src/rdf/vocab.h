#ifndef PARJ_RDF_VOCAB_H_
#define PARJ_RDF_VOCAB_H_

namespace parj::rdf::vocab {

/// Well-known IRIs used by the engine and the reasoning module.
inline constexpr char kRdfType[] =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
inline constexpr char kRdfsSubClassOf[] =
    "http://www.w3.org/2000/01/rdf-schema#subClassOf";
inline constexpr char kRdfsSubPropertyOf[] =
    "http://www.w3.org/2000/01/rdf-schema#subPropertyOf";
inline constexpr char kXsdInteger[] =
    "http://www.w3.org/2001/XMLSchema#integer";

}  // namespace parj::rdf::vocab

#endif  // PARJ_RDF_VOCAB_H_
