#ifndef PARJ_RDF_TERM_H_
#define PARJ_RDF_TERM_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace parj::rdf {

/// Kind of an RDF term.
enum class TermKind : uint8_t {
  kIri = 0,
  kLiteral = 1,
  kBlank = 2,
};

/// An RDF term (IRI, literal or blank node) at the string level, i.e.
/// before dictionary encoding. Literals carry an optional datatype IRI or
/// language tag (mutually exclusive, per RDF 1.1).
class Term {
 public:
  Term() : kind_(TermKind::kIri) {}

  static Term Iri(std::string iri) {
    Term t;
    t.kind_ = TermKind::kIri;
    t.lexical_ = std::move(iri);
    return t;
  }

  static Term Literal(std::string value) {
    Term t;
    t.kind_ = TermKind::kLiteral;
    t.lexical_ = std::move(value);
    return t;
  }

  static Term TypedLiteral(std::string value, std::string datatype_iri) {
    Term t = Literal(std::move(value));
    t.datatype_ = std::move(datatype_iri);
    return t;
  }

  static Term LangLiteral(std::string value, std::string lang) {
    Term t = Literal(std::move(value));
    t.lang_ = std::move(lang);
    return t;
  }

  static Term Blank(std::string label) {
    Term t;
    t.kind_ = TermKind::kBlank;
    t.lexical_ = std::move(label);
    return t;
  }

  TermKind kind() const { return kind_; }
  bool is_iri() const { return kind_ == TermKind::kIri; }
  bool is_literal() const { return kind_ == TermKind::kLiteral; }
  bool is_blank() const { return kind_ == TermKind::kBlank; }

  /// IRI string, literal value or blank node label (without decoration).
  const std::string& lexical() const { return lexical_; }
  /// Datatype IRI for typed literals, empty otherwise.
  const std::string& datatype() const { return datatype_; }
  /// Language tag for language-tagged literals, empty otherwise.
  const std::string& lang() const { return lang_; }

  /// Serializes in N-Triples syntax: `<iri>`, `"lit"`, `"lit"@en`,
  /// `"lit"^^<dt>` or `_:label`. Escapes `\`, `"`, newline and tab in
  /// literal values.
  std::string ToNTriples() const;

  /// Appends the N-Triples serialization to `*out` without clearing it.
  /// Allocation-free when `out` already has enough capacity, which is what
  /// makes dictionary lookups on a reused buffer allocation-free.
  void AppendNTriples(std::string* out) const;

  /// Canonical key used by the dictionary: distinct terms map to distinct
  /// keys and equal terms to equal keys.
  std::string DictionaryKey() const { return ToNTriples(); }

  /// Appends DictionaryKey() to `*out` (same bytes, no fresh allocation
  /// once `out` has capacity).
  void AppendDictionaryKey(std::string* out) const { AppendNTriples(out); }

  friend bool operator==(const Term& a, const Term& b) {
    return a.kind_ == b.kind_ && a.lexical_ == b.lexical_ &&
           a.datatype_ == b.datatype_ && a.lang_ == b.lang_;
  }

 private:
  TermKind kind_;
  std::string lexical_;
  std::string datatype_;
  std::string lang_;
};

/// An RDF statement at the string level.
struct Triple {
  Term subject;
  Term predicate;
  Term object;

  friend bool operator==(const Triple&, const Triple&) = default;
};

/// Escapes a literal value per N-Triples rules.
std::string EscapeLiteral(std::string_view value);

/// Reverses EscapeLiteral.
Result<std::string> UnescapeLiteral(std::string_view value);

}  // namespace parj::rdf

#endif  // PARJ_RDF_TERM_H_
