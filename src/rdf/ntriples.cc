#include "rdf/ntriples.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/strings.h"
#include "common/timer.h"
#include "server/thread_pool.h"

namespace parj::rdf {

namespace {

void SkipSpaces(std::string_view line, size_t* pos) {
  while (*pos < line.size() && (line[*pos] == ' ' || line[*pos] == '\t')) {
    ++(*pos);
  }
}

bool IsPnChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.';
}

}  // namespace

Result<Term> ParseTerm(std::string_view line, size_t* pos) {
  SkipSpaces(line, pos);
  if (*pos >= line.size()) {
    return Status::ParseError("expected term, found end of line");
  }
  char c = line[*pos];
  if (c == '<') {
    size_t end = line.find('>', *pos + 1);
    if (end == std::string_view::npos) {
      return Status::ParseError("unterminated IRI");
    }
    std::string iri(line.substr(*pos + 1, end - *pos - 1));
    if (iri.empty()) return Status::ParseError("empty IRI");
    *pos = end + 1;
    return Term::Iri(std::move(iri));
  }
  if (c == '_') {
    if (*pos + 1 >= line.size() || line[*pos + 1] != ':') {
      return Status::ParseError("malformed blank node: expected _:");
    }
    size_t start = *pos + 2;
    size_t end = start;
    while (end < line.size() && IsPnChar(line[end])) ++end;
    if (end == start) return Status::ParseError("empty blank node label");
    std::string label(line.substr(start, end - start));
    *pos = end;
    return Term::Blank(std::move(label));
  }
  if (c == '"') {
    // Find the closing quote, honouring backslash escapes.
    size_t end = *pos + 1;
    bool escaped = false;
    while (end < line.size()) {
      if (escaped) {
        escaped = false;
      } else if (line[end] == '\\') {
        escaped = true;
      } else if (line[end] == '"') {
        break;
      }
      ++end;
    }
    if (end >= line.size()) {
      return Status::ParseError("unterminated literal");
    }
    PARJ_ASSIGN_OR_RETURN(std::string value,
                          UnescapeLiteral(line.substr(*pos + 1, end - *pos - 1)));
    *pos = end + 1;
    // Optional language tag or datatype.
    if (*pos < line.size() && line[*pos] == '@') {
      size_t start = *pos + 1;
      size_t lang_end = start;
      while (lang_end < line.size() &&
             (std::isalnum(static_cast<unsigned char>(line[lang_end])) ||
              line[lang_end] == '-')) {
        ++lang_end;
      }
      if (lang_end == start) return Status::ParseError("empty language tag");
      std::string lang(line.substr(start, lang_end - start));
      *pos = lang_end;
      return Term::LangLiteral(std::move(value), std::move(lang));
    }
    if (*pos + 1 < line.size() && line[*pos] == '^' && line[*pos + 1] == '^') {
      *pos += 2;
      if (*pos >= line.size() || line[*pos] != '<') {
        return Status::ParseError("expected datatype IRI after ^^");
      }
      size_t end_dt = line.find('>', *pos + 1);
      if (end_dt == std::string_view::npos) {
        return Status::ParseError("unterminated datatype IRI");
      }
      std::string dt(line.substr(*pos + 1, end_dt - *pos - 1));
      *pos = end_dt + 1;
      return Term::TypedLiteral(std::move(value), std::move(dt));
    }
    return Term::Literal(std::move(value));
  }
  return Status::ParseError(std::string("unexpected character '") + c +
                            "' at start of term");
}

Result<Triple> ParseStatementLine(std::string_view raw) {
  std::string_view line = TrimWhitespace(raw);
  if (line.empty() || line[0] == '#') {
    return Status::NotFound("blank or comment line");
  }
  size_t pos = 0;
  PARJ_ASSIGN_OR_RETURN(Term subject, ParseTerm(line, &pos));
  if (subject.is_literal()) {
    return Status::ParseError("literal in subject position");
  }
  PARJ_ASSIGN_OR_RETURN(Term predicate, ParseTerm(line, &pos));
  if (!predicate.is_iri()) {
    return Status::ParseError("predicate must be an IRI");
  }
  PARJ_ASSIGN_OR_RETURN(Term object, ParseTerm(line, &pos));
  SkipSpaces(line, &pos);
  if (pos >= line.size() || line[pos] != '.') {
    return Status::ParseError("expected '.' terminating statement");
  }
  ++pos;
  SkipSpaces(line, &pos);
  if (pos != line.size()) {
    return Status::ParseError("trailing garbage after '.'");
  }
  return Triple{std::move(subject), std::move(predicate), std::move(object)};
}

Status NTriplesParser::HandleLine(std::string_view line, uint64_t line_no,
                                  const std::function<void(Triple)>& sink) {
  Result<Triple> triple = ParseStatementLine(line);
  if (triple.ok()) {
    ++parsed_triples_;
    sink(std::move(triple).value());
    return Status::OK();
  }
  if (triple.status().code() == StatusCode::kNotFound) {
    return Status::OK();  // blank line / comment
  }
  if (!options_.strict) {
    ++skipped_lines_;
    return Status::OK();
  }
  return Status::ParseError("line " + std::to_string(line_no) + ": " +
                            triple.status().message());
}

Status NTriplesParser::ParseDocument(std::string_view text,
                                     const std::function<void(Triple)>& sink) {
  uint64_t line_no = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    std::string_view line = (end == std::string_view::npos)
                                ? text.substr(start)
                                : text.substr(start, end - start);
    ++line_no;
    PARJ_RETURN_NOT_OK(HandleLine(line, line_no, sink));
    if (end == std::string_view::npos) break;
    start = end + 1;
  }
  return Status::OK();
}

Status NTriplesParser::ParseStream(std::istream& in,
                                   const std::function<void(Triple)>& sink) {
  std::string line;
  uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    PARJ_RETURN_NOT_OK(HandleLine(line, line_no, sink));
  }
  if (in.bad()) return Status::IoError("stream error while reading N-Triples");
  return Status::OK();
}

Result<std::vector<Triple>> NTriplesParser::ParseToVector(
    std::string_view text) {
  std::vector<Triple> out;
  Status st = ParseDocument(text, [&out](Triple t) { out.push_back(std::move(t)); });
  if (!st.ok()) return st;
  return out;
}

namespace {

/// Newline-aligned chunk byte ranges covering all of `text`. Every chunk
/// except possibly the last ends just past a '\n'; a single line longer
/// than `chunk_bytes` gets a correspondingly oversized chunk.
std::vector<std::pair<size_t, size_t>> SplitNewlineChunks(
    std::string_view text, size_t chunk_bytes) {
  std::vector<std::pair<size_t, size_t>> chunks;
  if (chunk_bytes == 0) chunk_bytes = 1;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = pos + chunk_bytes;
    if (end >= text.size()) {
      end = text.size();
    } else {
      const size_t nl = text.find('\n', end - 1);
      end = (nl == std::string_view::npos) ? text.size() : nl + 1;
    }
    chunks.emplace_back(pos, end);
    pos = end;
  }
  return chunks;
}

/// Parses one chunk; records errors with chunk-local 1-based line
/// ordinals (rebased to file line numbers once all chunks report their
/// line counts).
void ParseOneChunk(std::string_view text, bool strict, ParsedChunk* chunk) {
  const std::string_view body =
      text.substr(chunk->begin_offset, chunk->end_offset - chunk->begin_offset);
  uint64_t local_line = 0;
  size_t start = 0;
  while (start < body.size()) {
    size_t end = body.find('\n', start);
    const std::string_view line = (end == std::string_view::npos)
                                      ? body.substr(start)
                                      : body.substr(start, end - start);
    ++local_line;
    Result<Triple> triple = ParseStatementLine(line);
    if (triple.ok()) {
      chunk->triples.push_back(std::move(triple).value());
    } else if (triple.status().code() != StatusCode::kNotFound) {
      chunk->errors.push_back(
          ParsedChunk::LineError{local_line, triple.status().message()});
      if (!strict) ++chunk->skipped_lines;
    }
    if (end == std::string_view::npos) break;
    start = end + 1;
  }
  chunk->line_count = local_line;
}

}  // namespace

Result<std::vector<ParsedChunk>> ParseTextParallel(
    std::string_view text, const ParallelParseOptions& options) {
  std::vector<ParsedChunk> chunks;
  const auto ranges = SplitNewlineChunks(text, options.chunk_bytes);
  chunks.resize(ranges.size());
  for (size_t c = 0; c < ranges.size(); ++c) {
    chunks[c].begin_offset = ranges[c].first;
    chunks[c].end_offset = ranges[c].second;
  }

  auto parse_one = [&](size_t c) {
    ParseOneChunk(text, options.strict, &chunks[c]);
  };
  if (options.pool != nullptr && chunks.size() > 1) {
    options.pool->ParallelFor(chunks.size(), parse_one);
  } else {
    for (size_t c = 0; c < chunks.size(); ++c) parse_one(c);
  }

  // Rebase chunk-local line ordinals to real file line numbers.
  uint64_t line_base = 0;
  for (ParsedChunk& chunk : chunks) {
    chunk.first_line = line_base + 1;
    for (ParsedChunk::LineError& error : chunk.errors) {
      error.line += line_base;
    }
    line_base += chunk.line_count;
  }

  if (options.strict) {
    // Fail with the earliest error, exactly as the serial parser's
    // first-error abort would have.
    const ParsedChunk::LineError* first = nullptr;
    for (const ParsedChunk& chunk : chunks) {
      for (const ParsedChunk::LineError& error : chunk.errors) {
        if (first == nullptr || error.line < first->line) first = &error;
      }
    }
    if (first != nullptr) {
      return Status::ParseError("line " + std::to_string(first->line) + ": " +
                                first->message);
    }
  }
  return chunks;
}

Result<std::vector<ParsedChunk>> ParseFileParallel(
    const std::string& path, const ParallelParseOptions& options,
    double* read_millis) {
  Stopwatch read_timer;
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read failure on " + path);
  const std::string text = std::move(buffer).str();
  if (read_millis != nullptr) *read_millis = read_timer.ElapsedMillis();
  return ParseTextParallel(text, options);
}

void WriteNTriples(const std::vector<Triple>& triples, std::ostream& out) {
  for (const Triple& t : triples) {
    out << t.subject.ToNTriples() << " " << t.predicate.ToNTriples() << " "
        << t.object.ToNTriples() << " .\n";
  }
}

}  // namespace parj::rdf
