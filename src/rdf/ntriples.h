#ifndef PARJ_RDF_NTRIPLES_H_
#define PARJ_RDF_NTRIPLES_H_

#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "rdf/term.h"

namespace parj::rdf {

/// Parses one N-Triples term starting at `*pos` in `line`; advances `*pos`
/// past the term. Accepts IRIs, literals (plain, language-tagged, typed)
/// and blank nodes.
Result<Term> ParseTerm(std::string_view line, size_t* pos);

/// Parses a single N-Triples statement line ("<s> <p> <o> ." with optional
/// surrounding whitespace). Empty lines and `#` comment lines yield
/// Status::NotFound, which callers treat as "skip".
Result<Triple> ParseStatementLine(std::string_view line);

/// Streaming N-Triples document parser.
class NTriplesParser {
 public:
  struct Options {
    /// When true, a malformed line aborts the parse; when false it is
    /// counted and skipped.
    bool strict = true;
  };

  NTriplesParser() = default;
  explicit NTriplesParser(Options options) : options_(options) {}

  /// Parses a whole document from a string, invoking `sink` per triple.
  Status ParseDocument(std::string_view text,
                       const std::function<void(Triple)>& sink);

  /// Parses a document from a stream (e.g. std::ifstream).
  Status ParseStream(std::istream& in,
                     const std::function<void(Triple)>& sink);

  /// Convenience: parse a whole document into a vector.
  Result<std::vector<Triple>> ParseToVector(std::string_view text);

  /// Number of malformed lines skipped in non-strict mode so far.
  uint64_t skipped_lines() const { return skipped_lines_; }
  /// Number of triples produced so far.
  uint64_t parsed_triples() const { return parsed_triples_; }

 private:
  Status HandleLine(std::string_view line, uint64_t line_no,
                    const std::function<void(Triple)>& sink);

  Options options_;
  uint64_t skipped_lines_ = 0;
  uint64_t parsed_triples_ = 0;
};

/// Serializes triples in N-Triples syntax, one statement per line.
void WriteNTriples(const std::vector<Triple>& triples, std::ostream& out);

}  // namespace parj::rdf

#endif  // PARJ_RDF_NTRIPLES_H_
