#ifndef PARJ_RDF_NTRIPLES_H_
#define PARJ_RDF_NTRIPLES_H_

#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "rdf/term.h"

namespace parj::server {
class ThreadPool;
}  // namespace parj::server

namespace parj::rdf {

/// Parses one N-Triples term starting at `*pos` in `line`; advances `*pos`
/// past the term. Accepts IRIs, literals (plain, language-tagged, typed)
/// and blank nodes.
Result<Term> ParseTerm(std::string_view line, size_t* pos);

/// Parses a single N-Triples statement line ("<s> <p> <o> ." with optional
/// surrounding whitespace). Empty lines and `#` comment lines yield
/// Status::NotFound, which callers treat as "skip".
Result<Triple> ParseStatementLine(std::string_view line);

/// Streaming N-Triples document parser.
class NTriplesParser {
 public:
  struct Options {
    /// When true, a malformed line aborts the parse; when false it is
    /// counted and skipped.
    bool strict = true;
  };

  NTriplesParser() = default;
  explicit NTriplesParser(Options options) : options_(options) {}

  /// Parses a whole document from a string, invoking `sink` per triple.
  Status ParseDocument(std::string_view text,
                       const std::function<void(Triple)>& sink);

  /// Parses a document from a stream (e.g. std::ifstream).
  Status ParseStream(std::istream& in,
                     const std::function<void(Triple)>& sink);

  /// Convenience: parse a whole document into a vector.
  Result<std::vector<Triple>> ParseToVector(std::string_view text);

  /// Number of malformed lines skipped in non-strict mode so far.
  uint64_t skipped_lines() const { return skipped_lines_; }
  /// Number of triples produced so far.
  uint64_t parsed_triples() const { return parsed_triples_; }

 private:
  Status HandleLine(std::string_view line, uint64_t line_no,
                    const std::function<void(Triple)>& sink);

  Options options_;
  uint64_t skipped_lines_ = 0;
  uint64_t parsed_triples_ = 0;
};

/// Serializes triples in N-Triples syntax, one statement per line.
void WriteNTriples(const std::vector<Triple>& triples, std::ostream& out);

// --- Chunked parallel parsing (bulk-load pipeline, DESIGN.md §10) --------

/// One parsed chunk of a parallel parse. Chunks partition the input at
/// newline boundaries; all line numbers are real (1-based) file line
/// numbers, identical to what a serial parse would report.
struct ParsedChunk {
  std::vector<Triple> triples;
  /// File line number of the chunk's first line.
  uint64_t first_line = 1;
  /// Lines in this chunk (a trailing line without '\n' counts).
  uint64_t line_count = 0;
  /// Malformed lines skipped (only accumulates in non-strict mode).
  uint64_t skipped_lines = 0;
  /// Byte range of the chunk in the input text.
  size_t begin_offset = 0;
  size_t end_offset = 0;

  struct LineError {
    uint64_t line = 0;  ///< real file line number
    std::string message;
  };
  /// Every malformed line, with its real line number. In strict mode the
  /// overall parse fails with the earliest error across all chunks; in
  /// non-strict mode the lists are informational.
  std::vector<LineError> errors;
};

struct ParallelParseOptions {
  /// Strict: any malformed line fails the parse with "line N: ..." for
  /// the earliest offending line. Non-strict: malformed lines are skipped
  /// and recorded per chunk.
  bool strict = true;
  /// Target chunk size; actual chunks extend to the next newline.
  size_t chunk_bytes = size_t{16} << 20;
  /// Pool to parse chunks on; nullptr parses them serially (still through
  /// the identical chunked code path, so results cannot differ).
  server::ThreadPool* pool = nullptr;
};

/// Splits `text` into newline-aligned chunks of ~`chunk_bytes` and parses
/// them concurrently. The concatenated per-chunk triples are exactly the
/// serial parse's output (same order); per-chunk error lists carry real
/// line numbers. Empty input yields zero chunks.
Result<std::vector<ParsedChunk>> ParseTextParallel(
    std::string_view text, const ParallelParseOptions& options = {});

/// Reads `path` fully into memory and parses it with ParseTextParallel
/// (parsed Triples own their strings, so the file buffer is dropped on
/// return). `read_millis`, when non-null, receives the file-to-memory
/// read time.
Result<std::vector<ParsedChunk>> ParseFileParallel(
    const std::string& path, const ParallelParseOptions& options = {},
    double* read_millis = nullptr);

}  // namespace parj::rdf

#endif  // PARJ_RDF_NTRIPLES_H_
