#include "rdf/term.h"

namespace parj::rdf {

std::string EscapeLiteral(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

Result<std::string> UnescapeLiteral(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (size_t i = 0; i < value.size(); ++i) {
    char c = value[i];
    if (c != '\\') {
      out.push_back(c);
      continue;
    }
    if (i + 1 >= value.size()) {
      return Status::ParseError("dangling escape at end of literal");
    }
    char e = value[++i];
    switch (e) {
      case '\\':
        out.push_back('\\');
        break;
      case '"':
        out.push_back('"');
        break;
      case 'n':
        out.push_back('\n');
        break;
      case 'r':
        out.push_back('\r');
        break;
      case 't':
        out.push_back('\t');
        break;
      default:
        return Status::ParseError(std::string("unknown escape \\") + e);
    }
  }
  return out;
}

namespace {

/// EscapeLiteral, appending into an existing buffer (no temporary string).
void AppendEscapedLiteral(std::string_view value, std::string* out) {
  for (char c : value) {
    switch (c) {
      case '\\':
        out->append("\\\\");
        break;
      case '"':
        out->append("\\\"");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        out->push_back(c);
    }
  }
}

}  // namespace

void Term::AppendNTriples(std::string* out) const {
  switch (kind_) {
    case TermKind::kIri:
      out->push_back('<');
      out->append(lexical_);
      out->push_back('>');
      return;
    case TermKind::kBlank:
      out->append("_:");
      out->append(lexical_);
      return;
    case TermKind::kLiteral:
      out->push_back('"');
      AppendEscapedLiteral(lexical_, out);
      out->push_back('"');
      if (!lang_.empty()) {
        out->push_back('@');
        out->append(lang_);
      } else if (!datatype_.empty()) {
        out->append("^^<");
        out->append(datatype_);
        out->push_back('>');
      }
      return;
  }
}

std::string Term::ToNTriples() const {
  std::string out;
  AppendNTriples(&out);
  return out;
}

}  // namespace parj::rdf
