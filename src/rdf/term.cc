#include "rdf/term.h"

namespace parj::rdf {

std::string EscapeLiteral(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

Result<std::string> UnescapeLiteral(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (size_t i = 0; i < value.size(); ++i) {
    char c = value[i];
    if (c != '\\') {
      out.push_back(c);
      continue;
    }
    if (i + 1 >= value.size()) {
      return Status::ParseError("dangling escape at end of literal");
    }
    char e = value[++i];
    switch (e) {
      case '\\':
        out.push_back('\\');
        break;
      case '"':
        out.push_back('"');
        break;
      case 'n':
        out.push_back('\n');
        break;
      case 'r':
        out.push_back('\r');
        break;
      case 't':
        out.push_back('\t');
        break;
      default:
        return Status::ParseError(std::string("unknown escape \\") + e);
    }
  }
  return out;
}

std::string Term::ToNTriples() const {
  switch (kind_) {
    case TermKind::kIri:
      return "<" + lexical_ + ">";
    case TermKind::kBlank:
      return "_:" + lexical_;
    case TermKind::kLiteral: {
      std::string out = "\"" + EscapeLiteral(lexical_) + "\"";
      if (!lang_.empty()) {
        out += "@" + lang_;
      } else if (!datatype_.empty()) {
        out += "^^<" + datatype_ + ">";
      }
      return out;
    }
  }
  return {};
}

}  // namespace parj::rdf
