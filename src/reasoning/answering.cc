#include "reasoning/answering.h"

#include <algorithm>
#include <numeric>

#include "common/timer.h"
#include "query/optimizer.h"
#include "query/parser.h"

namespace parj::reasoning {

namespace {

void DeduplicateRows(std::vector<TermId>* rows, size_t width,
                     uint64_t* row_count) {
  if (width == 0 || rows->empty()) return;
  const size_t n = rows->size() / width;
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  auto row_less = [&](size_t a, size_t b) {
    return std::lexicographical_compare(
        rows->begin() + a * width, rows->begin() + (a + 1) * width,
        rows->begin() + b * width, rows->begin() + (b + 1) * width);
  };
  auto row_eq = [&](size_t a, size_t b) {
    return std::equal(rows->begin() + a * width,
                      rows->begin() + (a + 1) * width,
                      rows->begin() + b * width);
  };
  std::sort(order.begin(), order.end(), row_less);
  order.erase(std::unique(order.begin(), order.end(), row_eq), order.end());
  std::vector<TermId> deduped;
  deduped.reserve(order.size() * width);
  for (size_t idx : order) {
    deduped.insert(deduped.end(), rows->begin() + idx * width,
                   rows->begin() + (idx + 1) * width);
  }
  *rows = std::move(deduped);
  *row_count = order.size();
}

}  // namespace

Result<ReasoningResult> AnswerWithBackwardChaining(
    const storage::Database& db, std::string_view sparql,
    const Hierarchy& hierarchy, const ReasoningOptions& options) {
  Stopwatch timer;
  PARJ_ASSIGN_OR_RETURN(query::SelectQueryAst ast, query::ParseQuery(sparql));
  PARJ_ASSIGN_OR_RETURN(
      std::vector<query::EncodedQuery> branches,
      ExpandQuery(ast, hierarchy, db, options.rewrite));

  ReasoningResult result;
  result.branch_count = branches.size();

  join::Executor executor(&db);
  for (const query::EncodedQuery& branch : branches) {
    PARJ_ASSIGN_OR_RETURN(query::Plan plan,
                          query::Optimize(branch, db, options.optimizer));
    if (result.var_names.empty()) {
      result.var_names.reserve(plan.projection.size());
      for (int var : plan.projection) {
        result.var_names.push_back(plan.var_names[var]);
      }
      result.column_count = plan.projection.size();
    }
    if (plan.known_empty) continue;
    join::ExecOptions exec;
    exec.num_threads = options.num_threads;
    exec.strategy = options.strategy;
    exec.mode = join::ResultMode::kMaterialize;
    PARJ_ASSIGN_OR_RETURN(join::ExecResult branch_result,
                          executor.Execute(plan, exec));
    result.row_count += branch_result.row_count;
    result.counters.Add(branch_result.counters);
    result.rows.insert(result.rows.end(), branch_result.rows.begin(),
                       branch_result.rows.end());
  }

  if (options.deduplicate) {
    DeduplicateRows(&result.rows, result.column_count, &result.row_count);
  }
  result.total_millis = timer.ElapsedMillis();
  return result;
}

}  // namespace parj::reasoning
