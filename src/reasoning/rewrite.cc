#include "reasoning/rewrite.h"

#include <unordered_map>

#include "rdf/vocab.h"

namespace parj::reasoning {

namespace {

using query::EncodedPattern;
using query::EncodedQuery;
using query::PatternTerm;
using query::SelectQueryAst;
using query::TermOrVar;

/// Per-pattern alternative: a (predicate, object-override) pair. The
/// object override is used by type-pattern expansion; kInvalidTermId means
/// "keep the original object".
struct Alternative {
  PredicateId predicate = kInvalidPredicateId;
  TermId object_override = kInvalidTermId;
};

}  // namespace

Result<std::vector<EncodedQuery>> ExpandQuery(const SelectQueryAst& ast,
                                              const Hierarchy& hierarchy,
                                              const storage::Database& db,
                                              const RewriteOptions& options) {
  if (ast.patterns.empty()) {
    return Status::InvalidArgument("query has no triple patterns");
  }
  const dict::Dictionary& dict = db.dictionary();
  const PredicateId type_pid =
      dict.LookupPredicate(rdf::Term::Iri(rdf::vocab::kRdfType));

  // Shared variable interning (same scheme as EncodeQuery so every branch
  // agrees on ids and projection).
  EncodedQuery base;
  base.distinct = ast.distinct;
  base.limit = ast.limit;
  std::unordered_map<std::string, int> var_ids;
  auto intern_var = [&](const std::string& name) {
    auto it = var_ids.find(name);
    if (it != var_ids.end()) return it->second;
    int id = static_cast<int>(base.var_names.size());
    var_ids.emplace(name, id);
    base.var_names.push_back(name);
    return id;
  };
  auto encode_slot = [&](const TermOrVar& t, bool* unknown) -> PatternTerm {
    if (t.is_variable) return PatternTerm::Variable(intern_var(t.var));
    TermId id = dict.LookupResource(t.term);
    if (id == kInvalidTermId) *unknown = true;
    return PatternTerm::Constant(id);
  };

  // Per-pattern skeletons and alternative lists.
  std::vector<EncodedPattern> skeletons;
  std::vector<std::vector<Alternative>> alternatives;
  bool known_empty = false;
  for (const auto& p : ast.patterns) {
    if (p.predicate.is_variable) {
      return Status::Unsupported("variable predicates are not supported");
    }
    EncodedPattern skeleton;
    bool unknown_slot = false;
    skeleton.subject = encode_slot(p.subject, &unknown_slot);
    skeleton.object = encode_slot(p.object, &unknown_slot);

    const bool is_type_pattern =
        p.predicate.term.lexical() == rdf::vocab::kRdfType;
    std::vector<Alternative> alts;
    if (is_type_pattern && !p.object.is_variable) {
      // Type pattern with constant class: branch per subclass.
      if (type_pid != kInvalidPredicateId &&
          skeleton.object.constant != kInvalidTermId) {
        for (TermId cls : hierarchy.SubClassesOf(skeleton.object.constant)) {
          alts.push_back(Alternative{type_pid, cls});
        }
      }
      // The object constant is supplied per branch via object_override;
      // an unknown class (no dictionary entry) stays flagged as empty.
      skeleton.object = PatternTerm::Constant(kInvalidTermId);
    } else {
      // Branch per concrete sub-property.
      const PredicateId pid = dict.LookupPredicate(p.predicate.term);
      const TermId resource = dict.LookupResource(p.predicate.term);
      if (resource != kInvalidTermId) {
        for (PredicateId sub : hierarchy.SubPropertiesOf(resource)) {
          alts.push_back(Alternative{sub, kInvalidTermId});
        }
      }
      if (alts.empty() && pid != kInvalidPredicateId) {
        alts.push_back(Alternative{pid, kInvalidTermId});
      }
    }
    if (alts.empty() || unknown_slot) known_empty = true;
    skeletons.push_back(skeleton);
    alternatives.push_back(std::move(alts));
  }

  base.variable_count = static_cast<int>(base.var_names.size());
  if (ast.select_all) {
    for (int v = 0; v < base.variable_count; ++v) base.projection.push_back(v);
  } else {
    for (const std::string& name : ast.projection) {
      auto it = var_ids.find(name);
      if (it == var_ids.end()) {
        return Status::InvalidArgument("projected variable ?" + name +
                                       " does not occur in the BGP");
      }
      base.projection.push_back(it->second);
    }
  }
  if (base.projection.empty()) {
    return Status::InvalidArgument("empty projection");
  }

  if (known_empty) {
    EncodedQuery empty = base;
    empty.known_empty = true;
    empty.patterns = skeletons;
    return std::vector<EncodedQuery>{std::move(empty)};
  }

  // Branch count check before materializing the cross product.
  size_t branches = 1;
  for (const auto& alts : alternatives) {
    branches *= alts.size();
    if (branches > options.max_branches) {
      return Status::OutOfRange(
          "hierarchy expansion exceeds max_branches (" +
          std::to_string(options.max_branches) + ")");
    }
  }

  std::vector<EncodedQuery> out;
  out.reserve(branches);
  std::vector<size_t> choice(skeletons.size(), 0);
  while (true) {
    EncodedQuery branch = base;
    branch.patterns = skeletons;
    for (size_t i = 0; i < skeletons.size(); ++i) {
      const Alternative& alt = alternatives[i][choice[i]];
      branch.patterns[i].predicate = alt.predicate;
      if (alt.object_override != kInvalidTermId) {
        branch.patterns[i].object = PatternTerm::Constant(alt.object_override);
      }
    }
    out.push_back(std::move(branch));
    // Odometer increment.
    size_t i = 0;
    while (i < choice.size() && ++choice[i] == alternatives[i].size()) {
      choice[i] = 0;
      ++i;
    }
    if (i == choice.size()) break;
  }
  return out;
}

}  // namespace parj::reasoning
