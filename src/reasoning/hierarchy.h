#ifndef PARJ_REASONING_HIERARCHY_H_
#define PARJ_REASONING_HIERARCHY_H_

#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "storage/database.h"

namespace parj::reasoning {

/// Class and property hierarchies extracted from the rdfs:subClassOf and
/// rdfs:subPropertyOf statements of a loaded graph, with transitive
/// closures precomputed in both directions (paper §6: query answering
/// "with respect to class and property hierarchies").
///
/// Classes are resource TermIds. Properties are PredicateIds: an
/// rdfs:subPropertyOf statement mentions property IRIs in resource
/// positions, so extraction maps those resources back to predicate IDs
/// through the dictionary; a property IRI that never occurs as a
/// predicate (e.g. an abstract parent like ub:degreeFrom with no direct
/// assertions) receives no PredicateId and is tracked only as a parent of
/// its concrete sub-properties.
class Hierarchy {
 public:
  Hierarchy() = default;

  /// Extracts and closes the hierarchies of `db`. Cycles are tolerated
  /// (every member of a cycle subsumes the others).
  static Hierarchy FromDatabase(const storage::Database& db);

  bool empty() const {
    return class_sub_.empty() && property_sub_.empty();
  }

  /// All classes whose instances entail membership in `cls`, i.e. `cls`
  /// and its transitive subclasses. Always contains `cls` itself.
  std::vector<TermId> SubClassesOf(TermId cls) const;

  /// `cls` and its transitive superclasses (forward-chaining direction).
  std::vector<TermId> SuperClassesOf(TermId cls) const;

  /// The concrete predicates whose statements entail statements of
  /// `property_resource` (a property's *resource* id): its transitive
  /// sub-properties that exist as predicates, plus itself when it does.
  std::vector<PredicateId> SubPropertiesOf(TermId property_resource) const;

  /// Resource ids of `pred`'s transitive super-properties (not including
  /// the property itself).
  std::vector<TermId> SuperPropertyResourcesOf(PredicateId pred) const;

  /// Predicate id for a property resource, or kInvalidPredicateId.
  PredicateId PredicateForResource(TermId property_resource) const;

  size_t class_link_count() const { return class_link_count_; }
  size_t property_link_count() const { return property_link_count_; }

 private:
  static std::vector<TermId> Closure(
      const std::unordered_map<TermId, std::vector<TermId>>& edges,
      TermId start);

  // Direct edges: child -> parents (super maps), parent -> children (sub).
  std::unordered_map<TermId, std::vector<TermId>> class_sub_;
  std::unordered_map<TermId, std::vector<TermId>> class_super_;
  std::unordered_map<TermId, std::vector<TermId>> property_sub_;
  std::unordered_map<TermId, std::vector<TermId>> property_super_;
  // Property resource id <-> predicate id mapping.
  std::unordered_map<TermId, PredicateId> resource_to_predicate_;
  std::unordered_map<PredicateId, TermId> predicate_to_resource_;
  size_t class_link_count_ = 0;
  size_t property_link_count_ = 0;
};

}  // namespace parj::reasoning

#endif  // PARJ_REASONING_HIERARCHY_H_
