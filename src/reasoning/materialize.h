#ifndef PARJ_REASONING_MATERIALIZE_H_
#define PARJ_REASONING_MATERIALIZE_H_

#include <vector>

#include "common/status.h"
#include "reasoning/hierarchy.h"
#include "storage/database.h"

namespace parj::reasoning {

/// Forward-chaining statistics.
struct MaterializeStats {
  uint64_t input_triples = 0;
  uint64_t inferred_class_triples = 0;
  uint64_t inferred_property_triples = 0;
  uint64_t output_triples = 0;  ///< after deduplication against the input

  double BlowupFactor() const {
    return input_triples == 0
               ? 1.0
               : static_cast<double>(output_triples) /
                     static_cast<double>(input_triples);
  }
};

/// The closure dataset produced by forward chaining, ready for
/// Database::Build / ParjEngine::FromEncoded.
struct ClosureData {
  dict::Dictionary dict;
  std::vector<EncodedTriple> triples;
};

/// RDFS forward chaining over the subclass/subproperty hierarchies (the
/// materialization alternative of paper §6: "materializing all implied
/// assertions ... may lead to data size many times larger than the
/// original"):
///   (s rdf:type C), C ⊑* D      =>  (s rdf:type D)
///   (s P o), P ⊑* Q             =>  (s Q o)
/// Abstract super-properties (no direct assertions in the base data) are
/// assigned fresh predicate IDs in the cloned dictionary. Duplicates are
/// collapsed by the subsequent Database::Build.
Result<ClosureData> MaterializeHierarchies(const storage::Database& db,
                                           const Hierarchy& hierarchy,
                                           MaterializeStats* stats = nullptr);

}  // namespace parj::reasoning

#endif  // PARJ_REASONING_MATERIALIZE_H_
