#ifndef PARJ_REASONING_ANSWERING_H_
#define PARJ_REASONING_ANSWERING_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "join/executor.h"
#include "query/optimizer.h"
#include "reasoning/rewrite.h"

namespace parj::reasoning {

struct ReasoningOptions {
  int num_threads = 1;
  join::SearchStrategy strategy = join::SearchStrategy::kAdaptiveBinary;
  /// Deduplicate rows across branches (set semantics — matches evaluating
  /// the plain query over the materialized closure). When false, rows are
  /// the bag union of the branch results.
  bool deduplicate = true;
  RewriteOptions rewrite;
  query::OptimizerOptions optimizer;
};

struct ReasoningResult {
  uint64_t row_count = 0;
  size_t column_count = 0;
  std::vector<TermId> rows;  ///< row-major, projected
  std::vector<std::string> var_names;
  size_t branch_count = 0;   ///< BGPs in the union
  double total_millis = 0.0;
  join::SearchCounters counters;
};

/// Answers `sparql` under the RDFS class/property hierarchies by backward
/// chaining: expands the BGP into a union (ExpandQuery), pipelines each
/// branch through the standard parallel adaptive join, and unions the
/// results — the paper §6 plan of "'unioning' tables during the pipelined
/// join execution ... without the need to materialize the implications".
Result<ReasoningResult> AnswerWithBackwardChaining(
    const storage::Database& db, std::string_view sparql,
    const Hierarchy& hierarchy, const ReasoningOptions& options = {});

}  // namespace parj::reasoning

#endif  // PARJ_REASONING_ANSWERING_H_
