#include "reasoning/hierarchy.h"

#include <algorithm>
#include <unordered_set>

#include "rdf/vocab.h"

namespace parj::reasoning {

namespace {

/// Collects the (subject, object) pairs of one predicate as id pairs.
void CollectPairs(const storage::Database& db, PredicateId pid,
                  std::vector<std::pair<TermId, TermId>>* out) {
  const storage::PropertyEntry* entry = db.FindEntry(pid);
  if (entry == nullptr) return;
  const storage::TableReplica& so = entry->table.so();
  so.ForEachRun([&](size_t, TermId s, std::span<const TermId> run) {
    for (TermId o : run) out->emplace_back(s, o);
  });
}

}  // namespace

Hierarchy Hierarchy::FromDatabase(const storage::Database& db) {
  Hierarchy h;
  const dict::Dictionary& dict = db.dictionary();

  const PredicateId sub_class =
      dict.LookupPredicate(rdf::Term::Iri(rdf::vocab::kRdfsSubClassOf));
  const PredicateId sub_property =
      dict.LookupPredicate(rdf::Term::Iri(rdf::vocab::kRdfsSubPropertyOf));

  if (sub_class != kInvalidPredicateId) {
    std::vector<std::pair<TermId, TermId>> pairs;
    CollectPairs(db, sub_class, &pairs);
    for (const auto& [child, parent] : pairs) {
      h.class_super_[child].push_back(parent);
      h.class_sub_[parent].push_back(child);
      ++h.class_link_count_;
    }
  }
  if (sub_property != kInvalidPredicateId) {
    std::vector<std::pair<TermId, TermId>> pairs;
    CollectPairs(db, sub_property, &pairs);
    for (const auto& [child, parent] : pairs) {
      h.property_super_[child].push_back(parent);
      h.property_sub_[parent].push_back(child);
      ++h.property_link_count_;
    }
    // Map every property resource mentioned in the hierarchy to its
    // predicate id (when the property has direct assertions).
    auto map_resource = [&](TermId resource) {
      if (h.resource_to_predicate_.count(resource) != 0) return;
      PredicateId pid = dict.LookupPredicate(dict.DecodeResource(resource));
      if (pid != kInvalidPredicateId) {
        h.resource_to_predicate_.emplace(resource, pid);
        h.predicate_to_resource_.emplace(pid, resource);
      }
    };
    for (const auto& [child, parent] : pairs) {
      map_resource(child);
      map_resource(parent);
    }
  }
  return h;
}

std::vector<TermId> Hierarchy::Closure(
    const std::unordered_map<TermId, std::vector<TermId>>& edges,
    TermId start) {
  std::vector<TermId> out;
  std::unordered_set<TermId> seen;
  std::vector<TermId> stack = {start};
  seen.insert(start);
  while (!stack.empty()) {
    TermId node = stack.back();
    stack.pop_back();
    out.push_back(node);
    auto it = edges.find(node);
    if (it == edges.end()) continue;
    for (TermId next : it->second) {
      if (seen.insert(next).second) stack.push_back(next);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<TermId> Hierarchy::SubClassesOf(TermId cls) const {
  return Closure(class_sub_, cls);
}

std::vector<TermId> Hierarchy::SuperClassesOf(TermId cls) const {
  return Closure(class_super_, cls);
}

std::vector<PredicateId> Hierarchy::SubPropertiesOf(
    TermId property_resource) const {
  std::vector<PredicateId> out;
  for (TermId resource : Closure(property_sub_, property_resource)) {
    auto it = resource_to_predicate_.find(resource);
    if (it != resource_to_predicate_.end()) out.push_back(it->second);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<TermId> Hierarchy::SuperPropertyResourcesOf(
    PredicateId pred) const {
  auto it = predicate_to_resource_.find(pred);
  if (it == predicate_to_resource_.end()) return {};
  std::vector<TermId> closure = Closure(property_super_, it->second);
  // Remove the property itself; only strict ancestors are inferred.
  closure.erase(std::remove(closure.begin(), closure.end(), it->second),
                closure.end());
  return closure;
}

PredicateId Hierarchy::PredicateForResource(TermId property_resource) const {
  auto it = resource_to_predicate_.find(property_resource);
  return it == resource_to_predicate_.end() ? kInvalidPredicateId
                                            : it->second;
}

}  // namespace parj::reasoning
