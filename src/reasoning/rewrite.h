#ifndef PARJ_REASONING_REWRITE_H_
#define PARJ_REASONING_REWRITE_H_

#include <vector>

#include "common/status.h"
#include "query/algebra.h"
#include "reasoning/hierarchy.h"

namespace parj::reasoning {

struct RewriteOptions {
  /// Upper bound on the number of expanded BGPs (the cross product of
  /// per-pattern alternatives can explode for deep hierarchies — the
  /// "complicated queries" risk the paper's §6 attributes to backward
  /// chaining).
  size_t max_branches = 4096;
};

/// Backward chaining by query rewriting (paper §6: answering queries with
/// respect to class and property hierarchies by "unioning" tables instead
/// of materializing implications): expands a parsed query into the union
/// of BGPs obtained by replacing
///   - each `?x rdf:type C` pattern (constant C) with one branch per
///     subclass of C, and
///   - each pattern with predicate P with one branch per concrete
///     sub-property of P.
/// Abstract properties (mentioned only in the ontology, with no direct
/// assertions) are supported: their branches enumerate their concrete
/// descendants.
///
/// All branches share the same variable numbering and projection, so
/// their results union directly.
Result<std::vector<query::EncodedQuery>> ExpandQuery(
    const query::SelectQueryAst& ast, const Hierarchy& hierarchy,
    const storage::Database& db, const RewriteOptions& options = {});

}  // namespace parj::reasoning

#endif  // PARJ_REASONING_REWRITE_H_
