#include "reasoning/materialize.h"

#include <algorithm>

#include "rdf/vocab.h"

namespace parj::reasoning {

Result<ClosureData> MaterializeHierarchies(const storage::Database& db,
                                           const Hierarchy& hierarchy,
                                           MaterializeStats* stats) {
  ClosureData out;
  out.dict = db.dictionary().Clone();
  MaterializeStats local;

  const PredicateId type_pid =
      out.dict.LookupPredicate(rdf::Term::Iri(rdf::vocab::kRdfType));

  // Pre-resolve, per base predicate, the list of super-predicate ids
  // (creating fresh ids for abstract super-properties).
  std::vector<std::vector<PredicateId>> supers(db.predicate_count() + 1);
  for (PredicateId pid = 1; pid <= db.predicate_count(); ++pid) {
    for (TermId resource : hierarchy.SuperPropertyResourcesOf(pid)) {
      supers[pid].push_back(
          out.dict.EncodePredicate(out.dict.DecodeResource(resource)));
    }
  }

  for (PredicateId pid = 1; pid <= db.predicate_count(); ++pid) {
    const storage::PropertyEntry& entry = db.entry(pid);
    const storage::TableReplica& so = entry.table.so();
    const bool is_type = pid == type_pid;
    so.ForEachRun([&](size_t, TermId s, std::span<const TermId> run) {
      for (TermId o : run) {
        out.triples.push_back(EncodedTriple{s, pid, o});
        ++local.input_triples;
        if (is_type) {
          for (TermId super_class : hierarchy.SuperClassesOf(o)) {
            if (super_class == o) continue;
            out.triples.push_back(EncodedTriple{s, type_pid, super_class});
            ++local.inferred_class_triples;
          }
        }
        for (PredicateId super_pid : supers[pid]) {
          out.triples.push_back(EncodedTriple{s, super_pid, o});
          ++local.inferred_property_triples;
        }
      }
    });
  }

  // Deduplicate (inferences can coincide with asserted triples and with
  // one another through diamond hierarchies).
  std::sort(out.triples.begin(), out.triples.end(),
            [](const EncodedTriple& a, const EncodedTriple& b) {
              if (a.predicate != b.predicate) return a.predicate < b.predicate;
              if (a.subject != b.subject) return a.subject < b.subject;
              return a.object < b.object;
            });
  out.triples.erase(std::unique(out.triples.begin(), out.triples.end()),
                    out.triples.end());
  local.output_triples = out.triples.size();
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace parj::reasoning
