#include "baseline/baseline_engine.h"

#include <algorithm>
#include <numeric>

namespace parj::baseline::internal {

using query::EncodedPattern;
using query::EncodedQuery;
using query::PatternTerm;
using storage::Database;
using storage::ReplicaKind;

std::vector<std::array<TermId, 2>> PatternPairs(const Database& db,
                                                const EncodedPattern& pattern) {
  std::vector<std::array<TermId, 2>> out;
  const storage::PropertyEntry* entry = db.FindEntry(pattern.predicate);
  if (entry == nullptr) return out;
  const storage::TableReplica& so = entry->table.so();
  const storage::TableReplica& os = entry->table.os();

  const bool s_const = pattern.subject.is_constant();
  const bool o_const = pattern.object.is_constant();

  if (s_const) {
    size_t pos = so.FindKey(pattern.subject.constant);
    if (pos == SIZE_MAX) return out;
    std::vector<TermId> scratch;
    for (TermId o : so.RunInto(pos, &scratch)) {
      if (o_const && o != pattern.object.constant) continue;
      out.push_back({pattern.subject.constant, o});
    }
    return out;
  }
  if (o_const) {
    size_t pos = os.FindKey(pattern.object.constant);
    if (pos == SIZE_MAX) return out;
    std::vector<TermId> scratch;
    for (TermId s : os.RunInto(pos, &scratch)) {
      out.push_back({s, pattern.object.constant});
    }
    return out;
  }
  out.reserve(so.pair_count());
  so.ForEachRun([&](size_t, TermId s, std::span<const TermId> run) {
    for (TermId o : run) out.push_back({s, o});
  });
  return out;
}

std::vector<int> GreedyPatternOrder(const Database& db,
                                    const EncodedQuery& query) {
  const size_t n = query.patterns.size();
  auto pattern_score = [&](const EncodedPattern& p) -> double {
    const storage::PropertyEntry* entry = db.FindEntry(p.predicate);
    if (entry == nullptr) return 0.0;
    const bool s_const = p.subject.is_constant();
    const bool o_const = p.object.is_constant();
    if (s_const) {
      size_t pos = entry->table.so().FindKey(p.subject.constant);
      double run = pos == SIZE_MAX
                       ? 0.0
                       : static_cast<double>(entry->table.so().RunLength(pos));
      return o_const ? std::min(run, 1.0) : run;
    }
    if (o_const) {
      size_t pos = entry->table.os().FindKey(p.object.constant);
      return pos == SIZE_MAX
                 ? 0.0
                 : static_cast<double>(entry->table.os().RunLength(pos));
    }
    return static_cast<double>(entry->table.triple_count());
  };

  std::vector<double> scores(n);
  for (size_t i = 0; i < n; ++i) scores[i] = pattern_score(query.patterns[i]);

  auto pattern_vars = [&](const EncodedPattern& p) {
    uint64_t mask = 0;
    if (p.subject.is_variable()) mask |= uint64_t{1} << p.subject.var;
    if (p.object.is_variable()) mask |= uint64_t{1} << p.object.var;
    return mask;
  };

  std::vector<int> order;
  std::vector<bool> used(n, false);
  uint64_t bound = 0;
  for (size_t step = 0; step < n; ++step) {
    int best = -1;
    bool best_connected = false;
    for (size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      const bool connected =
          step == 0 || (pattern_vars(query.patterns[i]) & bound) != 0;
      if (best == -1 || (connected && !best_connected) ||
          (connected == best_connected && scores[i] < scores[best])) {
        best = static_cast<int>(i);
        best_connected = connected;
      }
    }
    used[best] = true;
    order.push_back(best);
    bound |= pattern_vars(query.patterns[best]);
  }
  return order;
}

BaselineResult FinalizeRows(const EncodedQuery& query,
                            const std::vector<TermId>& wide_rows,
                            uint64_t peak_intermediate) {
  BaselineResult result;
  result.peak_intermediate = peak_intermediate;
  const size_t wide = static_cast<size_t>(query.variable_count);
  const size_t width = query.projection.size();
  result.column_count = width;
  const size_t n = wide == 0 ? 0 : wide_rows.size() / wide;

  result.rows.reserve(n * width);
  size_t kept = 0;
  for (size_t r = 0; r < n; ++r) {
    bool passes = true;
    for (const query::EncodedFilter& filter : query.filters) {
      if (!query::EvaluateFilter(filter, wide_rows.data() + r * wide)) {
        passes = false;
        break;
      }
    }
    if (!passes) continue;
    ++kept;
    for (int var : query.projection) {
      result.rows.push_back(wide_rows[r * wide + var]);
    }
  }
  result.row_count = kept;

  if (query.distinct && width > 0 && kept > 0) {
    std::vector<size_t> order(kept);
    std::iota(order.begin(), order.end(), 0);
    auto& rows = result.rows;
    auto row_less = [&](size_t a, size_t b) {
      return std::lexicographical_compare(
          rows.begin() + a * width, rows.begin() + (a + 1) * width,
          rows.begin() + b * width, rows.begin() + (b + 1) * width);
    };
    auto row_eq = [&](size_t a, size_t b) {
      return std::equal(rows.begin() + a * width,
                        rows.begin() + (a + 1) * width,
                        rows.begin() + b * width);
    };
    std::sort(order.begin(), order.end(), row_less);
    order.erase(std::unique(order.begin(), order.end(), row_eq), order.end());
    std::vector<TermId> deduped;
    deduped.reserve(order.size() * width);
    for (size_t idx : order) {
      deduped.insert(deduped.end(), rows.begin() + idx * width,
                     rows.begin() + (idx + 1) * width);
    }
    result.rows = std::move(deduped);
    result.row_count = order.size();
  }
  if (query.limit != 0 && result.row_count > query.limit) {
    result.row_count = query.limit;
    result.rows.resize(query.limit * width);
  }
  return result;
}

}  // namespace parj::baseline::internal
