#ifndef PARJ_BASELINE_NAIVE_ENGINE_H_
#define PARJ_BASELINE_NAIVE_ENGINE_H_

#include "baseline/baseline_engine.h"

namespace parj::baseline {

/// Reference evaluator: backtracking nested loops over the raw pattern
/// extensions, in the query's textual pattern order, with no indexes, no
/// ordering tricks and no optimizer. Deliberately the dumbest correct
/// implementation — the test-suite oracle every other engine (including
/// PARJ itself) is compared against. Only suitable for small datasets.
class NaiveEngine : public BaselineEngine {
 public:
  explicit NaiveEngine(const storage::Database* db) : db_(db) {}

  Result<BaselineResult> Execute(
      const query::EncodedQuery& query) const override;

  std::string name() const override { return "Naive"; }

 private:
  const storage::Database* db_;
};

}  // namespace parj::baseline

#endif  // PARJ_BASELINE_NAIVE_ENGINE_H_
