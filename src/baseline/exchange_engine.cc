#include "baseline/exchange_engine.h"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <unordered_map>

#include "server/thread_pool.h"

namespace parj::baseline {

namespace {

using query::EncodedPattern;
using query::PatternTerm;

bool ApplySlot(const PatternTerm& slot, TermId value, std::vector<TermId>* row) {
  if (slot.is_constant()) return slot.constant == value;
  TermId& cell = (*row)[slot.var];
  if (cell == kInvalidTermId) {
    cell = value;
    return true;
  }
  return cell == value;
}

uint32_t HashId(TermId id) {
  uint64_t x = id;
  x *= 0x9e3779b97f4a7c15ULL;
  return static_cast<uint32_t>(x >> 40);
}

/// Per-join-step instructions prepared on the coordinating thread.
struct StepPlan {
  const EncodedPattern* pattern = nullptr;
  int key_column = -1;  // 0 = subject, 1 = object, -1 = cartesian
  int key_var = -1;
  std::vector<std::array<TermId, 2>> pairs;  // filtered, full set
};

}  // namespace

Result<BaselineResult> ExchangeEngine::Execute(
    const query::EncodedQuery& query) const {
  BaselineResult result;
  result.column_count = query.projection.size();
  if (query.known_empty) return result;

  const int num_workers = std::max(1, options_.num_workers);
  const size_t width = static_cast<size_t>(query.variable_count);
  const std::vector<int> order = internal::GreedyPatternOrder(*db_, query);

  // Plan all steps up front (pattern pairs, join keys).
  std::vector<StepPlan> steps(order.size());
  uint64_t bound_mask = 0;
  for (size_t s = 0; s < order.size(); ++s) {
    StepPlan& step = steps[s];
    step.pattern = &query.patterns[order[s]];
    step.pairs = internal::PatternPairs(*db_, *step.pattern);
    if (s > 0) {
      if (step.pattern->subject.is_variable() &&
          ((bound_mask >> step.pattern->subject.var) & 1)) {
        step.key_column = 0;
        step.key_var = step.pattern->subject.var;
      } else if (step.pattern->object.is_variable() &&
                 ((bound_mask >> step.pattern->object.var) & 1)) {
        step.key_column = 1;
        step.key_var = step.pattern->object.var;
      }
    }
    if (step.pattern->subject.is_variable()) {
      bound_mask |= uint64_t{1} << step.pattern->subject.var;
    }
    if (step.pattern->object.is_variable()) {
      bound_mask |= uint64_t{1} << step.pattern->object.var;
    }
  }

  // Worker-local intermediates and the all-to-all outboxes.
  std::vector<std::vector<TermId>> partition(num_workers);
  std::vector<std::vector<std::vector<TermId>>> outbox(
      num_workers, std::vector<std::vector<TermId>>(num_workers));
  std::atomic<uint64_t> exchanged{0};
  std::atomic<uint64_t> peak{0};
  uint64_t barrier_count = 0;

  std::barrier sync(num_workers);

  auto worker_body = [&](int w) {
    // ---- Step 0: scatter the first pattern's pairs by hash; worker w
    // takes the pairs whose key hashes to it (models the initial hash
    // partitioning of a shared-nothing store).
    {
      const StepPlan& step = steps[0];
      std::vector<TermId> row(width, kInvalidTermId);
      for (const auto& [s, o] : step.pairs) {
        const TermId part_key = step.pattern->subject.is_variable() ? s : o;
        if (static_cast<int>(HashId(part_key) % num_workers) != w) continue;
        std::fill(row.begin(), row.end(), kInvalidTermId);
        if (ApplySlot(step.pattern->subject, s, &row) &&
            ApplySlot(step.pattern->object, o, &row)) {
          partition[w].insert(partition[w].end(), row.begin(), row.end());
        }
      }
    }
    sync.arrive_and_wait();

    for (size_t s = 1; s < steps.size(); ++s) {
      const StepPlan& step = steps[s];
      if (step.key_column == -1) {
        // Cartesian: every worker keeps its partition and joins against
        // the full pair set (replicated build side).
        std::vector<TermId> next;
        const size_t n = partition[w].size() / width;
        for (size_t r = 0; r < n; ++r) {
          for (const auto& [sub, obj] : step.pairs) {
            std::vector<TermId> row(partition[w].begin() + r * width,
                                    partition[w].begin() + (r + 1) * width);
            if (ApplySlot(step.pattern->subject, sub, &row) &&
                ApplySlot(step.pattern->object, obj, &row)) {
              next.insert(next.end(), row.begin(), row.end());
            }
          }
        }
        partition[w] = std::move(next);
        sync.arrive_and_wait();
        continue;
      }

      // ---- Exchange phase: rehash this worker's rows on the join key
      // into per-destination outboxes.
      {
        const size_t n = partition[w].size() / width;
        for (size_t r = 0; r < n; ++r) {
          const TermId key = partition[w][r * width + step.key_var];
          const int dest = static_cast<int>(HashId(key) % num_workers);
          outbox[w][dest].insert(outbox[w][dest].end(),
                                 partition[w].begin() + r * width,
                                 partition[w].begin() + (r + 1) * width);
          if (dest != w) exchanged.fetch_add(1, std::memory_order_relaxed);
        }
        partition[w].clear();
      }
      // Blocking: nobody may start joining until every worker has finished
      // scattering (the TriAD-style "wait to receive and rehash all
      // intermediate results from all other workers").
      sync.arrive_and_wait();

      // ---- Gather + local hash join.
      {
        std::vector<TermId> local;
        for (int from = 0; from < num_workers; ++from) {
          local.insert(local.end(), outbox[from][w].begin(),
                       outbox[from][w].end());
        }
        // Build over this worker's share of the pattern pairs.
        std::unordered_multimap<TermId, size_t> table;
        for (size_t i = 0; i < step.pairs.size(); ++i) {
          const TermId key = step.pairs[i][step.key_column];
          if (static_cast<int>(HashId(key) % num_workers) != w) continue;
          table.emplace(key, i);
        }
        std::vector<TermId> next;
        const size_t n = local.size() / width;
        for (size_t r = 0; r < n; ++r) {
          const TermId key = local[r * width + step.key_var];
          auto [lo, hi] = table.equal_range(key);
          for (auto it = lo; it != hi; ++it) {
            const auto& [sub, obj] = step.pairs[it->second];
            std::vector<TermId> row(local.begin() + r * width,
                                    local.begin() + (r + 1) * width);
            if (ApplySlot(step.pattern->subject, sub, &row) &&
                ApplySlot(step.pattern->object, obj, &row)) {
              next.insert(next.end(), row.begin(), row.end());
            }
          }
        }
        partition[w] = std::move(next);
        uint64_t mine = partition[w].size() / std::max<size_t>(1, width);
        uint64_t prev = peak.load(std::memory_order_relaxed);
        while (mine > prev &&
               !peak.compare_exchange_weak(prev, mine,
                                           std::memory_order_relaxed)) {
        }
      }
      // Wait for all joins to finish before the outboxes are reused.
      sync.arrive_and_wait();
      for (int to = 0; to < num_workers; ++to) outbox[w][to].clear();
      sync.arrive_and_wait();
    }
  };

  // Workers synchronize on barriers, so they must all run concurrently:
  // RunGang hands members to idle pool workers and covers any shortfall
  // with overflow threads (never deadlocks on pool capacity).
  server::ThreadPool::Shared().RunGang(num_workers, worker_body);

  barrier_count = 1;  // step-0 barrier
  for (size_t s = 1; s < steps.size(); ++s) {
    barrier_count += steps[s].key_column == -1 ? 1 : 3;
  }

  // Final gather at the coordinator (also a synchronization point in the
  // real systems; counted as exchanged tuples).
  std::vector<TermId> all_rows;
  for (int w = 0; w < num_workers; ++w) {
    exchanged.fetch_add(partition[w].size() / std::max<size_t>(1, width),
                        std::memory_order_relaxed);
    all_rows.insert(all_rows.end(), partition[w].begin(), partition[w].end());
  }

  result = internal::FinalizeRows(query, all_rows,
                                  peak.load(std::memory_order_relaxed));
  result.exchanged_tuples = exchanged.load(std::memory_order_relaxed);
  result.barriers = barrier_count + 1;
  return result;
}

}  // namespace parj::baseline
