#ifndef PARJ_BASELINE_SORT_MERGE_ENGINE_H_
#define PARJ_BASELINE_SORT_MERGE_ENGINE_H_

#include "baseline/baseline_engine.h"

namespace parj::baseline {

/// Materializing sort-merge engine: at every join step the intermediate
/// result is sorted on the join key and merged against the (already
/// sorted) pattern pairs. This is RDF-3X-style merge processing stripped
/// of its disk machinery and sideways information passing — the role the
/// paper's RDF-3X column plays (see DESIGN.md substitutions).
/// Single-threaded.
class SortMergeEngine : public BaselineEngine {
 public:
  explicit SortMergeEngine(const storage::Database* db) : db_(db) {}

  Result<BaselineResult> Execute(
      const query::EncodedQuery& query) const override;

  std::string name() const override { return "SortMerge"; }

 private:
  const storage::Database* db_;
};

}  // namespace parj::baseline

#endif  // PARJ_BASELINE_SORT_MERGE_ENGINE_H_
