#include "baseline/hash_join_engine.h"

#include <unordered_map>

namespace parj::baseline {

namespace {

using query::EncodedPattern;
using query::PatternTerm;

/// Binds `slot` to `value` in `row`; false on conflict.
bool ApplySlot(const PatternTerm& slot, TermId value, std::vector<TermId>* row,
               size_t base) {
  if (slot.is_constant()) return slot.constant == value;
  TermId& cell = (*row)[base + slot.var];
  if (cell == kInvalidTermId) {
    cell = value;
    return true;
  }
  return cell == value;
}

}  // namespace

Result<BaselineResult> HashJoinEngine::Execute(
    const query::EncodedQuery& query) const {
  BaselineResult empty;
  empty.column_count = query.projection.size();
  if (query.known_empty) return empty;

  const std::vector<int> order = internal::GreedyPatternOrder(*db_, query);
  const size_t width = static_cast<size_t>(query.variable_count);

  std::vector<TermId> rows;  // wide intermediate, row-major
  uint64_t peak = 0;
  uint64_t bound_mask = 0;

  for (size_t step = 0; step < order.size(); ++step) {
    const EncodedPattern& pattern = query.patterns[order[step]];
    std::vector<std::array<TermId, 2>> pairs =
        internal::PatternPairs(*db_, pattern);

    if (step == 0) {
      rows.reserve(pairs.size() * width);
      std::vector<TermId> row(width, kInvalidTermId);
      for (const auto& [s, o] : pairs) {
        std::fill(row.begin(), row.end(), kInvalidTermId);
        if (ApplySlot(pattern.subject, s, &row, 0) &&
            ApplySlot(pattern.object, o, &row, 0)) {
          rows.insert(rows.end(), row.begin(), row.end());
        }
      }
    } else {
      // Pick the hash key: a pattern variable already bound in the
      // intermediate. Prefer the subject column.
      int key_column = -1;  // 0 = subject, 1 = object
      int key_var = -1;
      if (pattern.subject.is_variable() &&
          ((bound_mask >> pattern.subject.var) & 1)) {
        key_column = 0;
        key_var = pattern.subject.var;
      } else if (pattern.object.is_variable() &&
                 ((bound_mask >> pattern.object.var) & 1)) {
        key_column = 1;
        key_var = pattern.object.var;
      }

      std::vector<TermId> next_rows;
      if (key_column == -1) {
        // Cartesian continuation.
        for (size_t r = 0; r * width < rows.size(); ++r) {
          for (const auto& [s, o] : pairs) {
            std::vector<TermId> row(rows.begin() + r * width,
                                    rows.begin() + (r + 1) * width);
            if (ApplySlot(pattern.subject, s, &row, 0) &&
                ApplySlot(pattern.object, o, &row, 0)) {
              next_rows.insert(next_rows.end(), row.begin(), row.end());
            }
          }
        }
      } else {
        // Build on the pattern pairs, probe with the intermediate.
        std::unordered_multimap<TermId, size_t> table;
        table.reserve(pairs.size());
        for (size_t i = 0; i < pairs.size(); ++i) {
          table.emplace(pairs[i][key_column], i);
        }
        const size_t n = rows.size() / width;
        for (size_t r = 0; r < n; ++r) {
          const TermId key = rows[r * width + key_var];
          auto [lo, hi] = table.equal_range(key);
          for (auto it = lo; it != hi; ++it) {
            const auto& [s, o] = pairs[it->second];
            std::vector<TermId> row(rows.begin() + r * width,
                                    rows.begin() + (r + 1) * width);
            if (ApplySlot(pattern.subject, s, &row, 0) &&
                ApplySlot(pattern.object, o, &row, 0)) {
              next_rows.insert(next_rows.end(), row.begin(), row.end());
            }
          }
        }
      }
      rows = std::move(next_rows);
    }

    peak = std::max<uint64_t>(peak, rows.size() / std::max<size_t>(1, width));
    if (pattern.subject.is_variable()) {
      bound_mask |= uint64_t{1} << pattern.subject.var;
    }
    if (pattern.object.is_variable()) {
      bound_mask |= uint64_t{1} << pattern.object.var;
    }
    if (rows.empty()) break;
  }

  return internal::FinalizeRows(query, rows, peak);
}

}  // namespace parj::baseline
