#ifndef PARJ_BASELINE_EXCHANGE_ENGINE_H_
#define PARJ_BASELINE_EXCHANGE_ENGINE_H_

#include "baseline/baseline_engine.h"

namespace parj::baseline {

/// Partition-parallel engine with blocking repartition (exchange) steps
/// between joins: the architecture of distributed in-memory stores such as
/// TriAD (see DESIGN.md substitutions). W workers each own a hash
/// partition of the intermediate result; before every join the
/// intermediate is rehashed on the next join key (every worker must wait
/// to receive all tuples from all others — the synchronization cost the
/// paper's design eliminates), then each worker joins its partition
/// locally. Real std::thread workers and barriers; `exchanged_tuples` and
/// `barriers` in the result quantify the communication PARJ avoids.
class ExchangeEngine : public BaselineEngine {
 public:
  struct Options {
    int num_workers = 4;
  };

  explicit ExchangeEngine(const storage::Database* db)
      : ExchangeEngine(db, Options{}) {}
  ExchangeEngine(const storage::Database* db, Options options)
      : db_(db), options_(options) {}

  Result<BaselineResult> Execute(
      const query::EncodedQuery& query) const override;

  std::string name() const override {
    return "Exchange-" + std::to_string(options_.num_workers);
  }

 private:
  const storage::Database* db_;
  Options options_;
};

}  // namespace parj::baseline

#endif  // PARJ_BASELINE_EXCHANGE_ENGINE_H_
