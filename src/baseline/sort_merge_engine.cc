#include "baseline/sort_merge_engine.h"

#include <algorithm>
#include <numeric>

namespace parj::baseline {

namespace {

using query::EncodedPattern;
using query::PatternTerm;

bool ApplySlot(const PatternTerm& slot, TermId value, std::vector<TermId>* row) {
  if (slot.is_constant()) return slot.constant == value;
  TermId& cell = (*row)[slot.var];
  if (cell == kInvalidTermId) {
    cell = value;
    return true;
  }
  return cell == value;
}

}  // namespace

Result<BaselineResult> SortMergeEngine::Execute(
    const query::EncodedQuery& query) const {
  BaselineResult empty;
  empty.column_count = query.projection.size();
  if (query.known_empty) return empty;

  const std::vector<int> order = internal::GreedyPatternOrder(*db_, query);
  const size_t width = static_cast<size_t>(query.variable_count);

  std::vector<TermId> rows;
  uint64_t peak = 0;
  uint64_t bound_mask = 0;

  for (size_t step = 0; step < order.size(); ++step) {
    const EncodedPattern& pattern = query.patterns[order[step]];
    std::vector<std::array<TermId, 2>> pairs =
        internal::PatternPairs(*db_, pattern);

    if (step == 0) {
      std::vector<TermId> row(width, kInvalidTermId);
      for (const auto& [s, o] : pairs) {
        std::fill(row.begin(), row.end(), kInvalidTermId);
        if (ApplySlot(pattern.subject, s, &row) &&
            ApplySlot(pattern.object, o, &row)) {
          rows.insert(rows.end(), row.begin(), row.end());
        }
      }
    } else {
      int key_column = -1;
      int key_var = -1;
      if (pattern.subject.is_variable() &&
          ((bound_mask >> pattern.subject.var) & 1)) {
        key_column = 0;
        key_var = pattern.subject.var;
      } else if (pattern.object.is_variable() &&
                 ((bound_mask >> pattern.object.var) & 1)) {
        key_column = 1;
        key_var = pattern.object.var;
      }

      std::vector<TermId> next_rows;
      if (key_column == -1) {
        for (size_t r = 0; r * width < rows.size(); ++r) {
          for (const auto& [s, o] : pairs) {
            std::vector<TermId> row(rows.begin() + r * width,
                                    rows.begin() + (r + 1) * width);
            if (ApplySlot(pattern.subject, s, &row) &&
                ApplySlot(pattern.object, o, &row)) {
              next_rows.insert(next_rows.end(), row.begin(), row.end());
            }
          }
        }
      } else {
        // Sort the intermediate on the join key (the blocking step merge
        // engines pay whenever the incoming order does not match), sort
        // the pairs on the key column, and merge.
        const size_t n = rows.size() / width;
        std::vector<size_t> row_order(n);
        std::iota(row_order.begin(), row_order.end(), 0);
        std::sort(row_order.begin(), row_order.end(),
                  [&](size_t a, size_t b) {
                    return rows[a * width + key_var] <
                           rows[b * width + key_var];
                  });
        std::sort(pairs.begin(), pairs.end(),
                  [&](const auto& a, const auto& b) {
                    return a[key_column] < b[key_column];
                  });

        size_t i = 0;  // over row_order
        size_t j = 0;  // over pairs
        while (i < n && j < pairs.size()) {
          const TermId left = rows[row_order[i] * width + key_var];
          const TermId right = pairs[j][key_column];
          if (left < right) {
            ++i;
          } else if (left > right) {
            ++j;
          } else {
            // Emit the cross product of the two equal groups.
            size_t i_end = i;
            while (i_end < n &&
                   rows[row_order[i_end] * width + key_var] == left) {
              ++i_end;
            }
            size_t j_end = j;
            while (j_end < pairs.size() && pairs[j_end][key_column] == left) {
              ++j_end;
            }
            for (size_t a = i; a < i_end; ++a) {
              for (size_t b = j; b < j_end; ++b) {
                std::vector<TermId> row(
                    rows.begin() + row_order[a] * width,
                    rows.begin() + (row_order[a] + 1) * width);
                if (ApplySlot(pattern.subject, pairs[b][0], &row) &&
                    ApplySlot(pattern.object, pairs[b][1], &row)) {
                  next_rows.insert(next_rows.end(), row.begin(), row.end());
                }
              }
            }
            i = i_end;
            j = j_end;
          }
        }
      }
      rows = std::move(next_rows);
    }

    peak = std::max<uint64_t>(peak, rows.size() / std::max<size_t>(1, width));
    if (pattern.subject.is_variable()) {
      bound_mask |= uint64_t{1} << pattern.subject.var;
    }
    if (pattern.object.is_variable()) {
      bound_mask |= uint64_t{1} << pattern.object.var;
    }
    if (rows.empty()) break;
  }

  return internal::FinalizeRows(query, rows, peak);
}

}  // namespace parj::baseline
