#ifndef PARJ_BASELINE_BASELINE_ENGINE_H_
#define PARJ_BASELINE_BASELINE_ENGINE_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "query/algebra.h"
#include "storage/database.h"

namespace parj::baseline {

/// Result of a baseline evaluation. Rows are full-width binding vectors
/// projected the same way the PARJ executor projects, so results are
/// directly comparable.
struct BaselineResult {
  uint64_t row_count = 0;
  size_t column_count = 0;
  std::vector<TermId> rows;  ///< row-major, projected
  /// ExchangeEngine metrics (zero elsewhere): tuples crossing a worker
  /// boundary during repartitioning, and the number of blocking barriers.
  uint64_t exchanged_tuples = 0;
  uint64_t barriers = 0;
  /// Peak number of materialized intermediate tuples (all materializing
  /// baselines report this; PARJ's pipelined join never materializes).
  uint64_t peak_intermediate = 0;
};

/// Interface shared by the comparison engines. Every engine evaluates the
/// same EncodedQuery against the same Database as PARJ — the comparison
/// isolates the *join processing architecture*, which is what the paper's
/// system comparison is about (see DESIGN.md, substitutions).
class BaselineEngine {
 public:
  virtual ~BaselineEngine() = default;

  virtual Result<BaselineResult> Execute(
      const query::EncodedQuery& query) const = 0;

  virtual std::string name() const = 0;
};

namespace internal {

/// Materializes the (subject, object) pairs of `pattern`'s property that
/// satisfy the pattern's constant slots. The workhorse of all
/// materializing baselines.
std::vector<std::array<TermId, 2>> PatternPairs(
    const storage::Database& db, const query::EncodedPattern& pattern);

/// Greedy pattern order shared by the baselines: cheapest estimated
/// pattern first, then cheapest pattern connected to the bound set.
std::vector<int> GreedyPatternOrder(const storage::Database& db,
                                    const query::EncodedQuery& query);

/// Applies projection / DISTINCT / LIMIT to full-width binding rows,
/// producing a BaselineResult.
BaselineResult FinalizeRows(const query::EncodedQuery& query,
                            const std::vector<TermId>& wide_rows,
                            uint64_t peak_intermediate);

}  // namespace internal
}  // namespace parj::baseline

#endif  // PARJ_BASELINE_BASELINE_ENGINE_H_
