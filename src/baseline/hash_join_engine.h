#ifndef PARJ_BASELINE_HASH_JOIN_ENGINE_H_
#define PARJ_BASELINE_HASH_JOIN_ENGINE_H_

#include "baseline/baseline_engine.h"

namespace parj::baseline {

/// Materializing hash-join engine: evaluates the BGP left-deep in a greedy
/// order, building a hash table over each pattern's filtered pairs and
/// probing the materialized intermediate result. This is the architecture
/// of a generic in-memory store without PARJ's locality-aware pipelined
/// joins — the role the paper's RDFox column plays in the single-thread
/// comparison (see DESIGN.md substitutions). Single-threaded.
class HashJoinEngine : public BaselineEngine {
 public:
  explicit HashJoinEngine(const storage::Database* db) : db_(db) {}

  Result<BaselineResult> Execute(
      const query::EncodedQuery& query) const override;

  std::string name() const override { return "HashJoin"; }

 private:
  const storage::Database* db_;
};

}  // namespace parj::baseline

#endif  // PARJ_BASELINE_HASH_JOIN_ENGINE_H_
