#include "baseline/naive_engine.h"

namespace parj::baseline {

namespace {

/// Tries to unify `row` with a candidate (subject, object) pair for
/// `pattern`, writing the extended row into `row` itself (caller keeps a
/// copy for backtracking).
bool Unify(const query::EncodedPattern& pattern, TermId subject, TermId object,
           std::vector<TermId>* row) {
  auto apply = [&](const query::PatternTerm& slot, TermId value) {
    if (slot.is_constant()) return slot.constant == value;
    TermId& cell = (*row)[slot.var];
    if (cell == kInvalidTermId) {
      cell = value;
      return true;
    }
    return cell == value;
  };
  return apply(pattern.subject, subject) && apply(pattern.object, object);
}

}  // namespace

Result<BaselineResult> NaiveEngine::Execute(
    const query::EncodedQuery& query) const {
  BaselineResult empty;
  empty.column_count = query.projection.size();
  if (query.known_empty) return empty;

  // Materialize candidate pairs once per pattern.
  std::vector<std::vector<std::array<TermId, 2>>> candidates;
  candidates.reserve(query.patterns.size());
  for (const query::EncodedPattern& p : query.patterns) {
    candidates.push_back(internal::PatternPairs(*db_, p));
  }

  std::vector<TermId> wide_rows;
  std::vector<TermId> row(query.variable_count, kInvalidTermId);

  // Plain backtracking in textual order.
  auto descend = [&](auto&& self, size_t depth) -> void {
    if (depth == query.patterns.size()) {
      wide_rows.insert(wide_rows.end(), row.begin(), row.end());
      return;
    }
    const query::EncodedPattern& pattern = query.patterns[depth];
    for (const auto& [s, o] : candidates[depth]) {
      std::vector<TermId> saved = row;
      if (Unify(pattern, s, o, &row)) {
        self(self, depth + 1);
      }
      row = std::move(saved);
    }
  };
  descend(descend, 0);

  return internal::FinalizeRows(query, wide_rows, 0);
}

}  // namespace parj::baseline
