#include "server/result_cache.h"

#include <algorithm>
#include <functional>

namespace parj::server {

namespace {

/// Composite key: query text, NUL, fingerprint digits. The data_version
/// is validated, not keyed — one live entry per query, always the newest.
std::string MakeKey(std::string_view sparql, uint64_t fingerprint) {
  std::string key;
  key.reserve(sparql.size() + 24);
  key.append(sparql);
  key.push_back('\0');
  key.append(std::to_string(fingerprint));
  return key;
}

}  // namespace

ResultCache::ResultCache(size_t max_bytes, size_t shards) {
  if (shards == 0) shards = 1;
  shard_budget_ = std::max<size_t>(1, max_bytes / shards);
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResultCache::Shard& ResultCache::ShardFor(std::string_view key) {
  const size_t h = std::hash<std::string_view>{}(key);
  return *shards_[h % shards_.size()];
}

std::shared_ptr<const CachedResult> ResultCache::Lookup(
    std::string_view sparql, uint64_t fingerprint, uint64_t data_version) {
  const std::string key = MakeKey(sparql, fingerprint);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return nullptr;
  }
  if (it->second->result->data_version != data_version) {
    // A mutation batch published since this entry was computed; the rows
    // may no longer match. Drop it — the fresh answer will re-insert.
    shard.bytes -= it->second->bytes;
    shard.order.erase(it->second);
    shard.index.erase(it);
    ++shard.misses;
    return nullptr;
  }
  shard.order.splice(shard.order.begin(), shard.order, it->second);
  ++shard.hits;
  return it->second->result;
}

void ResultCache::Insert(std::string_view sparql, uint64_t fingerprint,
                         std::shared_ptr<const CachedResult> result) {
  if (result == nullptr) return;
  const std::string key = MakeKey(sparql, fingerprint);
  Shard& shard = ShardFor(key);
  const size_t bytes = result->ByteSize() + key.size();
  if (bytes > shard_budget_) return;
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.bytes -= it->second->bytes;
    shard.order.erase(it->second);
    shard.index.erase(it);
  }
  shard.order.push_front(Entry{key, bytes, std::move(result)});
  shard.index.emplace(shard.order.front().key, shard.order.begin());
  shard.bytes += bytes;
  ++shard.insertions;
  while (shard.bytes > shard_budget_ && !shard.order.empty()) {
    shard.bytes -= shard.order.back().bytes;
    shard.index.erase(shard.order.back().key);
    shard.order.pop_back();
    ++shard.evictions;
  }
}

ResultCacheStats ResultCache::stats() const {
  ResultCacheStats out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.insertions += shard->insertions;
    out.evictions += shard->evictions;
    out.bytes += shard->bytes;
    out.entries += shard->order.size();
  }
  return out;
}

void ResultCache::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->order.clear();
    shard->index.clear();
    shard->bytes = 0;
  }
}

}  // namespace parj::server
