#include "server/server.h"

#include <algorithm>
#include <exception>
#include <memory>
#include <new>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/failpoint.h"
#include "common/timer.h"
#include "query/parser.h"

namespace parj::server {

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Fingerprint over the QueryOptions fields that change the answer bytes
/// (result mode, row cap). Scheduling knobs are deliberately excluded:
/// thread count and strategy never change which rows a query returns.
/// agg_strategy is excluded for the same reason — every aggregation
/// strategy produces the identical canonical group->value map (the
/// differential suite enforces it), so strategy choice never shapes the
/// answer. The aggregation/DISTINCT/ORDER-LIMIT *structure* lives in the
/// query text, which is the cache key itself, and cached entries carry
/// their column_kinds so an aggregate answer replays with its exact
/// shape.
uint64_t ResultFingerprint(const engine::QueryOptions& options) {
  uint64_t fp = static_cast<uint64_t>(options.mode);
  fp = fp * 0x100000001b3ull ^ options.max_rows;
  return fp;
}

/// A plan can join a shared pass only when its leading step is the
/// unbound-key/unbound-value table scan ExecuteShared drives, and the
/// request carries no per-query instrumentation the shared executor
/// cannot honor per member.
bool SharedScanEligible(const query::Plan& plan,
                        const engine::QueryOptions& options) {
  if (plan.known_empty || plan.steps.empty()) return false;
  if (options.collect_probe_trace || options.emulate_parallel) return false;
  // Aggregation and ORDER BY run through the engine's shaped (visitor)
  // path, which the shared executor cannot drive per member.
  if (plan.aggregate.enabled || !plan.order_by.empty()) return false;
  const query::PlanStep& first = plan.steps.front();
  return first.key.is_variable() && first.value.is_variable();
}

}  // namespace

QueryServer::QueryServer(const engine::ParjEngine* engine,
                         ServerOptions options)
    : engine_(engine),
      options_(std::move(options)),
      pool_(options_.pool != nullptr ? options_.pool : &ThreadPool::Shared()),
      scheduler_(pool_, options_.scheduler),
      degradation_(options_.degradation, &metrics_),
      watchdog_(options_.watchdog, &metrics_) {
  if (options_.enable_plan_cache && options_.plan_cache_entries > 0) {
    plan_cache_ =
        std::make_unique<query::PlanCache>(options_.plan_cache_entries);
  }
  if (options_.result_cache_bytes > 0) {
    result_cache_ = std::make_unique<ResultCache>(options_.result_cache_bytes);
  }
}

QueryServer::~QueryServer() {
  // Members are destroyed in reverse declaration order, which would tear
  // down watchdog_ and metrics_ while scheduler_'s destructor is still
  // draining jobs that use them. Drain first so nothing is running.
  scheduler_.Drain();
}

void QueryServer::ClearCaches() {
  if (plan_cache_ != nullptr) plan_cache_->Clear();
  if (result_cache_ != nullptr) result_cache_->Clear();
}

void QueryServer::RefreshMutationGauges() {
  const mut::MutationStats s = engine_->mutation_stats();
  metrics_.delta_triples.store(s.delta_insert_triples + s.delta_delete_triples,
                               std::memory_order_relaxed);
  metrics_.delta_bytes.store(s.delta_bytes, std::memory_order_relaxed);
  metrics_.compactions.store(s.compactions, std::memory_order_relaxed);
  metrics_.compaction_micros.store(s.compaction_micros,
                                   std::memory_order_relaxed);
  metrics_.active_epochs.store(s.active_epochs, std::memory_order_relaxed);
  const storage::Database& db = engine_->database();
  metrics_.store_bytes.store(db.TableMemoryUsage(), std::memory_order_relaxed);
  metrics_.store_allocated_bytes.store(db.TableAllocatedUsage(),
                                       std::memory_order_relaxed);
  metrics_.store_raw_bytes.store(db.TableRawBytes(),
                                 std::memory_order_relaxed);
  const mut::WalStats w = engine_->wal_stats();
  metrics_.wal_records.store(w.records, std::memory_order_relaxed);
  metrics_.wal_bytes.store(w.bytes, std::memory_order_relaxed);
  metrics_.wal_fsyncs.store(w.fsyncs, std::memory_order_relaxed);
  metrics_.wal_group_commit_micros.store(w.group_commit_micros,
                                         std::memory_order_relaxed);
  metrics_.wal_group_commits.store(w.group_commits,
                                   std::memory_order_relaxed);
  metrics_.wal_backlog_bytes.store(w.backlog_bytes,
                                   std::memory_order_relaxed);
  metrics_.wal_segments.store(w.segments, std::memory_order_relaxed);
  metrics_.wal_checkpoints.store(w.checkpoints, std::memory_order_relaxed);
  metrics_.wal_backpressure_waits.store(w.backpressure_waits,
                                        std::memory_order_relaxed);
  const mut::RecoveryStats& r = engine_->recovery_stats();
  metrics_.recovery_replayed.store(r.records_replayed,
                                   std::memory_order_relaxed);
  metrics_.recovery_truncated_bytes.store(r.truncated_bytes,
                                          std::memory_order_relaxed);
  metrics_.recovery_millis.store(
      static_cast<uint64_t>(r.snapshot_load_millis + r.replay_millis),
      std::memory_order_relaxed);
  if (plan_cache_ != nullptr) {
    const query::PlanCacheStats pc = plan_cache_->stats();
    metrics_.plan_cache_hits.store(pc.hits, std::memory_order_relaxed);
    metrics_.plan_cache_misses.store(pc.misses, std::memory_order_relaxed);
    metrics_.plan_cache_evictions.store(pc.evictions,
                                        std::memory_order_relaxed);
  }
  if (result_cache_ != nullptr) {
    const ResultCacheStats rc = result_cache_->stats();
    metrics_.result_cache_hits.store(rc.hits, std::memory_order_relaxed);
    metrics_.result_cache_misses.store(rc.misses, std::memory_order_relaxed);
    metrics_.result_cache_bytes.store(rc.bytes, std::memory_order_relaxed);
  }
}

void QueryServer::CountTermination(const CancellationToken& token) {
  if (token.reason() == CancelReason::kDeadlineExceeded) {
    metrics_.deadlines_expired.fetch_add(1, std::memory_order_relaxed);
  } else if (token.reason() == CancelReason::kWatchdog) {
    // watchdog_kills was already counted by the watchdog thread itself.
  } else {
    metrics_.queries_cancelled.fetch_add(1, std::memory_order_relaxed);
  }
}

Result<engine::QueryResult> QueryServer::ContainedExecutePlan(
    const query::Plan& plan, const engine::QueryOptions& options) {
  try {
    Status fault = failpoint::Check("server.execute");
    if (!fault.ok()) return fault;
    return engine_->ExecutePlan(plan, options);
  } catch (const std::bad_alloc&) {
    metrics_.worker_faults.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted("query failed: out of memory");
  } catch (const std::exception& e) {
    metrics_.worker_faults.fetch_add(1, std::memory_order_relaxed);
    return Status::Internal(std::string("query failed with exception: ") +
                            e.what());
  } catch (...) {
    metrics_.worker_faults.fetch_add(1, std::memory_order_relaxed);
    return Status::Internal("query failed with unknown exception");
  }
}

Result<engine::QueryResult> QueryServer::ExecuteCold(
    const std::string& sparql,
    const std::shared_ptr<const PreparedStatement>& prepared,
    const engine::QueryOptions& query_options, bool use_plan_cache,
    uint64_t optimizer_fp) {
  try {
    Status fault = failpoint::Check("server.execute");
    if (!fault.ok()) return fault;
    if (!use_plan_cache || plan_cache_ == nullptr) {
      return engine_->Execute(sparql, query_options);
    }
    query::SelectQueryAst local_ast;
    const query::SelectQueryAst* ast = nullptr;
    const query::NormalizedQuery* normalized = nullptr;
    query::NormalizedQuery local_norm;
    if (prepared != nullptr) {
      ast = &prepared->ast;
      normalized = &prepared->normalized;
    } else {
      auto parsed = query::ParseQuery(sparql);
      if (!parsed.ok()) return parsed.status();
      local_ast = std::move(*parsed);
      ast = &local_ast;
    }
    // UNION queries and unparameterizable shapes take the engine's own
    // path (the re-parse there is the price of staying uncached).
    if (!ast->union_arms.empty()) {
      return engine_->Execute(sparql, query_options);
    }
    if (normalized == nullptr) {
      local_norm = query::NormalizeQuery(*ast);
      normalized = &local_norm;
    }
    if (!normalized->eligible) {
      return engine_->Execute(sparql, query_options);
    }
    // Bind or optimize against one pinned snapshot, so the plan, the
    // rows and the cached entry all describe the same store contents.
    const mut::MvccSnapshot snap = engine_->snapshot();
    const uint64_t generation = engine_->plan_generation();
    std::shared_ptr<const query::Plan> tmpl = plan_cache_->LookupShape(
        normalized->shape_key, generation, optimizer_fp);
    if (tmpl != nullptr) {
      Result<query::Plan> bound = query::BindTemplate(
          *tmpl, *normalized, snap.base(), &snap.delta().overlay());
      if (bound.ok()) {
        const bool cacheable = !bound->known_empty;
        auto plan = std::make_shared<const query::Plan>(std::move(*bound));
        Result<engine::QueryResult> result =
            engine_->ExecutePlan(*plan, query_options, &snap);
        if (result.ok()) {
          result->plan_cached = true;
          // Plans made known_empty by a still-absent term must not be
          // cached: the term can be inserted later without bumping the
          // plan generation.
          if (cacheable && failpoint::Check("plancache.insert").ok()) {
            plan_cache_->InsertBound(sparql, generation, optimizer_fp,
                                     std::move(plan));
          }
        }
        return result;
      }
      // Template/shape mismatch should not happen, but a fresh optimize
      // is always a correct answer to it.
    }
    PARJ_ASSIGN_OR_RETURN(
        query::EncodedQuery encoded,
        query::EncodeQuery(*ast, snap.base(), &snap.delta().overlay()));
    PARJ_ASSIGN_OR_RETURN(query::Plan optimized,
                          query::Optimize(encoded, snap.base(),
                                          query_options.optimizer,
                                          &snap.delta()));
    const bool cacheable = !optimized.known_empty;
    auto plan = std::make_shared<const query::Plan>(std::move(optimized));
    Result<engine::QueryResult> result =
        engine_->ExecutePlan(*plan, query_options, &snap);
    if (result.ok() && cacheable &&
        failpoint::Check("plancache.insert").ok()) {
      plan_cache_->InsertShape(normalized->shape_key, generation,
                               optimizer_fp, plan);
      plan_cache_->InsertBound(sparql, generation, optimizer_fp,
                               std::move(plan));
    }
    return result;
  } catch (const std::bad_alloc&) {
    metrics_.worker_faults.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted("query failed: out of memory");
  } catch (const std::exception& e) {
    metrics_.worker_faults.fetch_add(1, std::memory_order_relaxed);
    return Status::Internal(std::string("query failed with exception: ") +
                            e.what());
  } catch (...) {
    metrics_.worker_faults.fetch_add(1, std::memory_order_relaxed);
    return Status::Internal("query failed with unknown exception");
  }
}

void QueryServer::RunClaimedSolo(
    const std::shared_ptr<SharedScanMember>& member) {
  if (member->options.cancel.StopRequested()) {
    member->deliver(member->options.cancel.ToStatus());
    return;
  }
  Result<engine::QueryResult> result =
      ContainedExecutePlan(*member->plan, member->options);
  if (result.ok()) result->plan_cached = true;
  member->deliver(std::move(result));
}

Result<engine::QueryResult> QueryServer::RunJob(
    const std::string& sparql,
    const std::shared_ptr<const PreparedStatement>& prepared,
    const engine::QueryOptions& query_options,
    const std::shared_ptr<const query::Plan>& bound,
    const std::shared_ptr<SharedScanMember>& member,
    std::vector<std::shared_ptr<SharedScanMember>>& claimed,
    bool use_plan_cache, uint64_t optimizer_fp) {
  if (!claimed.empty()) {
    // This job leads a shared pass: members whose cancellation fired
    // while queued resolve now, the rest run in one ExecuteShared call.
    std::vector<std::shared_ptr<SharedScanMember>> live;
    live.reserve(claimed.size());
    for (auto& m : claimed) {
      if (m->options.cancel.StopRequested()) {
        m->deliver(m->options.cancel.ToStatus());
      } else {
        live.push_back(std::move(m));
      }
    }
    claimed.clear();
    if (!live.empty()) {
      metrics_.shared_scan_groups.fetch_add(1, std::memory_order_relaxed);
      // Members identical in (text, fingerprint) are row-identical:
      // execute one representative and copy its rows to the rest.
      std::vector<const query::Plan*> plans;
      std::vector<engine::QueryOptions> opts;
      std::unordered_map<std::string, size_t> slots;
      auto slot_for = [&](const std::string& text, uint64_t fingerprint,
                          const query::Plan* plan,
                          const engine::QueryOptions& options) -> size_t {
        std::string key = text;
        key.push_back('\0');
        key += std::to_string(fingerprint);
        auto [it, inserted] = slots.emplace(std::move(key), plans.size());
        if (inserted) {
          plans.push_back(plan);
          opts.push_back(options);
        }
        return it->second;
      };
      slot_for(member->sparql, member->result_fingerprint, bound.get(),
               query_options);  // slot 0: this job, the group leader
      std::vector<size_t> member_slot;
      member_slot.reserve(live.size());
      for (const auto& m : live) {
        member_slot.push_back(
            slot_for(m->sparql, m->result_fingerprint, m->plan.get(),
                     m->options));
      }
      Result<std::vector<engine::QueryResult>> shared =
          [&]() -> Result<std::vector<engine::QueryResult>> {
        try {
          Status fault = failpoint::Check("server.execute");
          if (!fault.ok()) return fault;
          return engine_->ExecuteShared(
              std::span<const query::Plan* const>(plans.data(), plans.size()),
              std::span<const engine::QueryOptions>(opts.data(), opts.size()));
        } catch (const std::bad_alloc&) {
          metrics_.worker_faults.fetch_add(1, std::memory_order_relaxed);
          return Status::ResourceExhausted("query failed: out of memory");
        } catch (const std::exception& e) {
          metrics_.worker_faults.fetch_add(1, std::memory_order_relaxed);
          return Status::Internal(
              std::string("query failed with exception: ") + e.what());
        } catch (...) {
          metrics_.worker_faults.fetch_add(1, std::memory_order_relaxed);
          return Status::Internal("query failed with unknown exception");
        }
      }();
      if (shared.ok()) {
        metrics_.shared_scan_queries_coalesced.fetch_add(
            live.size(), std::memory_order_relaxed);
        for (size_t i = 0; i < live.size(); ++i) {
          engine::QueryResult copy = (*shared)[member_slot[i]];
          copy.plan_cached = true;
          live[i]->deliver(std::move(copy));
        }
        engine::QueryResult own = std::move((*shared)[0]);
        own.plan_cached = true;
        return own;
      }
      // The shared pass was rejected (a member restriction) or faulted:
      // every member degrades to an independent solo execution, so
      // coalescing can only ever cost latency, never answers.
      metrics_.shared_scan_fallbacks.fetch_add(1, std::memory_order_relaxed);
      for (const auto& m : live) RunClaimedSolo(m);
    }
  }
  if (bound != nullptr) {
    Result<engine::QueryResult> result =
        ContainedExecutePlan(*bound, query_options);
    if (result.ok()) result->plan_cached = true;
    return result;
  }
  return ExecuteCold(sparql, prepared, query_options, use_plan_cache,
                     optimizer_fp);
}

void QueryServer::MaybeCacheResult(const std::string& sparql,
                                   uint64_t fingerprint,
                                   const engine::QueryResult& result) {
  if (result_cache_ == nullptr) return;
  if (!failpoint::Check("resultcache.insert").ok()) return;
  auto cached = std::make_shared<CachedResult>();
  cached->row_count = result.row_count;
  cached->column_count = result.column_count;
  cached->rows = result.rows;
  cached->var_names = result.var_names;
  cached->agg_rows = result.agg_rows;
  cached->column_kinds.reserve(result.column_kinds.size());
  for (query::ColumnKind kind : result.column_kinds) {
    cached->column_kinds.push_back(static_cast<uint8_t>(kind));
  }
  cached->data_version = result.data_version;
  result_cache_->Insert(sparql, fingerprint, std::move(cached));
}

SubmittedQuery QueryServer::Submit(std::string sparql, SubmitOptions options) {
  return SubmitInternal(std::move(sparql), nullptr, std::move(options));
}

Result<std::shared_ptr<const PreparedStatement>> QueryServer::Prepare(
    std::string sparql) const {
  PARJ_ASSIGN_OR_RETURN(query::SelectQueryAst ast, query::ParseQuery(sparql));
  auto stmt = std::make_shared<PreparedStatement>();
  stmt->sparql = std::move(sparql);
  if (ast.union_arms.empty()) {
    stmt->normalized = query::NormalizeQuery(ast);
  }
  stmt->ast = std::move(ast);
  return std::shared_ptr<const PreparedStatement>(std::move(stmt));
}

SubmittedQuery QueryServer::SubmitPrepared(
    std::shared_ptr<const PreparedStatement> stmt, SubmitOptions options) {
  std::string sparql = stmt->sparql;
  return SubmitInternal(std::move(sparql), std::move(stmt),
                        std::move(options));
}

SubmittedQuery QueryServer::SubmitInternal(
    std::string sparql, std::shared_ptr<const PreparedStatement> prepared,
    SubmitOptions options) {
  metrics_.queries_submitted.fetch_add(1, std::memory_order_relaxed);
  const auto submit_time = std::chrono::steady_clock::now();
  SubmittedQuery out;
  out.id = next_query_id_.fetch_add(1, std::memory_order_relaxed);
  if (options.deadline.has_value()) {
    out.cancel.set_deadline(*options.deadline);
  } else if (options.timeout_millis > 0) {
    out.cancel.set_timeout_millis(options.timeout_millis);
  }
  auto promise =
      std::make_shared<std::promise<Result<engine::QueryResult>>>();
  out.result = promise->get_future();
  CancellationToken token = out.cancel.token();

  // Admission-time fast path: an already-expired deadline never executes
  // (and never occupies a scheduler slot).
  if (token.StopRequested()) {
    CountTermination(token);
    promise->set_value(token.ToStatus());
    return out;
  }

  engine::QueryOptions query_options =
      options.query.has_value() ? *options.query : options_.query_defaults;
  query_options.cancel = token;

  // Graceful degradation: under sustained load, shed low-priority queries
  // and fall back to static scheduling for the rest. Ingest pressure
  // (pending-delta size against the configured cap) counts as load too.
  auto evaluate_degradation = [&]() -> DegradationDecision {
    RefreshMutationGauges();
    const double capacity =
        static_cast<double>(options_.scheduler.max_in_flight) +
        static_cast<double>(options_.scheduler.max_queue);
    double load_fraction =
        capacity > 0
            ? (static_cast<double>(scheduler_.in_flight()) +
               static_cast<double>(scheduler_.queued())) / capacity
            : 0.0;
    if (options_.degradation.max_delta_triples > 0) {
      const double ingest_fraction =
          static_cast<double>(
              metrics_.delta_triples.load(std::memory_order_relaxed)) /
          static_cast<double>(options_.degradation.max_delta_triples);
      load_fraction = std::max(load_fraction, ingest_fraction);
    }
    return degradation_.Admit(options.priority, load_fraction);
  };

  // While degraded, the shedding decision comes before the result-cache
  // fast path: hysteresis exit depends on every submission passing through
  // Admit() until the server recovers, and a shed-eligible query must not
  // dodge the policy just because its answer happens to be cached. In the
  // healthy steady state this costs one relaxed atomic load.
  bool degradation_checked = false;
  DegradationDecision degraded;
  if (degradation_.degraded()) {
    degraded = evaluate_degradation();
    degradation_checked = true;
    if (degraded.shed) {
      promise->set_value(Status::ResourceExhausted(
          "query shed: server degraded under load (priority " +
          std::to_string(options.priority) + " below cutoff)"));
      return out;
    }
  }

  // Result-cache fast path, on the submit thread: a hit costs one shard
  // lock and resolves the future immediately — no scheduler slot, no
  // queue wait. This is the main warm-QPS lever.
  const bool want_result_cache = result_cache_ != nullptr &&
                                 options.use_result_cache &&
                                 !query_options.collect_probe_trace;
  const uint64_t result_fp = ResultFingerprint(query_options);
  if (want_result_cache) {
    if (std::shared_ptr<const CachedResult> hit = result_cache_->Lookup(
            sparql, result_fp, engine_->data_version())) {
      engine::QueryResult result;
      result.row_count = hit->row_count;
      result.column_count = hit->column_count;
      result.rows = hit->rows;
      result.var_names = hit->var_names;
      result.agg_rows = hit->agg_rows;
      result.column_kinds.reserve(hit->column_kinds.size());
      for (uint8_t kind : hit->column_kinds) {
        result.column_kinds.push_back(static_cast<query::ColumnKind>(kind));
      }
      result.data_version = hit->data_version;
      result.result_cached = true;
      metrics_.queries_completed.fetch_add(1, std::memory_order_relaxed);
      metrics_.rows_returned.fetch_add(result.row_count,
                                       std::memory_order_relaxed);
      metrics_.total.Record(MillisSince(submit_time));
      promise->set_value(std::move(result));
      return out;
    }
  }

  if (!degradation_checked) {
    degraded = evaluate_degradation();
    if (degraded.shed) {
      promise->set_value(Status::ResourceExhausted(
          "query shed: server degraded under load (priority " +
          std::to_string(options.priority) + " below cutoff)"));
      return out;
    }
  }
  if (degraded.downgrade) {
    query_options.scheduling = join::Scheduling::kStatic;
  }

  // Plan-cache bound-level probe, still on the submit thread: one hash
  // lookup decides whether this query can skip parse + optimize and —
  // when its plan opens with a shared-scannable leading table — join an
  // in-flight shared pass.
  const bool use_plan_cache = plan_cache_ != nullptr && options.use_plan_cache;
  const uint64_t optimizer_fp =
      query::OptimizerFingerprint(query_options.optimizer);
  std::shared_ptr<const query::Plan> bound;
  if (use_plan_cache) {
    bound = plan_cache_->LookupBound(sparql, engine_->plan_generation(),
                                     optimizer_fp);
  }

  CancellationSource cancel_source = out.cancel;

  std::shared_ptr<SharedScanMember> member;
  uint64_t group_key = 0;
  if (bound != nullptr && options_.enable_shared_scan &&
      options.use_shared_scan && options_.shared_scan_max_group > 1 &&
      SharedScanEligible(*bound, query_options)) {
    member = std::make_shared<SharedScanMember>();
    member->plan = bound;
    member->options = query_options;
    member->sparql = sparql;
    member->result_fingerprint = result_fp;
    member->deliver = [this, promise, token, submit_time,
                       sparql_copy = sparql, result_fp,
                       want_result_cache](Result<engine::QueryResult> result) {
      metrics_.total.Record(MillisSince(submit_time));
      if (result.ok()) {
        metrics_.queries_completed.fetch_add(1, std::memory_order_relaxed);
        metrics_.rows_returned.fetch_add(result->row_count,
                                         std::memory_order_relaxed);
        metrics_.rows_skipped_by_limit.fetch_add(result->rows_skipped_by_limit,
                                                 std::memory_order_relaxed);
        if (want_result_cache && !result->result_cached) {
          MaybeCacheResult(sparql_copy, result_fp, *result);
        }
      } else if (result.status().code() == StatusCode::kCancelled ||
                 result.status().code() == StatusCode::kDeadlineExceeded) {
        CountTermination(token);
      } else {
        metrics_.queries_failed.fetch_add(1, std::memory_order_relaxed);
      }
      promise->set_value(std::move(result));
    };
    group_key = SharedScanRegistry::GroupKey(*bound, query_options);
    shared_scans_.Add(group_key, member);
  }

  auto job = [this, sparql = std::move(sparql), prepared = std::move(prepared),
              query_options, token, promise, submit_time, cancel_source,
              member, group_key, bound, result_fp, want_result_cache,
              use_plan_cache, optimizer_fp, id = out.id] {
    metrics_.queue_wait.Record(MillisSince(submit_time));
    std::vector<std::shared_ptr<SharedScanMember>> claimed;
    if (member != nullptr &&
        !shared_scans_.Start(group_key, member, &claimed,
                             options_.shared_scan_max_group)) {
      // Coalesced into a concurrent leader's shared pass; that leader
      // owns delivery of this query's promise.
      return;
    }
    if (token.StopRequested()) {
      // Cancelled or expired while waiting in the admission queue. Any
      // members this job claimed still get real (solo) results.
      for (const auto& m : claimed) RunClaimedSolo(m);
      CountTermination(token);
      metrics_.total.Record(MillisSince(submit_time));
      promise->set_value(token.ToStatus());
      return;
    }
    watchdog_.Track(id, cancel_source);
    Stopwatch exec_timer;
    // Containment boundary: whatever escapes the engine — including
    // injected std::bad_alloc from the `server.execute` failpoint — is
    // folded into the query's Status so one faulting query never takes
    // down the serving thread.
    Result<engine::QueryResult> result =
        RunJob(sparql, prepared, query_options, bound, member, claimed,
               use_plan_cache, optimizer_fp);
    watchdog_.Untrack(id);
    metrics_.execution.Record(exec_timer.ElapsedMillis());
    metrics_.total.Record(MillisSince(submit_time));
    if (result.ok()) {
      metrics_.queries_completed.fetch_add(1, std::memory_order_relaxed);
      metrics_.rows_returned.fetch_add(result->row_count,
                                       std::memory_order_relaxed);
      metrics_.rows_skipped_by_limit.fetch_add(result->rows_skipped_by_limit,
                                               std::memory_order_relaxed);
      if (want_result_cache && !result->result_cached) {
        MaybeCacheResult(sparql, result_fp, *result);
      }
    } else if (result.status().code() == StatusCode::kCancelled ||
               result.status().code() == StatusCode::kDeadlineExceeded) {
      CountTermination(token);
    } else {
      metrics_.queries_failed.fetch_add(1, std::memory_order_relaxed);
    }
    promise->set_value(std::move(result));
  };

  Status admitted = failpoint::Check("server.admit");
  if (admitted.ok()) {
    admitted = scheduler_.Submit(options.priority, std::move(job));
  }
  if (!admitted.ok()) {
    metrics_.admission_rejected.fetch_add(1, std::memory_order_relaxed);
    if (member == nullptr || shared_scans_.Abandon(group_key, member)) {
      promise->set_value(admitted);
    }
    // else: a leader already claimed the member and will deliver a real
    // result, which beats surfacing the admission error.
    return out;
  }
  metrics_.queries_admitted.fetch_add(1, std::memory_order_relaxed);
  return out;
}

Result<engine::QueryResult> QueryServer::Execute(std::string sparql,
                                                 SubmitOptions options) {
  const RetryPolicy& retry = options_.retry;
  for (int attempt = 1;; ++attempt) {
    SubmittedQuery q = Submit(sparql, options);
    Result<engine::QueryResult> result = q.result.get();
    if (result.ok() || !RetryPolicy::IsRetryable(result.status()) ||
        attempt >= retry.max_attempts) {
      return result;
    }
    double backoff_millis;
    {
      std::lock_guard<std::mutex> lock(retry_mu_);
      backoff_millis = retry.BackoffMillis(attempt, &retry_rng_);
    }
    metrics_.retries.fetch_add(1, std::memory_order_relaxed);
    if (backoff_millis > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_millis));
    }
  }
}

}  // namespace parj::server
