#include "server/server.h"

#include <algorithm>
#include <exception>
#include <memory>
#include <new>
#include <thread>
#include <utility>

#include "common/failpoint.h"
#include "common/timer.h"

namespace parj::server {

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

QueryServer::QueryServer(const engine::ParjEngine* engine,
                         ServerOptions options)
    : engine_(engine),
      options_(std::move(options)),
      pool_(options_.pool != nullptr ? options_.pool : &ThreadPool::Shared()),
      scheduler_(pool_, options_.scheduler),
      degradation_(options_.degradation, &metrics_),
      watchdog_(options_.watchdog, &metrics_) {}

QueryServer::~QueryServer() {
  // Members are destroyed in reverse declaration order, which would tear
  // down watchdog_ and metrics_ while scheduler_'s destructor is still
  // draining jobs that use them. Drain first so nothing is running.
  scheduler_.Drain();
}

void QueryServer::RefreshMutationGauges() {
  const mut::MutationStats s = engine_->mutation_stats();
  metrics_.delta_triples.store(s.delta_insert_triples + s.delta_delete_triples,
                               std::memory_order_relaxed);
  metrics_.delta_bytes.store(s.delta_bytes, std::memory_order_relaxed);
  metrics_.compactions.store(s.compactions, std::memory_order_relaxed);
  metrics_.compaction_micros.store(s.compaction_micros,
                                   std::memory_order_relaxed);
  metrics_.active_epochs.store(s.active_epochs, std::memory_order_relaxed);
  const storage::Database& db = engine_->database();
  metrics_.store_bytes.store(db.TableMemoryUsage(), std::memory_order_relaxed);
  metrics_.store_allocated_bytes.store(db.TableAllocatedUsage(),
                                       std::memory_order_relaxed);
  metrics_.store_raw_bytes.store(db.TableRawBytes(),
                                 std::memory_order_relaxed);
  const mut::WalStats w = engine_->wal_stats();
  metrics_.wal_records.store(w.records, std::memory_order_relaxed);
  metrics_.wal_bytes.store(w.bytes, std::memory_order_relaxed);
  metrics_.wal_fsyncs.store(w.fsyncs, std::memory_order_relaxed);
  metrics_.wal_group_commit_micros.store(w.group_commit_micros,
                                         std::memory_order_relaxed);
  metrics_.wal_group_commits.store(w.group_commits,
                                   std::memory_order_relaxed);
  metrics_.wal_backlog_bytes.store(w.backlog_bytes,
                                   std::memory_order_relaxed);
  metrics_.wal_segments.store(w.segments, std::memory_order_relaxed);
  metrics_.wal_checkpoints.store(w.checkpoints, std::memory_order_relaxed);
  metrics_.wal_backpressure_waits.store(w.backpressure_waits,
                                        std::memory_order_relaxed);
  const mut::RecoveryStats& r = engine_->recovery_stats();
  metrics_.recovery_replayed.store(r.records_replayed,
                                   std::memory_order_relaxed);
  metrics_.recovery_truncated_bytes.store(r.truncated_bytes,
                                          std::memory_order_relaxed);
  metrics_.recovery_millis.store(
      static_cast<uint64_t>(r.snapshot_load_millis + r.replay_millis),
      std::memory_order_relaxed);
}

void QueryServer::CountTermination(const CancellationToken& token) {
  if (token.reason() == CancelReason::kDeadlineExceeded) {
    metrics_.deadlines_expired.fetch_add(1, std::memory_order_relaxed);
  } else if (token.reason() == CancelReason::kWatchdog) {
    // watchdog_kills was already counted by the watchdog thread itself.
  } else {
    metrics_.queries_cancelled.fetch_add(1, std::memory_order_relaxed);
  }
}

SubmittedQuery QueryServer::Submit(std::string sparql, SubmitOptions options) {
  metrics_.queries_submitted.fetch_add(1, std::memory_order_relaxed);
  SubmittedQuery out;
  out.id = next_query_id_.fetch_add(1, std::memory_order_relaxed);
  if (options.deadline.has_value()) {
    out.cancel.set_deadline(*options.deadline);
  } else if (options.timeout_millis > 0) {
    out.cancel.set_timeout_millis(options.timeout_millis);
  }
  auto promise =
      std::make_shared<std::promise<Result<engine::QueryResult>>>();
  out.result = promise->get_future();
  CancellationToken token = out.cancel.token();

  // Admission-time fast path: an already-expired deadline never executes
  // (and never occupies a scheduler slot).
  if (token.StopRequested()) {
    CountTermination(token);
    promise->set_value(token.ToStatus());
    return out;
  }

  engine::QueryOptions query_options =
      options.query.has_value() ? *options.query : options_.query_defaults;
  query_options.cancel = token;

  // Graceful degradation: under sustained load, shed low-priority queries
  // and fall back to static scheduling for the rest. Ingest pressure
  // (pending-delta size against the configured cap) counts as load too.
  RefreshMutationGauges();
  const double capacity =
      static_cast<double>(options_.scheduler.max_in_flight) +
      static_cast<double>(options_.scheduler.max_queue);
  double load_fraction =
      capacity > 0
          ? (static_cast<double>(scheduler_.in_flight()) +
             static_cast<double>(scheduler_.queued())) / capacity
          : 0.0;
  if (options_.degradation.max_delta_triples > 0) {
    const double ingest_fraction =
        static_cast<double>(
            metrics_.delta_triples.load(std::memory_order_relaxed)) /
        static_cast<double>(options_.degradation.max_delta_triples);
    load_fraction = std::max(load_fraction, ingest_fraction);
  }
  const DegradationDecision degraded =
      degradation_.Admit(options.priority, load_fraction);
  if (degraded.shed) {
    promise->set_value(Status::ResourceExhausted(
        "query shed: server degraded under load (priority " +
        std::to_string(options.priority) + " below cutoff)"));
    return out;
  }
  if (degraded.downgrade) {
    query_options.scheduling = join::Scheduling::kStatic;
  }

  const auto submit_time = std::chrono::steady_clock::now();
  CancellationSource cancel_source = out.cancel;

  auto job = [this, sparql = std::move(sparql), query_options, token, promise,
              submit_time, cancel_source, id = out.id] {
    metrics_.queue_wait.Record(MillisSince(submit_time));
    if (token.StopRequested()) {
      // Cancelled or expired while waiting in the admission queue.
      CountTermination(token);
      metrics_.total.Record(MillisSince(submit_time));
      promise->set_value(token.ToStatus());
      return;
    }
    watchdog_.Track(id, cancel_source);
    Stopwatch exec_timer;
    // Containment boundary: whatever escapes the engine — including
    // injected std::bad_alloc from the `server.execute` failpoint — is
    // folded into the query's Status so one faulting query never takes
    // down the serving thread.
    Result<engine::QueryResult> result = [&]() -> Result<engine::QueryResult> {
      try {
        Status fault = failpoint::Check("server.execute");
        if (!fault.ok()) return fault;
        return engine_->Execute(sparql, query_options);
      } catch (const std::bad_alloc&) {
        metrics_.worker_faults.fetch_add(1, std::memory_order_relaxed);
        return Status::ResourceExhausted("query failed: out of memory");
      } catch (const std::exception& e) {
        metrics_.worker_faults.fetch_add(1, std::memory_order_relaxed);
        return Status::Internal(std::string("query failed with exception: ") +
                                e.what());
      } catch (...) {
        metrics_.worker_faults.fetch_add(1, std::memory_order_relaxed);
        return Status::Internal("query failed with unknown exception");
      }
    }();
    watchdog_.Untrack(id);
    metrics_.execution.Record(exec_timer.ElapsedMillis());
    metrics_.total.Record(MillisSince(submit_time));
    if (result.ok()) {
      metrics_.queries_completed.fetch_add(1, std::memory_order_relaxed);
      metrics_.rows_returned.fetch_add(result->row_count,
                                       std::memory_order_relaxed);
    } else if (result.status().code() == StatusCode::kCancelled ||
               result.status().code() == StatusCode::kDeadlineExceeded) {
      CountTermination(token);
    } else {
      metrics_.queries_failed.fetch_add(1, std::memory_order_relaxed);
    }
    promise->set_value(std::move(result));
  };

  Status admitted = failpoint::Check("server.admit");
  if (admitted.ok()) {
    admitted = scheduler_.Submit(options.priority, std::move(job));
  }
  if (!admitted.ok()) {
    metrics_.admission_rejected.fetch_add(1, std::memory_order_relaxed);
    promise->set_value(admitted);
    return out;
  }
  metrics_.queries_admitted.fetch_add(1, std::memory_order_relaxed);
  return out;
}

Result<engine::QueryResult> QueryServer::Execute(std::string sparql,
                                                 SubmitOptions options) {
  const RetryPolicy& retry = options_.retry;
  for (int attempt = 1;; ++attempt) {
    SubmittedQuery q = Submit(sparql, options);
    Result<engine::QueryResult> result = q.result.get();
    if (result.ok() || !RetryPolicy::IsRetryable(result.status()) ||
        attempt >= retry.max_attempts) {
      return result;
    }
    double backoff_millis;
    {
      std::lock_guard<std::mutex> lock(retry_mu_);
      backoff_millis = retry.BackoffMillis(attempt, &retry_rng_);
    }
    metrics_.retries.fetch_add(1, std::memory_order_relaxed);
    if (backoff_millis > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_millis));
    }
  }
}

}  // namespace parj::server
