#include "server/server.h"

#include <memory>
#include <utility>

#include "common/timer.h"

namespace parj::server {

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

QueryServer::QueryServer(const engine::ParjEngine* engine,
                         ServerOptions options)
    : engine_(engine),
      options_(std::move(options)),
      pool_(options_.pool != nullptr ? options_.pool : &ThreadPool::Shared()),
      scheduler_(pool_, options_.scheduler) {}

void QueryServer::CountTermination(const CancellationToken& token) {
  if (token.reason() == CancelReason::kDeadlineExceeded) {
    metrics_.deadlines_expired.fetch_add(1, std::memory_order_relaxed);
  } else {
    metrics_.queries_cancelled.fetch_add(1, std::memory_order_relaxed);
  }
}

SubmittedQuery QueryServer::Submit(std::string sparql, SubmitOptions options) {
  metrics_.queries_submitted.fetch_add(1, std::memory_order_relaxed);
  SubmittedQuery out;
  out.id = next_query_id_.fetch_add(1, std::memory_order_relaxed);
  if (options.deadline.has_value()) {
    out.cancel.set_deadline(*options.deadline);
  } else if (options.timeout_millis > 0) {
    out.cancel.set_timeout_millis(options.timeout_millis);
  }
  auto promise =
      std::make_shared<std::promise<Result<engine::QueryResult>>>();
  out.result = promise->get_future();
  CancellationToken token = out.cancel.token();

  // Admission-time fast path: an already-expired deadline never executes
  // (and never occupies a scheduler slot).
  if (token.StopRequested()) {
    CountTermination(token);
    promise->set_value(token.ToStatus());
    return out;
  }

  engine::QueryOptions query_options =
      options.query.has_value() ? *options.query : options_.query_defaults;
  query_options.cancel = token;
  const auto submit_time = std::chrono::steady_clock::now();

  auto job = [this, sparql = std::move(sparql), query_options, token, promise,
              submit_time] {
    metrics_.queue_wait.Record(MillisSince(submit_time));
    if (token.StopRequested()) {
      // Cancelled or expired while waiting in the admission queue.
      CountTermination(token);
      metrics_.total.Record(MillisSince(submit_time));
      promise->set_value(token.ToStatus());
      return;
    }
    Stopwatch exec_timer;
    Result<engine::QueryResult> result =
        engine_->Execute(sparql, query_options);
    metrics_.execution.Record(exec_timer.ElapsedMillis());
    metrics_.total.Record(MillisSince(submit_time));
    if (result.ok()) {
      metrics_.queries_completed.fetch_add(1, std::memory_order_relaxed);
      metrics_.rows_returned.fetch_add(result->row_count,
                                       std::memory_order_relaxed);
    } else if (result.status().code() == StatusCode::kCancelled ||
               result.status().code() == StatusCode::kDeadlineExceeded) {
      CountTermination(token);
    } else {
      metrics_.queries_failed.fetch_add(1, std::memory_order_relaxed);
    }
    promise->set_value(std::move(result));
  };

  const Status admitted = scheduler_.Submit(options.priority, std::move(job));
  if (!admitted.ok()) {
    metrics_.admission_rejected.fetch_add(1, std::memory_order_relaxed);
    promise->set_value(admitted);
    return out;
  }
  metrics_.queries_admitted.fetch_add(1, std::memory_order_relaxed);
  return out;
}

Result<engine::QueryResult> QueryServer::Execute(std::string sparql,
                                                 SubmitOptions options) {
  SubmittedQuery q = Submit(std::move(sparql), std::move(options));
  return q.result.get();
}

}  // namespace parj::server
