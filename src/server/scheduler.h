#ifndef PARJ_SERVER_SCHEDULER_H_
#define PARJ_SERVER_SCHEDULER_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "server/thread_pool.h"

namespace parj::server {

struct SchedulerOptions {
  /// Queries executing concurrently; further admissions queue.
  int max_in_flight = 4;
  /// Bounded wait queue; submissions beyond this are rejected with
  /// ResourceExhausted (the overload-shedding contract: fail fast instead
  /// of buffering unbounded work).
  size_t max_queue = 64;
};

/// Admission control plus FIFO-with-priority dispatch for query jobs.
/// Jobs run on the shared ThreadPool; the scheduler only decides *when*
/// each admitted job is released to it. Higher priority dispatches first;
/// equal priorities dispatch in submission order.
class QueryScheduler {
 public:
  QueryScheduler(ThreadPool* pool, SchedulerOptions options);
  ~QueryScheduler();  ///< drains all admitted jobs
  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  /// Admits `job` (immediately dispatched or queued) or rejects it with
  /// ResourceExhausted when the wait queue is full / the scheduler is
  /// shutting down. An admitted job ALWAYS runs eventually.
  Status Submit(int priority, std::function<void()> job);

  /// Blocks until every admitted job has finished.
  void Drain();

  size_t queued() const;
  int in_flight() const;

 private:
  struct Entry {
    int priority = 0;
    uint64_t seq = 0;
    std::function<void()> job;
  };

  /// Heap order: highest priority first, then FIFO by sequence number.
  static bool EntryWorse(const Entry& a, const Entry& b) {
    if (a.priority != b.priority) return a.priority < b.priority;
    return a.seq > b.seq;
  }

  void LaunchLocked(std::function<void()> job);
  void OnJobDone();

  ThreadPool* pool_;
  SchedulerOptions options_;
  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  std::vector<Entry> queue_;  // heap via std::push_heap/pop_heap
  uint64_t next_seq_ = 0;
  int in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace parj::server

#endif  // PARJ_SERVER_SCHEDULER_H_
