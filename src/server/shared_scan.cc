#include "server/shared_scan.h"

#include <algorithm>

namespace parj::server {

namespace {

uint64_t HashCombine(uint64_t seed, uint64_t value) {
  value += 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
  value = (value ^ (value >> 30)) * 0xbf58476d1ce4e5b9ull;
  value = (value ^ (value >> 27)) * 0x94d049bb133111ebull;
  return seed ^ (value ^ (value >> 31));
}

}  // namespace

uint64_t SharedScanRegistry::GroupKey(const query::Plan& plan,
                                      const engine::QueryOptions& options) {
  const query::PlanStep& first = plan.steps.front();
  uint64_t key = 0x5343414eull;  // arbitrary non-zero seed
  key = HashCombine(key, static_cast<uint64_t>(first.predicate));
  key = HashCombine(key, static_cast<uint64_t>(first.replica));
  key = HashCombine(key, static_cast<uint64_t>(options.num_threads));
  key = HashCombine(key, static_cast<uint64_t>(options.scheduling));
  return key;
}

void SharedScanRegistry::Add(uint64_t key, MemberPtr member) {
  std::lock_guard<std::mutex> lock(mu_);
  groups_[key].push_back(std::move(member));
}

bool SharedScanRegistry::Start(uint64_t key, const MemberPtr& self,
                               std::vector<MemberPtr>* claimed,
                               size_t max_group) {
  std::lock_guard<std::mutex> lock(mu_);
  int expected = SharedScanMember::kPending;
  if (!self->state.compare_exchange_strong(expected,
                                           SharedScanMember::kStarted)) {
    // A concurrent leader claimed this member (and removed it from the
    // group); it now owes the member a result.
    Remove(key, self);
    return false;
  }
  auto it = groups_.find(key);
  if (it != groups_.end()) {
    std::vector<MemberPtr>& group = it->second;
    size_t kept = 0;
    for (MemberPtr& m : group) {
      if (m == self) continue;  // leader leaves the registry
      const bool room = claimed->size() + 1 < max_group;
      int pending = SharedScanMember::kPending;
      if (room && m->state.compare_exchange_strong(
                      pending, SharedScanMember::kClaimed)) {
        claimed->push_back(std::move(m));
      } else if (pending == SharedScanMember::kPending) {
        // Over the group cap: leave it pending for the next leader.
        group[kept++] = std::move(m);
      }
      // Members already kStarted/kClaimed are stale list residue; drop.
    }
    group.resize(kept);
    if (group.empty()) groups_.erase(it);
  }
  return true;
}

bool SharedScanRegistry::Abandon(uint64_t key, const MemberPtr& self) {
  std::lock_guard<std::mutex> lock(mu_);
  int expected = SharedScanMember::kPending;
  const bool owned = self->state.compare_exchange_strong(
      expected, SharedScanMember::kStarted);
  Remove(key, self);
  return owned;
}

size_t SharedScanRegistry::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [key, group] : groups_) n += group.size();
  return n;
}

void SharedScanRegistry::Remove(uint64_t key, const MemberPtr& member) {
  auto it = groups_.find(key);
  if (it == groups_.end()) return;
  auto& group = it->second;
  group.erase(std::remove(group.begin(), group.end(), member), group.end());
  if (group.empty()) groups_.erase(it);
}

}  // namespace parj::server
