#ifndef PARJ_SERVER_SERVER_H_
#define PARJ_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <mutex>
#include <optional>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "engine/parj_engine.h"
#include "server/cancellation.h"
#include "server/degradation.h"
#include "server/metrics.h"
#include "server/retry.h"
#include "server/scheduler.h"
#include "server/thread_pool.h"
#include "server/watchdog.h"

namespace parj::server {

struct ServerOptions {
  SchedulerOptions scheduler;
  /// Pool running both query jobs and their intra-query shards; nullptr
  /// means ThreadPool::Shared().
  ThreadPool* pool = nullptr;
  /// Engine options applied to every submission unless overridden
  /// per-query (SubmitOptions::query).
  engine::QueryOptions query_defaults;
  /// Server-side wall-clock cap on query runtime (0 = off).
  WatchdogOptions watchdog;
  /// Retry applied by Execute() to transient failures.
  RetryPolicy retry;
  /// Load shedding under sustained overload (off by default).
  DegradationOptions degradation;
};

struct SubmitOptions {
  /// Higher dispatches first; FIFO within a priority level.
  int priority = 0;
  /// Relative timeout in ms (0 = none); converted to an absolute deadline
  /// at submission time.
  double timeout_millis = 0.0;
  /// Absolute steady-clock deadline; takes precedence over timeout_millis.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Per-query engine options; defaults to ServerOptions::query_defaults.
  std::optional<engine::QueryOptions> query;
};

/// Client-side handle for one submitted query: the eventual result plus
/// the cancellation source for client-initiated cancel.
struct SubmittedQuery {
  uint64_t id = 0;
  std::future<Result<engine::QueryResult>> result;
  CancellationSource cancel;

  /// Requests cooperative cancellation; the result future then resolves
  /// to a Cancelled Status (unless the query already finished).
  void Cancel() { cancel.Cancel(); }
};

/// The concurrent query-serving front of a ParjEngine: a shared thread
/// pool under an admission-controlled scheduler, with per-query
/// deadlines/cancellation and a metrics registry. The engine itself stays
/// a read-only, thread-safe evaluator — all serving policy lives here.
///
///   server::QueryServer server(&engine, {});
///   auto q = server.Submit(sparql, {.timeout_millis = 500});
///   auto result = q.result.get();      // Result<QueryResult>
///
/// Intra-query parallelism (the paper's one-thread-per-shard model) and
/// inter-query concurrency share the same pool; SchedulerOptions bounds
/// how many queries compete for it at once.
class QueryServer {
 public:
  explicit QueryServer(const engine::ParjEngine* engine,
                       ServerOptions options = {});
  /// Drains admitted jobs before any member the jobs touch (metrics,
  /// watchdog) is torn down.
  ~QueryServer();
  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Asynchronously executes `sparql`. Never blocks: an over-limit
  /// submission resolves immediately with ResourceExhausted, an expired
  /// deadline with DeadlineExceeded (without executing). Queries that run
  /// past the watchdog cap resolve with DeadlineExceeded; an exception
  /// escaping the engine resolves the future with a contained Status
  /// instead of crashing the serving thread.
  SubmittedQuery Submit(std::string sparql, SubmitOptions options = {});

  /// Submit + wait convenience. Transient failures (ResourceExhausted:
  /// admission rejection, load shedding, allocation pressure) are retried
  /// under ServerOptions::retry with jittered exponential backoff.
  Result<engine::QueryResult> Execute(std::string sparql,
                                      SubmitOptions options = {});

  bool degraded() const { return degradation_.degraded(); }

  /// Blocks until every admitted query has finished.
  void Drain() { scheduler_.Drain(); }

  /// Copies the engine's live-mutability counters (delta sizes,
  /// compactions, active epochs) into the metrics registry. Runs on every
  /// submission; the serving CLI also calls it before each `.metrics`
  /// dump so gauges are fresh even on an idle server.
  void RefreshMutationGauges();

  const MetricsRegistry& metrics() const { return metrics_; }
  MetricsRegistry& metrics() { return metrics_; }
  const QueryScheduler& scheduler() const { return scheduler_; }
  ThreadPool& pool() { return *pool_; }

 private:
  void CountTermination(const CancellationToken& token);

  const engine::ParjEngine* engine_;
  ServerOptions options_;
  ThreadPool* pool_;
  QueryScheduler scheduler_;
  MetricsRegistry metrics_;
  DegradationPolicy degradation_;
  QueryWatchdog watchdog_;
  std::atomic<uint64_t> next_query_id_{1};
  std::mutex retry_mu_;  ///< guards retry_rng_ (backoff path only)
  Rng retry_rng_{0x7261626E6F77ULL};
};

}  // namespace parj::server

#endif  // PARJ_SERVER_SERVER_H_
