#ifndef PARJ_SERVER_SERVER_H_
#define PARJ_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "engine/parj_engine.h"
#include "query/normalize.h"
#include "query/plan_cache.h"
#include "server/cancellation.h"
#include "server/degradation.h"
#include "server/metrics.h"
#include "server/result_cache.h"
#include "server/retry.h"
#include "server/scheduler.h"
#include "server/shared_scan.h"
#include "server/thread_pool.h"
#include "server/watchdog.h"

namespace parj::server {

struct ServerOptions {
  SchedulerOptions scheduler;
  /// Pool running both query jobs and their intra-query shards; nullptr
  /// means ThreadPool::Shared().
  ThreadPool* pool = nullptr;
  /// Engine options applied to every submission unless overridden
  /// per-query (SubmitOptions::query).
  engine::QueryOptions query_defaults;
  /// Server-side wall-clock cap on query runtime (0 = off).
  WatchdogOptions watchdog;
  /// Retry applied by Execute() to transient failures.
  RetryPolicy retry;
  /// Load shedding under sustained overload (off by default).
  DegradationOptions degradation;

  // ---- Serving caches (DESIGN.md §15) ---------------------------------
  /// Two-level plan cache (exact text -> bound plan, shape -> template).
  bool enable_plan_cache = true;
  size_t plan_cache_entries = query::PlanCache::kDefaultMaxEntries;
  /// Result-cache byte budget; 0 disables the result cache entirely.
  size_t result_cache_bytes = size_t{64} << 20;
  /// Coalesce in-flight queries sharing a leading scan into one pass.
  bool enable_shared_scan = true;
  /// Max queries per shared pass, leader included.
  size_t shared_scan_max_group = 8;
};

struct SubmitOptions {
  /// Higher dispatches first; FIFO within a priority level.
  int priority = 0;
  /// Relative timeout in ms (0 = none); converted to an absolute deadline
  /// at submission time.
  double timeout_millis = 0.0;
  /// Absolute steady-clock deadline; takes precedence over timeout_millis.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Per-query engine options; defaults to ServerOptions::query_defaults.
  std::optional<engine::QueryOptions> query;
  /// Per-query opt-outs of the serving caches (effective only when the
  /// corresponding ServerOptions switch is on). Useful for benchmarking
  /// the uncached path and for queries that must observe the very latest
  /// plan statistics.
  bool use_plan_cache = true;
  bool use_result_cache = true;
  bool use_shared_scan = true;
};

/// A query parsed and shape-normalized once, reusable across submissions:
/// SubmitPrepared() skips parse + normalize on every call, and skips
/// encode + optimize whenever the shape is already cached. Immutable and
/// thread-safe; obtain from QueryServer::Prepare().
struct PreparedStatement {
  std::string sparql;
  query::SelectQueryAst ast;
  query::NormalizedQuery normalized;
};

/// Client-side handle for one submitted query: the eventual result plus
/// the cancellation source for client-initiated cancel.
struct SubmittedQuery {
  uint64_t id = 0;
  std::future<Result<engine::QueryResult>> result;
  CancellationSource cancel;

  /// Requests cooperative cancellation; the result future then resolves
  /// to a Cancelled Status (unless the query already finished).
  void Cancel() { cancel.Cancel(); }
};

/// The concurrent query-serving front of a ParjEngine: a shared thread
/// pool under an admission-controlled scheduler, with per-query
/// deadlines/cancellation and a metrics registry. The engine itself stays
/// a read-only, thread-safe evaluator — all serving policy lives here.
///
///   server::QueryServer server(&engine, {});
///   auto q = server.Submit(sparql, {.timeout_millis = 500});
///   auto result = q.result.get();      // Result<QueryResult>
///
/// Intra-query parallelism (the paper's one-thread-per-shard model) and
/// inter-query concurrency share the same pool; SchedulerOptions bounds
/// how many queries compete for it at once.
class QueryServer {
 public:
  explicit QueryServer(const engine::ParjEngine* engine,
                       ServerOptions options = {});
  /// Drains admitted jobs before any member the jobs touch (metrics,
  /// watchdog) is torn down.
  ~QueryServer();
  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Asynchronously executes `sparql`. Never blocks: an over-limit
  /// submission resolves immediately with ResourceExhausted, an expired
  /// deadline with DeadlineExceeded (without executing). Queries that run
  /// past the watchdog cap resolve with DeadlineExceeded; an exception
  /// escaping the engine resolves the future with a contained Status
  /// instead of crashing the serving thread.
  SubmittedQuery Submit(std::string sparql, SubmitOptions options = {});

  /// Parses and shape-normalizes once; the handle makes every subsequent
  /// SubmitPrepared() skip that work. Fails on parse errors only —
  /// shapes the caches cannot parameterize still prepare fine and take
  /// the uncached path at submit time.
  Result<std::shared_ptr<const PreparedStatement>> Prepare(
      std::string sparql) const;

  /// Submit() for a prepared query.
  SubmittedQuery SubmitPrepared(std::shared_ptr<const PreparedStatement> stmt,
                                SubmitOptions options = {});

  /// Submit + wait convenience. Transient failures (ResourceExhausted:
  /// admission rejection, load shedding, allocation pressure) are retried
  /// under ServerOptions::retry with jittered exponential backoff.
  Result<engine::QueryResult> Execute(std::string sparql,
                                      SubmitOptions options = {});

  bool degraded() const { return degradation_.degraded(); }

  /// Blocks until every admitted query has finished.
  void Drain() { scheduler_.Drain(); }

  /// Copies the engine's live-mutability counters (delta sizes,
  /// compactions, active epochs) into the metrics registry. Runs on every
  /// submission; the serving CLI also calls it before each `.metrics`
  /// dump so gauges are fresh even on an idle server.
  void RefreshMutationGauges();

  const MetricsRegistry& metrics() const { return metrics_; }
  MetricsRegistry& metrics() { return metrics_; }
  const QueryScheduler& scheduler() const { return scheduler_; }
  ThreadPool& pool() { return *pool_; }

  /// nullptr when the cache is disabled by ServerOptions.
  query::PlanCache* plan_cache() { return plan_cache_.get(); }
  ResultCache* result_cache() { return result_cache_.get(); }

  /// Drops every cached plan and result (operator command; also handy in
  /// tests). Running queries are unaffected.
  void ClearCaches();

 private:
  void CountTermination(const CancellationToken& token);

  SubmittedQuery SubmitInternal(
      std::string sparql, std::shared_ptr<const PreparedStatement> prepared,
      SubmitOptions options);

  /// Engine call with the worker containment boundary (failpoint +
  /// exception folding) around it.
  Result<engine::QueryResult> ContainedExecutePlan(
      const query::Plan& plan, const engine::QueryOptions& options);

  /// The no-bound-plan path: parse (or reuse the prepared AST),
  /// normalize, probe the shape cache, bind or optimize, execute against
  /// one pinned snapshot, and seed both plan-cache levels.
  Result<engine::QueryResult> ExecuteCold(
      const std::string& sparql,
      const std::shared_ptr<const PreparedStatement>& prepared,
      const engine::QueryOptions& query_options, bool use_plan_cache,
      uint64_t optimizer_fp);

  /// Solo execution + delivery of a member claimed from the shared-scan
  /// registry (used when the shared pass is rejected or the leader dies).
  void RunClaimedSolo(const std::shared_ptr<SharedScanMember>& member);

  /// Dispatch for one admitted job: shared pass (when `claimed` is
  /// non-empty), bound-plan fast path, or cold path. Delivers every
  /// claimed member; returns the job's own result.
  Result<engine::QueryResult> RunJob(
      const std::string& sparql,
      const std::shared_ptr<const PreparedStatement>& prepared,
      const engine::QueryOptions& query_options,
      const std::shared_ptr<const query::Plan>& bound,
      const std::shared_ptr<SharedScanMember>& member,
      std::vector<std::shared_ptr<SharedScanMember>>& claimed,
      bool use_plan_cache, uint64_t optimizer_fp);

  /// Copies a successful result's rows into the result cache (unless the
  /// `resultcache.insert` failpoint is armed).
  void MaybeCacheResult(const std::string& sparql, uint64_t fingerprint,
                        const engine::QueryResult& result);

  const engine::ParjEngine* engine_;
  ServerOptions options_;
  ThreadPool* pool_;
  QueryScheduler scheduler_;
  MetricsRegistry metrics_;
  DegradationPolicy degradation_;
  QueryWatchdog watchdog_;
  std::unique_ptr<query::PlanCache> plan_cache_;
  std::unique_ptr<ResultCache> result_cache_;
  SharedScanRegistry shared_scans_;
  std::atomic<uint64_t> next_query_id_{1};
  std::mutex retry_mu_;  ///< guards retry_rng_ (backoff path only)
  Rng retry_rng_{0x7261626E6F77ULL};
};

}  // namespace parj::server

#endif  // PARJ_SERVER_SERVER_H_
