#ifndef PARJ_SERVER_RETRY_H_
#define PARJ_SERVER_RETRY_H_

#include <cstdint>

#include "common/rng.h"
#include "common/status.h"

namespace parj::server {

/// Bounded retry with jittered exponential backoff, applied by the server
/// to *transient* failures only (admission rejections and injected
/// ResourceExhausted faults). Permanent failures — parse errors, data
/// loss, cancellation, watchdog kills — are never retried: retrying them
/// cannot succeed and would double load exactly when the server is
/// struggling.
struct RetryPolicy {
  /// Total attempts including the first; 1 disables retry.
  int max_attempts = 3;
  double initial_backoff_millis = 1.0;
  double backoff_multiplier = 2.0;
  double max_backoff_millis = 100.0;
  /// Fraction of the backoff that is randomized away: the sleep is drawn
  /// uniformly from [base * (1 - jitter), base]. Jitter decorrelates
  /// retry storms from concurrent clients hitting the same full queue.
  double jitter = 0.5;

  /// Transient-failure predicate: only kResourceExhausted (queue full,
  /// admission shed, allocation pressure) is worth another attempt.
  static bool IsRetryable(const Status& status) {
    return status.IsResourceExhausted();
  }

  /// Backoff before attempt `attempt` (1-based count of *failed*
  /// attempts so far). `rng` supplies the jitter; pass nullptr for the
  /// deterministic upper bound.
  double BackoffMillis(int attempt, Rng* rng) const;
};

}  // namespace parj::server

#endif  // PARJ_SERVER_RETRY_H_
