#ifndef PARJ_SERVER_SHARED_SCAN_H_
#define PARJ_SERVER_SHARED_SCAN_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "engine/parj_engine.h"
#include "query/plan.h"

namespace parj::server {

/// One in-flight query eligible for shared-scan batching: its bound plan,
/// engine options and a delivery callback that resolves the client's
/// future and does the terminal metrics accounting.
///
/// The `state` atomic is the ownership handshake. Exactly one party
/// delivers a member's result:
///   kPending -> kStarted   the member's own job runs it (as leader or
///                          solo after a failed admission), or
///   kPending -> kClaimed   another query's leader folded it into its
///                          shared pass and owes it a result.
/// Whichever CAS wins owns delivery; the loser walks away.
struct SharedScanMember {
  enum State : int { kPending = 0, kStarted = 1, kClaimed = 2 };

  std::shared_ptr<const query::Plan> plan;
  engine::QueryOptions options;
  std::string sparql;
  /// Request fingerprint over the answer-shaping options (result mode,
  /// row cap): members equal in (sparql, fingerprint) are row-identical
  /// and a leader executes them once.
  uint64_t result_fingerprint = 0;
  std::function<void(Result<engine::QueryResult>)> deliver;
  std::atomic<int> state{kPending};
};

/// Groups in-flight queries whose bound plans open with the same leading
/// table scan (DESIGN.md §15). Submission adds a member under a group key
/// derived from the leading scan; when a member's job reaches the front
/// of the scheduler it calls Start(), which either makes it the leader of
/// its group — draining every other pending member so one
/// ExecuteShared() pass serves them all — or discovers a concurrent
/// leader already claimed it, in which case the job simply returns and
/// the leader delivers.
///
/// The registry's lists are advisory; SharedScanMember::state is the
/// source of truth, so a member that was claimed between Add() and its
/// own Start() (or whose admission failed after Add()) is never delivered
/// twice and never dropped.
class SharedScanRegistry {
 public:
  using MemberPtr = std::shared_ptr<SharedScanMember>;

  /// Key of the shared pass `plan` could join: leading predicate +
  /// replica (ExecuteShared requires them identical) plus the scheduling
  /// knobs taken from the group leader, so co-scheduled members agree on
  /// thread count and work distribution.
  static uint64_t GroupKey(const query::Plan& plan,
                           const engine::QueryOptions& options);

  /// Registers a pending member. Call before scheduling its job.
  void Add(uint64_t key, MemberPtr member);

  /// Called by the member's own job. True: `self` is now the group
  /// leader (state kStarted) and *claimed holds the other members it
  /// drained (each moved to kClaimed, at most max_group - 1); the caller
  /// must execute and deliver all of them. False: a concurrent leader
  /// claimed `self`; the caller must return without touching the promise.
  bool Start(uint64_t key, const MemberPtr& self,
             std::vector<MemberPtr>* claimed, size_t max_group);

  /// Called when scheduling `self`'s job failed after Add(). True: the
  /// member was still pending and is now removed (caller reports the
  /// admission error). False: a leader claimed it and will deliver a
  /// real result instead.
  bool Abandon(uint64_t key, const MemberPtr& self);

  /// Members currently awaiting a leader (tests / introspection).
  size_t pending() const;

 private:
  void Remove(uint64_t key, const MemberPtr& member);

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::vector<MemberPtr>> groups_;
};

}  // namespace parj::server

#endif  // PARJ_SERVER_SHARED_SCAN_H_
