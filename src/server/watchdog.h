#ifndef PARJ_SERVER_WATCHDOG_H_
#define PARJ_SERVER_WATCHDOG_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "server/cancellation.h"
#include "server/metrics.h"

namespace parj::server {

struct WatchdogOptions {
  /// Wall-clock cap per query in milliseconds; 0 disables the watchdog
  /// entirely (no thread is started).
  double max_query_millis = 0.0;
  /// How often the watchdog thread scans tracked queries.
  double poll_interval_millis = 5.0;
};

/// Server-side guard against runaway queries. The deadline mechanism in
/// CancellationSource covers *client-requested* timeouts; the watchdog is
/// the server's own defense — a query that exceeds the configured
/// wall-clock cap is cancelled with CancelReason::kWatchdog regardless of
/// what the client asked for, and the kill is recorded in the metrics
/// registry. Cancellation stays cooperative (the executor's shard loops
/// poll their token), so a kill unwinds cleanly through Status.
///
/// The thread starts lazily on the first Track() and joins in the
/// destructor. With max_query_millis == 0, Track/Untrack are no-ops.
class QueryWatchdog {
 public:
  QueryWatchdog(WatchdogOptions options, MetricsRegistry* metrics)
      : options_(options), metrics_(metrics) {}
  ~QueryWatchdog();

  QueryWatchdog(const QueryWatchdog&) = delete;
  QueryWatchdog& operator=(const QueryWatchdog&) = delete;

  bool enabled() const { return options_.max_query_millis > 0; }

  /// Registers a running query. The watchdog holds the source (cheap
  /// shared_ptr copy) so it can cancel even after the caller's handle
  /// is gone.
  void Track(uint64_t query_id, CancellationSource source);

  /// Unregisters on completion (no-op when already killed-and-removed).
  void Untrack(uint64_t query_id);

  /// Queries currently tracked (for tests).
  size_t tracked() const;

 private:
  struct Entry {
    CancellationSource source;
    std::chrono::steady_clock::time_point start;
  };

  void Loop();

  const WatchdogOptions options_;
  MetricsRegistry* const metrics_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<uint64_t, Entry> entries_;
  bool started_ = false;
  bool shutdown_ = false;
  std::thread thread_;
};

}  // namespace parj::server

#endif  // PARJ_SERVER_WATCHDOG_H_
