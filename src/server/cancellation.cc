#include "server/cancellation.h"

namespace parj::server {

Status CancellationToken::ToStatus() const {
  switch (reason()) {
    case CancelReason::kCancelled:
      return Status::Cancelled("query cancelled by client");
    case CancelReason::kDeadlineExceeded:
      return Status::DeadlineExceeded("query deadline exceeded");
    case CancelReason::kWatchdog:
      return Status::DeadlineExceeded(
          "query killed by watchdog (exceeded the server's wall-clock cap)");
    case CancelReason::kNone:
      break;
  }
  return Status::Internal("ToStatus() on a token that was not stopped");
}

void CancellationSource::set_timeout_millis(double millis) {
  set_deadline(std::chrono::steady_clock::now() +
               std::chrono::nanoseconds(static_cast<int64_t>(millis * 1e6)));
}

}  // namespace parj::server
