#include "server/scheduler.h"

#include <algorithm>
#include <string>
#include <utility>

namespace parj::server {

QueryScheduler::QueryScheduler(ThreadPool* pool, SchedulerOptions options)
    : pool_(pool), options_(options) {
  if (options_.max_in_flight < 1) options_.max_in_flight = 1;
}

QueryScheduler::~QueryScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  Drain();
}

Status QueryScheduler::Submit(int priority, std::function<void()> job) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) {
    return Status::ResourceExhausted("scheduler is shutting down");
  }
  if (in_flight_ < options_.max_in_flight) {
    ++in_flight_;
    LaunchLocked(std::move(job));
    return Status::OK();
  }
  if (queue_.size() >= options_.max_queue) {
    return Status::ResourceExhausted(
        "admission queue full (" + std::to_string(queue_.size()) +
        " queued, " + std::to_string(in_flight_) + " in flight)");
  }
  queue_.push_back(Entry{priority, next_seq_++, std::move(job)});
  std::push_heap(queue_.begin(), queue_.end(), EntryWorse);
  return Status::OK();
}

void QueryScheduler::LaunchLocked(std::function<void()> job) {
  pool_->Submit([this, job = std::move(job)] {
    job();
    OnJobDone();
  });
}

void QueryScheduler::OnJobDone() {
  std::function<void()> next;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!queue_.empty()) {
      std::pop_heap(queue_.begin(), queue_.end(), EntryWorse);
      next = std::move(queue_.back().job);
      queue_.pop_back();
    } else {
      --in_flight_;
      if (in_flight_ == 0) idle_cv_.notify_all();
      return;
    }
    LaunchLocked(std::move(next));
  }
}

void QueryScheduler::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&] { return in_flight_ == 0 && queue_.empty(); });
}

size_t QueryScheduler::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

int QueryScheduler::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

}  // namespace parj::server
