#ifndef PARJ_SERVER_THREAD_POOL_H_
#define PARJ_SERVER_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace parj::server {

/// Fixed-size, lazily-started thread pool shared by every parallel code
/// path in the repo (query shards, cluster nodes, exchange workers,
/// scheduler jobs). The pool itself is work-stealing-free — a plain FIFO
/// queue plus direct handoff; dynamic load balancing lives one layer up,
/// in the join layer's MorselScheduler, which worker gangs consult at
/// morsel granularity (see RunWorkers).
///
/// Threads are created on the first task submission, not at construction,
/// so merely linking the serving layer costs nothing (the paper's
/// single-query binaries keep their exact thread behaviour until they
/// submit work).
///
/// Four submission shapes:
///  - Submit(): fire-and-forget queue task (used by the query scheduler).
///  - ParallelFor(): fork-join over n independent indices. The CALLER
///    participates in the loop, claiming indices from a shared atomic
///    counter alongside the pool workers, so the call always completes
///    even when every worker is busy — nested ParallelFor (a pool-run
///    query fanning out its shards) cannot deadlock.
///  - RunGang(): n members that must run CONCURRENTLY (they synchronize
///    with barriers, e.g. the exchange baseline). Members are handed
///    directly to provably idle workers; the remainder get temporary
///    overflow threads, so a gang can never deadlock waiting for pool
///    capacity held by another gang.
///  - RunWorkers(): n long-lived workers that share a work dispenser
///    (the morsel executor). Each member must run exactly once but needs
///    no concurrency guarantee — a late worker just finds the dispenser
///    drained. Members go to idle workers by direct handoff (no queue
///    latency), any shortfall is queued, and the caller claims every
///    member no pool worker picked up, so the call never oversubscribes
///    (no overflow threads) and never deadlocks (caller participation).
class ThreadPool {
 public:
  struct Stats {
    uint64_t tasks_executed = 0;     ///< queue + direct-handoff tasks run
    uint64_t gangs_run = 0;          ///< RunGang() calls
    uint64_t overflow_threads = 0;   ///< gang members that needed a temp thread
    uint64_t worker_gangs_run = 0;   ///< RunWorkers() calls
  };

  /// `num_threads` <= 0 means hardware concurrency.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a fire-and-forget task. Starts the workers on first use.
  void Submit(std::function<void()> task);

  /// Runs body(0..n-1), each index exactly once, returning when all are
  /// done. The caller claims indices too — safe to call from inside a
  /// pool task.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  /// Runs member(0..n-1) with all n members guaranteed to be running
  /// concurrently (barrier-safe). The caller runs member 0.
  void RunGang(int n, const std::function<void(int)>& member);

  /// Runs member(0..n-1), each exactly once, with as many members as the
  /// pool has idle capacity for running concurrently and the rest run by
  /// the caller. Built for dispenser-sharing worker gangs: members must
  /// not synchronize with each other (no barriers — use RunGang for
  /// that). Safe to call from inside a pool task.
  void RunWorkers(int n, const std::function<void(int)>& member);

  int thread_count() const { return num_threads_; }
  bool started() const;
  Stats stats() const;

  /// The process-wide pool (lazily started, intentionally never
  /// destroyed so detached users at exit stay valid).
  static ThreadPool& Shared();

 private:
  /// Per-worker direct-handoff slot (guarded by mu_).
  struct Worker {
    std::function<void()> direct;
    bool has_direct = false;
  };

  void EnsureStartedLocked();
  void WorkerLoop(size_t index);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<size_t> idle_;  ///< indices of workers parked in cv_.wait
  std::vector<std::thread> threads_;
  int num_threads_;
  bool started_ = false;
  bool stop_ = false;
  std::atomic<uint64_t> tasks_executed_{0};
  std::atomic<uint64_t> gangs_run_{0};
  std::atomic<uint64_t> overflow_threads_{0};
  std::atomic<uint64_t> worker_gangs_run_{0};
};

}  // namespace parj::server

#endif  // PARJ_SERVER_THREAD_POOL_H_
