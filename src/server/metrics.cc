#include "server/metrics.h"

#include <bit>
#include <cmath>
#include <cstdio>

namespace parj::server {

namespace {

size_t BucketFor(uint64_t micros) {
  if (micros == 0) return 0;
  const size_t width = static_cast<size_t>(std::bit_width(micros));
  return width < LatencyHistogram::kBucketCount
             ? width
             : LatencyHistogram::kBucketCount - 1;
}

}  // namespace

void LatencyHistogram::Record(double millis) {
  if (millis < 0 || !std::isfinite(millis)) millis = 0;
  const uint64_t micros = static_cast<uint64_t>(millis * 1e3);
  buckets_[BucketFor(micros)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_micros_.fetch_add(micros, std::memory_order_relaxed);
  uint64_t prev = max_micros_.load(std::memory_order_relaxed);
  while (micros > prev && !max_micros_.compare_exchange_weak(
                              prev, micros, std::memory_order_relaxed)) {
  }
}

double LatencyHistogram::BucketUpperMillis(size_t bucket) {
  return static_cast<double>(uint64_t{1} << bucket) / 1e3;
}

double LatencyHistogram::PercentileMillis(double p) const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  const uint64_t target =
      static_cast<uint64_t>(std::ceil(p * static_cast<double>(n)));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBucketCount; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= target && cumulative > 0) return BucketUpperMillis(i);
  }
  return BucketUpperMillis(kBucketCount - 1);
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_micros_.store(0, std::memory_order_relaxed);
  max_micros_.store(0, std::memory_order_relaxed);
}

namespace {

void AppendHistogram(std::string* out, const char* name,
                     const LatencyHistogram& h) {
  char line[160];
  std::snprintf(line, sizeof(line),
                "%-12s count=%llu mean=%.3fms p50<=%.3fms p99<=%.3fms "
                "max=%.3fms\n",
                name, static_cast<unsigned long long>(h.count()),
                h.mean_millis(), h.PercentileMillis(0.5),
                h.PercentileMillis(0.99), h.max_millis());
  *out += line;
}

void AppendCounter(std::string* out, const char* name,
                   const std::atomic<uint64_t>& value) {
  char line[96];
  std::snprintf(line, sizeof(line), "%-20s %llu\n", name,
                static_cast<unsigned long long>(
                    value.load(std::memory_order_relaxed)));
  *out += line;
}

}  // namespace

std::string MetricsRegistry::Dump() const {
  std::string out = "--- serving metrics ---\n";
  AppendCounter(&out, "queries_submitted", queries_submitted);
  AppendCounter(&out, "queries_admitted", queries_admitted);
  AppendCounter(&out, "admission_rejected", admission_rejected);
  AppendCounter(&out, "queries_completed", queries_completed);
  AppendCounter(&out, "queries_failed", queries_failed);
  AppendCounter(&out, "queries_cancelled", queries_cancelled);
  AppendCounter(&out, "deadlines_expired", deadlines_expired);
  AppendCounter(&out, "rows_returned", rows_returned);
  AppendCounter(&out, "rows_skipped_by_limit", rows_skipped_by_limit);
  AppendCounter(&out, "retries", retries);
  AppendCounter(&out, "watchdog_kills", watchdog_kills);
  AppendCounter(&out, "degraded_activations", degraded_activations);
  AppendCounter(&out, "degraded_rejected", degraded_rejected);
  AppendCounter(&out, "worker_faults", worker_faults);
  AppendCounter(&out, "snapshot_crc_verified", snapshot_crc_verified);
  AppendCounter(&out, "load_total_micros", load_total_micros);
  AppendCounter(&out, "load_parse_micros", load_parse_micros);
  AppendCounter(&out, "load_encode_micros", load_encode_micros);
  AppendCounter(&out, "load_build_micros", load_build_micros);
  AppendCounter(&out, "load_index_micros", load_index_micros);
  AppendCounter(&out, "load_calibrate_micros", load_calibrate_micros);
  AppendCounter(&out, "load_threads_used", load_threads_used);
  AppendCounter(&out, "delta_triples", delta_triples);
  AppendCounter(&out, "delta_bytes", delta_bytes);
  AppendCounter(&out, "compactions", compactions);
  {
    char line[96];
    std::snprintf(line, sizeof(line), "%-20s %.3f\n", "compaction_ms",
                  static_cast<double>(compaction_micros.load(
                      std::memory_order_relaxed)) / 1e3);
    out += line;
  }
  AppendCounter(&out, "active_epochs", active_epochs);
  AppendCounter(&out, "store_bytes", store_bytes);
  AppendCounter(&out, "store_allocated_bytes", store_allocated_bytes);
  AppendCounter(&out, "store_raw_bytes", store_raw_bytes);
  AppendCounter(&out, "wal_records", wal_records);
  AppendCounter(&out, "wal_bytes", wal_bytes);
  AppendCounter(&out, "wal_fsyncs", wal_fsyncs);
  {
    char line[96];
    std::snprintf(line, sizeof(line), "%-20s %.3f\n", "group_commit_ms",
                  static_cast<double>(wal_group_commit_micros.load(
                      std::memory_order_relaxed)) / 1e3);
    out += line;
  }
  AppendCounter(&out, "wal_group_commits", wal_group_commits);
  AppendCounter(&out, "wal_backlog_bytes", wal_backlog_bytes);
  AppendCounter(&out, "wal_segments", wal_segments);
  AppendCounter(&out, "wal_checkpoints", wal_checkpoints);
  AppendCounter(&out, "wal_backpressure_waits", wal_backpressure_waits);
  AppendCounter(&out, "recovery_replayed", recovery_replayed);
  AppendCounter(&out, "recovery_truncated_bytes", recovery_truncated_bytes);
  AppendCounter(&out, "recovery_millis", recovery_millis);
  AppendCounter(&out, "plan_cache_hits", plan_cache_hits);
  AppendCounter(&out, "plan_cache_misses", plan_cache_misses);
  AppendCounter(&out, "plan_cache_evictions", plan_cache_evictions);
  AppendCounter(&out, "result_cache_hits", result_cache_hits);
  AppendCounter(&out, "result_cache_misses", result_cache_misses);
  AppendCounter(&out, "result_cache_bytes", result_cache_bytes);
  AppendCounter(&out, "shared_scan_groups", shared_scan_groups);
  AppendCounter(&out, "shared_scan_queries_coalesced",
                shared_scan_queries_coalesced);
  AppendCounter(&out, "shared_scan_fallbacks", shared_scan_fallbacks);
  AppendHistogram(&out, "queue_wait", queue_wait);
  AppendHistogram(&out, "execution", execution);
  AppendHistogram(&out, "total", total);
  return out;
}

void MetricsRegistry::Reset() {
  queries_submitted.store(0, std::memory_order_relaxed);
  queries_admitted.store(0, std::memory_order_relaxed);
  admission_rejected.store(0, std::memory_order_relaxed);
  queries_completed.store(0, std::memory_order_relaxed);
  queries_failed.store(0, std::memory_order_relaxed);
  queries_cancelled.store(0, std::memory_order_relaxed);
  deadlines_expired.store(0, std::memory_order_relaxed);
  rows_returned.store(0, std::memory_order_relaxed);
  rows_skipped_by_limit.store(0, std::memory_order_relaxed);
  retries.store(0, std::memory_order_relaxed);
  watchdog_kills.store(0, std::memory_order_relaxed);
  degraded_activations.store(0, std::memory_order_relaxed);
  degraded_rejected.store(0, std::memory_order_relaxed);
  worker_faults.store(0, std::memory_order_relaxed);
  snapshot_crc_verified.store(0, std::memory_order_relaxed);
  load_total_micros.store(0, std::memory_order_relaxed);
  load_parse_micros.store(0, std::memory_order_relaxed);
  load_encode_micros.store(0, std::memory_order_relaxed);
  load_build_micros.store(0, std::memory_order_relaxed);
  load_index_micros.store(0, std::memory_order_relaxed);
  load_calibrate_micros.store(0, std::memory_order_relaxed);
  load_threads_used.store(0, std::memory_order_relaxed);
  delta_triples.store(0, std::memory_order_relaxed);
  delta_bytes.store(0, std::memory_order_relaxed);
  compactions.store(0, std::memory_order_relaxed);
  compaction_micros.store(0, std::memory_order_relaxed);
  active_epochs.store(0, std::memory_order_relaxed);
  store_bytes.store(0, std::memory_order_relaxed);
  store_allocated_bytes.store(0, std::memory_order_relaxed);
  store_raw_bytes.store(0, std::memory_order_relaxed);
  wal_records.store(0, std::memory_order_relaxed);
  wal_bytes.store(0, std::memory_order_relaxed);
  wal_fsyncs.store(0, std::memory_order_relaxed);
  wal_group_commit_micros.store(0, std::memory_order_relaxed);
  wal_group_commits.store(0, std::memory_order_relaxed);
  wal_backlog_bytes.store(0, std::memory_order_relaxed);
  wal_segments.store(0, std::memory_order_relaxed);
  wal_checkpoints.store(0, std::memory_order_relaxed);
  wal_backpressure_waits.store(0, std::memory_order_relaxed);
  recovery_replayed.store(0, std::memory_order_relaxed);
  recovery_truncated_bytes.store(0, std::memory_order_relaxed);
  recovery_millis.store(0, std::memory_order_relaxed);
  plan_cache_hits.store(0, std::memory_order_relaxed);
  plan_cache_misses.store(0, std::memory_order_relaxed);
  plan_cache_evictions.store(0, std::memory_order_relaxed);
  result_cache_hits.store(0, std::memory_order_relaxed);
  result_cache_misses.store(0, std::memory_order_relaxed);
  result_cache_bytes.store(0, std::memory_order_relaxed);
  shared_scan_groups.store(0, std::memory_order_relaxed);
  shared_scan_queries_coalesced.store(0, std::memory_order_relaxed);
  shared_scan_fallbacks.store(0, std::memory_order_relaxed);
  queue_wait.Reset();
  execution.Reset();
  total.Reset();
}

}  // namespace parj::server
