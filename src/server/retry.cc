#include "server/retry.h"

#include <algorithm>

namespace parj::server {

double RetryPolicy::BackoffMillis(int attempt, Rng* rng) const {
  if (attempt < 1) attempt = 1;
  double base = initial_backoff_millis;
  for (int i = 1; i < attempt; ++i) {
    base *= backoff_multiplier;
    if (base >= max_backoff_millis) break;
  }
  base = std::min(base, max_backoff_millis);
  if (rng == nullptr || jitter <= 0) return base;
  const double j = std::min(jitter, 1.0);
  const double lo = base * (1.0 - j);
  return lo + (base - lo) * rng->NextDouble();
}

}  // namespace parj::server
