#include "server/degradation.h"

namespace parj::server {

DegradationDecision DegradationPolicy::Admit(int priority,
                                             double load_fraction) {
  DegradationDecision decision;
  if (!options_.enabled) return decision;

  bool degraded = degraded_.load(std::memory_order_relaxed);
  if (!degraded && load_fraction >= options_.high_watermark) {
    // Plain store (not CAS): concurrent submitters crossing the watermark
    // together count as one activation often enough for an ops counter,
    // and the mode itself is idempotent.
    if (!degraded_.exchange(true, std::memory_order_relaxed)) {
      if (metrics_ != nullptr) {
        metrics_->degraded_activations.fetch_add(1,
                                                 std::memory_order_relaxed);
      }
    }
    degraded = true;
  } else if (degraded && load_fraction <= options_.low_watermark) {
    degraded_.store(false, std::memory_order_relaxed);
    degraded = false;
  }

  if (!degraded) return decision;
  if (priority < options_.min_priority) {
    decision.shed = true;
    if (metrics_ != nullptr) {
      metrics_->degraded_rejected.fetch_add(1, std::memory_order_relaxed);
    }
    return decision;
  }
  decision.downgrade = options_.downgrade_scheduling;
  return decision;
}

}  // namespace parj::server
