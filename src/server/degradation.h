#ifndef PARJ_SERVER_DEGRADATION_H_
#define PARJ_SERVER_DEGRADATION_H_

#include <atomic>

#include "server/metrics.h"

namespace parj::server {

struct DegradationOptions {
  bool enabled = false;
  /// Load fraction — (in_flight + queued) / (max_in_flight + max_queue) —
  /// at or above which the server enters degraded mode.
  double high_watermark = 0.75;
  /// Load fraction at or below which it exits (hysteresis gap so the mode
  /// does not flap around a single threshold).
  double low_watermark = 0.25;
  /// While degraded, queries with priority below this are shed outright.
  int min_priority = 1;
  /// While degraded, admitted queries are downgraded from morsel-driven to
  /// static scheduling — static sharding skips the shared work queues and
  /// steal traffic, trading tail balance for lower coordination cost,
  /// which is the right trade when every core is already saturated.
  bool downgrade_scheduling = true;
  /// Ingest pressure: a pending delta of this many triples counts as full
  /// load (0 = ignore writes). The fraction handed to Admit() becomes
  /// max(query load, delta_triples / max_delta_triples), so a write-heavy
  /// server starts shedding before merge cursors drown every probe —
  /// the operator's cue to compact.
  uint64_t max_delta_triples = 0;
};

/// Decision returned by Admit() for one query.
struct DegradationDecision {
  bool shed = false;       ///< reject with ResourceExhausted
  bool downgrade = false;  ///< force static scheduling
};

/// Load-shedding state machine. Admit() is called with the current load
/// fraction under the server's submission path; entry/exit uses the
/// watermark pair for hysteresis, entries are counted in the metrics
/// registry, and while degraded low-priority queries are shed first.
class DegradationPolicy {
 public:
  DegradationPolicy(DegradationOptions options, MetricsRegistry* metrics)
      : options_(options), metrics_(metrics) {}

  DegradationDecision Admit(int priority, double load_fraction);

  bool degraded() const {
    return degraded_.load(std::memory_order_relaxed);
  }

 private:
  const DegradationOptions options_;
  MetricsRegistry* const metrics_;
  std::atomic<bool> degraded_{false};
};

}  // namespace parj::server

#endif  // PARJ_SERVER_DEGRADATION_H_
