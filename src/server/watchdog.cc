#include "server/watchdog.h"

#include <vector>

namespace parj::server {

QueryWatchdog::~QueryWatchdog() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void QueryWatchdog::Track(uint64_t query_id, CancellationSource source) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  entries_.emplace(query_id,
                   Entry{std::move(source), std::chrono::steady_clock::now()});
  if (!started_) {
    started_ = true;
    thread_ = std::thread([this] { Loop(); });
  }
}

void QueryWatchdog::Untrack(uint64_t query_id) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  entries_.erase(query_id);
}

size_t QueryWatchdog::tracked() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void QueryWatchdog::Loop() {
  const auto poll = std::chrono::duration<double, std::milli>(
      options_.poll_interval_millis);
  const auto cap =
      std::chrono::duration<double, std::milli>(options_.max_query_millis);
  std::unique_lock<std::mutex> lock(mu_);
  while (!shutdown_) {
    cv_.wait_for(lock, poll);
    if (shutdown_) break;
    const auto now = std::chrono::steady_clock::now();
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (now - it->second.start >= cap) {
        // Cancellation is cooperative: flag the token and let the worker
        // unwind. The entry is dropped here so each overrun kills once.
        it->second.source.CancelWith(CancelReason::kWatchdog);
        if (metrics_ != nullptr) {
          metrics_->watchdog_kills.fetch_add(1, std::memory_order_relaxed);
        }
        it = entries_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

}  // namespace parj::server
