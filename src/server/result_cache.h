#ifndef PARJ_SERVER_RESULT_CACHE_H_
#define PARJ_SERVER_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace parj::server {

/// The cacheable part of one query's answer: the projected ID rows and
/// their variable names. Everything timing- or provenance-related is
/// recomputed per request.
struct CachedResult {
  uint64_t row_count = 0;
  size_t column_count = 0;
  std::vector<TermId> rows;
  std::vector<std::string> var_names;
  /// Aggregate answers (engine::QueryResult::agg_rows layout): row-major
  /// u64 cells typed per column by `column_kinds`. Non-empty column_kinds
  /// marks the entry as an aggregate answer, so a replay restores the
  /// exact result shape — a cached plain-BGP answer (empty column_kinds)
  /// can never masquerade as an aggregate one or vice versa.
  std::vector<uint64_t> agg_rows;
  std::vector<uint8_t> column_kinds;  ///< query::ColumnKind values
  /// The data_version the rows were computed at (MvccSnapshot::
  /// data_version — bumps per mutation batch, stable across compaction).
  uint64_t data_version = 0;

  size_t ByteSize() const {
    size_t bytes = sizeof(CachedResult) + rows.size() * sizeof(TermId) +
                   agg_rows.size() * sizeof(uint64_t) + column_kinds.size();
    for (const std::string& name : var_names) bytes += name.size();
    return bytes;
  }
};

struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t bytes = 0;    ///< current resident bytes
  uint64_t entries = 0;  ///< current entry count
};

/// Sharded LRU result cache keyed on (query text, request fingerprint)
/// and validated by data_version: a lookup at version V only returns an
/// entry computed at exactly V, so any published mutation batch — which
/// bumps the version — invalidates every prior entry implicitly, while a
/// compaction — which republishes the same triples at the same version —
/// legitimately keeps them (row-identical by MVCC construction).
///
/// The request fingerprint folds in the QueryOptions fields that change
/// the answer bytes (result mode, row cap); fields that only change the
/// execution schedule are deliberately excluded.
///
/// Each shard has its own mutex, LRU list and byte budget, so concurrent
/// submit threads rarely contend.
class ResultCache {
 public:
  static constexpr size_t kDefaultShards = 16;

  explicit ResultCache(size_t max_bytes, size_t shards = kDefaultShards);

  /// Returns the cached answer for (sparql, fingerprint) at exactly
  /// `data_version`, or nullptr. A version mismatch drops the stale entry.
  std::shared_ptr<const CachedResult> Lookup(std::string_view sparql,
                                             uint64_t fingerprint,
                                             uint64_t data_version);

  /// Inserts (keyed by result->data_version). Results larger than a
  /// shard's whole budget are not cached.
  void Insert(std::string_view sparql, uint64_t fingerprint,
              std::shared_ptr<const CachedResult> result);

  ResultCacheStats stats() const;
  void Clear();

  size_t max_bytes() const { return shard_budget_ * shards_.size(); }

 private:
  struct Entry {
    std::string key;
    size_t bytes = 0;
    std::shared_ptr<const CachedResult> result;
  };
  struct alignas(64) Shard {
    std::mutex mu;
    std::list<Entry> order;  ///< most-recently-used first
    std::unordered_map<std::string_view, std::list<Entry>::iterator> index;
    size_t bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardFor(std::string_view key);

  size_t shard_budget_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace parj::server

#endif  // PARJ_SERVER_RESULT_CACHE_H_
