#ifndef PARJ_SERVER_METRICS_H_
#define PARJ_SERVER_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace parj::server {

/// Lock-free fixed-bucket latency histogram. Bucket i covers
/// [2^(i-1), 2^i) microseconds (bucket 0 is [0, 1us)), so 32 buckets span
/// sub-microsecond to ~35 minutes — plenty for query latencies — with one
/// relaxed atomic increment per Record.
class LatencyHistogram {
 public:
  static constexpr size_t kBucketCount = 32;

  void Record(double millis);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum_millis() const {
    return static_cast<double>(sum_micros_.load(std::memory_order_relaxed)) /
           1e3;
  }
  double mean_millis() const {
    const uint64_t n = count();
    return n == 0 ? 0.0 : sum_millis() / static_cast<double>(n);
  }
  double max_millis() const {
    return static_cast<double>(max_micros_.load(std::memory_order_relaxed)) /
           1e3;
  }

  /// Upper bound (ms) of the bucket holding the p-quantile (0 < p <= 1);
  /// 0 when empty. Bucketed percentiles are exact to within a factor of 2,
  /// which is the standard tradeoff for lock-free serving metrics.
  double PercentileMillis(double p) const;

  /// Upper bound of bucket `i` in milliseconds.
  static double BucketUpperMillis(size_t bucket);

  void Reset();

 private:
  std::array<std::atomic<uint64_t>, kBucketCount> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_micros_{0};
  std::atomic<uint64_t> max_micros_{0};
};

/// All serving-layer counters and histograms. One instance per
/// QueryServer; everything is an atomic, so workers record without locks
/// and Dump() reads a consistent-enough snapshot for operators.
struct MetricsRegistry {
  std::atomic<uint64_t> queries_submitted{0};
  std::atomic<uint64_t> queries_admitted{0};
  std::atomic<uint64_t> admission_rejected{0};  ///< queue-full rejections
  std::atomic<uint64_t> queries_completed{0};
  std::atomic<uint64_t> queries_failed{0};      ///< non-cancel errors
  std::atomic<uint64_t> queries_cancelled{0};   ///< client-initiated
  std::atomic<uint64_t> deadlines_expired{0};
  std::atomic<uint64_t> rows_returned{0};
  /// Rows the cross-shard LIMIT gate rejected after saturation (see
  /// join::ExecResult::rows_skipped_by_limit); nonzero proves LIMIT-k
  /// early exit is actually cutting work.
  std::atomic<uint64_t> rows_skipped_by_limit{0};

  // Robustness counters (watchdog / retry / degradation / integrity).
  std::atomic<uint64_t> retries{0};              ///< re-submissions after transient failure
  std::atomic<uint64_t> watchdog_kills{0};       ///< queries killed past the wall-clock cap
  std::atomic<uint64_t> degraded_activations{0}; ///< entries into degraded mode
  std::atomic<uint64_t> degraded_rejected{0};    ///< queries shed while degraded
  std::atomic<uint64_t> worker_faults{0};        ///< exceptions contained at the worker boundary
  std::atomic<uint64_t> snapshot_crc_verified{0};///< mirrored from GlobalSnapshotStats

  // Bulk-load phase gauges (microseconds), set once by the serving CLI
  // after load from engine::LoadStats so operators can see where start-up
  // time went without rerunning the load.
  std::atomic<uint64_t> load_total_micros{0};
  std::atomic<uint64_t> load_parse_micros{0};
  std::atomic<uint64_t> load_encode_micros{0};
  std::atomic<uint64_t> load_build_micros{0};
  std::atomic<uint64_t> load_index_micros{0};
  std::atomic<uint64_t> load_calibrate_micros{0};
  std::atomic<uint64_t> load_threads_used{0};

  // Live-mutability gauges (DESIGN.md §12), refreshed from
  // mut::MutationStats by QueryServer on every submission and by the
  // serving CLI before each `.metrics` dump.
  std::atomic<uint64_t> delta_triples{0};     ///< pending inserts + deletes
  std::atomic<uint64_t> delta_bytes{0};       ///< delta tables + overlay heap
  std::atomic<uint64_t> compactions{0};       ///< completed compactions
  std::atomic<uint64_t> compaction_micros{0}; ///< cumulative compaction wall
  std::atomic<uint64_t> active_epochs{0};     ///< live pinned versions

  // Base-store size gauges (refreshed alongside the mutation gauges).
  // store_bytes counts live bytes (vector sizes / packed payloads);
  // store_allocated_bytes counts allocator capacity, so the difference is
  // exactly the reserve slack. With compression=blocked, store_bytes drops
  // to the packed size while store_raw_bytes keeps the flat-equivalent
  // denominator of the compression ratio.
  std::atomic<uint64_t> store_bytes{0};
  std::atomic<uint64_t> store_allocated_bytes{0};
  std::atomic<uint64_t> store_raw_bytes{0};

  // Crash-durability gauges (DESIGN.md §14), refreshed from mut::WalStats /
  // mut::RecoveryStats alongside the mutation gauges. All zero when the
  // engine serves without a WAL.
  std::atomic<uint64_t> wal_records{0};        ///< batch records appended
  std::atomic<uint64_t> wal_bytes{0};          ///< framed bytes written
  std::atomic<uint64_t> wal_fsyncs{0};         ///< segment fsyncs issued
  std::atomic<uint64_t> wal_group_commit_micros{0};  ///< cumulative fsync wait
  std::atomic<uint64_t> wal_group_commits{0};  ///< batched fsync rounds
  std::atomic<uint64_t> wal_backlog_bytes{0};  ///< queued, not yet written
  std::atomic<uint64_t> wal_segments{0};       ///< live segment files
  std::atomic<uint64_t> wal_checkpoints{0};    ///< completed checkpoints
  std::atomic<uint64_t> wal_backpressure_waits{0};  ///< appends that blocked
  std::atomic<uint64_t> recovery_replayed{0};  ///< records replayed at boot
  std::atomic<uint64_t> recovery_truncated_bytes{0};  ///< torn tail dropped
  std::atomic<uint64_t> recovery_millis{0};    ///< snapshot load + replay

  // Serving-cache counters (DESIGN.md §15). The plan/result cache rows
  // are gauges refreshed from the caches' own stats alongside the
  // mutation gauges; the shared-scan rows are incremented directly by
  // the serving path.
  std::atomic<uint64_t> plan_cache_hits{0};       ///< bound-text or shape hits
  std::atomic<uint64_t> plan_cache_misses{0};     ///< eligible lookups that optimized
  std::atomic<uint64_t> plan_cache_evictions{0};  ///< LRU evictions (gauge)
  std::atomic<uint64_t> result_cache_hits{0};     ///< answers served from cache
  std::atomic<uint64_t> result_cache_misses{0};   ///< lookups that executed
  std::atomic<uint64_t> result_cache_bytes{0};    ///< resident bytes (gauge)
  std::atomic<uint64_t> shared_scan_groups{0};    ///< shared passes executed
  std::atomic<uint64_t> shared_scan_queries_coalesced{0};  ///< queries served by another query's pass
  std::atomic<uint64_t> shared_scan_fallbacks{0};  ///< groups degraded to solo execution

  LatencyHistogram queue_wait;  ///< submit -> job start
  LatencyHistogram execution;   ///< engine Execute wall time
  LatencyHistogram total;       ///< submit -> result ready

  /// Human-readable text dump for the CLI / benches.
  std::string Dump() const;

  void Reset();
};

}  // namespace parj::server

#endif  // PARJ_SERVER_METRICS_H_
