#include "server/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace parj::server {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  num_threads_ = std::max(1, num_threads);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

bool ThreadPool::started() const {
  std::lock_guard<std::mutex> lock(mu_);
  return started_;
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  s.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  s.gangs_run = gangs_run_.load(std::memory_order_relaxed);
  s.overflow_threads = overflow_threads_.load(std::memory_order_relaxed);
  s.worker_gangs_run = worker_gangs_run_.load(std::memory_order_relaxed);
  return s;
}

ThreadPool& ThreadPool::Shared() {
  // Leaked on purpose: the shared pool must outlive any static object
  // whose destructor might still submit work.
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

void ThreadPool::EnsureStartedLocked() {
  if (started_) return;
  started_ = true;
  workers_.reserve(num_threads_);
  threads_.reserve(num_threads_);
  for (int i = 0; i < num_threads_; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (int i = 0; i < num_threads_; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
}

void ThreadPool::WorkerLoop(size_t index) {
  Worker& self = *workers_[index];
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    while (!self.has_direct && queue_.empty() && !stop_) {
      idle_.push_back(index);
      cv_.wait(lock);
      // A direct handoff removes us from idle_; remove ourselves after
      // any other wakeup.
      auto it = std::find(idle_.begin(), idle_.end(), index);
      if (it != idle_.end()) idle_.erase(it);
    }
    std::function<void()> task;
    if (self.has_direct) {
      task = std::move(self.direct);
      self.has_direct = false;
    } else if (!queue_.empty()) {
      // Drain the queue even when stopping: accepted tasks (e.g. promises
      // the scheduler must fulfil) always run.
      task = std::move(queue_.front());
      queue_.pop_front();
    } else {
      return;  // stop_ and nothing left to do
    }
    lock.unlock();
    task();
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    task = nullptr;  // release captured state outside the lock
    lock.lock();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    EnsureStartedLocked();
    queue_.push_back(std::move(task));
  }
  cv_.notify_all();
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (n == 1) {
    body(0);
    return;
  }
  struct SharedState {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    size_t total = 0;
    const std::function<void(size_t)>* body = nullptr;
    std::mutex mu;
    std::condition_variable cv;
  };
  auto state = std::make_shared<SharedState>();
  state->total = n;
  state->body = &body;  // valid: the caller blocks until done == total

  auto drain = [state] {
    for (;;) {
      const size_t i = state->next.fetch_add(1);
      if (i >= state->total) break;
      (*state->body)(i);
      if (state->done.fetch_add(1) + 1 == state->total) {
        std::lock_guard<std::mutex> lk(state->mu);
        state->cv.notify_all();
      }
    }
  };

  // One helper per pool thread at most; late-running helpers find the
  // counter exhausted and return immediately.
  const size_t helpers =
      std::min(n - 1, static_cast<size_t>(thread_count()));
  for (size_t h = 0; h < helpers; ++h) Submit(drain);
  drain();  // caller participation makes this deadlock-free
  std::unique_lock<std::mutex> lk(state->mu);
  state->cv.wait(lk, [&] { return state->done.load() == state->total; });
}

void ThreadPool::RunWorkers(int n, const std::function<void(int)>& member) {
  if (n <= 0) return;
  if (n == 1) {
    member(0);
    return;
  }
  worker_gangs_run_.fetch_add(1, std::memory_order_relaxed);
  struct WorkerGangState {
    std::unique_ptr<std::atomic<bool>[]> claimed;
    std::atomic<int> done{0};
    int total = 0;
    const std::function<void(int)>* member = nullptr;
    std::mutex mu;
    std::condition_variable cv;
  };
  auto state = std::make_shared<WorkerGangState>();
  state->claimed.reset(new std::atomic<bool>[n]);
  for (int m = 0; m < n; ++m) {
    state->claimed[m].store(false, std::memory_order_relaxed);
  }
  state->total = n;
  state->member = &member;  // valid: the caller blocks until done == total

  // Run `m` if nobody claimed it yet. Pool tasks that lose the claim race
  // (to the participating caller) return immediately; they may run after
  // the caller has moved on, but then every member is claimed and only
  // the shared_ptr-owned flags are touched.
  auto run_member = [state](int m) {
    if (state->claimed[m].exchange(true, std::memory_order_acq_rel)) return;
    (*state->member)(m);
    if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        state->total) {
      std::lock_guard<std::mutex> lk(state->mu);
      state->cv.notify_all();
    }
  };

  {
    std::unique_lock<std::mutex> lock(mu_);
    EnsureStartedLocked();
    for (int m = 1; m < n; ++m) {
      auto task = [run_member, m] { run_member(m); };
      if (!idle_.empty()) {
        // Direct handoff to a provably parked worker: the member starts
        // without queue latency.
        const size_t w = idle_.back();
        idle_.pop_back();
        workers_[w]->direct = std::move(task);
        workers_[w]->has_direct = true;
      } else {
        queue_.push_back(std::move(task));
      }
    }
  }
  cv_.notify_all();
  // Caller participation: run member 0, then claim everything the pool
  // has not started yet. This keeps the gang deadlock-free (a saturated
  // or nested pool degrades to the caller running all members) without
  // spawning overflow threads — dispenser workers need no concurrency.
  for (int m = 0; m < n; ++m) run_member(m);
  std::unique_lock<std::mutex> lk(state->mu);
  state->cv.wait(lk, [&] { return state->done.load() == state->total; });
}

void ThreadPool::RunGang(int n, const std::function<void(int)>& member) {
  if (n <= 0) return;
  if (n == 1) {
    member(0);
    return;
  }
  gangs_run_.fetch_add(1, std::memory_order_relaxed);
  struct GangState {
    std::atomic<int> done{0};
    int total = 0;
    std::mutex mu;
    std::condition_variable cv;
  };
  auto state = std::make_shared<GangState>();
  state->total = n - 1;  // the caller runs member 0 un-tracked

  std::vector<std::function<void()>> overflow_tasks;
  {
    std::unique_lock<std::mutex> lock(mu_);
    EnsureStartedLocked();
    for (int m = 1; m < n; ++m) {
      auto task = [state, &member, m] {  // &member safe: caller waits below
        member(m);
        if (state->done.fetch_add(1) + 1 == state->total) {
          std::lock_guard<std::mutex> lk(state->mu);
          state->cv.notify_all();
        }
      };
      if (!idle_.empty()) {
        // Direct handoff: this worker is provably parked, so the member
        // starts immediately — safe for barrier groups.
        const size_t w = idle_.back();
        idle_.pop_back();
        workers_[w]->direct = std::move(task);
        workers_[w]->has_direct = true;
      } else {
        overflow_tasks.push_back(std::move(task));
      }
    }
  }
  cv_.notify_all();
  std::vector<std::thread> overflow;
  overflow.reserve(overflow_tasks.size());
  for (auto& task : overflow_tasks) {
    overflow_threads_.fetch_add(1, std::memory_order_relaxed);
    overflow.emplace_back(std::move(task));
  }
  member(0);
  {
    std::unique_lock<std::mutex> lk(state->mu);
    state->cv.wait(lk, [&] { return state->done.load() == state->total; });
  }
  for (std::thread& t : overflow) t.join();
}

}  // namespace parj::server
