#ifndef PARJ_SERVER_CANCELLATION_H_
#define PARJ_SERVER_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "common/status.h"

namespace parj::server {

/// Why a query was asked to stop.
enum class CancelReason : int {
  kNone = 0,
  kCancelled = 1,         ///< client-initiated Cancel()
  kDeadlineExceeded = 2,  ///< deadline/timeout elapsed
  kWatchdog = 3,          ///< killed by the server's QueryWatchdog
};

namespace internal {
struct CancelState {
  std::atomic<int> reason{0};  // CancelReason, sticky once non-zero
  /// Absolute deadline as steady-clock nanoseconds since epoch;
  /// INT64_MAX = no deadline.
  std::atomic<int64_t> deadline_ns{INT64_MAX};
};
}  // namespace internal

/// Cheap copyable view of a cancellation request, checked cooperatively by
/// the executor's shard loops. A default-constructed token never fires, so
/// plumbed-through code paths pay one pointer test when serving is not in
/// use.
class CancellationToken {
 public:
  CancellationToken() = default;

  bool valid() const { return state_ != nullptr; }

  /// Flag-only check — no clock read; safe at per-tuple frequency.
  bool CancelRequested() const {
    return state_ != nullptr &&
           state_->reason.load(std::memory_order_relaxed) != 0;
  }

  /// Flag check plus deadline check (one steady_clock read when a
  /// deadline is set). Latches kDeadlineExceeded on expiry.
  bool StopRequested() const {
    if (state_ == nullptr) return false;
    if (state_->reason.load(std::memory_order_relaxed) != 0) return true;
    const int64_t deadline = state_->deadline_ns.load(std::memory_order_relaxed);
    if (deadline == INT64_MAX) return false;
    const int64_t now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now().time_since_epoch())
                            .count();
    if (now < deadline) return false;
    int expected = 0;
    state_->reason.compare_exchange_strong(
        expected, static_cast<int>(CancelReason::kDeadlineExceeded),
        std::memory_order_relaxed);
    return true;
  }

  CancelReason reason() const {
    if (state_ == nullptr) return CancelReason::kNone;
    return static_cast<CancelReason>(
        state_->reason.load(std::memory_order_relaxed));
  }

  /// The Status a stopped query reports. Only meaningful after
  /// StopRequested() returned true.
  Status ToStatus() const;

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<internal::CancelState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<internal::CancelState> state_;
};

/// Owning side of a cancellation channel: the server (or a client holding
/// the submission handle) cancels; every token cut from this source
/// observes it.
class CancellationSource {
 public:
  CancellationSource() : state_(std::make_shared<internal::CancelState>()) {}

  /// Sets an absolute steady-clock deadline.
  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    state_->deadline_ns.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            deadline.time_since_epoch())
            .count(),
        std::memory_order_relaxed);
  }

  /// Sets a deadline `millis` from now.
  void set_timeout_millis(double millis);

  /// Requests client-initiated cancellation (idempotent; never overrides
  /// an already-latched deadline expiry).
  void Cancel() { CancelWith(CancelReason::kCancelled); }

  /// Cancels with an explicit reason (idempotent; first reason wins).
  /// Used by the watchdog so the resulting Status names the killer.
  void CancelWith(CancelReason reason) {
    int expected = 0;
    state_->reason.compare_exchange_strong(expected,
                                           static_cast<int>(reason),
                                           std::memory_order_relaxed);
  }

  CancellationToken token() const { return CancellationToken(state_); }

 private:
  std::shared_ptr<internal::CancelState> state_;
};

}  // namespace parj::server

#endif  // PARJ_SERVER_CANCELLATION_H_
