#include "join/aggregate.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>

#include "common/failpoint.h"
#include "server/thread_pool.h"

namespace parj::join {

namespace {

/// splitmix64 finalizer — the shared table's slot hash and the radix
/// partition selector both need well-mixed high AND low bits.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Hash of a group-key tuple. Never 0 (0 marks an empty directory entry);
/// n == 0 (global aggregate) hashes to a constant, yielding one group.
inline uint64_t HashKey(const TermId* key, int n) {
  uint64_t h = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < n; ++i) h = Mix64(h ^ key[i]);
  return h == 0 ? 1 : h;
}

inline double CellToDouble(uint64_t c) { return std::bit_cast<double>(c); }
inline uint64_t DoubleToCell(double d) { return std::bit_cast<uint64_t>(d); }

/// MIN/MAX cell with no numeric input yet. NaN so the first real value
/// always replaces it; decodes to an unbound result cell.
const uint64_t kEmptyCell =
    std::bit_cast<uint64_t>(std::numeric_limits<double>::quiet_NaN());

/// Lock-free NaN-aware min/max: CAS only when `v` improves on the cell.
void AtomicMinMaxCell(std::atomic<uint64_t>& cell, double v, bool is_min) {
  uint64_t old = cell.load(std::memory_order_relaxed);
  const uint64_t nv = DoubleToCell(v);
  while (true) {
    const double d = CellToDouble(old);
    if (!std::isnan(d) && (is_min ? d <= v : d >= v)) return;
    if (cell.compare_exchange_weak(old, nv, std::memory_order_relaxed)) return;
  }
}

/// Unsorted gathered groups, the common input of the canonicalize step.
struct Gathered {
  std::vector<TermId> keys;     ///< rows * group_cols
  std::vector<uint64_t> cells;  ///< rows * naggs
  size_t rows = 0;
};

void AppendTable(const GroupTable& t, int group_cols, int naggs,
                 Gathered* g) {
  for (size_t r = 0; r < t.size(); ++r) {
    const TermId* key = t.KeyAt(r);
    g->keys.insert(g->keys.end(), key, key + group_cols);
    const uint64_t* cells = t.CellsAt(r);
    g->cells.insert(g->cells.end(), cells, cells + naggs);
    ++g->rows;
  }
}

/// Sorts groups by key TermId tuple ascending (keys are unique, so this
/// is a total order independent of which worker produced which group) and
/// lays out the canonical output rows: keys widened to u64, then cells.
AggregateOutput Canonicalize(const Gathered& g, int group_cols, int naggs) {
  std::vector<uint32_t> order(g.rows);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    const TermId* ka = g.keys.data() + static_cast<size_t>(a) * group_cols;
    const TermId* kb = g.keys.data() + static_cast<size_t>(b) * group_cols;
    return std::lexicographical_compare(ka, ka + group_cols, kb,
                                        kb + group_cols);
  });
  AggregateOutput out;
  out.rows = g.rows;
  out.width = static_cast<size_t>(group_cols) + naggs;
  out.cells.reserve(out.rows * out.width);
  for (uint32_t r : order) {
    const TermId* key = g.keys.data() + static_cast<size_t>(r) * group_cols;
    for (int i = 0; i < group_cols; ++i) out.cells.push_back(key[i]);
    const uint64_t* cells = g.cells.data() + static_cast<size_t>(r) * naggs;
    out.cells.insert(out.cells.end(), cells, cells + naggs);
  }
  return out;
}

}  // namespace

const char* AggStrategyName(AggStrategy s) {
  switch (s) {
    case AggStrategy::kLocalHash:
      return "local";
    case AggStrategy::kRadix:
      return "radix";
    case AggStrategy::kShared:
      return "shared";
    case AggStrategy::kAdaptive:
      return "adaptive";
  }
  return "unknown";
}

bool ParseAggStrategy(const char* name, AggStrategy* out) {
  if (std::strcmp(name, "local") == 0) {
    *out = AggStrategy::kLocalHash;
  } else if (std::strcmp(name, "radix") == 0) {
    *out = AggStrategy::kRadix;
  } else if (std::strcmp(name, "shared") == 0) {
    *out = AggStrategy::kShared;
  } else if (std::strcmp(name, "adaptive") == 0) {
    *out = AggStrategy::kAdaptive;
  } else {
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// GroupTable

GroupTable::GroupTable(int group_cols, std::span<const uint64_t> init_cells)
    : group_cols_(group_cols),
      naggs_(static_cast<int>(init_cells.size())),
      init_cells_(init_cells.begin(), init_cells.end()) {}

size_t GroupTable::FindOrInsert(const TermId* key) {
  if (hash_.empty()) {
    hash_.assign(16, 0);
    row_.assign(16, 0);
    mask_ = 15;
  }
  const uint64_t h = HashKey(key, group_cols_);
  size_t idx = h & mask_;
  while (hash_[idx] != 0) {
    if (hash_[idx] == h &&
        std::equal(key, key + group_cols_,
                   keys_.data() + static_cast<size_t>(row_[idx] - 1) *
                                      group_cols_)) {
      return row_[idx] - 1;
    }
    idx = (idx + 1) & mask_;
  }
  const size_t row = count_++;
  keys_.insert(keys_.end(), key, key + group_cols_);
  cells_.insert(cells_.end(), init_cells_.begin(), init_cells_.end());
  hash_[idx] = h;
  row_[idx] = static_cast<uint32_t>(row + 1);
  if (count_ * 4 >= (mask_ + 1) * 3) Grow();
  return row;
}

void GroupTable::Grow() {
  const size_t new_cap = (mask_ + 1) * 2;
  std::vector<uint64_t> old_hash = std::move(hash_);
  std::vector<uint32_t> old_row = std::move(row_);
  hash_.assign(new_cap, 0);
  row_.assign(new_cap, 0);
  mask_ = new_cap - 1;
  for (size_t i = 0; i < old_hash.size(); ++i) {
    if (old_hash[i] == 0) continue;
    size_t idx = old_hash[i] & mask_;
    while (hash_[idx] != 0) idx = (idx + 1) & mask_;
    hash_[idx] = old_hash[i];
    row_[idx] = old_row[i];
  }
}

// ---------------------------------------------------------------------------
// Aggregator

Aggregator::Aggregator(const query::AggregateSpec* spec,
                       const std::vector<double>* numeric_values,
                       AggStrategy strategy, size_t num_workers)
    : spec_(spec),
      numeric_values_(numeric_values),
      strategy_(strategy),
      group_cols_(spec->group_cols),
      naggs_(static_cast<int>(spec->aggs.size())) {
  init_cells_.reserve(naggs_);
  for (const query::EncodedAggregate& a : spec_->aggs) {
    switch (a.func) {
      case query::AggFunc::kCount:
      case query::AggFunc::kCountStar:
        init_cells_.push_back(0);
        break;
      case query::AggFunc::kSum:
        init_cells_.push_back(DoubleToCell(0.0));
        break;
      case query::AggFunc::kMin:
      case query::AggFunc::kMax:
        init_cells_.push_back(kEmptyCell);
        break;
    }
  }
  if (num_workers == 0) num_workers = 1;
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    auto w = std::make_unique<WorkerState>();
    w->local = GroupTable(group_cols_, init_cells_);
    if (strategy_ == AggStrategy::kRadix) ConvertToRadix(w.get());
    workers_.push_back(std::move(w));
  }
  // The lock-free table needs the group key in one CAS-able word: exactly
  // one group column. Other shapes under kShared (multi-column keys,
  // global aggregates) take the thread-local path — correct, just not
  // contention-free.
  shared_enabled_ =
      strategy_ == AggStrategy::kShared && group_cols_ == 1;
  if (shared_enabled_) {
    shared_capacity_ = size_t{1} << 16;
    shared_mask_ = shared_capacity_ - 1;
    shared_stride_ = 1 + static_cast<size_t>(naggs_);
    shared_max_used_ = shared_capacity_ - shared_capacity_ / 4;
    shared_slots_ =
        std::vector<std::atomic<uint64_t>>(shared_capacity_ * shared_stride_);
    // Key words are zero (empty) from value-init; pre-fill the agg cells
    // whose initial value is non-zero (MIN/MAX NaN sentinels) so a slot
    // is update-ready the moment its key CAS publishes.
    for (int i = 0; i < naggs_; ++i) {
      if (init_cells_[i] == 0) continue;
      for (size_t s = 0; s < shared_capacity_; ++s) {
        shared_slots_[s * shared_stride_ + 1 + i].store(
            init_cells_[i], std::memory_order_relaxed);
      }
    }
  }
}

size_t Aggregator::PartitionOf(const TermId* key) const {
  // Top bits: GroupTable directories probe with the LOW hash bits, so a
  // partition carved from low bits would make every key in a partition
  // collide in its table.
  static_assert((kAggRadixPartitions & (kAggRadixPartitions - 1)) == 0);
  constexpr int kBits = std::bit_width(kAggRadixPartitions) - 1;
  return HashKey(key, group_cols_) >> (64 - kBits);
}

void Aggregator::UpdateCells(uint64_t* cells,
                             std::span<const TermId> row) const {
  for (int i = 0; i < naggs_; ++i) {
    const query::EncodedAggregate& a = spec_->aggs[i];
    if (a.func == query::AggFunc::kCount ||
        a.func == query::AggFunc::kCountStar) {
      ++cells[i];
      continue;
    }
    const TermId id = row[a.input_col];
    const double v = (numeric_values_ != nullptr &&
                      id < numeric_values_->size())
                         ? (*numeric_values_)[id]
                         : std::numeric_limits<double>::quiet_NaN();
    if (std::isnan(v)) continue;  // non-numeric terms don't contribute
    const double d = CellToDouble(cells[i]);
    switch (a.func) {
      case query::AggFunc::kSum:
        cells[i] = DoubleToCell(d + v);
        break;
      case query::AggFunc::kMin:
        if (std::isnan(d) || v < d) cells[i] = DoubleToCell(v);
        break;
      case query::AggFunc::kMax:
        if (std::isnan(d) || v > d) cells[i] = DoubleToCell(v);
        break;
      default:
        break;
    }
  }
}

void Aggregator::Accumulate(size_t worker, std::span<const TermId> row) {
  WorkerState& w = *workers_[worker];
  if (shared_enabled_) {
    AccumulateShared(w, row);
    return;
  }
  const TermId* key = row.data();
  if (!w.radix) {
    const size_t r = w.local.FindOrInsert(key);
    UpdateCells(w.local.CellsAt(r), row);
    if (strategy_ == AggStrategy::kAdaptive &&
        w.local.size() >= kAggAdaptiveThreshold) {
      ConvertToRadix(&w);
    }
  } else {
    GroupTable& t = w.parts[PartitionOf(key)];
    UpdateCells(t.CellsAt(t.FindOrInsert(key)), row);
  }
}

void Aggregator::AccumulateShared(WorkerState& w,
                                  std::span<const TermId> row) {
  const uint64_t key = row[0];
  size_t idx = Mix64(key) & shared_mask_;
  bool found = false;
  for (size_t probes = 0; probes < shared_capacity_; ++probes) {
    std::atomic<uint64_t>& kslot = shared_slots_[idx * shared_stride_];
    const uint64_t cur = kslot.load(std::memory_order_acquire);
    if (cur == key) {
      found = true;
      break;
    }
    if (cur == 0) {
      // Stop claiming past the load-factor cap: long probe chains under
      // contention cost more than the private-table spill below.
      if (shared_used_.load(std::memory_order_relaxed) >= shared_max_used_) {
        break;
      }
      uint64_t expected = 0;
      if (kslot.compare_exchange_strong(expected, key,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        shared_used_.fetch_add(1, std::memory_order_relaxed);
        found = true;
        break;
      }
      if (expected == key) {
        found = true;
        break;
      }
      // Lost the claim to a different key; probe onward.
    }
    idx = (idx + 1) & shared_mask_;
  }
  if (!found) {
    // Saturated table: overflow keys live in this worker's private table
    // and meet the shared table again in Finish.
    const size_t r = w.local.FindOrInsert(row.data());
    UpdateCells(w.local.CellsAt(r), row);
    return;
  }
  for (int i = 0; i < naggs_; ++i) {
    std::atomic<uint64_t>& cell = shared_slots_[idx * shared_stride_ + 1 + i];
    const query::EncodedAggregate& a = spec_->aggs[i];
    if (a.func == query::AggFunc::kCount ||
        a.func == query::AggFunc::kCountStar) {
      cell.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const TermId id = row[a.input_col];
    const double v = (numeric_values_ != nullptr &&
                      id < numeric_values_->size())
                         ? (*numeric_values_)[id]
                         : std::numeric_limits<double>::quiet_NaN();
    if (std::isnan(v)) continue;
    if (a.func == query::AggFunc::kSum) {
      uint64_t old = cell.load(std::memory_order_relaxed);
      while (!cell.compare_exchange_weak(
          old, DoubleToCell(CellToDouble(old) + v),
          std::memory_order_relaxed)) {
      }
    } else {
      AtomicMinMaxCell(cell, v, a.func == query::AggFunc::kMin);
    }
  }
}

void Aggregator::ConvertToRadix(WorkerState* w) const {
  w->parts.clear();
  w->parts.reserve(kAggRadixPartitions);
  for (size_t p = 0; p < kAggRadixPartitions; ++p) {
    w->parts.emplace_back(group_cols_, std::span<const uint64_t>(init_cells_));
  }
  for (size_t r = 0; r < w->local.size(); ++r) {
    const TermId* key = w->local.KeyAt(r);
    MergeRow(&w->parts[PartitionOf(key)], key, w->local.CellsAt(r));
  }
  w->local = GroupTable(group_cols_, init_cells_);
  w->radix = true;
}

void Aggregator::MergeRow(GroupTable* dst, const TermId* key,
                          const uint64_t* cells) const {
  uint64_t* d = dst->CellsAt(dst->FindOrInsert(key));
  for (int i = 0; i < naggs_; ++i) {
    switch (spec_->aggs[i].func) {
      case query::AggFunc::kCount:
      case query::AggFunc::kCountStar:
        d[i] += cells[i];
        break;
      case query::AggFunc::kSum:
        d[i] = DoubleToCell(CellToDouble(d[i]) + CellToDouble(cells[i]));
        break;
      case query::AggFunc::kMin: {
        const double a = CellToDouble(d[i]);
        const double b = CellToDouble(cells[i]);
        if (std::isnan(a) || (!std::isnan(b) && b < a)) d[i] = cells[i];
        break;
      }
      case query::AggFunc::kMax: {
        const double a = CellToDouble(d[i]);
        const double b = CellToDouble(cells[i]);
        if (std::isnan(a) || (!std::isnan(b) && b > a)) d[i] = cells[i];
        break;
      }
    }
  }
}

void Aggregator::MergeTableInto(const GroupTable& src,
                                GroupTable* dst) const {
  for (size_t r = 0; r < src.size(); ++r) {
    MergeRow(dst, src.KeyAt(r), src.CellsAt(r));
  }
}

bool Aggregator::adapted() const {
  if (strategy_ != AggStrategy::kAdaptive) return false;
  for (const auto& w : workers_) {
    if (w->radix) return true;
  }
  return false;
}

Result<AggregateOutput> Aggregator::Finish(server::ThreadPool* pool) {
  PARJ_RETURN_NOT_OK(failpoint::Check("agg.merge"));

  Gathered gathered;
  bool any_radix = false;
  for (const auto& w : workers_) any_radix |= w->radix;

  if (shared_enabled_) {
    // Scan the lock-free table into a central table, then fold in any
    // per-worker overflow tables (the same key may appear in both).
    GroupTable central(group_cols_, init_cells_);
    std::vector<uint64_t> tmp(naggs_);
    for (size_t s = 0; s < shared_capacity_; ++s) {
      const uint64_t key64 =
          shared_slots_[s * shared_stride_].load(std::memory_order_acquire);
      if (key64 == 0) continue;
      for (int i = 0; i < naggs_; ++i) {
        tmp[i] = shared_slots_[s * shared_stride_ + 1 + i].load(
            std::memory_order_relaxed);
      }
      const TermId key = static_cast<TermId>(key64);
      MergeRow(&central, &key, tmp.data());
    }
    for (const auto& w : workers_) MergeTableInto(w->local, &central);
    AppendTable(central, group_cols_, naggs_, &gathered);
  } else if (any_radix) {
    // Bring adaptive stragglers (still thread-local, so < threshold
    // groups) into partitioned form, then merge each partition across
    // workers in parallel — partitions are disjoint, so no contention.
    for (const auto& w : workers_) {
      if (!w->radix) ConvertToRadix(w.get());
    }
    server::ThreadPool& tp = pool != nullptr ? *pool : server::ThreadPool::Shared();
    std::vector<GroupTable> centrals(kAggRadixPartitions);
    tp.ParallelFor(kAggRadixPartitions, [&](size_t p) {
      GroupTable central(group_cols_, init_cells_);
      for (const auto& w : workers_) MergeTableInto(w->parts[p], &central);
      centrals[p] = std::move(central);
    });
    for (const GroupTable& c : centrals) {
      AppendTable(c, group_cols_, naggs_, &gathered);
    }
  } else {
    GroupTable central(group_cols_, init_cells_);
    for (const auto& w : workers_) MergeTableInto(w->local, &central);
    AppendTable(central, group_cols_, naggs_, &gathered);
  }

  // A global aggregate (no GROUP BY) yields exactly one row even over an
  // empty input: COUNT = 0, SUM = 0, MIN/MAX unbound.
  if (group_cols_ == 0 && gathered.rows == 0) {
    gathered.cells = init_cells_;
    gathered.rows = 1;
  }

  return Canonicalize(gathered, group_cols_, naggs_);
}

// ---------------------------------------------------------------------------
// TopK

TopK::TopK(size_t width, size_t limit, std::span<const query::OrderKey> keys,
           size_t num_workers)
    : width_(width), limit_(limit), keys_(keys.begin(), keys.end()) {
  if (num_workers == 0) num_workers = 1;
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.push_back(std::make_unique<WorkerHeap>());
  }
}

bool TopK::RowLess(const TermId* a, const TermId* b) const {
  for (const query::OrderKey& k : keys_) {
    const TermId av = a[k.column];
    const TermId bv = b[k.column];
    if (av != bv) return k.descending ? bv < av : av < bv;
  }
  for (size_t c = 0; c < width_; ++c) {
    if (a[c] != b[c]) return a[c] < b[c];
  }
  return false;
}

void TopK::Add(size_t worker, std::span<const TermId> row) {
  if (limit_ == 0) return;
  WorkerHeap& w = *workers_[worker];
  const auto cmp = [this, &w](uint32_t x, uint32_t y) {
    // Max-heap by RowLess: the root is the worst kept row.
    return RowLess(w.rows.data() + static_cast<size_t>(x) * width_,
                   w.rows.data() + static_cast<size_t>(y) * width_);
  };
  if (w.heap.size() < limit_) {
    const uint32_t idx = static_cast<uint32_t>(w.heap.size());
    w.rows.insert(w.rows.end(), row.begin(), row.end());
    w.heap.push_back(idx);
    std::push_heap(w.heap.begin(), w.heap.end(), cmp);
    return;
  }
  const TermId* worst =
      w.rows.data() + static_cast<size_t>(w.heap.front()) * width_;
  if (!RowLess(row.data(), worst)) return;
  std::pop_heap(w.heap.begin(), w.heap.end(), cmp);
  const uint32_t slot = w.heap.back();
  std::copy(row.begin(), row.end(),
            w.rows.data() + static_cast<size_t>(slot) * width_);
  std::push_heap(w.heap.begin(), w.heap.end(), cmp);
}

std::vector<TermId> TopK::Finish() const {
  std::vector<const TermId*> all;
  for (const auto& w : workers_) {
    for (uint32_t idx : w->heap) {
      all.push_back(w->rows.data() + static_cast<size_t>(idx) * width_);
    }
  }
  std::sort(all.begin(), all.end(),
            [this](const TermId* a, const TermId* b) { return RowLess(a, b); });
  if (all.size() > limit_) all.resize(limit_);
  std::vector<TermId> out;
  out.reserve(all.size() * width_);
  for (const TermId* r : all) out.insert(out.end(), r, r + width_);
  return out;
}

int CompareAggCell(uint64_t a, uint64_t b, query::ColumnKind kind) {
  switch (kind) {
    case query::ColumnKind::kTerm:
    case query::ColumnKind::kCount:
      return a < b ? -1 : (a > b ? 1 : 0);
    case query::ColumnKind::kNumber: {
      const double da = CellToDouble(a);
      const double db = CellToDouble(b);
      const bool na = std::isnan(da);
      const bool nb = std::isnan(db);
      if (na || nb) return na == nb ? 0 : (na ? 1 : -1);
      return da < db ? -1 : (da > db ? 1 : 0);
    }
  }
  return 0;
}

}  // namespace parj::join
