#include "join/search.h"

#include <algorithm>

namespace parj::join {

const char* SearchStrategyName(SearchStrategy strategy) {
  switch (strategy) {
    case SearchStrategy::kBinary:
      return "Binary";
    case SearchStrategy::kAdaptiveBinary:
      return "AdBinary";
    case SearchStrategy::kIndex:
      return "Index";
    case SearchStrategy::kAdaptiveIndex:
      return "AdIndex";
  }
  return "?";
}

size_t BinarySearch(std::span<const TermId> array, TermId value,
                    size_t* cursor) {
  DirectMemory mem;
  return BinarySearchWith(array, value, cursor, mem);
}

size_t SequentialSearch(std::span<const TermId> array, TermId value,
                        size_t* cursor, uint64_t* steps_out) {
  DirectMemory mem;
  return SequentialSearchWith(array, value, cursor, mem, steps_out);
}

size_t AdaptiveSearch(std::span<const TermId> array, TermId value,
                      size_t* cursor, int64_t threshold,
                      SearchStrategy strategy,
                      const index::IdPositionIndex* index,
                      SearchCounters* counters) {
  DirectMemory mem;
  return AdaptiveSearchWith(array, value, cursor, threshold, strategy, index,
                            counters, mem);
}

bool RunContains(std::span<const TermId> run, TermId value) {
  return std::binary_search(run.begin(), run.end(), value);
}

}  // namespace parj::join
