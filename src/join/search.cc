#include "join/search.h"

#include <algorithm>

namespace parj::join {

const char* SearchStrategyName(SearchStrategy strategy) {
  switch (strategy) {
    case SearchStrategy::kBinary:
      return "Binary";
    case SearchStrategy::kAdaptiveBinary:
      return "AdBinary";
    case SearchStrategy::kIndex:
      return "Index";
    case SearchStrategy::kAdaptiveIndex:
      return "AdIndex";
  }
  return "?";
}

size_t BinarySearch(std::span<const TermId> array, TermId value,
                    size_t* cursor, size_t gallop_cap) {
  DirectMemory mem;
  return BinarySearchWith(array, value, cursor, mem, gallop_cap);
}

size_t BranchyBinarySearch(std::span<const TermId> array, TermId value,
                           size_t* cursor) {
  DirectMemory mem;
  return BranchyBinarySearchWith(array, value, cursor, mem);
}

size_t SequentialSearch(std::span<const TermId> array, TermId value,
                        size_t* cursor, uint64_t* steps_out) {
  DirectMemory mem;
  return SequentialSearchWith(array, value, cursor, mem, steps_out);
}

size_t SequentialSearchScalar(std::span<const TermId> array, TermId value,
                              size_t* cursor, uint64_t* steps_out) {
  DirectMemory mem;
  // Explicit template arguments force the generic (scalar) body instead of
  // the DirectMemory fast-path overload.
  return SequentialSearchWith<DirectMemory>(array, value, cursor, mem,
                                            steps_out);
}

namespace detail {

size_t SequentialVecForward(const TermId* data, size_t n, size_t start,
                            TermId value, size_t* cursor,
                            uint64_t* steps_out) {
  const size_t stop = simd::detail::ScanForwardStopBulk(
      data, start + kScanPrologue + 1, n, value);
  if (steps_out != nullptr) *steps_out += stop - start;
  *cursor = stop;
  return data[stop] == value ? stop : kNotFound;
}

size_t SequentialVecBackward(const TermId* data, size_t start, TermId value,
                             size_t* cursor, uint64_t* steps_out) {
  const size_t stop =
      simd::detail::ScanBackwardStopBulk(data, start - kScanPrologue, value);
  if (steps_out != nullptr) *steps_out += start - stop;
  *cursor = stop;
  return data[stop] == value ? stop : kNotFound;
}

}  // namespace detail

size_t AdaptiveSearch(std::span<const TermId> array, TermId value,
                      size_t* cursor, int64_t threshold,
                      SearchStrategy strategy,
                      const index::IdPositionIndex* index,
                      SearchCounters* counters, size_t gallop_cap) {
  DirectMemory mem;
  return AdaptiveSearchWith(array, value, cursor, threshold, strategy, index,
                            counters, mem, gallop_cap);
}

bool RunContains(std::span<const TermId> run, TermId value) {
  // Value runs are usually a handful of elements; a vectorized equality
  // sweep beats a branchy binary search up to several cache lines. Both
  // arms return the same boolean on the sorted input.
  constexpr size_t kLinearLimit = 64;
  if (run.size() <= kLinearLimit) {
    return simd::ContainsU32(run.data(), run.size(), value);
  }
  return std::binary_search(run.begin(), run.end(), value);
}

}  // namespace parj::join
