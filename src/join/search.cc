#include "join/search.h"

#include <algorithm>

#include "storage/compressed.h"

namespace parj::join {

const char* SearchStrategyName(SearchStrategy strategy) {
  switch (strategy) {
    case SearchStrategy::kBinary:
      return "Binary";
    case SearchStrategy::kAdaptiveBinary:
      return "AdBinary";
    case SearchStrategy::kIndex:
      return "Index";
    case SearchStrategy::kAdaptiveIndex:
      return "AdIndex";
  }
  return "?";
}

size_t BinarySearch(std::span<const TermId> array, TermId value,
                    size_t* cursor, size_t gallop_cap) {
  DirectMemory mem;
  return BinarySearchWith(array, value, cursor, mem, gallop_cap);
}

size_t BranchyBinarySearch(std::span<const TermId> array, TermId value,
                           size_t* cursor) {
  DirectMemory mem;
  return BranchyBinarySearchWith(array, value, cursor, mem);
}

size_t SequentialSearch(std::span<const TermId> array, TermId value,
                        size_t* cursor, uint64_t* steps_out) {
  DirectMemory mem;
  return SequentialSearchWith(array, value, cursor, mem, steps_out);
}

size_t SequentialSearchScalar(std::span<const TermId> array, TermId value,
                              size_t* cursor, uint64_t* steps_out) {
  DirectMemory mem;
  // Explicit template arguments force the generic (scalar) body instead of
  // the DirectMemory fast-path overload.
  return SequentialSearchWith<DirectMemory>(array, value, cursor, mem,
                                            steps_out);
}

namespace detail {

size_t SequentialVecForward(const TermId* data, size_t n, size_t start,
                            TermId value, size_t* cursor,
                            uint64_t* steps_out) {
  const size_t stop = simd::detail::ScanForwardStopBulk(
      data, start + kScanPrologue + 1, n, value);
  if (steps_out != nullptr) *steps_out += stop - start;
  *cursor = stop;
  return data[stop] == value ? stop : kNotFound;
}

size_t SequentialVecBackward(const TermId* data, size_t start, TermId value,
                             size_t* cursor, uint64_t* steps_out) {
  const size_t stop =
      simd::detail::ScanBackwardStopBulk(data, start - kScanPrologue, value);
  if (steps_out != nullptr) *steps_out += start - stop;
  *cursor = stop;
  return data[stop] == value ? stop : kNotFound;
}

}  // namespace detail

size_t AdaptiveSearch(std::span<const TermId> array, TermId value,
                      size_t* cursor, int64_t threshold,
                      SearchStrategy strategy,
                      const index::IdPositionIndex* index,
                      SearchCounters* counters, size_t gallop_cap) {
  DirectMemory mem;
  return AdaptiveSearchWith(array, value, cursor, threshold, strategy, index,
                            counters, mem, gallop_cap);
}

size_t BinarySearchReplay(size_t n, size_t lower_bound_pos, bool found,
                          size_t* cursor, size_t gallop_cap) {
  // Mirrors BinarySearchWith line for line with each comparison replaced
  // by its positional equivalent on a strictly-increasing array:
  //   a[p] <  value  <=>  p < lower_bound_pos
  //   a[p] == value  <=>  found && p == lower_bound_pos
  const size_t lb = lower_bound_pos;
  if (n == 0) return kNotFound;
  const size_t start = *cursor < n ? *cursor : n - 1;
  size_t last = start;
  size_t lo = 0;
  size_t hi = n;
  if (found && start == lb) {
    // The anchor probe hits; distinct keys make the flat kernel's
    // duplicate guard (a[start-1] != value) vacuously true.
    *cursor = start;
    return start;
  }
  if (gallop_cap < 1) gallop_cap = 1;
  if (start < lb) {  // anchor < value
    lo = start + 1;
    const size_t room = n - 1 - start;
    const size_t edge = start + (gallop_cap < room ? gallop_cap : room);
    if (edge > start) {
      last = edge;
      if (edge < lb) {
        lo = edge + 1;  // far probe: the whole window is below value
      } else {
        hi = edge;  // near probe: gallop brackets inside the window
        size_t stride = 1;
        while (start + stride < edge) {
          const size_t pos = start + stride;
          last = pos;
          if (pos >= lb) {
            hi = pos;
            break;
          }
          lo = pos + 1;
          stride <<= 1;
        }
      }
    }
  } else {  // anchor > value (the anchor-hit case returned above)
    hi = start;
    const size_t edge = start - (gallop_cap < start ? gallop_cap : start);
    if (edge < start) {
      last = edge;
      if (edge >= lb) {
        hi = edge;  // far probe: the lower bound is at or before the edge
      } else {
        lo = edge + 1;  // near probe: gallop brackets inside the window
        size_t stride = 1;
        while (stride < start - edge) {
          const size_t pos = start - stride;
          last = pos;
          if (pos < lb) {
            lo = pos + 1;
            break;
          }
          hi = pos;
          stride <<= 1;
        }
      }
    }
  }
  // The flat kernel's two shrink regimes (branchy above kCmovRange, cmov
  // below) probe the identical midpoint sequence, so one loop replays
  // both. Conditional moves: the mid < lb outcome is a coin flip on
  // random probes, and a mispredicted branch costs more than the whole
  // iteration's arithmetic.
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    last = mid;
    // Arithmetic select: gcc rewrites the ternary form back into a branch,
    // and the mid < lb outcome is a coin flip on random probes.
    const size_t below = size_t{0} - static_cast<size_t>(mid < lb);
    lo = (lo & ~below) | ((mid + 1) & below);
    hi = (hi & below) | (mid & ~below);
  }
  if (lo < n && found && lo == lb) {
    *cursor = lo;
    return lo;
  }
  *cursor = last;
  return kNotFound;
}

size_t CompressedBinarySearch(const storage::CompressedReplica& replica,
                              TermId value, size_t* cursor,
                              storage::ReplicaCursor* rc, size_t gallop_cap) {
  const size_t n = replica.key_count();
  if (n == 0) return kNotFound;
  const storage::LowerBoundResult lb =
      storage::LowerBoundKeys(replica, value, rc);
  const size_t found = BinarySearchReplay(n, lb.pos, lb.found, cursor, gallop_cap);
  if (found != kNotFound) rc->NoteKey(replica, found, value);
  return found;
}

size_t CompressedSequentialSearch(const storage::CompressedReplica& replica,
                                  TermId value, size_t* cursor,
                                  storage::ReplicaCursor* rc,
                                  uint64_t* steps_out) {
  const size_t n = replica.key_count();
  if (n == 0) return kNotFound;
  const size_t start = *cursor < n ? *cursor : n - 1;
  const storage::LowerBoundResult r = storage::LowerBoundKeys(replica, value, rc);
  size_t stop;
  bool hit;
  if (r.found && start == r.pos) {
    stop = start;  // already on the value: the flat scan takes no steps
    hit = true;
  } else if (start < r.pos) {
    // a[start] < value: forward scan parks on the lower bound, or on the
    // last element when every key is smaller.
    stop = r.pos < n ? r.pos : n - 1;
    hit = r.found && stop == r.pos;
  } else {
    // a[start] > value: backward scan parks on the hit, on the last key
    // below value, or on element 0 when every key in range is larger.
    stop = r.found ? r.pos : (r.pos == 0 ? 0 : r.pos - 1);
    hit = r.found;
  }
  if (steps_out != nullptr) {
    *steps_out += stop >= start ? stop - start : start - stop;
  }
  *cursor = stop;
  if (hit) rc->NoteKey(replica, stop, value);
  return hit ? stop : kNotFound;
}

size_t CompressedAdaptiveSearch(const storage::CompressedReplica& replica,
                                TermId value, size_t* cursor,
                                int64_t threshold, SearchStrategy strategy,
                                const index::IdPositionIndex* index,
                                SearchCounters* counters,
                                storage::ReplicaCursor* rc,
                                size_t gallop_cap) {
  const size_t n = replica.key_count();
  if (n == 0) return kNotFound;
  DirectMemory mem;
  switch (strategy) {
    case SearchStrategy::kBinary:
      if (counters != nullptr) ++counters->binary_searches;
      return CompressedBinarySearch(replica, value, cursor, rc, gallop_cap);
    case SearchStrategy::kIndex: {
      if (counters != nullptr) ++counters->index_lookups;
      const size_t pos = index->FindWith(value, mem);
      if (pos != kNotFound) {
        *cursor = pos;
        rc->NoteKey(replica, pos, value);
      }
      return pos;
    }
    case SearchStrategy::kAdaptiveBinary:
    case SearchStrategy::kAdaptiveIndex: {
      size_t pos = *cursor;
      if (pos >= n) pos = n - 1;
      // KeyAtMemo: after an index hit the cursor's key is the probed id
      // itself, recorded by NoteKey — no block decode for the distance
      // check on the dominant hit-then-probe-nearby pattern.
      const int64_t distance =
          static_cast<int64_t>(rc->KeyAtMemo(replica, pos)) -
          static_cast<int64_t>(value);
      if (distance <= threshold && distance >= -threshold) {
        if (counters != nullptr) ++counters->sequential_searches;
        return CompressedSequentialSearch(
            replica, value, cursor, rc,
            counters != nullptr ? &counters->sequential_steps : nullptr);
      }
      if (strategy == SearchStrategy::kAdaptiveBinary) {
        if (counters != nullptr) ++counters->binary_searches;
        return CompressedBinarySearch(replica, value, cursor, rc, gallop_cap);
      }
      if (counters != nullptr) ++counters->index_lookups;
      const size_t found = index->FindWith(value, mem);
      if (found != kNotFound) {
        *cursor = found;
        rc->NoteKey(replica, found, value);
      }
      return found;
    }
  }
  return kNotFound;
}

bool RunContains(std::span<const TermId> run, TermId value) {
  // Value runs are usually a handful of elements; a vectorized equality
  // sweep beats a branchy binary search up to several cache lines. Both
  // arms return the same boolean on the sorted input.
  constexpr size_t kLinearLimit = 64;
  if (run.size() <= kLinearLimit) {
    return simd::ContainsU32(run.data(), run.size(), value);
  }
  return std::binary_search(run.begin(), run.end(), value);
}

}  // namespace parj::join
