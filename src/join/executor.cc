#include "join/executor.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <new>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/timer.h"
#include "mutable/delta_view.h"
#include "server/thread_pool.h"
#include "storage/compressed.h"

namespace parj::join {

namespace {

using query::PatternTerm;
using query::Plan;
using query::PlanStep;
using storage::ReplicaMeta;
using storage::TableReplica;

/// Immutable per-step lookup info resolved once per execution.
struct StepInfo {
  const TableReplica* replica = nullptr;
  /// replica->packed() when the base replica is compressed (null when
  /// flat): probes then go through the compressed kernels + the worker's
  /// per-depth ReplicaCursor instead of the raw-array kernels.
  const storage::CompressedReplica* packed = nullptr;
  const index::IdPositionIndex* index = nullptr;
  int64_t threshold = 0;
  /// Gallop-phase cap for the binary kernel, from the replica's
  /// calibrated window (GallopCapForWindow).
  size_t gallop_cap = kDefaultGallopCap;
  /// Linear-interpolation model of this replica's key array
  /// (position ~= (v - interp_base) * interp_scale), used only to predict
  /// prefetch addresses for batched probing — never for the search itself.
  TermId interp_base = 0;
  double interp_scale = 0.0;
  PatternTerm key;
  PatternTerm value;
  bool key_bound = false;
  bool value_bound = false;
  bool value_is_key_var = false;
  /// Pending-write replicas for this step's predicate (same ReplicaKind as
  /// `replica`), from the execution's mut::DeltaView; null/empty on a
  /// clean step. Invariants (see mut::PropertyDelta): ins ∩ base = ∅ and
  /// del ⊆ base, so merged membership is (base ∧ ¬del) ∨ ins.
  const TableReplica* ins = nullptr;
  const TableReplica* del = nullptr;
  /// True when ins or del is non-empty — the one flag every hot path
  /// checks before leaving the read-only code.
  bool dirty = false;
};

/// The value run of `key` in `replica`, or an empty span when the replica
/// is null/empty or lacks the key.
std::span<const TermId> LookupRun(const TableReplica* replica, TermId key) {
  if (replica == nullptr || replica->empty()) return {};
  const size_t pos = replica->FindKey(key);
  if (pos == SIZE_MAX) return {};
  return replica->Run(pos);
}

/// Merges (base_run ∖ del_run) ∪ ins_run into `out`, ascending. All three
/// inputs are sorted; ins is disjoint from base and del ⊆ base, so the
/// result is exactly the run a store rebuilt from the merged triple set
/// would hold — which is what makes delta-merged query results
/// bit-identical to a rebuilt store's.
void MergeDeltaRun(std::span<const TermId> base_run,
                   std::span<const TermId> ins_run,
                   std::span<const TermId> del_run,
                   std::vector<TermId>* out) {
  out->clear();
  out->reserve(base_run.size() + ins_run.size());
  size_t ii = 0;
  size_t di = 0;
  for (const TermId b : base_run) {
    while (ii < ins_run.size() && ins_run[ii] < b) {
      out->push_back(ins_run[ii++]);
    }
    while (di < del_run.size() && del_run[di] < b) ++di;
    if (di < del_run.size() && del_run[di] == b) continue;
    out->push_back(b);
  }
  while (ii < ins_run.size()) out->push_back(ins_run[ii++]);
}

/// Delete-aware membership in (base_run ∖ del_run) ∪ ins_run.
bool MergedRunContains(std::span<const TermId> base_run,
                       std::span<const TermId> ins_run,
                       std::span<const TermId> del_run, TermId value) {
  if (RunContains(base_run, value)) {
    return del_run.empty() || !RunContains(del_run, value);
  }
  return !ins_run.empty() && RunContains(ins_run, value);
}

/// Floor (in rows) for the first materialization buffer reservation, so
/// result-heavy shards skip the pathological small-capacity doublings.
constexpr size_t kRowsReserveFloor = 256;

/// All mutable state of one worker's pipeline run. Workers never share
/// mutable state — this is the paper's "no communication or
/// synchronization between the workers"; under kMorsel scheduling one
/// context is reused across every morsel its worker claims. Cache-line
/// aligned so adjacent workers' hot counters (row_count, counters,
/// cancel_countdown) never false-share.
struct alignas(64) ShardContext {
  const std::vector<StepInfo>* steps = nullptr;
  /// batch_at[d] => the value loop at depth d feeds step d+1's variable
  /// key and may run through the batched prefetched pipeline (resolved
  /// once in Execute from the plan shape + ExecOptions::batch_probes).
  const std::vector<uint8_t>* batch_at = nullptr;
  /// filters_at[d] is checked on entry to Descend(d), i.e. as soon as the
  /// bindings of steps 0..d-1 exist (filter pushdown).
  const std::vector<std::vector<const query::EncodedFilter*>>* filters_at =
      nullptr;
  const std::vector<int>* projection = nullptr;
  ResultMode mode = ResultMode::kCount;
  uint64_t per_shard_limit = 0;
  size_t shard_id = 0;
  const RowVisitor* visitor = nullptr;
  /// Scratch for one projected row, sized once to the projection width;
  /// Emit gathers into it and appends with a single insert.
  std::vector<TermId> emit_row;

  std::vector<TermId> bindings;
  std::vector<size_t> cursors;
  /// Per-depth block-decode cursors for compressed base replicas. Like
  /// `cursors`, one per step: recursion only ever descends, so the scratch
  /// a depth-d span aliases is never clobbered while a deeper frame runs.
  std::vector<storage::ReplicaCursor> rcursors;
  /// Per-depth scratch for materialized merged runs (dirty steps only).
  /// Safe without further care: recursion depth is strictly increasing,
  /// so at most one live frame uses merged_runs[d].
  std::vector<std::vector<TermId>> merged_runs;
  std::vector<uint64_t> step_rows;  // index d-1: tuples entering Descend(d)
  SearchCounters counters;
  uint64_t row_count = 0;
  std::vector<TermId> rows;
  bool limit_reached = false;
  LimitGate* limit_gate = nullptr;
  uint64_t rows_skipped = 0;

  bool tracing = false;
  size_t max_trace_entries = 0;
  size_t trace_entries = 0;
  std::vector<std::vector<TermId>> trace;

  server::CancellationToken cancel;
  bool cancel_enabled = false;
  int cancel_countdown = kCancelCheckInterval;

  void Emit() {
    if (limit_gate != nullptr &&
        limit_gate->emitted.fetch_add(1, std::memory_order_relaxed) >=
            limit_gate->limit) {
      // The gate saturated before this row's claim: drop it and unwind
      // this shard through the limit machinery.
      ++rows_skipped;
      limit_reached = true;
      return;
    }
    ++row_count;
    if (mode != ResultMode::kCount) {
      const std::vector<int>& proj = *projection;
      const size_t width = proj.size();
      for (size_t i = 0; i < width; ++i) emit_row[i] = bindings[proj[i]];
      if (mode == ResultMode::kMaterialize) {
        if (rows.size() + width > rows.capacity()) {
          rows.reserve(std::max(kRowsReserveFloor * width,
                                rows.capacity() * 2));
        }
        rows.insert(rows.end(), emit_row.begin(), emit_row.end());
      } else {
        (*visitor)(shard_id, emit_row);
      }
    }
    if (per_shard_limit != 0 && row_count >= per_shard_limit) {
      limit_reached = true;
    }
  }

  void Trace(size_t step, TermId value) {
    if (!tracing || trace_entries >= max_trace_entries) return;
    trace[step].push_back(value);
    ++trace_entries;
  }

  bool PassesFilter(const query::EncodedFilter& filter) const {
    const TermId lhs = bindings[filter.lhs.var];
    if (filter.passing != nullptr) return (*filter.passing)[lhs];
    const TermId rhs = filter.rhs.is_variable() ? bindings[filter.rhs.var]
                                                : filter.rhs.constant;
    return filter.op == query::FilterOp::kEq ? lhs == rhs : lhs != rhs;
  }

  /// Key at `pos` of step `depth`'s base replica, through the worker's
  /// per-depth decode cursor when the replica is compressed.
  TermId StepKeyAt(size_t depth, size_t pos) {
    const StepInfo& step = (*steps)[depth];
    if (step.packed != nullptr) {
      return rcursors[depth].KeyAt(*step.packed, pos);
    }
    return step.replica->KeyAt(pos);
  }

  /// Value run at key position `pos` of step `depth`'s base replica. On a
  /// compressed replica the span aliases rcursors[depth]'s run scratch: it
  /// stays valid across deeper descents (those use their own cursors) but
  /// is invalidated by the next StepRun at the same depth.
  std::span<const TermId> StepRun(size_t depth, size_t pos) {
    const StepInfo& step = (*steps)[depth];
    if (step.packed != nullptr) {
      return rcursors[depth].RunAt(*step.packed, pos);
    }
    return step.replica->Run(pos);
  }

  /// Membership test in the run at key position `pos` of step `depth`'s
  /// base replica. On a compressed replica this probes the value-block
  /// minima directory and decodes at most two blocks instead of
  /// materializing the whole run — the hot path for bound-value steps
  /// whose runs span many blocks (e.g. class-instance runs).
  bool StepRunContains(size_t depth, size_t pos, TermId value) {
    const StepInfo& step = (*steps)[depth];
    if (step.packed != nullptr) {
      return rcursors[depth].RunContains(*step.packed, pos, value);
    }
    return RunContains(step.replica->Run(pos), value);
  }

  /// Probes step `depth`'s key set for `value`. The compressed kernel
  /// replays the flat kernel's exact probe trajectory, so cursors and
  /// SearchCounters stay byte-identical across storage modes.
  size_t StepSearch(size_t depth, const StepInfo& step, TermId value,
                    SearchStrategy strategy) {
    if (step.packed != nullptr) {
      return CompressedAdaptiveSearch(*step.packed, value, &cursors[depth],
                                      step.threshold, strategy, step.index,
                                      &counters, &rcursors[depth],
                                      step.gallop_cap);
    }
    return AdaptiveSearch(step.replica->keys(), value, &cursors[depth],
                          step.threshold, strategy, step.index, &counters,
                          step.gallop_cap);
  }

  /// True when another shard has saturated the LIMIT gate — this shard's
  /// remaining work cannot produce rows, so stop it at the next check.
  bool GateSaturated() const {
    return limit_gate != nullptr &&
           limit_gate->emitted.load(std::memory_order_relaxed) >=
               limit_gate->limit;
  }

  /// Evaluates steps[depth..] given bindings for earlier steps.
  void Descend(size_t depth, SearchStrategy strategy) {
    if (limit_reached) return;
    if ((cancel_enabled || limit_gate != nullptr) && --cancel_countdown <= 0) {
      cancel_countdown = kCancelCheckInterval;
      if ((cancel_enabled && cancel.StopRequested()) || GateSaturated()) {
        // Reuse the limit machinery to unwind every loop in this shard.
        limit_reached = true;
        return;
      }
    }
    for (const query::EncodedFilter* filter : (*filters_at)[depth]) {
      if (!PassesFilter(*filter)) return;
    }
    ++step_rows[depth - 1];
    if (depth == steps->size()) {
      Emit();
      return;
    }
    const StepInfo& step = (*steps)[depth];
    const TableReplica& replica = *step.replica;
    if (replica.empty() && !step.dirty) return;

    if (!step.key_bound) {
      if (step.dirty) {
        ScanMergedKeys(depth, strategy);
        return;
      }
      // Cartesian continuation (or a forced odd plan): scan every key.
      const size_t key_count = replica.key_count();
      for (size_t pos = 0; pos < key_count && !limit_reached; ++pos) {
        bindings[step.key.var] = StepKeyAt(depth, pos);
        DescendIntoRun(depth, pos, strategy);
      }
      return;
    }

    const TermId key_value = step.key.is_constant()
                                 ? step.key.constant
                                 : bindings[step.key.var];
    Trace(depth, key_value);
    size_t pos = kNotFound;
    if (!replica.empty()) {
      pos = StepSearch(depth, step, key_value, strategy);
    }
    if (!step.dirty) {
      if (pos == kNotFound) return;
      if (step.key.is_variable()) bindings[step.key.var] = key_value;
      DescendIntoRun(depth, pos, strategy);
      return;
    }
    // Dirty step: a base miss can still hit a pending insert, and a base
    // hit may be partially or fully deleted.
    const std::span<const TermId> base_run =
        pos == kNotFound ? std::span<const TermId>() : StepRun(depth, pos);
    const std::span<const TermId> ins_run = LookupRun(step.ins, key_value);
    if (base_run.empty() && ins_run.empty()) return;
    const std::span<const TermId> del_run =
        base_run.empty() ? std::span<const TermId>()
                         : LookupRun(step.del, key_value);
    if (step.key.is_variable()) bindings[step.key.var] = key_value;
    DescendMergedRun(depth, base_run, ins_run, del_run, strategy);
  }

  /// Dirty-step counterpart of DescendIntoRun: descends into the merged
  /// (base ∖ del) ∪ ins run of the key the caller just bound.
  void DescendMergedRun(size_t depth, std::span<const TermId> base_run,
                        std::span<const TermId> ins_run,
                        std::span<const TermId> del_run,
                        SearchStrategy strategy) {
    const StepInfo& step = (*steps)[depth];
    if (step.value.is_constant() || step.value_is_key_var ||
        step.value_bound) {
      const TermId value = step.value.is_constant() ? step.value.constant
                           : step.value_is_key_var ? bindings[step.key.var]
                                                   : bindings[step.value.var];
      ++counters.run_probes;
      if (MergedRunContains(base_run, ins_run, del_run, value)) {
        Descend(depth + 1, strategy);
      }
      return;
    }
    // Unbound value: iterate the merged run. The two trivial cases keep
    // the original zero-copy spans; only a genuinely mixed key pays for
    // the scratch merge.
    if (ins_run.empty() && del_run.empty()) {
      RunValues(depth, base_run, strategy);
      return;
    }
    if (base_run.empty()) {
      RunValues(depth, ins_run, strategy);
      return;
    }
    MergeDeltaRun(base_run, ins_run, del_run, &merged_runs[depth]);
    RunValues(depth, merged_runs[depth], strategy);
  }

  /// Dirty-step counterpart of the cartesian key scan: iterates the
  /// merged (base ∪ ins) key set in ascending order, so emit order stays
  /// exactly what a rebuilt store would produce.
  void ScanMergedKeys(size_t depth, SearchStrategy strategy) {
    const StepInfo& step = (*steps)[depth];
    const TableReplica& base = *step.replica;
    const TableReplica* ins = step.ins;
    const size_t base_count = base.key_count();
    const size_t ins_count = ins == nullptr ? 0 : ins->key_count();
    size_t bi = 0;
    size_t ii = 0;
    while ((bi < base_count || ii < ins_count) && !limit_reached) {
      const bool take_ins =
          bi >= base_count ||
          (ii < ins_count && ins->KeyAt(ii) < StepKeyAt(depth, bi));
      if (take_ins) {
        // Delta-only key: no base run, and del ⊆ base means no deletes.
        bindings[step.key.var] = ins->KeyAt(ii);
        DescendMergedRun(depth, {}, ins->Run(ii), {}, strategy);
        ++ii;
        continue;
      }
      const TermId key = StepKeyAt(depth, bi);
      const bool merged = ii < ins_count && ins->KeyAt(ii) == key;
      bindings[step.key.var] = key;
      DescendMergedRun(depth, StepRun(depth, bi),
                       merged ? ins->Run(ii) : std::span<const TermId>(),
                       LookupRun(step.del, key), strategy);
      if (merged) ++ii;
      ++bi;
    }
  }

  void DescendIntoRun(size_t depth, size_t key_pos, SearchStrategy strategy) {
    const StepInfo& step = (*steps)[depth];
    // Bound-value steps only need membership, so skip materializing the
    // run (a compressed replica would decode every covering value block).
    if (step.value.is_constant()) {
      ++counters.run_probes;
      if (StepRunContains(depth, key_pos, step.value.constant)) {
        Descend(depth + 1, strategy);
      }
      return;
    }
    if (step.value_is_key_var) {
      ++counters.run_probes;
      if (StepRunContains(depth, key_pos, bindings[step.key.var])) {
        Descend(depth + 1, strategy);
      }
      return;
    }
    if (step.value_bound) {
      ++counters.run_probes;
      if (StepRunContains(depth, key_pos, bindings[step.value.var])) {
        Descend(depth + 1, strategy);
      }
      return;
    }
    RunValues(depth, StepRun(depth, key_pos), strategy);
  }

  /// Iterates a value run at `depth`, binding the step's value variable
  /// and descending into step depth+1 for each element — the innermost
  /// loop of the pipeline. When batch_at[depth] is set, values are
  /// processed in groups of kProbeBatchSize through a three-stage
  /// software pipeline (DESIGN.md §11):
  ///
  ///   A  prefetch each probe's predicted first touch (interpolated
  ///      key-array position, or the rank index's three lines), so the
  ///      group's independent cache misses are in flight together;
  ///   B  run the searches serially — Algorithm 1's cursor makes probe
  ///      k+1's start depend on probe k's result, so the search ORDER is
  ///      exactly the unbatched one and counters/traces/cursors are
  ///      byte-identical — prefetching each hit's run area;
  ///   C  descend into the hits' runs, again in probe order, so Emit
  ///      order is unchanged.
  void RunValues(size_t depth, std::span<const TermId> values,
                 SearchStrategy strategy) {
    const StepInfo& step = (*steps)[depth];
    if (!(*batch_at)[depth]) {
      for (TermId v : values) {
        if (limit_reached) return;
        bindings[step.value.var] = v;
        Descend(depth + 1, strategy);
      }
      return;
    }
    const size_t next_depth = depth + 1;
    const StepInfo& next = (*steps)[next_depth];
    const TableReplica& replica = *next.replica;
    const storage::CompressedReplica* packed = next.packed;
    // Flat key span for prefetch/search; empty (and unused) when the
    // replica is compressed — probes then go through the block directory.
    const std::span<const TermId> keys =
        packed != nullptr ? std::span<const TermId>() : replica.keys();
    const size_t key_count = replica.key_count();
    const bool use_index = strategy == SearchStrategy::kIndex ||
                           strategy == SearchStrategy::kAdaptiveIndex;
    // Per-group hit buffers live on the stack: stage C's descents can
    // re-enter RunValues at deeper depths.
    TermId hit_vals[kProbeBatchSize];
    size_t hit_pos[kProbeBatchSize];
    size_t i = 0;
    const size_t n = values.size();
    while (i < n && !limit_reached) {
      const size_t group = std::min(kProbeBatchSize, n - i);
      for (size_t j = 0; j < group; ++j) {
        const TermId v = values[i + j];
        if (use_index) {
          next.index->PrefetchFind(v);
        } else {
          double pred = (static_cast<double>(v) -
                         static_cast<double>(next.interp_base)) *
                        next.interp_scale;
          if (pred < 0.0) pred = 0.0;
          size_t guess = static_cast<size_t>(pred);
          if (guess >= key_count) guess = key_count - 1;
          if (packed != nullptr) {
            packed->PrefetchProbe(guess);
          } else {
            __builtin_prefetch(&keys[guess], 0, 1);
          }
        }
      }
      size_t hits = 0;
      for (size_t j = 0; j < group; ++j) {
        if (limit_reached) break;
        // Mirrors Descend(next_depth) up to the run descent; batching is
        // disabled whenever any of Descend's other entry paths (limit,
        // Emit, empty replica, constant/unbound key) could trigger.
        if ((cancel_enabled || limit_gate != nullptr) &&
            --cancel_countdown <= 0) {
          cancel_countdown = kCancelCheckInterval;
          if ((cancel_enabled && cancel.StopRequested()) || GateSaturated()) {
            limit_reached = true;
            break;
          }
        }
        const TermId v = values[i + j];
        bindings[step.value.var] = v;
        bool pass = true;
        for (const query::EncodedFilter* filter : (*filters_at)[next_depth]) {
          if (!PassesFilter(*filter)) {
            pass = false;
            break;
          }
        }
        if (!pass) continue;
        ++step_rows[next_depth - 1];
        Trace(next_depth, v);
        const size_t pos = StepSearch(next_depth, next, v, strategy);
        if (pos == kNotFound) continue;
        hit_vals[hits] = v;
        hit_pos[hits] = pos;
        ++hits;
        if (packed != nullptr) {
          packed->PrefetchRun(pos);
        } else {
          __builtin_prefetch(replica.Run(pos).data(), 0, 1);
        }
      }
      for (size_t h = 0; h < hits && !limit_reached; ++h) {
        bindings[step.value.var] = hit_vals[h];
        DescendIntoRun(next_depth, hit_pos[h], strategy);
      }
      i += group;
    }
  }
};

/// Description of the first step's parallelizable work.
struct WorkSource {
  enum class Kind {
    kEmpty,      ///< no results possible
    kKeyRange,   ///< iterate first replica's keys [0, size)
    kRunRange,   ///< constant first key: iterate its value run [0, size)
    kSingle,     ///< fully constant first pattern: one existence check
  };
  Kind kind = Kind::kEmpty;
  size_t size = 0;
  size_t key_pos = 0;  ///< for kRunRange / kSingle
  /// Dirty-first-step fields. base_key_present: key_pos is a valid base
  /// position (kRunRange / kSingle). keys_from_delta: the base replica is
  /// empty and kKeyRange iterates the delta-insert key array instead.
  /// merged_run: materialized (base ∖ del) ∪ ins run for a constant dirty
  /// first key, sliced by shards exactly like a base run.
  bool base_key_present = false;
  bool keys_from_delta = false;
  bool use_merged_run = false;
  std::vector<TermId> merged_run;
};

WorkSource ResolveWorkSource(const StepInfo& first) {
  WorkSource src;
  const TableReplica& replica = *first.replica;
  if (replica.empty() && !first.dirty) return src;
  if (first.key.is_constant()) {
    const size_t pos =
        replica.empty() ? SIZE_MAX : replica.FindKey(first.key.constant);
    src.base_key_present = pos != SIZE_MAX;
    if (src.base_key_present) src.key_pos = pos;
    const std::span<const TermId> ins_run =
        first.dirty ? LookupRun(first.ins, first.key.constant)
                    : std::span<const TermId>();
    if (!src.base_key_present && ins_run.empty()) return src;
    if (first.value.is_constant() || first.value_is_key_var) {
      src.kind = WorkSource::Kind::kSingle;
      src.size = 1;
      return src;
    }
    const std::span<const TermId> del_run =
        src.base_key_present ? LookupRun(first.del, first.key.constant)
                             : std::span<const TermId>();
    if (ins_run.empty() && del_run.empty()) {
      // Clean key (even under a dirty step): slice the base run in place.
      // A compressed base decodes the run once up front; shards then slice
      // the materialized copy exactly like a flat run.
      src.kind = WorkSource::Kind::kRunRange;
      if (replica.is_compressed()) {
        replica.RunInto(pos, &src.merged_run);
        src.use_merged_run = true;
        src.size = src.merged_run.size();
      } else {
        src.size = replica.RunLength(pos);
      }
      return src;
    }
    std::vector<TermId> base_scratch;
    const std::span<const TermId> base_run =
        src.base_key_present ? replica.RunInto(pos, &base_scratch)
                             : std::span<const TermId>();
    MergeDeltaRun(base_run, ins_run, del_run, &src.merged_run);
    if (src.merged_run.empty()) return src;
    src.use_merged_run = true;
    src.kind = WorkSource::Kind::kRunRange;
    src.size = src.merged_run.size();
    return src;
  }
  // Variable (unbound) first key: shard the key array. With a dirty step
  // whose base is empty, the delta-insert keys are the work range.
  src.kind = WorkSource::Kind::kKeyRange;
  if (replica.empty()) {
    src.keys_from_delta = true;
    src.size = first.ins->key_count();
  } else {
    src.size = replica.key_count();
  }
  return src;
}

/// Morsel sizing (DESIGN.md §8): aim for kMorselsPerWorker morsels per
/// worker so the dispenser can smooth skew and stragglers, but never cut
/// morsels below kMinMorselCost triples of estimated work — claim overhead
/// (one fetch_add) must stay invisible next to the pipeline work — and
/// never more morsels than work items.
constexpr size_t kMorselsPerWorker = 8;
constexpr uint64_t kMinMorselCost = 2048;

size_t MorselTarget(size_t workers, size_t items, uint64_t cost) {
  const uint64_t by_cost =
      std::max<uint64_t>(workers, cost / kMinMorselCost);
  const size_t target =
      std::min<size_t>(workers * kMorselsPerWorker,
                       static_cast<size_t>(by_cost));
  return std::clamp<size_t>(target, 1, std::max<size_t>(1, items));
}

/// Dirty first step with a variable key: merged scan of the base key
/// range [begin, end) with delta-insert keys interleaved in ascending
/// order. Shard ownership of delta-only keys is positional: the shard
/// processing base key position p owns ins keys strictly between
/// keys[p-1] and keys[p], and the shard ending at the last base key also
/// owns the tail past it. Cuts are monotone, so exactly one non-empty
/// shard has begin == 0 and one has end == key_count — every delta-only
/// key runs exactly once, whatever the shard/morsel cuts, and each
/// shard's emit order is the merged ascending key order (what a rebuilt
/// store's key array would give).
void RunMergedKeyRange(const StepInfo& first, const WorkSource& src,
                       size_t begin, size_t end, SearchStrategy strategy,
                       ShardContext* ctx) {
  const TableReplica& replica = *first.replica;
  if (src.keys_from_delta) {
    // Base replica empty: every key is delta-only (del ⊆ base is empty).
    const TableReplica& ins = *first.ins;
    for (size_t pos = begin; pos < end && !ctx->limit_reached; ++pos) {
      ctx->bindings[first.key.var] = ins.KeyAt(pos);
      ctx->DescendMergedRun(0, {}, ins.Run(pos), {}, strategy);
    }
    return;
  }
  const TableReplica* ins = first.ins;
  const size_t ins_count = ins == nullptr ? 0 : ins->key_count();
  size_t ii = 0;
  if (begin > 0 && ins_count > 0) {
    const std::span<const TermId> ins_keys = ins->keys();
    ii = static_cast<size_t>(
        std::upper_bound(ins_keys.begin(), ins_keys.end(),
                         ctx->StepKeyAt(0, begin - 1)) -
        ins_keys.begin());
  }
  for (size_t pos = begin; pos < end && !ctx->limit_reached; ++pos) {
    const TermId key = ctx->StepKeyAt(0, pos);
    while (ii < ins_count && ins->KeyAt(ii) < key && !ctx->limit_reached) {
      ctx->bindings[first.key.var] = ins->KeyAt(ii);
      ctx->DescendMergedRun(0, {}, ins->Run(ii), {}, strategy);
      ++ii;
    }
    if (ctx->limit_reached) return;
    const bool merged = ii < ins_count && ins->KeyAt(ii) == key;
    ctx->bindings[first.key.var] = key;
    ctx->DescendMergedRun(0, ctx->StepRun(0, pos),
                          merged ? ins->Run(ii) : std::span<const TermId>(),
                          LookupRun(first.del, key), strategy);
    if (merged) ++ii;
  }
  if (end == replica.key_count() && begin < end) {
    while (ii < ins_count && !ctx->limit_reached) {
      ctx->bindings[first.key.var] = ins->KeyAt(ii);
      ctx->DescendMergedRun(0, {}, ins->Run(ii), {}, strategy);
      ++ii;
    }
  }
}

/// Executes one shard [begin, end) of the work source.
void RunShard(const std::vector<StepInfo>& steps, const WorkSource& src,
              size_t begin, size_t end, SearchStrategy strategy,
              ShardContext* ctx) {
  // Reset the per-depth search cursors so adaptive sequential-vs-binary
  // decisions depend only on this shard's content, never on which worker
  // ran the previous morsel — SearchCounters stay deterministic under
  // work stealing (the equivalence gates compare them across runs).
  std::fill(ctx->cursors.begin(), ctx->cursors.end(), 0);
  const StepInfo& first = steps[0];
  const TableReplica& replica = *first.replica;
  switch (src.kind) {
    case WorkSource::Kind::kEmpty:
      return;
    case WorkSource::Kind::kSingle: {
      // Fully bound first pattern: existence check of (key, value).
      const TermId value = first.value.is_constant()
                               ? first.value.constant
                               : first.key.constant;  // ?x==?x impossible here
      if (first.dirty) {
        const std::span<const TermId> base_run =
            src.base_key_present ? ctx->StepRun(0, src.key_pos)
                                 : std::span<const TermId>();
        const std::span<const TermId> ins_run =
            LookupRun(first.ins, first.key.constant);
        const std::span<const TermId> del_run =
            base_run.empty() ? std::span<const TermId>()
                             : LookupRun(first.del, first.key.constant);
        ++ctx->counters.run_probes;
        if (MergedRunContains(base_run, ins_run, del_run, value)) {
          ctx->Descend(1, strategy);
        }
        return;
      }
      ++ctx->counters.run_probes;
      if (ctx->StepRunContains(0, src.key_pos, value)) {
        if (first.key.is_variable()) {
          ctx->bindings[first.key.var] = ctx->StepKeyAt(0, src.key_pos);
        }
        ctx->Descend(1, strategy);
      }
      return;
    }
    case WorkSource::Kind::kRunRange: {
      std::span<const TermId> run =
          src.use_merged_run ? std::span<const TermId>(src.merged_run)
                             : replica.Run(src.key_pos);
      ctx->RunValues(0, run.subspan(begin, end - begin), strategy);
      return;
    }
    case WorkSource::Kind::kKeyRange: {
      if (first.dirty) {
        RunMergedKeyRange(first, src, begin, end, strategy, ctx);
        return;
      }
      for (size_t pos = begin; pos < end && !ctx->limit_reached; ++pos) {
        const TermId key = ctx->StepKeyAt(0, pos);
        if (first.value_is_key_var) {
          // ?x p ?x: key scan with reflexive membership check.
          ++ctx->counters.run_probes;
          if (!RunContains(ctx->StepRun(0, pos), key)) continue;
          ctx->bindings[first.key.var] = key;
          ctx->Descend(1, strategy);
          continue;
        }
        ctx->bindings[first.key.var] = key;
        if (first.value.is_constant()) {
          ++ctx->counters.run_probes;
          if (RunContains(ctx->StepRun(0, pos), first.value.constant)) {
            ctx->Descend(1, strategy);
          }
          continue;
        }
        ctx->RunValues(0, ctx->StepRun(0, pos), strategy);
      }
      return;
    }
  }
}

/// First-fault latch shared by a query's workers. A worker that faults
/// records its Status here; the others observe Faulted() between work
/// units and stop early, so one bad worker fails only its own query —
/// the pool threads themselves always return to the pool intact.
class FaultCollector {
 public:
  void Record(Status status) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (status_.ok()) status_ = std::move(status);
    }
    faulted_.store(true, std::memory_order_release);
  }
  bool Faulted() const { return faulted_.load(std::memory_order_relaxed); }
  Status Take() {
    std::lock_guard<std::mutex> lock(mu_);
    return status_;
  }

 private:
  std::atomic<bool> faulted_{false};
  std::mutex mu_;
  Status status_;
};

/// Runs one work unit with exception containment: anything thrown inside
/// (allocation failure, injected faults, logic errors surfacing as
/// exceptions) becomes a Status instead of std::terminate on a pool
/// thread.
template <typename Fn>
Status RunContained(Fn&& fn) {
  try {
    return fn();
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted("join worker: out of memory");
  } catch (const std::exception& e) {
    return Status::Internal(std::string("join worker exception: ") + e.what());
  } catch (...) {
    return Status::Internal("join worker: unknown exception");
  }
}

/// Everything an execution needs that is derived purely from (plan,
/// database, delta, options): resolved step infos, batched-probe
/// eligibility and pushed-down filters. Factored out of Execute so the
/// shared-scan pass can resolve each member plan identically.
struct ResolvedPlan {
  std::vector<StepInfo> steps;
  std::vector<uint8_t> batch_at;
  std::vector<std::vector<const query::EncodedFilter*>> filters_at;
};

/// Resolves `plan` against the database and (when present) the
/// pending-write delta view. A predicate that only exists in the delta
/// (allocated after the base was built) gets an empty base replica with
/// default thresholds — every probe then falls through to the delta
/// merge paths.
Status ResolvePlan(const storage::Database& db, const mut::DeltaView* delta,
                   const Plan& plan, const ExecOptions& options,
                   ResolvedPlan* out) {
  const bool needs_index = options.strategy == SearchStrategy::kIndex ||
                           options.strategy == SearchStrategy::kAdaptiveIndex;
  static const TableReplica kEmptyReplica;
  static const ReplicaMeta kEmptyMeta;
  std::vector<StepInfo>& steps = out->steps;
  steps.reserve(plan.steps.size());
  for (const PlanStep& ps : plan.steps) {
    const storage::PropertyEntry* entry = db.FindEntry(ps.predicate);
    const mut::PropertyDelta* pending =
        delta != nullptr ? delta->Find(ps.predicate) : nullptr;
    if (entry == nullptr && pending == nullptr) {
      return Status::InvalidArgument("plan references unknown predicate " +
                                     std::to_string(ps.predicate));
    }
    StepInfo info;
    info.replica =
        entry != nullptr ? &entry->table.replica(ps.replica) : &kEmptyReplica;
    const ReplicaMeta& meta =
        entry != nullptr ? entry->meta(ps.replica) : kEmptyMeta;
    if (needs_index) {
      if (!meta.has_index && !info.replica->empty()) {
        return Status::InvalidArgument(
            "strategy requires ID-to-Position indexes, but predicate " +
            std::to_string(ps.predicate) + " has none");
      }
      info.index = &meta.id_index;
    }
    info.threshold = meta.ThresholdFor(options.strategy);
    info.gallop_cap = GallopCapForWindow(meta.window_binary);
    info.packed = info.replica->packed();
    // Interpolation model from the key-set summary (identical values to
    // the former keys().front()/back() reads, but valid in both modes).
    const size_t key_count = info.replica->key_count();
    if (key_count > 1 && info.replica->max_key() > info.replica->min_key()) {
      info.interp_base = info.replica->min_key();
      info.interp_scale =
          static_cast<double>(key_count - 1) /
          (static_cast<double>(info.replica->max_key()) -
           static_cast<double>(info.replica->min_key()));
    }
    if (pending != nullptr) {
      info.ins = &pending->inserts.replica(ps.replica);
      info.del = &pending->deletes.replica(ps.replica);
      if (info.ins->empty()) info.ins = nullptr;
      if (info.del->empty()) info.del = nullptr;
      info.dirty = info.ins != nullptr || info.del != nullptr;
    }
    info.key = ps.key;
    info.value = ps.value;
    info.key_bound = ps.key_bound;
    info.value_bound = ps.value_bound;
    info.value_is_key_var = ps.value.is_variable() && ps.key.is_variable() &&
                            ps.value.var == ps.key.var;
    steps.push_back(info);
  }
  PARJ_CHECK(!steps[0].key_bound || steps[0].key.is_constant())
      << "first plan step cannot have a pre-bound key variable";

  // Batched-probing eligibility per depth: the value loop at depth d may
  // batch when it feeds exactly the variable key of step d+1 (the common
  // chain shape), so stage B can mirror Descend(d+1)'s probe path
  // verbatim. Any limit makes descent order observable mid-stream, so a
  // per-shard limit disables batching outright.
  out->batch_at.assign(steps.size(), 0);
  if (options.batch_probes && options.per_shard_limit == 0) {
    for (size_t d = 0; d + 1 < steps.size(); ++d) {
      const StepInfo& cur = steps[d];
      const StepInfo& nxt = steps[d + 1];
      // A dirty next step is excluded: stage B mirrors Descend's clean
      // probe path, which a pending-write step must not take (its base
      // misses can still hit delta inserts and its hits may be deleted).
      out->batch_at[d] = cur.value.is_variable() && !cur.value_is_key_var &&
                         !cur.value_bound && nxt.key_bound &&
                         nxt.key.is_variable() && nxt.key.var == cur.value.var &&
                         !nxt.replica->empty() && !nxt.dirty;
    }
  }

  // Push every FILTER down to the earliest depth at which its variables
  // are bound; filters_at[d] is evaluated on entry to Descend(d).
  out->filters_at.assign(plan.steps.size() + 1, {});
  {
    std::vector<uint64_t> bound_after(plan.steps.size(), 0);
    uint64_t bound = 0;
    for (size_t i = 0; i < plan.steps.size(); ++i) {
      const query::PlanStep& ps = plan.steps[i];
      if (ps.key.is_variable()) bound |= uint64_t{1} << ps.key.var;
      if (ps.value.is_variable()) bound |= uint64_t{1} << ps.value.var;
      bound_after[i] = bound;
    }
    for (const query::EncodedFilter& filter : plan.filters) {
      uint64_t needed = uint64_t{1} << filter.lhs.var;
      if (filter.rhs.is_variable()) needed |= uint64_t{1} << filter.rhs.var;
      size_t depth = plan.steps.size();
      for (size_t i = 0; i < plan.steps.size(); ++i) {
        if ((bound_after[i] & needed) == needed) {
          depth = i + 1;
          break;
        }
      }
      if ((bound_after.back() & needed) != needed) {
        return Status::InvalidArgument(
            "FILTER references a variable the plan never binds");
      }
      out->filters_at[depth].push_back(&filter);
    }
  }
  return Status::OK();
}

/// One shard's private context, wired to a resolved plan. Identical
/// whether the shard serves a solo execution or one member of a shared
/// pass.
void InitShardContext(ShardContext* ctx, size_t shard,
                      const ResolvedPlan& resolved, const Plan& plan,
                      const ExecOptions& options, size_t num_shards) {
  ctx->shard_id = shard;
  ctx->visitor = &options.visitor;
  ctx->steps = &resolved.steps;
  ctx->batch_at = &resolved.batch_at;
  ctx->filters_at = &resolved.filters_at;
  ctx->projection = &plan.projection;
  ctx->mode = options.mode;
  ctx->per_shard_limit = options.per_shard_limit;
  ctx->limit_gate = options.limit_gate;
  ctx->bindings.assign(std::max(1, plan.variable_count), kInvalidTermId);
  ctx->emit_row.assign(plan.projection.size(), 0);
  ctx->cursors.assign(resolved.steps.size(), 0);
  ctx->rcursors.assign(resolved.steps.size(), storage::ReplicaCursor());
  ctx->merged_runs.resize(resolved.steps.size());
  ctx->step_rows.assign(resolved.steps.size(), 0);
  ctx->tracing = options.collect_probe_trace;
  if (ctx->tracing) {
    ctx->max_trace_entries = options.max_trace_entries / num_shards + 1;
    ctx->trace.resize(resolved.steps.size());
  }
  ctx->cancel = options.cancel;
  ctx->cancel_enabled = options.cancel.valid();
}

/// Validation shared by Execute and ExecuteShared.
Status ValidateExecOptions(const Plan& plan, const ExecOptions& options) {
  if (plan.steps.empty()) {
    return Status::InvalidArgument("plan has no steps");
  }
  if (options.num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  if (options.mode == ResultMode::kVisit && !options.visitor) {
    return Status::InvalidArgument("kVisit mode requires a visitor");
  }
  if (options.total_workers < 1 || options.worker_index < 0 ||
      options.worker_index >= options.total_workers) {
    return Status::InvalidArgument("invalid worker slice");
  }
  if (options.limit_gate != nullptr && options.limit_gate->limit == 0) {
    return Status::InvalidArgument("limit_gate requires limit > 0");
  }
  return Status::OK();
}

}  // namespace

Result<ExecResult> Executor::Execute(const Plan& plan,
                                     const ExecOptions& options) const {
  ExecResult result;
  result.column_count = plan.projection.size();
  if (plan.known_empty) return result;
  PARJ_RETURN_NOT_OK(ValidateExecOptions(plan, options));
  // Admission check: an already-cancelled token (e.g. an expired
  // deadline) stops the query before any work happens.
  if (options.cancel.StopRequested()) return options.cancel.ToStatus();

  ResolvedPlan resolved;
  PARJ_RETURN_NOT_OK(ResolvePlan(*db_, delta_, plan, options, &resolved));
  std::vector<StepInfo>& steps = resolved.steps;

  Stopwatch total_timer;
  const WorkSource src = ResolveWorkSource(steps[0]);
  if (src.kind == WorkSource::Kind::kEmpty) {
    result.wall_millis = total_timer.ElapsedMillis();
    return result;
  }

  // Cluster slice of the global work range (identity when total_workers
  // is 1). Single-item work goes to worker 0.
  const size_t worker_begin =
      src.size * static_cast<size_t>(options.worker_index) /
      static_cast<size_t>(options.total_workers);
  const size_t worker_end =
      src.size * (static_cast<size_t>(options.worker_index) + 1) /
      static_cast<size_t>(options.total_workers);
  const size_t slice_size = worker_end - worker_begin;
  if (slice_size == 0) {
    result.wall_millis = total_timer.ElapsedMillis();
    return result;
  }

  const size_t num_shards = std::max<size_t>(
      1,
      std::min<size_t>(static_cast<size_t>(options.num_threads), slice_size));

  std::vector<ShardContext> contexts(num_shards);
  for (size_t shard = 0; shard < num_shards; ++shard) {
    InitShardContext(&contexts[shard], shard, resolved, plan, options,
                     num_shards);
  }

  auto shard_range = [&](size_t shard) {
    const size_t begin = worker_begin + slice_size * shard / num_shards;
    const size_t end = worker_begin + slice_size * (shard + 1) / num_shards;
    return std::pair<size_t, size_t>(begin, end);
  };

  FaultCollector faults;

  // kMorsel only matters with several workers and a divisible work range;
  // a fully constant first pattern is one existence check either way.
  const bool use_morsel = options.scheduling == Scheduling::kMorsel &&
                          num_shards > 1 &&
                          src.kind != WorkSource::Kind::kSingle;

  if (use_morsel) {
    // Cost-balanced morsels: for a key range, cut where the CSR offsets
    // cross equal shares of cumulative run length (prefix sums are already
    // materialized, so the split is a handful of binary searches); for a
    // constant key's value run, every item costs one descent, so an
    // equal-count cut is already cost-balanced.
    std::vector<Morsel> morsels;
    // Delta-only key ranges cut on the insert replica's CSR; the merged
    // scan's positional ownership rule keeps any cut correct either way.
    const storage::TableReplica& first = src.keys_from_delta
                                             ? *steps[0].ins
                                             : *steps[0].replica;
    if (src.kind == WorkSource::Kind::kKeyRange) {
      const uint64_t cost = first.RangeCost(worker_begin, worker_end);
      morsels = MorselScheduler::MorselsFromCuts(first.CostBalancedSplit(
          worker_begin, worker_end,
          MorselTarget(num_shards, slice_size, cost)));
    } else {
      morsels = MorselScheduler::EqualSplit(
          worker_begin, worker_end,
          MorselTarget(num_shards, slice_size, slice_size));
    }
    MorselScheduler scheduler(std::move(morsels), num_shards);
    std::vector<MorselWorkerStats> worker_stats(num_shards);

    auto worker_loop = [&](size_t w) {
      ShardContext& ctx = contexts[w];
      MorselWorkerStats& stats = worker_stats[w];
      Morsel morsel;
      bool stolen = false;
      while (!ctx.limit_reached && !faults.Faulted() &&
             scheduler.Next(w, &morsel, &stolen)) {
        const Status unit = RunContained([&]() -> Status {
          Status injected = failpoint::Check("join.worker.morsel");
          if (!injected.ok()) return injected;
          RunShard(steps, src, morsel.begin, morsel.end, options.strategy,
                   &ctx);
          return Status::OK();
        });
        if (!unit.ok()) {
          faults.Record(unit);
          break;
        }
        ++stats.morsels;
        if (stolen) ++stats.stolen;
        stats.items += morsel.size();
      }
    };

    if (options.emulate_parallel) {
      // Discrete-event emulation of the dynamic schedule: morsels run
      // sequentially on the calling thread, but each is dispatched to
      // the virtual worker whose accumulated clock is lowest — the
      // assignment a real dispenser run converges to. max(clock) is then
      // the same straggler model the static emulation uses.
      std::vector<double> clocks(num_shards, 0.0);
      std::vector<bool> drained(num_shards, false);
      size_t active = num_shards;
      while (active > 0) {
        size_t w = SIZE_MAX;
        for (size_t i = 0; i < num_shards; ++i) {
          if (!drained[i] && (w == SIZE_MAX || clocks[i] < clocks[w])) w = i;
        }
        ShardContext& ctx = contexts[w];
        Morsel morsel;
        bool stolen = false;
        if (ctx.limit_reached || !scheduler.Next(w, &morsel, &stolen)) {
          drained[w] = true;
          --active;
          continue;
        }
        Stopwatch morsel_timer;
        const Status unit = RunContained([&]() -> Status {
          Status injected = failpoint::Check("join.worker.morsel");
          if (!injected.ok()) return injected;
          RunShard(steps, src, morsel.begin, morsel.end, options.strategy,
                   &ctx);
          return Status::OK();
        });
        if (!unit.ok()) {
          faults.Record(unit);
          break;
        }
        clocks[w] += morsel_timer.ElapsedMillis();
        ++worker_stats[w].morsels;
        if (stolen) ++worker_stats[w].stolen;
        worker_stats[w].items += morsel.size();
      }
      result.shard_millis = std::move(clocks);
      result.emulated_parallel_millis = *std::max_element(
          result.shard_millis.begin(), result.shard_millis.end());
    } else {
      // A worker gang on the shared pool: members start on idle pool
      // workers via direct handoff; the caller participates and claims
      // any member the pool cannot start, so saturation or nesting
      // degrades to fewer effective workers, never to deadlock.
      server::ThreadPool& pool = options.pool != nullptr
                                     ? *options.pool
                                     : server::ThreadPool::Shared();
      pool.RunWorkers(static_cast<int>(num_shards),
                      [&](int w) { worker_loop(static_cast<size_t>(w)); });
    }
    for (size_t w = 0; w < num_shards; ++w) {
      worker_stats[w].rows = contexts[w].row_count;
    }
    result.morsel_workers = std::move(worker_stats);
  } else if (options.emulate_parallel || num_shards == 1) {
    result.shard_millis.reserve(num_shards);
    for (size_t shard = 0; shard < num_shards; ++shard) {
      auto [begin, end] = shard_range(shard);
      Stopwatch shard_timer;
      const Status unit = RunContained([&]() -> Status {
        Status injected = failpoint::Check("join.worker.shard");
        if (!injected.ok()) return injected;
        RunShard(steps, src, begin, end, options.strategy, &contexts[shard]);
        return Status::OK();
      });
      if (!unit.ok()) {
        faults.Record(unit);
        break;
      }
      result.shard_millis.push_back(shard_timer.ElapsedMillis());
    }
    if (!result.shard_millis.empty()) {
      result.emulated_parallel_millis =
          *std::max_element(result.shard_millis.begin(),
                            result.shard_millis.end());
    }
  } else {
    // Shards are tasks on the shared pool (the serving layer's one
    // threading idiom) — no per-query thread spawn/join. The calling
    // thread participates, so pool-run queries can fan out safely.
    server::ThreadPool& pool =
        options.pool != nullptr ? *options.pool : server::ThreadPool::Shared();
    pool.ParallelFor(num_shards, [&](size_t shard) {
      if (faults.Faulted()) return;
      const Status unit = RunContained([&]() -> Status {
        Status injected = failpoint::Check("join.worker.shard");
        if (!injected.ok()) return injected;
        auto [begin, end] = shard_range(shard);
        RunShard(steps, src, begin, end, options.strategy, &contexts[shard]);
        return Status::OK();
      });
      if (!unit.ok()) faults.Record(unit);
    });
  }

  // A faulted worker fails its query with the first recorded Status; the
  // pool itself is untouched and immediately reusable.
  if (faults.Faulted()) return faults.Take();

  // A cancelled query reports its Status instead of partial results.
  if (options.cancel.StopRequested()) return options.cancel.ToStatus();

  // Merge per-shard buffers (the only post-processing step; during the
  // join there is no cross-thread traffic).
  result.step_rows.assign(steps.size(), 0);
  for (ShardContext& ctx : contexts) {
    result.row_count += ctx.row_count;
    result.rows_skipped_by_limit += ctx.rows_skipped;
    result.counters.Add(ctx.counters);
    for (size_t s = 0; s < steps.size(); ++s) {
      result.step_rows[s] += ctx.step_rows[s];
    }
    if (options.mode == ResultMode::kMaterialize) {
      result.rows.insert(result.rows.end(), ctx.rows.begin(), ctx.rows.end());
    }
  }
  if (options.collect_probe_trace) {
    result.trace.step_values.resize(steps.size());
    for (ShardContext& ctx : contexts) {
      for (size_t s = 0; s < ctx.trace.size(); ++s) {
        auto& dst = result.trace.step_values[s];
        dst.insert(dst.end(), ctx.trace[s].begin(), ctx.trace[s].end());
      }
    }
  }
  result.wall_millis = total_timer.ElapsedMillis();
  if (num_shards == 1 && result.shard_millis.size() == 1) {
    result.emulated_parallel_millis = result.shard_millis[0];
  }
  return result;
}

Result<std::vector<ExecResult>> Executor::ExecuteShared(
    std::span<const query::Plan* const> plans,
    std::span<const ExecOptions> options) const {
  if (plans.empty() || plans.size() != options.size()) {
    return Status::InvalidArgument(
        "ExecuteShared needs matching, non-empty plan/options spans");
  }
  const size_t n = plans.size();
  for (size_t m = 0; m < n; ++m) {
    const Plan& plan = *plans[m];
    const ExecOptions& opt = options[m];
    if (plan.known_empty) {
      return Status::InvalidArgument("shared-scan member is known empty");
    }
    PARJ_RETURN_NOT_OK(ValidateExecOptions(plan, opt));
    if (opt.mode == ResultMode::kVisit || opt.emulate_parallel ||
        opt.collect_probe_trace || opt.total_workers != 1 ||
        opt.limit_gate != nullptr) {
      return Status::InvalidArgument(
          "shared-scan members cannot use kVisit, emulation, probe tracing, "
          "cluster slicing or a LIMIT gate");
    }
    const PlanStep& first = plan.steps[0];
    if (!first.key.is_variable() || first.key_bound ||
        !first.value.is_variable() || first.value_bound) {
      return Status::InvalidArgument(
          "shared-scan members must start with an unbound variable scan");
    }
    if (first.predicate != plans[0]->steps[0].predicate ||
        first.replica != plans[0]->steps[0].replica) {
      return Status::InvalidArgument(
          "shared-scan members must share the leading predicate and replica");
    }
    // Admission check, exactly like Execute's.
    if (opt.cancel.StopRequested()) return opt.cancel.ToStatus();
  }
  const ExecOptions& lead = options[0];

  std::vector<ExecResult> results(n);
  for (size_t m = 0; m < n; ++m) {
    results[m].column_count = plans[m]->projection.size();
  }

  // Resolve every member against the same database/delta. Identical
  // leading (predicate, replica) across members means identical step-0
  // pointers, so member 0's WorkSource and cuts serve the whole group.
  std::vector<ResolvedPlan> resolved(n);
  for (size_t m = 0; m < n; ++m) {
    PARJ_RETURN_NOT_OK(
        ResolvePlan(*db_, delta_, *plans[m], options[m], &resolved[m]));
  }

  Stopwatch total_timer;
  const WorkSource src = ResolveWorkSource(resolved[0].steps[0]);
  if (src.kind == WorkSource::Kind::kEmpty) {
    const double wall = total_timer.ElapsedMillis();
    for (ExecResult& result : results) result.wall_millis = wall;
    return results;
  }
  // An unbound variable first key always shards the key array.
  PARJ_CHECK(src.kind == WorkSource::Kind::kKeyRange)
      << "shared scan over a non-key-range work source";

  const size_t num_shards = std::max<size_t>(
      1, std::min<size_t>(static_cast<size_t>(lead.num_threads), src.size));

  // Fully private per-member, per-shard contexts: within a cut each
  // member runs the exact solo pipeline — no cross-member state at all,
  // the sharing is purely that one cut schedule drives all members.
  std::vector<std::vector<ShardContext>> contexts(n);
  for (size_t m = 0; m < n; ++m) {
    contexts[m].resize(num_shards);
    for (size_t shard = 0; shard < num_shards; ++shard) {
      InitShardContext(&contexts[m][shard], shard, resolved[m], *plans[m],
                       options[m], num_shards);
    }
  }

  FaultCollector faults;
  server::ThreadPool& pool =
      lead.pool != nullptr ? *lead.pool : server::ThreadPool::Shared();
  const bool use_morsel =
      lead.scheduling == Scheduling::kMorsel && num_shards > 1;

  if (use_morsel) {
    // Same cost-balanced cuts a solo run of any member would make: the
    // shared leading replica's CSR is the cost model for all of them.
    const storage::TableReplica& first = src.keys_from_delta
                                             ? *resolved[0].steps[0].ins
                                             : *resolved[0].steps[0].replica;
    const uint64_t cost = first.RangeCost(0, src.size);
    std::vector<Morsel> morsels =
        MorselScheduler::MorselsFromCuts(first.CostBalancedSplit(
            0, src.size, MorselTarget(num_shards, src.size, cost)));
    MorselScheduler scheduler(std::move(morsels), num_shards);

    auto worker_loop = [&](size_t w) {
      Morsel morsel;
      bool stolen = false;
      while (!faults.Faulted() && scheduler.Next(w, &morsel, &stolen)) {
        const Status unit = RunContained([&]() -> Status {
          Status injected = failpoint::Check("join.worker.morsel");
          if (!injected.ok()) return injected;
          for (size_t m = 0; m < n; ++m) {
            ShardContext& ctx = contexts[m][w];
            if (ctx.limit_reached) continue;
            RunShard(resolved[m].steps, src, morsel.begin, morsel.end,
                     options[m].strategy, &ctx);
          }
          return Status::OK();
        });
        if (!unit.ok()) {
          faults.Record(unit);
          break;
        }
      }
    };
    pool.RunWorkers(static_cast<int>(num_shards),
                    [&](int w) { worker_loop(static_cast<size_t>(w)); });
  } else {
    pool.ParallelFor(num_shards, [&](size_t shard) {
      if (faults.Faulted()) return;
      const Status unit = RunContained([&]() -> Status {
        Status injected = failpoint::Check("join.worker.shard");
        if (!injected.ok()) return injected;
        const size_t begin = src.size * shard / num_shards;
        const size_t end = src.size * (shard + 1) / num_shards;
        for (size_t m = 0; m < n; ++m) {
          RunShard(resolved[m].steps, src, begin, end, options[m].strategy,
                   &contexts[m][shard]);
        }
        return Status::OK();
      });
      if (!unit.ok()) faults.Record(unit);
    });
  }

  // Any member's fault or cancellation fails the whole group; the caller
  // degrades to solo execution per member.
  if (faults.Faulted()) return faults.Take();
  for (size_t m = 0; m < n; ++m) {
    if (options[m].cancel.StopRequested()) {
      return options[m].cancel.ToStatus();
    }
  }

  const double wall = total_timer.ElapsedMillis();
  for (size_t m = 0; m < n; ++m) {
    ExecResult& result = results[m];
    const size_t step_count = resolved[m].steps.size();
    result.step_rows.assign(step_count, 0);
    for (ShardContext& ctx : contexts[m]) {
      result.row_count += ctx.row_count;
      result.counters.Add(ctx.counters);
      for (size_t s = 0; s < step_count; ++s) {
        result.step_rows[s] += ctx.step_rows[s];
      }
      if (options[m].mode == ResultMode::kMaterialize) {
        result.rows.insert(result.rows.end(), ctx.rows.begin(),
                           ctx.rows.end());
      }
    }
    result.wall_millis = wall;
  }
  return results;
}

}  // namespace parj::join
