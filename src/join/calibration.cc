#include "join/calibration.h"

#include <algorithm>
#include <cmath>

#include "common/timer.h"
#include "join/search.h"

namespace parj::join {

namespace {

/// Runs `count` lookups striding `value_gap` through the array's value
/// domain (wrapping at the top, as the paper's ToFind += TotalGap walk
/// would run off the array on long calibrations), using `search`.
/// Returns elapsed nanoseconds. The accumulated `sink` defeats dead-code
/// elimination.
template <typename SearchFn>
int64_t TimeSearches(std::span<const TermId> array, double value_gap,
                     size_t count, SearchFn&& search) {
  const TermId lo = array.front();
  const TermId hi = array.back();
  const double span = std::max(1.0, static_cast<double>(hi) -
                                        static_cast<double>(lo));
  size_t cursor = 0;
  double to_find = static_cast<double>(lo);
  uint64_t sink = 0;
  Stopwatch timer;
  for (size_t i = 0; i < count; ++i) {
    TermId value = static_cast<TermId>(to_find);
    size_t pos = search(array, value, &cursor);
    sink += pos == kNotFound ? 1 : pos;
    to_find += value_gap;
    if (to_find > static_cast<double>(hi)) {
      to_find = static_cast<double>(lo) +
                std::fmod(to_find - static_cast<double>(lo), span);
      // A wrap teleports the cursor target; reset the cursor so sequential
      // search is not charged a full-array walk back.
      cursor = 0;
    }
  }
  int64_t nanos = timer.ElapsedNanos();
  // Fold `sink` into the result's low bit so the compiler cannot discard
  // the search results; the perturbation is below timer resolution.
  return nanos | static_cast<int64_t>(sink & 1);
}

}  // namespace

int64_t WindowToValueThreshold(double window_positions, double average_gap) {
  double threshold = std::ceil(window_positions * std::max(1e-9, average_gap));
  return std::max<int64_t>(1, static_cast<int64_t>(threshold));
}

CalibrationResult CalibrateWindow(std::span<const TermId> array,
                                  CalibrationMode mode,
                                  const index::IdPositionIndex* index,
                                  const CalibrationOptions& options) {
  CalibrationResult result;
  if (array.size() < 4) {
    result.window_positions = 1.0;
    result.threshold_value = 1;
    return result;
  }

  const double avg_gap =
      std::max(1.0, (static_cast<double>(array.back()) -
                     static_cast<double>(array.front())) /
                        static_cast<double>(array.size()));
  const double max_window = static_cast<double>(array.size()) / 2.0;

  double next_window = std::clamp(options.starting_window, 1.0, max_window);
  double window = next_window;

  const bool legacy = options.legacy_kernels;
  auto sequential = [legacy](std::span<const TermId> a, TermId v,
                             size_t* cursor) {
    return legacy ? SequentialSearchScalar(a, v, cursor)
                  : SequentialSearch(a, v, cursor);
  };
  // The production binary kernel's gallop cap tracks the window under
  // calibration (&window), exactly as the executor derives it from the
  // calibrated window afterwards — so the timings being balanced are the
  // timings production probes will see.
  auto fallback = [mode, index, legacy, &window](std::span<const TermId> a,
                                                 TermId v, size_t* cursor) {
    if (mode == CalibrationMode::kVersusIndexLookup) {
      DirectMemory mem;
      return IndexSearchWith(a, v, cursor, *index, mem);
    }
    if (legacy) return BranchyBinarySearch(a, v, cursor);
    return BinarySearch(a, v, cursor, GallopCapForWindow(window));
  };
  double fraction = 0.0;
  int iteration = 0;
  do {
    window = next_window;
    const double total_gap = avg_gap * window;
    const int64_t time_fallback =
        TimeSearches(array, total_gap, options.searches_per_step, fallback);
    const int64_t time_scan =
        TimeSearches(array, total_gap, options.searches_per_step, sequential);
    ++iteration;

    const double tf = std::max<double>(1.0, static_cast<double>(time_fallback));
    const double ts = std::max<double>(1.0, static_cast<double>(time_scan));
    if (tf > ts) {
      // Fallback slower: sequential still wins at this distance; widen.
      fraction = tf / ts;
      next_window = window * std::min(fraction, options.max_adjust_factor);
    } else {
      fraction = ts / tf;
      next_window = window / std::min(fraction, options.max_adjust_factor);
    }
    next_window = std::clamp(next_window, 1.0, max_window);
    if (iteration >= options.max_iterations) break;
    // Clamped into a wall: further iterations cannot move the window.
    if (next_window == window && fraction > options.stop_ratio) break;
  } while (fraction > options.stop_ratio);

  result.window_positions = window;
  result.threshold_value = WindowToValueThreshold(window, avg_gap);
  result.iterations = iteration;
  result.final_ratio = fraction;
  return result;
}

}  // namespace parj::join
