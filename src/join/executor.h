#ifndef PARJ_JOIN_EXECUTOR_H_
#define PARJ_JOIN_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "join/morsel.h"
#include "join/search.h"
#include "query/plan.h"
#include "server/cancellation.h"
#include "storage/database.h"

namespace parj::server {
class ThreadPool;
}  // namespace parj::server

namespace parj::mut {
class DeltaView;
}  // namespace parj::mut

namespace parj::join {

/// What the executor does with result tuples.
enum class ResultMode : uint8_t {
  /// Count only — the paper's "silent mode" used in all timing tables.
  kCount = 0,
  /// Materialize projected rows (IDs; dictionary decoding is the engine's
  /// job) — the paper's "full result handling".
  kMaterialize = 1,
  /// Stream each projected row to ExecOptions::visitor as it is produced —
  /// the paper's iterator-style result handling ("send the results to the
  /// master as they are produced" instead of keeping them in memory,
  /// §5.2). Nothing is buffered.
  kVisit = 2,
};

/// Callback for ResultMode::kVisit. `shard` identifies the producing
/// worker; with num_threads > 1 (and no emulation) the visitor is invoked
/// CONCURRENTLY from different shards and must be thread-safe for distinct
/// shard ids. The row span is only valid during the call.
using RowVisitor =
    std::function<void(size_t shard, std::span<const TermId> row)>;

/// Cross-shard LIMIT-k gate. Each produced row claims a slot with one
/// relaxed fetch_add; a claim at or past `limit` is rejected — the row is
/// not produced, the shard tallies it in ExecResult::rows_skipped_by_limit
/// and unwinds through the per-shard limit machinery. Shards also poll
/// `emitted` at the kCancelCheckInterval sites, so once the k-th row is
/// claimed anywhere every shard stops within one check interval instead
/// of finishing its share. Exactly min(limit, available) rows are
/// produced across all shards. The caller owns the gate (stack is fine)
/// and must keep it alive for the execution.
struct LimitGate {
  uint64_t limit = 0;
  std::atomic<uint64_t> emitted{0};
};

/// How the first step's work range is distributed over threads.
enum class Scheduling : uint8_t {
  /// The paper's §5 scheme: num_threads equal-count contiguous shards,
  /// fixed up front. Zero scheduling overhead, but a skewed property
  /// table (one giant run next to singleton keys) leaves one straggler
  /// thread doing nearly all the work.
  kStatic = 0,
  /// Morsel-driven: the range is cut into cost-balanced morsels (equal
  /// cumulative run length, read off the CSR offsets) that workers pull
  /// from a shared lock-free dispenser, stealing from each other's local
  /// queues when theirs drain. Identical results, robust to skew; the
  /// paper's zero-communication pipeline is preserved within a morsel.
  kMorsel = 1,
};

inline const char* SchedulingName(Scheduling s) {
  return s == Scheduling::kStatic ? "static" : "morsel";
}

struct ExecOptions {
  /// Number of shards/threads for the first step (paper §3: each worker is
  /// exactly one thread).
  int num_threads = 1;
  SearchStrategy strategy = SearchStrategy::kAdaptiveBinary;
  ResultMode mode = ResultMode::kMaterialize;
  /// Work distribution across threads. kMorsel (the default) is
  /// skew-robust and produces the same result set as kStatic; the
  /// paper-replication benches pin kStatic to reproduce §5 exactly.
  /// Ignored when only one shard runs. Under emulate_parallel a kMorsel
  /// run is emulated faithfully: morsels are executed sequentially but
  /// dispatched to the virtual worker with the smallest accumulated
  /// clock, so emulated_parallel_millis models the dynamic schedule the
  /// same way it models the static one.
  Scheduling scheduling = Scheduling::kMorsel;
  /// Run shards sequentially on the calling thread, timing each shard.
  /// `emulated_parallel_millis` then models wall time on num_threads real
  /// cores (shards share nothing, so max-of-shard-times is exact up to
  /// spawn overhead). Used for the scaling experiments on machines with
  /// fewer cores than the paper's server.
  bool emulate_parallel = false;
  /// Batched prefetched probing (DESIGN.md §11): value runs feeding a
  /// variable-key next step are probed in groups of kProbeBatchSize with
  /// predicted first touches prefetched ahead of the searches, so
  /// independent cache misses overlap. Produces byte-identical results,
  /// counters and traces (the per-step search order is unchanged);
  /// automatically disabled when per_shard_limit != 0.
  bool batch_probes = true;
  /// Record every probe value per plan step (Table 6 replay input).
  bool collect_probe_trace = false;
  /// Safety cap for trace memory.
  size_t max_trace_entries = 50000000;
  /// Stop each shard after this many rows (0 = unlimited). The engine
  /// trims the merged result to the plan's LIMIT.
  uint64_t per_shard_limit = 0;
  /// Optional cross-shard LIMIT gate (see LimitGate): stops ALL shards
  /// shortly after `limit_gate->limit` rows exist globally, where
  /// per_shard_limit alone lets every shard produce up to the limit.
  /// Must have limit > 0 when set; rejected by ExecuteShared.
  LimitGate* limit_gate = nullptr;
  /// Required when mode == kVisit.
  RowVisitor visitor;
  /// Cluster slicing (paper §6's full-replication cluster design): this
  /// execution processes only worker `worker_index` of `total_workers`
  /// equal slices of the first step's work range, then shards its slice
  /// across num_threads as usual. Workers share nothing, so running one
  /// execution per worker (on any machine holding a replica) and
  /// concatenating results is equivalent to a single full execution.
  int total_workers = 1;
  int worker_index = 0;
  /// Cooperative cancellation/deadline token, checked on entry and then
  /// every kCancelCheckInterval tuples inside each shard's pipeline. A
  /// default-constructed token never fires. On cancellation Execute
  /// returns the token's Status (Cancelled / DeadlineExceeded) and any
  /// partial results are discarded.
  server::CancellationToken cancel;
  /// Pool used for multi-shard dispatch; nullptr means the process-wide
  /// server::ThreadPool::Shared(). Shards are pool tasks, not per-query
  /// spawned threads.
  server::ThreadPool* pool = nullptr;
};

/// Tuples processed between cancellation-token checks in a shard loop
/// (flag-only check; deadline clock reads are equally amortized).
inline constexpr int kCancelCheckInterval = 2048;

/// Values probed per group by the batched probe loop (ExecOptions::
/// batch_probes): enough independent prefetches to cover one search's
/// memory latency, small enough that the group's run starts are still in
/// cache when stage C descends into them.
inline constexpr size_t kProbeBatchSize = 16;

/// Probe values observed per plan step, in shard order. Step 0 records the
/// first step's constant-key lookup (if any); probe steps record one entry
/// per search into the step's key array.
struct ProbeTrace {
  std::vector<std::vector<TermId>> step_values;
};

struct ExecResult {
  uint64_t row_count = 0;
  size_t column_count = 0;
  /// Rows whose LimitGate slot claim was rejected (the gate was already
  /// saturated when the shard tried to emit). Nonzero means the early
  /// exit actually cut work; 0 without a gate.
  uint64_t rows_skipped_by_limit = 0;
  /// Row-major projected bindings; size = row_count * column_count.
  std::vector<TermId> rows;
  /// step_rows[i] = number of intermediate tuples that survived steps
  /// 0..i (the pipeline's actual per-step cardinalities — the runtime
  /// counterpart of PlanStep::estimated_rows).
  std::vector<uint64_t> step_rows;
  SearchCounters counters;
  /// Per-worker morsel tallies (kMorsel multi-shard runs only): morsels
  /// executed / stolen, first-step items and rows per worker. The spread
  /// of `items` across workers is the load-balance diagnostic the skew
  /// bench reports.
  std::vector<MorselWorkerStats> morsel_workers;
  /// Per-shard execution times (emulate_parallel mode only).
  std::vector<double> shard_millis;
  /// Wall-clock of the whole execution.
  double wall_millis = 0.0;
  /// max(shard_millis) — the shard-sequential model of parallel wall time.
  double emulated_parallel_millis = 0.0;
  ProbeTrace trace;
};

/// Evaluates left-deep plans over a read-only Database with the paper's
/// pipelined, communication-free parallelization: the first step's key
/// range (or, for a constant first key, its value run — Example 3.2) is
/// split across workers; each runs the entire pipeline with private
/// cursors, counters and result buffers. No locks, no queues, no data
/// exchange at tuple granularity. Scheduling::kStatic reproduces the
/// paper's fixed equal-count shards; Scheduling::kMorsel (default) cuts
/// the range into cost-balanced morsels dispensed dynamically with work
/// stealing, which produces the identical result set but stays balanced
/// on skewed data (DESIGN.md §8).
class Executor {
 public:
  /// `delta` (optional) is an immutable pending-write view over `db`
  /// (mut::DeltaView): steps whose predicate has pending inserts/deletes
  /// run through merge cursors — base CSR ∪ delta inserts, minus delta
  /// deletes — while untouched predicates keep the exact read-only code
  /// paths. Both pointers must outlive the Executor; pinning an
  /// mut::MvccSnapshot for the duration is the intended way to get that.
  explicit Executor(const storage::Database* db,
                    const mut::DeltaView* delta = nullptr)
      : db_(db), delta_(delta) {}

  Result<ExecResult> Execute(const query::Plan& plan,
                             const ExecOptions& options = {}) const;

  /// Shared-scan batching: executes several plans whose FIRST step is the
  /// same unbound scan — identical predicate and replica, variable key and
  /// value, neither pre-bound — in one pass over the leading key range.
  /// The range is cut once (static shards or cost-balanced morsels, per
  /// options[0]); every cut is pushed through each member's residual
  /// pipeline with fully private contexts, so per-member results, counters
  /// and step_rows are identical to a solo Execute of that member over the
  /// same cuts. Per-member options control mode / per_shard_limit /
  /// cancellation; scheduling fields (num_threads, strategy, scheduling,
  /// batch eligibility inputs) are taken from options[0] and must match
  /// across members for the cuts to be shared.
  ///
  /// Restrictions (InvalidArgument): members must not be known_empty, must
  /// not use kVisit / emulate_parallel / probe tracing / cluster slicing,
  /// and all leading steps must resolve to the same table replica. Any
  /// member fault or cancellation fails the whole call — callers degrade
  /// to solo execution per member.
  Result<std::vector<ExecResult>> ExecuteShared(
      std::span<const query::Plan* const> plans,
      std::span<const ExecOptions> options) const;

 private:
  const storage::Database* db_;
  const mut::DeltaView* delta_;
};

}  // namespace parj::join

#endif  // PARJ_JOIN_EXECUTOR_H_
