#ifndef PARJ_JOIN_SEARCH_H_
#define PARJ_JOIN_SEARCH_H_

#include <cstdint>
#include <span>

#include "common/memory_policy.h"
#include "common/types.h"
#include "index/id_position_index.h"

namespace parj::join {

/// Returned by all search kernels when the value is absent.
inline constexpr size_t kNotFound = SIZE_MAX;

/// Which lookup method the join uses for probe steps (Table 5's four
/// configurations).
enum class SearchStrategy : uint8_t {
  kBinary = 0,         ///< always binary search
  kAdaptiveBinary = 1, ///< Algorithm 1: sequential vs binary
  kIndex = 2,          ///< always ID-to-Position index lookup
  kAdaptiveIndex = 3,  ///< Algorithm 1 with index instead of binary search
};

const char* SearchStrategyName(SearchStrategy strategy);

/// Per-run tallies of the adaptive method's decisions (Table 6 columns
/// "#Binary" / "#Sequential") plus work metrics.
struct SearchCounters {
  uint64_t binary_searches = 0;
  uint64_t sequential_searches = 0;
  uint64_t sequential_steps = 0;  ///< elements advanced during scans
  uint64_t index_lookups = 0;
  uint64_t run_probes = 0;        ///< membership checks inside value runs

  void Add(const SearchCounters& other) {
    binary_searches += other.binary_searches;
    sequential_searches += other.sequential_searches;
    sequential_steps += other.sequential_steps;
    index_lookups += other.index_lookups;
    run_probes += other.run_probes;
  }

  uint64_t total_searches() const {
    return binary_searches + sequential_searches + index_lookups;
  }
};

/// Binary search over the whole sorted array (the paper deliberately does
/// NOT anchor the range at the cursor: the first probe positions of a
/// whole-array binary search recur across calls and stay cache-resident).
/// `*cursor` is updated to the last accessed position on both hit and miss.
template <typename MemoryPolicy>
size_t BinarySearchWith(std::span<const TermId> array, TermId value,
                        size_t* cursor, MemoryPolicy& mem) {
  size_t lo = 0;
  size_t hi = array.size();
  size_t last = *cursor;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    last = mid;
    TermId probe = mem.Load(&array[mid]);
    if (probe < value) {
      lo = mid + 1;
    } else if (probe > value) {
      hi = mid;
    } else {
      *cursor = mid;
      return mid;
    }
  }
  *cursor = last;
  return kNotFound;
}

/// Directional sequential search continuing from `*cursor` (merge-join-like
/// behaviour). Scans toward `value` in whichever direction it lies;
/// `*cursor` ends at the last accessed position on both hit and miss.
template <typename MemoryPolicy>
size_t SequentialSearchWith(std::span<const TermId> array, TermId value,
                            size_t* cursor, MemoryPolicy& mem,
                            uint64_t* steps_out) {
  if (array.empty()) return kNotFound;
  size_t pos = *cursor;
  if (pos >= array.size()) pos = array.size() - 1;
  uint64_t steps = 0;
  TermId current = mem.Load(&array[pos]);
  if (current < value) {
    while (current < value && pos + 1 < array.size()) {
      ++pos;
      ++steps;
      current = mem.Load(&array[pos]);
    }
  } else if (current > value) {
    while (current > value && pos > 0) {
      --pos;
      ++steps;
      current = mem.Load(&array[pos]);
    }
  }
  *cursor = pos;
  if (steps_out != nullptr) *steps_out += steps;
  return current == value ? pos : kNotFound;
}

/// ID-to-Position lookup. Updates `*cursor` on hit (the found position is
/// the natural continuation point for subsequent sequential scans).
template <typename MemoryPolicy>
size_t IndexSearchWith(std::span<const TermId> array, TermId value,
                       size_t* cursor, const index::IdPositionIndex& index,
                       MemoryPolicy& mem) {
  (void)array;
  size_t pos = index.FindWith(value, mem);
  if (pos != kNotFound) *cursor = pos;
  return pos;
}

/// Algorithm 1 (paper §4.1): chooses sequential search when the arithmetic
/// distance between the element under the cursor and the probe value is at
/// most `threshold` (a per-table value distance derived from the calibrated
/// window size), otherwise falls back to `fallback` (binary search or
/// ID-to-Position lookup).
///
/// `index` may be null unless the strategy is kIndex / kAdaptiveIndex.
template <typename MemoryPolicy>
size_t AdaptiveSearchWith(std::span<const TermId> array, TermId value,
                          size_t* cursor, int64_t threshold,
                          SearchStrategy strategy,
                          const index::IdPositionIndex* index,
                          SearchCounters* counters, MemoryPolicy& mem) {
  if (array.empty()) return kNotFound;
  switch (strategy) {
    case SearchStrategy::kBinary:
      if (counters != nullptr) ++counters->binary_searches;
      return BinarySearchWith(array, value, cursor, mem);
    case SearchStrategy::kIndex:
      if (counters != nullptr) ++counters->index_lookups;
      return IndexSearchWith(array, value, cursor, *index, mem);
    case SearchStrategy::kAdaptiveBinary:
    case SearchStrategy::kAdaptiveIndex: {
      size_t pos = *cursor;
      if (pos >= array.size()) pos = array.size() - 1;
      const int64_t distance = static_cast<int64_t>(mem.Load(&array[pos])) -
                               static_cast<int64_t>(value);
      if (distance <= threshold && distance >= -threshold) {
        if (counters != nullptr) ++counters->sequential_searches;
        return SequentialSearchWith(
            array, value, cursor, mem,
            counters != nullptr ? &counters->sequential_steps : nullptr);
      }
      if (strategy == SearchStrategy::kAdaptiveBinary) {
        if (counters != nullptr) ++counters->binary_searches;
        return BinarySearchWith(array, value, cursor, mem);
      }
      if (counters != nullptr) ++counters->index_lookups;
      return IndexSearchWith(array, value, cursor, *index, mem);
    }
  }
  return kNotFound;
}

/// Convenience non-instrumented wrappers.
size_t BinarySearch(std::span<const TermId> array, TermId value,
                    size_t* cursor);
size_t SequentialSearch(std::span<const TermId> array, TermId value,
                        size_t* cursor, uint64_t* steps_out = nullptr);
size_t AdaptiveSearch(std::span<const TermId> array, TermId value,
                      size_t* cursor, int64_t threshold,
                      SearchStrategy strategy,
                      const index::IdPositionIndex* index,
                      SearchCounters* counters);

/// Plain membership binary search inside a (typically short) sorted value
/// run; no cursor.
bool RunContains(std::span<const TermId> run, TermId value);

}  // namespace parj::join

#endif  // PARJ_JOIN_SEARCH_H_
