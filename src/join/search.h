#ifndef PARJ_JOIN_SEARCH_H_
#define PARJ_JOIN_SEARCH_H_

#include <cstdint>
#include <span>
#include <type_traits>

#include "common/bits.h"
#include "common/memory_policy.h"
#include "common/simd.h"
#include "common/types.h"
#include "index/id_position_index.h"

namespace parj::storage {
struct CompressedReplica;
class ReplicaCursor;
}  // namespace parj::storage

namespace parj::join {

/// Returned by all search kernels when the value is absent.
inline constexpr size_t kNotFound = SIZE_MAX;

/// Which lookup method the join uses for probe steps (Table 5's four
/// configurations).
enum class SearchStrategy : uint8_t {
  kBinary = 0,         ///< always binary search
  kAdaptiveBinary = 1, ///< Algorithm 1: sequential vs binary
  kIndex = 2,          ///< always ID-to-Position index lookup
  kAdaptiveIndex = 3,  ///< Algorithm 1 with index instead of binary search
};

const char* SearchStrategyName(SearchStrategy strategy);

/// Per-run tallies of the adaptive method's decisions (Table 6 columns
/// "#Binary" / "#Sequential") plus work metrics. `sequential_steps` counts
/// ELEMENTS ADVANCED, never vector iterations — a SIMD scan that examines
/// 8 lanes to advance 5 elements adds 5, keeping the column comparable
/// with the paper run whatever kernel tier executed it.
struct SearchCounters {
  uint64_t binary_searches = 0;
  uint64_t sequential_searches = 0;
  uint64_t sequential_steps = 0;  ///< elements advanced during scans
  uint64_t index_lookups = 0;
  uint64_t run_probes = 0;        ///< membership checks inside value runs

  void Add(const SearchCounters& other) {
    binary_searches += other.binary_searches;
    sequential_searches += other.sequential_searches;
    sequential_steps += other.sequential_steps;
    index_lookups += other.index_lookups;
    run_probes += other.run_probes;
  }

  uint64_t total_searches() const {
    return binary_searches + sequential_searches + index_lookups;
  }
};

/// Default gallop cap (in key-array positions) for binary searches issued
/// without replica metadata: 4x the paper's default 200-position window,
/// rounded to a power of two.
inline constexpr size_t kDefaultGallopCap = 1024;

/// Bracket width (elements) below which the binary kernel's shrink loop
/// switches from branchy descent to conditional moves: 16 KiB of keys —
/// roughly the point where probes stop missing cache and mispredict cost
/// overtakes memory latency (see the BinarySearchWith Phase 2 comment).
inline constexpr size_t kCmovRange = 4096;

/// Converts a calibrated window size (positions) into the gallop cap used
/// by the two-phase binary kernel: the gallop phase abandons its bracket
/// and restarts on the whole array once the cursor-relative stride exceeds
/// ~4 windows. Beyond that distance the probe is cache-cold either way,
/// and a capped gallop wastes at most log2(cap) near-cursor (cache-hot)
/// probes.
inline size_t GallopCapForWindow(double window_positions) {
  double cap = window_positions * 4.0;
  if (cap < 64.0) cap = 64.0;
  if (cap > 65536.0) cap = 65536.0;
  return static_cast<size_t>(NextPowerOfTwo(static_cast<uint64_t>(cap)));
}

/// The pre-vectorization binary search (whole-array, branchy, early exit
/// on equality), kept as the calibration/bench baseline and as the
/// reference for differential tests. `*cursor` is updated to the last
/// accessed position on both hit and miss.
template <typename MemoryPolicy>
size_t BranchyBinarySearchWith(std::span<const TermId> array, TermId value,
                               size_t* cursor, MemoryPolicy& mem) {
  size_t lo = 0;
  size_t hi = array.size();
  size_t last = *cursor;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    last = mid;
    TermId probe = mem.Load(&array[mid]);
    if (probe < value) {
      lo = mid + 1;
    } else if (probe > value) {
      hi = mid;
    } else {
      *cursor = mid;
      return mid;
    }
  }
  *cursor = last;
  return kNotFound;
}

/// The production binary kernel (DESIGN.md §11): a branchless two-phase
/// lower-bound search.
///
/// Phase 1 (bracket): one probe at the gallop-cap edge classifies the
/// probe. Near probes (value within the cap window of the cursor) gallop
/// from the cursor at strides 1, 2, 4, ... — correlated probe sequences,
/// the workload Algorithm 1 exists for, bracket within a few
/// cache-resident lines. Far probes skip the gallop entirely: the edge
/// probe alone discharges the window, so an uncorrelated probe costs one
/// extra load instead of log2(cap) dependent cache misses.
///
/// Phase 2 (shrink): a lower-bound halving loop over the bracket, run in
/// two regimes with an IDENTICAL midpoint sequence (mid is a pure function
/// of (lo, hi)). While the bracket spans more than kCmovRange elements the
/// probes are likely cache misses, and the descent stays BRANCHY — the
/// speculated path keeps issuing the next loads, overlapping misses in a
/// way a conditional-move data dependency would serialize. Once the
/// bracket is cache-resident the loop switches to conditional moves, where
/// mispredicted data-dependent branches (the dominant cost on resident
/// data) never flush the pipeline. Both regimes also prefetch the two
/// candidate next-next midpoints. Prefetches bypass the MemoryPolicy
/// (DirectMemory builds only), so instrumented cache-sim replay observes
/// the same Load sequence either way.
///
/// Returns the position of `value` (its first occurrence, matching
/// std::lower_bound) or kNotFound. `*cursor` lands on the hit position, or
/// on the last probed position on a miss — always in bounds. The kernel is
/// a pure function of (contents, value, incoming cursor, gallop_cap), so
/// scalar-fallback and SIMD builds follow byte-identical cursor
/// trajectories.
template <typename MemoryPolicy>
size_t BinarySearchWith(std::span<const TermId> array, TermId value,
                        size_t* cursor, MemoryPolicy& mem,
                        size_t gallop_cap = kDefaultGallopCap) {
  const size_t n = array.size();
  if (n == 0) return kNotFound;
  const size_t start = *cursor < n ? *cursor : n - 1;
  size_t last = start;
  size_t lo = 0;
  size_t hi = n;
  const TermId anchor = mem.Load(&array[start]);
  if (anchor == value) {
    // Distinct-key arrays hit exactly here; duplicate-key arrays fall
    // through to the shrink loop below for the std::lower_bound position.
    if (start == 0 || mem.Load(&array[start - 1]) != value) {
      *cursor = start;
      return start;
    }
  }
  if (gallop_cap < 1) gallop_cap = 1;
  if (anchor < value) {
    lo = start + 1;
    const size_t room = n - 1 - start;
    const size_t edge = start + (gallop_cap < room ? gallop_cap : room);
    if (edge > start) {
      last = edge;
      if (mem.Load(&array[edge]) < value) {
        lo = edge + 1;  // far probe: the whole window is below value
      } else {
        hi = edge;  // near probe: gallop brackets inside the window
        size_t stride = 1;
        while (start + stride < edge) {
          const size_t pos = start + stride;
          last = pos;
          if (mem.Load(&array[pos]) >= value) {
            hi = pos;
            break;
          }
          lo = pos + 1;
          stride <<= 1;
        }
      }
    }
  } else {
    hi = start;
    const size_t edge = start - (gallop_cap < start ? gallop_cap : start);
    if (edge < start) {
      last = edge;
      if (mem.Load(&array[edge]) >= value) {
        hi = edge;  // far probe: the lower bound is at or before the edge
      } else {
        lo = edge + 1;  // near probe: gallop brackets inside the window
        size_t stride = 1;
        while (stride < start - edge) {
          const size_t pos = start - stride;
          last = pos;
          if (mem.Load(&array[pos]) < value) {
            lo = pos + 1;
            break;
          }
          hi = pos;
          stride <<= 1;
        }
      }
    }
  }
  while (hi - lo > kCmovRange) {
    const size_t half = (hi - lo) / 2;
    const size_t mid = lo + half;
    if constexpr (std::is_same_v<MemoryPolicy, DirectMemory>) {
      __builtin_prefetch(&array[lo + half / 2]);
      __builtin_prefetch(&array[mid + half / 2]);
    }
    last = mid;
    if (mem.Load(&array[mid]) < value) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  while (lo < hi) {
    const size_t half = (hi - lo) / 2;
    const size_t mid = lo + half;
    if constexpr (std::is_same_v<MemoryPolicy, DirectMemory>) {
      if (half >= 32) {
        __builtin_prefetch(&array[lo + half / 2]);
        __builtin_prefetch(&array[mid + half / 2]);
      }
    }
    last = mid;
    const TermId probe = mem.Load(&array[mid]);
    const bool lt = probe < value;
    lo = lt ? mid + 1 : lo;
    hi = lt ? hi : mid;
  }
  if (lo < n && mem.Load(&array[lo]) == value) {
    *cursor = lo;
    return lo;
  }
  *cursor = last;
  return kNotFound;
}

/// Directional sequential search continuing from `*cursor` (merge-join-like
/// behaviour). Scans toward `value` in whichever direction it lies;
/// `*cursor` ends at the last accessed position on both hit and miss.
/// This is the scalar reference; the DirectMemory overload below runs the
/// same scan through the SIMD primitives with identical stop positions and
/// step counts.
template <typename MemoryPolicy>
size_t SequentialSearchWith(std::span<const TermId> array, TermId value,
                            size_t* cursor, MemoryPolicy& mem,
                            uint64_t* steps_out) {
  if (array.empty()) return kNotFound;
  size_t pos = *cursor;
  if (pos >= array.size()) pos = array.size() - 1;
  uint64_t steps = 0;
  TermId current = mem.Load(&array[pos]);
  if (current < value) {
    while (current < value && pos + 1 < array.size()) {
      ++pos;
      ++steps;
      current = mem.Load(&array[pos]);
    }
  } else if (current > value) {
    while (current > value && pos > 0) {
      --pos;
      ++steps;
      current = mem.Load(&array[pos]);
    }
  }
  *cursor = pos;
  if (steps_out != nullptr) *steps_out += steps;
  return current == value ? pos : kNotFound;
}

/// Elements the DirectMemory sequential overload steps with a plain
/// scalar loop before handing the remainder to the vector scan: a scan
/// that stops within a few elements of the cursor is pure overhead for a
/// 4/8-lane kernel (lane setup costs more than the scan), and most
/// Algorithm 1 scans stop inside one or two cache lines.
inline constexpr size_t kScanPrologue = 12;

namespace detail {

/// Out-of-line continuations (search.cc) for scans that outrun the scalar
/// prologue: they run the remainder through the vector kernels and finish
/// the cursor/steps bookkeeping. Split out so the overload below stays a
/// LEAF function — tail-calling these keeps its short-scan path free of a
/// stack frame, which is most of the cost of an 8-element cache-resident
/// scan. noinline keeps same-TU builds from folding them back in. Callers
/// guarantee the prologue was exhausted: forward requires
/// start + kScanPrologue + 1 < n, backward requires start > kScanPrologue.
[[gnu::noinline]] size_t SequentialVecForward(const TermId* data, size_t n,
                                              size_t start, TermId value,
                                              size_t* cursor,
                                              uint64_t* steps_out);
[[gnu::noinline]] size_t SequentialVecBackward(const TermId* data,
                                               size_t start, TermId value,
                                               size_t* cursor,
                                               uint64_t* steps_out);

}  // namespace detail

/// Vectorized fast path for the production (DirectMemory) policy: the scan
/// compares 4/8 keys per instruction but stops at EXACTLY the scalar stop
/// position, and `steps_out` accumulates elements advanced
/// (|stop - start|), never vector iterations.
inline size_t SequentialSearchWith(std::span<const TermId> array, TermId value,
                                   size_t* cursor, DirectMemory&,
                                   uint64_t* steps_out) {
  if (array.empty()) return kNotFound;
  const size_t n = array.size();
  const size_t start = *cursor < n ? *cursor : n - 1;
  const TermId* data = array.data();
  size_t stop = start;
  if (data[start] < value) {
    const size_t last = n - 1;
    const size_t pro =
        last - start > kScanPrologue ? start + kScanPrologue : last;
    size_t i = start;
    while (i < pro && data[i + 1] < value) ++i;
    if (i < pro) {
      stop = i + 1;  // the scalar steps found the stop (data[i + 1] >= value)
    } else if (pro == last) {
      stop = last;  // exhausted the array without reaching value
    } else {
      return detail::SequentialVecForward(data, n, start, value, cursor,
                                          steps_out);
    }
  } else if (data[start] > value) {
    const size_t pro = start > kScanPrologue ? start - kScanPrologue : 0;
    size_t i = start;
    while (i > pro && data[i - 1] > value) --i;
    if (i > pro) {
      stop = i - 1;  // the scalar steps found the stop (data[i - 1] <= value)
    } else if (pro == 0) {
      stop = 0;  // exhausted the array without reaching value
    } else {
      return detail::SequentialVecBackward(data, start, value, cursor,
                                           steps_out);
    }
  }
  if (steps_out != nullptr) {
    *steps_out += stop >= start ? stop - start : start - stop;
  }
  *cursor = stop;
  return data[stop] == value ? stop : kNotFound;
}

/// ID-to-Position lookup. Updates `*cursor` on hit (the found position is
/// the natural continuation point for subsequent sequential scans).
template <typename MemoryPolicy>
size_t IndexSearchWith(std::span<const TermId> array, TermId value,
                       size_t* cursor, const index::IdPositionIndex& index,
                       MemoryPolicy& mem) {
  (void)array;
  size_t pos = index.FindWith(value, mem);
  if (pos != kNotFound) *cursor = pos;
  return pos;
}

/// Algorithm 1 (paper §4.1): chooses sequential search when the arithmetic
/// distance between the element under the cursor and the probe value is at
/// most `threshold` (a per-table value distance derived from the calibrated
/// window size), otherwise falls back to `fallback` (binary search or
/// ID-to-Position lookup). `gallop_cap` bounds the binary kernel's gallop
/// phase (GallopCapForWindow of the same calibrated window).
///
/// `index` may be null unless the strategy is kIndex / kAdaptiveIndex.
template <typename MemoryPolicy>
size_t AdaptiveSearchWith(std::span<const TermId> array, TermId value,
                          size_t* cursor, int64_t threshold,
                          SearchStrategy strategy,
                          const index::IdPositionIndex* index,
                          SearchCounters* counters, MemoryPolicy& mem,
                          size_t gallop_cap = kDefaultGallopCap) {
  if (array.empty()) return kNotFound;
  switch (strategy) {
    case SearchStrategy::kBinary:
      if (counters != nullptr) ++counters->binary_searches;
      return BinarySearchWith(array, value, cursor, mem, gallop_cap);
    case SearchStrategy::kIndex:
      if (counters != nullptr) ++counters->index_lookups;
      return IndexSearchWith(array, value, cursor, *index, mem);
    case SearchStrategy::kAdaptiveBinary:
    case SearchStrategy::kAdaptiveIndex: {
      size_t pos = *cursor;
      if (pos >= array.size()) pos = array.size() - 1;
      const int64_t distance = static_cast<int64_t>(mem.Load(&array[pos])) -
                               static_cast<int64_t>(value);
      if (distance <= threshold && distance >= -threshold) {
        if (counters != nullptr) ++counters->sequential_searches;
        return SequentialSearchWith(
            array, value, cursor, mem,
            counters != nullptr ? &counters->sequential_steps : nullptr);
      }
      if (strategy == SearchStrategy::kAdaptiveBinary) {
        if (counters != nullptr) ++counters->binary_searches;
        return BinarySearchWith(array, value, cursor, mem, gallop_cap);
      }
      if (counters != nullptr) ++counters->index_lookups;
      return IndexSearchWith(array, value, cursor, *index, mem);
    }
  }
  return kNotFound;
}

/// Convenience non-instrumented wrappers.
size_t BinarySearch(std::span<const TermId> array, TermId value,
                    size_t* cursor, size_t gallop_cap = kDefaultGallopCap);
size_t BranchyBinarySearch(std::span<const TermId> array, TermId value,
                           size_t* cursor);
size_t SequentialSearch(std::span<const TermId> array, TermId value,
                        size_t* cursor, uint64_t* steps_out = nullptr);
/// The scalar reference scan, bypassing the SIMD dispatch (benches and
/// differential tests).
size_t SequentialSearchScalar(std::span<const TermId> array, TermId value,
                              size_t* cursor, uint64_t* steps_out = nullptr);
size_t AdaptiveSearch(std::span<const TermId> array, TermId value,
                      size_t* cursor, int64_t threshold,
                      SearchStrategy strategy,
                      const index::IdPositionIndex* index,
                      SearchCounters* counters,
                      size_t gallop_cap = kDefaultGallopCap);

/// Plain membership check inside a (typically short) sorted value run; no
/// cursor. Short runs use a vectorized equality scan, long runs a binary
/// search — the boolean is identical either way.
bool RunContains(std::span<const TermId> run, TermId value);

// ---- Compressed-replica probe kernels (DESIGN.md §13) -------------------
//
// A compressed probe must land on the SAME cursor position and bump the
// SAME counters as its flat twin, or compressed and uncompressed stores
// would diverge in SearchCounters (and, through adaptive decisions, in
// probe work). The flat kernels' outputs are pure functions of the
// array CONTENT — specifically of the lower-bound position of the probe
// value and whether it is an exact hit — because replica key arrays are
// strictly increasing: every comparison a[p] < value is equivalent to
// p < lower_bound. So the compressed kernels compute (lower_bound, found)
// with a two-level search (upper_bound on block minima + one decoded
// block, cached in the ReplicaCursor) and then REPLAY the flat kernel's
// probe trajectory arithmetically, touching no further memory.

/// Replays BinarySearchWith's exact trajectory on a strictly-increasing
/// array of length `n` from the content facts alone: same hit position,
/// same miss `*cursor` (the last probed position). Exposed for
/// differential tests against the flat kernel.
size_t BinarySearchReplay(size_t n, size_t lower_bound_pos, bool found,
                          size_t* cursor,
                          size_t gallop_cap = kDefaultGallopCap);

/// BinarySearchWith over a compressed replica's keys.
size_t CompressedBinarySearch(const storage::CompressedReplica& replica,
                              TermId value, size_t* cursor,
                              storage::ReplicaCursor* rc,
                              size_t gallop_cap = kDefaultGallopCap);

/// SequentialSearchWith over a compressed replica's keys. Stop positions
/// and step counts match the flat scan (they are content-pure: forward
/// stops at min(lower_bound, n-1), backward at lower_bound on a hit and
/// max(lower_bound-1, 0) on a miss), so no per-element walk happens.
size_t CompressedSequentialSearch(const storage::CompressedReplica& replica,
                                  TermId value, size_t* cursor,
                                  storage::ReplicaCursor* rc,
                                  uint64_t* steps_out);

/// AdaptiveSearchWith over a compressed replica: identical strategy
/// dispatch, counter increments, and cursor trajectory. The adaptive
/// distance check reads the key under the cursor through the cursor's
/// cached block decode; index lookups never touch the key array at all.
size_t CompressedAdaptiveSearch(const storage::CompressedReplica& replica,
                                TermId value, size_t* cursor,
                                int64_t threshold, SearchStrategy strategy,
                                const index::IdPositionIndex* index,
                                SearchCounters* counters,
                                storage::ReplicaCursor* rc,
                                size_t gallop_cap = kDefaultGallopCap);

}  // namespace parj::join

#endif  // PARJ_JOIN_SEARCH_H_
