#include "join/trace_replay.h"

#include "sim/instrumented_memory.h"

namespace parj::join {

Result<ReplayStats> ReplaySearchTrace(const storage::Database& db,
                                      const query::Plan& plan,
                                      const ProbeTrace& trace,
                                      SearchStrategy strategy,
                                      const sim::CacheHierarchyConfig& config) {
  if (trace.step_values.size() != plan.steps.size()) {
    return Status::InvalidArgument(
        "trace step count does not match plan step count");
  }
  const bool needs_index = strategy == SearchStrategy::kIndex ||
                           strategy == SearchStrategy::kAdaptiveIndex;

  ReplayStats stats;
  sim::CacheHierarchy cache(config);
  sim::InstrumentedMemory mem{&cache};

  for (size_t s = 0; s < plan.steps.size(); ++s) {
    const auto& values = trace.step_values[s];
    if (values.empty()) continue;
    const query::PlanStep& ps = plan.steps[s];
    const storage::PropertyEntry* entry = db.FindEntry(ps.predicate);
    if (entry == nullptr) {
      return Status::InvalidArgument("plan references unknown predicate");
    }
    const storage::TableReplica& replica = entry->table.replica(ps.replica);
    const storage::ReplicaMeta& meta = entry->meta(ps.replica);
    const index::IdPositionIndex* index = nullptr;
    if (needs_index) {
      if (!meta.has_index) {
        return Status::InvalidArgument(
            "replay strategy requires the ID-to-Position index");
      }
      index = &meta.id_index;
    }
    // Paper §5.2.2: the binary-search threshold is used for both replay
    // strategies so the adaptive decisions coincide.
    const int64_t threshold = meta.threshold_binary;
    const size_t gallop_cap = GallopCapForWindow(meta.window_binary);

    // A compressed replica has no flat key array to instrument; the replay
    // probes its decoded (flat-equivalent) keys instead, which preserves
    // the probe trajectory and counters the flat store would produce.
    std::vector<TermId> decode_scratch;
    const std::span<const TermId> keys =
        replica.is_compressed() ? replica.DecodedKeys(&decode_scratch)
                                : replica.keys();
    size_t cursor = 0;
    for (TermId value : values) {
      AdaptiveSearchWith(keys, value, &cursor, threshold, strategy,
                         index, &stats.counters, mem, gallop_cap);
    }
  }
  stats.cache = cache.stats();
  return stats;
}

}  // namespace parj::join
