#ifndef PARJ_JOIN_AGGREGATE_H_
#define PARJ_JOIN_AGGREGATE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "query/plan.h"

namespace parj::server {
class ThreadPool;
}  // namespace parj::server

namespace parj::join {

/// Parallel aggregation strategy (DESIGN.md §16). All four produce the
/// identical canonical output (groups sorted by key TermIds); they differ
/// only in how per-worker updates meet: thread-local tables merged
/// centrally, radix-partitioned tables merged per partition without
/// contention, one lock-free shared table updated with CAS/fetch_add, or
/// an adaptive policy that starts thread-local and re-buckets into radix
/// partitions when the observed group cardinality crosses a threshold.
enum class AggStrategy : uint8_t {
  kLocalHash = 0,
  kRadix = 1,
  kShared = 2,
  kAdaptive = 3,
};

const char* AggStrategyName(AggStrategy s);
/// Parses "local" | "radix" | "shared" | "adaptive"; false on anything
/// else (*out untouched).
bool ParseAggStrategy(const char* name, AggStrategy* out);

/// Number of radix partitions (top bits of the group-key hash — the
/// GroupTable directories probe with the low bits, so using the top bits
/// keeps per-partition probes well distributed). Enough
/// that per-partition merge parallelism covers any realistic core count,
/// few enough that per-worker partition tables stay cheap when empty.
inline constexpr size_t kAggRadixPartitions = 64;

/// Group-count threshold at which an adaptive worker re-buckets its
/// thread-local table into radix partitions and continues partitioned.
inline constexpr size_t kAggAdaptiveThreshold = 4096;

/// Canonical aggregation output: one row per group, sorted ascending by
/// the group-key TermId tuple. Row layout is `group_cols` key cells
/// (TermIds widened to u64) followed by one cell per aggregate — counts
/// raw u64, SUM/MIN/MAX doubles bit-cast (NaN = no numeric input).
struct AggregateOutput {
  size_t rows = 0;
  size_t width = 0;
  std::vector<uint64_t> cells;  ///< row-major, rows * width
};

/// Open-addressing group hash table with flat key/cell storage. Not
/// thread-safe; each worker owns its own instances.
class GroupTable {
 public:
  GroupTable() = default;
  GroupTable(int group_cols, std::span<const uint64_t> init_cells);

  /// Row index for `key` (group_cols TermIds), inserting a fresh row with
  /// the initial cell values when absent.
  size_t FindOrInsert(const TermId* key);
  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  // data() + offset: group_cols / naggs may be 0 (global aggregate,
  // GROUP BY without aggregates), where operator[] would be out of range.
  const TermId* KeyAt(size_t row) const {
    return keys_.data() + row * group_cols_;
  }
  uint64_t* CellsAt(size_t row) { return cells_.data() + row * naggs_; }
  const uint64_t* CellsAt(size_t row) const {
    return cells_.data() + row * naggs_;
  }

 private:
  void Grow();

  int group_cols_ = 0;
  int naggs_ = 0;
  std::vector<uint64_t> init_cells_;
  std::vector<uint64_t> hash_;  ///< open-addressing directory, 0 = empty
  std::vector<uint32_t> row_;   ///< parallel to hash_, row index + 1
  size_t mask_ = 0;
  size_t count_ = 0;
  std::vector<TermId> keys_;     ///< row-major, count_ * group_cols_
  std::vector<uint64_t> cells_;  ///< row-major, count_ * naggs_
};

/// Morsel-parallel GROUP BY aggregator. One instance serves one query
/// execution: the engine installs `Accumulate` as the executor's
/// RowVisitor sink (ResultMode::kVisit), so aggregation overlaps the join
/// scan instead of materializing rows first. `worker` is the executor
/// shard id — each worker slot's state is private (cache-line separated),
/// except under AggStrategy::kShared where updates meet in one lock-free
/// table. `Finish` merges, canonicalizes (groups sorted by key TermIds)
/// and returns the output; it checks the `agg.merge` failpoint so a
/// faulting merge fails only its own query.
class Aggregator {
 public:
  /// `spec` and `numeric_values` must outlive the Aggregator;
  /// `numeric_values` may be null when no SUM/MIN/MAX is present.
  /// `num_workers` is the executor shard count (ExecOptions::num_threads).
  Aggregator(const query::AggregateSpec* spec,
             const std::vector<double>* numeric_values, AggStrategy strategy,
             size_t num_workers);

  /// Folds one executor row into worker `worker`'s state. Thread-safe for
  /// distinct workers (and, under kShared, across workers).
  void Accumulate(size_t worker, std::span<const TermId> row);

  /// Merges every worker's state into the canonical output. `pool` runs
  /// the per-partition merges of the radix/adaptive paths (null = shared
  /// pool). Call exactly once, after all Accumulate calls completed.
  Result<AggregateOutput> Finish(server::ThreadPool* pool);

  /// True when any adaptive worker re-bucketed into radix partitions.
  bool adapted() const;

 private:
  struct alignas(64) WorkerState {
    GroupTable local;
    bool radix = false;
    std::vector<GroupTable> parts;  ///< kAggRadixPartitions when radix
  };

  void UpdateCells(uint64_t* cells, std::span<const TermId> row) const;
  void AccumulateShared(WorkerState& w, std::span<const TermId> row);
  void ConvertToRadix(WorkerState* w) const;
  void MergeRow(GroupTable* dst, const TermId* key,
                const uint64_t* cells) const;
  void MergeTableInto(const GroupTable& src, GroupTable* dst) const;
  size_t PartitionOf(const TermId* key) const;

  const query::AggregateSpec* spec_;
  const std::vector<double>* numeric_values_;
  AggStrategy strategy_;
  int group_cols_ = 0;
  int naggs_ = 0;
  std::vector<uint64_t> init_cells_;
  std::vector<std::unique_ptr<WorkerState>> workers_;

  /// Lock-free shared table (kShared with exactly one group column; other
  /// shapes fall back to the thread-local path). Slot stride is
  /// 1 + naggs_ cells: [key, agg cells...]; key 0 = empty (valid TermIds
  /// are >= 1). Cells are pre-initialized at construction, so a claimed
  /// slot is update-ready the instant its key CAS publishes.
  bool shared_enabled_ = false;
  size_t shared_capacity_ = 0;
  size_t shared_mask_ = 0;
  size_t shared_stride_ = 0;
  size_t shared_max_used_ = 0;
  std::atomic<size_t> shared_used_{0};
  std::vector<std::atomic<uint64_t>> shared_slots_;
};

/// Per-worker bounded top-k collector for ORDER BY ... LIMIT k push-down
/// over plain (non-aggregate) TermId rows: each worker keeps at most
/// `limit` rows in a bounded heap ordered by the ORDER BY keys (with a
/// full-row tiebreak making the order total), and Finish merges the
/// heaps into the globally best `limit` rows, fully sorted. Memory is
/// O(workers * limit * width) regardless of result size.
class TopK {
 public:
  TopK(size_t width, size_t limit, std::span<const query::OrderKey> keys,
       size_t num_workers);

  /// Offers one row to worker `worker`'s heap. Thread-safe for distinct
  /// workers.
  void Add(size_t worker, std::span<const TermId> row);

  /// The globally best `limit` rows across all workers, sorted. Row-major
  /// flat TermIds, width as constructed.
  std::vector<TermId> Finish() const;

  /// Total order over rows: ORDER BY keys first, then every column
  /// ascending as tiebreak.
  bool RowLess(const TermId* a, const TermId* b) const;

 private:
  struct alignas(64) WorkerHeap {
    /// Flat kept rows (size * width); `heap` indexes them as a max-heap
    /// by RowLess (root = worst kept row).
    std::vector<TermId> rows;
    std::vector<uint32_t> heap;
  };

  size_t width_;
  size_t limit_;
  std::vector<query::OrderKey> keys_;
  std::vector<std::unique_ptr<WorkerHeap>> workers_;
};

/// Kind-aware three-way compare of two output cells: kTerm compares the
/// widened TermIds, kCount unsigned, kNumber as doubles with NaN (empty
/// MIN/MAX) ordered after every number. Returns <0, 0, >0.
int CompareAggCell(uint64_t a, uint64_t b, query::ColumnKind kind);

}  // namespace parj::join

#endif  // PARJ_JOIN_AGGREGATE_H_
