#ifndef PARJ_JOIN_TRACE_REPLAY_H_
#define PARJ_JOIN_TRACE_REPLAY_H_

#include "common/status.h"
#include "join/executor.h"
#include "sim/cache.h"

namespace parj::join {

/// Result of replaying a query's search stream through the cache model.
struct ReplayStats {
  SearchCounters counters;
  sim::CacheStats cache;
};

/// Replays the per-step probe values recorded by an execution
/// (`ExecOptions::collect_probe_trace`) through the search kernels with an
/// instrumented memory policy, reproducing Table 6's measurement: the
/// exact cycles and cache misses spent *inside the lookup procedure*,
/// comparing binary search against the ID-to-Position index.
///
/// Per the paper (§5.2.2), the adaptive threshold is kept at the
/// binary-search calibration for both strategies, so the sequential /
/// fallback decision sequence is identical and only the fallback method
/// differs. The probe value stream itself is strategy-independent (every
/// strategy visits the same tuples), which is what makes offline replay
/// exact.
Result<ReplayStats> ReplaySearchTrace(const storage::Database& db,
                                      const query::Plan& plan,
                                      const ProbeTrace& trace,
                                      SearchStrategy strategy,
                                      const sim::CacheHierarchyConfig& config =
                                          sim::CacheHierarchyConfig());

}  // namespace parj::join

#endif  // PARJ_JOIN_TRACE_REPLAY_H_
