#ifndef PARJ_JOIN_MORSEL_H_
#define PARJ_JOIN_MORSEL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace parj::join {

/// One contiguous slice [begin, end) of the first step's work source
/// (key positions for a variable first key, value-run positions for a
/// constant one). Morsels are cut cost-balanced — by cumulative run
/// length from the CSR offsets, not by key count — so a skewed property
/// table still yields morsels of roughly equal work.
struct Morsel {
  size_t begin = 0;
  size_t end = 0;
  size_t size() const { return end - begin; }
};

/// Per-worker tallies of dynamic morsel execution, merged into
/// ExecResult::morsel_workers.
struct MorselWorkerStats {
  uint64_t morsels = 0;  ///< morsels this worker executed
  uint64_t stolen = 0;   ///< of those, claimed from another worker's queue
  uint64_t items = 0;    ///< first-step work items (keys or run values)
  uint64_t rows = 0;     ///< result rows this worker produced
};

/// Lock-free dispenser behind the morsel-driven executor (DESIGN.md §8).
///
/// The fixed morsel list is partitioned into per-worker local queues of
/// contiguous morsel index ranges (preserving the paper's sequential key
/// order within a worker as long as no stealing happens). Each queue is a
/// cache-line-aligned atomic cursor; a worker pops from its own queue with
/// one fetch_add, and when it drains, scans the other queues and steals
/// from the first non-empty one the same way. Every morsel is claimed
/// exactly once; claiming is wait-free, and there is no communication at
/// tuple granularity — the paper's zero-communication pipeline is intact
/// *within* each morsel.
class MorselScheduler {
 public:
  MorselScheduler(std::vector<Morsel> morsels, size_t num_workers);

  MorselScheduler(const MorselScheduler&) = delete;
  MorselScheduler& operator=(const MorselScheduler&) = delete;

  /// Claims the next morsel for `worker`: its own queue first, then — once
  /// that drains — a round-robin steal sweep over the other queues.
  /// Returns false when every queue is empty. `*stolen` reports whether
  /// the morsel came from a foreign queue.
  bool Next(size_t worker, Morsel* out, bool* stolen);

  size_t morsel_count() const { return morsels_.size(); }
  size_t worker_count() const { return num_workers_; }

  /// Builds `parts` equal-count morsels over [begin, end) — the cut used
  /// for constant-key value runs, where every item costs one downstream
  /// pipeline descent. For key ranges use TableReplica::CostBalancedSplit
  /// and MorselsFromCuts instead.
  static std::vector<Morsel> EqualSplit(size_t begin, size_t end,
                                        size_t parts);

  /// Converts the cut-position form (size parts+1, as returned by
  /// CostBalancedSplit) into morsels, dropping empty ranges.
  static std::vector<Morsel> MorselsFromCuts(const std::vector<size_t>& cuts);

 private:
  /// One worker's local queue: morsel indices [next, end). Aligned so
  /// neighbouring workers' cursors never share a cache line.
  struct alignas(64) LocalQueue {
    std::atomic<uint64_t> next{0};
    uint64_t end = 0;
  };

  std::vector<Morsel> morsels_;
  std::unique_ptr<LocalQueue[]> queues_;
  size_t num_workers_ = 1;
};

}  // namespace parj::join

#endif  // PARJ_JOIN_MORSEL_H_
