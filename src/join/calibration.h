#ifndef PARJ_JOIN_CALIBRATION_H_
#define PARJ_JOIN_CALIBRATION_H_

#include <cstdint>
#include <span>

#include "common/types.h"
#include "index/id_position_index.h"

namespace parj::join {

/// Which point-lookup method sequential search is being calibrated against.
enum class CalibrationMode : uint8_t {
  kVersusBinarySearch = 0,
  kVersusIndexLookup = 1,
};

/// Parameters for Algorithm 2 (paper §4.1).
struct CalibrationOptions {
  /// NoOfSearches: timed lookups per calibration step.
  size_t searches_per_step = 4096;
  /// StartingWindowSize: initial window (in array positions).
  double starting_window = 64.0;
  /// Threshold: stop when max(t_a,t_b)/min(t_a,t_b) <= stop_ratio.
  double stop_ratio = 1.10;
  /// Safety bound on calibration iterations (the paper's loop has no bound;
  /// timing noise can make it oscillate).
  int max_iterations = 24;
  /// Per-step multiplicative adjustment is clamped to this factor to damp
  /// oscillation from noisy timings.
  double max_adjust_factor = 4.0;
  /// Worker threads for Database::Calibrate's per-replica loop (each
  /// replica's Algorithm-2 run is independent). <=1 calibrates serially.
  /// Concurrent calibration adds timing noise on busy machines, but the
  /// algorithm is self-damping (stop_ratio / max_adjust_factor), so the
  /// resulting windows stay in the same regime.
  int threads = 1;
  /// Measure the pre-vectorization kernels (branchy binary search +
  /// scalar sequential scan) instead of the production ones. Only used by
  /// calibration_bench for old-vs-new side-by-side reporting; production
  /// calibration always times the kernels the executor will actually run,
  /// so the crossover window reflects their real costs.
  bool legacy_kernels = false;
};

/// Result of one calibration run.
struct CalibrationResult {
  /// Window size in array positions: probes whose expected position
  /// distance from the cursor is below this are cheaper sequentially.
  double window_positions = 0.0;
  /// The window converted to a value distance via the uniform-gap
  /// assumption (what Algorithm 1 compares against).
  int64_t threshold_value = 0;
  int iterations = 0;
  /// Final timing ratio at termination.
  double final_ratio = 0.0;
};

/// Implements Algorithm 2: measures, for increasing/decreasing window
/// sizes, the time of `searches_per_step` strided lookups using sequential
/// search versus the fallback method, and adjusts the window by the timing
/// ratio until the two are within `stop_ratio` of each other.
///
/// `index` is required for kVersusIndexLookup and ignored otherwise.
/// Degenerate arrays (fewer than 4 keys) yield a fixed small window.
CalibrationResult CalibrateWindow(std::span<const TermId> array,
                                  CalibrationMode mode,
                                  const index::IdPositionIndex* index,
                                  const CalibrationOptions& options = {});

/// Converts a window size in positions to the value-distance threshold used
/// by Algorithm 1: window * average key gap, rounded up, at least 1.
int64_t WindowToValueThreshold(double window_positions, double average_gap);

}  // namespace parj::join

#endif  // PARJ_JOIN_CALIBRATION_H_
