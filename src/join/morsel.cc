#include "join/morsel.h"

#include <algorithm>

#include "common/logging.h"

namespace parj::join {

MorselScheduler::MorselScheduler(std::vector<Morsel> morsels,
                                 size_t num_workers)
    : morsels_(std::move(morsels)),
      num_workers_(std::max<size_t>(1, num_workers)) {
  queues_.reset(new LocalQueue[num_workers_]);
  const size_t n = morsels_.size();
  for (size_t w = 0; w < num_workers_; ++w) {
    queues_[w].next.store(n * w / num_workers_, std::memory_order_relaxed);
    queues_[w].end = n * (w + 1) / num_workers_;
  }
}

bool MorselScheduler::Next(size_t worker, Morsel* out, bool* stolen) {
  PARJ_DCHECK(worker < num_workers_);
  LocalQueue& own = queues_[worker];
  // Own queue: a single uncontended-in-the-common-case fetch_add. Claiming
  // past `end` is harmless (the index is simply not handed out), so no CAS
  // loop is needed.
  if (own.next.load(std::memory_order_relaxed) < own.end) {
    const uint64_t i = own.next.fetch_add(1, std::memory_order_relaxed);
    if (i < own.end) {
      *out = morsels_[i];
      *stolen = false;
      return true;
    }
  }
  // Steal sweep, starting at the right-hand neighbour so thieves spread
  // out instead of all raiding queue 0.
  for (size_t k = 1; k < num_workers_; ++k) {
    LocalQueue& victim = queues_[(worker + k) % num_workers_];
    if (victim.next.load(std::memory_order_relaxed) >= victim.end) continue;
    const uint64_t i = victim.next.fetch_add(1, std::memory_order_relaxed);
    if (i < victim.end) {
      *out = morsels_[i];
      *stolen = true;
      return true;
    }
  }
  return false;
}

std::vector<Morsel> MorselScheduler::EqualSplit(size_t begin, size_t end,
                                                size_t parts) {
  std::vector<Morsel> morsels;
  if (begin >= end) return morsels;
  parts = std::clamp<size_t>(parts, 1, end - begin);
  morsels.reserve(parts);
  const size_t size = end - begin;
  for (size_t p = 0; p < parts; ++p) {
    Morsel m;
    m.begin = begin + size * p / parts;
    m.end = begin + size * (p + 1) / parts;
    if (m.begin < m.end) morsels.push_back(m);
  }
  return morsels;
}

std::vector<Morsel> MorselScheduler::MorselsFromCuts(
    const std::vector<size_t>& cuts) {
  std::vector<Morsel> morsels;
  if (cuts.size() < 2) return morsels;
  morsels.reserve(cuts.size() - 1);
  for (size_t k = 0; k + 1 < cuts.size(); ++k) {
    if (cuts[k] < cuts[k + 1]) morsels.push_back({cuts[k], cuts[k + 1]});
  }
  return morsels;
}

}  // namespace parj::join
