#include "sim/cache.h"

#include <algorithm>

#include "common/logging.h"

namespace parj::sim {

CacheLevel::CacheLevel(const CacheLevelConfig& config) {
  ways_ = std::max<size_t>(1, config.associativity);
  const size_t lines = std::max<size_t>(
      ways_, config.size_bytes / std::max<size_t>(1, config.line_bytes));
  set_count_ = std::max<size_t>(1, lines / ways_);
  tags_.assign(set_count_ * ways_, kEmpty);
  last_used_.assign(set_count_ * ways_, 0);
}

bool CacheLevel::Access(uint64_t line_index) {
  const size_t set = static_cast<size_t>(line_index % set_count_);
  const size_t base = set * ways_;
  ++tick_;
  size_t victim = base;
  uint64_t oldest = ~uint64_t{0};
  for (size_t w = 0; w < ways_; ++w) {
    const size_t slot = base + w;
    if (tags_[slot] == line_index) {
      last_used_[slot] = tick_;
      ++hits_;
      return true;
    }
    if (tags_[slot] == kEmpty) {
      // Prefer an invalid way as the victim.
      if (oldest != 0) {
        victim = slot;
        oldest = 0;
      }
    } else if (last_used_[slot] < oldest) {
      victim = slot;
      oldest = last_used_[slot];
    }
  }
  ++misses_;
  tags_[victim] = line_index;
  last_used_[victim] = tick_;
  return false;
}

void CacheLevel::Reset() {
  std::fill(tags_.begin(), tags_.end(), kEmpty);
  std::fill(last_used_.begin(), last_used_.end(), 0);
  tick_ = 0;
  hits_ = 0;
  misses_ = 0;
}

CacheHierarchy::CacheHierarchy(const CacheHierarchyConfig& config)
    : config_(config),
      l1_(config.l1),
      l2_(config.l2),
      l3_(config.l3),
      line_bytes_(std::max<size_t>(1, config.l1.line_bytes)) {}

uint32_t CacheHierarchy::AccessLine(uint64_t line_index) {
  ++accesses_;
  uint32_t latency;
  if (l1_.Access(line_index)) {
    latency = config_.l1_latency;
  } else if (l2_.Access(line_index)) {
    latency = config_.l2_latency;
  } else if (l3_.Access(line_index)) {
    latency = config_.l3_latency;
  } else {
    latency = config_.memory_latency;
  }
  latency += config_.op_cycles_per_access;
  cycles_ += latency;
  return latency;
}

uint32_t CacheHierarchy::Access(const void* addr, size_t bytes) {
  const uint64_t start = reinterpret_cast<uint64_t>(addr);
  const uint64_t first_line = start / line_bytes_;
  const uint64_t last_line =
      (start + std::max<size_t>(1, bytes) - 1) / line_bytes_;
  uint32_t total = 0;
  for (uint64_t line = first_line; line <= last_line; ++line) {
    total += AccessLine(line);
  }
  return total;
}

void CacheHierarchy::Reset() {
  l1_.Reset();
  l2_.Reset();
  l3_.Reset();
  accesses_ = 0;
  cycles_ = 0;
}

CacheStats CacheHierarchy::stats() const {
  CacheStats s;
  s.accesses = accesses_;
  s.l1_misses = l1_.misses();
  s.l2_misses = l2_.misses();
  s.l3_misses = l3_.misses();
  s.cycles = cycles_;
  return s;
}

}  // namespace parj::sim
