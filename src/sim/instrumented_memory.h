#ifndef PARJ_SIM_INSTRUMENTED_MEMORY_H_
#define PARJ_SIM_INSTRUMENTED_MEMORY_H_

#include "sim/cache.h"

namespace parj::sim {

/// Memory-access policy (see common/memory_policy.h) that routes every
/// load through a CacheHierarchy before performing it, so a search kernel
/// executed with this policy produces the exact cycle/miss profile of its
/// access stream.
struct InstrumentedMemory {
  CacheHierarchy* cache = nullptr;

  template <typename T>
  T Load(const T* addr) {
    cache->Access(addr, sizeof(T));
    return *addr;
  }
};

}  // namespace parj::sim

#endif  // PARJ_SIM_INSTRUMENTED_MEMORY_H_
