#ifndef PARJ_SIM_CACHE_H_
#define PARJ_SIM_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace parj::sim {

/// Geometry of one cache level.
struct CacheLevelConfig {
  size_t size_bytes = 0;
  size_t associativity = 8;
  size_t line_bytes = 64;
};

/// A three-level inclusive hierarchy with per-level hit latencies. The
/// defaults approximate the paper's Intel E5-4603 (Sandy Bridge EP):
/// 32 KiB/8-way L1D, 256 KiB/8-way L2, 10 MiB/20-way shared L3, with
/// conventional latency figures. Used to reproduce Table 6's cycle and
/// cache-miss comparison of binary search vs the ID-to-Position index
/// (see DESIGN.md: hardware counters → simulated access streams).
struct CacheHierarchyConfig {
  CacheLevelConfig l1{32 * 1024, 8, 64};
  CacheLevelConfig l2{256 * 1024, 8, 64};
  CacheLevelConfig l3{10 * 1024 * 1024, 20, 64};
  uint32_t l1_latency = 4;
  uint32_t l2_latency = 12;
  uint32_t l3_latency = 40;
  uint32_t memory_latency = 200;
  /// Fixed ALU/branch cost charged per load on top of the memory latency.
  uint32_t op_cycles_per_access = 1;
};

/// One set-associative, LRU, write-allocate cache level.
class CacheLevel {
 public:
  CacheLevel() = default;
  explicit CacheLevel(const CacheLevelConfig& config);

  /// Accesses the line containing `line_addr` (already divided by line
  /// size). Returns true on hit. On miss the line is installed, evicting
  /// the set's LRU way.
  bool Access(uint64_t line_index);

  void Reset();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  size_t set_count() const { return set_count_; }

 private:
  size_t ways_ = 0;
  size_t set_count_ = 0;
  uint64_t tick_ = 0;
  std::vector<uint64_t> tags_;       // set-major, kEmpty = invalid
  std::vector<uint64_t> last_used_;  // LRU timestamps
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;

  static constexpr uint64_t kEmpty = ~uint64_t{0};
};

/// Aggregated statistics of a simulated run.
struct CacheStats {
  uint64_t accesses = 0;
  uint64_t l1_misses = 0;
  uint64_t l2_misses = 0;
  uint64_t l3_misses = 0;
  uint64_t cycles = 0;
};

/// The three-level hierarchy. Every Access() walks L1 → L2 → L3 → memory,
/// installs the line at each missing level (inclusive fill) and charges
/// the latency of the level that finally hit.
class CacheHierarchy {
 public:
  explicit CacheHierarchy(const CacheHierarchyConfig& config = {});

  /// Simulates a load of `bytes` at `addr`; returns the charged cycles.
  /// Accesses spanning a line boundary touch both lines.
  uint32_t Access(const void* addr, size_t bytes);

  void Reset();

  CacheStats stats() const;

 private:
  uint32_t AccessLine(uint64_t line_index);

  CacheHierarchyConfig config_;
  CacheLevel l1_;
  CacheLevel l2_;
  CacheLevel l3_;
  uint64_t accesses_ = 0;
  uint64_t cycles_ = 0;
  size_t line_bytes_ = 64;
};

}  // namespace parj::sim

#endif  // PARJ_SIM_CACHE_H_
