#ifndef PARJ_COMMON_CRC32C_H_
#define PARJ_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace parj {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) —
/// the checksum used by the snapshot format's per-section integrity
/// records. Table-driven software implementation; the tables are built at
/// compile time, so the first call pays nothing.
///
/// `Crc32cExtend` continues a running checksum, letting the snapshot
/// reader/writer fold bytes in as they stream past instead of buffering
/// whole sections.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t length);

inline uint32_t Crc32c(const void* data, size_t length) {
  return Crc32cExtend(0, data, length);
}

}  // namespace parj

#endif  // PARJ_COMMON_CRC32C_H_
