#ifndef PARJ_COMMON_SIMD_H_
#define PARJ_COMMON_SIMD_H_

// Vectorized scan primitives for the probe kernels (DESIGN.md §11).
//
// Three implementation tiers are compiled in, selected by a process-wide
// runtime level so tests and the CLI can force any tier on any machine:
//
//   kScalar  portable loops — the reference semantics; always available.
//   kSse2    128-bit (4-lane) compares, inlined here. SSE2 is part of the
//            x86-64 baseline, so no extra compiler flags are needed.
//   kAvx2    256-bit (8-lane) compares, compiled out-of-line in simd.cc
//            with a per-function target attribute and only dispatched to
//            when the running CPU reports AVX2. An AVX2-level scan still
//            starts in the inline SSE2 loop and only pays the call once
//            >= kAvx2Handoff elements remain, so short scans never leave
//            the caller's instruction stream.
//
// Every primitive has EXACTLY the scalar semantics whatever the level —
// same stop position, same result — so the search kernels built on top
// produce byte-identical counters and cursors across tiers; the level
// only changes how many elements are examined per instruction. Building
// with -DPARJ_DISABLE_SIMD=ON compiles the scalar tier alone (the CI
// scalar-fallback job), which must therefore be observationally
// indistinguishable from a SIMD build.
//
// All lane compares are UNSIGNED (TermIds use the full uint32_t range):
// x86 integer compares are signed, so both operands are biased by 2^31.

#include <atomic>
#include <cstddef>
#include <cstdint>

#if !defined(PARJ_DISABLE_SIMD) && (defined(__x86_64__) || defined(__i386__))
#if defined(__GNUC__) && defined(__SSE2__)
#define PARJ_SIMD_SSE2 1
#include <emmintrin.h>
// AVX2 bodies live in simd.cc behind __attribute__((target("avx2"))).
#define PARJ_SIMD_AVX2 1
#endif
#endif

namespace parj::simd {

enum class Level : uint8_t { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

const char* LevelName(Level level);

/// Highest tier compiled into this binary (kScalar under
/// -DPARJ_DISABLE_SIMD, kAvx2 on a normal x86-64 build).
Level CompiledLevel();

/// Highest tier this binary can actually run on this CPU (CompiledLevel
/// clamped by cpuid — AVX2 code is only dispatched to when the processor
/// reports it).
Level SupportedLevel();

/// Parses "scalar" / "sse2" / "avx2" / "auto" (auto = SupportedLevel()).
/// Returns false on unknown names.
bool ParseLevel(const char* text, Level* out);

namespace detail {

/// Startup dispatch level: SupportedLevel() clamped down by the PARJ_SIMD
/// environment variable (scalar|sse2|avx2|auto).
Level InitialLevel();

/// The process-wide dispatch level, inline so reading it costs one relaxed
/// load in the scan hot paths instead of a function call.
inline std::atomic<Level>& ActiveSlot() {
  static std::atomic<Level> slot{InitialLevel()};
  return slot;
}

/// Out-of-line bulk halves of the scans (dispatching on ActiveLevel() at
/// full width). Only worth the call for long scans; short ones are fully
/// inline below.
/// Preconditions: begin < end (forward), end0 > 0 (backward).
size_t ScanForwardStopBulk(const uint32_t* data, size_t begin, size_t end,
                           uint32_t value);
size_t ScanBackwardStopBulk(const uint32_t* data, size_t end0,
                            uint32_t value);
bool ContainsBulk(const uint32_t* data, size_t count, uint32_t value);

/// Elements scanned by the inline SSE2 loop before the remainder is
/// handed to the out-of-line widest kernel. The handoff triggers on
/// elements ALREADY SCANNED — scan length is unknowable up front — so a
/// short scan never pays a call and a long one amortizes it over at
/// least this many elements.
inline constexpr size_t kVecInline = 64;

}  // namespace detail

/// The tier the dispatching primitives currently use. Defaults to
/// SupportedLevel(), overridable at process start with PARJ_SIMD=
/// scalar|sse2|avx2 (silently clamped to SupportedLevel()).
inline Level ActiveLevel() {
  return detail::ActiveSlot().load(std::memory_order_relaxed);
}

/// Forces the dispatch tier (clamped to SupportedLevel()). Returns the
/// level actually installed. Thread-compatible: tests and the CLI set it
/// while no searches run.
inline Level SetActiveLevel(Level level) {
  if (level > SupportedLevel()) level = SupportedLevel();
  detail::ActiveSlot().store(level, std::memory_order_relaxed);
  return level;
}

/// Stop position of a forward sequential scan: the smallest i in
/// [start, n) with data[i] >= value, or n - 1 when every element is
/// smaller (the scan parks on the last element). Requires n > 0 and
/// start < n.
inline size_t ScanForwardStop(const uint32_t* data, size_t start, size_t n,
                              uint32_t value) {
  size_t i = start;
#if PARJ_SIMD_SSE2
  if (ActiveLevel() >= Level::kSse2) {
    const size_t inline_end =
        n - i > detail::kVecInline ? i + detail::kVecInline : n;
    const __m128i bias = _mm_set1_epi32(INT32_MIN);
    const __m128i vv =
        _mm_xor_si128(_mm_set1_epi32(static_cast<int32_t>(value)), bias);
    for (; i + 4 <= inline_end; i += 4) {
      const __m128i d =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
      // Lanes where data[i] < value; the first lane NOT set is the stop.
      const __m128i lt = _mm_cmpgt_epi32(vv, _mm_xor_si128(d, bias));
      const unsigned mask =
          static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(lt)));
      if (mask != 0xFu) {
        return i + static_cast<size_t>(__builtin_ctz(~mask & 0xFu));
      }
    }
    if (i + 4 <= n) return detail::ScanForwardStopBulk(data, i, n, value);
  }
#endif
  for (; i < n; ++i) {
    if (data[i] >= value) return i;
  }
  return n - 1;
}

/// Stop position of a backward sequential scan: the largest i in
/// [0, start] with data[i] <= value, or 0 when every element in that
/// range is larger (the scan parks on the first element). Requires
/// start < n of the underlying array.
inline size_t ScanBackwardStop(const uint32_t* data, size_t start,
                               uint32_t value) {
  size_t i = start + 1;  // elements [0, i) remain unexamined
#if PARJ_SIMD_SSE2
  if (ActiveLevel() >= Level::kSse2) {
    const size_t inline_stop =
        i > detail::kVecInline ? i - detail::kVecInline : 0;
    const __m128i bias = _mm_set1_epi32(INT32_MIN);
    const __m128i vv =
        _mm_xor_si128(_mm_set1_epi32(static_cast<int32_t>(value)), bias);
    while (i >= inline_stop + 4) {
      const __m128i d =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i - 4));
      // Lanes where data[i] > value; the highest lane NOT set is the stop.
      const __m128i gt = _mm_cmpgt_epi32(_mm_xor_si128(d, bias), vv);
      const unsigned mask =
          static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(gt)));
      if (mask != 0xFu) {
        const unsigned le = ~mask & 0xFu;
        return (i - 4) + (31 - static_cast<size_t>(__builtin_clz(le)));
      }
      i -= 4;
    }
    if (i >= 4) return detail::ScanBackwardStopBulk(data, i, value);
  }
#endif
  while (i > 0) {
    --i;
    if (data[i] <= value) return i;
  }
  return 0;
}

/// Membership test over an unordered-access (but typically short) span.
/// Semantically identical to a linear scan for equality.
inline bool ContainsU32(const uint32_t* data, size_t count, uint32_t value) {
  size_t i = 0;
#if PARJ_SIMD_SSE2
  if (ActiveLevel() >= Level::kSse2) {
    // Unlike the scans, the membership test's length is known up front:
    // long spans go straight to the widest out-of-line kernel.
    if (count > detail::kVecInline) return detail::ContainsBulk(data, count, value);
    const __m128i vv = _mm_set1_epi32(static_cast<int32_t>(value));
    for (; i + 4 <= count; i += 4) {
      const __m128i d =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
      if (_mm_movemask_epi8(_mm_cmpeq_epi32(d, vv)) != 0) return true;
    }
  }
#endif
  for (; i < count; ++i) {
    if (data[i] == value) return true;
  }
  return false;
}

// ---- Bit-packed block decode (compressed replicas, DESIGN.md §13) ----
//
// A block stores up to 128 unsigned fields of a fixed `width` (0..32 bits)
// packed LSB-first into little-endian 64-bit words with no padding between
// fields. The three decoders below reverse that packing and apply the
// block's reconstruction rule; like the scans, every tier produces
// bit-identical output (the operations are exact integer arithmetic), so
// compressed probes behave the same whatever level is active.
//
// Precondition shared by all three: `count <= 128`, and `words` must stay
// readable for ceil(count*width/64) + 1 words — the AVX2 tier gathers
// 32-bit lanes at byte granularity and may read up to 3 bytes past the
// payload (PackedColumn appends one guard word).

/// Raw field extraction: out[i] = field i. width == 0 zero-fills.
void UnpackBitsU32(const uint64_t* words, unsigned width, size_t count,
                   uint32_t* out);

/// Frame-of-reference block: out[i] = base + field[i].
void UnpackForU32(const uint64_t* words, unsigned width, size_t count,
                  uint32_t base, uint32_t* out);

/// Delta block (non-decreasing data): out[i] = base + field[0] + ... +
/// field[i]. Encoders emit field[0] = 0 so out[0] == base.
void UnpackDeltaU32(const uint64_t* words, unsigned width, size_t count,
                    uint32_t base, uint32_t* out);

}  // namespace parj::simd

#endif  // PARJ_COMMON_SIMD_H_
