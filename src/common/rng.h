#ifndef PARJ_COMMON_RNG_H_
#define PARJ_COMMON_RNG_H_

#include <cstdint>

#include "common/logging.h"

namespace parj {

/// Deterministic, seedable pseudo-random generator (splitmix64 core).
/// Used by the synthetic workload generators so that every dataset and
/// query instantiation is exactly reproducible from its seed, independent
/// of the platform's std::mt19937 stream.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + kGolden) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += kGolden);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t Uniform(uint64_t bound) {
    PARJ_DCHECK(bound > 0);
    // Multiply-shift rejection-free mapping (Lemire); bias is negligible
    // for the bounds used by the generators (< 2^40).
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  uint64_t UniformRange(uint64_t lo, uint64_t hi) {
    PARJ_DCHECK(lo <= hi);
    return lo + Uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with success probability p.
  bool Chance(double p) { return NextDouble() < p; }

  /// Approximate Zipf-distributed rank in [0, n) with exponent `s`,
  /// implemented via inverse-CDF on the continuous approximation. Used to
  /// model the skewed in-degree of popular RDF resources.
  uint64_t Zipf(uint64_t n, double s);

 private:
  static constexpr uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
  uint64_t state_;
};

}  // namespace parj

#endif  // PARJ_COMMON_RNG_H_
