#include "common/status.h"

namespace parj {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace parj
