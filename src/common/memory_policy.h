#ifndef PARJ_COMMON_MEMORY_POLICY_H_
#define PARJ_COMMON_MEMORY_POLICY_H_

namespace parj {

/// Memory-access policy used by the search kernels and the ID-to-Position
/// index. The production policy (`DirectMemory`) compiles to a plain load;
/// the instrumented policy in sim/instrumented_memory.h forwards every
/// touched address to the cache-hierarchy simulator, letting benchmarks
/// reproduce the paper's per-query cycle and cache-miss counts (Table 6).
struct DirectMemory {
  template <typename T>
  T Load(const T* addr) const {
    return *addr;
  }
};

}  // namespace parj

#endif  // PARJ_COMMON_MEMORY_POLICY_H_
