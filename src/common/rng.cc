#include "common/rng.h"

#include <cmath>

namespace parj {

uint64_t Rng::Zipf(uint64_t n, double s) {
  PARJ_DCHECK(n > 0);
  if (n == 1) return 0;
  const double u = NextDouble();
  if (s == 1.0) {
    // CDF ~ ln(1 + x) / ln(1 + n).
    const double x = std::exp(u * std::log(static_cast<double>(n) + 1.0)) - 1.0;
    uint64_t r = static_cast<uint64_t>(x);
    return r >= n ? n - 1 : r;
  }
  // CDF ~ ((1 + x)^(1-s) - 1) / ((1 + n)^(1-s) - 1).
  const double e = 1.0 - s;
  const double top = std::pow(static_cast<double>(n) + 1.0, e) - 1.0;
  const double x = std::pow(u * top + 1.0, 1.0 / e) - 1.0;
  uint64_t r = static_cast<uint64_t>(x);
  return r >= n ? n - 1 : r;
}

}  // namespace parj
