#ifndef PARJ_COMMON_LOGGING_H_
#define PARJ_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace parj {

/// Severity levels for the library logger. The default threshold is
/// kWarning so that library consumers see nothing on the happy path.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum severity that will be emitted to stderr.
void SetLogLevel(LogLevel level);

/// Returns the current global minimum severity.
LogLevel GetLogLevel();

namespace internal_logging {

bool ShouldLog(LogLevel level);

/// Stream-style log sink that emits one line to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Sink used by PARJ_CHECK: prints and aborts on destruction.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();

  template <typename T>
  FatalMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace parj

#define PARJ_LOG(LEVEL)                                                  \
  if (::parj::internal_logging::ShouldLog(::parj::LogLevel::k##LEVEL))   \
  ::parj::internal_logging::LogMessage(::parj::LogLevel::k##LEVEL,       \
                                       __FILE__, __LINE__)

/// Invariant check that is active in all build types. Use for conditions
/// whose violation would corrupt query results.
#define PARJ_CHECK(cond)                                                 \
  if (!(cond))                                                           \
  ::parj::internal_logging::FatalMessage(__FILE__, __LINE__, #cond)

#ifndef NDEBUG
#define PARJ_DCHECK(cond) PARJ_CHECK(cond)
#else
#define PARJ_DCHECK(cond) \
  if (false) ::parj::internal_logging::FatalMessage(__FILE__, __LINE__, #cond)
#endif

#endif  // PARJ_COMMON_LOGGING_H_
