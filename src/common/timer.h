#ifndef PARJ_COMMON_TIMER_H_
#define PARJ_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace parj {

/// Monotonic wall-clock stopwatch with millisecond/microsecond readouts.
/// Starts running on construction; `Restart()` resets the origin.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time in nanoseconds since construction or last Restart().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  double ElapsedMicros() const {
    return static_cast<double>(ElapsedNanos()) / 1e3;
  }
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) / 1e9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace parj

#endif  // PARJ_COMMON_TIMER_H_
