#ifndef PARJ_COMMON_STATUS_H_
#define PARJ_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace parj {

/// Error categories used across the library. Mirrors the coarse error
/// taxonomy of storage engines such as RocksDB: a small closed set of codes
/// plus a free-form message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kParseError,
  kOutOfRange,
  kAlreadyExists,
  kUnsupported,
  kInternal,
  kIoError,
  kCancelled,
  kDeadlineExceeded,
  kResourceExhausted,
  /// Persisted state is present but failed an integrity check (bad CRC,
  /// malformed section, trailing garbage). Unlike kIoError — which covers
  /// the medium failing — kDataLoss means the bytes were readable but
  /// wrong, so retrying will not help and the snapshot must be discarded.
  kDataLoss,
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value. Functions that can fail return
/// `Status` (or `Result<T>` when they also produce a value). `Status` is
/// cheap to copy in the OK case and never throws.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// ok()-style code accessors, one per error code, so call sites read
  /// `st.IsResourceExhausted()` instead of comparing enum values.
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsUnsupported() const { return code_ == StatusCode::kUnsupported; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsDataLoss() const { return code_ == StatusCode::kDataLoss; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error wrapper in the spirit of arrow::Result /
/// absl::StatusOr. Accessing the value of an errored result is a programmer
/// error and asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value keeps call sites natural:
  /// `return parsed_triple;`
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Implicit construction from an error status:
  /// `return Status::ParseError(...);`
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace parj

/// Propagates a non-OK Status from an expression, RocksDB-style.
#define PARJ_RETURN_NOT_OK(expr)                  \
  do {                                            \
    ::parj::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                    \
  } while (false)

/// Evaluates a Result<T> expression, propagating errors, else binds `lhs`.
#define PARJ_ASSIGN_OR_RETURN(lhs, expr)          \
  auto PARJ_CONCAT_(_res_, __LINE__) = (expr);    \
  if (!PARJ_CONCAT_(_res_, __LINE__).ok())        \
    return PARJ_CONCAT_(_res_, __LINE__).status();\
  lhs = std::move(PARJ_CONCAT_(_res_, __LINE__)).value()

#define PARJ_CONCAT_INNER_(a, b) a##b
#define PARJ_CONCAT_(a, b) PARJ_CONCAT_INNER_(a, b)

#endif  // PARJ_COMMON_STATUS_H_
