#include "common/strings.h"

#include <cctype>
#include <cstdio>

namespace parj {

std::string_view TrimWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string_view> SplitString(std::string_view s, char sep) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string FormatCount(uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return std::string(out.rbegin(), out.rend());
}

std::string FormatMillis(double ms) {
  char buf[64];
  if (ms < 0.01) {
    std::snprintf(buf, sizeof(buf), "%.4f", ms);
  } else if (ms < 10.0) {
    std::snprintf(buf, sizeof(buf), "%.2f", ms);
  } else if (ms < 100.0) {
    std::snprintf(buf, sizeof(buf), "%.1f", ms);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", ms);
  }
  return buf;
}

}  // namespace parj
