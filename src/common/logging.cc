#include "common/logging.h"

#include <atomic>

namespace parj {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

bool ShouldLog(LogLevel level) {
  return static_cast<int>(level) >=
         g_log_level.load(std::memory_order_relaxed);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
}

FatalMessage::FatalMessage(const char* file, int line, const char* condition) {
  stream_ << "[FATAL " << file << ":" << line << "] check failed: "
          << condition << " ";
}

FatalMessage::~FatalMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  std::abort();
}

}  // namespace internal_logging
}  // namespace parj
