#ifndef PARJ_COMMON_STRINGS_H_
#define PARJ_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace parj {

/// Removes ASCII whitespace from both ends of `s`.
std::string_view TrimWhitespace(std::string_view s);

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string_view> SplitString(std::string_view s, char sep);

/// True when `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True when `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Formats a count with thousands separators, e.g. 1234567 -> "1,234,567".
std::string FormatCount(uint64_t n);

/// Formats milliseconds with adaptive precision for benchmark tables.
std::string FormatMillis(double ms);

}  // namespace parj

#endif  // PARJ_COMMON_STRINGS_H_
