#ifndef PARJ_COMMON_FAILPOINT_H_
#define PARJ_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"

namespace parj::failpoint {

/// Named failpoints for fault-injection testing. Code sprinkles
/// `PARJ_FAILPOINT("snapshot.read.header")` at interesting boundaries;
/// tests (or the `PARJ_FAILPOINTS` environment variable, parsed at
/// start-up) arm a subset of them with an *action spec*, and an armed
/// failpoint then injects the configured failure when execution reaches
/// it. When nothing is armed the macro is a single relaxed atomic load —
/// cheap enough to leave in release builds and hot-ish paths.
///
/// Action spec grammar (the value side of `name=spec`):
///
///   error[:N]      return Status::Internal          (generic fault)
///   io[:N]         return Status::IoError           (medium failure)
///   dataloss[:N]   return Status::DataLoss          (integrity failure)
///   exhausted[:N]  return Status::ResourceExhausted (transient overload)
///   throw[:N]      throw std::bad_alloc             (allocation failure)
///   sleep-MS[:N]   sleep MS milliseconds, then return OK (latency fault)
///   torn:K[:N]     torn write: persist only the first K bytes, then fail
///
/// `torn:K` models a power cut mid-write. It is only meaningful at sites
/// that opt in via `ConsumeTorn` (the WAL writer, rotation, checkpoint);
/// a plain PARJ_FAILPOINT evaluation of a torn-armed point degrades to an
/// IoError so the point still fails loudly at sites that don't know how
/// to tear their writes.
///
/// `:N` limits the action to the first N times the failpoint is reached;
/// after that it behaves as unarmed. Without `:N` the action fires every
/// time until Disarm. Environment form, comma-separated:
///
///   PARJ_FAILPOINTS=snapshot.read.header=error:1,join.worker.morsel=sleep-20
///
/// Injected Status messages always contain the failpoint name, so a test
/// (or an operator reading logs) can tell injected faults from real ones.

/// Arms `name` with `spec`. Replaces any existing arming of the same
/// name. Returns InvalidArgument on a malformed spec.
Status Arm(const std::string& name, const std::string& spec);

/// Disarms `name` (no-op when not armed).
void Disarm(const std::string& name);

/// Disarms everything and clears hit counts (test teardown).
void DisarmAll();

/// Parses a comma-separated `name=spec,name=spec` list (the
/// PARJ_FAILPOINTS format) and arms every entry. Stops at the first
/// malformed entry and returns InvalidArgument for it.
Status ArmFromSpecList(const std::string& list);

/// Times the named failpoint's action actually fired (not merely
/// evaluated). Counts survive exhaustion of a `:N` budget; DisarmAll
/// resets them.
uint64_t HitCount(const std::string& name);

/// Names currently armed (spec budget not yet exhausted), for CLI/debug.
std::vector<std::string> ArmedNames();

/// Torn-write hook: if `name` is armed with a `torn:K` action, consumes
/// one firing and returns K — the caller must write exactly K bytes of
/// its intended payload and then behave as if the medium failed
/// (sticky I/O error, no retry). Returns nullopt when `name` is unarmed,
/// exhausted, or armed with a non-torn action (those fire via the normal
/// PARJ_FAILPOINT / Check path instead).
std::optional<size_t> ConsumeTorn(const char* name);

namespace internal {
/// Number of armed (non-exhausted) failpoints; the fast-path gate.
extern std::atomic<int> g_armed_count;
/// Slow path: registry lookup + action. Only called when something is
/// armed somewhere. Throws for `throw` actions; sleeps for `sleep-MS`.
Status Eval(const char* name);
}  // namespace internal

/// True when any failpoint is armed — one relaxed atomic load.
inline bool AnyArmed() {
  return internal::g_armed_count.load(std::memory_order_relaxed) != 0;
}

/// Function form of the macro below, for call sites that want the Status
/// without returning it (e.g. a worker loop that records it elsewhere).
inline Status Check(const char* name) {
  if (!AnyArmed()) return Status::OK();
  return internal::Eval(name);
}

}  // namespace parj::failpoint

/// Evaluates the named failpoint and propagates an injected error from
/// the enclosing function (which must return Status or Result<T>).
/// Unarmed cost: one relaxed atomic load.
#define PARJ_FAILPOINT(name)                                      \
  do {                                                            \
    if (::parj::failpoint::AnyArmed()) {                          \
      ::parj::Status _parj_fp = ::parj::failpoint::internal::Eval(name); \
      if (!_parj_fp.ok()) return _parj_fp;                        \
    }                                                             \
  } while (false)

#endif  // PARJ_COMMON_FAILPOINT_H_
