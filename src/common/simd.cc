#include "common/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if PARJ_SIMD_AVX2
#include <immintrin.h>
#endif

namespace parj::simd {

namespace {

#if PARJ_SIMD_SSE2

/// Bias to map unsigned 32-bit compares onto x86's signed lane compares.
inline __m128i Bias128() { return _mm_set1_epi32(INT32_MIN); }

size_t ScanForwardStopSse2(const uint32_t* data, size_t begin, size_t end,
                           uint32_t value) {
  const __m128i bias = Bias128();
  const __m128i vv =
      _mm_xor_si128(_mm_set1_epi32(static_cast<int32_t>(value)), bias);
  size_t i = begin;
  for (; i + 4 <= end; i += 4) {
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    // Lanes where data[i] < value; the first lane NOT set is the stop.
    const __m128i lt = _mm_cmpgt_epi32(vv, _mm_xor_si128(d, bias));
    const unsigned mask =
        static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(lt)));
    if (mask != 0xFu) {
      return i + static_cast<size_t>(__builtin_ctz(~mask & 0xFu));
    }
  }
  for (; i < end; ++i) {
    if (data[i] >= value) return i;
  }
  return end - 1;
}

size_t ScanBackwardStopSse2(const uint32_t* data, size_t end0,
                            uint32_t value) {
  const __m128i bias = Bias128();
  const __m128i vv =
      _mm_xor_si128(_mm_set1_epi32(static_cast<int32_t>(value)), bias);
  size_t i = end0;
  while (i >= 4) {
    const __m128i d =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i - 4));
    // Lanes where data[i] > value; the highest lane NOT set is the stop.
    const __m128i gt = _mm_cmpgt_epi32(_mm_xor_si128(d, bias), vv);
    const unsigned mask =
        static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(gt)));
    if (mask != 0xFu) {
      const unsigned le = ~mask & 0xFu;
      return (i - 4) + (31 - static_cast<size_t>(__builtin_clz(le)));
    }
    i -= 4;
  }
  while (i > 0) {
    --i;
    if (data[i] <= value) return i;
  }
  return 0;
}

bool ContainsSse2(const uint32_t* data, size_t count, uint32_t value) {
  const __m128i vv = _mm_set1_epi32(static_cast<int32_t>(value));
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    if (_mm_movemask_epi8(_mm_cmpeq_epi32(d, vv)) != 0) return true;
  }
  for (; i < count; ++i) {
    if (data[i] == value) return true;
  }
  return false;
}

#endif  // PARJ_SIMD_SSE2

#if PARJ_SIMD_AVX2

__attribute__((target("avx2"))) size_t ScanForwardStopAvx2(
    const uint32_t* data, size_t begin, size_t end, uint32_t value) {
  const __m256i bias = _mm256_set1_epi32(INT32_MIN);
  const __m256i vv =
      _mm256_xor_si256(_mm256_set1_epi32(static_cast<int32_t>(value)), bias);
  size_t i = begin;
  for (; i + 8 <= end; i += 8) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    const __m256i lt = _mm256_cmpgt_epi32(vv, _mm256_xor_si256(d, bias));
    const unsigned mask =
        static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(lt)));
    if (mask != 0xFFu) {
      return i + static_cast<size_t>(__builtin_ctz(~mask & 0xFFu));
    }
  }
  for (; i < end; ++i) {
    if (data[i] >= value) return i;
  }
  return end - 1;
}

__attribute__((target("avx2"))) size_t ScanBackwardStopAvx2(
    const uint32_t* data, size_t end0, uint32_t value) {
  const __m256i bias = _mm256_set1_epi32(INT32_MIN);
  const __m256i vv =
      _mm256_xor_si256(_mm256_set1_epi32(static_cast<int32_t>(value)), bias);
  size_t i = end0;
  while (i >= 8) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i - 8));
    const __m256i gt = _mm256_cmpgt_epi32(_mm256_xor_si256(d, bias), vv);
    const unsigned mask =
        static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(gt)));
    if (mask != 0xFFu) {
      const unsigned le = ~mask & 0xFFu;
      return (i - 8) + (31 - static_cast<size_t>(__builtin_clz(le)));
    }
    i -= 8;
  }
  while (i > 0) {
    --i;
    if (data[i] <= value) return i;
  }
  return 0;
}

__attribute__((target("avx2"))) bool ContainsAvx2(const uint32_t* data,
                                                  size_t count,
                                                  uint32_t value) {
  const __m256i vv = _mm256_set1_epi32(static_cast<int32_t>(value));
  size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    if (_mm256_movemask_epi8(_mm256_cmpeq_epi32(d, vv)) != 0) return true;
  }
  for (; i < count; ++i) {
    if (data[i] == value) return true;
  }
  return false;
}

#endif  // PARJ_SIMD_AVX2

size_t ScanForwardStopScalar(const uint32_t* data, size_t begin, size_t end,
                             uint32_t value) {
  for (size_t i = begin; i < end; ++i) {
    if (data[i] >= value) return i;
  }
  return end - 1;
}

size_t ScanBackwardStopScalar(const uint32_t* data, size_t end0,
                              uint32_t value) {
  for (size_t i = end0; i > 0; --i) {
    if (data[i - 1] <= value) return i - 1;
  }
  return 0;
}

bool ContainsScalar(const uint32_t* data, size_t count, uint32_t value) {
  for (size_t i = 0; i < count; ++i) {
    if (data[i] == value) return true;
  }
  return false;
}

Level DetectSupportedLevel() {
#if PARJ_SIMD_AVX2
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
#endif
#if PARJ_SIMD_SSE2
  return Level::kSse2;
#else
  return Level::kScalar;
#endif
}

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSse2:
      return "sse2";
    case Level::kAvx2:
      return "avx2";
  }
  return "?";
}

Level CompiledLevel() {
#if PARJ_SIMD_AVX2
  return Level::kAvx2;
#elif PARJ_SIMD_SSE2
  return Level::kSse2;
#else
  return Level::kScalar;
#endif
}

Level SupportedLevel() {
  static const Level level = DetectSupportedLevel();
  return level;
}

bool ParseLevel(const char* text, Level* out) {
  if (std::strcmp(text, "scalar") == 0 || std::strcmp(text, "off") == 0) {
    *out = Level::kScalar;
    return true;
  }
  if (std::strcmp(text, "sse2") == 0) {
    *out = Level::kSse2;
    return true;
  }
  if (std::strcmp(text, "avx2") == 0) {
    *out = Level::kAvx2;
    return true;
  }
  if (std::strcmp(text, "auto") == 0) {
    *out = SupportedLevel();
    return true;
  }
  return false;
}

namespace detail {

Level InitialLevel() {
  Level level = DetectSupportedLevel();
  const char* env = std::getenv("PARJ_SIMD");
  if (env != nullptr && *env != '\0') {
    Level parsed;
    if (ParseLevel(env, &parsed) && parsed < level) level = parsed;
  }
  return level;
}

size_t ScanForwardStopBulk(const uint32_t* data, size_t begin, size_t end,
                           uint32_t value) {
  switch (ActiveLevel()) {
#if PARJ_SIMD_AVX2
    case Level::kAvx2:
      return ScanForwardStopAvx2(data, begin, end, value);
#endif
#if PARJ_SIMD_SSE2
    case Level::kSse2:
      return ScanForwardStopSse2(data, begin, end, value);
#endif
    default:
      return ScanForwardStopScalar(data, begin, end, value);
  }
}

size_t ScanBackwardStopBulk(const uint32_t* data, size_t end0,
                            uint32_t value) {
  switch (ActiveLevel()) {
#if PARJ_SIMD_AVX2
    case Level::kAvx2:
      return ScanBackwardStopAvx2(data, end0, value);
#endif
#if PARJ_SIMD_SSE2
    case Level::kSse2:
      return ScanBackwardStopSse2(data, end0, value);
#endif
    default:
      return ScanBackwardStopScalar(data, end0, value);
  }
}

bool ContainsBulk(const uint32_t* data, size_t count, uint32_t value) {
  switch (ActiveLevel()) {
#if PARJ_SIMD_AVX2
    case Level::kAvx2:
      return ContainsAvx2(data, count, value);
#endif
#if PARJ_SIMD_SSE2
    case Level::kSse2:
      return ContainsSse2(data, count, value);
#endif
    default:
      return ContainsScalar(data, count, value);
  }
}

}  // namespace detail

}  // namespace parj::simd
