#include "common/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if PARJ_SIMD_AVX2
#include <immintrin.h>
#endif

namespace parj::simd {

namespace {

#if PARJ_SIMD_SSE2

/// Bias to map unsigned 32-bit compares onto x86's signed lane compares.
inline __m128i Bias128() { return _mm_set1_epi32(INT32_MIN); }

size_t ScanForwardStopSse2(const uint32_t* data, size_t begin, size_t end,
                           uint32_t value) {
  const __m128i bias = Bias128();
  const __m128i vv =
      _mm_xor_si128(_mm_set1_epi32(static_cast<int32_t>(value)), bias);
  size_t i = begin;
  for (; i + 4 <= end; i += 4) {
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    // Lanes where data[i] < value; the first lane NOT set is the stop.
    const __m128i lt = _mm_cmpgt_epi32(vv, _mm_xor_si128(d, bias));
    const unsigned mask =
        static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(lt)));
    if (mask != 0xFu) {
      return i + static_cast<size_t>(__builtin_ctz(~mask & 0xFu));
    }
  }
  for (; i < end; ++i) {
    if (data[i] >= value) return i;
  }
  return end - 1;
}

size_t ScanBackwardStopSse2(const uint32_t* data, size_t end0,
                            uint32_t value) {
  const __m128i bias = Bias128();
  const __m128i vv =
      _mm_xor_si128(_mm_set1_epi32(static_cast<int32_t>(value)), bias);
  size_t i = end0;
  while (i >= 4) {
    const __m128i d =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i - 4));
    // Lanes where data[i] > value; the highest lane NOT set is the stop.
    const __m128i gt = _mm_cmpgt_epi32(_mm_xor_si128(d, bias), vv);
    const unsigned mask =
        static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(gt)));
    if (mask != 0xFu) {
      const unsigned le = ~mask & 0xFu;
      return (i - 4) + (31 - static_cast<size_t>(__builtin_clz(le)));
    }
    i -= 4;
  }
  while (i > 0) {
    --i;
    if (data[i] <= value) return i;
  }
  return 0;
}

bool ContainsSse2(const uint32_t* data, size_t count, uint32_t value) {
  const __m128i vv = _mm_set1_epi32(static_cast<int32_t>(value));
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    if (_mm_movemask_epi8(_mm_cmpeq_epi32(d, vv)) != 0) return true;
  }
  for (; i < count; ++i) {
    if (data[i] == value) return true;
  }
  return false;
}

/// Inclusive prefix-sum of out[0..count) plus `base` added to every
/// element: 4 lanes per step with a broadcast carry between groups.
void PrefixAddSse2(uint32_t* out, size_t count, uint32_t base) {
  __m128i carry = _mm_set1_epi32(static_cast<int32_t>(base));
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(out + i));
    x = _mm_add_epi32(x, _mm_slli_si128(x, 4));
    x = _mm_add_epi32(x, _mm_slli_si128(x, 8));
    x = _mm_add_epi32(x, carry);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), x);
    carry = _mm_shuffle_epi32(x, _MM_SHUFFLE(3, 3, 3, 3));
  }
  uint32_t c = i > 0 ? out[i - 1] : base;
  for (; i < count; ++i) {
    c += out[i];
    out[i] = c;
  }
}

void ForAddSse2(uint32_t* out, size_t count, uint32_t base) {
  const __m128i b = _mm_set1_epi32(static_cast<int32_t>(base));
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(out + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_add_epi32(x, b));
  }
  for (; i < count; ++i) out[i] += base;
}

#endif  // PARJ_SIMD_SSE2

#if PARJ_SIMD_AVX2

__attribute__((target("avx2"))) size_t ScanForwardStopAvx2(
    const uint32_t* data, size_t begin, size_t end, uint32_t value) {
  const __m256i bias = _mm256_set1_epi32(INT32_MIN);
  const __m256i vv =
      _mm256_xor_si256(_mm256_set1_epi32(static_cast<int32_t>(value)), bias);
  size_t i = begin;
  for (; i + 8 <= end; i += 8) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    const __m256i lt = _mm256_cmpgt_epi32(vv, _mm256_xor_si256(d, bias));
    const unsigned mask =
        static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(lt)));
    if (mask != 0xFFu) {
      return i + static_cast<size_t>(__builtin_ctz(~mask & 0xFFu));
    }
  }
  for (; i < end; ++i) {
    if (data[i] >= value) return i;
  }
  return end - 1;
}

__attribute__((target("avx2"))) size_t ScanBackwardStopAvx2(
    const uint32_t* data, size_t end0, uint32_t value) {
  const __m256i bias = _mm256_set1_epi32(INT32_MIN);
  const __m256i vv =
      _mm256_xor_si256(_mm256_set1_epi32(static_cast<int32_t>(value)), bias);
  size_t i = end0;
  while (i >= 8) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i - 8));
    const __m256i gt = _mm256_cmpgt_epi32(_mm256_xor_si256(d, bias), vv);
    const unsigned mask =
        static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(gt)));
    if (mask != 0xFFu) {
      const unsigned le = ~mask & 0xFFu;
      return (i - 8) + (31 - static_cast<size_t>(__builtin_clz(le)));
    }
    i -= 8;
  }
  while (i > 0) {
    --i;
    if (data[i] <= value) return i;
  }
  return 0;
}

__attribute__((target("avx2"))) bool ContainsAvx2(const uint32_t* data,
                                                  size_t count,
                                                  uint32_t value) {
  const __m256i vv = _mm256_set1_epi32(static_cast<int32_t>(value));
  size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    if (_mm256_movemask_epi8(_mm256_cmpeq_epi32(d, vv)) != 0) return true;
  }
  for (; i < count; ++i) {
    if (data[i] == value) return true;
  }
  return false;
}

/// Decodes 8 consecutive fields of width 1..7 starting at absolute bit
/// `bit0`. All 8 fields span (bit0 & 7) + 8*width <= 63 bits, so ONE
/// unaligned 8-byte window holds them: the generic path's per-lane gather
/// collapses into a broadcast plus two variable 64-bit shifts. Reads up
/// to 8 bytes past the last field's byte (the guard word).
__attribute__((target("avx2"))) inline __m256i UnpackSmall8Avx2(
    const uint8_t* bytes, uint32_t bit0, __m256i mask, __m256i shift_lo,
    __m256i shift_hi, __m256i order) {
  uint64_t window;
  std::memcpy(&window, bytes + (bit0 >> 3), sizeof(window));
  const __m256i w = _mm256_set1_epi64x(static_cast<int64_t>(window));
  const __m256i s = _mm256_set1_epi64x(bit0 & 7);
  // Even dwords of lo/hi hold fields {0..3} / {4..7}; shuffle_ps keeps
  // the even dwords and permutevar restores field order.
  const __m256i lo = _mm256_srlv_epi64(w, _mm256_add_epi64(shift_lo, s));
  const __m256i hi = _mm256_srlv_epi64(w, _mm256_add_epi64(shift_hi, s));
  const __m256 packed = _mm256_shuffle_ps(_mm256_castsi256_ps(lo),
                                          _mm256_castsi256_ps(hi), 0x88);
  return _mm256_and_si256(
      _mm256_permutevar8x32_epi32(_mm256_castps_si256(packed), order), mask);
}

__attribute__((target("avx2"))) void UnpackBitsSmallAvx2(const uint64_t* words,
                                                         unsigned width,
                                                         size_t count,
                                                         uint32_t* out) {
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(words);
  const __m256i mask =
      _mm256_set1_epi32(static_cast<int32_t>((1u << width) - 1));
  const int64_t w = width;
  const __m256i shift_lo = _mm256_setr_epi64x(0, w, 2 * w, 3 * w);
  const __m256i shift_hi = _mm256_setr_epi64x(4 * w, 5 * w, 6 * w, 7 * w);
  const __m256i order = _mm256_setr_epi32(0, 1, 4, 5, 2, 3, 6, 7);
  size_t i = 0;
  uint32_t bit0 = 0;
  for (; i + 8 <= count; i += 8, bit0 += 8 * width) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + i),
        UnpackSmall8Avx2(bytes, bit0, mask, shift_lo, shift_hi, order));
  }
  const uint64_t m = (uint64_t{1} << width) - 1;
  for (; i < count; ++i, bit0 += width) {
    const size_t word = bit0 >> 6;
    const unsigned off = bit0 & 63u;
    uint64_t v = words[word] >> off;
    if (off + width > 64) v |= words[word + 1] << (64 - off);
    out[i] = static_cast<uint32_t>(v & m);
  }
}

/// Fused small-width delta decode: unpack and running prefix sum in one
/// pass, so the serial carry chain overlaps the next window's extraction
/// instead of running as a second sweep over the decoded block.
__attribute__((target("avx2"))) void UnpackDeltaSmallAvx2(
    const uint64_t* words, unsigned width, size_t count, uint32_t base,
    uint32_t* out) {
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(words);
  const __m256i mask =
      _mm256_set1_epi32(static_cast<int32_t>((1u << width) - 1));
  const int64_t w = width;
  const __m256i shift_lo = _mm256_setr_epi64x(0, w, 2 * w, 3 * w);
  const __m256i shift_hi = _mm256_setr_epi64x(4 * w, 5 * w, 6 * w, 7 * w);
  const __m256i order = _mm256_setr_epi32(0, 1, 4, 5, 2, 3, 6, 7);
  const __m256i bcast3 = _mm256_set1_epi32(3);
  __m256i carry = _mm256_set1_epi32(static_cast<int32_t>(base));
  size_t i = 0;
  uint32_t bit0 = 0;
  for (; i + 8 <= count; i += 8, bit0 += 8 * width) {
    const __m256i f =
        UnpackSmall8Avx2(bytes, bit0, mask, shift_lo, shift_hi, order);
    // Group total broadcast to every lane — feeds the carry via ONE
    // 1-cycle add, so the loop-carried chain never routes through the
    // 3-cycle lane permutes below (those only feed this group's store).
    __m256i t = _mm256_add_epi32(f, _mm256_permute2x128_si256(f, f, 0x01));
    t = _mm256_add_epi32(t, _mm256_shuffle_epi32(t, 0x4E));
    t = _mm256_add_epi32(t, _mm256_shuffle_epi32(t, 0xB1));
    __m256i p = _mm256_add_epi32(f, _mm256_slli_si256(f, 4));
    p = _mm256_add_epi32(p, _mm256_slli_si256(p, 8));
    const __m256i low_total = _mm256_permutevar8x32_epi32(p, bcast3);
    p = _mm256_add_epi32(
        p, _mm256_blend_epi32(_mm256_setzero_si256(), low_total, 0xF0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_add_epi32(p, carry));
    carry = _mm256_add_epi32(carry, t);
  }
  uint32_t c = i > 0 ? out[i - 1] : base;
  const uint64_t m = (uint64_t{1} << width) - 1;
  for (; i < count; ++i, bit0 += width) {
    const size_t word = bit0 >> 6;
    const unsigned off = bit0 & 63u;
    uint64_t v = words[word] >> off;
    if (off + width > 64) v |= words[word + 1] << (64 - off);
    c += static_cast<uint32_t>(v & m);
    out[i] = c;
  }
}

/// Gather-based field extraction for widths 1..25: each lane loads the
/// 32-bit window starting at its field's byte offset, shifts by the
/// sub-byte bit offset and masks. Valid while (bit & 7) + width <= 32,
/// i.e. width <= 25. May read up to 3 bytes past the payload (the
/// decoder contract's guard word).
__attribute__((target("avx2"))) void UnpackBitsAvx2(const uint64_t* words,
                                                    unsigned width,
                                                    size_t count,
                                                    uint32_t* out) {
  if (width <= 7) {
    UnpackBitsSmallAvx2(words, width, count, out);
    return;
  }
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(words);
  const __m256i lane_bits = _mm256_mullo_epi32(
      _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
      _mm256_set1_epi32(static_cast<int32_t>(width)));
  const __m256i mask = _mm256_set1_epi32(static_cast<int32_t>((1u << width) - 1));
  const __m256i seven = _mm256_set1_epi32(7);
  uint32_t bit0 = 0;
  size_t i = 0;
  for (; i + 8 <= count; i += 8, bit0 += 8 * width) {
    const __m256i bits =
        _mm256_add_epi32(_mm256_set1_epi32(static_cast<int32_t>(bit0)),
                         lane_bits);
    const __m256i byte_off = _mm256_srli_epi32(bits, 3);
    const __m256i window = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(bytes), byte_off, 1);
    const __m256i shift = _mm256_and_si256(bits, seven);
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + i),
        _mm256_and_si256(_mm256_srlv_epi32(window, shift), mask));
  }
  const uint64_t m = (uint64_t{1} << width) - 1;
  for (; i < count; ++i, bit0 += width) {
    const size_t word = bit0 >> 6;
    const unsigned off = bit0 & 63u;
    uint64_t v = words[word] >> off;
    if (off + width > 64) v |= words[word + 1] << (64 - off);
    out[i] = static_cast<uint32_t>(v & m);
  }
}

__attribute__((target("avx2"))) void PrefixAddAvx2(uint32_t* out, size_t count,
                                                   uint32_t base) {
  __m256i carry = _mm256_set1_epi32(static_cast<int32_t>(base));
  const __m256i bcast3 = _mm256_set1_epi32(3);
  size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256i f =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out + i));
    // Group total broadcast to every lane — the loop-carried dependency
    // is the single 1-cycle `carry += t` add at the bottom, not the
    // 3-cycle lane permutes (those only feed this group's store).
    __m256i t = _mm256_add_epi32(f, _mm256_permute2x128_si256(f, f, 0x01));
    t = _mm256_add_epi32(t, _mm256_shuffle_epi32(t, 0x4E));
    t = _mm256_add_epi32(t, _mm256_shuffle_epi32(t, 0xB1));
    // Prefix within each 128-bit lane, then add the low lane's total to
    // the high lane (slli_si256 shifts per-lane, so the cross-lane carry
    // needs the explicit permute+blend).
    __m256i p = _mm256_add_epi32(f, _mm256_slli_si256(f, 4));
    p = _mm256_add_epi32(p, _mm256_slli_si256(p, 8));
    const __m256i low_total = _mm256_permutevar8x32_epi32(p, bcast3);
    p = _mm256_add_epi32(
        p, _mm256_blend_epi32(_mm256_setzero_si256(), low_total, 0xF0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_add_epi32(p, carry));
    carry = _mm256_add_epi32(carry, t);
  }
  uint32_t c = i > 0 ? out[i - 1] : base;
  for (; i < count; ++i) {
    c += out[i];
    out[i] = c;
  }
}

__attribute__((target("avx2"))) void ForAddAvx2(uint32_t* out, size_t count,
                                                uint32_t base) {
  const __m256i b = _mm256_set1_epi32(static_cast<int32_t>(base));
  size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_add_epi32(x, b));
  }
  for (; i < count; ++i) out[i] += base;
}

#endif  // PARJ_SIMD_AVX2

void UnpackBitsScalar(const uint64_t* words, unsigned width, size_t count,
                      uint32_t* out) {
  if (width == 0) {
    std::memset(out, 0, count * sizeof(uint32_t));
    return;
  }
  const uint64_t mask =
      width >= 32 ? 0xFFFFFFFFull : (uint64_t{1} << width) - 1;
  size_t bit = 0;
  for (size_t i = 0; i < count; ++i, bit += width) {
    const size_t word = bit >> 6;
    const unsigned off = bit & 63u;
    uint64_t v = words[word] >> off;
    if (off + width > 64) v |= words[word + 1] << (64 - off);
    out[i] = static_cast<uint32_t>(v & mask);
  }
}

void PrefixAddScalar(uint32_t* out, size_t count, uint32_t base) {
  uint32_t c = base;
  for (size_t i = 0; i < count; ++i) {
    c += out[i];
    out[i] = c;
  }
}

void ForAddScalar(uint32_t* out, size_t count, uint32_t base) {
  for (size_t i = 0; i < count; ++i) out[i] += base;
}

size_t ScanForwardStopScalar(const uint32_t* data, size_t begin, size_t end,
                             uint32_t value) {
  for (size_t i = begin; i < end; ++i) {
    if (data[i] >= value) return i;
  }
  return end - 1;
}

size_t ScanBackwardStopScalar(const uint32_t* data, size_t end0,
                              uint32_t value) {
  for (size_t i = end0; i > 0; --i) {
    if (data[i - 1] <= value) return i - 1;
  }
  return 0;
}

bool ContainsScalar(const uint32_t* data, size_t count, uint32_t value) {
  for (size_t i = 0; i < count; ++i) {
    if (data[i] == value) return true;
  }
  return false;
}

Level DetectSupportedLevel() {
#if PARJ_SIMD_AVX2
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
#endif
#if PARJ_SIMD_SSE2
  return Level::kSse2;
#else
  return Level::kScalar;
#endif
}

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSse2:
      return "sse2";
    case Level::kAvx2:
      return "avx2";
  }
  return "?";
}

Level CompiledLevel() {
#if PARJ_SIMD_AVX2
  return Level::kAvx2;
#elif PARJ_SIMD_SSE2
  return Level::kSse2;
#else
  return Level::kScalar;
#endif
}

Level SupportedLevel() {
  static const Level level = DetectSupportedLevel();
  return level;
}

bool ParseLevel(const char* text, Level* out) {
  if (std::strcmp(text, "scalar") == 0 || std::strcmp(text, "off") == 0) {
    *out = Level::kScalar;
    return true;
  }
  if (std::strcmp(text, "sse2") == 0) {
    *out = Level::kSse2;
    return true;
  }
  if (std::strcmp(text, "avx2") == 0) {
    *out = Level::kAvx2;
    return true;
  }
  if (std::strcmp(text, "auto") == 0) {
    *out = SupportedLevel();
    return true;
  }
  return false;
}

namespace detail {

Level InitialLevel() {
  Level level = DetectSupportedLevel();
  const char* env = std::getenv("PARJ_SIMD");
  if (env != nullptr && *env != '\0') {
    Level parsed;
    if (ParseLevel(env, &parsed) && parsed < level) level = parsed;
  }
  return level;
}

size_t ScanForwardStopBulk(const uint32_t* data, size_t begin, size_t end,
                           uint32_t value) {
  switch (ActiveLevel()) {
#if PARJ_SIMD_AVX2
    case Level::kAvx2:
      return ScanForwardStopAvx2(data, begin, end, value);
#endif
#if PARJ_SIMD_SSE2
    case Level::kSse2:
      return ScanForwardStopSse2(data, begin, end, value);
#endif
    default:
      return ScanForwardStopScalar(data, begin, end, value);
  }
}

size_t ScanBackwardStopBulk(const uint32_t* data, size_t end0,
                            uint32_t value) {
  switch (ActiveLevel()) {
#if PARJ_SIMD_AVX2
    case Level::kAvx2:
      return ScanBackwardStopAvx2(data, end0, value);
#endif
#if PARJ_SIMD_SSE2
    case Level::kSse2:
      return ScanBackwardStopSse2(data, end0, value);
#endif
    default:
      return ScanBackwardStopScalar(data, end0, value);
  }
}

bool ContainsBulk(const uint32_t* data, size_t count, uint32_t value) {
  switch (ActiveLevel()) {
#if PARJ_SIMD_AVX2
    case Level::kAvx2:
      return ContainsAvx2(data, count, value);
#endif
#if PARJ_SIMD_SSE2
    case Level::kSse2:
      return ContainsSse2(data, count, value);
#endif
    default:
      return ContainsScalar(data, count, value);
  }
}

}  // namespace detail

void UnpackBitsU32(const uint64_t* words, unsigned width, size_t count,
                   uint32_t* out) {
#if PARJ_SIMD_AVX2
  if (ActiveLevel() >= Level::kAvx2 && width >= 1 && width <= 25) {
    UnpackBitsAvx2(words, width, count, out);
    return;
  }
#endif
  UnpackBitsScalar(words, width, count, out);
}

void UnpackForU32(const uint64_t* words, unsigned width, size_t count,
                  uint32_t base, uint32_t* out) {
  UnpackBitsU32(words, width, count, out);
  switch (ActiveLevel()) {
#if PARJ_SIMD_AVX2
    case Level::kAvx2:
      ForAddAvx2(out, count, base);
      return;
#endif
#if PARJ_SIMD_SSE2
    case Level::kSse2:
      ForAddSse2(out, count, base);
      return;
#endif
    default:
      ForAddScalar(out, count, base);
      return;
  }
}

void UnpackDeltaU32(const uint64_t* words, unsigned width, size_t count,
                    uint32_t base, uint32_t* out) {
#if PARJ_SIMD_AVX2
  if (ActiveLevel() >= Level::kAvx2 && width >= 1 && width <= 7) {
    UnpackDeltaSmallAvx2(words, width, count, base, out);
    return;
  }
#endif
  UnpackBitsU32(words, width, count, out);
  switch (ActiveLevel()) {
#if PARJ_SIMD_AVX2
    case Level::kAvx2:
      PrefixAddAvx2(out, count, base);
      return;
#endif
#if PARJ_SIMD_SSE2
    case Level::kSse2:
      PrefixAddSse2(out, count, base);
      return;
#endif
    default:
      PrefixAddScalar(out, count, base);
      return;
  }
}

}  // namespace parj::simd
