#ifndef PARJ_COMMON_BITS_H_
#define PARJ_COMMON_BITS_H_

#include <bit>
#include <cstdint>

namespace parj {

/// Number of set bits in `x`.
inline int PopCount64(uint64_t x) { return std::popcount(x); }

/// Number of set bits of `word` strictly below bit index `bit` (0..64).
inline int PopCountBelow(uint64_t word, unsigned bit) {
  if (bit == 0) return 0;
  if (bit >= 64) return std::popcount(word);
  return std::popcount(word & ((uint64_t{1} << bit) - 1));
}

/// Smallest power of two >= x (x must be > 0, < 2^63).
inline uint64_t NextPowerOfTwo(uint64_t x) { return std::bit_ceil(x); }

/// floor(log2(x)) for x > 0.
inline int FloorLog2(uint64_t x) { return 63 - std::countl_zero(x); }

}  // namespace parj

#endif  // PARJ_COMMON_BITS_H_
