#ifndef PARJ_COMMON_TYPES_H_
#define PARJ_COMMON_TYPES_H_

#include <cstdint>

namespace parj {

/// Dictionary identifier for a resource appearing in the subject or object
/// position. Subjects and objects share one ID space (paper §3); valid IDs
/// start at 1.
using TermId = uint32_t;

/// Dictionary identifier for a predicate. Predicates use their own ID
/// space (paper §3); valid IDs start at 1.
using PredicateId = uint32_t;

/// Sentinel for "no term" / "not found in dictionary".
inline constexpr TermId kInvalidTermId = 0;
inline constexpr PredicateId kInvalidPredicateId = 0;

/// A dictionary-encoded RDF statement.
struct EncodedTriple {
  TermId subject = kInvalidTermId;
  PredicateId predicate = kInvalidPredicateId;
  TermId object = kInvalidTermId;

  friend bool operator==(const EncodedTriple&, const EncodedTriple&) = default;
};

}  // namespace parj

#endif  // PARJ_COMMON_TYPES_H_
