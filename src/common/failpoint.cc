#include "common/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <mutex>
#include <new>
#include <thread>
#include <unordered_map>
#include <utility>

namespace parj::failpoint {

namespace internal {
std::atomic<int> g_armed_count{0};
}  // namespace internal

namespace {

enum class Action {
  kError,
  kIoError,
  kDataLoss,
  kExhausted,
  kThrow,
  kSleep,
  kTorn,
};

struct FailpointState {
  Action action = Action::kError;
  double sleep_millis = 0.0;
  size_t torn_bytes = 0;
  /// Remaining firings; -1 = unlimited, 0 = budget exhausted (unarmed).
  int64_t remaining = -1;
  uint64_t hits = 0;
};

/// Registry guarded by a plain mutex: the lock is only ever taken on the
/// slow path (something armed) or from test/CLI arming calls, never on
/// the unarmed fast path.
struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, FailpointState> points;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // leaked: usable at exit
  return *registry;
}

bool ParseNonNegative(const std::string& text, long long* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const long long n = std::strtoll(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || n < 0) return false;
  *out = n;
  return true;
}

bool ParseSpec(const std::string& spec, FailpointState* out) {
  // `torn:K[:N]` carries a byte count before the optional firing count, so
  // it can't share the generic rfind(':') split below (which would read K
  // as the count). Handle it first.
  if (spec.rfind("torn:", 0) == 0) {
    out->action = Action::kTorn;
    out->remaining = -1;
    std::string rest = spec.substr(5);
    const size_t colon = rest.find(':');
    long long bytes = 0;
    if (colon != std::string::npos) {
      long long n = 0;
      if (!ParseNonNegative(rest.substr(colon + 1), &n)) return false;
      out->remaining = n;
      rest = rest.substr(0, colon);
    }
    if (!ParseNonNegative(rest, &bytes)) return false;
    out->torn_bytes = static_cast<size_t>(bytes);
    return true;
  }
  std::string action = spec;
  out->remaining = -1;
  const size_t colon = spec.rfind(':');
  if (colon != std::string::npos) {
    action = spec.substr(0, colon);
    const std::string count = spec.substr(colon + 1);
    if (count.empty()) return false;
    char* end = nullptr;
    const long long n = std::strtoll(count.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || n < 0) return false;
    out->remaining = n;
  }
  if (action == "error") {
    out->action = Action::kError;
  } else if (action == "io") {
    out->action = Action::kIoError;
  } else if (action == "dataloss") {
    out->action = Action::kDataLoss;
  } else if (action == "exhausted") {
    out->action = Action::kExhausted;
  } else if (action == "throw") {
    out->action = Action::kThrow;
  } else if (action.rfind("sleep-", 0) == 0) {
    out->action = Action::kSleep;
    const std::string millis = action.substr(6);
    if (millis.empty()) return false;
    char* end = nullptr;
    out->sleep_millis = std::strtod(millis.c_str(), &end);
    if (end == nullptr || *end != '\0' || out->sleep_millis < 0) return false;
  } else {
    return false;
  }
  return true;
}

/// Arms PARJ_FAILPOINTS at process start, before main() runs, so env-armed
/// failpoints are live from the very first evaluation (including snapshot
/// loads triggered by static initialization elsewhere, should any appear).
struct EnvArmer {
  EnvArmer() {
    const char* env = std::getenv("PARJ_FAILPOINTS");
    if (env != nullptr && *env != '\0') (void)ArmFromSpecList(env);
  }
} g_env_armer;

}  // namespace

Status Arm(const std::string& name, const std::string& spec) {
  FailpointState state;
  if (name.empty() || !ParseSpec(spec, &state)) {
    return Status::InvalidArgument("bad failpoint spec '" + name + "=" + spec +
                                   "' (want action[:count], action one of "
                                   "error|io|dataloss|exhausted|throw|"
                                   "sleep-MS|torn:BYTES)");
  }
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(name);
  const bool was_armed = it != registry.points.end() && it->second.remaining != 0;
  if (it != registry.points.end()) state.hits = it->second.hits;
  const bool now_armed = state.remaining != 0;
  registry.points[name] = state;
  if (now_armed && !was_armed) {
    internal::g_armed_count.fetch_add(1, std::memory_order_relaxed);
  } else if (!now_armed && was_armed) {
    internal::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

void Disarm(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(name);
  if (it == registry.points.end()) return;
  if (it->second.remaining != 0) {
    internal::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
  registry.points.erase(it);
}

void DisarmAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (const auto& [name, state] : registry.points) {
    if (state.remaining != 0) {
      internal::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  registry.points.clear();
}

Status ArmFromSpecList(const std::string& list) {
  size_t pos = 0;
  while (pos < list.size()) {
    size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    const std::string entry = list.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("bad failpoint entry '" + entry +
                                     "' (want name=spec)");
    }
    PARJ_RETURN_NOT_OK(Arm(entry.substr(0, eq), entry.substr(eq + 1)));
  }
  return Status::OK();
}

uint64_t HitCount(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(name);
  return it == registry.points.end() ? 0 : it->second.hits;
}

std::vector<std::string> ArmedNames() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<std::string> names;
  for (const auto& [name, state] : registry.points) {
    if (state.remaining != 0) names.push_back(name);
  }
  return names;
}

namespace internal {

Status Eval(const char* name) {
  Action action;
  double sleep_millis = 0.0;
  {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    auto it = registry.points.find(name);
    if (it == registry.points.end() || it->second.remaining == 0) {
      return Status::OK();
    }
    FailpointState& state = it->second;
    if (state.remaining > 0 && --state.remaining == 0) {
      g_armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
    ++state.hits;
    action = state.action;
    sleep_millis = state.sleep_millis;
  }
  const std::string tag = std::string(" (injected by failpoint '") + name +
                          "')";
  switch (action) {
    case Action::kError:
      return Status::Internal("fault" + tag);
    case Action::kIoError:
      return Status::IoError("I/O fault" + tag);
    case Action::kDataLoss:
      return Status::DataLoss("integrity fault" + tag);
    case Action::kExhausted:
      return Status::ResourceExhausted("transient fault" + tag);
    case Action::kThrow:
      throw std::bad_alloc();
    case Action::kSleep:
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          sleep_millis));
      return Status::OK();
    case Action::kTorn:
      // Sites that understand torn writes intercept via ConsumeTorn before
      // evaluating; reaching here means the site can't tear its write, so
      // fail it like a medium fault.
      return Status::IoError("torn-write fault" + tag);
  }
  return Status::OK();
}

}  // namespace internal

std::optional<size_t> ConsumeTorn(const char* name) {
  if (!AnyArmed()) return std::nullopt;
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(name);
  if (it == registry.points.end() || it->second.remaining == 0 ||
      it->second.action != Action::kTorn) {
    return std::nullopt;
  }
  FailpointState& state = it->second;
  if (state.remaining > 0 && --state.remaining == 0) {
    internal::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
  ++state.hits;
  return state.torn_bytes;
}

}  // namespace parj::failpoint
