#include "common/crc32c.h"

#include <array>

namespace parj {

namespace {

/// Slicing-by-4 tables: table[0] is the classic byte-at-a-time table for
/// the reflected Castagnoli polynomial; table[k] advances a byte k extra
/// positions, so four bytes fold in with four independent lookups per
/// 32-bit word instead of four dependent ones.
constexpr uint32_t kPoly = 0x82F63B78u;

constexpr std::array<std::array<uint32_t, 256>, 4> BuildTables() {
  std::array<std::array<uint32_t, 256>, 4> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    tables[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = tables[0][i];
    for (size_t k = 1; k < 4; ++k) {
      crc = tables[0][crc & 0xFFu] ^ (crc >> 8);
      tables[k][i] = crc;
    }
  }
  return tables;
}

constexpr auto kTables = BuildTables();

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t length) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  while (length >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = kTables[3][crc & 0xFFu] ^ kTables[2][(crc >> 8) & 0xFFu] ^
          kTables[1][(crc >> 16) & 0xFFu] ^ kTables[0][crc >> 24];
    p += 4;
    length -= 4;
  }
  while (length-- > 0) {
    crc = kTables[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace parj
