#ifndef PARJ_COMMON_DURABLE_IO_H_
#define PARJ_COMMON_DURABLE_IO_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace parj::io {

/// Durable file-system primitives shared by every persistence path
/// (snapshot saves, WAL segments, WAL manifests). POSIX gives three
/// separate durability promises and a crash-safe writer needs all of
/// them, in order:
///
///   1. fsync(file)       the file's bytes survive power loss
///   2. rename(tmp, dst)  the name flips atomically between two complete
///                        states (never a truncated dst)
///   3. fsync(parent dir) the *rename itself* survives power loss — a
///                        rename is a mutation of the directory, and an
///                        unsynced directory can forget it
///
/// Skipping (1) risks renaming an empty file into place; skipping (3)
/// risks the classic "file vanished after reboot" bug. Every helper
/// returns IoError with the failing path in the message.

/// fsync() the file at `path` (opens it read-only just for the sync).
Status FsyncFile(const std::string& path);

/// fsync() the directory containing `path`, making any rename/create/
/// unlink of `path` itself durable. "." is used when `path` has no
/// directory component.
Status FsyncParentDir(const std::string& path);

/// fsync() an already-open descriptor; `what` names it in errors.
Status FsyncFd(int fd, const std::string& what);

/// write() the full buffer, retrying short writes and EINTR.
Status WriteFully(int fd, const void* data, size_t n, const std::string& what);

/// rename(from, to) followed by FsyncParentDir(to): the atomic publish
/// step of every tmp+rename save.
Status RenameDurable(const std::string& from, const std::string& to);

/// Atomically and durably replaces `path` with `bytes`: writes
/// `path.tmp`, fsyncs it, renames into place and fsyncs the parent
/// directory. A crash at any point leaves either the old complete file or
/// the new complete file at `path`, never a mix. Used for small control
/// files (the WAL manifest).
Status WriteFileDurable(const std::string& path, std::string_view bytes);

/// Directory component of `path` ("." when there is none).
std::string ParentDir(const std::string& path);

}  // namespace parj::io

#endif  // PARJ_COMMON_DURABLE_IO_H_
