#include "common/durable_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace parj::io {
namespace {

std::string Errno(const char* op, const std::string& path) {
  return std::string(op) + " failed for '" + path + "': " + std::strerror(errno);
}

}  // namespace

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status FsyncFd(int fd, const std::string& what) {
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return Status::IoError(Errno("fsync", what));
  return Status::OK();
}

Status FsyncFile(const std::string& path) {
  int fd;
  do {
    fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return Status::IoError(Errno("open", path));
  Status status = FsyncFd(fd, path);
  ::close(fd);
  return status;
}

Status FsyncParentDir(const std::string& path) {
  const std::string dir = ParentDir(path);
  int fd;
  do {
    fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return Status::IoError(Errno("open directory", dir));
  Status status = FsyncFd(fd, dir);
  ::close(fd);
  return status;
}

Status WriteFully(int fd, const void* data, size_t n, const std::string& what) {
  const char* cursor = static_cast<const char*>(data);
  size_t remaining = n;
  while (remaining > 0) {
    const ssize_t written = ::write(fd, cursor, remaining);
    if (written < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(Errno("write", what));
    }
    cursor += written;
    remaining -= static_cast<size_t>(written);
  }
  return Status::OK();
}

Status RenameDurable(const std::string& from, const std::string& to) {
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    return Status::IoError("rename failed for '" + from + "' -> '" + to +
                           "': " + std::strerror(errno));
  }
  return FsyncParentDir(to);
}

Status WriteFileDurable(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  int fd;
  do {
    fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return Status::IoError(Errno("open", tmp));
  Status status = WriteFully(fd, bytes.data(), bytes.size(), tmp);
  if (status.ok()) status = FsyncFd(fd, tmp);
  ::close(fd);
  if (!status.ok()) {
    std::remove(tmp.c_str());
    return status;
  }
  return RenameDurable(tmp, path);
}

}  // namespace parj::io
