#ifndef PARJ_QUERY_ALGEBRA_H_
#define PARJ_QUERY_ALGEBRA_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "rdf/term.h"
#include "storage/database.h"

namespace parj::mut {
class TermOverlay;
}  // namespace parj::mut

namespace parj::query {

/// A triple-pattern slot at the string level: either a variable or a
/// concrete RDF term.
struct TermOrVar {
  bool is_variable = false;
  std::string var;   ///< variable name without the '?' sigil
  rdf::Term term;    ///< valid when !is_variable

  static TermOrVar Variable(std::string name) {
    TermOrVar t;
    t.is_variable = true;
    t.var = std::move(name);
    return t;
  }
  static TermOrVar Constant(rdf::Term term) {
    TermOrVar t;
    t.term = std::move(term);
    return t;
  }
};

/// One SPARQL triple pattern at the string level.
struct TriplePatternAst {
  TermOrVar subject;
  TermOrVar predicate;
  TermOrVar object;
};

/// Comparison operator of a FILTER expression.
enum class FilterOp : uint8_t {
  kEq = 0,   // =
  kNe = 1,   // !=
  kLt = 2,   // <
  kLe = 3,   // <=
  kGt = 4,   // >
  kGe = 5,   // >=
};

const char* FilterOpName(FilterOp op);

/// One FILTER(lhs op rhs) constraint at the string level. The engine
/// evaluates the SPARQL subset that the paper's workloads need:
/// equality/inequality between any terms, and numeric ordering between a
/// variable and a numeric literal (or two variables bound to numeric
/// literals).
struct FilterAst {
  TermOrVar lhs;
  FilterOp op = FilterOp::kEq;
  TermOrVar rhs;
};

/// Aggregate function of a SELECT expression.
enum class AggFunc : uint8_t {
  kCount = 0,      // COUNT(?x) — rows where ?x is bound (always, here)
  kCountStar = 1,  // COUNT(*)
  kSum = 2,        // SUM(?x) over numeric bindings
  kMin = 3,        // MIN(?x) over numeric bindings
  kMax = 4,        // MAX(?x) over numeric bindings
};

const char* AggFuncName(AggFunc func);

/// One `(FUNC(?arg) AS ?alias)` select expression at the string level.
struct AggregateAst {
  AggFunc func = AggFunc::kCountStar;
  std::string arg;    ///< argument variable; empty for COUNT(*)
  std::string alias;  ///< output name (the AS variable, no sigil)
};

/// One ORDER BY key at the string level: a result variable (projected
/// variable or aggregate alias), optionally wrapped in DESC(...).
struct OrderKeyAst {
  std::string var;
  bool descending = false;
};

/// A parsed SELECT query over a Basic Graph Pattern (or a UNION of them).
struct SelectQueryAst {
  bool distinct = false;
  bool select_all = false;               ///< SELECT *
  std::vector<std::string> projection;   ///< plain selected variables
  /// Aggregate select expressions; non-empty makes this an aggregate
  /// query (plain `projection` variables must then appear in `group_by`).
  std::vector<AggregateAst> aggregates;
  std::vector<std::string> group_by;     ///< GROUP BY variables, in order
  std::vector<OrderKeyAst> order_by;     ///< ORDER BY keys, in order
  std::vector<TriplePatternAst> patterns;
  std::vector<FilterAst> filters;
  /// Additional UNION arms; `patterns`/`filters` form the first arm. Every
  /// arm must bind all projected variables.
  struct UnionArm {
    std::vector<TriplePatternAst> patterns;
    std::vector<FilterAst> filters;
  };
  std::vector<UnionArm> union_arms;
  uint64_t limit = 0;                    ///< 0 = no limit
};

/// A triple-pattern slot after dictionary encoding.
struct PatternTerm {
  enum class Kind : uint8_t { kVariable = 0, kConstant = 1 };
  Kind kind = Kind::kVariable;
  int var = -1;                ///< dense variable id when kVariable
  TermId constant = kInvalidTermId;  ///< when kConstant

  bool is_variable() const { return kind == Kind::kVariable; }
  bool is_constant() const { return kind == Kind::kConstant; }

  static PatternTerm Variable(int id) {
    PatternTerm t;
    t.kind = Kind::kVariable;
    t.var = id;
    return t;
  }
  static PatternTerm Constant(TermId id) {
    PatternTerm t;
    t.kind = Kind::kConstant;
    t.constant = id;
    return t;
  }
};

/// A dictionary-encoded triple pattern. Variable predicates are not
/// supported by the engine (paper §3: "rarely encountered in real world
/// queries"); encoding rejects them.
struct EncodedPattern {
  PatternTerm subject;
  PredicateId predicate = kInvalidPredicateId;
  PatternTerm object;

  /// The slot playing `role`.
  const PatternTerm& slot(storage::Role role) const {
    return role == storage::Role::kSubject ? subject : object;
  }
};

/// A dictionary-encoded FILTER constraint, ready for evaluation. Equality
/// and inequality compare term IDs; ordering comparisons against a numeric
/// constant are precompiled into a passing-ID bitmap (so the hot path is
/// one bit test per candidate row).
struct EncodedFilter {
  PatternTerm lhs;  ///< always a variable after normalization
  FilterOp op = FilterOp::kEq;
  PatternTerm rhs;  ///< variable (kEq/kNe only) or constant
  /// For ordering ops with a numeric constant: passing[id] == true iff the
  /// term with that ID is a numeric literal satisfying the comparison.
  std::shared_ptr<const std::vector<bool>> passing;
};

/// Kind of value held in one output column of a query result. Plain BGP
/// results are all kTerm; aggregate results mix kinds per column.
enum class ColumnKind : uint8_t {
  kTerm = 0,    ///< a TermId (decode through the dictionary)
  kCount = 1,   ///< a raw uint64 count
  kNumber = 2,  ///< a double, bit-cast into the uint64 cell (NaN = empty)
};

/// One encoded aggregate: the function plus the executor-row column its
/// argument variable occupies (-1 for COUNT(*), which reads no column).
struct EncodedAggregate {
  AggFunc func = AggFunc::kCountStar;
  int input_col = -1;
};

/// Aggregation spec carried by EncodedQuery/Plan. When enabled, the
/// executor-row layout (EncodedQuery::projection) is
/// [group vars in GROUP BY order] ++ [distinct aggregate-argument vars],
/// so the first `group_cols` columns of every emitted row are the group
/// key and `EncodedAggregate::input_col` indexes into the same row.
struct AggregateSpec {
  bool enabled = false;
  int group_cols = 0;
  std::vector<EncodedAggregate> aggs;
  /// Final output layout, one entry per result column: v >= 0 selects
  /// group column v; v < 0 selects aggregate ~v.
  std::vector<int> output;
  std::vector<std::string> output_names;  ///< result header, per column
  std::vector<ColumnKind> column_kinds;   ///< per output column
};

/// One encoded ORDER BY key: an index into the final output columns.
/// Comparison is by ColumnKind — kTerm compares TermIds (deterministic
/// dictionary-encoding order), kCount unsigned, kNumber double with NaN
/// (empty MIN/MAX) ordered last; ties break on the full row so the total
/// order is unique.
struct OrderKey {
  int column = 0;
  bool descending = false;
};

/// A fully encoded query, ready for the optimizer.
struct EncodedQuery {
  std::vector<EncodedPattern> patterns;
  std::vector<EncodedFilter> filters;
  int variable_count = 0;
  std::vector<std::string> var_names;  ///< index = variable id
  std::vector<int> projection;         ///< variable ids, SELECT order
  bool distinct = false;
  uint64_t limit = 0;
  AggregateSpec aggregate;
  std::vector<OrderKey> order_by;
  /// TermId -> numeric value (NaN = non-numeric term), indexed over base
  /// + overlay IDs like the filter bitmaps. Built only when a SUM/MIN/MAX
  /// aggregate is present. Epoch-bound: overlay terms can appear within a
  /// plan generation, so plans holding this table must never be cached.
  std::shared_ptr<const std::vector<double>> numeric_values;
  /// True when some constant (resource or predicate) does not occur in the
  /// dictionary — the query's result is empty without executing anything.
  bool known_empty = false;
};

/// Parses a term as a numeric value (integer or decimal literal, typed or
/// plain). Returns false for non-numeric terms.
bool TryNumericValue(const rdf::Term& term, double* value);

/// Evaluates an encoded filter against a full-width binding row (indexed
/// by variable id). All referenced variables must be bound.
inline bool EvaluateFilter(const EncodedFilter& filter,
                           const TermId* bindings) {
  const TermId lhs = bindings[filter.lhs.var];
  if (filter.passing != nullptr) return (*filter.passing)[lhs];
  const TermId rhs = filter.rhs.is_variable() ? bindings[filter.rhs.var]
                                              : filter.rhs.constant;
  return filter.op == FilterOp::kEq ? lhs == rhs : lhs != rhs;
}

/// Encodes a parsed query against `db`'s dictionary. Unknown constants mark
/// the query `known_empty` rather than failing. Returns InvalidArgument for
/// unsupported shapes (variable predicate, projection of an unused
/// variable, no patterns).
///
/// `overlay` (optional) holds terms allocated by pending writes past the
/// base dictionary (mut::TermOverlay): constants missing from `db` are
/// then also probed there before marking the query known_empty, and
/// ordering-FILTER passing bitmaps are sized and populated over base +
/// overlay IDs so overlay bindings index them safely.
Result<EncodedQuery> EncodeQuery(const SelectQueryAst& ast,
                                 const storage::Database& db,
                                 const mut::TermOverlay* overlay = nullptr);

}  // namespace parj::query

#endif  // PARJ_QUERY_ALGEBRA_H_
