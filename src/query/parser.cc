#include "query/parser.h"

#include <cctype>
#include <unordered_map>

#include "common/strings.h"

namespace parj::query {

namespace {

constexpr std::string_view kRdfType =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
constexpr std::string_view kXsdInteger =
    "http://www.w3.org/2001/XMLSchema#integer";

enum class TokenKind {
  kEof,
  kKeyword,   // SELECT, DISTINCT, WHERE, PREFIX, LIMIT, FILTER, UNION, a
  kVariable,  // ?name
  kIri,       // <...>
  kPrefixedName,  // ns:local  (also bare "ns:" allowed)
  kLiteral,   // full term already parsed
  kInteger,   // bare number
  kPunct,     // { } . ; , * ( )
  kOperator,  // = != < <= > >= &&
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;       // keyword (upper-cased), variable name, iri, etc.
  rdf::Term literal;      // kLiteral
  uint64_t number = 0;    // kInteger
  char punct = 0;         // kPunct
  size_t offset = 0;      // for error messages
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<Token> Next() {
    SkipWhitespaceAndComments();
    Token tok;
    tok.offset = pos_;
    if (pos_ >= text_.size()) {
      tok.kind = TokenKind::kEof;
      return tok;
    }
    char c = text_[pos_];
    if (c == '{' || c == '}' || c == '.' || c == ';' || c == ',' ||
        c == '*' || c == '(' || c == ')') {
      ++pos_;
      tok.kind = TokenKind::kPunct;
      tok.punct = c;
      return tok;
    }
    if (c == '=' || c == '!' || c == '&' ||
        ((c == '<' || c == '>') && pos_ + 1 < text_.size() &&
         (text_[pos_ + 1] == '=' || text_[pos_ + 1] == ' ' ||
          text_[pos_ + 1] == '?' || text_[pos_ + 1] == '$' ||
          std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])) ||
          text_[pos_ + 1] == '"'))) {
      // '<' is only an operator when it cannot start an IRI: before '=',
      // whitespace, a variable sigil, a number or a quoted literal.
      // "< " / "<= " / "<5" are comparisons; "<http://..." stays an IRI.
      tok.kind = TokenKind::kOperator;
      if (c == '=' ) {
        tok.text = "=";
        ++pos_;
        return tok;
      }
      if (c == '!') {
        if (pos_ + 1 >= text_.size() || text_[pos_ + 1] != '=') {
          return Error("expected '=' after '!'");
        }
        tok.text = "!=";
        pos_ += 2;
        return tok;
      }
      if (c == '&') {
        if (pos_ + 1 >= text_.size() || text_[pos_ + 1] != '&') {
          return Error("expected '&' after '&'");
        }
        tok.text = "&&";
        pos_ += 2;
        return tok;
      }
      // '<' or '>'.
      if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
        tok.text = std::string(1, c) + "=";
        pos_ += 2;
      } else {
        tok.text = std::string(1, c);
        ++pos_;
      }
      return tok;
    }
    if (c == '>') {
      tok.kind = TokenKind::kOperator;
      if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
        tok.text = ">=";
        pos_ += 2;
      } else {
        tok.text = ">";
        ++pos_;
      }
      return tok;
    }
    if (c == '?' || c == '$') {
      ++pos_;
      size_t start = pos_;
      while (pos_ < text_.size() && IsNameChar(text_[pos_])) ++pos_;
      if (pos_ == start) return Error("empty variable name");
      tok.kind = TokenKind::kVariable;
      tok.text = std::string(text_.substr(start, pos_ - start));
      return tok;
    }
    if (c == '<') {
      size_t end = text_.find('>', pos_ + 1);
      if (end == std::string_view::npos) return Error("unterminated IRI");
      tok.kind = TokenKind::kIri;
      tok.text = std::string(text_.substr(pos_ + 1, end - pos_ - 1));
      pos_ = end + 1;
      return tok;
    }
    if (c == '"') {
      return LexLiteral();
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      tok.kind = TokenKind::kInteger;
      tok.number = std::stoull(std::string(text_.substr(start, pos_ - start)));
      tok.text = std::string(text_.substr(start, pos_ - start));
      return tok;
    }
    if (IsNameStartChar(c)) {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (IsNameChar(text_[pos_]) || text_[pos_] == ':')) {
        ++pos_;
      }
      std::string word(text_.substr(start, pos_ - start));
      if (word.find(':') != std::string::npos) {
        tok.kind = TokenKind::kPrefixedName;
        tok.text = std::move(word);
        return tok;
      }
      std::string upper = word;
      for (char& ch : upper) ch = static_cast<char>(std::toupper(ch));
      if (upper == "SELECT" || upper == "DISTINCT" || upper == "WHERE" ||
          upper == "PREFIX" || upper == "LIMIT" || upper == "FILTER" ||
          upper == "UNION" || upper == "GROUP" || upper == "BY" ||
          upper == "ORDER" || upper == "ASC" || upper == "DESC" ||
          upper == "AS" || upper == "COUNT" || upper == "SUM" ||
          upper == "MIN" || upper == "MAX") {
        tok.kind = TokenKind::kKeyword;
        tok.text = std::move(upper);
        return tok;
      }
      if (word == "a") {
        tok.kind = TokenKind::kKeyword;
        tok.text = "a";
        return tok;
      }
      return Error("unexpected word '" + word + "'");
    }
    return Error(std::string("unexpected character '") + c + "'");
  }

 private:
  static bool IsNameStartChar(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  }
  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
  }

  Result<Token> LexLiteral() {
    size_t end = pos_ + 1;
    bool escaped = false;
    while (end < text_.size()) {
      if (escaped) {
        escaped = false;
      } else if (text_[end] == '\\') {
        escaped = true;
      } else if (text_[end] == '"') {
        break;
      }
      ++end;
    }
    if (end >= text_.size()) return Error("unterminated literal");
    PARJ_ASSIGN_OR_RETURN(
        std::string value,
        rdf::UnescapeLiteral(text_.substr(pos_ + 1, end - pos_ - 1)));
    pos_ = end + 1;
    Token tok;
    tok.kind = TokenKind::kLiteral;
    if (pos_ < text_.size() && text_[pos_] == '@') {
      size_t start = ++pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ == start) return Error("empty language tag");
      tok.literal = rdf::Term::LangLiteral(
          std::move(value), std::string(text_.substr(start, pos_ - start)));
      return tok;
    }
    if (pos_ + 1 < text_.size() && text_[pos_] == '^' &&
        text_[pos_ + 1] == '^') {
      pos_ += 2;
      if (pos_ >= text_.size() || text_[pos_] != '<') {
        return Error("expected datatype IRI after ^^");
      }
      size_t dt_end = text_.find('>', pos_ + 1);
      if (dt_end == std::string_view::npos) {
        return Error("unterminated datatype IRI");
      }
      tok.literal = rdf::Term::TypedLiteral(
          std::move(value),
          std::string(text_.substr(pos_ + 1, dt_end - pos_ - 1)));
      pos_ = dt_end + 1;
      return tok;
    }
    tok.literal = rdf::Term::Literal(std::move(value));
    return tok;
  }

  void SkipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  Status Error(std::string msg) const {
    return Status::ParseError(msg + " at offset " + std::to_string(pos_));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(std::string_view text) : lexer_(text) {}

  Result<SelectQueryAst> Parse() {
    PARJ_RETURN_NOT_OK(Advance());
    SelectQueryAst ast;

    while (IsKeyword("PREFIX")) {
      PARJ_RETURN_NOT_OK(ParsePrefix());
    }

    if (!IsKeyword("SELECT")) {
      return Status::ParseError("expected SELECT");
    }
    PARJ_RETURN_NOT_OK(Advance());

    if (IsKeyword("DISTINCT")) {
      ast.distinct = true;
      PARJ_RETURN_NOT_OK(Advance());
    }

    if (IsPunct('*')) {
      ast.select_all = true;
      PARJ_RETURN_NOT_OK(Advance());
    } else {
      while (true) {
        if (current_.kind == TokenKind::kVariable) {
          ast.projection.push_back(current_.text);
          PARJ_RETURN_NOT_OK(Advance());
          continue;
        }
        if (IsPunct('(')) {
          PARJ_RETURN_NOT_OK(ParseAggregateExpr(&ast));
          continue;
        }
        break;
      }
      if (ast.projection.empty() && ast.aggregates.empty()) {
        return Status::ParseError("expected projection variables or *");
      }
    }
    if (!ast.aggregates.empty() && ast.distinct) {
      return Status::ParseError("DISTINCT with aggregates is not supported");
    }

    if (!IsKeyword("WHERE")) {
      return Status::ParseError("expected WHERE");
    }
    PARJ_RETURN_NOT_OK(Advance());
    if (!IsPunct('{')) return Status::ParseError("expected '{'");
    PARJ_RETURN_NOT_OK(Advance());

    if (IsPunct('{')) {
      // Union of group graph patterns: { {..} UNION {..} [UNION {..}]* }.
      bool first = true;
      while (true) {
        if (!IsPunct('{')) return Status::ParseError("expected '{'");
        PARJ_RETURN_NOT_OK(Advance());
        std::vector<TriplePatternAst> patterns;
        std::vector<FilterAst> filters;
        PARJ_RETURN_NOT_OK(ParseBgp(&patterns, &filters));
        if (!IsPunct('}')) return Status::ParseError("expected '}'");
        PARJ_RETURN_NOT_OK(Advance());
        if (first) {
          ast.patterns = std::move(patterns);
          ast.filters = std::move(filters);
          first = false;
        } else {
          ast.union_arms.push_back(
              SelectQueryAst::UnionArm{std::move(patterns),
                                       std::move(filters)});
        }
        if (!IsKeyword("UNION")) break;
        PARJ_RETURN_NOT_OK(Advance());
      }
    } else {
      PARJ_RETURN_NOT_OK(ParseBgp(&ast.patterns, &ast.filters));
    }

    if (!IsPunct('}')) return Status::ParseError("expected '}'");
    PARJ_RETURN_NOT_OK(Advance());

    if (IsKeyword("GROUP")) {
      PARJ_RETURN_NOT_OK(Advance());
      if (!IsKeyword("BY")) {
        return Status::ParseError("expected BY after GROUP");
      }
      PARJ_RETURN_NOT_OK(Advance());
      while (current_.kind == TokenKind::kVariable) {
        ast.group_by.push_back(current_.text);
        PARJ_RETURN_NOT_OK(Advance());
      }
      if (ast.group_by.empty()) {
        return Status::ParseError("expected variables after GROUP BY");
      }
    }

    if (IsKeyword("ORDER")) {
      PARJ_RETURN_NOT_OK(Advance());
      if (!IsKeyword("BY")) {
        return Status::ParseError("expected BY after ORDER");
      }
      PARJ_RETURN_NOT_OK(Advance());
      while (true) {
        OrderKeyAst key;
        if (IsKeyword("ASC") || IsKeyword("DESC")) {
          key.descending = IsKeyword("DESC");
          PARJ_RETURN_NOT_OK(Advance());
          if (!IsPunct('(')) {
            return Status::ParseError("expected '(' after ASC/DESC");
          }
          PARJ_RETURN_NOT_OK(Advance());
          if (current_.kind != TokenKind::kVariable) {
            return Status::ParseError("expected variable inside ASC/DESC");
          }
          key.var = current_.text;
          PARJ_RETURN_NOT_OK(Advance());
          if (!IsPunct(')')) {
            return Status::ParseError("expected ')' after ASC/DESC variable");
          }
          PARJ_RETURN_NOT_OK(Advance());
        } else if (current_.kind == TokenKind::kVariable) {
          key.var = current_.text;
          PARJ_RETURN_NOT_OK(Advance());
        } else {
          break;
        }
        ast.order_by.push_back(std::move(key));
      }
      if (ast.order_by.empty()) {
        return Status::ParseError("expected sort keys after ORDER BY");
      }
    }

    if ((!ast.aggregates.empty() || !ast.group_by.empty() ||
         !ast.order_by.empty()) &&
        !ast.union_arms.empty()) {
      return Status::ParseError(
          "GROUP BY / aggregates / ORDER BY are not supported with UNION");
    }

    if (IsKeyword("LIMIT")) {
      PARJ_RETURN_NOT_OK(Advance());
      if (current_.kind != TokenKind::kInteger) {
        return Status::ParseError("expected integer after LIMIT");
      }
      ast.limit = current_.number;
      PARJ_RETURN_NOT_OK(Advance());
    }

    if (current_.kind != TokenKind::kEof) {
      return Status::ParseError("trailing input after query");
    }
    if (ast.patterns.empty()) {
      return Status::ParseError("empty basic graph pattern");
    }
    return ast;
  }

 private:
  Status Advance() {
    PARJ_ASSIGN_OR_RETURN(current_, lexer_.Next());
    return Status::OK();
  }

  bool IsKeyword(std::string_view kw) const {
    return current_.kind == TokenKind::kKeyword && current_.text == kw;
  }
  bool IsPunct(char c) const {
    return current_.kind == TokenKind::kPunct && current_.punct == c;
  }

  Status ParsePrefix() {
    PARJ_RETURN_NOT_OK(Advance());  // consume PREFIX
    if (current_.kind != TokenKind::kPrefixedName ||
        current_.text.back() != ':' ||
        current_.text.find(':') != current_.text.size() - 1) {
      return Status::ParseError("expected 'name:' after PREFIX");
    }
    std::string prefix = current_.text.substr(0, current_.text.size() - 1);
    PARJ_RETURN_NOT_OK(Advance());
    if (current_.kind != TokenKind::kIri) {
      return Status::ParseError("expected IRI after PREFIX name");
    }
    prefixes_[prefix] = current_.text;
    return Advance();
  }

  /// '(' FUNC '(' (?var | '*') ')' AS ?alias ')' — one aggregate select
  /// expression; the leading '(' is the current token.
  Status ParseAggregateExpr(SelectQueryAst* ast) {
    PARJ_RETURN_NOT_OK(Advance());  // consume '('
    AggregateAst agg;
    bool is_count = false;
    if (IsKeyword("COUNT")) {
      is_count = true;
      agg.func = AggFunc::kCount;
    } else if (IsKeyword("SUM")) {
      agg.func = AggFunc::kSum;
    } else if (IsKeyword("MIN")) {
      agg.func = AggFunc::kMin;
    } else if (IsKeyword("MAX")) {
      agg.func = AggFunc::kMax;
    } else {
      return Status::ParseError("expected COUNT, SUM, MIN or MAX after '('");
    }
    PARJ_RETURN_NOT_OK(Advance());
    if (!IsPunct('(')) {
      return Status::ParseError("expected '(' after aggregate function");
    }
    PARJ_RETURN_NOT_OK(Advance());
    if (IsPunct('*')) {
      if (!is_count) {
        return Status::ParseError("'*' is only valid inside COUNT");
      }
      agg.func = AggFunc::kCountStar;
      PARJ_RETURN_NOT_OK(Advance());
    } else if (current_.kind == TokenKind::kVariable) {
      agg.arg = current_.text;
      PARJ_RETURN_NOT_OK(Advance());
    } else {
      return Status::ParseError("expected variable or '*' in aggregate");
    }
    if (!IsPunct(')')) {
      return Status::ParseError("expected ')' after aggregate argument");
    }
    PARJ_RETURN_NOT_OK(Advance());
    if (!IsKeyword("AS")) {
      return Status::ParseError("expected AS in aggregate expression");
    }
    PARJ_RETURN_NOT_OK(Advance());
    if (current_.kind != TokenKind::kVariable) {
      return Status::ParseError("expected variable after AS");
    }
    agg.alias = current_.text;
    PARJ_RETURN_NOT_OK(Advance());
    if (!IsPunct(')')) {
      return Status::ParseError("expected ')' closing aggregate expression");
    }
    PARJ_RETURN_NOT_OK(Advance());
    ast->aggregates.push_back(std::move(agg));
    return Status::OK();
  }

  Result<TermOrVar> ParseSlot(bool predicate_position) {
    switch (current_.kind) {
      case TokenKind::kVariable: {
        TermOrVar t = TermOrVar::Variable(current_.text);
        PARJ_RETURN_NOT_OK(Advance());
        return t;
      }
      case TokenKind::kIri: {
        TermOrVar t = TermOrVar::Constant(rdf::Term::Iri(current_.text));
        PARJ_RETURN_NOT_OK(Advance());
        return t;
      }
      case TokenKind::kPrefixedName: {
        size_t colon = current_.text.find(':');
        std::string prefix = current_.text.substr(0, colon);
        std::string local = current_.text.substr(colon + 1);
        auto it = prefixes_.find(prefix);
        if (it == prefixes_.end()) {
          return Status::ParseError("undefined prefix '" + prefix + ":'");
        }
        TermOrVar t = TermOrVar::Constant(rdf::Term::Iri(it->second + local));
        PARJ_RETURN_NOT_OK(Advance());
        return t;
      }
      case TokenKind::kLiteral: {
        if (predicate_position) {
          return Status::ParseError("literal in predicate position");
        }
        TermOrVar t = TermOrVar::Constant(current_.literal);
        PARJ_RETURN_NOT_OK(Advance());
        return t;
      }
      case TokenKind::kInteger: {
        if (predicate_position) {
          return Status::ParseError("number in predicate position");
        }
        TermOrVar t = TermOrVar::Constant(rdf::Term::TypedLiteral(
            current_.text, std::string(kXsdInteger)));
        PARJ_RETURN_NOT_OK(Advance());
        return t;
      }
      case TokenKind::kKeyword:
        if (current_.text == "a" && predicate_position) {
          TermOrVar t =
              TermOrVar::Constant(rdf::Term::Iri(std::string(kRdfType)));
          PARJ_RETURN_NOT_OK(Advance());
          return t;
        }
        [[fallthrough]];
      default:
        return Status::ParseError("expected term or variable at offset " +
                                  std::to_string(current_.offset));
    }
  }

  Result<FilterOp> ParseFilterOp() {
    if (current_.kind != TokenKind::kOperator) {
      return Status::ParseError("expected comparison operator in FILTER");
    }
    FilterOp op;
    if (current_.text == "=") {
      op = FilterOp::kEq;
    } else if (current_.text == "!=") {
      op = FilterOp::kNe;
    } else if (current_.text == "<") {
      op = FilterOp::kLt;
    } else if (current_.text == "<=") {
      op = FilterOp::kLe;
    } else if (current_.text == ">") {
      op = FilterOp::kGt;
    } else if (current_.text == ">=") {
      op = FilterOp::kGe;
    } else {
      return Status::ParseError("unknown operator '" + current_.text +
                                "' in FILTER");
    }
    PARJ_RETURN_NOT_OK(Advance());
    return op;
  }

  /// FILTER '(' cmp ('&&' cmp)* ')', each cmp appended to `filters`.
  Status ParseFilter(std::vector<FilterAst>* filters) {
    PARJ_RETURN_NOT_OK(Advance());  // consume FILTER
    if (!IsPunct('(')) return Status::ParseError("expected '(' after FILTER");
    PARJ_RETURN_NOT_OK(Advance());
    while (true) {
      FilterAst filter;
      PARJ_ASSIGN_OR_RETURN(filter.lhs, ParseSlot(false));
      PARJ_ASSIGN_OR_RETURN(filter.op, ParseFilterOp());
      PARJ_ASSIGN_OR_RETURN(filter.rhs, ParseSlot(false));
      filters->push_back(std::move(filter));
      if (current_.kind == TokenKind::kOperator && current_.text == "&&") {
        PARJ_RETURN_NOT_OK(Advance());
        continue;
      }
      break;
    }
    if (!IsPunct(')')) return Status::ParseError("expected ')' after FILTER");
    return Advance();
  }

  Status ParseBgp(std::vector<TriplePatternAst>* patterns,
                  std::vector<FilterAst>* filters) {
    while (!IsPunct('}')) {
      if (IsKeyword("FILTER")) {
        PARJ_RETURN_NOT_OK(ParseFilter(filters));
        if (IsPunct('.')) PARJ_RETURN_NOT_OK(Advance());
        continue;
      }
      PARJ_ASSIGN_OR_RETURN(TermOrVar subject, ParseSlot(false));
      // predicate-object list: p1 o1, o2 ; p2 o3 .
      while (true) {
        PARJ_ASSIGN_OR_RETURN(TermOrVar predicate, ParseSlot(true));
        while (true) {
          PARJ_ASSIGN_OR_RETURN(TermOrVar object, ParseSlot(false));
          patterns->push_back(
              TriplePatternAst{subject, predicate, object});
          if (IsPunct(',')) {
            PARJ_RETURN_NOT_OK(Advance());
            continue;
          }
          break;
        }
        if (IsPunct(';')) {
          PARJ_RETURN_NOT_OK(Advance());
          // Allow a dangling ';' before '.' or '}' (Turtle does).
          if (IsPunct('.') || IsPunct('}')) break;
          continue;
        }
        break;
      }
      if (IsPunct('.')) {
        PARJ_RETURN_NOT_OK(Advance());
        continue;
      }
      if (!IsPunct('}')) {
        return Status::ParseError("expected '.', ';', ',' or '}' in BGP");
      }
    }
    return Status::OK();
  }

  Lexer lexer_;
  Token current_;
  std::unordered_map<std::string, std::string> prefixes_;
};

}  // namespace

Result<SelectQueryAst> ParseQuery(std::string_view text) {
  Parser parser(text);
  return parser.Parse();
}

}  // namespace parj::query
