#include "query/normalize.h"

#include <unordered_map>

#include "common/strings.h"

namespace parj::query {

namespace {

/// Executor binding masks are uint64, so shapes beyond 64 variables never
/// reach it anyway; the encoder rejects them on the uncached path.
constexpr size_t kMaxVariables = 64;

void AppendSlot(std::string* key, bool is_var, int var_or_param) {
  key->push_back(is_var ? '?' : '$');
  key->append(std::to_string(var_or_param));
}

}  // namespace

NormalizedQuery NormalizeQuery(const SelectQueryAst& ast) {
  NormalizedQuery out;
  auto reject = [&](const char* why) {
    out.eligible = false;
    out.ineligible_reason = why;
    return out;
  };
  if (!ast.union_arms.empty()) return reject("UNION");
  if (ast.patterns.empty()) return reject("no patterns");

  std::unordered_map<std::string, int> var_ids;
  auto intern_var = [&](const std::string& name) {
    auto it = var_ids.find(name);
    if (it != var_ids.end()) return it->second;
    const int id = static_cast<int>(out.var_names.size());
    var_ids.emplace(name, id);
    out.var_names.push_back(name);
    return id;
  };
  auto lift_param = [&](const rdf::Term& term) {
    const int idx = static_cast<int>(out.params.size());
    out.params.push_back(term);
    return idx;
  };

  std::string& key = out.shape_key;
  if (ast.distinct) key.push_back('D');
  key.push_back('|');

  for (const TriplePatternAst& p : ast.patterns) {
    if (p.predicate.is_variable) return reject("variable predicate");
    NormalizedQuery::PatternParams pp;
    if (p.subject.is_variable) {
      AppendSlot(&key, true, intern_var(p.subject.var));
    } else {
      pp.subject = lift_param(p.subject.term);
      AppendSlot(&key, false, pp.subject);
    }
    key.push_back(' ');
    pp.predicate = lift_param(p.predicate.term);
    AppendSlot(&key, false, pp.predicate);
    key.push_back(' ');
    if (p.object.is_variable) {
      AppendSlot(&key, true, intern_var(p.object.var));
    } else {
      pp.object = lift_param(p.object.term);
      AppendSlot(&key, false, pp.object);
    }
    key.push_back(';');
    out.pattern_params.push_back(pp);
  }
  if (out.var_names.size() > kMaxVariables) return reject("too many variables");

  for (const FilterAst& f : ast.filters) {
    // Mirror the encoder's normalization: a lone variable goes left
    // (kEq / kNe are symmetric, so no operator flip is needed here).
    const TermOrVar* lhs = &f.lhs;
    const TermOrVar* rhs = &f.rhs;
    if (!lhs->is_variable && rhs->is_variable) std::swap(lhs, rhs);
    if (f.op != FilterOp::kEq && f.op != FilterOp::kNe) {
      // Ordering filters precompile passing bitmaps against one epoch's
      // dictionary — not parameterizable.
      return reject("ordering FILTER");
    }
    if (!lhs->is_variable) return reject("constant-constant FILTER");
    const auto lhs_it = var_ids.find(lhs->var);
    if (lhs_it == var_ids.end()) return reject("FILTER variable not in BGP");

    NormalizedQuery::FilterParam fp;
    fp.op = f.op;
    fp.lhs_var = lhs_it->second;
    key.push_back('|');
    AppendSlot(&key, true, fp.lhs_var);
    key.append(f.op == FilterOp::kEq ? "=" : "!=");
    if (rhs->is_variable) {
      const auto rhs_it = var_ids.find(rhs->var);
      if (rhs_it == var_ids.end()) return reject("FILTER variable not in BGP");
      fp.rhs_var = rhs_it->second;
      AppendSlot(&key, true, fp.rhs_var);
    } else {
      fp.rhs_param = lift_param(rhs->term);
      AppendSlot(&key, false, fp.rhs_param);
    }
    out.filter_params.push_back(fp);
  }

  key.append("|P:");
  if (ast.select_all) {
    key.push_back('*');
  } else {
    for (const std::string& name : ast.projection) {
      const auto it = var_ids.find(name);
      if (it == var_ids.end()) return reject("projected variable not in BGP");
      key.append(std::to_string(it->second));
      key.push_back(',');
    }
  }

  // Aggregation / ORDER BY shape. These sections make an aggregate query's
  // shape key disjoint from the plain-BGP key over the same patterns, so a
  // cached plain plan can never be served for an aggregate form (and vice
  // versa). Aliases are part of the key because output_names ride the plan
  // template verbatim. SUM/MIN/MAX shapes are ineligible: their plans carry
  // the epoch-bound TermId->double numeric table, which must never outlive
  // the snapshot it was built against.
  if (!ast.group_by.empty()) {
    key.append("|G:");
    for (const std::string& name : ast.group_by) {
      const auto it = var_ids.find(name);
      if (it == var_ids.end()) return reject("GROUP BY variable not in BGP");
      key.append(std::to_string(it->second));
      key.push_back(',');
    }
  }
  if (!ast.aggregates.empty()) {
    key.append("|A:");
    for (const AggregateAst& agg : ast.aggregates) {
      if (agg.func == AggFunc::kSum || agg.func == AggFunc::kMin ||
          agg.func == AggFunc::kMax) {
        return reject("epoch-bound numeric table (SUM/MIN/MAX)");
      }
      key.append(AggFuncName(agg.func));
      key.push_back('(');
      if (agg.func == AggFunc::kCountStar) {
        key.push_back('*');
      } else {
        const auto it = var_ids.find(agg.arg);
        if (it == var_ids.end()) return reject("aggregate argument not in BGP");
        AppendSlot(&key, true, it->second);
      }
      key.append(")=");
      key.append(agg.alias);
      key.push_back(';');
    }
  }
  if (!ast.order_by.empty()) {
    key.append("|O:");
    for (const OrderKeyAst& ok : ast.order_by) {
      key.push_back(ok.descending ? '-' : '+');
      bool is_alias = false;
      for (const AggregateAst& agg : ast.aggregates) {
        if (agg.alias == ok.var) {
          is_alias = true;
          break;
        }
      }
      if (is_alias) {
        key.push_back('=');
        key.append(ok.var);
      } else {
        const auto it = var_ids.find(ok.var);
        if (it == var_ids.end()) return reject("ORDER BY variable not in result");
        AppendSlot(&key, true, it->second);
      }
      key.push_back(';');
    }
  }

  if (ast.limit != 0) {
    key.append("|L");
    key.append(std::to_string(ast.limit));
  }

  out.eligible = true;
  return out;
}

}  // namespace parj::query
