#ifndef PARJ_QUERY_OPTIMIZER_H_
#define PARJ_QUERY_OPTIMIZER_H_

#include <vector>

#include "common/status.h"
#include "query/algebra.h"
#include "query/plan.h"
#include "storage/database.h"

namespace parj::mut {
class DeltaView;
}  // namespace parj::mut

namespace parj::query {

struct OptimizerOptions {
  /// Use precomputed pairwise property-join cardinalities as the
  /// corrective step of paper §4.3 when the database has them.
  bool use_pair_stats = true;
  /// Use characteristic-set statistics for subject-star selectivities
  /// when the database has them (paper §4.3's planned extension).
  bool use_characteristic_sets = true;
  /// Exact bottom-up DP is used up to this many patterns; beyond it the
  /// optimizer falls back to greedy extension.
  size_t dp_max_patterns = 14;
  /// When non-empty, bypass join ordering: patterns are planned in exactly
  /// this order (indices into EncodedQuery::patterns); replicas are still
  /// chosen per step. Used by tests and ablation benchmarks.
  std::vector<int> forced_order;
};

/// Produces a left-deep plan for `query` (paper §4.3): bottom-up dynamic
/// programming over left-deep orders, centralized cost model (parallelism
/// deliberately ignored — the paper assumes a fixed speedup factor for
/// every order), per-step replica selection, selectivity from equi-depth
/// histograms plus pairwise join cardinalities.
///
/// `delta` (optional) is the pending-write view the executor will merge
/// with `db`: predicates absent from the base but present in the delta
/// plan against the delta's insert table (exact — a delta-only predicate
/// can have no deletes), instead of being costed as empty. Estimates for
/// predicates that exist in the base deliberately ignore their pending
/// writes; deltas are small next to the base by construction.
Result<Plan> Optimize(const EncodedQuery& query, const storage::Database& db,
                      const OptimizerOptions& options = {},
                      const mut::DeltaView* delta = nullptr);

}  // namespace parj::query

#endif  // PARJ_QUERY_OPTIMIZER_H_
