#ifndef PARJ_QUERY_NORMALIZE_H_
#define PARJ_QUERY_NORMALIZE_H_

#include <string>
#include <vector>

#include "query/algebra.h"

namespace parj::query {

/// A parsed query reduced to its shape: variables interned to dense ids
/// (the same first-occurrence order EncodeQuery uses, so a shape-cached
/// plan's variable ids line up with this query's), constants lifted to
/// positional parameters. Two queries with equal `shape_key` have the
/// same structure, projection, DISTINCT/LIMIT, aggregation (GROUP BY /
/// COUNT shapes / ORDER BY) and filter graph and differ
/// only in their parameter terms — so an optimized plan for one is a
/// valid (if possibly suboptimal) plan skeleton for the other, and
/// binding this query's parameters into it yields exactly the plan
/// structure a fresh Optimize() would produce.
///
/// Normalization is purely syntactic — no dictionary access — which is
/// what lets the shape key address a cache across epochs.
struct NormalizedQuery {
  /// False when the query cannot be parameterized safely: UNION arms,
  /// ordering FILTERs (their passing bitmaps are compiled against one
  /// epoch's dictionary), constant-constant FILTERs (folded by value at
  /// encode time), variable predicates, SUM/MIN/MAX aggregates (their
  /// plans carry an epoch-bound TermId->double table), or malformed
  /// shapes the encoder would reject anyway. Ineligible queries take the
  /// uncached path.
  bool eligible = false;
  const char* ineligible_reason = "";

  /// Canonical shape text; the plan-cache key.
  std::string shape_key;

  /// The lifted constant terms, parameter order = occurrence order
  /// (subject, predicate, object per pattern, then filter constants).
  std::vector<rdf::Term> params;

  /// This query's variable names in dense-id order.
  std::vector<std::string> var_names;

  /// Per pattern: the parameter index of each constant slot (-1 when the
  /// slot is a variable).
  struct PatternParams {
    int subject = -1;
    int predicate = -1;
    int object = -1;
  };
  std::vector<PatternParams> pattern_params;

  /// Per surviving filter, in the encoder's emission order, after the
  /// encoder's lone-variable normalization (constant lhs swapped to the
  /// right with the operator flipped). Eligible shapes only carry
  /// equality / inequality filters, so no passing bitmaps exist.
  struct FilterParam {
    FilterOp op = FilterOp::kEq;
    int lhs_var = -1;
    int rhs_var = -1;    ///< when the rhs is a variable
    int rhs_param = -1;  ///< when the rhs is a constant
  };
  std::vector<FilterParam> filter_params;
};

/// Normalizes a parsed single-BGP query into its shape.
NormalizedQuery NormalizeQuery(const SelectQueryAst& ast);

}  // namespace parj::query

#endif  // PARJ_QUERY_NORMALIZE_H_
