#include "query/optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/logging.h"
#include "mutable/delta_view.h"

namespace parj::query {

namespace {

using storage::Database;
using storage::PropertyEntry;
using storage::ReplicaKind;
using storage::Role;
using storage::TableReplica;

constexpr double kCartesianPenalty = 1e9;
constexpr double kInfCost = std::numeric_limits<double>::infinity();

Role KeyRole(ReplicaKind kind) {
  return kind == ReplicaKind::kSO ? Role::kSubject : Role::kObject;
}
Role ValueRole(ReplicaKind kind) {
  return kind == ReplicaKind::kSO ? Role::kObject : Role::kSubject;
}
ReplicaKind OtherReplica(ReplicaKind kind) {
  return kind == ReplicaKind::kSO ? ReplicaKind::kOS : ReplicaKind::kSO;
}

double Log2Clamped(double x) { return std::log2(std::max(2.0, x)); }

/// Optimizer-side knowledge about a bound variable.
struct VarEstimate {
  double distinct = 1.0;
  /// The property column that first bound the variable, for pairwise-stat
  /// lookups.
  PredicateId prov_pred = kInvalidPredicateId;
  Role prov_role = Role::kSubject;
  /// True when the pipeline enumerates this variable in globally ascending
  /// order (the first step's key variable, or the value variable of a
  /// constant-key first step) — probes keyed on it behave like merge scans.
  bool globally_sorted = false;
  /// Predicates for which this variable already plays the subject role
  /// (sorted) — the star context consumed by characteristic-set
  /// estimation.
  std::vector<PredicateId> star_preds;
};

struct PlanState {
  double cost = 0.0;
  double card = 1.0;
  uint32_t pattern_mask = 0;
  uint64_t bound_vars = 0;
  std::vector<VarEstimate> vars;
  std::vector<std::pair<int, ReplicaKind>> order;

  bool IsVarBound(int v) const { return (bound_vars >> v) & 1; }
};

struct StepOutcome {
  bool feasible = false;
  double step_cost = 0.0;
  double new_card = 0.0;
  PlanState next;
};

class PlannerContext {
 public:
  PlannerContext(const EncodedQuery& query, const Database& db,
                 const OptimizerOptions& options, const mut::DeltaView* delta)
      : query_(query), db_(db), options_(options), delta_(delta) {}

  /// Evaluates appending `pattern_idx` with `kind` to `state`.
  StepOutcome EvaluateStep(const PlanState& state, int pattern_idx,
                           ReplicaKind kind) const {
    StepOutcome out;
    const EncodedPattern& pat = query_.patterns[pattern_idx];
    const PropertyEntry* entry = db_.FindEntry(pat.predicate);
    const storage::PropertyTable* table =
        entry != nullptr ? &entry->table : nullptr;
    if (table == nullptr && delta_ != nullptr) {
      // Delta-only predicate: plan over the pending inserts. Exact, not an
      // approximation — a predicate absent from the base cannot have
      // deletes (del ⊆ base), so the insert table IS the merged table.
      const mut::PropertyDelta* pending = delta_->Find(pat.predicate);
      if (pending != nullptr) table = &pending->inserts;
    }
    if (table == nullptr) return out;  // absent predicate: planner skips
    const TableReplica& replica = table->replica(kind);
    const TableReplica& other = table->replica(OtherReplica(kind));

    const PatternTerm& key = pat.slot(KeyRole(kind));
    const PatternTerm& value = pat.slot(ValueRole(kind));

    const double num_keys = static_cast<double>(replica.key_count());
    const double num_pairs = static_cast<double>(replica.pair_count());
    const double num_values = static_cast<double>(other.key_count());
    out.next = state;
    PlanState& next = out.next;
    next.pattern_mask |= 1u << pattern_idx;
    next.order.emplace_back(pattern_idx, kind);

    const bool first = state.order.empty();
    double step_cost = 0.0;
    double card = state.card;

    const bool key_const = key.is_constant();
    const bool key_bound_var = key.is_variable() && state.IsVarBound(key.var);
    const bool value_const = value.is_constant();
    const bool value_is_key_var =
        value.is_variable() && key.is_variable() && value.var == key.var;
    const bool value_bound_var = value.is_variable() && !value_is_key_var &&
                                 state.IsVarBound(value.var);

    if (replica.empty()) {
      out.feasible = true;
      out.new_card = 0.0;
      out.step_cost = 1.0;
      next.cost += 1.0;
      next.card = 0.0;
      MarkBound(&next, key, 1.0, pat.predicate, KeyRole(kind), false);
      MarkBound(&next, value, 1.0, pat.predicate, ValueRole(kind), false);
      return out;
    }

    if (key_const) {
      // Exact: the planner can afford one binary search per candidate.
      const size_t pos = replica.FindKey(key.constant);
      const double run_len =
          pos == SIZE_MAX ? 0.0 : static_cast<double>(replica.RunLength(pos));
      double per_tuple_matches;
      double value_distinct = 1.0;
      if (value_const) {
        const bool hit =
            pos != SIZE_MAX && replica.RunContains(pos, value.constant);
        per_tuple_matches = hit ? 1.0 : 0.0;
      } else if (value_is_key_var) {
        per_tuple_matches = run_len > 0 ? 1.0 : 0.0;  // checked exactly later
      } else if (value_bound_var) {
        const double dv = std::max(1.0, state.vars[value.var].distinct);
        per_tuple_matches = std::min(1.0, run_len / dv);
      } else {
        per_tuple_matches = run_len;
        value_distinct = std::max(1.0, run_len);
      }
      step_cost = Log2Clamped(num_keys) + card * (1.0 + per_tuple_matches);
      card *= per_tuple_matches;
      MarkBound(&next, value, value_distinct, pat.predicate, ValueRole(kind),
                /*sorted=*/first);
    } else if (key_bound_var) {
      const VarEstimate& kv = state.vars[key.var];
      double hit_fraction;
      double avg_run_hit;
      EstimateJoin(kv, pat.predicate, KeyRole(kind), replica, &hit_fraction,
                   &avg_run_hit);
      // Characteristic-set refinement for subject stars: the conditional
      // expansion factor of adding this predicate to the star the key
      // variable already satisfies.
      const storage::CharacteristicSets* cs = db_.characteristic_sets();
      const bool star_step = options_.use_characteristic_sets &&
                             cs != nullptr &&
                             KeyRole(kind) == Role::kSubject &&
                             !kv.star_preds.empty();
      double star_factor = -1.0;
      if (star_step) {
        std::vector<PredicateId> extended = kv.star_preds;
        extended.push_back(pat.predicate);
        const double old_rows = cs->EstimateStarCardinality(kv.star_preds);
        const double new_rows = cs->EstimateStarCardinality(extended);
        if (old_rows >= 0.5) star_factor = new_rows / old_rows;
      }
      double per_probe_matches;
      double value_distinct = 1.0;
      if (value_const) {
        per_probe_matches =
            hit_fraction * std::min(1.0, avg_run_hit / std::max(1.0, num_values));
      } else if (value_is_key_var) {
        per_probe_matches =
            hit_fraction * std::min(1.0, avg_run_hit / std::max(1.0, num_values));
      } else if (value_bound_var) {
        const double dv = std::max(1.0, state.vars[value.var].distinct);
        per_probe_matches = hit_fraction * std::min(1.0, avg_run_hit / dv);
      } else {
        per_probe_matches = star_factor >= 0.0 ? star_factor
                                               : hit_fraction * avg_run_hit;
        value_distinct = std::min(std::max(1.0, card * per_probe_matches),
                                  std::max(1.0, num_values));
      }
      const double probe_cost = kv.globally_sorted
                                    ? card + num_keys
                                    : card * Log2Clamped(num_keys);
      step_cost = probe_cost + card * per_probe_matches;
      card *= per_probe_matches;
      // The key variable's surviving distinct values shrink by the hit
      // fraction.
      next.vars[key.var].distinct =
          std::max(1.0, next.vars[key.var].distinct * hit_fraction);
      if (KeyRole(kind) == Role::kSubject) {
        auto& star = next.vars[key.var].star_preds;
        star.insert(std::upper_bound(star.begin(), star.end(), pat.predicate),
                    pat.predicate);
      }
      MarkBound(&next, value, value_distinct, pat.predicate, ValueRole(kind),
                /*sorted=*/false);
    } else {
      // Unbound key: full key scan. For a non-first step this is a
      // cartesian continuation unless the value side is bound.
      double scan_matches;
      double key_distinct = num_keys;
      double value_distinct = 1.0;
      if (value_const) {
        const size_t vpos = other.FindKey(value.constant);
        const double vrun =
            vpos == SIZE_MAX ? 0.0
                             : static_cast<double>(other.RunLength(vpos));
        scan_matches = vrun;
        key_distinct = std::max(1.0, vrun);
      } else if (value_is_key_var) {
        scan_matches = num_pairs / std::max(1.0, num_values);  // ?x p ?x
      } else if (value_bound_var) {
        const double dv = std::max(1.0, state.vars[value.var].distinct);
        scan_matches = num_pairs *
                       std::min(1.0, dv / std::max(1.0, num_values)) /
                       std::max(1.0, dv);
        key_distinct = std::min(num_keys, std::max(1.0, card * scan_matches));
      } else {
        scan_matches = num_pairs;
        value_distinct = num_values;
      }
      step_cost = (num_keys + num_pairs) * std::max(1.0, card);
      const bool connected = value_bound_var;
      if (!first && !connected) step_cost *= kCartesianPenalty;
      card *= scan_matches;
      MarkBound(&next, key, key_distinct, pat.predicate, KeyRole(kind),
                /*sorted=*/first);
      MarkBound(&next, value, value_distinct, pat.predicate, ValueRole(kind),
                /*sorted=*/false);
    }

    out.feasible = true;
    out.step_cost = step_cost;
    out.new_card = card;
    next.cost = state.cost + step_cost;
    next.card = card;
    return out;
  }

  /// Builds the final Plan from a completed state.
  Plan FinalizePlan(const PlanState& state) const {
    Plan plan;
    plan.filters = query_.filters;
    plan.variable_count = query_.variable_count;
    plan.var_names = query_.var_names;
    plan.projection = query_.projection;
    plan.distinct = query_.distinct;
    plan.limit = query_.limit;
    plan.aggregate = query_.aggregate;
    plan.order_by = query_.order_by;
    plan.numeric_values = query_.numeric_values;
    plan.total_cost = state.cost;

    uint64_t bound = 0;
    PlanState sim;
    sim.vars.assign(query_.variable_count, VarEstimate{});
    for (const auto& [idx, kind] : state.order) {
      const EncodedPattern& pat = query_.patterns[idx];
      PlanStep step;
      step.pattern_index = idx;
      step.predicate = pat.predicate;
      step.replica = kind;
      step.key = pat.slot(KeyRole(kind));
      step.value = pat.slot(ValueRole(kind));
      step.key_bound = step.key.is_constant() ||
                       ((bound >> step.key.var) & 1);
      step.value_bound =
          step.value.is_constant() ||
          (step.value.is_variable() &&
           (((bound >> step.value.var) & 1) ||
            (step.key.is_variable() && step.value.var == step.key.var)));
      if (step.key.is_variable()) bound |= uint64_t{1} << step.key.var;
      if (step.value.is_variable()) bound |= uint64_t{1} << step.value.var;
      plan.steps.push_back(step);
    }
    // Re-derive per-step estimates for EXPLAIN by replaying the cost model.
    PlanState replay = MakeInitialState();
    for (size_t i = 0; i < state.order.size(); ++i) {
      StepOutcome o =
          EvaluateStep(replay, state.order[i].first, state.order[i].second);
      plan.steps[i].estimated_cost = o.step_cost;
      plan.steps[i].estimated_rows = o.new_card;
      replay = std::move(o.next);
    }
    return plan;
  }

  PlanState MakeInitialState() const {
    PlanState s;
    s.vars.assign(query_.variable_count, VarEstimate{});
    return s;
  }

 private:
  void MarkBound(PlanState* state, const PatternTerm& term, double distinct,
                 PredicateId pred, Role role, bool sorted) const {
    if (!term.is_variable()) return;
    if (state->IsVarBound(term.var)) return;
    state->bound_vars |= uint64_t{1} << term.var;
    VarEstimate& v = state->vars[term.var];
    v.distinct = std::max(1.0, distinct);
    v.prov_pred = pred;
    v.prov_role = role;
    v.globally_sorted = sorted;
    if (role == Role::kSubject) v.star_preds = {pred};
  }

  /// Estimates, for probing `replica` (the `role`-keyed replica of
  /// `pred`) with values of a variable described by `kv`:
  ///   hit_fraction  P(probe value occurs in the key array)
  ///   avg_run_hit   average run length over hits
  void EstimateJoin(const VarEstimate& kv, PredicateId pred, Role role,
                    const TableReplica& replica, double* hit_fraction,
                    double* avg_run_hit) const {
    const double num_keys = static_cast<double>(replica.key_count());
    const double avg_run = replica.AverageRunLength();
    if (options_.use_pair_stats && kv.prov_pred != kInvalidPredicateId) {
      auto stat = db_.GetPairStat(kv.prov_pred, kv.prov_role, pred, role);
      if (stat.has_value() && stat->intersection > 0) {
        const double prov_keys = static_cast<double>(
            db_.entry(kv.prov_pred)
                .table.replica(storage::ReplicaForKeyRole(kv.prov_role))
                .key_count());
        *hit_fraction = std::min(
            1.0, static_cast<double>(stat->intersection) /
                     std::max(1.0, prov_keys));
        *avg_run_hit = static_cast<double>(stat->pairs_right) /
                       static_cast<double>(stat->intersection);
        return;
      }
      if (stat.has_value()) {
        // Precisely known to be disjoint.
        *hit_fraction = 0.0;
        *avg_run_hit = 0.0;
        return;
      }
    }
    // Containment-style fallback.
    const double d = std::max(1.0, kv.distinct);
    *hit_fraction = std::min(1.0, 0.8 * std::min(d, num_keys) / d);
    *avg_run_hit = avg_run;
  }

  const EncodedQuery& query_;
  const Database& db_;
  const OptimizerOptions& options_;
  const mut::DeltaView* delta_;
};

Result<Plan> OptimizeForced(const PlannerContext& ctx,
                            const EncodedQuery& query,
                            const std::vector<int>& order) {
  if (order.size() != query.patterns.size()) {
    return Status::InvalidArgument("forced_order size mismatch");
  }
  PlanState state = ctx.MakeInitialState();
  for (int idx : order) {
    if (idx < 0 || idx >= static_cast<int>(query.patterns.size())) {
      return Status::InvalidArgument("forced_order index out of range");
    }
    if ((state.pattern_mask >> idx) & 1) {
      return Status::InvalidArgument("forced_order repeats a pattern");
    }
    StepOutcome best;
    best.step_cost = kInfCost;
    for (ReplicaKind kind :
         {storage::ReplicaKind::kSO, storage::ReplicaKind::kOS}) {
      StepOutcome o = ctx.EvaluateStep(state, idx, kind);
      if (o.feasible && o.step_cost < best.step_cost) best = std::move(o);
    }
    if (!best.feasible) {
      return Status::Internal("no feasible replica for forced step");
    }
    state = std::move(best.next);
  }
  return ctx.FinalizePlan(state);
}

Result<Plan> OptimizeGreedy(const PlannerContext& ctx,
                            const EncodedQuery& query) {
  PlanState state = ctx.MakeInitialState();
  const size_t n = query.patterns.size();
  for (size_t step = 0; step < n; ++step) {
    double best_cost = kInfCost;
    StepOutcome best;
    for (size_t idx = 0; idx < n; ++idx) {
      if ((state.pattern_mask >> idx) & 1) continue;
      for (ReplicaKind kind :
           {storage::ReplicaKind::kSO, storage::ReplicaKind::kOS}) {
        StepOutcome o = ctx.EvaluateStep(state, static_cast<int>(idx), kind);
        if (o.feasible && o.next.cost < best_cost) {
          best_cost = o.next.cost;
          best = std::move(o);
        }
      }
    }
    if (!best.feasible) {
      return Status::Internal("greedy planner found no feasible step");
    }
    state = std::move(best.next);
  }
  return ctx.FinalizePlan(state);
}

Result<Plan> OptimizeDp(const PlannerContext& ctx, const EncodedQuery& query) {
  const size_t n = query.patterns.size();
  std::unordered_map<uint32_t, PlanState> dp;
  dp.emplace(0u, ctx.MakeInitialState());

  // Process states in increasing subset size (left-deep Selinger DP).
  std::vector<std::vector<uint32_t>> by_size(n + 1);
  by_size[0].push_back(0);
  for (size_t size = 0; size < n; ++size) {
    for (uint32_t mask : by_size[size]) {
      auto it = dp.find(mask);
      if (it == dp.end()) continue;
      // Copy: EvaluateStep keeps a reference into dp while dp may rehash.
      PlanState state = it->second;
      for (size_t idx = 0; idx < n; ++idx) {
        if ((mask >> idx) & 1) continue;
        for (ReplicaKind kind :
             {storage::ReplicaKind::kSO, storage::ReplicaKind::kOS}) {
          StepOutcome o = ctx.EvaluateStep(state, static_cast<int>(idx), kind);
          if (!o.feasible) continue;
          const uint32_t new_mask = mask | (1u << idx);
          auto [slot, inserted] = dp.try_emplace(new_mask);
          if (inserted) {
            by_size[size + 1].push_back(new_mask);
            slot->second = std::move(o.next);
          } else if (o.next.cost < slot->second.cost) {
            slot->second = std::move(o.next);
          }
        }
      }
    }
  }

  const uint32_t full = n == 32 ? 0xffffffffu : ((1u << n) - 1);
  auto it = dp.find(full);
  if (it == dp.end()) {
    return Status::Internal("DP planner failed to cover all patterns");
  }
  return ctx.FinalizePlan(it->second);
}

}  // namespace

Result<Plan> Optimize(const EncodedQuery& query, const Database& db,
                      const OptimizerOptions& options,
                      const mut::DeltaView* delta) {
  if (query.patterns.empty()) {
    return Status::InvalidArgument("cannot plan a query with no patterns");
  }
  if (query.patterns.size() > 32) {
    return Status::Unsupported("queries with more than 32 patterns");
  }
  if (query.variable_count > 64) {
    return Status::Unsupported("queries with more than 64 variables");
  }
  if (query.known_empty) {
    Plan plan;
    plan.known_empty = true;
    plan.variable_count = query.variable_count;
    plan.var_names = query.var_names;
    plan.projection = query.projection;
    plan.distinct = query.distinct;
    plan.limit = query.limit;
    plan.aggregate = query.aggregate;
    plan.order_by = query.order_by;
    plan.numeric_values = query.numeric_values;
    return plan;
  }
  PlannerContext ctx(query, db, options, delta);
  if (!options.forced_order.empty()) {
    return OptimizeForced(ctx, query, options.forced_order);
  }
  if (query.patterns.size() > options.dp_max_patterns) {
    return OptimizeGreedy(ctx, query);
  }
  return OptimizeDp(ctx, query);
}

}  // namespace parj::query
