#ifndef PARJ_QUERY_PARSER_H_
#define PARJ_QUERY_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "query/algebra.h"

namespace parj::query {

/// Parses the SPARQL subset the engine evaluates:
///
///   [PREFIX ns: <iri>]*
///   SELECT [DISTINCT] (?var+ | *)
///   WHERE '{' triple-pattern (('.' | ';' | ',') triple-pattern-part)* '}'
///   [LIMIT n]
///
/// Triple-pattern slots may be variables (?x), IRIs (<...> or prefixed
/// names such as ub:worksFor), literals ("v", "v"@en, "v"^^<dt>, bare
/// integers) or the keyword `a` (rdf:type, predicate position only).
/// ';' repeats the subject; ',' repeats subject and predicate.
///
/// The parser covers everything the paper's workloads need (BGPs with
/// constants standing in for FILTER equality, per paper Example 3.2).
Result<SelectQueryAst> ParseQuery(std::string_view text);

}  // namespace parj::query

#endif  // PARJ_QUERY_PARSER_H_
