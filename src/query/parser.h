#ifndef PARJ_QUERY_PARSER_H_
#define PARJ_QUERY_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "query/algebra.h"

namespace parj::query {

/// Parses the SPARQL subset the engine evaluates:
///
///   [PREFIX ns: <iri>]*
///   SELECT [DISTINCT] ( * | (?var | '(' AGG AS ?alias ')')+ )
///   WHERE '{' triple-pattern (('.' | ';' | ',') triple-pattern-part)* '}'
///   [GROUP BY ?var+]
///   [ORDER BY (?var | ASC(?var) | DESC(?var))+]
///   [LIMIT n]
///
/// where AGG is COUNT(*), COUNT(?x), SUM(?x), MIN(?x) or MAX(?x) (the AS
/// alias is required). Triple-pattern slots may be variables (?x), IRIs
/// (<...> or prefixed names such as ub:worksFor), literals ("v", "v"@en,
/// "v"^^<dt>, bare integers) or the keyword `a` (rdf:type, predicate
/// position only). ';' repeats the subject; ',' repeats subject and
/// predicate.
///
/// Aggregates make the query an aggregate query: plain selected variables
/// must then appear in GROUP BY, and DISTINCT/UNION are rejected. ORDER BY
/// keys name result columns (projected variables or aggregate aliases).
///
/// The parser covers everything the paper's workloads need (BGPs with
/// constants standing in for FILTER equality, per paper Example 3.2),
/// plus the aggregation/ordering surface of DESIGN.md §16.
Result<SelectQueryAst> ParseQuery(std::string_view text);

}  // namespace parj::query

#endif  // PARJ_QUERY_PARSER_H_
