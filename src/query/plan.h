#ifndef PARJ_QUERY_PLAN_H_
#define PARJ_QUERY_PLAN_H_

#include <string>
#include <vector>

#include "query/algebra.h"
#include "storage/database.h"

namespace parj::query {

/// One position in a left-deep join pipeline. Each step evaluates one
/// triple pattern against one replica of its property table; the replica's
/// key column is the access path (scanned for the first step, searched for
/// probe steps), the value column yields the partner run.
struct PlanStep {
  int pattern_index = -1;
  PredicateId predicate = kInvalidPredicateId;
  storage::ReplicaKind replica = storage::ReplicaKind::kSO;

  /// The pattern slot in the replica's key role (subject for S-O).
  PatternTerm key;
  /// The pattern slot in the replica's value role.
  PatternTerm value;

  /// Whether key/value are bound (by a constant or an earlier step) when
  /// this step runs. An unbound key means a full key scan (only sensible
  /// for the first step or a cartesian continuation).
  bool key_bound = false;
  bool value_bound = false;

  /// Optimizer estimates, kept for EXPLAIN output and tests.
  double estimated_rows = 0.0;
  double estimated_cost = 0.0;
};

/// A complete left-deep plan: the executor runs steps in order, sharding
/// the first step's key range (or value run) across threads.
struct Plan {
  std::vector<PlanStep> steps;
  /// FILTER constraints, evaluated by the executor as soon as all their
  /// variables are bound (pushed down to the earliest pipeline position).
  std::vector<EncodedFilter> filters;
  int variable_count = 0;
  std::vector<std::string> var_names;
  std::vector<int> projection;
  bool distinct = false;
  uint64_t limit = 0;
  /// Aggregation spec (GROUP BY / COUNT / SUM / MIN / MAX); when enabled,
  /// `projection` describes the executor-row feed, not the result columns
  /// (see AggregateSpec).
  AggregateSpec aggregate;
  /// ORDER BY keys over the result columns; empty = engine order.
  std::vector<OrderKey> order_by;
  /// TermId -> numeric value table for SUM/MIN/MAX, from EncodedQuery.
  /// Epoch-bound (overlay IDs can grow within a plan generation): plans
  /// carrying it must never enter the plan cache.
  std::shared_ptr<const std::vector<double>> numeric_values;
  /// Result is known empty (absent constant); steps may be empty.
  bool known_empty = false;
  /// Total optimizer cost estimate.
  double total_cost = 0.0;

  /// Human-readable EXPLAIN rendering.
  std::string ToString() const;
};

}  // namespace parj::query

#endif  // PARJ_QUERY_PLAN_H_
