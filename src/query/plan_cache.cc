#include "query/plan_cache.h"

#include <utility>

#include "mutable/delta_view.h"

namespace parj::query {

namespace {

uint64_t HashCombine(uint64_t seed, uint64_t value) {
  // splitmix64-style mixing; only needs to separate distinct option sets.
  value += 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
  value = (value ^ (value >> 30)) * 0xbf58476d1ce4e5b9ull;
  value = (value ^ (value >> 27)) * 0x94d049bb133111ebull;
  return seed ^ (value ^ (value >> 31));
}

}  // namespace

uint64_t OptimizerFingerprint(const OptimizerOptions& options) {
  uint64_t fp = 0x50415253ull;  // arbitrary non-zero seed
  fp = HashCombine(fp, options.use_pair_stats ? 1 : 0);
  fp = HashCombine(fp, options.use_characteristic_sets ? 1 : 0);
  fp = HashCombine(fp, options.dp_max_patterns);
  fp = HashCombine(fp, options.forced_order.size());
  for (int idx : options.forced_order) {
    fp = HashCombine(fp, static_cast<uint64_t>(idx));
  }
  return fp;
}

Result<Plan> BindTemplate(const Plan& tmpl, const NormalizedQuery& query,
                          const storage::Database& db,
                          const mut::TermOverlay* overlay) {
  if (!query.eligible) {
    return Status::InvalidArgument("query shape is not cacheable");
  }
  Plan plan = tmpl;
  plan.var_names = query.var_names;
  plan.variable_count = static_cast<int>(query.var_names.size());
  plan.known_empty = false;

  const dict::Dictionary& dict = db.dictionary();
  // Base dictionary first, pending-write overlay second — the same
  // resolution order EncodeQuery uses.
  auto lookup_resource = [&](const rdf::Term& term) -> TermId {
    const TermId id = dict.LookupResource(term);
    if (id != kInvalidTermId || overlay == nullptr) return id;
    return overlay->LookupResource(term);
  };
  auto lookup_predicate = [&](const rdf::Term& term) -> PredicateId {
    const PredicateId id = dict.LookupPredicate(term);
    if (id != kInvalidPredicateId || overlay == nullptr) return id;
    return overlay->LookupPredicate(term);
  };

  for (PlanStep& step : plan.steps) {
    if (step.pattern_index < 0 ||
        static_cast<size_t>(step.pattern_index) >=
            query.pattern_params.size()) {
      return Status::InvalidArgument("plan template does not match shape");
    }
    const NormalizedQuery::PatternParams& pp =
        query.pattern_params[step.pattern_index];
    if (pp.predicate >= 0) {
      const PredicateId pid = lookup_predicate(query.params[pp.predicate]);
      if (pid == kInvalidPredicateId) plan.known_empty = true;
      step.predicate = pid;
    }
    // The replica decides which pattern slot plays the key role.
    const bool key_is_subject = step.replica == storage::ReplicaKind::kSO;
    const int key_param = key_is_subject ? pp.subject : pp.object;
    const int value_param = key_is_subject ? pp.object : pp.subject;
    if (key_param >= 0) {
      const TermId id = lookup_resource(query.params[key_param]);
      if (id == kInvalidTermId) plan.known_empty = true;
      step.key = PatternTerm::Constant(id);
    }
    if (value_param >= 0) {
      const TermId id = lookup_resource(query.params[value_param]);
      if (id == kInvalidTermId) plan.known_empty = true;
      step.value = PatternTerm::Constant(id);
    }
  }

  // Filters are rebuilt from the normalized spec rather than patched in
  // the template: a '!=' filter whose constant is absent must vanish, and
  // which filters vanish depends on this query's parameters.
  plan.filters.clear();
  for (const NormalizedQuery::FilterParam& f : query.filter_params) {
    EncodedFilter enc;
    enc.op = f.op;
    enc.lhs = PatternTerm::Variable(f.lhs_var);
    if (f.rhs_param < 0) {
      enc.rhs = PatternTerm::Variable(f.rhs_var);
    } else {
      const TermId id = lookup_resource(query.params[f.rhs_param]);
      if (id == kInvalidTermId) {
        // No binding can equal a term absent from the data: '=' can never
        // hold, '!=' always holds.
        if (f.op == FilterOp::kEq) plan.known_empty = true;
        continue;
      }
      enc.rhs = PatternTerm::Constant(id);
    }
    plan.filters.push_back(std::move(enc));
  }
  return plan;
}

PlanCache::PlanCache(size_t max_entries)
    : max_entries_(max_entries == 0 ? 1 : max_entries) {}

std::shared_ptr<const Plan> PlanCache::Lookup(Level* level,
                                              std::string_view key,
                                              uint64_t generation,
                                              uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = level->index.find(key);
  if (it == level->index.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (it->second->generation != generation ||
      it->second->fingerprint != fingerprint) {
    // Stale statistics (or different optimizer settings): drop the entry
    // so the fresh plan takes its slot.
    level->order.erase(it->second);
    level->index.erase(it);
    ++stats_.misses;
    return nullptr;
  }
  level->order.splice(level->order.begin(), level->order, it->second);
  ++stats_.hits;
  return it->second->plan;
}

void PlanCache::Insert(Level* level, std::string_view key,
                       uint64_t generation, uint64_t fingerprint,
                       std::shared_ptr<const Plan> plan) {
  if (plan == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = level->index.find(key);
  if (it != level->index.end()) {
    it->second->generation = generation;
    it->second->fingerprint = fingerprint;
    it->second->plan = std::move(plan);
    level->order.splice(level->order.begin(), level->order, it->second);
    return;
  }
  level->order.push_front(Entry{std::string(key), generation, fingerprint,
                                std::move(plan)});
  level->index.emplace(level->order.front().key, level->order.begin());
  if (level->order.size() > max_entries_) {
    level->index.erase(level->order.back().key);
    level->order.pop_back();
    ++stats_.evictions;
  }
}

std::shared_ptr<const Plan> PlanCache::LookupBound(std::string_view sparql,
                                                   uint64_t generation,
                                                   uint64_t fingerprint) {
  return Lookup(&bound_, sparql, generation, fingerprint);
}

void PlanCache::InsertBound(std::string_view sparql, uint64_t generation,
                            uint64_t fingerprint,
                            std::shared_ptr<const Plan> plan) {
  Insert(&bound_, sparql, generation, fingerprint, std::move(plan));
}

std::shared_ptr<const Plan> PlanCache::LookupShape(
    const std::string& shape_key, uint64_t generation, uint64_t fingerprint) {
  return Lookup(&shape_, shape_key, generation, fingerprint);
}

void PlanCache::InsertShape(const std::string& shape_key, uint64_t generation,
                            uint64_t fingerprint,
                            std::shared_ptr<const Plan> plan) {
  Insert(&shape_, shape_key, generation, fingerprint, std::move(plan));
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bound_.order.size() + shape_.order.size();
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  bound_.order.clear();
  bound_.index.clear();
  shape_.order.clear();
  shape_.index.clear();
  stats_ = PlanCacheStats{};
}

}  // namespace parj::query
