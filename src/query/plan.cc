#include "query/plan.h"

#include <cstdio>
#include <sstream>

namespace parj::query {

namespace {

std::string TermToString(const PatternTerm& term,
                         const std::vector<std::string>& names) {
  if (term.is_variable()) {
    if (term.var >= 0 && term.var < static_cast<int>(names.size())) {
      return "?" + names[term.var];
    }
    return "?_" + std::to_string(term.var);
  }
  return "#" + std::to_string(term.constant);
}

}  // namespace

std::string Plan::ToString() const {
  std::ostringstream out;
  if (known_empty) {
    out << "Plan: known empty result\n";
    return out.str();
  }
  out << "Plan (" << steps.size() << " steps, est. cost ";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3g", total_cost);
  out << buf << "):\n";
  for (size_t i = 0; i < steps.size(); ++i) {
    const PlanStep& s = steps[i];
    out << "  " << (i == 0 ? "scan " : "probe") << " p" << s.predicate << "/"
        << storage::ReplicaKindName(s.replica) << "  key="
        << TermToString(s.key, var_names) << (s.key_bound ? "[bound]" : "")
        << " value=" << TermToString(s.value, var_names)
        << (s.value_bound ? "[bound]" : "");
    std::snprintf(buf, sizeof(buf), "%.3g", s.estimated_rows);
    out << "  est_rows=" << buf << "\n";
  }
  if (aggregate.enabled) {
    out << "  aggregate group_cols=" << aggregate.group_cols << " [";
    for (size_t i = 0; i < aggregate.aggs.size(); ++i) {
      if (i > 0) out << ", ";
      out << AggFuncName(aggregate.aggs[i].func);
      if (aggregate.aggs[i].input_col >= 0) {
        out << "(col" << aggregate.aggs[i].input_col << ")";
      }
    }
    out << "] -> ";
    for (size_t i = 0; i < aggregate.output_names.size(); ++i) {
      if (i > 0) out << " ";
      out << "?" << aggregate.output_names[i];
    }
    out << "\n";
  }
  if (!order_by.empty()) {
    out << "  order by";
    for (const OrderKey& key : order_by) {
      out << " col" << key.column << (key.descending ? " desc" : " asc");
    }
    if (limit != 0) out << " limit " << limit;
    out << "\n";
  }
  return out.str();
}

}  // namespace parj::query
