#include "query/algebra.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <unordered_map>

#include "mutable/delta_view.h"

namespace parj::query {

const char* FilterOpName(FilterOp op) {
  switch (op) {
    case FilterOp::kEq:
      return "=";
    case FilterOp::kNe:
      return "!=";
    case FilterOp::kLt:
      return "<";
    case FilterOp::kLe:
      return "<=";
    case FilterOp::kGt:
      return ">";
    case FilterOp::kGe:
      return ">=";
  }
  return "?";
}

const char* AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kCountStar:
      return "COUNT(*)";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
  }
  return "?";
}

bool TryNumericValue(const rdf::Term& term, double* value) {
  if (!term.is_literal() || term.lexical().empty()) return false;
  const std::string& text = term.lexical();
  char* end = nullptr;
  double parsed = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return false;
  if (!std::isfinite(parsed)) return false;
  *value = parsed;
  return true;
}

namespace {

bool CompareDoubles(double lhs, FilterOp op, double rhs) {
  switch (op) {
    case FilterOp::kEq:
      return lhs == rhs;
    case FilterOp::kNe:
      return lhs != rhs;
    case FilterOp::kLt:
      return lhs < rhs;
    case FilterOp::kLe:
      return lhs <= rhs;
    case FilterOp::kGt:
      return lhs > rhs;
    case FilterOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

FilterOp FlipOp(FilterOp op) {
  switch (op) {
    case FilterOp::kLt:
      return FilterOp::kGt;
    case FilterOp::kLe:
      return FilterOp::kGe;
    case FilterOp::kGt:
      return FilterOp::kLt;
    case FilterOp::kGe:
      return FilterOp::kLe;
    default:
      return op;  // = and != are symmetric
  }
}

}  // namespace

Result<EncodedQuery> EncodeQuery(const SelectQueryAst& ast,
                                 const storage::Database& db,
                                 const mut::TermOverlay* overlay) {
  if (ast.patterns.empty()) {
    return Status::InvalidArgument("query has no triple patterns");
  }
  if (!ast.union_arms.empty()) {
    return Status::InvalidArgument(
        "UNION queries must be split into arms before encoding "
        "(ParjEngine::Execute handles this)");
  }
  EncodedQuery out;
  out.distinct = ast.distinct;
  out.limit = ast.limit;

  std::unordered_map<std::string, int> var_ids;
  auto intern_var = [&](const std::string& name) {
    auto it = var_ids.find(name);
    if (it != var_ids.end()) return it->second;
    int id = static_cast<int>(out.var_names.size());
    var_ids.emplace(name, id);
    out.var_names.push_back(name);
    return id;
  };

  const dict::Dictionary& dict = db.dictionary();
  // Base dictionary first, pending-write overlay second: IDs agree with
  // what the delta-merged executor binds.
  auto lookup_resource = [&](const rdf::Term& term) -> TermId {
    const TermId id = dict.LookupResource(term);
    if (id != kInvalidTermId || overlay == nullptr) return id;
    return overlay->LookupResource(term);
  };
  auto lookup_predicate = [&](const rdf::Term& term) -> PredicateId {
    const PredicateId id = dict.LookupPredicate(term);
    if (id != kInvalidPredicateId || overlay == nullptr) return id;
    return overlay->LookupPredicate(term);
  };
  for (const TriplePatternAst& p : ast.patterns) {
    EncodedPattern enc;
    if (p.predicate.is_variable) {
      return Status::Unsupported(
          "variable predicates are not supported (pattern with ?" +
          p.predicate.var + ")");
    }
    enc.predicate = lookup_predicate(p.predicate.term);
    if (enc.predicate == kInvalidPredicateId) out.known_empty = true;

    auto encode_slot = [&](const TermOrVar& t) -> PatternTerm {
      if (t.is_variable) return PatternTerm::Variable(intern_var(t.var));
      TermId id = lookup_resource(t.term);
      if (id == kInvalidTermId) out.known_empty = true;
      return PatternTerm::Constant(id);
    };
    enc.subject = encode_slot(p.subject);
    enc.object = encode_slot(p.object);
    out.patterns.push_back(enc);
  }
  out.variable_count = static_cast<int>(out.var_names.size());

  // ---- FILTER constraints.
  for (const FilterAst& f : ast.filters) {
    FilterAst filter = f;
    // Normalize: a lone variable goes to the left.
    if (!filter.lhs.is_variable && filter.rhs.is_variable) {
      std::swap(filter.lhs, filter.rhs);
      filter.op = FlipOp(filter.op);
    }
    const bool ordering =
        filter.op != FilterOp::kEq && filter.op != FilterOp::kNe;

    if (!filter.lhs.is_variable && !filter.rhs.is_variable) {
      // Constant-constant: fold now.
      bool holds;
      double lv, rv;
      if (ordering) {
        if (!TryNumericValue(filter.lhs.term, &lv) ||
            !TryNumericValue(filter.rhs.term, &rv)) {
          return Status::Unsupported(
              "ordering FILTER requires numeric operands");
        }
        holds = CompareDoubles(lv, filter.op, rv);
      } else if (TryNumericValue(filter.lhs.term, &lv) &&
                 TryNumericValue(filter.rhs.term, &rv)) {
        holds = CompareDoubles(lv, filter.op, rv);
      } else {
        const bool equal = filter.lhs.term == filter.rhs.term;
        holds = filter.op == FilterOp::kEq ? equal : !equal;
      }
      if (!holds) out.known_empty = true;
      continue;  // a true constant filter is a no-op
    }

    auto require_var = [&](const TermOrVar& t) -> Result<int> {
      auto it = var_ids.find(t.var);
      if (it == var_ids.end()) {
        return Status::InvalidArgument("FILTER variable ?" + t.var +
                                       " does not occur in the BGP");
      }
      return it->second;
    };

    EncodedFilter enc;
    enc.op = filter.op;
    PARJ_ASSIGN_OR_RETURN(int lhs_var, require_var(filter.lhs));
    enc.lhs = PatternTerm::Variable(lhs_var);

    if (filter.rhs.is_variable) {
      PARJ_ASSIGN_OR_RETURN(int rhs_var, require_var(filter.rhs));
      if (ordering) {
        return Status::Unsupported(
            "ordering FILTER between two variables is not supported");
      }
      enc.rhs = PatternTerm::Variable(rhs_var);
      out.filters.push_back(std::move(enc));
      continue;
    }

    if (ordering) {
      // Precompile the passing bitmap over all dictionary IDs.
      double bound;
      if (!TryNumericValue(filter.rhs.term, &bound)) {
        return Status::Unsupported(
            "ordering FILTER requires a numeric constant");
      }
      // The bitmap spans base + overlay IDs: a dirty step can bind an
      // overlay ID, which must index `passing` in range.
      const TermId max_id = overlay != nullptr ? overlay->resource_count()
                                               : dict.resource_count();
      auto passing = std::make_shared<std::vector<bool>>(
          static_cast<size_t>(max_id) + 1, false);
      for (TermId id = 1; id <= max_id; ++id) {
        const rdf::Term* term = id <= dict.resource_count()
                                    ? &dict.DecodeResource(id)
                                    : overlay->DecodeResource(id);
        double value;
        if (term != nullptr && TryNumericValue(*term, &value) &&
            CompareDoubles(value, filter.op, bound)) {
          (*passing)[id] = true;
        }
      }
      enc.rhs = PatternTerm::Constant(kInvalidTermId);
      enc.passing = std::move(passing);
      out.filters.push_back(std::move(enc));
      continue;
    }

    // Equality / inequality against a constant term.
    TermId rhs_id = lookup_resource(filter.rhs.term);
    if (rhs_id == kInvalidTermId) {
      // No term equals a value absent from the data: '=' can never hold,
      // '!=' always holds.
      if (filter.op == FilterOp::kEq) out.known_empty = true;
      continue;
    }
    enc.rhs = PatternTerm::Constant(rhs_id);
    out.filters.push_back(std::move(enc));
  }

  const bool aggregated = !ast.aggregates.empty() || !ast.group_by.empty();
  if (aggregated) {
    if (ast.select_all) {
      return Status::InvalidArgument(
          "SELECT * cannot be combined with GROUP BY / aggregates");
    }
    AggregateSpec& spec = out.aggregate;
    spec.enabled = true;
    // Executor-row layout: group variables first (in GROUP BY order), then
    // the distinct aggregate-argument variables. Aggregation consumes
    // these rows directly off the join pipeline.
    std::unordered_map<std::string, int> col_of;  // var name -> executor col
    auto require_var = [&](const std::string& name) -> Result<int> {
      auto it = var_ids.find(name);
      if (it == var_ids.end()) {
        return Status::InvalidArgument("variable ?" + name +
                                       " does not occur in the BGP");
      }
      return it->second;
    };
    for (const std::string& name : ast.group_by) {
      if (col_of.count(name) != 0) {
        return Status::InvalidArgument("duplicate GROUP BY variable ?" +
                                       name);
      }
      PARJ_ASSIGN_OR_RETURN(int var, require_var(name));
      col_of.emplace(name, static_cast<int>(out.projection.size()));
      out.projection.push_back(var);
    }
    spec.group_cols = static_cast<int>(out.projection.size());
    bool needs_numeric = false;
    for (const AggregateAst& agg : ast.aggregates) {
      EncodedAggregate enc;
      enc.func = agg.func;
      if (agg.func != AggFunc::kCountStar) {
        PARJ_ASSIGN_OR_RETURN(int var, require_var(agg.arg));
        auto [it, inserted] =
            col_of.emplace(agg.arg, static_cast<int>(out.projection.size()));
        if (inserted) out.projection.push_back(var);
        enc.input_col = it->second;
      }
      if (agg.func == AggFunc::kSum || agg.func == AggFunc::kMin ||
          agg.func == AggFunc::kMax) {
        needs_numeric = true;
      }
      spec.aggs.push_back(enc);
    }
    // Output columns: plain selected variables (each must be grouped) in
    // SELECT order, then the aggregates in SELECT order.
    for (const std::string& name : ast.projection) {
      auto it = col_of.find(name);
      if (it == col_of.end() || it->second >= spec.group_cols) {
        return Status::InvalidArgument("selected variable ?" + name +
                                       " must appear in GROUP BY");
      }
      spec.output.push_back(it->second);
      spec.output_names.push_back(name);
      spec.column_kinds.push_back(ColumnKind::kTerm);
    }
    for (size_t i = 0; i < ast.aggregates.size(); ++i) {
      const AggregateAst& agg = ast.aggregates[i];
      if (agg.alias.empty()) {
        return Status::InvalidArgument("aggregate requires an AS alias");
      }
      spec.output.push_back(~static_cast<int>(i));
      spec.output_names.push_back(agg.alias);
      spec.column_kinds.push_back(agg.func == AggFunc::kCount ||
                                          agg.func == AggFunc::kCountStar
                                      ? ColumnKind::kCount
                                      : ColumnKind::kNumber);
    }
    for (size_t i = 0; i < spec.output_names.size(); ++i) {
      for (size_t j = i + 1; j < spec.output_names.size(); ++j) {
        if (spec.output_names[i] == spec.output_names[j]) {
          return Status::InvalidArgument("duplicate result column ?" +
                                         spec.output_names[i]);
        }
      }
    }
    if (needs_numeric) {
      // TermId -> numeric value, spanning base + overlay IDs like the
      // filter bitmaps (an overlay binding must index it in range).
      const TermId max_id = overlay != nullptr ? overlay->resource_count()
                                               : dict.resource_count();
      auto table = std::make_shared<std::vector<double>>(
          static_cast<size_t>(max_id) + 1,
          std::numeric_limits<double>::quiet_NaN());
      for (TermId id = 1; id <= max_id; ++id) {
        const rdf::Term* term = id <= dict.resource_count()
                                    ? &dict.DecodeResource(id)
                                    : overlay->DecodeResource(id);
        double value;
        if (term != nullptr && TryNumericValue(*term, &value)) {
          (*table)[id] = value;
        }
      }
      out.numeric_values = std::move(table);
    }
  } else if (ast.select_all) {
    for (int v = 0; v < out.variable_count; ++v) out.projection.push_back(v);
  } else {
    for (const std::string& name : ast.projection) {
      auto it = var_ids.find(name);
      if (it == var_ids.end()) {
        return Status::InvalidArgument("projected variable ?" + name +
                                       " does not occur in the BGP");
      }
      out.projection.push_back(it->second);
    }
  }
  if (out.projection.empty() && !aggregated) {
    return Status::InvalidArgument("empty projection");
  }

  if (!ast.order_by.empty()) {
    // ORDER BY keys name result columns: aggregate output columns, or the
    // projected variables of a plain query.
    std::vector<std::string> column_names;
    if (out.aggregate.enabled) {
      column_names = out.aggregate.output_names;
    } else {
      for (int v : out.projection) column_names.push_back(out.var_names[v]);
    }
    for (const OrderKeyAst& key : ast.order_by) {
      auto found =
          std::find(column_names.begin(), column_names.end(), key.var);
      if (found == column_names.end()) {
        return Status::InvalidArgument("ORDER BY variable ?" + key.var +
                                       " is not a result column");
      }
      out.order_by.push_back(OrderKey{
          static_cast<int>(found - column_names.begin()), key.descending});
    }
  }
  return out;
}

}  // namespace parj::query
