#ifndef PARJ_QUERY_PLAN_CACHE_H_
#define PARJ_QUERY_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/status.h"
#include "query/normalize.h"
#include "query/optimizer.h"
#include "query/plan.h"

namespace parj::mut {
class TermOverlay;
}  // namespace parj::mut

namespace parj::query {

/// Hash of the OptimizerOptions fields that influence plan choice. Cached
/// plans are only reused under the exact options that produced them.
uint64_t OptimizerFingerprint(const OptimizerOptions& options);

/// Binds `query`'s parameters into the plan skeleton `tmpl` (an optimized
/// plan for another query of the same shape): per step, the constant key /
/// value / predicate slots are re-resolved from this query's parameter
/// terms against the base dictionary + pending-write overlay, and the
/// filter list is rebuilt from the normalized filter spec. A parameter
/// absent from both dictionaries marks the plan known_empty (pattern slot
/// or '=' rhs) or drops the filter ('!=' against a term no binding can
/// ever equal). The result is structurally the plan a fresh Optimize()
/// would build, with the template's join order — correct for any
/// parameters, possibly suboptimal for unusual ones.
Result<Plan> BindTemplate(const Plan& tmpl, const NormalizedQuery& query,
                          const storage::Database& db,
                          const mut::TermOverlay* overlay);

struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
};

/// Two-level LRU plan cache for the serving hot path (DESIGN.md §15).
///
/// Bound level: exact query text → fully bound, ready-to-execute plan;
/// a hit skips parse, encode and optimize entirely. Shape level:
/// NormalizedQuery::shape_key → plan template; a hit (after parsing a
/// previously unseen text) skips encode + optimize via BindTemplate.
///
/// Entries carry the (plan_generation, optimizer fingerprint) they were
/// built under; a lookup under different values is a miss and drops the
/// stale entry. Generation staleness only ever costs plan quality — a
/// cached plan is valid forever because TermIds are permanent — so
/// invalidating on generation keeps plans tracking fresh statistics
/// without any correctness dependence on it.
///
/// Thread-safe; both levels share one mutex and one LRU budget each.
class PlanCache {
 public:
  static constexpr size_t kDefaultMaxEntries = 4096;

  explicit PlanCache(size_t max_entries = kDefaultMaxEntries);

  std::shared_ptr<const Plan> LookupBound(std::string_view sparql,
                                          uint64_t generation,
                                          uint64_t fingerprint);
  /// Never insert a plan made known_empty by a term absent from the
  /// dictionaries: the term can appear later at the same text, and the
  /// generation key does not bump on mutation. Callers enforce this.
  void InsertBound(std::string_view sparql, uint64_t generation,
                   uint64_t fingerprint, std::shared_ptr<const Plan> plan);

  std::shared_ptr<const Plan> LookupShape(const std::string& shape_key,
                                          uint64_t generation,
                                          uint64_t fingerprint);
  void InsertShape(const std::string& shape_key, uint64_t generation,
                   uint64_t fingerprint, std::shared_ptr<const Plan> plan);

  PlanCacheStats stats() const;
  size_t size() const;
  void Clear();

 private:
  struct Entry {
    std::string key;
    uint64_t generation = 0;
    uint64_t fingerprint = 0;
    std::shared_ptr<const Plan> plan;
  };
  /// One LRU level: most-recently-used at the front.
  struct Level {
    std::list<Entry> order;
    std::unordered_map<std::string_view, std::list<Entry>::iterator> index;
  };

  std::shared_ptr<const Plan> Lookup(Level* level, std::string_view key,
                                     uint64_t generation,
                                     uint64_t fingerprint);
  void Insert(Level* level, std::string_view key, uint64_t generation,
              uint64_t fingerprint, std::shared_ptr<const Plan> plan);

  const size_t max_entries_;
  mutable std::mutex mu_;
  Level bound_;
  Level shape_;
  PlanCacheStats stats_;
};

}  // namespace parj::query

#endif  // PARJ_QUERY_PLAN_CACHE_H_
