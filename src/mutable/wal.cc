#include "mutable/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <optional>
#include <utility>

#include "common/crc32c.h"
#include "common/durable_io.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/timer.h"

namespace parj::mut {
namespace {

namespace fs = std::filesystem;

constexpr char kSegmentMagic[8] = {'P', 'A', 'R', 'J', 'W', 'S', 'E', 'G'};
constexpr char kManifestMagic[8] = {'P', 'A', 'R', 'J', 'W', 'M', 'A', 'N'};
constexpr uint32_t kWalFormatVersion = 1;
constexpr size_t kSegmentHeaderBytes = 24;
constexpr size_t kFrameHeaderBytes = 8;  // u32 payload_len + u32 crc
constexpr uint8_t kRecordMutationBatch = 1;
/// Caps that bound any length field a corrupted file can present, so a
/// flipped length byte can never drive a multi-gigabyte allocation.
constexpr uint64_t kMaxPayloadBytes = 1ull << 30;
constexpr uint64_t kMaxStringBytes = 1ull << 28;
constexpr uint64_t kMaxMutationsPerRecord = 1ull << 27;

constexpr char kManifestName[] = "MANIFEST";

// ---- little-endian primitives (matches the snapshot format) ----

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

uint32_t GetU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

/// Bounds-checked cursor over an untrusted byte range; every getter
/// returns false instead of reading past the end.
struct Cursor {
  const char* p;
  size_t remaining;

  bool U8(uint8_t* out) {
    if (remaining < 1) return false;
    *out = static_cast<uint8_t>(*p);
    ++p;
    --remaining;
    return true;
  }
  bool U32(uint32_t* out) {
    if (remaining < 4) return false;
    *out = GetU32(p);
    p += 4;
    remaining -= 4;
    return true;
  }
  bool U64(uint64_t* out) {
    if (remaining < 8) return false;
    *out = GetU64(p);
    p += 8;
    remaining -= 8;
    return true;
  }
  bool String(std::string* out) {
    uint32_t len;
    if (!U32(&len)) return false;
    if (len > kMaxStringBytes || len > remaining) return false;
    out->assign(p, len);
    p += len;
    remaining -= len;
    return true;
  }
};

std::string SegmentFileName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%08llu.seg",
                static_cast<unsigned long long>(seq));
  return buf;
}

std::string SnapshotFileName(uint64_t epoch) {
  return "snapshot-" + std::to_string(epoch) + ".parj";
}

std::string SegmentHeaderBytes(uint64_t seq) {
  std::string out;
  out.append(kSegmentMagic, sizeof(kSegmentMagic));
  PutU32(&out, kWalFormatVersion);
  PutU32(&out, 0);  // reserved
  PutU64(&out, seq);
  return out;
}

struct Manifest {
  uint64_t snapshot_epoch = 0;
  uint64_t first_segment = 0;
  std::string snapshot_file;
};

std::string EncodeManifest(const Manifest& m) {
  std::string out;
  out.append(kManifestMagic, sizeof(kManifestMagic));
  PutU32(&out, kWalFormatVersion);
  PutU64(&out, m.snapshot_epoch);
  PutU64(&out, m.first_segment);
  PutString(&out, m.snapshot_file);
  PutU32(&out, Crc32c(out.data() + sizeof(kManifestMagic),
                      out.size() - sizeof(kManifestMagic)));
  return out;
}

Result<Manifest> DecodeManifest(const std::string& bytes,
                                const std::string& path) {
  if (bytes.empty()) {
    return Status::DataLoss("WAL manifest '" + path + "' is empty");
  }
  if (bytes.size() < sizeof(kManifestMagic) + 4 ||
      std::memcmp(bytes.data(), kManifestMagic, sizeof(kManifestMagic)) != 0) {
    return Status::DataLoss("WAL manifest '" + path +
                            "' has a bad magic number");
  }
  const size_t body = bytes.size() - sizeof(kManifestMagic) - 4;
  const uint32_t stored = GetU32(bytes.data() + bytes.size() - 4);
  const uint32_t actual =
      Crc32c(bytes.data() + sizeof(kManifestMagic), body);
  if (stored != actual) {
    return Status::DataLoss("WAL manifest '" + path + "' failed its CRC");
  }
  Cursor cur{bytes.data() + sizeof(kManifestMagic), body};
  Manifest m;
  uint32_t version;
  if (!cur.U32(&version) || version != kWalFormatVersion) {
    return Status::DataLoss("WAL manifest '" + path +
                            "' has an unsupported version");
  }
  if (!cur.U64(&m.snapshot_epoch) || !cur.U64(&m.first_segment) ||
      !cur.String(&m.snapshot_file) || cur.remaining != 0 ||
      m.first_segment == 0 || m.snapshot_file.empty()) {
    return Status::DataLoss("WAL manifest '" + path + "' is malformed");
  }
  return m;
}

Result<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IoError("read failure on '" + path + "'");
  return bytes;
}

rdf::Term MakeTerm(uint8_t kind, std::string lexical, std::string datatype,
                   std::string lang) {
  switch (static_cast<rdf::TermKind>(kind)) {
    case rdf::TermKind::kIri:
      return rdf::Term::Iri(std::move(lexical));
    case rdf::TermKind::kBlank:
      return rdf::Term::Blank(std::move(lexical));
    case rdf::TermKind::kLiteral:
      if (!lang.empty()) {
        return rdf::Term::LangLiteral(std::move(lexical), std::move(lang));
      }
      if (!datatype.empty()) {
        return rdf::Term::TypedLiteral(std::move(lexical),
                                       std::move(datatype));
      }
      return rdf::Term::Literal(std::move(lexical));
  }
  return rdf::Term::Iri(std::move(lexical));  // unreachable; kind validated
}

void PutTerm(std::string* out, const rdf::Term& term) {
  PutU8(out, static_cast<uint8_t>(term.kind()));
  PutString(out, term.lexical());
  PutString(out, term.datatype());
  PutString(out, term.lang());
}

bool GetTerm(Cursor* cur, rdf::Term* out) {
  uint8_t kind;
  std::string lexical, datatype, lang;
  if (!cur->U8(&kind) || kind > 2) return false;
  if (!cur->String(&lexical) || !cur->String(&datatype) ||
      !cur->String(&lang)) {
    return false;
  }
  // Datatype and language tag are mutually exclusive (RDF 1.1), and only
  // literals carry either; the writer never emits such a term, so seeing
  // one means the payload is corrupt despite a matching CRC.
  if (!datatype.empty() && !lang.empty()) return false;
  if (kind != static_cast<uint8_t>(rdf::TermKind::kLiteral) &&
      (!datatype.empty() || !lang.empty())) {
    return false;
  }
  *out = MakeTerm(kind, std::move(lexical), std::move(datatype),
                  std::move(lang));
  return true;
}

struct DecodedRecord {
  uint64_t sequence = 0;
  std::vector<Mutation> mutations;
};

Result<DecodedRecord> DecodeRecordPayload(const char* data, size_t size,
                                          const std::string& context) {
  Cursor cur{data, size};
  DecodedRecord record;
  uint8_t type;
  uint32_t count;
  if (!cur.U8(&type) || type != kRecordMutationBatch ||
      !cur.U64(&record.sequence) || !cur.U32(&count) ||
      count > kMaxMutationsPerRecord) {
    return Status::DataLoss("malformed WAL record header in " + context);
  }
  record.mutations.reserve(std::min<uint64_t>(count, cur.remaining));
  for (uint32_t i = 0; i < count; ++i) {
    uint8_t flags;
    Mutation m;
    if (!cur.U8(&flags) || flags > 1 || !GetTerm(&cur, &m.triple.subject) ||
        !GetTerm(&cur, &m.triple.predicate) ||
        !GetTerm(&cur, &m.triple.object)) {
      return Status::DataLoss("malformed mutation " + std::to_string(i) +
                              " in " + context);
    }
    m.remove = flags != 0;
    record.mutations.push_back(std::move(m));
  }
  if (cur.remaining != 0) {
    return Status::DataLoss("trailing garbage after mutation batch in " +
                            context);
  }
  return record;
}

/// Lists `dir`'s wal-<seq>.seg files, sorted ascending by sequence.
Result<std::vector<std::pair<uint64_t, std::string>>> ListSegments(
    const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> segments;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() < 9 || name.rfind("wal-", 0) != 0 ||
        name.substr(name.size() - 4) != ".seg") {
      continue;
    }
    const std::string digits = name.substr(4, name.size() - 8);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    segments.emplace_back(std::stoull(digits), entry.path().string());
  }
  if (ec) {
    return Status::IoError("cannot list WAL directory '" + dir +
                           "': " + ec.message());
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

struct SegmentScan {
  uint64_t records = 0;
  uint64_t mutations = 0;
  uint64_t valid_bytes = 0;  ///< header + frames up to the first bad one
  uint64_t torn_bytes = 0;   ///< bytes past valid_bytes (last segment only)
};

/// Walks one segment's frames. Frame-level damage (short frame, absurd
/// length, CRC mismatch) in the last segment is a torn tail: scanning
/// stops and `torn_bytes` reports the unusable suffix. The same damage in
/// a non-last segment — or a payload that parses wrong despite a valid
/// CRC, anywhere — is corruption and returns kDataLoss naming the segment
/// file and byte offset.
Status ScanSegmentFile(
    const std::string& path, uint64_t expect_seq, bool is_last,
    const std::function<Status(DecodedRecord)>& sink, SegmentScan* out) {
  PARJ_ASSIGN_OR_RETURN(std::string data, ReadFileBytes(path));
  if (data.size() < kSegmentHeaderBytes) {
    if (is_last) {
      out->torn_bytes = data.size();
      return Status::OK();
    }
    return Status::DataLoss("WAL segment '" + path +
                            "' is shorter than its header");
  }
  if (std::memcmp(data.data(), kSegmentMagic, sizeof(kSegmentMagic)) != 0) {
    return Status::DataLoss("WAL segment '" + path +
                            "' has a bad magic number");
  }
  const uint32_t version = GetU32(data.data() + 8);
  const uint64_t header_seq = GetU64(data.data() + 16);
  if (version != kWalFormatVersion) {
    return Status::DataLoss("WAL segment '" + path +
                            "' has an unsupported version");
  }
  if (header_seq != expect_seq) {
    // A copied or renamed segment file: the name says one sequence, the
    // header another. Replaying it would reorder history.
    return Status::DataLoss(
        "WAL segment '" + path + "' header claims sequence " +
        std::to_string(header_seq) + " but its file name implies " +
        std::to_string(expect_seq));
  }
  size_t off = kSegmentHeaderBytes;
  while (off < data.size()) {
    std::string reason;
    uint32_t len = 0;
    if (data.size() - off < kFrameHeaderBytes) {
      reason = "truncated frame header";
    } else {
      len = GetU32(data.data() + off);
      const uint32_t crc = GetU32(data.data() + off + 4);
      if (len > kMaxPayloadBytes ||
          len > data.size() - off - kFrameHeaderBytes) {
        reason = "frame length overruns the file";
      } else if (Crc32c(data.data() + off + kFrameHeaderBytes, len) != crc) {
        reason = "frame CRC mismatch";
      }
    }
    if (!reason.empty()) {
      if (is_last) {
        out->torn_bytes = data.size() - off;
        break;
      }
      return Status::DataLoss("WAL segment '" + path + "' offset " +
                              std::to_string(off) + ": " + reason);
    }
    const std::string context =
        "WAL segment '" + path + "' offset " + std::to_string(off);
    PARJ_ASSIGN_OR_RETURN(
        DecodedRecord record,
        DecodeRecordPayload(data.data() + off + kFrameHeaderBytes, len,
                            context));
    ++out->records;
    out->mutations += record.mutations.size();
    if (sink) PARJ_RETURN_NOT_OK(sink(std::move(record)));
    off += kFrameHeaderBytes + len;
  }
  out->valid_bytes = data.size() - out->torn_bytes;
  return Status::OK();
}

/// Rewrites the last segment so it ends exactly at its valid prefix. A
/// header-torn segment (crash during rotation) is reset to a bare header
/// rather than deleted, keeping the manifest's segment range contiguous.
Status RepairTornTail(const std::string& path, uint64_t seq,
                      const SegmentScan& scan) {
  if (scan.torn_bytes == 0) return Status::OK();
  if (scan.valid_bytes < kSegmentHeaderBytes) {
    const std::string header = SegmentHeaderBytes(seq);
    PARJ_RETURN_NOT_OK(io::WriteFileDurable(path, header));
    return Status::OK();
  }
  int fd;
  do {
    fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    return Status::IoError("cannot open '" + path + "' to truncate its tail");
  }
  Status status;
  if (::ftruncate(fd, static_cast<off_t>(scan.valid_bytes)) != 0) {
    status = Status::IoError("cannot truncate '" + path + "'");
  }
  if (status.ok()) status = io::FsyncFd(fd, path);
  ::close(fd);
  return status;
}

}  // namespace

const char* WalSyncName(WalSync sync) {
  switch (sync) {
    case WalSync::kNone:
      return "none";
    case WalSync::kBatch:
      return "batch";
    case WalSync::kAlways:
      return "always";
  }
  return "unknown";
}

Result<WalSync> ParseWalSync(const std::string& name) {
  if (name == "none") return WalSync::kNone;
  if (name == "batch") return WalSync::kBatch;
  if (name == "always") return WalSync::kAlways;
  return Status::InvalidArgument("unknown WAL sync policy '" + name +
                                 "' (want none|batch|always)");
}

std::string EncodeWalRecord(std::span<const Mutation> mutations,
                            uint64_t sequence) {
  std::string payload;
  payload.reserve(16 + mutations.size() * 64);
  PutU8(&payload, kRecordMutationBatch);
  PutU64(&payload, sequence);
  PutU32(&payload, static_cast<uint32_t>(mutations.size()));
  for (const Mutation& m : mutations) {
    PutU8(&payload, m.remove ? 1 : 0);
    PutTerm(&payload, m.triple.subject);
    PutTerm(&payload, m.triple.predicate);
    PutTerm(&payload, m.triple.object);
  }
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32c(payload.data(), payload.size()));
  frame.append(payload);
  return frame;
}

Wal::Wal(WalOptions options) : options_(std::move(options)) {}

Wal::~Wal() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  if (writer_.joinable()) writer_.join();
  if (fd_ >= 0) ::close(fd_);
}

Status Wal::OpenSegment(uint64_t seq) {
  const std::string path = options_.dir + "/" + SegmentFileName(seq);
  int fd;
  do {
    fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    return Status::IoError("cannot create WAL segment '" + path + "'");
  }
  const std::string header = SegmentHeaderBytes(seq);
  if (const auto torn = failpoint::ConsumeTorn("wal.rotate")) {
    const size_t k = std::min(*torn, header.size());
    (void)io::WriteFully(fd, header.data(), k, path);
    ::close(fd);
    return Status::IoError("torn segment header after " + std::to_string(k) +
                           " bytes (injected by failpoint 'wal.rotate')");
  }
  Status fp = failpoint::Check("wal.rotate");
  if (!fp.ok()) {
    ::close(fd);
    return fp;
  }
  Status status = io::WriteFully(fd, header.data(), header.size(), path);
  if (status.ok()) status = io::FsyncFd(fd, path);
  if (status.ok()) status = io::FsyncParentDir(path);
  if (!status.ok()) {
    ::close(fd);
    return status;
  }
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
  current_segment_ = seq;
  current_segment_bytes_ = kSegmentHeaderBytes;
  synced_since_last_write_ = true;
  return Status::OK();
}

Status Wal::SyncSegment() {
  if (synced_since_last_write_) return Status::OK();
  PARJ_RETURN_NOT_OK(io::FsyncFd(
      fd_, options_.dir + "/" + SegmentFileName(current_segment_)));
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  synced_since_last_write_ = true;
  return Status::OK();
}

Status Wal::Rotate() {
  PARJ_RETURN_NOT_OK(SyncSegment());
  PARJ_RETURN_NOT_OK(OpenSegment(current_segment_ + 1));
  rotations_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status Wal::WriteRecord(const std::string& bytes) {
  const std::string path =
      options_.dir + "/" + SegmentFileName(current_segment_);
  // Torn interception must precede the generic evaluation: a torn-armed
  // point makes plain Check fail with IoError (for sites that can't
  // tear), which would shadow the partial write this site knows how to
  // simulate.
  if (const auto torn = failpoint::ConsumeTorn("wal.append")) {
    const size_t k = std::min(*torn, bytes.size());
    (void)io::WriteFully(fd_, bytes.data(), k, path);
    current_segment_bytes_ += k;
    synced_since_last_write_ = false;
    return Status::IoError("torn record after " + std::to_string(k) +
                           " bytes (injected by failpoint 'wal.append')");
  }
  Status fp = failpoint::Check("wal.append");
  if (!fp.ok()) return fp;
  if (current_segment_bytes_ > kSegmentHeaderBytes &&
      current_segment_bytes_ + bytes.size() > options_.segment_bytes) {
    PARJ_RETURN_NOT_OK(Rotate());
  }
  PARJ_RETURN_NOT_OK(io::WriteFully(fd_, bytes.data(), bytes.size(), path));
  current_segment_bytes_ += bytes.size();
  synced_since_last_write_ = false;
  records_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(bytes.size(), std::memory_order_relaxed);
  return Status::OK();
}

void Wal::StartWriter() {
  writer_ = std::thread([this] { WriterLoop(); });
}

void Wal::WriterLoop() {
  for (;;) {
    std::deque<Item> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty() && stop_) return;
      batch.swap(queue_);
    }
    Stopwatch commit_timer;
    Status status;  // first failure; everything after it is skipped
    uint64_t last_written_lsn = 0;   // highest lsn written so far
    uint64_t last_durable_lsn = 0;   // highest lsn already synced (kAlways)
    uint64_t drained_bytes = 0;
    bool dirty = false;  // records written since the last fsync (kBatch)
    for (Item& item : batch) {
      drained_bytes += item.bytes.size();
      if (item.checkpoint) {
        // Everything before the checkpoint must be durable in the old
        // chain before the fresh segment becomes the manifest's first:
        // sync, rotate, re-log the compaction tail, sync again.
        Status ck = status;
        if (ck.ok()) ck = SyncSegment();
        if (ck.ok()) {
          if (dirty) last_durable_lsn = last_written_lsn;
          dirty = false;
          ck = Rotate();
        }
        if (ck.ok() && !item.bytes.empty()) ck = WriteRecord(item.bytes);
        if (ck.ok()) ck = SyncSegment();
        {
          std::lock_guard<std::mutex> lock(mu_);
          if (ck.ok()) pending_first_segment_ = current_segment_;
          *item.done_status = ck;
          *item.done_flag = true;
        }
        durable_cv_.notify_all();
        if (!ck.ok() && status.ok()) status = ck;
        continue;
      }
      if (!status.ok()) continue;
      Status wr = WriteRecord(item.bytes);
      if (wr.ok()) {
        if (item.lsn != 0) last_written_lsn = item.lsn;
        switch (options_.sync) {
          case WalSync::kNone:
            last_durable_lsn = last_written_lsn;
            break;
          case WalSync::kAlways:
            wr = SyncSegment();
            if (wr.ok()) last_durable_lsn = last_written_lsn;
            break;
          case WalSync::kBatch:
            dirty = true;
            break;
        }
      }
      if (!wr.ok()) status = wr;
    }
    if (status.ok() && dirty) {
      // Group commit: one fsync makes every record of the drained batch
      // durable at once.
      Status sync = SyncSegment();
      if (sync.ok()) {
        last_durable_lsn = last_written_lsn;
        group_commits_.fetch_add(1, std::memory_order_relaxed);
        group_commit_micros_.fetch_add(
            static_cast<uint64_t>(commit_timer.ElapsedMicros()),
            std::memory_order_relaxed);
      } else {
        status = sync;
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_bytes_ -= std::min(queue_bytes_, drained_bytes);
      if (last_durable_lsn > durable_lsn_) durable_lsn_ = last_durable_lsn;
      if (!status.ok() && writer_error_.ok()) {
        writer_error_ = status;
        PARJ_LOG(Warning) << "WAL writer failed (log is now read-only): "
                          << status.ToString();
      }
    }
    durable_cv_.notify_all();
    space_cv_.notify_all();
  }
}

Result<Wal::Ticket> Wal::Append(std::span<const Mutation> mutations,
                                uint64_t sequence) {
  std::string bytes = EncodeWalRecord(mutations, sequence);
  std::unique_lock<std::mutex> lock(mu_);
  if (!writer_error_.ok()) return writer_error_;
  if (queue_bytes_ + bytes.size() > options_.max_backlog_bytes) {
    backpressure_waits_.fetch_add(1, std::memory_order_relaxed);
    space_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.backlog_timeout_millis),
        [&] {
          return !writer_error_.ok() ||
                 queue_bytes_ + bytes.size() <= options_.max_backlog_bytes;
        });
    if (!writer_error_.ok()) return writer_error_;
    if (queue_bytes_ + bytes.size() > options_.max_backlog_bytes) {
      return Status::ResourceExhausted(
          "WAL backlog of " + std::to_string(queue_bytes_) +
          " bytes did not drain within " +
          std::to_string(options_.backlog_timeout_millis) + " ms");
    }
  }
  const uint64_t lsn = ++next_lsn_;
  queue_bytes_ += bytes.size();
  queue_.push_back(Item{std::move(bytes), lsn, false, nullptr, nullptr});
  lock.unlock();
  work_cv_.notify_one();
  return Ticket{lsn};
}

Status Wal::WaitDurable(Ticket ticket) {
  if (ticket.lsn == 0) return Status::OK();
  std::unique_lock<std::mutex> lock(mu_);
  durable_cv_.wait(lock, [&] {
    return durable_lsn_ >= ticket.lsn || !writer_error_.ok();
  });
  if (durable_lsn_ >= ticket.lsn) return Status::OK();
  return writer_error_;
}

Status Wal::BeginCheckpoint(std::span<const Mutation> tail,
                            uint64_t sequence) {
  Status done_status;
  bool done_flag = false;
  Item item;
  if (!tail.empty()) item.bytes = EncodeWalRecord(tail, sequence);
  item.checkpoint = true;
  item.done_status = &done_status;
  item.done_flag = &done_flag;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!writer_error_.ok()) return writer_error_;
    queue_bytes_ += item.bytes.size();
    queue_.push_back(std::move(item));
    work_cv_.notify_one();
    durable_cv_.wait(lock, [&] { return done_flag; });
  }
  return done_status;
}

Status Wal::FinishCheckpoint(std::shared_ptr<const storage::Database> base,
                             uint64_t epoch) {
  auto finish = [&]() -> Status {
    // Torn interception must precede the generic evaluation: a torn-armed
    // point makes plain Check fail with IoError, which would shadow the
    // torn-manifest simulation at the write below.
    const std::optional<size_t> torn =
        failpoint::ConsumeTorn("compactor.checkpoint");
    if (!torn) {
      Status fp = failpoint::Check("compactor.checkpoint");
      if (!fp.ok()) return fp;
    }
    const std::string snapshot_file = SnapshotFileName(epoch);
    PARJ_RETURN_NOT_OK(
        storage::SaveSnapshot(*base, options_.dir + "/" + snapshot_file));
    Manifest manifest;
    manifest.snapshot_epoch = epoch;
    manifest.snapshot_file = snapshot_file;
    {
      std::lock_guard<std::mutex> lock(mu_);
      manifest.first_segment = pending_first_segment_;
    }
    const std::string bytes = EncodeManifest(manifest);
    const std::string manifest_path = options_.dir + "/" + kManifestName;
    if (torn) {
      // Tear the manifest's temporary: the rename never happens, so the
      // previous manifest must keep recovery correct.
      const size_t k = std::min(*torn, bytes.size());
      std::ofstream out(manifest_path + ".tmp",
                        std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(k));
      return Status::IoError(
          "torn manifest after " + std::to_string(k) +
          " bytes (injected by failpoint 'compactor.checkpoint')");
    }
    PARJ_RETURN_NOT_OK(io::WriteFileDurable(manifest_path, bytes));
    {
      std::lock_guard<std::mutex> lock(mu_);
      manifest_first_segment_ = manifest.first_segment;
    }
    // Prune segments and snapshots the new manifest no longer needs.
    // Best-effort: leftovers are ignored by recovery and re-pruned by the
    // next checkpoint.
    auto segments = ListSegments(options_.dir);
    if (segments.ok()) {
      for (const auto& [seq, path] : *segments) {
        if (seq < manifest.first_segment) ::unlink(path.c_str());
      }
    }
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("snapshot-", 0) == 0 && name != snapshot_file &&
          name.size() > 14 && name.substr(name.size() - 5) == ".parj") {
        ::unlink(entry.path().string().c_str());
      }
    }
    (void)io::FsyncParentDir(manifest_path);
    return Status::OK();
  };
  Status status = finish();
  if (status.ok()) {
    checkpoints_.fetch_add(1, std::memory_order_relaxed);
  } else {
    checkpoint_failures_.fetch_add(1, std::memory_order_relaxed);
  }
  return status;
}

WalStats Wal::stats() const {
  WalStats stats;
  stats.records = records_.load(std::memory_order_relaxed);
  stats.bytes = bytes_.load(std::memory_order_relaxed);
  stats.fsyncs = fsyncs_.load(std::memory_order_relaxed);
  stats.group_commits = group_commits_.load(std::memory_order_relaxed);
  stats.group_commit_micros =
      group_commit_micros_.load(std::memory_order_relaxed);
  stats.rotations = rotations_.load(std::memory_order_relaxed);
  stats.checkpoints = checkpoints_.load(std::memory_order_relaxed);
  stats.checkpoint_failures =
      checkpoint_failures_.load(std::memory_order_relaxed);
  stats.backpressure_waits =
      backpressure_waits_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  stats.backlog_bytes = queue_bytes_;
  const uint64_t current = current_segment_;
  if (current >= manifest_first_segment_ && manifest_first_segment_ > 0) {
    stats.segments = current - manifest_first_segment_ + 1;
  }
  return stats;
}

Result<std::unique_ptr<Wal>> Wal::Initialize(const storage::Database& base,
                                             uint64_t epoch,
                                             const WalOptions& options) {
  if (!options.enabled()) {
    return Status::InvalidArgument("WAL directory not set");
  }
  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec) {
    return Status::IoError("cannot create WAL directory '" + options.dir +
                           "': " + ec.message());
  }
  const std::string manifest_path = options.dir + "/" + kManifestName;
  if (fs::exists(manifest_path)) {
    return Status::AlreadyExists("WAL directory '" + options.dir +
                                 "' already has a manifest; recover from it "
                                 "instead of initializing over it");
  }
  const std::string snapshot_file = SnapshotFileName(epoch);
  PARJ_RETURN_NOT_OK(
      storage::SaveSnapshot(base, options.dir + "/" + snapshot_file));
  std::unique_ptr<Wal> wal(new Wal(options));
  PARJ_RETURN_NOT_OK(wal->OpenSegment(1));
  Manifest manifest;
  manifest.snapshot_epoch = epoch;
  manifest.first_segment = 1;
  manifest.snapshot_file = snapshot_file;
  PARJ_RETURN_NOT_OK(
      io::WriteFileDurable(manifest_path, EncodeManifest(manifest)));
  wal->manifest_first_segment_ = 1;
  wal->pending_first_segment_ = 1;
  wal->StartWriter();
  return wal;
}

Result<std::unique_ptr<Wal>> Wal::Open(const WalOptions& options,
                                       uint64_t next_segment) {
  if (!options.enabled()) {
    return Status::InvalidArgument("WAL directory not set");
  }
  if (next_segment == 0) {
    return Status::InvalidArgument("WAL segment sequences start at 1");
  }
  std::unique_ptr<Wal> wal(new Wal(options));
  const std::string manifest_path = options.dir + "/" + kManifestName;
  PARJ_ASSIGN_OR_RETURN(std::string manifest_bytes,
                        ReadFileBytes(manifest_path));
  PARJ_ASSIGN_OR_RETURN(Manifest manifest,
                        DecodeManifest(manifest_bytes, manifest_path));
  PARJ_RETURN_NOT_OK(wal->OpenSegment(next_segment));
  wal->manifest_first_segment_ = manifest.first_segment;
  wal->pending_first_segment_ = manifest.first_segment;
  wal->StartWriter();
  return wal;
}

Result<Wal::Recovered> Wal::Recover(const WalOptions& options,
                                    const storage::DatabaseOptions& database,
                                    const storage::SnapshotLoadOptions& load) {
  if (!options.enabled()) {
    return Status::InvalidArgument("WAL directory not set");
  }
  const std::string manifest_path = options.dir + "/" + kManifestName;
  if (!fs::exists(manifest_path)) {
    // Distinguish "fresh directory" (NotFound: caller should Initialize)
    // from "WAL files with no manifest" (kDataLoss: history existed and
    // its control file is gone). One corner is provably fresh: a crash
    // inside Initialize, after segment 1 was created but before the
    // manifest landed, leaves a single record-free segment 1 — nothing
    // was ever acknowledged, so re-initializing is safe.
    auto segments = ListSegments(options.dir);
    if (segments.ok() && !segments->empty()) {
      if (segments->size() == 1 && segments->front().first == 1) {
        std::error_code ec;
        const auto size = fs::file_size(segments->front().second, ec);
        if (!ec && size <= kSegmentHeaderBytes) {
          return Status::NotFound("no WAL manifest in '" + options.dir +
                                  "' (interrupted initialization)");
        }
      }
      return Status::DataLoss("WAL directory '" + options.dir +
                              "' has segments but no manifest");
    }
    return Status::NotFound("no WAL manifest in '" + options.dir + "'");
  }
  PARJ_ASSIGN_OR_RETURN(std::string manifest_bytes,
                        ReadFileBytes(manifest_path));
  PARJ_ASSIGN_OR_RETURN(Manifest manifest,
                        DecodeManifest(manifest_bytes, manifest_path));

  RecoveryStats stats;
  stats.snapshot_epoch = manifest.snapshot_epoch;
  Stopwatch load_timer;
  PARJ_ASSIGN_OR_RETURN(
      storage::Database base,
      storage::LoadSnapshot(options.dir + "/" + manifest.snapshot_file,
                            database, load));
  stats.snapshot_load_millis = load_timer.ElapsedMillis();

  PARJ_ASSIGN_OR_RETURN(auto segments, ListSegments(options.dir));
  // Segments below the manifest's first are pruning leftovers from a
  // checkpoint that crashed before its unlinks; drop them now.
  std::vector<std::pair<uint64_t, std::string>> live;
  for (auto& [seq, path] : segments) {
    if (seq < manifest.first_segment) {
      ::unlink(path.c_str());
    } else {
      live.emplace_back(seq, std::move(path));
    }
  }
  if (live.empty() || live.front().first != manifest.first_segment) {
    return Status::DataLoss(
        "WAL manifest names segment " +
        std::to_string(manifest.first_segment) + " as first but '" +
        options.dir + "' does not contain it");
  }
  for (size_t i = 1; i < live.size(); ++i) {
    if (live[i].first != live[i - 1].first + 1) {
      return Status::DataLoss("WAL segment sequence gap between " +
                              std::to_string(live[i - 1].first) + " and " +
                              std::to_string(live[i].first) + " in '" +
                              options.dir + "'");
    }
  }

  Recovered recovered;
  recovered.base = std::move(base);
  recovered.epoch = manifest.snapshot_epoch;
  recovered.next_segment = live.back().first + 1;
  Stopwatch replay_timer;
  for (size_t i = 0; i < live.size(); ++i) {
    const bool is_last = i + 1 == live.size();
    SegmentScan scan;
    PARJ_RETURN_NOT_OK(ScanSegmentFile(
        live[i].second, live[i].first, is_last,
        [&](DecodedRecord record) -> Status {
          recovered.batches.push_back(std::move(record.mutations));
          return Status::OK();
        },
        &scan));
    ++stats.segments_scanned;
    stats.records_replayed += scan.records;
    stats.mutations_replayed += scan.mutations;
    if (is_last && scan.torn_bytes > 0) {
      stats.truncated_bytes = scan.torn_bytes;
      PARJ_RETURN_NOT_OK(
          RepairTornTail(live[i].second, live[i].first, scan));
      PARJ_LOG(Warning) << "WAL recovery truncated a torn tail of "
                        << scan.torn_bytes << " bytes from '"
                        << live[i].second << "'";
    }
  }
  stats.replay_millis = replay_timer.ElapsedMillis();
  recovered.stats = stats;
  return recovered;
}

Result<WalInfo> Wal::VerifyWal(const std::string& dir) {
  const std::string manifest_path = dir + "/" + kManifestName;
  if (!fs::exists(manifest_path)) {
    auto segments = ListSegments(dir);
    if (segments.ok() && !segments->empty()) {
      return Status::DataLoss("WAL directory '" + dir +
                              "' has segments but no manifest");
    }
    return Status::NotFound("no WAL manifest in '" + dir + "'");
  }
  PARJ_ASSIGN_OR_RETURN(std::string manifest_bytes,
                        ReadFileBytes(manifest_path));
  PARJ_ASSIGN_OR_RETURN(Manifest manifest,
                        DecodeManifest(manifest_bytes, manifest_path));
  WalInfo info;
  info.snapshot_epoch = manifest.snapshot_epoch;
  info.snapshot_file = manifest.snapshot_file;
  info.first_segment = manifest.first_segment;
  PARJ_RETURN_NOT_OK(
      storage::VerifySnapshotFile(dir + "/" + manifest.snapshot_file)
          .status());
  PARJ_ASSIGN_OR_RETURN(auto segments, ListSegments(dir));
  std::vector<std::pair<uint64_t, std::string>> live;
  for (auto& [seq, path] : segments) {
    if (seq >= manifest.first_segment) live.emplace_back(seq, path);
  }
  if (live.empty() || live.front().first != manifest.first_segment) {
    return Status::DataLoss(
        "WAL manifest names segment " +
        std::to_string(manifest.first_segment) + " as first but '" + dir +
        "' does not contain it");
  }
  for (size_t i = 1; i < live.size(); ++i) {
    if (live[i].first != live[i - 1].first + 1) {
      return Status::DataLoss("WAL segment sequence gap between " +
                              std::to_string(live[i - 1].first) + " and " +
                              std::to_string(live[i].first) + " in '" + dir +
                              "'");
    }
  }
  for (size_t i = 0; i < live.size(); ++i) {
    const bool is_last = i + 1 == live.size();
    SegmentScan scan;
    PARJ_RETURN_NOT_OK(
        ScanSegmentFile(live[i].second, live[i].first, is_last, nullptr,
                        &scan));
    ++info.segments;
    info.records += scan.records;
    info.mutations += scan.mutations;
    info.bytes += scan.valid_bytes + scan.torn_bytes;
    if (is_last) {
      info.last_segment = live[i].first;
      info.torn_tail_bytes = scan.torn_bytes;
    }
  }
  return info;
}

}  // namespace parj::mut
