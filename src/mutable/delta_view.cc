#include "mutable/delta_view.h"

namespace parj::mut {

namespace {

/// Canonical dictionary key for `term` in the per-thread reuse buffer
/// (same keying as dict::Dictionary, so base and overlay agree on term
/// identity).
std::string_view KeyFor(const rdf::Term& term) {
  std::string& buf = dict::internal::TlsKeyBuffer();
  buf.clear();
  term.AppendDictionaryKey(&buf);
  return buf;
}

}  // namespace

TermId TermOverlay::AddResource(const rdf::Term& term) {
  const std::string_view key = KeyFor(term);
  auto it = resource_ids_.find(key);
  if (it != resource_ids_.end()) return it->second;
  resources_.push_back(term);
  const TermId id = base_resources_ + static_cast<TermId>(resources_.size());
  resource_ids_.emplace(std::string(key), id);
  return id;
}

PredicateId TermOverlay::AddPredicate(const rdf::Term& term) {
  const std::string_view key = KeyFor(term);
  auto it = predicate_ids_.find(key);
  if (it != predicate_ids_.end()) return it->second;
  predicates_.push_back(term);
  const PredicateId id =
      base_predicates_ + static_cast<PredicateId>(predicates_.size());
  predicate_ids_.emplace(std::string(key), id);
  return id;
}

TermId TermOverlay::LookupResource(const rdf::Term& term) const {
  auto it = resource_ids_.find(KeyFor(term));
  return it == resource_ids_.end() ? kInvalidTermId : it->second;
}

PredicateId TermOverlay::LookupPredicate(const rdf::Term& term) const {
  auto it = predicate_ids_.find(KeyFor(term));
  return it == predicate_ids_.end() ? kInvalidPredicateId : it->second;
}

const rdf::Term* TermOverlay::DecodeResource(TermId id) const {
  if (id <= base_resources_ || id > resource_count()) return nullptr;
  return &resources_[id - base_resources_ - 1];
}

const rdf::Term* TermOverlay::DecodePredicate(PredicateId id) const {
  if (id <= base_predicates_ || id > predicate_count()) return nullptr;
  return &predicates_[id - base_predicates_ - 1];
}

size_t TermOverlay::MemoryUsage() const {
  size_t bytes = resources_.capacity() * sizeof(rdf::Term) +
                 predicates_.capacity() * sizeof(rdf::Term);
  for (const rdf::Term& t : resources_) bytes += t.lexical().capacity();
  for (const rdf::Term& t : predicates_) bytes += t.lexical().capacity();
  bytes += resource_ids_.size() * (sizeof(void*) * 4);
  bytes += predicate_ids_.size() * (sizeof(void*) * 4);
  return bytes;
}

DeltaView::DeltaView(std::vector<std::shared_ptr<const PropertyDelta>> props,
                     std::shared_ptr<const TermOverlay> overlay,
                     uint64_t sequence)
    : props_(std::move(props)),
      overlay_(std::move(overlay)),
      sequence_(sequence) {
  delta_bytes_ = overlay_->MemoryUsage();
  for (const auto& d : props_) {
    if (d == nullptr) continue;
    insert_triples_ += d->inserts.triple_count();
    delete_triples_ += d->deletes.triple_count();
    delta_bytes_ += d->MemoryUsage();
  }
}

}  // namespace parj::mut
