#include "mutable/delta_store.h"

#include <algorithm>
#include <utility>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/timer.h"
#include "mutable/wal.h"

namespace parj::mut {

namespace {

uint64_t Pack(TermId s, TermId o) {
  return (static_cast<uint64_t>(s) << 32) | static_cast<uint64_t>(o);
}

std::vector<std::pair<TermId, TermId>> Unpack(
    const std::unordered_set<uint64_t>& packed) {
  std::vector<std::pair<TermId, TermId>> pairs;
  pairs.reserve(packed.size());
  for (uint64_t p : packed) {
    pairs.emplace_back(static_cast<TermId>(p >> 32),
                       static_cast<TermId>(p & 0xFFFFFFFFu));
  }
  return pairs;
}

}  // namespace

Version::Version(std::shared_ptr<const storage::Database> base,
                 std::shared_ptr<const DeltaView> delta, uint64_t epoch,
                 std::shared_ptr<std::atomic<int64_t>> live_counter)
    : base_(std::move(base)),
      delta_(std::move(delta)),
      epoch_(epoch),
      live_counter_(std::move(live_counter)) {
  live_counter_->fetch_add(1, std::memory_order_relaxed);
}

Version::~Version() {
  live_counter_->fetch_sub(1, std::memory_order_relaxed);
}

DeltaStore::DeltaStore(storage::Database base, DeltaStoreOptions options)
    : options_(std::move(options)),
      live_versions_(std::make_shared<std::atomic<int64_t>>(0)) {
  base_ = std::make_shared<const storage::Database>(std::move(base));
  const dict::Dictionary& dict = base_->dictionary();
  working_overlay_ = std::make_unique<TermOverlay>(dict.resource_count(),
                                                   dict.predicate_count());
  overlay_ = std::make_shared<const TermOverlay>(*working_overlay_);
  builders_.resize(base_->predicate_count());
  published_.assign(base_->predicate_count(), nullptr);
  auto view = std::make_shared<const DeltaView>(published_, overlay_,
                                                /*sequence=*/0);
  current_ = std::make_shared<const Version>(base_, view,
                                             options_.initial_epoch,
                                             live_versions_);
}

void DeltaStore::AttachWal(Wal* wal) {
  std::lock_guard<std::mutex> lock(write_mu_);
  wal_ = wal;
}

std::shared_ptr<const Version> DeltaStore::CurrentVersion() const {
  std::lock_guard<std::mutex> lock(version_mu_);
  return current_;
}

void DeltaStore::InstallVersion(std::shared_ptr<const Version> version) {
  std::lock_guard<std::mutex> lock(version_mu_);
  current_ = std::move(version);
}

MvccSnapshot DeltaStore::snapshot() const {
  return MvccSnapshot(CurrentVersion());
}

const storage::Database& DeltaStore::base() const {
  std::lock_guard<std::mutex> lock(write_mu_);
  return *base_;
}

uint64_t DeltaStore::epoch() const { return CurrentVersion()->epoch(); }

EncodedTriple DeltaStore::EncodeTriple(const rdf::Triple& triple,
                                       bool allocate) {
  const dict::Dictionary& dict = base_->dictionary();
  EncodedTriple t;
  t.subject = dict.LookupResource(triple.subject);
  if (t.subject == kInvalidTermId) {
    t.subject = allocate ? working_overlay_->AddResource(triple.subject)
                         : working_overlay_->LookupResource(triple.subject);
  }
  t.predicate = dict.LookupPredicate(triple.predicate);
  if (t.predicate == kInvalidPredicateId) {
    t.predicate = allocate
                      ? working_overlay_->AddPredicate(triple.predicate)
                      : working_overlay_->LookupPredicate(triple.predicate);
  }
  t.object = dict.LookupResource(triple.object);
  if (t.object == kInvalidTermId) {
    t.object = allocate ? working_overlay_->AddResource(triple.object)
                        : working_overlay_->LookupResource(triple.object);
  }
  return t;
}

bool DeltaStore::BaseContains(const storage::Database& base, PredicateId pid,
                              TermId s, TermId o) const {
  const storage::PropertyEntry* entry = base.FindEntry(pid);
  if (entry == nullptr) return false;
  const storage::TableReplica& so = entry->table.so();
  const size_t pos = so.FindKey(s);
  if (pos == SIZE_MAX) return false;
  return so.RunContains(pos, o);
}

void DeltaStore::ApplyToBuilders(const storage::Database& base,
                                 std::span<const Mutation> mutations,
                                 bool* overlay_grew) {
  const TermId res_before = working_overlay_->resource_count();
  const PredicateId pred_before = working_overlay_->predicate_count();
  for (const Mutation& m : mutations) {
    if (!m.remove) {
      const EncodedTriple t = EncodeTriple(m.triple, /*allocate=*/true);
      if (builders_.size() < t.predicate) builders_.resize(t.predicate);
      PidBuilder& b = builders_[t.predicate - 1];
      const uint64_t packed = Pack(t.subject, t.object);
      if (b.del.erase(packed) > 0) {
        // Un-delete: the triple is back to its base state.
        b.dirty = true;
        continue;
      }
      if (BaseContains(base, t.predicate, t.subject, t.object)) continue;
      if (b.ins.insert(packed).second) b.dirty = true;
    } else {
      // Removal never allocates terms: a triple with an unseen term
      // cannot be present anywhere.
      const EncodedTriple t = EncodeTriple(m.triple, /*allocate=*/false);
      if (t.subject == kInvalidTermId || t.predicate == kInvalidPredicateId ||
          t.object == kInvalidTermId) {
        continue;
      }
      if (builders_.size() < t.predicate) builders_.resize(t.predicate);
      PidBuilder& b = builders_[t.predicate - 1];
      const uint64_t packed = Pack(t.subject, t.object);
      if (b.ins.erase(packed) > 0) {
        b.dirty = true;
        continue;
      }
      if (BaseContains(base, t.predicate, t.subject, t.object)) {
        if (b.del.insert(packed).second) b.dirty = true;
      }
    }
  }
  *overlay_grew = working_overlay_->resource_count() != res_before ||
                  working_overlay_->predicate_count() != pred_before;
}

void DeltaStore::Publish(bool overlay_grew, uint64_t epoch) {
  if (overlay_grew) {
    overlay_ = std::make_shared<const TermOverlay>(*working_overlay_);
  }
  if (published_.size() < builders_.size()) {
    published_.resize(builders_.size());
  }
  for (size_t i = 0; i < builders_.size(); ++i) {
    PidBuilder& b = builders_[i];
    if (!b.dirty) continue;
    b.dirty = false;
    if (b.ins.empty() && b.del.empty()) {
      published_[i] = nullptr;
      continue;
    }
    auto d = std::make_shared<PropertyDelta>();
    d->inserts = storage::PropertyTable::Build(Unpack(b.ins));
    d->deletes = storage::PropertyTable::Build(Unpack(b.del));
    published_[i] = std::move(d);
  }
  auto view =
      std::make_shared<const DeltaView>(published_, overlay_, sequence_);
  InstallVersion(std::make_shared<const Version>(base_, std::move(view),
                                                 epoch, live_versions_));
}

Status DeltaStore::Insert(const rdf::Triple& triple) {
  const Mutation m{triple, /*remove=*/false};
  return Apply(std::span<const Mutation>(&m, 1));
}

Status DeltaStore::Remove(const rdf::Triple& triple) {
  const Mutation m{triple, /*remove=*/true};
  return Apply(std::span<const Mutation>(&m, 1));
}

Status DeltaStore::Apply(std::span<const Mutation> mutations) {
  if (mutations.empty()) return Status::OK();
  std::unique_lock<std::mutex> lock(write_mu_);
  // Injected before any state changes, so a failed apply is a no-op and
  // queries keep seeing the pre-batch view (batch atomicity).
  PARJ_FAILPOINT("delta.apply");
  // Log-before-apply: the batch is framed into the WAL (still under the
  // writer lock, so records land in apply order) before any memory
  // changes. A rejected append — backpressure timeout or a dead log —
  // fails the write with the store untouched.
  Wal::Ticket ticket;
  if (wal_ != nullptr) {
    Result<Wal::Ticket> appended = wal_->Append(mutations, sequence_ + 1);
    if (!appended.ok()) return appended.status();
    ticket = *appended;
  }
  bool overlay_grew = false;
  ApplyToBuilders(*base_, mutations, &overlay_grew);
  log_.insert(log_.end(), mutations.begin(), mutations.end());
  ++sequence_;
  Publish(overlay_grew, CurrentVersion()->epoch());
  if (wal_ == nullptr) return Status::OK();
  Wal* wal = wal_;
  lock.unlock();
  // Ack-after-durability, waited for *outside* the writer lock: the next
  // writer can enter Apply and enqueue its record while this one waits,
  // which is what lets one fsync commit a whole group of batches.
  return wal->WaitDurable(ticket);
}

Status DeltaStore::Compact() {
  bool expected = false;
  if (!compacting_.compare_exchange_strong(expected, true,
                                           std::memory_order_acq_rel)) {
    return Status::AlreadyExists("compaction already running");
  }
  Stopwatch timer;
  // Captured at the swap point for the WAL checkpoint's second half,
  // which runs after the lambda with no locks held.
  std::shared_ptr<const storage::Database> checkpoint_base;
  uint64_t checkpoint_epoch = 0;
  Wal* checkpoint_wal = nullptr;
  const Status status = [&]() -> Status {
    // Phase 1 — capture: pin the version to rebuild from and remember how
    // much of the mutation log it covers. Writers continue after this.
    std::shared_ptr<const Version> pinned;
    size_t log_prefix = 0;
    {
      std::lock_guard<std::mutex> lock(write_mu_);
      pinned = current_;  // version_mu_ unnecessary: writers hold write_mu_
      log_prefix = log_.size();
    }

    // Phase 2 — rebuild (no locks held): fold the pinned delta into a new
    // base Database via the parallel build path. Term IDs are preserved
    // exactly: the new dictionary is the old one plus the overlay terms
    // appended in allocation order.
    PARJ_FAILPOINT("compactor.build");
    const storage::Database& old_base = pinned->base();
    const DeltaView& view = pinned->delta();
    const TermOverlay& overlay = view.overlay();

    dict::Dictionary dict = old_base.dictionary().Clone();
    for (const rdf::Term& term : overlay.resources()) {
      const TermId id = dict.EncodeResource(term);
      PARJ_CHECK(id == dict.resource_count())
          << "overlay resource folded to an unexpected ID";
    }
    for (const rdf::Term& term : overlay.predicates()) {
      const PredicateId id = dict.EncodePredicate(term);
      PARJ_CHECK(id == dict.predicate_count())
          << "overlay predicate folded to an unexpected ID";
    }

    std::vector<EncodedTriple> triples;
    triples.reserve(old_base.total_triples() + view.insert_triples());
    const PredicateId max_pid = dict.predicate_count();
    for (PredicateId pid = 1; pid <= max_pid; ++pid) {
      const storage::PropertyEntry* entry = old_base.FindEntry(pid);
      const PropertyDelta* d = view.Find(pid);
      if (entry != nullptr) {
        const storage::TableReplica& so = entry->table.so();
        const storage::TableReplica* del =
            d != nullptr ? &d->deletes.so() : nullptr;
        so.ForEachRun([&](size_t, TermId s, std::span<const TermId> run) {
          std::span<const TermId> del_run;
          if (del != nullptr && !del->empty()) {
            const size_t dpos = del->FindKey(s);
            if (dpos != SIZE_MAX) del_run = del->Run(dpos);
          }
          for (const TermId o : run) {
            if (!del_run.empty() &&
                std::binary_search(del_run.begin(), del_run.end(), o)) {
              continue;
            }
            triples.push_back(EncodedTriple{s, pid, o});
          }
        });
      }
      if (d != nullptr) {
        const storage::TableReplica& ins = d->inserts.so();
        for (size_t k = 0; k < ins.key_count(); ++k) {
          const TermId s = ins.KeyAt(k);
          for (const TermId o : ins.Run(k)) {
            triples.push_back(EncodedTriple{s, pid, o});
          }
        }
      }
    }

    Result<storage::Database> rebuilt = storage::Database::Build(
        std::move(dict), std::move(triples), options_.database);
    if (!rebuilt.ok()) return rebuilt.status();
    storage::Database new_db = std::move(rebuilt).value();
    if (options_.calibrate_on_compact) {
      new_db.Calibrate(options_.calibration);
    }

    // Phase 3 — swap under the writer lock: rebase mutations that raced
    // with the rebuild onto the new base (replaying them re-derives the
    // ins/del invariants and re-allocates byte-identical overlay IDs,
    // because the new dictionary ends exactly where the pinned overlay
    // ended), then install the new epoch. A failure before the install
    // leaves the old version serving and the writer state untouched.
    std::lock_guard<std::mutex> lock(write_mu_);
    PARJ_FAILPOINT("compactor.swap");
    const TermId expected_resources = working_overlay_->resource_count();
    const PredicateId expected_predicates =
        working_overlay_->predicate_count();
    std::vector<Mutation> tail(log_.begin() + log_prefix, log_.end());

    // WAL checkpoint half 1 (§14): rotate onto a fresh segment and re-log
    // the tail into it, so the snapshot-to-be plus that one segment cover
    // every acknowledged write. Failure aborts the compaction with the
    // store untouched; the duplicate tail records it may leave behind
    // replay idempotently.
    if (wal_ != nullptr) {
      PARJ_RETURN_NOT_OK(wal_->BeginCheckpoint(tail, sequence_));
    }

    base_ = std::make_shared<const storage::Database>(std::move(new_db));
    const dict::Dictionary& new_dict = base_->dictionary();
    builders_.assign(base_->predicate_count(), PidBuilder{});
    working_overlay_ = std::make_unique<TermOverlay>(
        new_dict.resource_count(), new_dict.predicate_count());
    published_.assign(base_->predicate_count(), nullptr);
    log_.clear();
    bool overlay_grew = false;
    if (!tail.empty()) {
      ApplyToBuilders(*base_, tail, &overlay_grew);
      log_ = std::move(tail);
    }
    PARJ_CHECK(working_overlay_->resource_count() == expected_resources &&
               working_overlay_->predicate_count() == expected_predicates)
        << "compaction rebase changed term IDs";
    overlay_ = std::make_shared<const TermOverlay>(*working_overlay_);
    Publish(/*overlay_grew=*/false, pinned->epoch() + 1);
    checkpoint_base = base_;
    checkpoint_epoch = pinned->epoch() + 1;
    checkpoint_wal = wal_;
    return Status::OK();
  }();

  // WAL checkpoint half 2, off-lock: durable snapshot + manifest swing +
  // segment pruning. Failure here never loses data — the previous
  // manifest still covers every record — so it degrades to a warning and
  // the next compaction retries the whole checkpoint.
  if (status.ok() && checkpoint_wal != nullptr) {
    const Status finished =
        checkpoint_wal->FinishCheckpoint(checkpoint_base, checkpoint_epoch);
    if (!finished.ok()) {
      PARJ_LOG(Warning) << "WAL checkpoint did not finish (recovery will "
                        << "replay the full log): " << finished.ToString();
    }
  }

  compaction_micros_.fetch_add(
      static_cast<uint64_t>(timer.ElapsedNanos() / 1000),
      std::memory_order_relaxed);
  if (status.ok()) {
    compactions_.fetch_add(1, std::memory_order_relaxed);
    // The swapped-in base carries fresh histograms/statistics; cached
    // plans built against the old base are still correct (TermIds are
    // stable) but may no longer be the optimizer's choice.
    plan_generation_.fetch_add(1, std::memory_order_acq_rel);
  }
  compacting_.store(false, std::memory_order_release);
  return status;
}

void DeltaStore::CalibrateBase(const join::CalibrationOptions& options) {
  std::lock_guard<std::mutex> lock(write_mu_);
  // Calibration is the one sanctioned mutation of a published base: it
  // tunes per-replica search windows in place and is only legal while no
  // queries are running (the same contract the read-only engine had).
  const_cast<storage::Database*>(base_.get())->Calibrate(options);
  plan_generation_.fetch_add(1, std::memory_order_acq_rel);
}

MutationStats DeltaStore::stats() const {
  MutationStats out;
  const std::shared_ptr<const Version> v = CurrentVersion();
  out.delta_insert_triples = v->delta().insert_triples();
  out.delta_delete_triples = v->delta().delete_triples();
  out.delta_bytes = v->delta().DeltaBytes();
  out.epoch = v->epoch();
  out.sequence = v->delta().sequence();
  out.plan_generation = plan_generation_.load(std::memory_order_relaxed);
  out.compactions = compactions_.load(std::memory_order_relaxed);
  out.compaction_micros = compaction_micros_.load(std::memory_order_relaxed);
  const int64_t live = live_versions_->load(std::memory_order_relaxed);
  out.active_epochs = live < 0 ? 0 : static_cast<uint64_t>(live);
  return out;
}

}  // namespace parj::mut
