#ifndef PARJ_MUTABLE_WAL_H_
#define PARJ_MUTABLE_WAL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "mutable/delta_store.h"
#include "storage/snapshot.h"

namespace parj::mut {

/// Write-ahead logging for the mutable store (DESIGN.md §14). The delta
/// store of §12 is purely memory-resident; this module makes acknowledged
/// writes survive a crash with the classic LSM write path: every mutation
/// batch is serialized into a CRC-32C-framed record, appended to a segment
/// file by a dedicated log-writer thread, and acknowledged only once the
/// configured sync policy says it is durable. Compaction doubles as the
/// checkpoint: a successful swap saves the new base as a durable snapshot,
/// rotates the log onto a fresh segment, and publishes a small CRC'd
/// manifest naming the snapshot and the first live segment, after which
/// the older segments are garbage.
///
/// Recovery is deterministic at the TermId level: records carry the
/// string-level mutations, and replaying them through DeltaStore::Apply
/// re-allocates overlay TermIds in first-seen order — the same order the
/// original process used — so the recovered store is row-identical (not
/// just set-equal) to the acknowledged prefix.
///
/// On-disk layout inside the WAL directory:
///
///   MANIFEST               CRC'd control file (see below)
///   snapshot-<epoch>.parj  base snapshot (ordinary snapshot format)
///   wal-<seq>.seg          log segments, contiguous ascending <seq>
///
/// Segment file: 24-byte header { magic "PARJWSEG", u32 version, u32
/// reserved, u64 seq }, then records { u32 payload_len, u32
/// crc32c(payload), payload }. A record payload is { u8 type=1, u64
/// sequence, u32 mutation_count, mutations }, each mutation { u8 flags
/// (bit0 = remove), subject, predicate, object }, each term { u8 kind,
/// u32-len lexical, u32-len datatype, u32-len lang } — the snapshot
/// format's term encoding. All integers little-endian.
///
/// Manifest: { magic "PARJWMAN", u32 version, u64 snapshot_epoch, u64
/// first_segment, u32 name_len, snapshot file name, u32 crc32c(everything
/// after the magic) }, replaced atomically (tmp + fsync + rename + fsync
/// parent dir) so a crash mid-update leaves the previous manifest intact.
///
/// Torn-tail rule: replay stops at the first bad frame of the *last*
/// segment (short frame, oversized length, or CRC mismatch) and truncates
/// the file there — a crash mid-append must never lose the records before
/// it or replay garbage after it. The same damage in a non-last segment
/// is not a torn tail, it is corruption, and recovery reports kDataLoss
/// naming the segment and byte offset rather than guessing.
class Wal;

/// When an Append is acknowledged as durable.
enum class WalSync {
  kNone,    ///< never fsync; ack after the write() (page cache only)
  kBatch,   ///< group commit: one fsync covers every queued record
  kAlways,  ///< fsync after every record (strict, slowest)
};

const char* WalSyncName(WalSync sync);
Result<WalSync> ParseWalSync(const std::string& name);

struct WalOptions {
  /// WAL directory; empty disables logging entirely.
  std::string dir;
  WalSync sync = WalSync::kBatch;
  /// Rotate to a fresh segment once the current one exceeds this.
  uint64_t segment_bytes = 64ull << 20;
  /// Appends block (backpressure) once this many serialized bytes are
  /// queued ahead of the log-writer thread…
  uint64_t max_backlog_bytes = 32ull << 20;
  /// …and fail with ResourceExhausted after waiting this long.
  uint64_t backlog_timeout_millis = 30'000;

  bool enabled() const { return !dir.empty(); }
};

/// Cumulative log-writer counters (all monotonic except backlog_bytes and
/// segments, which are gauges).
struct WalStats {
  uint64_t records = 0;
  uint64_t bytes = 0;
  uint64_t fsyncs = 0;
  uint64_t group_commits = 0;        ///< fsyncs amortized over >= 1 record
  uint64_t group_commit_micros = 0;  ///< cumulative group-commit latency
  uint64_t rotations = 0;
  uint64_t checkpoints = 0;
  uint64_t checkpoint_failures = 0;
  uint64_t backpressure_waits = 0;
  uint64_t backlog_bytes = 0;  ///< serialized bytes queued, not yet written
  uint64_t segments = 0;       ///< live segment files
};

/// What one recovery did.
struct RecoveryStats {
  uint64_t snapshot_epoch = 0;
  uint64_t segments_scanned = 0;
  uint64_t records_replayed = 0;
  uint64_t mutations_replayed = 0;
  uint64_t truncated_bytes = 0;  ///< torn tail removed from the last segment
  double snapshot_load_millis = 0.0;
  double replay_millis = 0.0;
};

/// Read-only summary of a WAL directory (the CLI's `verify-wal`).
struct WalInfo {
  uint64_t snapshot_epoch = 0;
  std::string snapshot_file;
  uint64_t first_segment = 0;
  uint64_t last_segment = 0;
  uint64_t segments = 0;
  uint64_t records = 0;
  uint64_t mutations = 0;
  uint64_t bytes = 0;           ///< total segment bytes scanned
  uint64_t torn_tail_bytes = 0; ///< unreplayable tail of the last segment
};

class Wal {
 public:
  /// A durability ticket: Append hands one back, WaitDurable redeems it.
  struct Ticket {
    uint64_t lsn = 0;
  };

  /// Everything Recover() reconstructs: the checkpointed base, the logged
  /// mutation batches to replay over it (in log order, possibly
  /// containing benign duplicates of a checkpoint tail — replay through
  /// DeltaStore::Apply is idempotent), and where logging resumes.
  struct Recovered {
    storage::Database base;
    std::vector<std::vector<Mutation>> batches;
    uint64_t epoch = 0;
    uint64_t next_segment = 0;
    RecoveryStats stats;
  };

  /// Creates a fresh WAL directory for `base` at `epoch`: durable
  /// snapshot, segment 1, manifest, in that order (a crash before the
  /// manifest leaves no manifest, and the directory re-initializes
  /// cleanly). Fails with AlreadyExists when a manifest is present.
  static Result<std::unique_ptr<Wal>> Initialize(const storage::Database& base,
                                                 uint64_t epoch,
                                                 const WalOptions& options);

  /// Loads the manifest + snapshot and replays every live segment.
  /// NotFound when no manifest exists (fresh directory — Initialize
  /// instead); kDataLoss naming segment and offset on any mid-stream
  /// corruption. A torn tail in the last segment is truncated in place
  /// (ftruncate + fsync) so the next writer appends after a clean frame.
  static Result<Recovered> Recover(
      const WalOptions& options,
      const storage::DatabaseOptions& database = {},
      const storage::SnapshotLoadOptions& load = {});

  /// Resumes logging after Recover() on a fresh segment `next_segment`.
  static Result<std::unique_ptr<Wal>> Open(const WalOptions& options,
                                           uint64_t next_segment);

  /// Read-only integrity walk of a WAL directory: manifest, snapshot
  /// CRCs, every segment frame. Never repairs anything.
  static Result<WalInfo> VerifyWal(const std::string& dir);

  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Serializes and enqueues one mutation batch as record `sequence`.
  /// Blocks (bounded by backlog_timeout_millis) when the writer backlog
  /// exceeds max_backlog_bytes; fails ResourceExhausted on timeout and
  /// IoError once the log-writer has hit a sticky write failure. Call
  /// with the store's writer lock held so records are framed in apply
  /// order; the returned ticket is redeemed *outside* the lock, which is
  /// what turns batched fsync into group commit.
  Result<Ticket> Append(std::span<const Mutation> mutations,
                        uint64_t sequence);

  /// Blocks until the ticket's record is durable under the sync policy
  /// (immediately satisfied under kNone once written). Returns the
  /// sticky writer error if the log died first.
  Status WaitDurable(Ticket ticket);

  /// Checkpoint half 1, called with the store's writer lock held at the
  /// compaction swap point: drains the queue, rotates onto a fresh
  /// segment, re-logs `tail` (the mutations that raced with the rebuild,
  /// which the new base does not contain) into it, and fsyncs — after
  /// this returns, the fresh segment alone carries everything the
  /// snapshot-to-be lacks. Failure leaves the old segment chain intact
  /// and must abort the compaction swap.
  Status BeginCheckpoint(std::span<const Mutation> tail, uint64_t sequence);

  /// Checkpoint half 2, called off-lock after the swap published: saves
  /// `base` as snapshot-<epoch>.parj (durably), atomically points the
  /// manifest at it + the fresh segment, and prunes dead segments and
  /// snapshots. Failure here is non-fatal for durability — the old
  /// manifest still covers every record (the re-logged tail replays
  /// idempotently) — so callers log it and carry on.
  Status FinishCheckpoint(std::shared_ptr<const storage::Database> base,
                          uint64_t epoch);

  WalStats stats() const;
  const std::string& dir() const { return options_.dir; }

 private:
  struct Item {
    std::string bytes;       ///< one framed record (empty for a bare rotate)
    uint64_t lsn = 0;
    bool checkpoint = false; ///< rotate first, then write bytes, then fsync
    Status* done_status = nullptr;   ///< checkpoint completion (stack of caller)
    bool* done_flag = nullptr;
  };

  explicit Wal(WalOptions options);

  /// Opens segment `seq` for append (creating it with a header) and
  /// makes its existence durable. Used by Initialize/Open and rotation.
  Status OpenSegment(uint64_t seq);

  void StartWriter();
  void WriterLoop();
  /// Writes one framed record to the current segment, honoring torn/io
  /// failpoints and size-based rotation. Writer thread only.
  Status WriteRecord(const std::string& bytes);
  Status Rotate();
  Status SyncSegment();

  const WalOptions options_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;     ///< writer thread wake-up
  std::condition_variable durable_cv_;  ///< durable_lsn_ advanced / error
  std::condition_variable space_cv_;    ///< backlog drained
  std::deque<Item> queue_;
  uint64_t queue_bytes_ = 0;
  uint64_t next_lsn_ = 0;
  uint64_t durable_lsn_ = 0;
  Status writer_error_;  ///< sticky: first write failure, rejects all appends
  bool stop_ = false;

  // Writer-thread-only segment state; current_segment_ is atomic solely
  // because stats() reads it as a gauge from other threads.
  int fd_ = -1;
  std::atomic<uint64_t> current_segment_{0};
  uint64_t current_segment_bytes_ = 0;
  bool synced_since_last_write_ = true;

  // Manifest state, guarded by mu_.
  uint64_t manifest_first_segment_ = 0;
  uint64_t pending_first_segment_ = 0;  ///< set by BeginCheckpoint's rotate

  std::thread writer_;

  // Counters (relaxed; stats() assembles a snapshot).
  std::atomic<uint64_t> records_{0};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> fsyncs_{0};
  std::atomic<uint64_t> group_commits_{0};
  std::atomic<uint64_t> group_commit_micros_{0};
  std::atomic<uint64_t> rotations_{0};
  std::atomic<uint64_t> checkpoints_{0};
  std::atomic<uint64_t> checkpoint_failures_{0};
  std::atomic<uint64_t> backpressure_waits_{0};
};

/// Serializes one mutation batch into a framed WAL record (exposed for
/// tests that build segments by hand).
std::string EncodeWalRecord(std::span<const Mutation> mutations,
                            uint64_t sequence);

}  // namespace parj::mut

#endif  // PARJ_MUTABLE_WAL_H_
