#ifndef PARJ_MUTABLE_DELTA_VIEW_H_
#define PARJ_MUTABLE_DELTA_VIEW_H_

#include <memory>
#include <span>
#include <vector>

#include "common/types.h"
#include "dict/dictionary.h"
#include "rdf/term.h"
#include "storage/property_table.h"

/// Live mutability (DESIGN.md §12). `mutable` is a C++ keyword, so the
/// directory src/mutable/ maps to namespace parj::mut.
namespace parj::mut {

/// One property's pending writes, stored in the exact layout the join
/// kernels already understand: two PropertyTables (each with S-O and O-S
/// replicas) holding the inserted and the deleted (subject, object) pairs.
/// Invariants maintained by the DeltaStore:
///   inserts ∩ base = ∅   (inserting a present triple is a no-op)
///   deletes ⊆ base       (removing an absent triple is a no-op;
///                         removing a pending insert just drops it)
/// so merged membership is (base ∧ ¬deletes) ∨ inserts and the two delta
/// sides are disjoint.
struct PropertyDelta {
  storage::PropertyTable inserts;
  storage::PropertyTable deletes;

  bool empty() const {
    return inserts.triple_count() == 0 && deletes.triple_count() == 0;
  }
  size_t MemoryUsage() const {
    return inserts.MemoryUsage() + deletes.MemoryUsage();
  }
};

/// Immutable snapshot of the terms allocated past a base dictionary: new
/// resources get IDs base_resource_count+1.., new predicates likewise, in
/// first-seen order. Readers (query encode, row decode) probe the overlay
/// after missing in the base dictionary; because IDs are append-only and
/// never reassigned, an ID decoded against any later overlay of the same
/// store decodes to the same term.
class TermOverlay {
 public:
  TermOverlay(TermId base_resources, PredicateId base_predicates)
      : base_resources_(base_resources), base_predicates_(base_predicates) {}

  TermOverlay(const TermOverlay&) = default;
  TermOverlay(TermOverlay&&) = default;

  /// Appends `term` if absent; returns its overlay ID either way.
  TermId AddResource(const rdf::Term& term);
  PredicateId AddPredicate(const rdf::Term& term);

  /// Overlay-only lookups: kInvalidTermId / kInvalidPredicateId when the
  /// term was never allocated here (the base dictionary is probed first
  /// by callers).
  TermId LookupResource(const rdf::Term& term) const;
  PredicateId LookupPredicate(const rdf::Term& term) const;

  /// Decodes an overlay resource ID; nullptr for IDs at or below the base
  /// count (the base dictionary owns those) or past the overlay.
  const rdf::Term* DecodeResource(TermId id) const;
  const rdf::Term* DecodePredicate(PredicateId id) const;

  TermId base_resource_count() const { return base_resources_; }
  PredicateId base_predicate_count() const { return base_predicates_; }
  TermId resource_count() const {
    return base_resources_ + static_cast<TermId>(resources_.size());
  }
  PredicateId predicate_count() const {
    return base_predicates_ + static_cast<PredicateId>(predicates_.size());
  }

  /// Overlay terms in allocation order (IDs base_count+1, +2, ...) — the
  /// order compaction folds them into the next base dictionary, which is
  /// what keeps every previously handed-out ID stable.
  std::span<const rdf::Term> resources() const { return resources_; }
  std::span<const rdf::Term> predicates() const { return predicates_; }

  bool empty() const { return resources_.empty() && predicates_.empty(); }

  size_t MemoryUsage() const;

 private:
  TermId base_resources_;
  PredicateId base_predicates_;
  std::vector<rdf::Term> resources_;   // index = id - base_resources_ - 1
  std::vector<rdf::Term> predicates_;  // index = id - base_predicates_ - 1
  dict::TermKeyMap<TermId> resource_ids_;
  dict::TermKeyMap<PredicateId> predicate_ids_;
};

/// An immutable, shareable view of every pending write at one publish
/// point: per-predicate PropertyDeltas plus the term overlay. A DeltaView
/// is built by the DeltaStore under its writer lock and then never
/// mutated, so any number of query threads read it without
/// synchronization; properties untouched by a batch share their
/// PropertyDelta with the previous view.
class DeltaView {
 public:
  /// An empty view over a base with the given term counts (epoch 0 state).
  DeltaView(TermId base_resources, PredicateId base_predicates)
      : overlay_(std::make_shared<TermOverlay>(base_resources,
                                               base_predicates)) {}

  DeltaView(std::vector<std::shared_ptr<const PropertyDelta>> props,
            std::shared_ptr<const TermOverlay> overlay, uint64_t sequence);

  /// Pending writes for predicate `pid`, or nullptr when it has none.
  /// Valid for any pid, including predicates past the base database's
  /// entry array (delta-only predicates).
  const PropertyDelta* Find(PredicateId pid) const {
    if (pid == 0 || static_cast<size_t>(pid) > props_.size()) return nullptr;
    const PropertyDelta* d = props_[pid - 1].get();
    return (d == nullptr || d->empty()) ? nullptr : d;
  }

  const TermOverlay& overlay() const { return *overlay_; }

  /// Monotone write-batch sequence number this view reflects.
  uint64_t sequence() const { return sequence_; }

  uint64_t insert_triples() const { return insert_triples_; }
  uint64_t delete_triples() const { return delete_triples_; }
  uint64_t delta_triples() const { return insert_triples_ + delete_triples_; }
  bool empty() const { return delta_triples() == 0 && overlay_->empty(); }

  /// Heap bytes of the delta tables + overlay terms (the delta_bytes
  /// serving gauge).
  size_t DeltaBytes() const { return delta_bytes_; }

  size_t property_count() const { return props_.size(); }

 private:
  // index = predicate id - 1; entries may be null (no pending writes).
  std::vector<std::shared_ptr<const PropertyDelta>> props_;
  std::shared_ptr<const TermOverlay> overlay_;
  uint64_t sequence_ = 0;
  uint64_t insert_triples_ = 0;
  uint64_t delete_triples_ = 0;
  size_t delta_bytes_ = 0;
};

}  // namespace parj::mut

#endif  // PARJ_MUTABLE_DELTA_VIEW_H_
