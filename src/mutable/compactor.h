#ifndef PARJ_MUTABLE_COMPACTOR_H_
#define PARJ_MUTABLE_COMPACTOR_H_

#include <atomic>
#include <condition_variable>
#include <mutex>

#include "common/status.h"
#include "mutable/delta_store.h"

namespace parj::server {
class ThreadPool;
}  // namespace parj::server

namespace parj::mut {

struct CompactorOptions {
  /// Trigger a background compaction when the delta reaches this many
  /// pending triples (inserts + deletes). 0 disables auto-triggering;
  /// the operator compacts manually (CLI `.compact`).
  uint64_t auto_compact_delta_triples = 0;
};

/// Background compaction driver: schedules DeltaStore::Compact() as a
/// task on the serving ThreadPool so ingest keeps flowing while the CSR
/// replicas are rebuilt, and exposes the trigger policy the engine's
/// write path consults after every batch. At most one compaction task is
/// in flight; the DeltaStore's own guard makes a racing manual Compact()
/// harmless.
class Compactor {
 public:
  Compactor(DeltaStore* store, server::ThreadPool* pool,
            CompactorOptions options = {});

  /// Blocks until any in-flight background compaction finishes.
  ~Compactor();

  Compactor(const Compactor&) = delete;
  Compactor& operator=(const Compactor&) = delete;

  /// Schedules a background compaction unless one is already scheduled or
  /// running. Returns true when a new task was scheduled.
  bool Trigger();

  /// Trigger() iff the store's pending-delta size crossed the
  /// auto-compaction threshold. Called by the engine after each write
  /// batch; cheap when below threshold.
  void MaybeTrigger();

  /// Waits for the in-flight compaction (if any) to finish.
  void Wait();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Status of the most recently finished background compaction.
  Status last_status() const;

  uint64_t runs() const { return runs_.load(std::memory_order_relaxed); }

 private:
  void RunOnce();

  DeltaStore* const store_;
  server::ThreadPool* const pool_;
  const CompactorOptions options_;

  std::atomic<bool> running_{false};
  std::atomic<uint64_t> runs_{0};
  mutable std::mutex mu_;
  std::condition_variable done_cv_;
  Status last_status_;
};

}  // namespace parj::mut

#endif  // PARJ_MUTABLE_COMPACTOR_H_
