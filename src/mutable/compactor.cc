#include "mutable/compactor.h"

#include "server/thread_pool.h"

namespace parj::mut {

Compactor::Compactor(DeltaStore* store, server::ThreadPool* pool,
                     CompactorOptions options)
    : store_(store), pool_(pool), options_(options) {}

Compactor::~Compactor() { Wait(); }

bool Compactor::Trigger() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true,
                                        std::memory_order_acq_rel)) {
    return false;
  }
  pool_->Submit([this] { RunOnce(); });
  return true;
}

void Compactor::MaybeTrigger() {
  if (options_.auto_compact_delta_triples == 0) return;
  const MutationStats stats = store_->stats();
  if (stats.delta_insert_triples + stats.delta_delete_triples <
      options_.auto_compact_delta_triples) {
    return;
  }
  Trigger();
}

void Compactor::RunOnce() {
  Status status = store_->Compact();
  // A concurrent manual Compact() owning the store guard is not a
  // failure of this driver; record everything else.
  {
    // running_ flips under mu_ so Wait()'s predicate check cannot miss
    // the wakeup.
    std::lock_guard<std::mutex> lock(mu_);
    last_status_ = std::move(status);
    runs_.fetch_add(1, std::memory_order_relaxed);
    running_.store(false, std::memory_order_release);
  }
  done_cv_.notify_all();
}

void Compactor::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return !running(); });
}

Status Compactor::last_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_status_;
}

}  // namespace parj::mut
