#ifndef PARJ_MUTABLE_DELTA_STORE_H_
#define PARJ_MUTABLE_DELTA_STORE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "join/calibration.h"
#include "mutable/delta_view.h"
#include "storage/database.h"

namespace parj::mut {

class Wal;

/// One logical write: insert or remove a string-level triple. The store
/// keeps the log of mutations applied since the last compaction so a
/// compaction can rebase writes that raced with its rebuild.
struct Mutation {
  rdf::Triple triple;
  bool remove = false;
};

struct DeltaStoreOptions {
  /// Rebuild options for compaction (histograms, indexes, pair stats and
  /// build_threads — set build_threads > 1 to rebuild through the
  /// parallel build path).
  storage::DatabaseOptions database;
  /// Re-run Algorithm 2 on the compacted store (off by default: compaction
  /// should not spend calibration wall time behind the serving path; the
  /// rebuilt store uses the default windows until the operator asks).
  bool calibrate_on_compact = false;
  join::CalibrationOptions calibration;
  /// Epoch the store starts at. 0 for a fresh store; WAL recovery passes
  /// the checkpointed epoch so epoch numbering continues where the
  /// crashed process left off.
  uint64_t initial_epoch = 0;
};

/// Point-in-time counters for the serving gauges (DESIGN.md §12).
struct MutationStats {
  uint64_t delta_insert_triples = 0;
  uint64_t delta_delete_triples = 0;
  uint64_t delta_bytes = 0;
  uint64_t compactions = 0;         ///< completed compactions
  uint64_t compaction_micros = 0;   ///< cumulative compaction wall time
  uint64_t active_epochs = 0;       ///< live Version objects (pinned views)
  uint64_t epoch = 0;               ///< current epoch (bumped per compaction)
  uint64_t sequence = 0;            ///< write batches applied
  /// Bumped whenever the plan-relevant base statistics change (successful
  /// compaction or in-place recalibration). Plan caches key on this: a
  /// stale generation means a cached plan may be suboptimal, never wrong.
  uint64_t plan_generation = 0;
};

/// One epoch's immutable (base, delta) pair. Snapshots hold a shared_ptr
/// to a Version; the base database and delta view it references stay alive
/// — and bit-stable — until the last snapshot of that epoch is destroyed,
/// which is the entire epoch-reclamation mechanism (plain shared_ptr
/// reference counting; no epoch list to scan, no grace periods).
class Version {
 public:
  Version(std::shared_ptr<const storage::Database> base,
          std::shared_ptr<const DeltaView> delta, uint64_t epoch,
          std::shared_ptr<std::atomic<int64_t>> live_counter);
  ~Version();
  Version(const Version&) = delete;
  Version& operator=(const Version&) = delete;

  const storage::Database& base() const { return *base_; }
  const DeltaView& delta() const { return *delta_; }
  uint64_t epoch() const { return epoch_; }

 private:
  std::shared_ptr<const storage::Database> base_;
  std::shared_ptr<const DeltaView> delta_;
  uint64_t epoch_ = 0;
  std::shared_ptr<std::atomic<int64_t>> live_counter_;
};

/// An epoch-pinned read view: the (base CSR store, delta view) pair a
/// query executes against. Cheap to copy (two pointer hops); holding one
/// pins its epoch's storage against reclamation but never blocks writers
/// or the compactor.
class MvccSnapshot {
 public:
  MvccSnapshot() = default;
  explicit MvccSnapshot(std::shared_ptr<const Version> version)
      : version_(std::move(version)) {}

  bool valid() const { return version_ != nullptr; }
  const storage::Database& base() const { return version_->base(); }
  const DeltaView& delta() const { return version_->delta(); }
  uint64_t epoch() const { return version_->epoch(); }

  /// Monotonic data-content version of this view: the number of write
  /// batches applied when it was published. Unlike epoch() it bumps on
  /// EVERY mutation, and — because compaction only re-represents the same
  /// triples (TermIds stable) — it is intentionally unchanged across a
  /// compaction swap. Result caches key on this: equal data_version
  /// guarantees byte-identical query rows.
  uint64_t data_version() const { return version_->delta().sequence(); }

 private:
  std::shared_ptr<const Version> version_;
};

/// The write side of the store (DESIGN.md §12): an LSM-style delta over an
/// immutable base Database. Writers apply batches under a writer lock,
/// each publish installing a fresh immutable DeltaView; readers pin the
/// current Version with snapshot() and never take the writer lock.
/// Compact() folds the delta into a rebuilt base (through the parallel
/// Database::Build path), rebases writes that raced with the rebuild via
/// the mutation log, and installs the new epoch; snapshots taken before
/// the swap keep serving the old epoch untouched.
///
/// Thread-safety: snapshot()/stats() are safe from any thread.
/// Insert/Remove/Apply/Compact serialize on the writer lock; only one
/// compaction runs at a time (concurrent Compact() calls return
/// AlreadyExists). The heavy rebuild phase of Compact() runs outside
/// the writer lock, so writes stay available during compaction.
class DeltaStore {
 public:
  explicit DeltaStore(storage::Database base, DeltaStoreOptions options = {});

  DeltaStore(const DeltaStore&) = delete;
  DeltaStore& operator=(const DeltaStore&) = delete;

  /// Pins the current epoch. O(1); never blocks on writers.
  MvccSnapshot snapshot() const;

  /// Inserts one triple (no-op if already present). Unseen terms are
  /// allocated overlay IDs past the base dictionary.
  Status Insert(const rdf::Triple& triple);

  /// Removes one triple (no-op if absent). Never allocates terms.
  Status Remove(const rdf::Triple& triple);

  /// Applies a batch of mutations atomically: queries see either none or
  /// all of it (one publish per call — batch writes to amortize the
  /// per-publish delta rebuild).
  Status Apply(std::span<const Mutation> mutations);

  /// Synchronous compaction. Returns AlreadyExists when another
  /// compaction is in flight, otherwise the rebuild status. On any
  /// failure (including injected compactor.build / compactor.swap
  /// faults) the serving snapshot is untouched.
  Status Compact();

  /// True when a compaction is currently running.
  bool compacting() const {
    return compacting_.load(std::memory_order_acquire);
  }

  /// Attaches a write-ahead log (§14). From then on every Apply frames
  /// its batch into the log before touching memory and acknowledges only
  /// once the log's sync policy says the record is durable, and every
  /// successful Compact checkpoints the log (fresh segment + snapshot +
  /// manifest). Pass nullptr to detach. The caller owns the Wal and must
  /// keep it alive while attached; attach before serving writes, not
  /// concurrently with them.
  void AttachWal(Wal* wal);

  /// Runs Algorithm 2 on the current base in place (load-time pattern:
  /// calibration tunes per-replica search windows, not data). Must not
  /// race with queries over the same base — call it before serving
  /// starts, exactly like the read-only engine's Calibrate().
  void CalibrateBase(const join::CalibrationOptions& options);

  MutationStats stats() const;

  /// Data-content version of the current epoch (see
  /// MvccSnapshot::data_version).
  uint64_t data_version() const { return snapshot().data_version(); }

  /// Plan-statistics generation (see MutationStats::plan_generation).
  uint64_t plan_generation() const {
    return plan_generation_.load(std::memory_order_acquire);
  }

  /// The current epoch's base database. The reference is valid until the
  /// next successful Compact() — callers that execute queries must pin a
  /// snapshot() instead.
  const storage::Database& base() const;

  uint64_t epoch() const;

 private:
  /// Per-predicate pending-write builder. Pairs are packed (s << 32) | o.
  struct PidBuilder {
    std::unordered_set<uint64_t> ins;
    std::unordered_set<uint64_t> del;
    bool dirty = false;  ///< touched since last publish
  };

  /// Encodes against base dictionary then overlay; allocates overlay IDs
  /// when `allocate` (insert path) and returns 0 components otherwise.
  EncodedTriple EncodeTriple(const rdf::Triple& triple, bool allocate);

  /// True when the current base contains (s, o) for predicate `pid`.
  bool BaseContains(const storage::Database& base, PredicateId pid, TermId s,
                    TermId o) const;

  /// Applies `mutations` to the builders (writer lock held); sets
  /// `*overlay_grew` when new terms were allocated.
  void ApplyToBuilders(const storage::Database& base,
                       std::span<const Mutation> mutations,
                       bool* overlay_grew);

  /// Rebuilds dirty PropertyDeltas and installs a new DeltaView + Version
  /// at `epoch` (writer lock held).
  void Publish(bool overlay_grew, uint64_t epoch);

  /// Installs `version` as current.
  void InstallVersion(std::shared_ptr<const Version> version);

  std::shared_ptr<const Version> CurrentVersion() const;

  const DeltaStoreOptions options_;

  /// Serializes writers and the compactor's swap phase.
  mutable std::mutex write_mu_;
  /// Guards current_ only — snapshot() takes this, never write_mu_.
  mutable std::mutex version_mu_;
  std::shared_ptr<const Version> current_;
  std::shared_ptr<std::atomic<int64_t>> live_versions_;

  // ---- writer state, guarded by write_mu_ ----
  /// The current base; replaced only by a successful compaction swap.
  std::shared_ptr<const storage::Database> base_;
  std::vector<PidBuilder> builders_;  // index = predicate id - 1
  /// Mutable overlay the writer encodes against.
  std::unique_ptr<TermOverlay> working_overlay_;
  /// Immutable copy of working_overlay_ as of the last publish.
  std::shared_ptr<const TermOverlay> overlay_;
  /// Mutations applied since the current base was built, in order; the
  /// compactor replays the suffix that raced with its rebuild.
  std::vector<Mutation> log_;
  uint64_t sequence_ = 0;
  /// Previous view's per-pid deltas, reused for untouched predicates.
  std::vector<std::shared_ptr<const PropertyDelta>> published_;

  /// Write-ahead log, optional; guarded by write_mu_ for the Append /
  /// BeginCheckpoint calls (both made with the lock held).
  Wal* wal_ = nullptr;

  std::atomic<bool> compacting_{false};
  std::atomic<uint64_t> compactions_{0};
  std::atomic<uint64_t> compaction_micros_{0};
  std::atomic<uint64_t> plan_generation_{0};
};

}  // namespace parj::mut

#endif  // PARJ_MUTABLE_DELTA_STORE_H_
