#include "index/id_position_index.h"

#include "common/logging.h"

namespace parj::index {

IdPositionIndex IdPositionIndex::Build(std::span<const TermId> keys,
                                       TermId max_id) {
  IdPositionIndex idx;
  idx.universe_ = max_id;
  idx.key_count_ = keys.size();
  const size_t bit_count = static_cast<size_t>(max_id) + 1;
  const size_t block_count = (bit_count + kBlockBits - 1) / kBlockBits;
  idx.bits_.assign(block_count * kWordsPerBlock, 0);
  idx.samples_.assign(block_count, 0);
  idx.word_ranks_.assign(block_count * kWordsPerBlock, 0);

  for (TermId key : keys) {
    PARJ_CHECK(key <= max_id) << "key " << key << " beyond universe "
                              << max_id;
    idx.bits_[key / 64] |= uint64_t{1} << (key % 64);
  }

  uint32_t running = 0;
  for (size_t block = 0; block < block_count; ++block) {
    idx.samples_[block] = running;
    uint32_t in_block = 0;
    for (size_t w = 0; w < kWordsPerBlock; ++w) {
      const size_t word_index = block * kWordsPerBlock + w;
      idx.word_ranks_[word_index] = static_cast<uint16_t>(in_block);
      in_block += static_cast<uint32_t>(PopCount64(idx.bits_[word_index]));
    }
    running += in_block;
  }
  PARJ_CHECK(running == keys.size())
      << "duplicate keys passed to IdPositionIndex::Build";
  return idx;
}

}  // namespace parj::index
