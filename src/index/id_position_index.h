#ifndef PARJ_INDEX_ID_POSITION_INDEX_H_
#define PARJ_INDEX_ID_POSITION_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/bits.h"
#include "common/memory_policy.h"
#include "common/types.h"

namespace parj::index {

/// ID-to-Position index (paper §4.2): maps a dictionary ID directly to its
/// position in a replica's sorted distinct-key array, avoiding binary
/// search.
///
/// The paper's layout interleaves, every A bits, a 4-byte absolute position
/// with A presence bits; finding a position reads one integer and popcounts
/// the bits up to the ID. We keep the position samples and the presence
/// bits in parallel arrays (identical information, simpler alignment):
///
///   bits_        one presence bit per dictionary ID in [0, universe];
///   samples_     for every block of kBlockBits presence bits, the number
///                of set bits in all preceding blocks (i.e. the key-array
///                position of the block's first present ID);
///   word_ranks_  for every 64-bit word, the number of set bits in the
///                preceding words of ITS block (< kBlockBits, so uint16).
///
/// With kBlockBits = 512 (8 words = one cache line) the overhead matches
/// the paper's interval-480 configuration plus universe/32 bytes of word
/// ranks. A lookup is rank(id) = samples_[block] + word_ranks_[word] +
/// popcount(word bits below id): three loads and ONE popcount, data-
/// independent — the old layout instead walked up to 7 sibling words per
/// lookup, a data-dependent loop the branch predictor cannot amortize.
class IdPositionIndex {
 public:
  static constexpr size_t kNotFound = SIZE_MAX;
  static constexpr size_t kBlockBits = 512;
  static constexpr size_t kWordsPerBlock = kBlockBits / 64;

  IdPositionIndex() = default;

  /// Builds the index for `keys` (a sorted distinct array of IDs) over the
  /// dictionary universe [0, max_id].
  static IdPositionIndex Build(std::span<const TermId> keys, TermId max_id);

  IdPositionIndex(IdPositionIndex&&) = default;
  IdPositionIndex& operator=(IdPositionIndex&&) = default;
  IdPositionIndex(const IdPositionIndex&) = delete;
  IdPositionIndex& operator=(const IdPositionIndex&) = delete;

  bool empty() const { return bits_.empty(); }

  /// Position of `id` in the indexed key array, or kNotFound.
  size_t Find(TermId id) const {
    DirectMemory mem;
    return FindWith(id, mem);
  }

  /// True when `id` occurs in the indexed key array.
  bool Contains(TermId id) const { return Find(id) != kNotFound; }

  /// Find with an explicit memory-access policy (see
  /// common/memory_policy.h). Every word, sample, and rank read goes
  /// through `mem.Load`, so an instrumented policy observes the true
  /// access stream.
  template <typename MemoryPolicy>
  size_t FindWith(TermId id, MemoryPolicy& mem) const {
    if (id > universe_) return kNotFound;
    const size_t word_index = id / 64;
    const unsigned bit_index = static_cast<unsigned>(id % 64);
    const uint64_t word = mem.Load(&bits_[word_index]);
    if ((word >> bit_index & 1) == 0) return kNotFound;

    const size_t block = id / kBlockBits;
    return static_cast<size_t>(mem.Load(&samples_[block])) +
           static_cast<size_t>(mem.Load(&word_ranks_[word_index])) +
           static_cast<size_t>(PopCountBelow(word, bit_index));
  }

  /// The pre-rank-array lookup (walks the block's preceding words), kept
  /// as the reference for differential tests and the index micro-bench.
  template <typename MemoryPolicy>
  size_t FindWithWalk(TermId id, MemoryPolicy& mem) const {
    if (id > universe_) return kNotFound;
    const size_t word_index = id / 64;
    const unsigned bit_index = static_cast<unsigned>(id % 64);
    const uint64_t word = mem.Load(&bits_[word_index]);
    if ((word >> bit_index & 1) == 0) return kNotFound;

    const size_t block = id / kBlockBits;
    size_t position = mem.Load(&samples_[block]);
    // Count set bits from the start of the block up to (not including) id.
    const size_t first_word = block * kWordsPerBlock;
    for (size_t w = first_word; w < word_index; ++w) {
      position += static_cast<size_t>(PopCount64(mem.Load(&bits_[w])));
    }
    position += static_cast<size_t>(PopCountBelow(word, bit_index));
    return position;
  }

  /// Issues prefetches for the cache lines a FindWith(id) will touch.
  /// Used by the executor's batched probe loop to overlap the misses of
  /// independent lookups; has no architectural effect.
  void PrefetchFind(TermId id) const {
    if (id > universe_) return;
    const size_t word_index = id / 64;
    __builtin_prefetch(&bits_[word_index], 0, 1);
    __builtin_prefetch(&samples_[id / kBlockBits], 0, 1);
    __builtin_prefetch(&word_ranks_[word_index], 0, 1);
  }

  /// Heap bytes held by the index (the paper's N/8 + (N/A)*M formula plus
  /// the word-rank array).
  size_t MemoryUsage() const {
    return bits_.capacity() * sizeof(uint64_t) +
           samples_.capacity() * sizeof(uint32_t) +
           word_ranks_.capacity() * sizeof(uint16_t);
  }

  /// Largest indexable ID.
  TermId universe() const { return universe_; }

  /// Number of present IDs (size of the indexed key array).
  size_t key_count() const { return key_count_; }

 private:
  std::vector<uint64_t> bits_;
  std::vector<uint32_t> samples_;
  std::vector<uint16_t> word_ranks_;
  TermId universe_ = 0;
  size_t key_count_ = 0;
};

}  // namespace parj::index

#endif  // PARJ_INDEX_ID_POSITION_INDEX_H_
