#include "storage/property_table.h"

#include <algorithm>

#include "common/logging.h"

namespace parj::storage {

TableReplica TableReplica::Build(
    std::vector<std::pair<TermId, TermId>> pairs) {
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());

  TableReplica replica;
  replica.values_.reserve(pairs.size());
  size_t i = 0;
  while (i < pairs.size()) {
    TermId key = pairs[i].first;
    replica.keys_.push_back(key);
    replica.offsets_.push_back(replica.values_.size());
    while (i < pairs.size() && pairs[i].first == key) {
      replica.values_.push_back(pairs[i].second);
      ++i;
    }
  }
  replica.offsets_.push_back(replica.values_.size());
  if (replica.keys_.empty()) {
    // Keep the sentinel invariant offsets_.size() == keys_.size() + 1.
    replica.offsets_.assign(1, 0);
  }
  replica.keys_.shrink_to_fit();
  replica.offsets_.shrink_to_fit();
  replica.values_.shrink_to_fit();
  return replica;
}

void TableReplica::Compress() {
  if (packed_ != nullptr || keys_.empty()) return;
  packed_ = std::make_unique<CompressedReplica>(
      CompressReplica(keys_, offsets_, values_));
  keys_.clear();
  keys_.shrink_to_fit();
  offsets_.clear();
  offsets_.shrink_to_fit();
  values_.clear();
  values_.shrink_to_fit();
}

double TableReplica::AverageKeyGap() const {
  const size_t n = key_count();
  if (n < 2 || max_key() <= min_key()) return 1.0;
  return static_cast<double>(max_key() - min_key()) / static_cast<double>(n);
}

std::vector<size_t> TableReplica::CostBalancedSplit(size_t begin, size_t end,
                                                    size_t parts) const {
  if (packed_ != nullptr) {
    PARJ_DCHECK(begin <= end && end <= key_count());
    if (parts == 0) parts = 1;
    std::vector<size_t> cuts(parts + 1, end);
    cuts[0] = begin;
    ReplicaCursor rc;
    const CompressedReplica& r = *packed_;
    const uint64_t base = rc.OffsetAt(r, begin);
    const uint64_t total = rc.OffsetAt(r, end) - base;
    for (size_t k = 1; k < parts; ++k) {
      // First key position whose cumulative cost reaches share k/parts —
      // the same lower_bound over the same offset values as the flat
      // branch, so cut positions (and thus morsel counters) match.
      const uint64_t target = base + total * k / parts;
      size_t lo = begin;
      size_t hi = end;
      while (lo < hi) {
        const size_t mid = lo + (hi - lo) / 2;
        if (rc.OffsetAt(r, mid) < target) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      cuts[k] = std::clamp(lo, cuts[k - 1], end);
    }
    return cuts;
  }
  PARJ_DCHECK(begin <= end && end + 1 <= offsets_.size());
  if (parts == 0) parts = 1;
  std::vector<size_t> cuts(parts + 1, end);
  cuts[0] = begin;
  const uint64_t base = offsets_[begin];
  const uint64_t total = offsets_[end] - base;
  for (size_t k = 1; k < parts; ++k) {
    // First key position whose cumulative cost reaches share k/parts.
    const uint64_t target = base + total * k / parts;
    auto it = std::lower_bound(offsets_.begin() + begin, offsets_.begin() + end,
                               target);
    size_t pos = static_cast<size_t>(it - offsets_.begin());
    cuts[k] = std::clamp(pos, cuts[k - 1], end);
  }
  return cuts;
}

size_t TableReplica::FindKey(TermId key) const {
  if (packed_ != nullptr) {
    ReplicaCursor rc;
    const LowerBoundResult lb = LowerBoundKeys(*packed_, key, &rc);
    return lb.found ? lb.pos : SIZE_MAX;
  }
  auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  if (it == keys_.end() || *it != key) return SIZE_MAX;
  return static_cast<size_t>(it - keys_.begin());
}

uint64_t TableReplica::OffsetAt(size_t pos) const {
  if (packed_ == nullptr) return offsets_[pos];
  ReplicaCursor rc;
  return rc.OffsetAt(*packed_, pos);
}

std::span<const TermId> TableReplica::RunInto(
    size_t key_index, std::vector<TermId>* scratch) const {
  if (packed_ == nullptr) return Run(key_index);
  ReplicaCursor rc;
  const std::span<const TermId> run = rc.RunAt(*packed_, key_index);
  scratch->assign(run.begin(), run.end());
  return *scratch;
}

bool TableReplica::RunContains(size_t key_index, TermId value) const {
  if (packed_ == nullptr) {
    const std::span<const TermId> run = Run(key_index);
    return std::binary_search(run.begin(), run.end(), value);
  }
  ReplicaCursor rc;
  return rc.RunContains(*packed_, key_index, value);
}

std::span<const TermId> TableReplica::DecodedKeys(
    std::vector<TermId>* scratch) const {
  if (packed_ == nullptr) return keys_;
  const PackedKeys& pk = packed_->keys;
  scratch->resize(pk.col.size);
  for (size_t b = 0; b < pk.col.block_count(); ++b) {
    DecodeKeyBlock(pk, b, scratch->data() + b * kPackBlock);
  }
  return *scratch;
}

PropertyTable PropertyTable::Build(
    std::vector<std::pair<TermId, TermId>> subject_object_pairs) {
  PropertyTable table;
  std::vector<std::pair<TermId, TermId>> reversed;
  reversed.reserve(subject_object_pairs.size());
  for (const auto& [s, o] : subject_object_pairs) {
    reversed.emplace_back(o, s);
  }
  table.so_ = TableReplica::Build(std::move(subject_object_pairs));
  table.os_ = TableReplica::Build(std::move(reversed));
  return table;
}

}  // namespace parj::storage
