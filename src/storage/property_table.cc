#include "storage/property_table.h"

#include <algorithm>

#include "common/logging.h"

namespace parj::storage {

TableReplica TableReplica::Build(
    std::vector<std::pair<TermId, TermId>> pairs) {
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());

  TableReplica replica;
  replica.values_.reserve(pairs.size());
  size_t i = 0;
  while (i < pairs.size()) {
    TermId key = pairs[i].first;
    replica.keys_.push_back(key);
    replica.offsets_.push_back(replica.values_.size());
    while (i < pairs.size() && pairs[i].first == key) {
      replica.values_.push_back(pairs[i].second);
      ++i;
    }
  }
  replica.offsets_.push_back(replica.values_.size());
  if (replica.keys_.empty()) {
    // Keep the sentinel invariant offsets_.size() == keys_.size() + 1.
    replica.offsets_.assign(1, 0);
  }
  replica.keys_.shrink_to_fit();
  replica.offsets_.shrink_to_fit();
  replica.values_.shrink_to_fit();
  return replica;
}

double TableReplica::AverageKeyGap() const {
  if (keys_.size() < 2 || keys_.back() <= keys_.front()) return 1.0;
  return static_cast<double>(keys_.back() - keys_.front()) /
         static_cast<double>(keys_.size());
}

std::vector<size_t> TableReplica::CostBalancedSplit(size_t begin, size_t end,
                                                    size_t parts) const {
  PARJ_DCHECK(begin <= end && end + 1 <= offsets_.size());
  if (parts == 0) parts = 1;
  std::vector<size_t> cuts(parts + 1, end);
  cuts[0] = begin;
  const uint64_t base = offsets_[begin];
  const uint64_t total = offsets_[end] - base;
  for (size_t k = 1; k < parts; ++k) {
    // First key position whose cumulative cost reaches share k/parts.
    const uint64_t target = base + total * k / parts;
    auto it = std::lower_bound(offsets_.begin() + begin, offsets_.begin() + end,
                               target);
    size_t pos = static_cast<size_t>(it - offsets_.begin());
    cuts[k] = std::clamp(pos, cuts[k - 1], end);
  }
  return cuts;
}

size_t TableReplica::FindKey(TermId key) const {
  auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  if (it == keys_.end() || *it != key) return SIZE_MAX;
  return static_cast<size_t>(it - keys_.begin());
}

PropertyTable PropertyTable::Build(
    std::vector<std::pair<TermId, TermId>> subject_object_pairs) {
  PropertyTable table;
  std::vector<std::pair<TermId, TermId>> reversed;
  reversed.reserve(subject_object_pairs.size());
  for (const auto& [s, o] : subject_object_pairs) {
    reversed.emplace_back(o, s);
  }
  table.so_ = TableReplica::Build(std::move(subject_object_pairs));
  table.os_ = TableReplica::Build(std::move(reversed));
  return table;
}

}  // namespace parj::storage
