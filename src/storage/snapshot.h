#ifndef PARJ_STORAGE_SNAPSHOT_H_
#define PARJ_STORAGE_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "common/status.h"
#include "storage/database.h"

namespace parj::storage {

/// Binary snapshot persistence. The paper's prototype keeps its data in
/// SQLite tables and rebuilds the in-memory structures at start-up; this
/// module provides the equivalent native path: a snapshot stores the
/// dictionary and the encoded triples in a compact binary format, and
/// loading rebuilds the property tables, indexes and statistics (which is
/// fast and keeps the format independent of layout details).
///
/// Format v3 (little-endian; v1 and v2 files remain readable):
///   magic "PARJSNAP"  u32 version=3  u32 flags
///   section { u32 section_id, payload..., u32 crc32c(payload) }:
///     id 1 "dictionary": u32 resource_count, terms...,
///                        u32 predicate_count, terms...
///     id 3 "tables":     u64 triple_count, u32 table_count, then one
///                        packed SO replica per predicate (DESIGN.md §13
///                        block codec: key/length/value columns with
///                        their block directories)
///   trailer: u32 id 0x524C5254 ("TRLR" in a little-endian dump),
///            u64 section_count,
///            u32 crc32c(per-section CRC words), then EOF
/// v2 is identical except the data section is
///     id 2 "triples":    u64 triple_count, { u32 s, u32 p, u32 o }...
/// Terms are { u8 kind, varlen lexical, varlen datatype, varlen lang };
/// strings are u32 length + bytes.
///
/// The v3 tables section is written through the deterministic block
/// encoder whatever the in-memory store mode, so a flat and a compressed
/// store produce byte-identical snapshots (~3x smaller than v2 on typical
/// RDF data). Loading any version rebuilds the property tables, indexes
/// and statistics under the caller's DatabaseOptions — including its
/// compression mode — so the on-disk layout never constrains the
/// in-memory one.
///
/// Every section payload is covered by a CRC-32C record; the reader
/// verifies each section as it streams past and returns
/// StatusCode::kDataLoss naming the failing section and byte offset on
/// any mismatch, truncation inside a verified region, or trailing
/// garbage. A v1 snapshot (no CRCs) still loads, with integrity limited
/// to the structural checks.

/// Current and legacy on-disk format versions.
inline constexpr uint32_t kSnapshotVersion = 3;
inline constexpr uint32_t kSnapshotVersionV2 = 2;
inline constexpr uint32_t kSnapshotVersionLegacy = 1;

/// Options for ReadSnapshot/LoadSnapshot beyond the DatabaseOptions that
/// shape the rebuilt store.
struct SnapshotLoadOptions {
  /// Worker threads for snapshot decode: with > 1 (and a v2 snapshot) the
  /// file is read into memory, a serial structural scan locates section
  /// and term boundaries, and then CRC verification, term decode, and
  /// triple decode run in parallel. <= 1 streams serially. v1 and v3
  /// snapshots always stream serially (v1 has no section structure to
  /// scan; v3's packed blocks decode faster than they scan). The loaded
  /// database is identical either way.
  int threads = 1;
};

/// Per-phase wall-clock breakdown of one snapshot load.
struct SnapshotLoadStats {
  double read_millis = 0.0;    ///< file -> memory (parallel path only)
  double decode_millis = 0.0;  ///< scan + CRC + term/triple decode
  double build_millis = 0.0;   ///< Database::Build on the decoded data
};

/// Summary of a verified snapshot (also returned by VerifySnapshot).
struct SnapshotInfo {
  uint32_t version = 0;
  uint32_t resource_count = 0;
  uint32_t predicate_count = 0;
  uint64_t triple_count = 0;
  /// CRC-verified sections (0 for v1 files).
  uint64_t sections_verified = 0;
  /// Total bytes consumed.
  uint64_t bytes = 0;
};

/// Process-wide snapshot I/O counters (all relaxed atomics), surfaced in
/// `parj_cli serve` metrics output next to the serving registry.
struct SnapshotStats {
  std::atomic<uint64_t> snapshots_written{0};
  std::atomic<uint64_t> snapshots_loaded{0};
  std::atomic<uint64_t> crc_sections_verified{0};
  std::atomic<uint64_t> crc_mismatches{0};
};
SnapshotStats& GlobalSnapshotStats();

/// Writes `db`'s dictionary and triples to `out`. `version` selects the
/// on-disk format — kSnapshotVersion unless writing a legacy file for
/// compatibility testing.
Status WriteSnapshot(const Database& db, std::ostream& out,
                     uint32_t version = kSnapshotVersion);

/// Convenience file wrapper. Writes to `<path>.tmp` and renames into
/// place only after a fully successful write + flush, so a crash or
/// failure mid-write never leaves a truncated snapshot at `path`.
Status SaveSnapshot(const Database& db, const std::string& path);

/// Reads a snapshot and rebuilds a Database with `options`. CRC or
/// structural failures return kDataLoss/kParseError/kIoError — never a
/// partially-populated database. `load` selects serial streaming vs the
/// buffered parallel decode; `stats` (optional) receives phase timings.
Result<Database> ReadSnapshot(std::istream& in,
                              const DatabaseOptions& options = {},
                              const SnapshotLoadOptions& load = {},
                              SnapshotLoadStats* stats = nullptr);

/// Convenience file wrapper.
Result<Database> LoadSnapshot(const std::string& path,
                              const DatabaseOptions& options = {},
                              const SnapshotLoadOptions& load = {},
                              SnapshotLoadStats* stats = nullptr);

/// Walks and CRC-verifies a snapshot without building the database
/// (terms and triples are decoded and discarded). Cheap enough to run
/// against every snapshot an operator is about to trust.
Result<SnapshotInfo> VerifySnapshot(std::istream& in);

/// Convenience file wrapper (the CLI's `verify-snapshot` command).
Result<SnapshotInfo> VerifySnapshotFile(const std::string& path);

}  // namespace parj::storage

#endif  // PARJ_STORAGE_SNAPSHOT_H_
