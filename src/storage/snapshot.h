#ifndef PARJ_STORAGE_SNAPSHOT_H_
#define PARJ_STORAGE_SNAPSHOT_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "storage/database.h"

namespace parj::storage {

/// Binary snapshot persistence. The paper's prototype keeps its data in
/// SQLite tables and rebuilds the in-memory structures at start-up; this
/// module provides the equivalent native path: a snapshot stores the
/// dictionary and the encoded triples in a compact binary format, and
/// loading rebuilds the property tables, indexes and statistics (which is
/// fast and keeps the format independent of layout details).
///
/// Format (little-endian):
///   magic "PARJSNAP"  u32 version  u32 flags
///   u32 resource_count  { u8 kind, varlen lexical, varlen datatype,
///                         varlen lang } per resource (in ID order)
///   u32 predicate_count { ... } per predicate
///   u64 triple_count    { u32 s, u32 p, u32 o } per triple
/// Strings are u32 length + bytes.

/// Writes `db`'s dictionary and triples to `out`.
Status WriteSnapshot(const Database& db, std::ostream& out);

/// Convenience file wrapper.
Status SaveSnapshot(const Database& db, const std::string& path);

/// Reads a snapshot and rebuilds a Database with `options`.
Result<Database> ReadSnapshot(std::istream& in,
                              const DatabaseOptions& options = {});

/// Convenience file wrapper.
Result<Database> LoadSnapshot(const std::string& path,
                              const DatabaseOptions& options = {});

}  // namespace parj::storage

#endif  // PARJ_STORAGE_SNAPSHOT_H_
