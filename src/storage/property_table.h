#ifndef PARJ_STORAGE_PROPERTY_TABLE_H_
#define PARJ_STORAGE_PROPERTY_TABLE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/types.h"
#include "storage/compressed.h"

namespace parj::storage {

/// Which replica of a property's two-column table (paper §3): S-O is sorted
/// by subject then object; O-S by object then subject.
enum class ReplicaKind : uint8_t { kSO = 0, kOS = 1 };

inline const char* ReplicaKindName(ReplicaKind kind) {
  return kind == ReplicaKind::kSO ? "S-O" : "O-S";
}

/// One sort-order replica of a property table, stored in the paper's
/// compact two-level layout:
///
///   keys[]    sorted array of DISTINCT key values (subjects for S-O,
///             objects for O-S) — the "first array" of Figure 1;
///   offsets[] one entry per key plus a sentinel: offsets[i]..offsets[i+1]
///             delimit key i's partner run inside values[] — the paper's
///             "single pointer to the start of this memory area ... keep
///             offsets in each position of the second array";
///   values[]  all partner runs concatenated in one contiguous allocation,
///             each run sorted ascending.
///
/// The layout stores each distinct key exactly once (the paper's simple
/// column-specific compression) and makes both the key array and each run
/// sequentially scannable, which the adaptive join exploits.
///
/// A replica is either FLAT (the three raw arrays above) or COMPRESSED
/// (Compress() re-encodes them as blocked FOR/delta bit-packed columns —
/// see storage/compressed.h — and frees the raw arrays). The direct-span
/// accessors (keys()/values()/offsets()/Run()/KeyAt()) are flat-only;
/// every position/cost/lookup accessor below is mode-aware and returns
/// identical answers in both modes, which is what keeps query results and
/// SearchCounters byte-identical across store modes.
class TableReplica {
 public:
  TableReplica() = default;

  /// Builds a replica from unsorted (key, value) pairs. Duplicate pairs are
  /// collapsed (RDF graphs are triple sets).
  static TableReplica Build(std::vector<std::pair<TermId, TermId>> pairs);

  TableReplica(TableReplica&&) = default;
  TableReplica& operator=(TableReplica&&) = default;
  TableReplica(const TableReplica&) = delete;
  TableReplica& operator=(const TableReplica&) = delete;

  /// Re-encodes the three arrays as bit-packed blocks and frees the flat
  /// storage. No-op on an empty or already-compressed replica.
  void Compress();

  bool is_compressed() const { return packed_ != nullptr; }

  /// The packed representation (null while flat).
  const CompressedReplica* packed() const { return packed_.get(); }

  /// Number of distinct keys.
  size_t key_count() const {
    return packed_ != nullptr ? packed_->key_count() : keys_.size();
  }

  /// Number of (key, value) pairs, i.e. distinct triples in this property.
  size_t pair_count() const {
    return packed_ != nullptr ? packed_->pair_count() : values_.size();
  }

  bool empty() const { return key_count() == 0; }

  /// The sorted distinct-key array (flat replicas only).
  std::span<const TermId> keys() const {
    PARJ_DCHECK(packed_ == nullptr);
    return keys_;
  }

  /// The concatenated value runs (flat replicas only).
  std::span<const TermId> values() const {
    PARJ_DCHECK(packed_ == nullptr);
    return values_;
  }

  /// Run offsets (size key_count()+1; flat replicas only).
  std::span<const uint64_t> offsets() const {
    PARJ_DCHECK(packed_ == nullptr);
    return offsets_;
  }

  /// The sorted partner run of the key at `key_index` (flat replicas
  /// only; compressed callers use RunInto / ReplicaCursor::RunAt).
  std::span<const TermId> Run(size_t key_index) const {
    PARJ_DCHECK(packed_ == nullptr);
    return {values_.data() + offsets_[key_index],
            static_cast<size_t>(offsets_[key_index + 1] -
                                offsets_[key_index])};
  }

  /// Length of the run at `key_index` (both modes; compressed reads one
  /// packed length field, no block decode).
  size_t RunLength(size_t key_index) const {
    if (packed_ != nullptr) {
      return static_cast<size_t>(LengthAt(packed_->lens, key_index));
    }
    return static_cast<size_t>(offsets_[key_index + 1] - offsets_[key_index]);
  }

  TermId KeyAt(size_t key_index) const {
    PARJ_DCHECK(packed_ == nullptr);
    return keys_[key_index];
  }

  TermId min_key() const {
    if (packed_ != nullptr) return packed_->min_key;
    return keys_.empty() ? 0 : keys_.front();
  }
  TermId max_key() const {
    if (packed_ != nullptr) return packed_->max_key;
    return keys_.empty() ? 0 : keys_.back();
  }

  /// Average arithmetic distance between consecutive keys under the
  /// paper's uniform-distribution assumption:
  /// (keys[size-1] - keys[0]) / size. Returns 1.0 for degenerate arrays.
  double AverageKeyGap() const;

  /// Average run length (pairs / keys); 0 for an empty replica.
  double AverageRunLength() const {
    return empty() ? 0.0
                   : static_cast<double>(pair_count()) /
                         static_cast<double>(key_count());
  }

  /// Exact position of `key` via std::lower_bound semantics, or SIZE_MAX.
  /// Both modes (compressed: two-level block search). Reference
  /// implementation used by tests and cold paths; the join path uses the
  /// search kernels in join/search.h.
  size_t FindKey(TermId key) const;

  /// offsets[pos] in either mode (compressed decodes one length block).
  uint64_t OffsetAt(size_t pos) const;

  /// Cost of processing the key range [begin, end): its cumulative run
  /// length (= number of triples). O(1) flat, one block decode per end
  /// compressed.
  uint64_t RangeCost(size_t begin, size_t end) const {
    if (packed_ != nullptr) return OffsetAt(end) - OffsetAt(begin);
    return offsets_[end] - offsets_[begin];
  }

  /// Cuts the key range [begin, end) into `parts` contiguous sub-ranges of
  /// approximately equal RangeCost (not equal key count), via binary search
  /// on the cumulative offsets. Returns parts+1 monotone cut positions with
  /// cuts.front() == begin and cuts.back() == end. A single key whose run
  /// exceeds the per-part share gets its own (oversized) sub-range and the
  /// neighbouring sub-ranges may be empty — cost balance is as good as the
  /// key granularity allows. Cut positions are identical in both modes
  /// (morsel boundaries, and therefore per-worker counters, must not
  /// depend on the store mode).
  std::vector<size_t> CostBalancedSplit(size_t begin, size_t end,
                                        size_t parts) const;

  /// The run of `key_index` in either mode: flat replicas return the run
  /// span zero-copy; compressed replicas decode into `*scratch`.
  std::span<const TermId> RunInto(size_t key_index,
                                  std::vector<TermId>* scratch) const;

  /// Membership of `value` in the (sorted) run of `key_index`; both modes.
  bool RunContains(size_t key_index, TermId value) const;

  /// The full key array in either mode: flat replicas return it zero-copy;
  /// compressed replicas decode into `*scratch`.
  std::span<const TermId> DecodedKeys(std::vector<TermId>* scratch) const;

  /// Calls fn(key_index, key, run) for every key in order; both modes.
  template <typename Fn>
  void ForEachRun(Fn&& fn) const {
    if (packed_ == nullptr) {
      for (size_t i = 0; i < keys_.size(); ++i) fn(i, keys_[i], Run(i));
      return;
    }
    ReplicaCursor rc;
    const CompressedReplica& r = *packed_;
    const size_t n = r.key_count();
    for (size_t i = 0; i < n; ++i) {
      fn(i, rc.KeyAt(r, i), rc.RunAt(r, i));
    }
  }

  /// Bytes of heap memory USED by the replica's arrays (size-based; the
  /// serve-time `store_bytes` gauge). See AllocatedBytes() for
  /// capacity-based accounting.
  size_t MemoryUsage() const {
    if (packed_ != nullptr) return packed_->HeapBytes();
    return keys_.size() * sizeof(TermId) +
           offsets_.size() * sizeof(uint64_t) +
           values_.size() * sizeof(TermId);
  }

  /// Bytes of heap memory RESERVED by the replica's arrays.
  size_t AllocatedBytes() const {
    if (packed_ != nullptr) return packed_->AllocatedBytes();
    return keys_.capacity() * sizeof(TermId) +
           offsets_.capacity() * sizeof(uint64_t) +
           values_.capacity() * sizeof(TermId);
  }

  /// Bytes the flat three-array layout takes for this content, whatever
  /// the current mode (the numerator of the compression ratio).
  size_t RawBytes() const {
    return key_count() * sizeof(TermId) +
           (key_count() + 1) * sizeof(uint64_t) +
           pair_count() * sizeof(TermId);
  }

 private:
  std::vector<TermId> keys_;
  std::vector<uint64_t> offsets_;
  std::vector<TermId> values_;
  std::unique_ptr<CompressedReplica> packed_;
};

/// Both replicas of one property's two-column table plus its triple count.
class PropertyTable {
 public:
  PropertyTable() = default;

  /// Builds both replicas from this property's (subject, object) pairs.
  static PropertyTable Build(
      std::vector<std::pair<TermId, TermId>> subject_object_pairs);

  PropertyTable(PropertyTable&&) = default;
  PropertyTable& operator=(PropertyTable&&) = default;
  PropertyTable(const PropertyTable&) = delete;
  PropertyTable& operator=(const PropertyTable&) = delete;

  const TableReplica& so() const { return so_; }
  const TableReplica& os() const { return os_; }

  const TableReplica& replica(ReplicaKind kind) const {
    return kind == ReplicaKind::kSO ? so_ : os_;
  }

  /// Compresses both replicas (see TableReplica::Compress).
  void Compress() {
    so_.Compress();
    os_.Compress();
  }

  bool is_compressed() const { return so_.is_compressed(); }

  /// Number of distinct triples with this predicate.
  uint64_t triple_count() const { return so_.pair_count(); }

  size_t distinct_subjects() const { return so_.key_count(); }
  size_t distinct_objects() const { return os_.key_count(); }

  size_t MemoryUsage() const {
    return so_.MemoryUsage() + os_.MemoryUsage();
  }

  size_t AllocatedBytes() const {
    return so_.AllocatedBytes() + os_.AllocatedBytes();
  }

  size_t RawBytes() const { return so_.RawBytes() + os_.RawBytes(); }

 private:
  TableReplica so_;
  TableReplica os_;
};

}  // namespace parj::storage

#endif  // PARJ_STORAGE_PROPERTY_TABLE_H_
