#ifndef PARJ_STORAGE_PROPERTY_TABLE_H_
#define PARJ_STORAGE_PROPERTY_TABLE_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/types.h"

namespace parj::storage {

/// Which replica of a property's two-column table (paper §3): S-O is sorted
/// by subject then object; O-S by object then subject.
enum class ReplicaKind : uint8_t { kSO = 0, kOS = 1 };

inline const char* ReplicaKindName(ReplicaKind kind) {
  return kind == ReplicaKind::kSO ? "S-O" : "O-S";
}

/// One sort-order replica of a property table, stored in the paper's
/// compact two-level layout:
///
///   keys[]    sorted array of DISTINCT key values (subjects for S-O,
///             objects for O-S) — the "first array" of Figure 1;
///   offsets[] one entry per key plus a sentinel: offsets[i]..offsets[i+1]
///             delimit key i's partner run inside values[] — the paper's
///             "single pointer to the start of this memory area ... keep
///             offsets in each position of the second array";
///   values[]  all partner runs concatenated in one contiguous allocation,
///             each run sorted ascending.
///
/// The layout stores each distinct key exactly once (the paper's simple
/// column-specific compression) and makes both the key array and each run
/// sequentially scannable, which the adaptive join exploits.
class TableReplica {
 public:
  TableReplica() = default;

  /// Builds a replica from unsorted (key, value) pairs. Duplicate pairs are
  /// collapsed (RDF graphs are triple sets).
  static TableReplica Build(std::vector<std::pair<TermId, TermId>> pairs);

  TableReplica(TableReplica&&) = default;
  TableReplica& operator=(TableReplica&&) = default;
  TableReplica(const TableReplica&) = delete;
  TableReplica& operator=(const TableReplica&) = delete;

  /// Number of distinct keys.
  size_t key_count() const { return keys_.size(); }

  /// Number of (key, value) pairs, i.e. distinct triples in this property.
  size_t pair_count() const { return values_.size(); }

  bool empty() const { return keys_.empty(); }

  /// The sorted distinct-key array.
  std::span<const TermId> keys() const { return keys_; }

  /// The concatenated value runs.
  std::span<const TermId> values() const { return values_; }

  /// Run offsets (size key_count()+1).
  std::span<const uint64_t> offsets() const { return offsets_; }

  /// The sorted partner run of the key at `key_index`.
  std::span<const TermId> Run(size_t key_index) const {
    return {values_.data() + offsets_[key_index],
            static_cast<size_t>(offsets_[key_index + 1] -
                                offsets_[key_index])};
  }

  /// Length of the run at `key_index`.
  size_t RunLength(size_t key_index) const {
    return static_cast<size_t>(offsets_[key_index + 1] - offsets_[key_index]);
  }

  TermId KeyAt(size_t key_index) const { return keys_[key_index]; }

  TermId min_key() const { return keys_.empty() ? 0 : keys_.front(); }
  TermId max_key() const { return keys_.empty() ? 0 : keys_.back(); }

  /// Average arithmetic distance between consecutive keys under the
  /// paper's uniform-distribution assumption:
  /// (keys[size-1] - keys[0]) / size. Returns 1.0 for degenerate arrays.
  double AverageKeyGap() const;

  /// Average run length (pairs / keys); 0 for an empty replica.
  double AverageRunLength() const {
    return keys_.empty()
               ? 0.0
               : static_cast<double>(values_.size()) /
                     static_cast<double>(keys_.size());
  }

  /// Exact position of `key` in keys() via std::lower_bound, or SIZE_MAX.
  /// Reference implementation used by tests; the join path uses the search
  /// kernels in join/search.h.
  size_t FindKey(TermId key) const;

  /// Cost of processing the key range [begin, end): its cumulative run
  /// length (= number of triples), read off the CSR offsets in O(1).
  uint64_t RangeCost(size_t begin, size_t end) const {
    return offsets_[end] - offsets_[begin];
  }

  /// Cuts the key range [begin, end) into `parts` contiguous sub-ranges of
  /// approximately equal RangeCost (not equal key count), via binary search
  /// on the cumulative offsets. Returns parts+1 monotone cut positions with
  /// cuts.front() == begin and cuts.back() == end. A single key whose run
  /// exceeds the per-part share gets its own (oversized) sub-range and the
  /// neighbouring sub-ranges may be empty — cost balance is as good as the
  /// key granularity allows.
  std::vector<size_t> CostBalancedSplit(size_t begin, size_t end,
                                        size_t parts) const;

  /// Bytes of heap memory held by the three arrays.
  size_t MemoryUsage() const {
    return keys_.capacity() * sizeof(TermId) +
           offsets_.capacity() * sizeof(uint64_t) +
           values_.capacity() * sizeof(TermId);
  }

 private:
  std::vector<TermId> keys_;
  std::vector<uint64_t> offsets_;
  std::vector<TermId> values_;
};

/// Both replicas of one property's two-column table plus its triple count.
class PropertyTable {
 public:
  PropertyTable() = default;

  /// Builds both replicas from this property's (subject, object) pairs.
  static PropertyTable Build(
      std::vector<std::pair<TermId, TermId>> subject_object_pairs);

  PropertyTable(PropertyTable&&) = default;
  PropertyTable& operator=(PropertyTable&&) = default;
  PropertyTable(const PropertyTable&) = delete;
  PropertyTable& operator=(const PropertyTable&) = delete;

  const TableReplica& so() const { return so_; }
  const TableReplica& os() const { return os_; }

  const TableReplica& replica(ReplicaKind kind) const {
    return kind == ReplicaKind::kSO ? so_ : os_;
  }

  /// Number of distinct triples with this predicate.
  uint64_t triple_count() const { return so_.pair_count(); }

  size_t distinct_subjects() const { return so_.key_count(); }
  size_t distinct_objects() const { return os_.key_count(); }

  size_t MemoryUsage() const {
    return so_.MemoryUsage() + os_.MemoryUsage();
  }

 private:
  TableReplica so_;
  TableReplica os_;
};

}  // namespace parj::storage

#endif  // PARJ_STORAGE_PROPERTY_TABLE_H_
