#include "storage/histogram.h"

#include <algorithm>

namespace parj::storage {

EquiDepthHistogram EquiDepthHistogram::Build(std::span<const TermId> keys,
                                             std::span<const uint64_t> offsets,
                                             size_t bucket_count) {
  EquiDepthHistogram h;
  h.total_keys_ = keys.size();
  h.total_pairs_ = keys.empty() ? 0 : offsets[keys.size()];
  if (keys.empty()) return h;

  bucket_count = std::max<size_t>(1, std::min(bucket_count, keys.size()));
  const size_t depth = (keys.size() + bucket_count - 1) / bucket_count;

  h.boundaries_.push_back(keys.front());
  h.cum_keys_.push_back(0);
  h.cum_pairs_.push_back(0);
  for (size_t start = 0; start < keys.size(); start += depth) {
    size_t end = std::min(start + depth, keys.size());  // exclusive
    h.boundaries_.push_back(keys[end - 1]);
    h.cum_keys_.push_back(end);
    h.cum_pairs_.push_back(offsets[end]);
  }
  return h;
}

double EquiDepthHistogram::EstimateKeysLessEqual(TermId x) const {
  if (boundaries_.empty()) return 0.0;
  if (x < boundaries_.front()) return 0.0;
  if (x >= boundaries_.back()) return static_cast<double>(total_keys_);
  // Find the bucket whose upper boundary is >= x.
  auto it = std::lower_bound(boundaries_.begin() + 1, boundaries_.end(), x);
  size_t bucket = static_cast<size_t>(it - boundaries_.begin()) - 1;
  TermId lo = boundaries_[bucket];
  TermId hi = boundaries_[bucket + 1];
  double frac = hi > lo ? static_cast<double>(x - lo) /
                              static_cast<double>(hi - lo)
                        : 1.0;
  double keys_in_bucket =
      static_cast<double>(cum_keys_[bucket + 1] - cum_keys_[bucket]);
  return static_cast<double>(cum_keys_[bucket]) + frac * keys_in_bucket;
}

double EquiDepthHistogram::EstimatePairsLessEqual(TermId x) const {
  if (boundaries_.empty()) return 0.0;
  if (x < boundaries_.front()) return 0.0;
  if (x >= boundaries_.back()) return static_cast<double>(total_pairs_);
  auto it = std::lower_bound(boundaries_.begin() + 1, boundaries_.end(), x);
  size_t bucket = static_cast<size_t>(it - boundaries_.begin()) - 1;
  TermId lo = boundaries_[bucket];
  TermId hi = boundaries_[bucket + 1];
  double frac = hi > lo ? static_cast<double>(x - lo) /
                              static_cast<double>(hi - lo)
                        : 1.0;
  double pairs_in_bucket =
      static_cast<double>(cum_pairs_[bucket + 1] - cum_pairs_[bucket]);
  return static_cast<double>(cum_pairs_[bucket]) + frac * pairs_in_bucket;
}

double EquiDepthHistogram::EstimateKeysInRange(TermId lo, TermId hi) const {
  if (hi < lo) return 0.0;
  double upper = EstimateKeysLessEqual(hi);
  double lower = lo == 0 ? 0.0 : EstimateKeysLessEqual(lo - 1);
  return std::max(0.0, upper - lower);
}

double EquiDepthHistogram::EstimatePairsInRange(TermId lo, TermId hi) const {
  if (hi < lo) return 0.0;
  double upper = EstimatePairsLessEqual(hi);
  double lower = lo == 0 ? 0.0 : EstimatePairsLessEqual(lo - 1);
  return std::max(0.0, upper - lower);
}

double EquiDepthHistogram::EstimateRunLength(TermId x) const {
  if (total_keys_ == 0) return 0.0;
  double global =
      static_cast<double>(total_pairs_) / static_cast<double>(total_keys_);
  if (boundaries_.empty() || x < boundaries_.front() ||
      x > boundaries_.back()) {
    return global;
  }
  auto it = std::lower_bound(boundaries_.begin() + 1, boundaries_.end(), x);
  size_t bucket = static_cast<size_t>(it - boundaries_.begin()) - 1;
  uint64_t keys = cum_keys_[bucket + 1] - cum_keys_[bucket];
  uint64_t pairs = cum_pairs_[bucket + 1] - cum_pairs_[bucket];
  return keys == 0 ? global
                   : static_cast<double>(pairs) / static_cast<double>(keys);
}

double EquiDepthHistogram::OverlapKeyFraction(TermId lo, TermId hi) const {
  if (total_keys_ == 0) return 0.0;
  return EstimateKeysInRange(lo, hi) / static_cast<double>(total_keys_);
}

}  // namespace parj::storage
