#include "storage/char_sets.h"

#include <algorithm>
#include <map>

#include "server/thread_pool.h"
#include "storage/database.h"

namespace parj::storage {

CharacteristicSets CharacteristicSets::Build(const Database& db,
                                             size_t max_sets,
                                             server::ThreadPool* pool) {
  // Collect (subject, predicate, run-length) over all properties, grouped
  // by subject via sort. Each property's entry count is its SO key count,
  // so the destination is exactly sized up front and properties fill
  // disjoint slices — parallelizable without changing the layout the
  // serial path produces.
  struct Entry {
    TermId subject;
    PredicateId predicate;
    uint32_t count;
  };
  const size_t predicate_count = db.predicate_count();
  std::vector<size_t> offsets(predicate_count + 1, 0);
  for (PredicateId pid = 1; pid <= predicate_count; ++pid) {
    offsets[pid] = offsets[pid - 1] + db.entry(pid).table.so().key_count();
  }
  std::vector<Entry> entries(offsets[predicate_count]);
  const auto fill_property = [&](size_t p) {
    const PredicateId pid = static_cast<PredicateId>(p + 1);
    const TableReplica& so = db.entry(pid).table.so();
    Entry* out = entries.data() + offsets[p];
    for (size_t k = 0; k < so.key_count(); ++k) {
      out[k] = Entry{so.KeyAt(k), pid, static_cast<uint32_t>(so.RunLength(k))};
    }
  };
  if (pool != nullptr && predicate_count > 1) {
    pool->ParallelFor(predicate_count, fill_property);
  } else {
    for (size_t p = 0; p < predicate_count; ++p) fill_property(p);
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.subject != b.subject) return a.subject < b.subject;
    return a.predicate < b.predicate;
  });

  // Group by subject, then accumulate per characteristic set. The map key
  // is the sorted predicate list.
  std::map<std::vector<PredicateId>, SetStat> accumulator;
  size_t i = 0;
  CharacteristicSets cs;
  while (i < entries.size()) {
    const TermId subject = entries[i].subject;
    std::vector<PredicateId> predicates;
    std::vector<uint64_t> counts;
    while (i < entries.size() && entries[i].subject == subject) {
      predicates.push_back(entries[i].predicate);
      counts.push_back(entries[i].count);
      ++i;
    }
    ++cs.subject_count_;
    SetStat& stat = accumulator[predicates];
    if (stat.predicates.empty()) {
      stat.predicates = predicates;
      stat.triple_counts.assign(predicates.size(), 0);
    }
    ++stat.subjects;
    for (size_t c = 0; c < counts.size(); ++c) {
      stat.triple_counts[c] += counts[c];
    }
  }

  cs.sets_.reserve(accumulator.size());
  for (auto& [key, stat] : accumulator) {
    cs.sets_.push_back(std::move(stat));
  }
  if (cs.sets_.size() > max_sets) {
    // Keep the most populous sets; dropped sets make estimates
    // under-count, which the flag documents.
    std::nth_element(cs.sets_.begin(), cs.sets_.begin() + max_sets,
                     cs.sets_.end(),
                     [](const SetStat& a, const SetStat& b) {
                       return a.subjects > b.subjects;
                     });
    cs.sets_.resize(max_sets);
    cs.truncated_ = true;
  }
  return cs;
}

bool CharacteristicSets::ContainsAll(
    const std::vector<PredicateId>& superset,
    const std::vector<PredicateId>& subset) {
  return std::includes(superset.begin(), superset.end(), subset.begin(),
                       subset.end());
}

double CharacteristicSets::EstimateDistinctSubjects(
    std::vector<PredicateId> predicates) const {
  std::sort(predicates.begin(), predicates.end());
  predicates.erase(std::unique(predicates.begin(), predicates.end()),
                   predicates.end());
  double subjects = 0.0;
  for (const SetStat& set : sets_) {
    if (ContainsAll(set.predicates, predicates)) {
      subjects += static_cast<double>(set.subjects);
    }
  }
  return subjects;
}

double CharacteristicSets::EstimateStarCardinality(
    std::vector<PredicateId> predicates) const {
  std::sort(predicates.begin(), predicates.end());
  predicates.erase(std::unique(predicates.begin(), predicates.end()),
                   predicates.end());
  double rows = 0.0;
  for (const SetStat& set : sets_) {
    if (!ContainsAll(set.predicates, predicates)) continue;
    double per_subject = 1.0;
    for (PredicateId pred : predicates) {
      const size_t pos = static_cast<size_t>(
          std::lower_bound(set.predicates.begin(), set.predicates.end(),
                           pred) -
          set.predicates.begin());
      per_subject *= static_cast<double>(set.triple_counts[pos]) /
                     static_cast<double>(set.subjects);
    }
    rows += per_subject * static_cast<double>(set.subjects);
  }
  return rows;
}

}  // namespace parj::storage
