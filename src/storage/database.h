#ifndef PARJ_STORAGE_DATABASE_H_
#define PARJ_STORAGE_DATABASE_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "dict/dictionary.h"
#include "index/id_position_index.h"
#include "join/calibration.h"
#include "join/search.h"
#include "storage/char_sets.h"
#include "storage/histogram.h"
#include "storage/property_table.h"

namespace parj::server {
class ThreadPool;
}  // namespace parj::server

namespace parj::storage {

/// Which column of a property a value comes from.
enum class Role : uint8_t { kSubject = 0, kObject = 1 };

inline const char* RoleName(Role role) {
  return role == Role::kSubject ? "subject" : "object";
}

/// The replica whose key column is `role`.
inline ReplicaKind ReplicaForKeyRole(Role role) {
  return role == Role::kSubject ? ReplicaKind::kSO : ReplicaKind::kOS;
}

/// Precomputed statistics for the join of two property columns
/// (paper §4.3's "precomputed cardinalities between pairs of properties
/// used as a corrective step"). For columns A = (p1, role1) and
/// B = (p2, role2):
///   intersection  |distinct(A) ∩ distinct(B)|
///   pairs_left    Σ_{k ∈ ∩} run-length of k in p1's role1-keyed replica
///   pairs_right   Σ_{k ∈ ∩} run-length of k in p2's role2-keyed replica
/// The exact cardinality of the two-pattern join A ⋈ B is then
/// Σ run_A(k)·run_B(k); intersection and the one-sided sums are enough for
/// the optimizer's per-step estimates and are much cheaper to store.
struct PairJoinStat {
  uint64_t intersection = 0;
  uint64_t pairs_left = 0;
  uint64_t pairs_right = 0;
};

/// Derived per-replica metadata: histogram, optional ID-to-Position index,
/// and the adaptive-search thresholds (window sizes in positions and their
/// value-distance conversions).
struct ReplicaMeta {
  EquiDepthHistogram histogram;
  index::IdPositionIndex id_index;
  bool has_index = false;

  /// Calibrated (or default) window sizes, in key-array positions.
  double window_binary = 200.0;
  double window_index = 20.0;
  /// The windows converted to value distances (Algorithm 1 operands).
  int64_t threshold_binary = 200;
  int64_t threshold_index = 20;

  /// The threshold for a strategy's fallback method.
  int64_t ThresholdFor(join::SearchStrategy strategy) const {
    return (strategy == join::SearchStrategy::kIndex ||
            strategy == join::SearchStrategy::kAdaptiveIndex)
               ? threshold_index
               : threshold_binary;
  }
};

/// One property's storage plus metadata for both replicas.
struct PropertyEntry {
  PropertyTable table;
  ReplicaMeta so_meta;
  ReplicaMeta os_meta;

  const ReplicaMeta& meta(ReplicaKind kind) const {
    return kind == ReplicaKind::kSO ? so_meta : os_meta;
  }
  ReplicaMeta& meta(ReplicaKind kind) {
    return kind == ReplicaKind::kSO ? so_meta : os_meta;
  }
};

/// Storage representation for the replicas' key/offset/value arrays.
enum class Compression : uint8_t {
  kNone = 0,     ///< flat sorted arrays (the paper's layout)
  kBlocked = 1,  ///< 128-id FOR/delta bit-packed blocks (DESIGN.md §13)
};

inline const char* CompressionName(Compression c) {
  return c == Compression::kBlocked ? "blocked" : "none";
}

/// Build-time options.
struct DatabaseOptions {
  /// Equi-depth histogram buckets per replica.
  size_t histogram_buckets = 64;
  /// Build ID-to-Position indexes for every replica (paper §4.2; they are
  /// auxiliary — the kBinary / kAdaptiveBinary strategies ignore them).
  bool build_id_position_indexes = true;
  /// Precompute PairJoinStats for all property-column pairs. Skipped when
  /// the dataset has more than `pairwise_max_columns` property columns
  /// (2 per property).
  bool precompute_pairwise_stats = true;
  size_t pairwise_max_columns = 256;
  /// Default windows (positions) used before/without calibration. The
  /// paper's calibrated values on its test machine were ~200 (binary) and
  /// ~20 (index).
  double default_binary_window = 200.0;
  double default_index_window = 20.0;
  /// Build characteristic-set statistics for star-query cardinality
  /// estimation (paper §4.3's planned extension; off by default).
  bool build_characteristic_sets = false;
  size_t characteristic_max_sets = 65536;
  /// Worker threads for store construction: the grouping scatter, the
  /// per-predicate table + metadata builds, and the pairwise-stat /
  /// characteristic-set loops. <=1 builds serially (0 is NOT hardware
  /// concurrency here, to keep the default deterministic-cheap); the
  /// built store is identical whatever the value (DESIGN.md §10).
  int build_threads = 1;
  /// Replica storage representation. kBlocked re-encodes every replica as
  /// bit-packed blocks after all derived metadata is built; query results
  /// and SearchCounters are identical to kNone.
  Compression compression = Compression::kNone;
};

/// Wall-clock breakdown of one Database::Build (+ Calibrate), filled when
/// the caller passes a timings sink. The loader surfaces these as the
/// "build" and "index" phases of its per-phase load report.
struct BuildTimings {
  double group_millis = 0.0;       ///< validate + count + scatter by predicate
  double tables_millis = 0.0;      ///< PropertyTable::Build over predicates
  double meta_millis = 0.0;        ///< histograms, ID indexes, thresholds
  double pair_stats_millis = 0.0;  ///< pairwise join statistics
  double char_sets_millis = 0.0;   ///< characteristic sets (when enabled)
};

/// An immutable-after-build, in-memory RDF store: dictionary + vertically
/// partitioned, doubly-replicated property tables + derived metadata
/// (paper §3). All query-time state lives in the executor, so a Database
/// can be shared read-only by any number of threads.
class Database {
 public:
  Database() = default;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Builds from encoded triples. Duplicate triples are collapsed.
  /// Predicate IDs in `triples` must be dense in [1, dict.predicate_count()].
  /// With options.build_threads > 1 the grouping scatter and per-predicate
  /// builds run on a private thread pool; the result is bit-identical to a
  /// serial build. `timings` (optional) receives the phase breakdown.
  static Result<Database> Build(dict::Dictionary dict,
                                std::vector<EncodedTriple> triples,
                                const DatabaseOptions& options = {},
                                BuildTimings* timings = nullptr);

  /// Runs Algorithm 2 on every replica large enough to measure, replacing
  /// the default windows/thresholds. Call once after load, before queries
  /// (paper: "this process takes place after data loading, prior to query
  /// execution").
  void Calibrate(const join::CalibrationOptions& options = {});

  const dict::Dictionary& dictionary() const { return dict_; }

  size_t predicate_count() const { return entries_.size(); }

  /// Entry for predicate `pid` (1-based). Asserts on range.
  const PropertyEntry& entry(PredicateId pid) const;

  /// Entry or nullptr when `pid` is invalid/out of range.
  const PropertyEntry* FindEntry(PredicateId pid) const;

  uint64_t total_triples() const { return total_triples_; }

  /// Universe for ID-to-Position indexes: the largest resource ID.
  TermId max_resource_id() const { return dict_.resource_count(); }

  /// Pairwise stat for columns (p1, role1) and (p2, role2), oriented so
  /// that `pairs_left` refers to (p1, role1). Empty when not precomputed.
  std::optional<PairJoinStat> GetPairStat(PredicateId p1, Role role1,
                                          PredicateId p2, Role role2) const;

  bool has_pair_stats() const { return has_pair_stats_; }

  /// Characteristic-set statistics, or nullptr when not built.
  const CharacteristicSets* characteristic_sets() const {
    return char_sets_.has_value() ? &*char_sets_ : nullptr;
  }

  /// Heap bytes of tables + metadata, excluding the dictionary (the paper
  /// quotes storage "excluding dictionary" separately). Counts live bytes
  /// (vector sizes / packed payloads), not reserve slack.
  size_t TableMemoryUsage() const;

  /// Like TableMemoryUsage() but counting allocated capacity, so the gap
  /// between the two gauges is exactly the allocator slack.
  size_t TableAllocatedUsage() const;

  /// Bytes the replicas' flat arrays would occupy uncompressed — the
  /// denominator of the compression ratio. Excludes indexes/metadata.
  size_t TableRawBytes() const;

  /// Storage representation the store was built with.
  Compression compression() const { return options_.compression; }

  const DatabaseOptions& options() const { return options_; }

  /// Heap bytes of the dictionary.
  size_t DictionaryMemoryUsage() const { return dict_.MemoryUsage(); }

 private:
  static uint64_t PairKey(PredicateId p1, Role role1, PredicateId p2,
                          Role role2);
  void ComputePairStats(size_t max_columns, server::ThreadPool* pool);

  dict::Dictionary dict_;
  std::vector<PropertyEntry> entries_;  // index = predicate id - 1
  uint64_t total_triples_ = 0;
  bool has_pair_stats_ = false;
  std::unordered_map<uint64_t, PairJoinStat> pair_stats_;
  std::optional<CharacteristicSets> char_sets_;
  DatabaseOptions options_;
};

}  // namespace parj::storage

#endif  // PARJ_STORAGE_DATABASE_H_
