#ifndef PARJ_STORAGE_HISTOGRAM_H_
#define PARJ_STORAGE_HISTOGRAM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"

namespace parj::storage {

/// Equi-depth histogram over the sorted distinct-key array of a replica
/// (paper §4.3). Bucket boundaries are placed every key_count/buckets keys;
/// per boundary we also record the cumulative pair (triple) count so that
/// both key selectivity and triple mass of a range can be estimated.
class EquiDepthHistogram {
 public:
  EquiDepthHistogram() = default;

  /// Builds from a replica's keys and CSR offsets. `bucket_count` is a
  /// target; degenerate inputs produce fewer buckets.
  static EquiDepthHistogram Build(std::span<const TermId> keys,
                                  std::span<const uint64_t> offsets,
                                  size_t bucket_count);

  size_t bucket_count() const {
    return boundaries_.empty() ? 0 : boundaries_.size() - 1;
  }

  uint64_t total_keys() const { return total_keys_; }
  uint64_t total_pairs() const { return total_pairs_; }

  /// Estimated number of distinct keys with value <= x.
  double EstimateKeysLessEqual(TermId x) const;

  /// Estimated number of (key, value) pairs whose key is <= x.
  double EstimatePairsLessEqual(TermId x) const;

  /// Estimated number of distinct keys in [lo, hi] (inclusive).
  double EstimateKeysInRange(TermId lo, TermId hi) const;

  /// Estimated number of pairs whose key lies in [lo, hi] (inclusive).
  double EstimatePairsInRange(TermId lo, TermId hi) const;

  /// Estimated run length (pairs per key) around key value x: the pair/key
  /// density of x's bucket. Falls back to the global average off-range.
  double EstimateRunLength(TermId x) const;

  /// Fraction of this histogram's keys expected to also occur in a foreign
  /// key range [lo, hi] under the uniform assumption.
  double OverlapKeyFraction(TermId lo, TermId hi) const;

 private:
  // boundaries_[i]..boundaries_[i+1] delimit bucket i (key values,
  // inclusive lower, inclusive upper at the final boundary).
  std::vector<TermId> boundaries_;
  // cum_keys_[i]  = keys strictly before bucket i.
  // cum_pairs_[i] = pairs strictly before bucket i. Size = buckets + 1.
  std::vector<uint64_t> cum_keys_;
  std::vector<uint64_t> cum_pairs_;
  uint64_t total_keys_ = 0;
  uint64_t total_pairs_ = 0;
};

}  // namespace parj::storage

#endif  // PARJ_STORAGE_HISTOGRAM_H_
