#ifndef PARJ_STORAGE_EXPORT_H_
#define PARJ_STORAGE_EXPORT_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "storage/database.h"

namespace parj::storage {

/// Serializes the whole store as N-Triples (one statement per line,
/// grouped by predicate in S-O order). The inverse of
/// ParjEngine::FromNTriplesFile — export/import round-trips exactly
/// (modulo statement order, which carries no meaning in an RDF graph).
Status ExportNTriples(const Database& db, std::ostream& out);

/// Convenience file wrapper.
Status ExportNTriplesFile(const Database& db, const std::string& path);

}  // namespace parj::storage

#endif  // PARJ_STORAGE_EXPORT_H_
