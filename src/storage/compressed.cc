#include "storage/compressed.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/logging.h"
#include "common/simd.h"

namespace parj::storage {

namespace {

/// Bits needed to represent `x` (0 for 0).
unsigned BitsFor(uint32_t x) {
  return x == 0 ? 0u : 32u - static_cast<unsigned>(std::countl_zero(x));
}

/// Appends one block of `count` fields at `width` bits to the column's
/// payload and directory. Fields are packed LSB-first with no padding;
/// the block's payload starts on a word boundary.
void AppendBlock(PackedColumn* col, const uint32_t* fields, size_t count,
                 uint8_t meta_byte) {
  const unsigned width = meta_byte & kPackWidthMask;
  col->block_word.push_back(static_cast<uint32_t>(col->words.size()));
  col->meta.push_back(meta_byte);
  if (width == 0) return;
  const size_t base_word = col->words.size();
  col->words.resize(base_word + (count * width + 63) / 64, 0);
  size_t bit = 0;
  for (size_t i = 0; i < count; ++i, bit += width) {
    const uint64_t v = fields[i];
    const size_t word = base_word + (bit >> 6);
    const unsigned off = bit & 63u;
    col->words[word] |= v << off;
    if (off + width > 64) col->words[word + 1] |= v >> (64 - off);
  }
}

/// One zero word past the payload so the AVX2 gather's up-to-3-byte
/// overread of the last block stays in bounds.
void FinishColumn(PackedColumn* col) {
  col->words.push_back(0);
  col->words.shrink_to_fit();
  col->block_word.shrink_to_fit();
  col->meta.shrink_to_fit();
}

std::atomic<uint64_t> g_replica_generation{0};

}  // namespace

PackedKeys PackKeys(std::span<const TermId> keys) {
  PARJ_CHECK(keys.size() < UINT32_MAX);
  PackedKeys pk;
  pk.col.size = static_cast<uint32_t>(keys.size());
  uint32_t fields[kPackBlock];
  for (size_t begin = 0; begin < keys.size(); begin += kPackBlock) {
    const size_t len = std::min(kPackBlock, keys.size() - begin);
    pk.minima.push_back(keys[begin]);
    fields[0] = 0;
    uint32_t max_field = 0;
    for (size_t i = 1; i < len; ++i) {
      fields[i] = keys[begin + i] - keys[begin + i - 1];
      max_field = std::max(max_field, fields[i]);
    }
    AppendBlock(&pk.col, fields, len,
                static_cast<uint8_t>(BitsFor(max_field) | kPackDeltaFlag));
  }
  FinishColumn(&pk.col);
  pk.minima.shrink_to_fit();
  return pk;
}

PackedLengths PackLengths(std::span<const uint64_t> offsets) {
  PARJ_CHECK(!offsets.empty());
  const size_t key_count = offsets.size() - 1;
  PARJ_CHECK(key_count < UINT32_MAX);
  PackedLengths pl;
  pl.col.size = static_cast<uint32_t>(key_count);
  pl.total = offsets[key_count];
  uint32_t fields[kPackBlock];
  for (size_t begin = 0; begin < key_count; begin += kPackBlock) {
    const size_t len = std::min(kPackBlock, key_count - begin);
    pl.base.push_back(offsets[begin]);
    uint32_t min_len = UINT32_MAX;
    for (size_t i = 0; i < len; ++i) {
      min_len = std::min(min_len, static_cast<uint32_t>(
                                      offsets[begin + i + 1] -
                                      offsets[begin + i]));
    }
    // Field i is the CUMULATIVE length excess over a min_len-sloped ramp:
    //   offsets[begin+i] == base + i*min_len + fields[i]
    // so any offset random-accesses in O(1) — no prefix chain on decode,
    // no length-block cache on the probe path. A block of uniform run
    // lengths still packs to width 0, exactly like plain FOR lengths.
    uint32_t max_field = 0;
    for (size_t i = 0; i < len; ++i) {
      fields[i] = static_cast<uint32_t>(
          (offsets[begin + i] - offsets[begin]) -
          static_cast<uint64_t>(i) * min_len);
      max_field = std::max(max_field, fields[i]);
    }
    pl.min_len.push_back(min_len);
    AppendBlock(&pl.col, fields, len,
                static_cast<uint8_t>(BitsFor(max_field)));
  }
  FinishColumn(&pl.col);
  pl.base.shrink_to_fit();
  pl.min_len.shrink_to_fit();
  return pl;
}

PackedValues PackValues(std::span<const TermId> values) {
  PARJ_CHECK(values.size() < UINT32_MAX);
  PackedValues pv;
  pv.col.size = static_cast<uint32_t>(values.size());
  uint32_t fields[kPackBlock];
  for (size_t begin = 0; begin < values.size(); begin += kPackBlock) {
    const size_t len = std::min(kPackBlock, values.size() - begin);
    bool non_decreasing = true;
    TermId min_v = values[begin];
    for (size_t i = 1; i < len; ++i) {
      if (values[begin + i] < values[begin + i - 1]) non_decreasing = false;
      min_v = std::min(min_v, values[begin + i]);
    }
    uint32_t max_field = 0;
    uint8_t meta_byte;
    if (non_decreasing) {
      pv.minima.push_back(values[begin]);
      fields[0] = 0;
      for (size_t i = 1; i < len; ++i) {
        fields[i] = values[begin + i] - values[begin + i - 1];
        max_field = std::max(max_field, fields[i]);
      }
      meta_byte = static_cast<uint8_t>(BitsFor(max_field) | kPackDeltaFlag);
    } else {
      pv.minima.push_back(min_v);
      for (size_t i = 0; i < len; ++i) {
        fields[i] = values[begin + i] - min_v;
        max_field = std::max(max_field, fields[i]);
      }
      meta_byte = static_cast<uint8_t>(BitsFor(max_field));
    }
    AppendBlock(&pv.col, fields, len, meta_byte);
  }
  FinishColumn(&pv.col);
  pv.minima.shrink_to_fit();
  return pv;
}

void DecodeKeyBlock(const PackedKeys& pk, size_t b, uint32_t* out) {
  simd::UnpackDeltaU32(pk.col.words.data() + pk.col.block_word[b],
                       pk.col.meta[b] & kPackWidthMask, pk.col.BlockLen(b),
                       pk.minima[b], out);
}

void DecodeValueBlock(const PackedValues& pv, size_t b, uint32_t* out) {
  const uint64_t* words = pv.col.words.data() + pv.col.block_word[b];
  const unsigned width = pv.col.meta[b] & kPackWidthMask;
  const size_t len = pv.col.BlockLen(b);
  if (pv.col.meta[b] & kPackDeltaFlag) {
    simd::UnpackDeltaU32(words, width, len, pv.minima[b], out);
  } else {
    simd::UnpackForU32(words, width, len, pv.minima[b], out);
  }
}

void DecodeLengthBlock(const PackedLengths& pl, size_t b, uint64_t* out) {
  // Fields are cumulative excesses over the min_len ramp, so each output
  // offset is independent — no serial prefix chain.
  uint32_t excess[kPackBlock];
  const size_t len = pl.col.BlockLen(b);
  simd::UnpackForU32(pl.col.words.data() + pl.col.block_word[b],
                     pl.col.meta[b] & kPackWidthMask, len, 0, excess);
  const uint64_t base = pl.base[b];
  const uint64_t min_len = pl.min_len[b];
  for (size_t i = 0; i < len; ++i) out[i] = base + i * min_len + excess[i];
  out[len] = b + 1 < pl.base.size() ? pl.base[b + 1] : pl.total;
}

uint64_t LengthAt(const PackedLengths& pl, size_t pos) {
  const size_t b = pos / kPackBlock;
  const size_t i = pos % kPackBlock;
  const uint64_t min_len = pl.min_len[b];
  const uint64_t o0 = pl.base[b] + i * min_len + PackedFieldU32(pl.col, b, i);
  const uint64_t o1 =
      i + 1 < pl.col.BlockLen(b)
          ? pl.base[b] + (i + 1) * min_len + PackedFieldU32(pl.col, b, i + 1)
          : (b + 1 < pl.base.size() ? pl.base[b + 1] : pl.total);
  return o1 - o0;
}

size_t CompressedReplica::HeapBytes() const {
  return keys.col.HeapBytes() + keys.minima.size() * sizeof(TermId) +
         lens.col.HeapBytes() + lens.base.size() * sizeof(uint64_t) +
         lens.min_len.size() * sizeof(uint32_t) + vals.col.HeapBytes() +
         vals.minima.size() * sizeof(TermId);
}

size_t CompressedReplica::AllocatedBytes() const {
  return keys.col.AllocatedBytes() + keys.minima.capacity() * sizeof(TermId) +
         lens.col.AllocatedBytes() + lens.base.capacity() * sizeof(uint64_t) +
         lens.min_len.capacity() * sizeof(uint32_t) +
         vals.col.AllocatedBytes() + vals.minima.capacity() * sizeof(TermId);
}

CompressedReplica CompressReplica(std::span<const TermId> keys,
                                  std::span<const uint64_t> offsets,
                                  std::span<const TermId> values) {
  PARJ_CHECK(offsets.size() == keys.size() + 1);
  CompressedReplica r;
  r.keys = PackKeys(keys);
  r.lens = PackLengths(offsets);
  r.vals = PackValues(values);
  if (!keys.empty()) {
    r.min_key = keys.front();
    r.max_key = keys.back();
  }
  r.generation = 1 + g_replica_generation.fetch_add(1, std::memory_order_relaxed);
  return r;
}

namespace {

/// Decodes value fields [lo, hi) of FOR-coded block `b` straight from the
/// packed words — cost proportional to the slice, not the block. Used for
/// short-run point access where decoding all 128 ids wastes the work.
void DecodeValueSliceFor(const PackedValues& pv, size_t b, size_t lo,
                         size_t hi, uint32_t* out) {
  const unsigned width = pv.col.meta[b] & kPackWidthMask;
  const TermId base = pv.minima[b];
  if (width == 0) {
    for (size_t i = lo; i < hi; ++i) out[i - lo] = base;
    return;
  }
  const uint64_t* words = pv.col.words.data() + pv.col.block_word[b];
  const uint64_t mask = (uint64_t{1} << width) - 1;
  for (size_t i = lo; i < hi; ++i) {
    const size_t bit = i * width;
    const size_t word = bit >> 6;
    const unsigned off = bit & 63u;
    uint64_t v = words[word] >> off;
    if (off + width > 64) v |= words[word + 1] << (64 - off);
    out[i - lo] = base + static_cast<uint32_t>(v & mask);
  }
}

/// Slices at most this many ids are point-decoded; longer ones go through
/// the cached full-block decode (SIMD unpack amortizes past this point).
constexpr size_t kSliceDecodeLimit = 32;

/// Branchless (cmov) lower bound: first index with data[i] >= value.
/// Probe outcomes are coin flips on uncorrelated values, so the branchy
/// std:: loop spends more on mispredicts than on its arithmetic.
inline size_t CmovLowerBound(const TermId* data, size_t n, TermId value) {
  size_t lo = 0;
  size_t hi = n;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    const bool below = data[mid] < value;
    lo = below ? mid + 1 : lo;
    hi = below ? hi : mid;
  }
  return lo;
}

/// Branchless upper bound: first index with data[i] > value.
inline size_t CmovUpperBound(const TermId* data, size_t n, TermId value) {
  size_t lo = 0;
  size_t hi = n;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    const bool le = data[mid] <= value;
    lo = le ? mid + 1 : lo;
    hi = le ? hi : mid;
  }
  return lo;
}

}  // namespace

std::span<const TermId> ReplicaCursor::RunAt(const CompressedReplica& r,
                                             size_t pos) {
  const OffsetPair o = OffsetPairAt(r, pos);
  const uint64_t o0 = o.begin;
  const uint64_t o1 = o.end;
  const size_t len = static_cast<size_t>(o1 - o0);
  if (len == 0) return {};
  const size_t vb0 = static_cast<size_t>(o0 / kPackBlock);
  if (o1 <= (static_cast<uint64_t>(vb0) + 1) * kPackBlock) {
    const size_t lo =
        static_cast<size_t>(o0 - static_cast<uint64_t>(vb0) * kPackBlock);
    if (val_gen_ == r.generation && val_block_ == vb0) {
      // Block already decoded: alias it, zero copy.
      return {val_buf_ + lo, len};
    }
    if (len <= kSliceDecodeLimit &&
        (r.vals.col.meta[vb0] & kPackDeltaFlag) == 0) {
      // Short run in a FOR block (blocks holding several runs are never
      // monotone, so they are FOR-coded): decode just the slice.
      run_buf_.resize(len);
      DecodeValueSliceFor(r.vals, vb0, lo, lo + len, run_buf_.data());
      return {run_buf_.data(), len};
    }
    const std::span<const TermId> blk = ValueBlock(r, vb0);
    return blk.subspan(lo, len);
  }
  run_buf_.resize(len);
  size_t out = 0;
  for (size_t vb = static_cast<size_t>(o0 / kPackBlock);
       vb * kPackBlock < o1; ++vb) {
    const std::span<const TermId> blk = ValueBlock(r, vb);
    const uint64_t blk_begin = static_cast<uint64_t>(vb) * kPackBlock;
    const size_t lo = static_cast<size_t>(std::max(o0, blk_begin) - blk_begin);
    const size_t hi = static_cast<size_t>(
        std::min(o1, blk_begin + blk.size()) - blk_begin);
    std::memcpy(run_buf_.data() + out, blk.data() + lo,
                (hi - lo) * sizeof(TermId));
    out += hi - lo;
  }
  return {run_buf_.data(), len};
}

bool ReplicaCursor::RunContains(const CompressedReplica& r, size_t pos,
                                TermId value) {
  const OffsetPair o = OffsetPairAt(r, pos);
  const uint64_t o0 = o.begin;
  const uint64_t o1 = o.end;
  if (o0 == o1) return false;
  const size_t vb_first = static_cast<size_t>(o0 / kPackBlock);
  const size_t vb_last = static_cast<size_t>((o1 - 1) / kPackBlock);
  // Pick the one candidate block by binary-searching the run's interior
  // block minima. A block fully inside the run holds an ascending slice,
  // so it is delta-coded and its stored minimum IS the slice's first
  // value; those minima ascend across the run. The first and last
  // covering blocks can share their storage with neighbouring runs, so
  // their minima are not trusted — the first is the default candidate
  // and the last is the fallback below.
  size_t vb = vb_first;
  if (vb_last > vb_first + 1) {
    const TermId* interior = r.vals.minima.data() + vb_first + 1;
    const size_t ub =
        CmovUpperBound(interior, vb_last - vb_first - 1, value);
    if (ub != 0) vb = vb_first + ub;
  }
  for (;;) {
    const uint64_t blk_begin = static_cast<uint64_t>(vb) * kPackBlock;
    const size_t blk_len = r.vals.col.BlockLen(vb);
    const size_t lo = static_cast<size_t>(std::max(o0, blk_begin) - blk_begin);
    const size_t hi = static_cast<size_t>(
        std::min(o1, blk_begin + blk_len) - blk_begin);
    const bool cached = val_gen_ == r.generation && val_block_ == vb;
    if (!cached && (r.vals.col.meta[vb] & kPackDeltaFlag) == 0) {
      // FOR block, not in the cache: lower-bound the run's ascending
      // slice straight off the packed words — log2(slice) single-field
      // extracts, never a decode.
      const TermId base = r.vals.minima[vb];
      const unsigned width = r.vals.col.meta[vb] & kPackWidthMask;
      if (width == 0) {
        if (value == base) return true;
        if (vb == vb_last || base >= value) return false;
        vb = vb_last;
        continue;
      }
      if (value < base) return false;  // slice ascends and is >= base
      const uint64_t target = value - base;
      const uint64_t mask = (uint64_t{1} << width) - 1;
      if (target <= mask) {
        const uint64_t* words =
            r.vals.col.words.data() + r.vals.col.block_word[vb];
        const auto field = [&](size_t i) {
          const size_t bit = i * width;
          const unsigned off = bit & 63u;
          uint64_t v = words[bit >> 6] >> off;
          if (off + width > 64) v |= words[(bit >> 6) + 1] << (64 - off);
          return v & mask;
        };
        size_t a = lo;
        size_t c = hi;
        while (a < c) {
          const size_t mid = (a + c) / 2;
          if (field(mid) < target) {
            a = mid + 1;
          } else {
            c = mid;
          }
        }
        // a < hi: the slice holds a field >= target, so the answer is
        // decided here — value is present iff that field equals it.
        if (a < hi) return field(a) == target;
      }
      // Everything in this slice is below value: the only remaining
      // possibility is the run's tail slice in the last covering block
      // (its minimum was not part of the directory search).
      if (vb == vb_last) return false;
      vb = vb_last;
      continue;
    }
    const TermId* slice =
        cached ? val_buf_ + lo : ValueBlock(r, vb).data() + lo;
    if (std::binary_search(slice, slice + (hi - lo), value)) return true;
    if (vb == vb_last || slice[hi - lo - 1] >= value) return false;
    vb = vb_last;
  }
}

LowerBoundResult LowerBoundKeys(const CompressedReplica& r, TermId value,
                                ReplicaCursor* rc) {
  const size_t n = r.keys.col.size;
  if (n == 0) return {0, false};
  const auto& minima = r.keys.minima;
  // Adaptive probes cluster near the cursor: when the value falls in the
  // cached block's key range the lower bound resolves inside it — no
  // directory search, no decode. (Non-tail blocks are full, so an
  // in-block lower bound of block.size() is the next block's first
  // position, which is the correct global lower bound here because
  // value < minima[cb + 1].)
  const size_t cb = rc->CachedKeyBlockIndex(r);
  if (cb != SIZE_MAX) {
    if (value >= minima[cb] &&
        (cb + 1 == minima.size() || value < minima[cb + 1])) {
      const std::span<const TermId> block = rc->KeyBlock(r, cb);
      const size_t li = CmovLowerBound(block.data(), block.size(), value);
      const size_t pos = cb * kPackBlock + li;
      if (li == block.size()) return {pos, false};
      return {pos, block[li] == value};
    }
    // Forward scans cross into the NEXT block far more often than they
    // jump: resolve there directly before paying the directory search.
    const size_t nb = cb + 1;
    if (nb < minima.size() && value >= minima[nb] &&
        (nb + 1 == minima.size() || value < minima[nb + 1])) {
      const std::span<const TermId> block = rc->KeyBlock(r, nb);
      const size_t li = CmovLowerBound(block.data(), block.size(), value);
      const size_t pos = nb * kPackBlock + li;
      if (li == block.size()) return {pos, false};
      return {pos, block[li] == value};
    }
  }
  // Last block whose first key <= value; all of an earlier block's keys
  // are below the next block's minimum. Block minima inherit the key
  // column's spread, which on id-dense RDF data is near-uniform, so an
  // interpolated guess with a widening verification window replaces most
  // of the log2(blocks) serially-dependent directory loads; the window
  // bounds below guarantee the narrowed range still brackets the global
  // upper bound, and skewed data just falls back to the full search.
  size_t lo = 0;
  size_t hi = minima.size();
  if (hi >= 64 && value >= minima[0] && value < minima[hi - 1]) {
    const uint64_t span = minima[hi - 1] - minima[0];
    const size_t g = static_cast<size_t>(
        uint64_t{value - minima[0]} * (hi - 1) / span);
    for (size_t w = 16;; w *= 4) {
      const size_t a = g > w ? g - w : 0;
      const size_t b = g + w < minima.size() ? g + w : minima.size();
      // minima[a] <= value keeps the upper bound at or after a;
      // minima[b] > value keeps it at or before b.
      if ((a == 0 || minima[a] <= value) &&
          (b == minima.size() || minima[b] > value)) {
        lo = a;
        hi = b;
        break;
      }
      if (a == 0 && b == minima.size()) break;
    }
  }
  const size_t ub =
      lo + CmovUpperBound(minima.data() + lo, hi - lo, value);
  if (ub == 0) return {0, false};
  const size_t b = ub - 1;
  const std::span<const TermId> block = rc->KeyBlock(r, b);
  const size_t li = CmovLowerBound(block.data(), block.size(), value);
  const size_t pos = b * kPackBlock + li;
  if (li == block.size()) return {pos, false};
  return {pos, block[li] == value};
}

}  // namespace parj::storage
