#include "storage/export.h"

#include <fstream>
#include <ostream>

namespace parj::storage {

Status ExportNTriples(const Database& db, std::ostream& out) {
  const dict::Dictionary& dict = db.dictionary();
  for (PredicateId pid = 1; pid <= db.predicate_count(); ++pid) {
    const std::string predicate = dict.DecodePredicate(pid).ToNTriples();
    const TableReplica& so = db.entry(pid).table.so();
    so.ForEachRun([&](size_t, TermId s, std::span<const TermId> run) {
      const std::string subject = dict.DecodeResource(s).ToNTriples();
      for (TermId object : run) {
        out << subject << " " << predicate << " "
            << dict.DecodeResource(object).ToNTriples() << " .\n";
      }
    });
  }
  if (!out) return Status::IoError("write failure during N-Triples export");
  return Status::OK();
}

Status ExportNTriplesFile(const Database& db, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  return ExportNTriples(db, out);
}

}  // namespace parj::storage
