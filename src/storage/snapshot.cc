#include "storage/snapshot.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/crc32c.h"
#include "common/durable_io.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/timer.h"
#include "server/thread_pool.h"
#include "storage/compressed.h"

namespace parj::storage {

SnapshotStats& GlobalSnapshotStats() {
  static SnapshotStats* stats = new SnapshotStats();
  return *stats;
}

namespace {

constexpr char kMagic[8] = {'P', 'A', 'R', 'J', 'S', 'N', 'A', 'P'};
constexpr size_t kMaxStringLength = 1u << 24;  // 16 MB per term, sanity cap

// Section ids. The trailer id spells "TRLR" so a hex dump of a healthy
// snapshot ends recognizably. v2 data lives in kSectionTriples, v3 data
// in kSectionTables (bit-packed SO replicas).
constexpr uint32_t kSectionDictionary = 1;
constexpr uint32_t kSectionTriples = 2;
constexpr uint32_t kSectionTables = 3;
constexpr uint32_t kSectionTrailer = 0x524C5254u;  // "TRLR" in an LE dump

/// Streaming writer: every byte goes straight to the ostream; while a
/// section is open its payload bytes are folded into a running CRC-32C,
/// which EndSection appends (and records for the trailer).
class SnapshotWriter {
 public:
  explicit SnapshotWriter(std::ostream& out) : out_(out) {}

  void WriteBytes(const void* data, size_t n) {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(n));
    if (crc_active_) crc_ = Crc32cExtend(crc_, data, n);
  }
  void WriteU8(uint8_t v) { WriteBytes(&v, 1); }
  void WriteU32(uint32_t v) {
    char buf[4];
    std::memcpy(buf, &v, 4);
    WriteBytes(buf, 4);
  }
  void WriteU64(uint64_t v) {
    char buf[8];
    std::memcpy(buf, &v, 8);
    WriteBytes(buf, 8);
  }
  void WriteString(const std::string& s) {
    WriteU32(static_cast<uint32_t>(s.size()));
    WriteBytes(s.data(), s.size());
  }
  void WriteTerm(const rdf::Term& term) {
    WriteU8(static_cast<uint8_t>(term.kind()));
    WriteString(term.lexical());
    WriteString(term.datatype());
    WriteString(term.lang());
  }

  void BeginSection(uint32_t id) {
    WriteU32(id);  // header, not covered by the section CRC
    crc_ = 0;
    crc_active_ = true;
  }
  void EndSection() {
    crc_active_ = false;
    section_crcs_.push_back(crc_);
    WriteU32(crc_);
  }
  void WriteTrailer() {
    WriteU32(kSectionTrailer);
    WriteU64(section_crcs_.size());
    WriteU32(Crc32c(section_crcs_.data(),
                    section_crcs_.size() * sizeof(uint32_t)));
  }

  bool good() const { return static_cast<bool>(out_); }

 private:
  std::ostream& out_;
  uint32_t crc_ = 0;
  bool crc_active_ = false;
  std::vector<uint32_t> section_crcs_;
};

/// Streaming reader mirror: tracks the byte offset (for error messages)
/// and folds bytes read while a section is open into a running CRC.
class SnapshotReader {
 public:
  explicit SnapshotReader(std::istream& in) : in_(in) {}

  Status ReadBytes(void* buf, size_t n, const char* what) {
    if (n > 0 &&
        !in_.read(static_cast<char*>(buf), static_cast<std::streamsize>(n))) {
      return Status::IoError("truncated snapshot (" + std::string(what) +
                             ") at offset " + std::to_string(offset_));
    }
    offset_ += n;
    if (crc_active_) crc_ = Crc32cExtend(crc_, buf, n);
    return Status::OK();
  }
  Result<uint8_t> ReadU8(const char* what) {
    uint8_t v;
    PARJ_RETURN_NOT_OK(ReadBytes(&v, 1, what));
    return v;
  }
  Result<uint32_t> ReadU32(const char* what) {
    char buf[4];
    PARJ_RETURN_NOT_OK(ReadBytes(buf, 4, what));
    uint32_t v;
    std::memcpy(&v, buf, 4);
    return v;
  }
  Result<uint64_t> ReadU64(const char* what) {
    char buf[8];
    PARJ_RETURN_NOT_OK(ReadBytes(buf, 8, what));
    uint64_t v;
    std::memcpy(&v, buf, 8);
    return v;
  }
  Result<std::string> ReadString() {
    PARJ_ASSIGN_OR_RETURN(uint32_t length, ReadU32("string length"));
    if (length > kMaxStringLength) {
      return Status::ParseError(
          "snapshot string length exceeds sanity cap at offset " +
          std::to_string(offset_ - 4));
    }
    std::string s(length, '\0');
    PARJ_RETURN_NOT_OK(ReadBytes(s.data(), length, "string"));
    return s;
  }
  Result<rdf::Term> ReadTerm() {
    PARJ_ASSIGN_OR_RETURN(uint8_t kind_byte, ReadU8("term"));
    PARJ_ASSIGN_OR_RETURN(std::string lexical, ReadString());
    PARJ_ASSIGN_OR_RETURN(std::string datatype, ReadString());
    PARJ_ASSIGN_OR_RETURN(std::string lang, ReadString());
    switch (static_cast<rdf::TermKind>(kind_byte)) {
      case rdf::TermKind::kIri:
        return rdf::Term::Iri(std::move(lexical));
      case rdf::TermKind::kBlank:
        return rdf::Term::Blank(std::move(lexical));
      case rdf::TermKind::kLiteral:
        if (!lang.empty()) {
          return rdf::Term::LangLiteral(std::move(lexical), std::move(lang));
        }
        if (!datatype.empty()) {
          return rdf::Term::TypedLiteral(std::move(lexical),
                                         std::move(datatype));
        }
        return rdf::Term::Literal(std::move(lexical));
    }
    return Status::ParseError("snapshot term has unknown kind " +
                              std::to_string(kind_byte) + " at offset " +
                              std::to_string(offset_));
  }

  void BeginCrc() {
    crc_ = 0;
    crc_active_ = true;
  }
  uint32_t EndCrc() {
    crc_active_ = false;
    return crc_;
  }

  /// Reads the stored section CRC (not folded into any CRC) and compares
  /// it to the computed payload CRC.
  Status VerifySectionCrc(const char* section, uint32_t computed) {
    const uint64_t payload_end = offset_;
    PARJ_ASSIGN_OR_RETURN(uint32_t stored, ReadU32("section CRC"));
    if (stored != computed) {
      GlobalSnapshotStats().crc_mismatches.fetch_add(
          1, std::memory_order_relaxed);
      char detail[64];
      std::snprintf(detail, sizeof(detail), " (stored %08x, computed %08x)",
                    stored, computed);
      return Status::DataLoss("snapshot section '" + std::string(section) +
                              "' CRC mismatch at offset " +
                              std::to_string(payload_end) + detail);
    }
    GlobalSnapshotStats().crc_sections_verified.fetch_add(
        1, std::memory_order_relaxed);
    return Status::OK();
  }

  bool AtEof() {
    return in_.peek() == std::istream::traits_type::eof();
  }
  uint64_t offset() const { return offset_; }

 private:
  std::istream& in_;
  uint64_t offset_ = 0;
  uint32_t crc_ = 0;
  bool crc_active_ = false;
};

// --- v3 packed-table payload helpers ---------------------------------------

/// Serializes one bit-packed column: logical size, payload word count,
/// payload words, then the per-block word offsets and meta bytes (their
/// counts derive from the size).
void WritePackedColumn(SnapshotWriter& writer, const PackedColumn& col) {
  writer.WriteU32(col.size);
  writer.WriteU64(col.words.size());
  writer.WriteBytes(col.words.data(), col.words.size() * sizeof(uint64_t));
  writer.WriteBytes(col.block_word.data(),
                    col.block_word.size() * sizeof(uint32_t));
  writer.WriteBytes(col.meta.data(), col.meta.size());
}

/// Reads and structurally validates one packed column: every width must
/// be <= 32 and every block's payload (plus the decoder's one-word
/// overread allowance) must sit inside the word array, so a decoder can
/// never read out of bounds even on data that defeats the CRC.
Status ReadPackedColumn(SnapshotReader& reader, PackedColumn* col,
                        const char* what) {
  PARJ_ASSIGN_OR_RETURN(col->size, reader.ReadU32(what));
  PARJ_ASSIGN_OR_RETURN(uint64_t word_count, reader.ReadU64(what));
  const size_t blocks =
      (static_cast<size_t>(col->size) + kPackBlock - 1) / kPackBlock;
  // Widest legal encoding: 32-bit fields, word-aligned blocks, one guard.
  const uint64_t max_words =
      static_cast<uint64_t>(blocks) * (kPackBlock * 32 / 64 + 1) + 1;
  if (word_count > max_words) {
    return Status::ParseError("snapshot packed column '" + std::string(what) +
                              "' has implausible word count " +
                              std::to_string(word_count));
  }
  col->words.resize(static_cast<size_t>(word_count));
  PARJ_RETURN_NOT_OK(reader.ReadBytes(col->words.data(),
                                      col->words.size() * sizeof(uint64_t),
                                      what));
  col->block_word.resize(blocks);
  PARJ_RETURN_NOT_OK(reader.ReadBytes(col->block_word.data(),
                                      blocks * sizeof(uint32_t), what));
  col->meta.resize(blocks);
  PARJ_RETURN_NOT_OK(reader.ReadBytes(col->meta.data(), blocks, what));
  for (size_t b = 0; b < blocks; ++b) {
    const unsigned width = col->meta[b] & kPackWidthMask;
    if (width > 32) {
      return Status::ParseError("snapshot packed column '" +
                                std::string(what) + "' block " +
                                std::to_string(b) + " has width " +
                                std::to_string(width));
    }
    const uint64_t needed =
        (static_cast<uint64_t>(col->BlockLen(b)) * width + 63) / 64;
    if (static_cast<uint64_t>(col->block_word[b]) + needed + 1 > word_count) {
      return Status::ParseError("snapshot packed column '" +
                                std::string(what) + "' block " +
                                std::to_string(b) +
                                " payload exceeds word array");
    }
  }
  return Status::OK();
}

/// Serializes one replica's packed form. The encoder is deterministic, so
/// the bytes are identical whether the source store was flat (packed on
/// the fly) or already compressed.
void WritePackedReplica(SnapshotWriter& writer, const CompressedReplica& r) {
  writer.WriteU32(static_cast<uint32_t>(r.key_count()));
  writer.WriteU64(r.lens.total);
  if (r.key_count() == 0) return;
  writer.WriteU32(r.min_key);
  writer.WriteU32(r.max_key);
  WritePackedColumn(writer, r.keys.col);
  writer.WriteBytes(r.keys.minima.data(),
                    r.keys.minima.size() * sizeof(TermId));
  WritePackedColumn(writer, r.lens.col);
  writer.WriteBytes(r.lens.base.data(), r.lens.base.size() * sizeof(uint64_t));
  writer.WriteBytes(r.lens.min_len.data(),
                    r.lens.min_len.size() * sizeof(uint32_t));
  WritePackedColumn(writer, r.vals.col);
  writer.WriteBytes(r.vals.minima.data(),
                    r.vals.minima.size() * sizeof(TermId));
}

/// Reads one packed replica and (when `triples` is non-null) decodes it
/// back into (key, pid, value) triples. Returns the replica's pair count.
Result<uint64_t> ReadPackedReplica(SnapshotReader& reader, PredicateId pid,
                                   std::vector<EncodedTriple>* triples) {
  PARJ_ASSIGN_OR_RETURN(uint32_t key_count, reader.ReadU32("table key count"));
  PARJ_ASSIGN_OR_RETURN(uint64_t pair_count,
                        reader.ReadU64("table pair count"));
  if (key_count == 0) {
    if (pair_count != 0) {
      return Status::ParseError("snapshot table for predicate " +
                                std::to_string(pid) +
                                " has pairs but no keys");
    }
    return uint64_t{0};
  }
  CompressedReplica r;
  PARJ_ASSIGN_OR_RETURN(r.min_key, reader.ReadU32("table min key"));
  PARJ_ASSIGN_OR_RETURN(r.max_key, reader.ReadU32("table max key"));
  r.lens.total = pair_count;

  PARJ_RETURN_NOT_OK(ReadPackedColumn(reader, &r.keys.col, "keys"));
  if (r.keys.col.size != key_count) {
    return Status::ParseError("snapshot key column size mismatch");
  }
  const size_t key_blocks = r.keys.col.block_count();
  r.keys.minima.resize(key_blocks);
  PARJ_RETURN_NOT_OK(reader.ReadBytes(r.keys.minima.data(),
                                      key_blocks * sizeof(TermId),
                                      "key minima"));

  PARJ_RETURN_NOT_OK(ReadPackedColumn(reader, &r.lens.col, "lengths"));
  if (r.lens.col.size != key_count) {
    return Status::ParseError("snapshot length column size mismatch");
  }
  r.lens.base.resize(key_blocks);
  PARJ_RETURN_NOT_OK(reader.ReadBytes(r.lens.base.data(),
                                      key_blocks * sizeof(uint64_t),
                                      "length bases"));
  r.lens.min_len.resize(key_blocks);
  PARJ_RETURN_NOT_OK(reader.ReadBytes(r.lens.min_len.data(),
                                      key_blocks * sizeof(uint32_t),
                                      "length minima"));

  PARJ_RETURN_NOT_OK(ReadPackedColumn(reader, &r.vals.col, "values"));
  if (r.vals.col.size != pair_count) {
    return Status::ParseError("snapshot value column size mismatch");
  }
  const size_t val_blocks = r.vals.col.block_count();
  r.vals.minima.resize(val_blocks);
  PARJ_RETURN_NOT_OK(reader.ReadBytes(r.vals.minima.data(),
                                      val_blocks * sizeof(TermId),
                                      "value minima"));
  if (triples == nullptr) return pair_count;

  // Decode back to flat arrays. Database::Build revalidates and re-sorts
  // the triples, so decode errors that survive the CRC can only yield a
  // load failure or a well-formed store, never a malformed one.
  std::vector<TermId> keys(key_count);
  for (size_t b = 0; b < key_blocks; ++b) {
    DecodeKeyBlock(r.keys, b, keys.data() + b * kPackBlock);
  }
  std::vector<uint64_t> offsets(static_cast<size_t>(key_count) + 1);
  uint64_t len_buf[kPackBlock + 1];
  for (size_t b = 0; b < key_blocks; ++b) {
    DecodeLengthBlock(r.lens, b, len_buf);
    const size_t len = r.lens.col.BlockLen(b);
    for (size_t i = 0; i <= len; ++i) offsets[b * kPackBlock + i] = len_buf[i];
  }
  if (offsets.front() != 0 || offsets.back() != pair_count) {
    return Status::ParseError("snapshot table offsets do not cover pairs");
  }
  for (size_t i = 0; i < key_count; ++i) {
    if (offsets[i] > offsets[i + 1]) {
      return Status::ParseError("snapshot table offsets not monotone");
    }
  }
  std::vector<TermId> values(static_cast<size_t>(pair_count));
  for (size_t b = 0; b < val_blocks; ++b) {
    DecodeValueBlock(r.vals, b, values.data() + b * kPackBlock);
  }
  for (size_t k = 0; k < key_count; ++k) {
    const TermId s = keys[k];
    for (uint64_t i = offsets[k]; i < offsets[k + 1]; ++i) {
      triples->push_back(EncodedTriple{s, pid, values[i]});
    }
  }
  return pair_count;
}

/// Shared walker behind ReadSnapshot (build == true: populate dict +
/// triples) and VerifySnapshot (build == false: decode and discard).
Status ParseSnapshot(std::istream& in, bool build, dict::Dictionary* dict,
                     std::vector<EncodedTriple>* triples, SnapshotInfo* info) {
  SnapshotReader reader(in);
  char magic[sizeof(kMagic)];
  PARJ_RETURN_NOT_OK(reader.ReadBytes(magic, sizeof(magic), "magic"));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError("not a PARJ snapshot (bad magic)");
  }
  PARJ_FAILPOINT("snapshot.read.header");
  PARJ_ASSIGN_OR_RETURN(uint32_t version, reader.ReadU32("version"));
  if (version != kSnapshotVersion && version != kSnapshotVersionV2 &&
      version != kSnapshotVersionLegacy) {
    return Status::Unsupported("snapshot version " + std::to_string(version) +
                               " (supported: " +
                               std::to_string(kSnapshotVersionLegacy) + ", " +
                               std::to_string(kSnapshotVersionV2) + ", " +
                               std::to_string(kSnapshotVersion) + ")");
  }
  info->version = version;
  PARJ_ASSIGN_OR_RETURN(uint32_t flags, reader.ReadU32("flags"));
  if (flags != 0) {
    return Status::Unsupported("snapshot uses unknown flags");
  }
  const bool checked = version >= kSnapshotVersionV2;
  std::vector<uint32_t> section_crcs;

  // --- dictionary section -----------------------------------------------
  PARJ_FAILPOINT("snapshot.read.dictionary");
  if (checked) {
    PARJ_ASSIGN_OR_RETURN(uint32_t id, reader.ReadU32("section id"));
    if (id != kSectionDictionary) {
      return Status::DataLoss(
          "snapshot dictionary section has wrong id " + std::to_string(id) +
          " at offset " + std::to_string(reader.offset() - 4));
    }
    reader.BeginCrc();
  }
  PARJ_ASSIGN_OR_RETURN(uint32_t resource_count,
                        reader.ReadU32("resource count"));
  info->resource_count = resource_count;
  for (uint32_t i = 0; i < resource_count; ++i) {
    PARJ_ASSIGN_OR_RETURN(rdf::Term term, reader.ReadTerm());
    if (build) {
      TermId id = dict->EncodeResource(term);
      if (id != i + 1) {
        return Status::ParseError("snapshot contains duplicate resource terms");
      }
    }
  }
  PARJ_ASSIGN_OR_RETURN(uint32_t predicate_count,
                        reader.ReadU32("predicate count"));
  info->predicate_count = predicate_count;
  for (uint32_t i = 0; i < predicate_count; ++i) {
    PARJ_ASSIGN_OR_RETURN(rdf::Term term, reader.ReadTerm());
    if (build) {
      PredicateId id = dict->EncodePredicate(term);
      if (id != i + 1) {
        return Status::ParseError(
            "snapshot contains duplicate predicate terms");
      }
    }
  }
  if (checked) {
    const uint32_t computed = reader.EndCrc();
    PARJ_RETURN_NOT_OK(reader.VerifySectionCrc("dictionary", computed));
    section_crcs.push_back(computed);
    ++info->sections_verified;
  }

  // --- data section (v1/v2: raw triples; v3: packed tables) -------------
  PARJ_FAILPOINT("snapshot.read.triples");
  if (version >= kSnapshotVersion) {
    PARJ_ASSIGN_OR_RETURN(uint32_t id, reader.ReadU32("section id"));
    if (id != kSectionTables) {
      return Status::DataLoss(
          "snapshot tables section has wrong id " + std::to_string(id) +
          " at offset " + std::to_string(reader.offset() - 4));
    }
    reader.BeginCrc();
    PARJ_ASSIGN_OR_RETURN(uint64_t triple_count,
                          reader.ReadU64("triple count"));
    info->triple_count = triple_count;
    PARJ_ASSIGN_OR_RETURN(uint32_t table_count, reader.ReadU32("table count"));
    if (table_count != info->predicate_count) {
      return Status::DataLoss(
          "snapshot has " + std::to_string(table_count) +
          " tables for " + std::to_string(info->predicate_count) +
          " predicates");
    }
    if (build) {
      triples->reserve(std::min<uint64_t>(triple_count, uint64_t{1} << 24));
    }
    uint64_t decoded = 0;
    for (uint32_t p = 0; p < table_count; ++p) {
      PARJ_ASSIGN_OR_RETURN(
          uint64_t pairs,
          ReadPackedReplica(reader, static_cast<PredicateId>(p + 1),
                            build ? triples : nullptr));
      decoded += pairs;
    }
    if (decoded != triple_count) {
      return Status::DataLoss("snapshot tables hold " +
                              std::to_string(decoded) + " triples, header "
                              "says " + std::to_string(triple_count));
    }
    const uint32_t computed = reader.EndCrc();
    PARJ_RETURN_NOT_OK(reader.VerifySectionCrc("tables", computed));
    section_crcs.push_back(computed);
    ++info->sections_verified;
  } else {
    if (checked) {
      PARJ_ASSIGN_OR_RETURN(uint32_t id, reader.ReadU32("section id"));
      if (id != kSectionTriples) {
        return Status::DataLoss(
            "snapshot triples section has wrong id " + std::to_string(id) +
            " at offset " + std::to_string(reader.offset() - 4));
      }
      reader.BeginCrc();
    }
    PARJ_ASSIGN_OR_RETURN(uint64_t triple_count,
                          reader.ReadU64("triple count"));
    info->triple_count = triple_count;
    if (build) {
      // Do not trust the header for a giant up-front allocation; a
      // corrupted count will fail on the truncated read (or the CRC)
      // instead.
      triples->reserve(std::min<uint64_t>(triple_count, uint64_t{1} << 24));
    }
    for (uint64_t i = 0; i < triple_count; ++i) {
      EncodedTriple t;
      PARJ_ASSIGN_OR_RETURN(t.subject, reader.ReadU32("triple subject"));
      PARJ_ASSIGN_OR_RETURN(t.predicate, reader.ReadU32("triple predicate"));
      PARJ_ASSIGN_OR_RETURN(t.object, reader.ReadU32("triple object"));
      if (build) triples->push_back(t);
    }
    if (checked) {
      const uint32_t computed = reader.EndCrc();
      PARJ_RETURN_NOT_OK(reader.VerifySectionCrc("triples", computed));
      section_crcs.push_back(computed);
      ++info->sections_verified;
    }
  }

  // --- trailer ----------------------------------------------------------
  if (checked) {
    PARJ_FAILPOINT("snapshot.read.trailer");
    PARJ_ASSIGN_OR_RETURN(uint32_t id, reader.ReadU32("trailer id"));
    if (id != kSectionTrailer) {
      return Status::DataLoss("snapshot trailer has wrong id " +
                              std::to_string(id) + " at offset " +
                              std::to_string(reader.offset() - 4));
    }
    PARJ_ASSIGN_OR_RETURN(uint64_t count, reader.ReadU64("trailer count"));
    if (count != section_crcs.size()) {
      return Status::DataLoss("snapshot trailer records " +
                              std::to_string(count) + " sections, expected " +
                              std::to_string(section_crcs.size()));
    }
    PARJ_ASSIGN_OR_RETURN(uint32_t stored, reader.ReadU32("trailer CRC"));
    const uint32_t computed = Crc32c(section_crcs.data(),
                                     section_crcs.size() * sizeof(uint32_t));
    if (stored != computed) {
      GlobalSnapshotStats().crc_mismatches.fetch_add(
          1, std::memory_order_relaxed);
      return Status::DataLoss("snapshot section 'trailer' CRC mismatch at "
                              "offset " + std::to_string(reader.offset() - 4));
    }
    GlobalSnapshotStats().crc_sections_verified.fetch_add(
        1, std::memory_order_relaxed);
    ++info->sections_verified;
    if (!reader.AtEof()) {
      return Status::DataLoss("snapshot has trailing bytes after trailer at "
                              "offset " + std::to_string(reader.offset()));
    }
  }
  info->bytes = reader.offset();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Buffered parallel load path (v2 snapshots, SnapshotLoadOptions.threads > 1)
//
// A serial structural scan walks the buffer once — cheap, it only follows
// length fields — recording section payload spans, every term record's
// offset, and the triple array's span. The expensive work (CRC-32C over the
// payloads, term string materialization, triple record decode) then runs in
// parallel over disjoint ranges. Every structural check of the streaming
// reader is replicated with the same status codes, messages, and offsets,
// so corruption reports do not depend on which path loaded the file.
// ---------------------------------------------------------------------------

/// Byte spans of one v2 section: [payload_begin, payload_end) is CRC-covered;
/// the stored CRC word sits at payload_end.
struct SectionSpan {
  size_t payload_begin = 0;
  size_t payload_end = 0;
  uint32_t stored_crc = 0;
};

/// Everything the structural scan learns about a v2 snapshot buffer.
struct SnapshotLayout {
  SectionSpan dictionary;
  SectionSpan triples;
  uint32_t resource_count = 0;
  uint32_t predicate_count = 0;
  /// Offset of each term record, resources first then predicates.
  std::vector<size_t> term_offsets;
  uint64_t triple_count = 0;
  size_t triples_begin = 0;  ///< offset of the first 12-byte triple record
  uint64_t trailer_section_count = 0;
  uint32_t trailer_stored_crc = 0;
  size_t trailer_crc_offset = 0;  ///< offset just past the stored trailer CRC
  size_t end = 0;                 ///< offset just past the trailer
};

/// Bounds-checked cursor over the snapshot buffer; mirrors SnapshotReader's
/// error wording ("truncated snapshot (<what>) at offset N").
class BufferCursor {
 public:
  BufferCursor(const char* data, size_t size) : data_(data), size_(size) {}

  Status Skip(size_t n, const char* what) {
    if (n > size_ - pos_ || pos_ > size_) {
      return Status::IoError("truncated snapshot (" + std::string(what) +
                             ") at offset " + std::to_string(pos_));
    }
    pos_ += n;
    return Status::OK();
  }
  Result<uint8_t> ReadU8(const char* what) {
    PARJ_RETURN_NOT_OK(Skip(1, what));
    return static_cast<uint8_t>(data_[pos_ - 1]);
  }
  Result<uint32_t> ReadU32(const char* what) {
    PARJ_RETURN_NOT_OK(Skip(4, what));
    uint32_t v;
    std::memcpy(&v, data_ + pos_ - 4, 4);
    return v;
  }
  Result<uint64_t> ReadU64(const char* what) {
    PARJ_RETURN_NOT_OK(Skip(8, what));
    uint64_t v;
    std::memcpy(&v, data_ + pos_ - 8, 8);
    return v;
  }
  /// Skips one length-prefixed string, enforcing the sanity cap with the
  /// streaming reader's message and offset.
  Status SkipString() {
    PARJ_ASSIGN_OR_RETURN(uint32_t length, ReadU32("string length"));
    if (length > kMaxStringLength) {
      return Status::ParseError(
          "snapshot string length exceeds sanity cap at offset " +
          std::to_string(pos_ - 4));
    }
    return Skip(length, "string");
  }
  size_t pos() const { return pos_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Structural scan of a v2 snapshot. Validates everything the streaming
/// walker validates except the CRCs themselves (recorded for later parallel
/// verification) and term uniqueness (checked by Dictionary::FromTerms).
Status ScanSnapshotV2(const char* data, size_t size, SnapshotLayout* layout,
                      SnapshotInfo* info) {
  BufferCursor cur(data, size);
  PARJ_RETURN_NOT_OK(cur.Skip(sizeof(kMagic), "magic"));
  PARJ_FAILPOINT("snapshot.read.header");
  PARJ_ASSIGN_OR_RETURN(uint32_t version, cur.ReadU32("version"));
  PARJ_CHECK(version == kSnapshotVersionV2)
      << "ScanSnapshotV2 called for version " << version;
  info->version = version;
  PARJ_ASSIGN_OR_RETURN(uint32_t flags, cur.ReadU32("flags"));
  if (flags != 0) {
    return Status::Unsupported("snapshot uses unknown flags");
  }

  // Scans one term record: kind byte + three strings. The streaming reader
  // materializes the strings before judging the kind byte, so string errors
  // take precedence and the unknown-kind offset is the record's END.
  const auto scan_term = [&]() -> Status {
    PARJ_ASSIGN_OR_RETURN(uint8_t kind_byte, cur.ReadU8("term"));
    PARJ_RETURN_NOT_OK(cur.SkipString());
    PARJ_RETURN_NOT_OK(cur.SkipString());
    PARJ_RETURN_NOT_OK(cur.SkipString());
    if (kind_byte > static_cast<uint8_t>(rdf::TermKind::kBlank)) {
      return Status::ParseError("snapshot term has unknown kind " +
                                std::to_string(kind_byte) + " at offset " +
                                std::to_string(cur.pos()));
    }
    return Status::OK();
  };

  // --- dictionary section -----------------------------------------------
  PARJ_FAILPOINT("snapshot.read.dictionary");
  {
    PARJ_ASSIGN_OR_RETURN(uint32_t id, cur.ReadU32("section id"));
    if (id != kSectionDictionary) {
      return Status::DataLoss("snapshot dictionary section has wrong id " +
                              std::to_string(id) + " at offset " +
                              std::to_string(cur.pos() - 4));
    }
  }
  layout->dictionary.payload_begin = cur.pos();
  PARJ_ASSIGN_OR_RETURN(layout->resource_count, cur.ReadU32("resource count"));
  info->resource_count = layout->resource_count;
  layout->term_offsets.reserve(static_cast<size_t>(layout->resource_count));
  for (uint32_t i = 0; i < layout->resource_count; ++i) {
    layout->term_offsets.push_back(cur.pos());
    PARJ_RETURN_NOT_OK(scan_term());
  }
  PARJ_ASSIGN_OR_RETURN(layout->predicate_count,
                        cur.ReadU32("predicate count"));
  info->predicate_count = layout->predicate_count;
  for (uint32_t i = 0; i < layout->predicate_count; ++i) {
    layout->term_offsets.push_back(cur.pos());
    PARJ_RETURN_NOT_OK(scan_term());
  }
  layout->dictionary.payload_end = cur.pos();
  PARJ_ASSIGN_OR_RETURN(layout->dictionary.stored_crc,
                        cur.ReadU32("section CRC"));

  // --- triples section --------------------------------------------------
  PARJ_FAILPOINT("snapshot.read.triples");
  {
    PARJ_ASSIGN_OR_RETURN(uint32_t id, cur.ReadU32("section id"));
    if (id != kSectionTriples) {
      return Status::DataLoss("snapshot triples section has wrong id " +
                              std::to_string(id) + " at offset " +
                              std::to_string(cur.pos() - 4));
    }
  }
  layout->triples.payload_begin = cur.pos();
  PARJ_ASSIGN_OR_RETURN(layout->triple_count, cur.ReadU64("triple count"));
  info->triple_count = layout->triple_count;
  layout->triples_begin = cur.pos();
  for (uint64_t i = 0; i < layout->triple_count; ++i) {
    PARJ_RETURN_NOT_OK(cur.Skip(4, "triple subject"));
    PARJ_RETURN_NOT_OK(cur.Skip(4, "triple predicate"));
    PARJ_RETURN_NOT_OK(cur.Skip(4, "triple object"));
  }
  layout->triples.payload_end = cur.pos();
  PARJ_ASSIGN_OR_RETURN(layout->triples.stored_crc, cur.ReadU32("section CRC"));

  // --- trailer ----------------------------------------------------------
  PARJ_FAILPOINT("snapshot.read.trailer");
  {
    PARJ_ASSIGN_OR_RETURN(uint32_t id, cur.ReadU32("trailer id"));
    if (id != kSectionTrailer) {
      return Status::DataLoss("snapshot trailer has wrong id " +
                              std::to_string(id) + " at offset " +
                              std::to_string(cur.pos() - 4));
    }
  }
  PARJ_ASSIGN_OR_RETURN(layout->trailer_section_count,
                        cur.ReadU64("trailer count"));
  if (layout->trailer_section_count != 2) {
    return Status::DataLoss("snapshot trailer records " +
                            std::to_string(layout->trailer_section_count) +
                            " sections, expected 2");
  }
  PARJ_ASSIGN_OR_RETURN(layout->trailer_stored_crc, cur.ReadU32("trailer CRC"));
  layout->trailer_crc_offset = cur.pos();
  if (cur.pos() != size) {
    return Status::DataLoss("snapshot has trailing bytes after trailer at "
                            "offset " + std::to_string(cur.pos()));
  }
  layout->end = cur.pos();
  info->bytes = cur.pos();
  return Status::OK();
}

/// Decodes the term record at `pos` (already bounds- and kind-validated by
/// the scan), mirroring SnapshotReader::ReadTerm's construction rules.
rdf::Term DecodeTermAt(const char* data, size_t pos) {
  const uint8_t kind_byte = static_cast<uint8_t>(data[pos]);
  pos += 1;
  const auto take_string = [&]() {
    uint32_t length;
    std::memcpy(&length, data + pos, 4);
    pos += 4;
    std::string s(data + pos, length);
    pos += length;
    return s;
  };
  std::string lexical = take_string();
  std::string datatype = take_string();
  std::string lang = take_string();
  switch (static_cast<rdf::TermKind>(kind_byte)) {
    case rdf::TermKind::kIri:
      return rdf::Term::Iri(std::move(lexical));
    case rdf::TermKind::kBlank:
      return rdf::Term::Blank(std::move(lexical));
    case rdf::TermKind::kLiteral:
      break;
  }
  if (!lang.empty()) {
    return rdf::Term::LangLiteral(std::move(lexical), std::move(lang));
  }
  if (!datatype.empty()) {
    return rdf::Term::TypedLiteral(std::move(lexical), std::move(datatype));
  }
  return rdf::Term::Literal(std::move(lexical));
}

/// Verifies one section's computed CRC against the stored word, with the
/// streaming reader's exact diagnostics and counter updates.
Status CheckSectionCrc(const char* section, const SectionSpan& span,
                       uint32_t computed) {
  if (span.stored_crc != computed) {
    GlobalSnapshotStats().crc_mismatches.fetch_add(1,
                                                   std::memory_order_relaxed);
    char detail[64];
    std::snprintf(detail, sizeof(detail), " (stored %08x, computed %08x)",
                  span.stored_crc, computed);
    return Status::DataLoss("snapshot section '" + std::string(section) +
                            "' CRC mismatch at offset " +
                            std::to_string(span.payload_end) + detail);
  }
  GlobalSnapshotStats().crc_sections_verified.fetch_add(
      1, std::memory_order_relaxed);
  return Status::OK();
}

/// The parallel v2 load: scan serially, then CRC + decode on `pool`.
/// Returns the decoded dictionary terms and triples; CRC failures are
/// reported in the streaming walker's section order.
Status DecodeSnapshotParallel(const char* data, size_t size,
                              server::ThreadPool* pool,
                              std::vector<rdf::Term>* resources,
                              std::vector<rdf::Term>* predicates,
                              std::vector<EncodedTriple>* triples,
                              SnapshotInfo* info) {
  SnapshotLayout layout;
  PARJ_RETURN_NOT_OK(ScanSnapshotV2(data, size, &layout, info));

  resources->resize(layout.resource_count);
  predicates->resize(layout.predicate_count);
  triples->resize(layout.triple_count);

  // Task list: two section CRCs + term-range decodes + triple-range
  // decodes, all over disjoint inputs and outputs.
  uint32_t dict_crc = 0;
  uint32_t triples_crc = 0;
  std::vector<std::function<void()>> tasks;
  tasks.push_back([&] {
    dict_crc = Crc32c(data + layout.dictionary.payload_begin,
                      layout.dictionary.payload_end -
                          layout.dictionary.payload_begin);
  });
  tasks.push_back([&] {
    triples_crc = Crc32c(data + layout.triples.payload_begin,
                         layout.triples.payload_end -
                             layout.triples.payload_begin);
  });
  const size_t total_terms = layout.term_offsets.size();
  const size_t term_stride = std::max<size_t>(
      1024, total_terms / (static_cast<size_t>(pool->thread_count()) * 4 + 1));
  for (size_t begin = 0; begin < total_terms; begin += term_stride) {
    const size_t end = std::min(begin + term_stride, total_terms);
    tasks.push_back([&, begin, end] {
      for (size_t i = begin; i < end; ++i) {
        rdf::Term term = DecodeTermAt(data, layout.term_offsets[i]);
        if (i < layout.resource_count) {
          (*resources)[i] = std::move(term);
        } else {
          (*predicates)[i - layout.resource_count] = std::move(term);
        }
      }
    });
  }
  const size_t triple_stride = std::max<size_t>(
      size_t{64} << 10,
      layout.triple_count / (static_cast<size_t>(pool->thread_count()) * 4 + 1));
  for (size_t begin = 0; begin < layout.triple_count; begin += triple_stride) {
    const size_t end =
        std::min<size_t>(begin + triple_stride, layout.triple_count);
    tasks.push_back([&, begin, end] {
      const char* records = data + layout.triples_begin;
      for (size_t i = begin; i < end; ++i) {
        EncodedTriple& t = (*triples)[i];
        std::memcpy(&t.subject, records + i * 12, 4);
        std::memcpy(&t.predicate, records + i * 12 + 4, 4);
        std::memcpy(&t.object, records + i * 12 + 8, 4);
      }
    });
  }
  pool->ParallelFor(tasks.size(), [&](size_t i) { tasks[i](); });

  // Verify in the streaming walker's order so a multi-corruption file
  // reports the same first error on both paths.
  PARJ_RETURN_NOT_OK(CheckSectionCrc("dictionary", layout.dictionary,
                                     dict_crc));
  ++info->sections_verified;
  PARJ_RETURN_NOT_OK(CheckSectionCrc("triples", layout.triples, triples_crc));
  ++info->sections_verified;
  const uint32_t section_crcs[2] = {layout.dictionary.stored_crc,
                                    layout.triples.stored_crc};
  const uint32_t trailer_computed = Crc32c(section_crcs, sizeof(section_crcs));
  if (layout.trailer_stored_crc != trailer_computed) {
    GlobalSnapshotStats().crc_mismatches.fetch_add(1,
                                                   std::memory_order_relaxed);
    return Status::DataLoss(
        "snapshot section 'trailer' CRC mismatch at offset " +
        std::to_string(layout.trailer_crc_offset - 4));
  }
  GlobalSnapshotStats().crc_sections_verified.fetch_add(
      1, std::memory_order_relaxed);
  ++info->sections_verified;
  return Status::OK();
}

}  // namespace

Status WriteSnapshot(const Database& db, std::ostream& out, uint32_t version) {
  if (version != kSnapshotVersion && version != kSnapshotVersionV2 &&
      version != kSnapshotVersionLegacy) {
    return Status::InvalidArgument("cannot write snapshot version " +
                                   std::to_string(version));
  }
  const bool checked = version >= kSnapshotVersionV2;
  SnapshotWriter writer(out);
  writer.WriteBytes(kMagic, sizeof(kMagic));
  writer.WriteU32(version);
  writer.WriteU32(0);  // flags, reserved

  const dict::Dictionary& dict = db.dictionary();
  if (checked) writer.BeginSection(kSectionDictionary);
  writer.WriteU32(dict.resource_count());
  for (TermId id = 1; id <= dict.resource_count(); ++id) {
    writer.WriteTerm(dict.DecodeResource(id));
  }
  writer.WriteU32(dict.predicate_count());
  for (PredicateId id = 1; id <= dict.predicate_count(); ++id) {
    writer.WriteTerm(dict.DecodePredicate(id));
  }
  if (checked) writer.EndSection();

  PARJ_FAILPOINT("snapshot.write.triples");
  if (version >= kSnapshotVersion) {
    // v3: each predicate's SO replica through the deterministic block
    // encoder — byte-identical output whether the in-memory store is flat
    // (packed here on the fly) or already compressed (reused as is).
    writer.BeginSection(kSectionTables);
    writer.WriteU64(db.total_triples());
    writer.WriteU32(static_cast<uint32_t>(db.predicate_count()));
    for (PredicateId pid = 1; pid <= db.predicate_count(); ++pid) {
      const TableReplica& so = db.entry(pid).table.so();
      if (so.empty()) {
        writer.WriteU32(0);
        writer.WriteU64(0);
      } else if (so.is_compressed()) {
        WritePackedReplica(writer, *so.packed());
      } else {
        WritePackedReplica(
            writer, CompressReplica(so.keys(), so.offsets(), so.values()));
      }
    }
    writer.EndSection();
    writer.WriteTrailer();
  } else {
    if (checked) writer.BeginSection(kSectionTriples);
    writer.WriteU64(db.total_triples());
    for (PredicateId pid = 1; pid <= db.predicate_count(); ++pid) {
      const TableReplica& so = db.entry(pid).table.so();
      // ForEachRun works in both storage modes, emitting the identical
      // (key, run) sequence a flat walk produces.
      so.ForEachRun([&](size_t, TermId key, std::span<const TermId> run) {
        for (TermId o : run) {
          writer.WriteU32(key);
          writer.WriteU32(pid);
          writer.WriteU32(o);
        }
      });
    }
    if (checked) {
      writer.EndSection();
      writer.WriteTrailer();
    }
  }
  if (!writer.good()) {
    return Status::IoError("write failure while saving snapshot");
  }
  GlobalSnapshotStats().snapshots_written.fetch_add(1,
                                                    std::memory_order_relaxed);
  return Status::OK();
}

Status SaveSnapshot(const Database& db, const std::string& path) {
  // Write-then-fsync-then-rename-then-fsync(dir): the snapshot
  // materializes at `path` only complete and durable; any failure
  // (including injected ones) leaves whatever was previously at `path`
  // untouched and removes the temporary. An ofstream flush alone only
  // moves bytes into the page cache — without the fsync of the temporary
  // a crash after rename could expose a *named* but empty snapshot, and
  // without the directory fsync the rename itself can be forgotten.
  const std::string tmp = path + ".tmp";
  {
    Status open_fp = failpoint::Check("snapshot.save.open");
    if (!open_fp.ok()) return open_fp;
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open " + tmp + " for writing");
    Status written = WriteSnapshot(db, out);
    if (written.ok()) {
      out.flush();
      if (!out) written = Status::IoError("flush failure while saving " + tmp);
    }
    if (!written.ok()) {
      out.close();
      std::remove(tmp.c_str());
      return written;
    }
  }
  Status synced = io::FsyncFile(tmp);
  if (!synced.ok()) {
    std::remove(tmp.c_str());
    return synced;
  }
  Status rename_fp = failpoint::Check("snapshot.save.rename");
  if (!rename_fp.ok()) {
    std::remove(tmp.c_str());
    return rename_fp;
  }
  Status renamed = io::RenameDurable(tmp, path);
  if (!renamed.ok()) {
    std::remove(tmp.c_str());
    return renamed;
  }
  return Status::OK();
}

Result<Database> ReadSnapshot(std::istream& in, const DatabaseOptions& options,
                              const SnapshotLoadOptions& load,
                              SnapshotLoadStats* stats) {
  dict::Dictionary dict;
  std::vector<EncodedTriple> triples;
  SnapshotInfo info;
  Stopwatch decode_timer;
  if (load.threads > 1) {
    // Buffered path: slurp, then scan + parallel CRC/decode. A v1 stream
    // (or anything that is not exactly v2) is replayed through the serial
    // walker so its structural diagnostics stay authoritative.
    Stopwatch read_timer;
    std::ostringstream slurp;
    slurp << in.rdbuf();
    std::string buffer = std::move(slurp).str();
    if (stats != nullptr) stats->read_millis = read_timer.ElapsedMillis();
    decode_timer.Restart();
    uint32_t version = 0;
    if (buffer.size() >= sizeof(kMagic) + 4) {
      std::memcpy(&version, buffer.data() + sizeof(kMagic), 4);
    }
    if (version == kSnapshotVersionV2 &&
        std::memcmp(buffer.data(), kMagic, sizeof(kMagic)) == 0) {
      server::ThreadPool pool(load.threads);
      std::vector<rdf::Term> resources;
      std::vector<rdf::Term> predicates;
      PARJ_RETURN_NOT_OK(DecodeSnapshotParallel(buffer.data(), buffer.size(),
                                                &pool, &resources, &predicates,
                                                &triples, &info));
      PARJ_ASSIGN_OR_RETURN(dict, dict::Dictionary::FromTerms(
                                      std::move(resources),
                                      std::move(predicates)));
    } else {
      std::istringstream replay(std::move(buffer));
      PARJ_RETURN_NOT_OK(ParseSnapshot(replay, /*build=*/true, &dict,
                                       &triples, &info));
    }
  } else {
    PARJ_RETURN_NOT_OK(ParseSnapshot(in, /*build=*/true, &dict, &triples,
                                     &info));
  }
  if (stats != nullptr) stats->decode_millis = decode_timer.ElapsedMillis();
  GlobalSnapshotStats().snapshots_loaded.fetch_add(1,
                                                   std::memory_order_relaxed);
  Stopwatch build_timer;
  auto built = Database::Build(std::move(dict), std::move(triples), options);
  if (stats != nullptr) stats->build_millis = build_timer.ElapsedMillis();
  return built;
}

Result<Database> LoadSnapshot(const std::string& path,
                              const DatabaseOptions& options,
                              const SnapshotLoadOptions& load,
                              SnapshotLoadStats* stats) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  return ReadSnapshot(in, options, load, stats);
}

Result<SnapshotInfo> VerifySnapshot(std::istream& in) {
  SnapshotInfo info;
  PARJ_RETURN_NOT_OK(ParseSnapshot(in, /*build=*/false, nullptr, nullptr,
                                   &info));
  return info;
}

Result<SnapshotInfo> VerifySnapshotFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  return VerifySnapshot(in);
}

}  // namespace parj::storage
