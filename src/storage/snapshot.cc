#include "storage/snapshot.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace parj::storage {

namespace {

constexpr char kMagic[8] = {'P', 'A', 'R', 'J', 'S', 'N', 'A', 'P'};
constexpr uint32_t kVersion = 1;
constexpr size_t kMaxStringLength = 1u << 24;  // 16 MB per term, sanity cap

void WriteU32(std::ostream& out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.write(buf, 4);
}

void WriteU64(std::ostream& out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.write(buf, 8);
}

void WriteString(std::ostream& out, const std::string& s) {
  WriteU32(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

Result<uint32_t> ReadU32(std::istream& in) {
  char buf[4];
  if (!in.read(buf, 4)) return Status::IoError("truncated snapshot (u32)");
  uint32_t v;
  std::memcpy(&v, buf, 4);
  return v;
}

Result<uint64_t> ReadU64(std::istream& in) {
  char buf[8];
  if (!in.read(buf, 8)) return Status::IoError("truncated snapshot (u64)");
  uint64_t v;
  std::memcpy(&v, buf, 8);
  return v;
}

Result<std::string> ReadString(std::istream& in) {
  PARJ_ASSIGN_OR_RETURN(uint32_t length, ReadU32(in));
  if (length > kMaxStringLength) {
    return Status::ParseError("snapshot string length exceeds sanity cap");
  }
  std::string s(length, '\0');
  if (length > 0 && !in.read(s.data(), length)) {
    return Status::IoError("truncated snapshot (string)");
  }
  return s;
}

void WriteTerm(std::ostream& out, const rdf::Term& term) {
  out.put(static_cast<char>(term.kind()));
  WriteString(out, term.lexical());
  WriteString(out, term.datatype());
  WriteString(out, term.lang());
}

Result<rdf::Term> ReadTerm(std::istream& in) {
  int kind_byte = in.get();
  if (kind_byte == EOF) return Status::IoError("truncated snapshot (term)");
  PARJ_ASSIGN_OR_RETURN(std::string lexical, ReadString(in));
  PARJ_ASSIGN_OR_RETURN(std::string datatype, ReadString(in));
  PARJ_ASSIGN_OR_RETURN(std::string lang, ReadString(in));
  switch (static_cast<rdf::TermKind>(kind_byte)) {
    case rdf::TermKind::kIri:
      return rdf::Term::Iri(std::move(lexical));
    case rdf::TermKind::kBlank:
      return rdf::Term::Blank(std::move(lexical));
    case rdf::TermKind::kLiteral:
      if (!lang.empty()) {
        return rdf::Term::LangLiteral(std::move(lexical), std::move(lang));
      }
      if (!datatype.empty()) {
        return rdf::Term::TypedLiteral(std::move(lexical),
                                       std::move(datatype));
      }
      return rdf::Term::Literal(std::move(lexical));
  }
  return Status::ParseError("snapshot term has unknown kind " +
                            std::to_string(kind_byte));
}

}  // namespace

Status WriteSnapshot(const Database& db, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  WriteU32(out, kVersion);
  WriteU32(out, 0);  // flags, reserved

  const dict::Dictionary& dict = db.dictionary();
  WriteU32(out, dict.resource_count());
  for (TermId id = 1; id <= dict.resource_count(); ++id) {
    WriteTerm(out, dict.DecodeResource(id));
  }
  WriteU32(out, dict.predicate_count());
  for (PredicateId id = 1; id <= dict.predicate_count(); ++id) {
    WriteTerm(out, dict.DecodePredicate(id));
  }

  WriteU64(out, db.total_triples());
  for (PredicateId pid = 1; pid <= db.predicate_count(); ++pid) {
    const TableReplica& so = db.entry(pid).table.so();
    for (size_t k = 0; k < so.key_count(); ++k) {
      for (TermId o : so.Run(k)) {
        WriteU32(out, so.KeyAt(k));
        WriteU32(out, pid);
        WriteU32(out, o);
      }
    }
  }
  if (!out) return Status::IoError("write failure while saving snapshot");
  return Status::OK();
}

Status SaveSnapshot(const Database& db, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  return WriteSnapshot(db, out);
}

Result<Database> ReadSnapshot(std::istream& in,
                              const DatabaseOptions& options) {
  char magic[sizeof(kMagic)];
  if (!in.read(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError("not a PARJ snapshot (bad magic)");
  }
  PARJ_ASSIGN_OR_RETURN(uint32_t version, ReadU32(in));
  if (version != kVersion) {
    return Status::Unsupported("snapshot version " + std::to_string(version) +
                               " (supported: " + std::to_string(kVersion) +
                               ")");
  }
  PARJ_ASSIGN_OR_RETURN(uint32_t flags, ReadU32(in));
  if (flags != 0) {
    return Status::Unsupported("snapshot uses unknown flags");
  }

  dict::Dictionary dict;
  PARJ_ASSIGN_OR_RETURN(uint32_t resource_count, ReadU32(in));
  for (uint32_t i = 0; i < resource_count; ++i) {
    PARJ_ASSIGN_OR_RETURN(rdf::Term term, ReadTerm(in));
    TermId id = dict.EncodeResource(term);
    if (id != i + 1) {
      return Status::ParseError("snapshot contains duplicate resource terms");
    }
  }
  PARJ_ASSIGN_OR_RETURN(uint32_t predicate_count, ReadU32(in));
  for (uint32_t i = 0; i < predicate_count; ++i) {
    PARJ_ASSIGN_OR_RETURN(rdf::Term term, ReadTerm(in));
    PredicateId id = dict.EncodePredicate(term);
    if (id != i + 1) {
      return Status::ParseError("snapshot contains duplicate predicate terms");
    }
  }

  PARJ_ASSIGN_OR_RETURN(uint64_t triple_count, ReadU64(in));
  std::vector<EncodedTriple> triples;
  // Do not trust the header for a giant up-front allocation; a corrupted
  // count will fail on the truncated read instead.
  triples.reserve(std::min<uint64_t>(triple_count, uint64_t{1} << 24));
  for (uint64_t i = 0; i < triple_count; ++i) {
    EncodedTriple t;
    PARJ_ASSIGN_OR_RETURN(t.subject, ReadU32(in));
    PARJ_ASSIGN_OR_RETURN(t.predicate, ReadU32(in));
    PARJ_ASSIGN_OR_RETURN(t.object, ReadU32(in));
    triples.push_back(t);
  }
  return Database::Build(std::move(dict), std::move(triples), options);
}

Result<Database> LoadSnapshot(const std::string& path,
                              const DatabaseOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  return ReadSnapshot(in, options);
}

}  // namespace parj::storage
