#include "storage/snapshot.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

#include "common/crc32c.h"
#include "common/failpoint.h"

namespace parj::storage {

SnapshotStats& GlobalSnapshotStats() {
  static SnapshotStats* stats = new SnapshotStats();
  return *stats;
}

namespace {

constexpr char kMagic[8] = {'P', 'A', 'R', 'J', 'S', 'N', 'A', 'P'};
constexpr size_t kMaxStringLength = 1u << 24;  // 16 MB per term, sanity cap

// v2 section ids. The trailer id spells "TRLR" so a hex dump of a healthy
// snapshot ends recognizably.
constexpr uint32_t kSectionDictionary = 1;
constexpr uint32_t kSectionTriples = 2;
constexpr uint32_t kSectionTrailer = 0x524C5254u;  // "TRLR" in an LE dump

/// Streaming writer: every byte goes straight to the ostream; while a
/// section is open its payload bytes are folded into a running CRC-32C,
/// which EndSection appends (and records for the trailer).
class SnapshotWriter {
 public:
  explicit SnapshotWriter(std::ostream& out) : out_(out) {}

  void WriteBytes(const void* data, size_t n) {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(n));
    if (crc_active_) crc_ = Crc32cExtend(crc_, data, n);
  }
  void WriteU8(uint8_t v) { WriteBytes(&v, 1); }
  void WriteU32(uint32_t v) {
    char buf[4];
    std::memcpy(buf, &v, 4);
    WriteBytes(buf, 4);
  }
  void WriteU64(uint64_t v) {
    char buf[8];
    std::memcpy(buf, &v, 8);
    WriteBytes(buf, 8);
  }
  void WriteString(const std::string& s) {
    WriteU32(static_cast<uint32_t>(s.size()));
    WriteBytes(s.data(), s.size());
  }
  void WriteTerm(const rdf::Term& term) {
    WriteU8(static_cast<uint8_t>(term.kind()));
    WriteString(term.lexical());
    WriteString(term.datatype());
    WriteString(term.lang());
  }

  void BeginSection(uint32_t id) {
    WriteU32(id);  // header, not covered by the section CRC
    crc_ = 0;
    crc_active_ = true;
  }
  void EndSection() {
    crc_active_ = false;
    section_crcs_.push_back(crc_);
    WriteU32(crc_);
  }
  void WriteTrailer() {
    WriteU32(kSectionTrailer);
    WriteU64(section_crcs_.size());
    WriteU32(Crc32c(section_crcs_.data(),
                    section_crcs_.size() * sizeof(uint32_t)));
  }

  bool good() const { return static_cast<bool>(out_); }

 private:
  std::ostream& out_;
  uint32_t crc_ = 0;
  bool crc_active_ = false;
  std::vector<uint32_t> section_crcs_;
};

/// Streaming reader mirror: tracks the byte offset (for error messages)
/// and folds bytes read while a section is open into a running CRC.
class SnapshotReader {
 public:
  explicit SnapshotReader(std::istream& in) : in_(in) {}

  Status ReadBytes(void* buf, size_t n, const char* what) {
    if (n > 0 &&
        !in_.read(static_cast<char*>(buf), static_cast<std::streamsize>(n))) {
      return Status::IoError("truncated snapshot (" + std::string(what) +
                             ") at offset " + std::to_string(offset_));
    }
    offset_ += n;
    if (crc_active_) crc_ = Crc32cExtend(crc_, buf, n);
    return Status::OK();
  }
  Result<uint8_t> ReadU8(const char* what) {
    uint8_t v;
    PARJ_RETURN_NOT_OK(ReadBytes(&v, 1, what));
    return v;
  }
  Result<uint32_t> ReadU32(const char* what) {
    char buf[4];
    PARJ_RETURN_NOT_OK(ReadBytes(buf, 4, what));
    uint32_t v;
    std::memcpy(&v, buf, 4);
    return v;
  }
  Result<uint64_t> ReadU64(const char* what) {
    char buf[8];
    PARJ_RETURN_NOT_OK(ReadBytes(buf, 8, what));
    uint64_t v;
    std::memcpy(&v, buf, 8);
    return v;
  }
  Result<std::string> ReadString() {
    PARJ_ASSIGN_OR_RETURN(uint32_t length, ReadU32("string length"));
    if (length > kMaxStringLength) {
      return Status::ParseError(
          "snapshot string length exceeds sanity cap at offset " +
          std::to_string(offset_ - 4));
    }
    std::string s(length, '\0');
    PARJ_RETURN_NOT_OK(ReadBytes(s.data(), length, "string"));
    return s;
  }
  Result<rdf::Term> ReadTerm() {
    PARJ_ASSIGN_OR_RETURN(uint8_t kind_byte, ReadU8("term"));
    PARJ_ASSIGN_OR_RETURN(std::string lexical, ReadString());
    PARJ_ASSIGN_OR_RETURN(std::string datatype, ReadString());
    PARJ_ASSIGN_OR_RETURN(std::string lang, ReadString());
    switch (static_cast<rdf::TermKind>(kind_byte)) {
      case rdf::TermKind::kIri:
        return rdf::Term::Iri(std::move(lexical));
      case rdf::TermKind::kBlank:
        return rdf::Term::Blank(std::move(lexical));
      case rdf::TermKind::kLiteral:
        if (!lang.empty()) {
          return rdf::Term::LangLiteral(std::move(lexical), std::move(lang));
        }
        if (!datatype.empty()) {
          return rdf::Term::TypedLiteral(std::move(lexical),
                                         std::move(datatype));
        }
        return rdf::Term::Literal(std::move(lexical));
    }
    return Status::ParseError("snapshot term has unknown kind " +
                              std::to_string(kind_byte) + " at offset " +
                              std::to_string(offset_));
  }

  void BeginCrc() {
    crc_ = 0;
    crc_active_ = true;
  }
  uint32_t EndCrc() {
    crc_active_ = false;
    return crc_;
  }

  /// Reads the stored section CRC (not folded into any CRC) and compares
  /// it to the computed payload CRC.
  Status VerifySectionCrc(const char* section, uint32_t computed) {
    const uint64_t payload_end = offset_;
    PARJ_ASSIGN_OR_RETURN(uint32_t stored, ReadU32("section CRC"));
    if (stored != computed) {
      GlobalSnapshotStats().crc_mismatches.fetch_add(
          1, std::memory_order_relaxed);
      char detail[64];
      std::snprintf(detail, sizeof(detail), " (stored %08x, computed %08x)",
                    stored, computed);
      return Status::DataLoss("snapshot section '" + std::string(section) +
                              "' CRC mismatch at offset " +
                              std::to_string(payload_end) + detail);
    }
    GlobalSnapshotStats().crc_sections_verified.fetch_add(
        1, std::memory_order_relaxed);
    return Status::OK();
  }

  bool AtEof() {
    return in_.peek() == std::istream::traits_type::eof();
  }
  uint64_t offset() const { return offset_; }

 private:
  std::istream& in_;
  uint64_t offset_ = 0;
  uint32_t crc_ = 0;
  bool crc_active_ = false;
};

/// Shared walker behind ReadSnapshot (build == true: populate dict +
/// triples) and VerifySnapshot (build == false: decode and discard).
Status ParseSnapshot(std::istream& in, bool build, dict::Dictionary* dict,
                     std::vector<EncodedTriple>* triples, SnapshotInfo* info) {
  SnapshotReader reader(in);
  char magic[sizeof(kMagic)];
  PARJ_RETURN_NOT_OK(reader.ReadBytes(magic, sizeof(magic), "magic"));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError("not a PARJ snapshot (bad magic)");
  }
  PARJ_FAILPOINT("snapshot.read.header");
  PARJ_ASSIGN_OR_RETURN(uint32_t version, reader.ReadU32("version"));
  if (version != kSnapshotVersion && version != kSnapshotVersionLegacy) {
    return Status::Unsupported("snapshot version " + std::to_string(version) +
                               " (supported: " +
                               std::to_string(kSnapshotVersionLegacy) + ", " +
                               std::to_string(kSnapshotVersion) + ")");
  }
  info->version = version;
  PARJ_ASSIGN_OR_RETURN(uint32_t flags, reader.ReadU32("flags"));
  if (flags != 0) {
    return Status::Unsupported("snapshot uses unknown flags");
  }
  const bool checked = version >= kSnapshotVersion;
  std::vector<uint32_t> section_crcs;

  // --- dictionary section -----------------------------------------------
  PARJ_FAILPOINT("snapshot.read.dictionary");
  if (checked) {
    PARJ_ASSIGN_OR_RETURN(uint32_t id, reader.ReadU32("section id"));
    if (id != kSectionDictionary) {
      return Status::DataLoss(
          "snapshot dictionary section has wrong id " + std::to_string(id) +
          " at offset " + std::to_string(reader.offset() - 4));
    }
    reader.BeginCrc();
  }
  PARJ_ASSIGN_OR_RETURN(uint32_t resource_count,
                        reader.ReadU32("resource count"));
  info->resource_count = resource_count;
  for (uint32_t i = 0; i < resource_count; ++i) {
    PARJ_ASSIGN_OR_RETURN(rdf::Term term, reader.ReadTerm());
    if (build) {
      TermId id = dict->EncodeResource(term);
      if (id != i + 1) {
        return Status::ParseError("snapshot contains duplicate resource terms");
      }
    }
  }
  PARJ_ASSIGN_OR_RETURN(uint32_t predicate_count,
                        reader.ReadU32("predicate count"));
  info->predicate_count = predicate_count;
  for (uint32_t i = 0; i < predicate_count; ++i) {
    PARJ_ASSIGN_OR_RETURN(rdf::Term term, reader.ReadTerm());
    if (build) {
      PredicateId id = dict->EncodePredicate(term);
      if (id != i + 1) {
        return Status::ParseError(
            "snapshot contains duplicate predicate terms");
      }
    }
  }
  if (checked) {
    const uint32_t computed = reader.EndCrc();
    PARJ_RETURN_NOT_OK(reader.VerifySectionCrc("dictionary", computed));
    section_crcs.push_back(computed);
    ++info->sections_verified;
  }

  // --- triples section --------------------------------------------------
  PARJ_FAILPOINT("snapshot.read.triples");
  if (checked) {
    PARJ_ASSIGN_OR_RETURN(uint32_t id, reader.ReadU32("section id"));
    if (id != kSectionTriples) {
      return Status::DataLoss(
          "snapshot triples section has wrong id " + std::to_string(id) +
          " at offset " + std::to_string(reader.offset() - 4));
    }
    reader.BeginCrc();
  }
  PARJ_ASSIGN_OR_RETURN(uint64_t triple_count, reader.ReadU64("triple count"));
  info->triple_count = triple_count;
  if (build) {
    // Do not trust the header for a giant up-front allocation; a corrupted
    // count will fail on the truncated read (or the CRC) instead.
    triples->reserve(std::min<uint64_t>(triple_count, uint64_t{1} << 24));
  }
  for (uint64_t i = 0; i < triple_count; ++i) {
    EncodedTriple t;
    PARJ_ASSIGN_OR_RETURN(t.subject, reader.ReadU32("triple subject"));
    PARJ_ASSIGN_OR_RETURN(t.predicate, reader.ReadU32("triple predicate"));
    PARJ_ASSIGN_OR_RETURN(t.object, reader.ReadU32("triple object"));
    if (build) triples->push_back(t);
  }
  if (checked) {
    const uint32_t computed = reader.EndCrc();
    PARJ_RETURN_NOT_OK(reader.VerifySectionCrc("triples", computed));
    section_crcs.push_back(computed);
    ++info->sections_verified;
  }

  // --- trailer ----------------------------------------------------------
  if (checked) {
    PARJ_FAILPOINT("snapshot.read.trailer");
    PARJ_ASSIGN_OR_RETURN(uint32_t id, reader.ReadU32("trailer id"));
    if (id != kSectionTrailer) {
      return Status::DataLoss("snapshot trailer has wrong id " +
                              std::to_string(id) + " at offset " +
                              std::to_string(reader.offset() - 4));
    }
    PARJ_ASSIGN_OR_RETURN(uint64_t count, reader.ReadU64("trailer count"));
    if (count != section_crcs.size()) {
      return Status::DataLoss("snapshot trailer records " +
                              std::to_string(count) + " sections, expected " +
                              std::to_string(section_crcs.size()));
    }
    PARJ_ASSIGN_OR_RETURN(uint32_t stored, reader.ReadU32("trailer CRC"));
    const uint32_t computed = Crc32c(section_crcs.data(),
                                     section_crcs.size() * sizeof(uint32_t));
    if (stored != computed) {
      GlobalSnapshotStats().crc_mismatches.fetch_add(
          1, std::memory_order_relaxed);
      return Status::DataLoss("snapshot section 'trailer' CRC mismatch at "
                              "offset " + std::to_string(reader.offset() - 4));
    }
    GlobalSnapshotStats().crc_sections_verified.fetch_add(
        1, std::memory_order_relaxed);
    ++info->sections_verified;
    if (!reader.AtEof()) {
      return Status::DataLoss("snapshot has trailing bytes after trailer at "
                              "offset " + std::to_string(reader.offset()));
    }
  }
  info->bytes = reader.offset();
  return Status::OK();
}

}  // namespace

Status WriteSnapshot(const Database& db, std::ostream& out, uint32_t version) {
  if (version != kSnapshotVersion && version != kSnapshotVersionLegacy) {
    return Status::InvalidArgument("cannot write snapshot version " +
                                   std::to_string(version));
  }
  const bool checked = version >= kSnapshotVersion;
  SnapshotWriter writer(out);
  writer.WriteBytes(kMagic, sizeof(kMagic));
  writer.WriteU32(version);
  writer.WriteU32(0);  // flags, reserved

  const dict::Dictionary& dict = db.dictionary();
  if (checked) writer.BeginSection(kSectionDictionary);
  writer.WriteU32(dict.resource_count());
  for (TermId id = 1; id <= dict.resource_count(); ++id) {
    writer.WriteTerm(dict.DecodeResource(id));
  }
  writer.WriteU32(dict.predicate_count());
  for (PredicateId id = 1; id <= dict.predicate_count(); ++id) {
    writer.WriteTerm(dict.DecodePredicate(id));
  }
  if (checked) writer.EndSection();

  PARJ_FAILPOINT("snapshot.write.triples");
  if (checked) writer.BeginSection(kSectionTriples);
  writer.WriteU64(db.total_triples());
  for (PredicateId pid = 1; pid <= db.predicate_count(); ++pid) {
    const TableReplica& so = db.entry(pid).table.so();
    for (size_t k = 0; k < so.key_count(); ++k) {
      for (TermId o : so.Run(k)) {
        writer.WriteU32(so.KeyAt(k));
        writer.WriteU32(pid);
        writer.WriteU32(o);
      }
    }
  }
  if (checked) {
    writer.EndSection();
    writer.WriteTrailer();
  }
  if (!writer.good()) {
    return Status::IoError("write failure while saving snapshot");
  }
  GlobalSnapshotStats().snapshots_written.fetch_add(1,
                                                    std::memory_order_relaxed);
  return Status::OK();
}

Status SaveSnapshot(const Database& db, const std::string& path) {
  // Write-then-rename: the snapshot materializes at `path` only complete
  // and flushed; any failure (including injected ones) leaves whatever
  // was previously at `path` untouched and removes the temporary.
  const std::string tmp = path + ".tmp";
  {
    Status open_fp = failpoint::Check("snapshot.save.open");
    if (!open_fp.ok()) return open_fp;
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open " + tmp + " for writing");
    Status written = WriteSnapshot(db, out);
    if (written.ok()) {
      out.flush();
      if (!out) written = Status::IoError("flush failure while saving " + tmp);
    }
    if (!written.ok()) {
      out.close();
      std::remove(tmp.c_str());
      return written;
    }
  }
  Status rename_fp = failpoint::Check("snapshot.save.rename");
  if (!rename_fp.ok()) {
    std::remove(tmp.c_str());
    return rename_fp;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

Result<Database> ReadSnapshot(std::istream& in,
                              const DatabaseOptions& options) {
  dict::Dictionary dict;
  std::vector<EncodedTriple> triples;
  SnapshotInfo info;
  PARJ_RETURN_NOT_OK(ParseSnapshot(in, /*build=*/true, &dict, &triples,
                                   &info));
  GlobalSnapshotStats().snapshots_loaded.fetch_add(1,
                                                   std::memory_order_relaxed);
  return Database::Build(std::move(dict), std::move(triples), options);
}

Result<Database> LoadSnapshot(const std::string& path,
                              const DatabaseOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  return ReadSnapshot(in, options);
}

Result<SnapshotInfo> VerifySnapshot(std::istream& in) {
  SnapshotInfo info;
  PARJ_RETURN_NOT_OK(ParseSnapshot(in, /*build=*/false, nullptr, nullptr,
                                   &info));
  return info;
}

Result<SnapshotInfo> VerifySnapshotFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  return VerifySnapshot(in);
}

}  // namespace parj::storage
