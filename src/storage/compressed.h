#ifndef PARJ_STORAGE_COMPRESSED_H_
#define PARJ_STORAGE_COMPRESSED_H_

// Blocked FOR/delta bit-packed columns for compressed TableReplicas
// (DESIGN.md §13).
//
// A replica's three arrays are each cut into fixed 128-id blocks and
// bit-packed with the narrowest width that represents the block:
//
//   keys     strictly increasing  -> delta-coded gaps, block minima kept
//            uncompressed as the two-level search directory;
//   offsets  stored as the CUMULATIVE length excess over a min-length
//            ramp (offsets[b*128+i] == base[b] + i*min_len[b] + field_i),
//            plus one uncompressed u64 base offset per block (offsets
//            themselves grow past 2^32). Uniform-length blocks pack to
//            width 0, and any offset random-accesses in O(1);
//   values   sorted per run, not globally -> per-block adaptive: delta
//            when the block happens to be non-decreasing, FOR over the
//            block minimum otherwise.
//
// Every probe decodes EXACTLY ONE block into a cursor-owned scratch
// buffer via the simd::Unpack* kernels; the per-block directory arrays
// (minima / widths / word offsets) are what the search and the batched
// prefetcher touch first. Encoding is deterministic — the same arrays
// always produce the same packed bytes — which is what lets snapshot v3
// write packed sections regardless of the in-memory store mode.

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"

namespace parj::storage {

/// Ids per packed block. 128 keeps a decoded block inside two cache
/// lines of u32s and makes block math a shift/mask.
inline constexpr size_t kPackBlock = 128;

/// Block meta byte: low 6 bits = field width (0..32), bit 6 = delta flag.
inline constexpr uint8_t kPackWidthMask = 0x3F;
inline constexpr uint8_t kPackDeltaFlag = 0x40;

/// One bit-packed column: fields packed LSB-first into little-endian u64
/// words, one width per block, plus the per-block directory. A zero guard
/// word follows the payload (the AVX2 gather may read 3 bytes past a
/// block).
struct PackedColumn {
  uint32_t size = 0;                 ///< logical element count
  std::vector<uint64_t> words;       ///< packed payload + 1 guard word
  std::vector<uint32_t> block_word;  ///< first payload word of each block
  std::vector<uint8_t> meta;         ///< width | kPackDeltaFlag per block

  size_t block_count() const { return meta.size(); }
  size_t BlockLen(size_t b) const {
    return b + 1 < meta.size() ? kPackBlock
                               : static_cast<size_t>(size) - b * kPackBlock;
  }
  size_t HeapBytes() const {
    return words.size() * sizeof(uint64_t) +
           block_word.size() * sizeof(uint32_t) + meta.size();
  }
  size_t AllocatedBytes() const {
    return words.capacity() * sizeof(uint64_t) +
           block_word.capacity() * sizeof(uint32_t) + meta.capacity();
  }
};

/// Strictly increasing u32 column (replica keys). Every block is
/// delta-coded; minima[b] is the block's first key and doubles as the
/// two-level search directory entry.
struct PackedKeys {
  PackedColumn col;
  std::vector<TermId> minima;
};

/// CSR offsets, packed as each key's cumulative length excess over the
/// block's min-length ramp: offsets[b*128+i] == base[b] + i*min_len[b] +
/// field_i. base[b] is the offset of the block's first key
/// (offsets[b*128]); min_len[b] the block's minimum run length. The ramp
/// form keeps uniform-length blocks at width 0 AND gives O(1) random
/// access to any offset (fields are independent, not a prefix chain).
struct PackedLengths {
  PackedColumn col;                ///< col.size == key count
  std::vector<uint64_t> base;
  std::vector<uint32_t> min_len;
  uint64_t total = 0;              ///< offsets.back() == pair count
};

/// Field `i` of block `b` of a packed column, extracted in O(1).
inline uint32_t PackedFieldU32(const PackedColumn& col, size_t b, size_t i) {
  const unsigned width = col.meta[b] & kPackWidthMask;
  if (width == 0) return 0;
  const size_t bit = i * width;
  const uint64_t* words = col.words.data() + col.block_word[b];
  const size_t word = bit >> 6;
  const unsigned off = bit & 63u;
  uint64_t v = words[word] >> off;
  if (off + width > 64) v |= words[word + 1] << (64 - off);
  return static_cast<uint32_t>(v & ((uint64_t{1} << width) - 1));
}

/// Concatenated value runs, per-block adaptive delta/FOR.
struct PackedValues {
  PackedColumn col;
  std::vector<TermId> minima;  ///< delta: first value; FOR: block minimum
};

/// Deterministic builders (shared by TableReplica::Compress and the v3
/// snapshot writer). `keys` must be strictly increasing; `offsets` has
/// keys.size()+1 monotone entries; all sizes must fit in u32.
PackedKeys PackKeys(std::span<const TermId> keys);
PackedLengths PackLengths(std::span<const uint64_t> offsets);
PackedValues PackValues(std::span<const TermId> values);

/// Block decoders. `out` must hold BlockLen(b) elements (length decoder:
/// BlockLen(b)+1 — it emits the block's offsets prefix, out[i] ==
/// offsets[b*128 + i]).
void DecodeKeyBlock(const PackedKeys& pk, size_t b, uint32_t* out);
void DecodeValueBlock(const PackedValues& pv, size_t b, uint32_t* out);
void DecodeLengthBlock(const PackedLengths& pl, size_t b, uint64_t* out);

/// Single-field reads off the packed lengths (no block decode).
uint64_t LengthAt(const PackedLengths& pl, size_t pos);

/// All three packed columns of one replica. `generation` is process-unique
/// (assigned by CompressReplica) so decode caches keyed on it can never
/// confuse two replicas, even when a compaction swap reuses addresses.
struct CompressedReplica {
  PackedKeys keys;
  PackedLengths lens;
  PackedValues vals;
  TermId min_key = 0;
  TermId max_key = 0;
  uint64_t generation = 0;

  size_t key_count() const { return keys.col.size; }
  size_t pair_count() const { return vals.col.size; }
  size_t HeapBytes() const;
  size_t AllocatedBytes() const;

  /// Prefetches the key-block directory entries the two-level search for
  /// a probe expected near key position `pos` will touch (batched
  /// probing's stage-A analogue of prefetching &keys[pos]).
  void PrefetchProbe(size_t pos) const {
    size_t b = pos / kPackBlock;
    const size_t nb = keys.col.block_count();
    if (nb == 0) return;
    if (b >= nb) b = nb - 1;
    __builtin_prefetch(&keys.minima[b]);
    __builtin_prefetch(&keys.col.block_word[b]);
  }

  /// Prefetches the length directory for key position `pos` (stage-C
  /// analogue of prefetching the run head).
  void PrefetchRun(size_t pos) const {
    const size_t b = pos / kPackBlock;
    if (b >= lens.col.block_count()) return;
    __builtin_prefetch(&lens.base[b]);
    __builtin_prefetch(lens.col.words.data() + lens.col.block_word[b]);
  }
};

/// Packs a flat replica. Deterministic; assigns a fresh generation.
CompressedReplica CompressReplica(std::span<const TermId> keys,
                                  std::span<const uint64_t> offsets,
                                  std::span<const TermId> values);

/// Per-(worker, plan-depth) decode cache: one decoded key block, one
/// length-prefix block, one value block, plus a scratch vector for
/// materialized runs. All probe-side decoding funnels through a cursor so
/// repeated probes into the same block pay the unpack once. NOT
/// thread-safe — each worker owns its cursors.
class ReplicaCursor {
 public:
  /// The decoded key block `b` (cached).
  std::span<const TermId> KeyBlock(const CompressedReplica& r, size_t b) {
    if (key_gen_ != r.generation || key_block_ != b) {
      DecodeKeyBlock(r.keys, b, key_buf_);
      key_gen_ = r.generation;
      key_block_ = b;
    }
    return {key_buf_, r.keys.col.BlockLen(b)};
  }

  TermId KeyAt(const CompressedReplica& r, size_t pos) {
    return KeyBlock(r, pos / kPackBlock)[pos % kPackBlock];
  }

  /// Index of the currently cached key block for `r`, or SIZE_MAX. Lets
  /// LowerBoundKeys resolve probes that land in the cached block without
  /// re-searching the block directory.
  size_t CachedKeyBlockIndex(const CompressedReplica& r) const {
    return key_gen_ == r.generation ? key_block_ : SIZE_MAX;
  }

  /// Records that keys[pos] == key (e.g. after a confirmed probe hit),
  /// so the next KeyAtMemo at the same position skips the block decode.
  void NoteKey(const CompressedReplica& r, size_t pos, TermId key) {
    memo_gen_ = r.generation;
    memo_pos_ = pos;
    memo_key_ = key;
  }

  /// KeyAt through the single-position memo: an adaptive probe's distance
  /// check reads the key at the previous hit's position, which NoteKey
  /// recorded without ever decoding that block.
  TermId KeyAtMemo(const CompressedReplica& r, size_t pos) {
    if (memo_gen_ == r.generation && memo_pos_ == pos) return memo_key_;
    return KeyAt(r, pos);
  }

  /// [begin, end) value offsets of key position `pos`. O(1): offsets are
  /// a min-length ramp plus an independently extractable excess field —
  /// no block decode, no cache traffic on the probe path.
  struct OffsetPair {
    uint64_t begin;
    uint64_t end;
  };
  OffsetPair OffsetPairAt(const CompressedReplica& r, size_t pos) {
    const PackedLengths& pl = r.lens;
    const size_t b = pos / kPackBlock;
    const size_t i = pos % kPackBlock;
    const uint64_t min_len = pl.min_len[b];
    const uint64_t o0 =
        pl.base[b] + i * min_len + PackedFieldU32(pl.col, b, i);
    const uint64_t o1 =
        i + 1 < pl.col.BlockLen(b)
            ? pl.base[b] + (i + 1) * min_len + PackedFieldU32(pl.col, b, i + 1)
            : (b + 1 < pl.base.size() ? pl.base[b + 1] : pl.total);
    return {o0, o1};
  }

  uint64_t OffsetAt(const CompressedReplica& r, size_t pos) {
    if (pos >= r.lens.col.size) return r.lens.total;
    return OffsetPairAt(r, pos).begin;
  }

  size_t RunLength(const CompressedReplica& r, size_t pos) {
    const OffsetPair o = OffsetPairAt(r, pos);
    return static_cast<size_t>(o.end - o.begin);
  }

  /// The decoded value block `b` (cached).
  std::span<const TermId> ValueBlock(const CompressedReplica& r, size_t b) {
    if (val_gen_ != r.generation || val_block_ != b) {
      DecodeValueBlock(r.vals, b, val_buf_);
      val_gen_ = r.generation;
      val_block_ = b;
    }
    return {val_buf_, r.vals.col.BlockLen(b)};
  }

  /// The value run of key position `pos`. A run contained in a single
  /// value block aliases the cursor's cached block (zero copy); a run
  /// spanning blocks is materialized into the cursor's run scratch. The
  /// span is valid until the next value-block access on this cursor
  /// (RunAt / RunContains / ValueBlock).
  std::span<const TermId> RunAt(const CompressedReplica& r, size_t pos);

  /// Membership test inside the run of key position `pos` without
  /// materializing it (runs are sorted ascending).
  bool RunContains(const CompressedReplica& r, size_t pos, TermId value);

 private:
  uint64_t key_gen_ = 0;
  uint64_t val_gen_ = 0;
  uint64_t memo_gen_ = 0;
  size_t memo_pos_ = SIZE_MAX;
  TermId memo_key_ = 0;
  size_t key_block_ = SIZE_MAX;
  size_t val_block_ = SIZE_MAX;
  alignas(64) TermId key_buf_[kPackBlock];
  alignas(64) TermId val_buf_[kPackBlock];
  std::vector<TermId> run_buf_;
};

/// Content facts a probe needs: the std::lower_bound position of `value`
/// in the replica's key array and whether it is an exact hit. Computed by
/// the two-level search — upper_bound on block minima, then one decoded
/// block — and consumed by the trajectory-replay kernels in join/search.
struct LowerBoundResult {
  size_t pos = 0;
  bool found = false;
};
LowerBoundResult LowerBoundKeys(const CompressedReplica& r, TermId value,
                                ReplicaCursor* rc);

}  // namespace parj::storage

#endif  // PARJ_STORAGE_COMPRESSED_H_
