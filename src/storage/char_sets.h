#ifndef PARJ_STORAGE_CHAR_SETS_H_
#define PARJ_STORAGE_CHAR_SETS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace parj::server {
class ThreadPool;
}  // namespace parj::server

namespace parj::storage {

class Database;

/// Characteristic-set statistics (Neumann & Moerkotte, ICDE 2011 — the
/// estimation technique the paper's §4.3 names as planned future work for
/// PARJ's optimizer). A subject's characteristic set is the set of
/// properties it has; star-query cardinalities are estimated by summing
/// over all stored sets that contain the queried property combination.
///
/// Estimates of *distinct subject* counts are exact (when no truncation
/// occurred); estimates of star result sizes assume independence of the
/// per-property multiplicities within a set, which is exact whenever all
/// but one property is single-valued.
class CharacteristicSets {
 public:
  CharacteristicSets() = default;

  /// Groups all subjects of `db` by their property set. If the data has
  /// more than `max_sets` distinct sets, the rarest are merged into their
  /// closest kept superset... (sets beyond the cap are simply dropped and
  /// `truncated()` reports it; estimates then under-count). The per-table
  /// entry collection parallelizes on `pool` when given; grouping stays
  /// serial (a sort), so the result is pool-independent.
  static CharacteristicSets Build(const Database& db, size_t max_sets = 65536,
                                  server::ThreadPool* pool = nullptr);

  /// Number of distinct subjects whose property set contains all of
  /// `predicates` (sorted or not; duplicates ignored).
  double EstimateDistinctSubjects(std::vector<PredicateId> predicates) const;

  /// Estimated number of rows of the subject-star query that binds every
  /// predicate in `predicates` with a distinct object variable.
  double EstimateStarCardinality(std::vector<PredicateId> predicates) const;

  size_t set_count() const { return sets_.size(); }
  bool truncated() const { return truncated_; }
  uint64_t subject_count() const { return subject_count_; }

 private:
  struct SetStat {
    std::vector<PredicateId> predicates;   // sorted
    uint64_t subjects = 0;                 // distinct subjects with this set
    std::vector<uint64_t> triple_counts;   // per predicate, same order
  };

  static bool ContainsAll(const std::vector<PredicateId>& superset,
                          const std::vector<PredicateId>& subset);

  std::vector<SetStat> sets_;
  uint64_t subject_count_ = 0;
  bool truncated_ = false;
};

}  // namespace parj::storage

#endif  // PARJ_STORAGE_CHAR_SETS_H_
