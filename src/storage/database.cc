#include "storage/database.h"

#include <algorithm>
#include <optional>

#include "common/logging.h"
#include "common/timer.h"
#include "server/thread_pool.h"

namespace parj::storage {

namespace {

/// Computes intersection size and one-sided pair sums for two sorted
/// distinct-key columns via a linear merge.
PairJoinStat IntersectColumns(const TableReplica& left,
                              const TableReplica& right) {
  PairJoinStat stat;
  std::span<const TermId> a = left.keys();
  std::span<const TermId> b = right.keys();
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++stat.intersection;
      stat.pairs_left += left.RunLength(i);
      stat.pairs_right += right.RunLength(j);
      ++i;
      ++j;
    }
  }
  return stat;
}

void InitReplicaMeta(const TableReplica& replica, TermId max_resource_id,
                     const DatabaseOptions& options, ReplicaMeta* meta) {
  meta->histogram = EquiDepthHistogram::Build(replica.keys(),
                                              replica.offsets(),
                                              options.histogram_buckets);
  if (options.build_id_position_indexes && !replica.empty()) {
    meta->id_index =
        index::IdPositionIndex::Build(replica.keys(), max_resource_id);
    meta->has_index = true;
  }
  meta->window_binary = options.default_binary_window;
  meta->window_index = options.default_index_window;
  const double gap = replica.AverageKeyGap();
  meta->threshold_binary =
      join::WindowToValueThreshold(meta->window_binary, gap);
  meta->threshold_index = join::WindowToValueThreshold(meta->window_index, gap);
}

/// Runs body(0..n-1) on `pool`, or inline when no pool is available. All
/// parallel build loops funnel through this, so serial and parallel
/// builds execute the identical per-index work.
void RunIndexed(server::ThreadPool* pool, size_t n,
                const std::function<void(size_t)>& body) {
  if (pool != nullptr && n > 1) {
    pool->ParallelFor(n, body);
  } else {
    for (size_t i = 0; i < n; ++i) body(i);
  }
}

/// Contiguous near-equal split of [0, n) into `parts` ranges.
std::vector<std::pair<size_t, size_t>> SplitRanges(size_t n, size_t parts) {
  parts = std::max<size_t>(1, std::min(parts, std::max<size_t>(1, n)));
  std::vector<std::pair<size_t, size_t>> ranges;
  ranges.reserve(parts);
  const size_t base = n / parts;
  const size_t extra = n % parts;
  size_t begin = 0;
  for (size_t r = 0; r < parts; ++r) {
    const size_t len = base + (r < extra ? 1 : 0);
    ranges.emplace_back(begin, begin + len);
    begin += len;
  }
  return ranges;
}

}  // namespace

Result<Database> Database::Build(dict::Dictionary dict,
                                 std::vector<EncodedTriple> triples,
                                 const DatabaseOptions& options,
                                 BuildTimings* timings) {
  Database db;
  db.options_ = options;
  db.dict_ = std::move(dict);

  const size_t predicate_count = db.dict_.predicate_count();
  const TermId max_id = db.dict_.resource_count();

  // A private pool for the build; sized by build_threads, absent (serial)
  // otherwise. Scoped so its workers join before Build returns.
  std::optional<server::ThreadPool> pool_storage;
  if (options.build_threads > 1) pool_storage.emplace(options.build_threads);
  server::ThreadPool* pool =
      pool_storage.has_value() ? &*pool_storage : nullptr;

  // --- Grouping: validate + counting pre-pass + exact-size scatter ------
  // One sweep per range counts triples per predicate and validates IDs;
  // prefix sums then give every (range, predicate) its exact write slice,
  // so the scatter is reallocation-free, race-free, and produces the same
  // per-predicate order as a serial append.
  Stopwatch group_timer;
  const auto ranges = SplitRanges(
      triples.size(), pool != nullptr ? static_cast<size_t>(
                                            options.build_threads) * 4
                                      : 1);
  const size_t range_count = ranges.size();
  std::vector<std::vector<uint64_t>> counts(
      range_count, std::vector<uint64_t>(predicate_count, 0));
  struct RangeError {
    size_t triple_index = SIZE_MAX;
    Status status = Status::OK();
  };
  std::vector<RangeError> range_errors(range_count);
  RunIndexed(pool, range_count, [&](size_t r) {
    std::vector<uint64_t>& local = counts[r];
    for (size_t i = ranges[r].first; i < ranges[r].second; ++i) {
      const EncodedTriple& t = triples[i];
      if (t.predicate == kInvalidPredicateId ||
          t.predicate > predicate_count) {
        range_errors[r] = RangeError{
            i, Status::InvalidArgument(
                   "triple has predicate id " + std::to_string(t.predicate) +
                   " outside [1, " + std::to_string(predicate_count) + "]")};
        return;
      }
      if (t.subject == kInvalidTermId || t.object == kInvalidTermId ||
          t.subject > max_id || t.object > max_id) {
        range_errors[r] = RangeError{
            i, Status::InvalidArgument(
                   "triple has resource id outside dictionary")};
        return;
      }
      ++local[t.predicate - 1];
    }
  });
  // Deterministic error selection: the bad triple earliest in input order
  // wins, matching what the old serial sweep reported.
  {
    const RangeError* first = nullptr;
    for (const RangeError& e : range_errors) {
      if (e.triple_index != SIZE_MAX &&
          (first == nullptr || e.triple_index < first->triple_index)) {
        first = &e;
      }
    }
    if (first != nullptr) return first->status;
  }

  // offsets[r][p] = write cursor for range r inside grouped[p].
  std::vector<std::vector<uint64_t>> offsets(
      range_count, std::vector<uint64_t>(predicate_count, 0));
  std::vector<uint64_t> totals(predicate_count, 0);
  for (size_t p = 0; p < predicate_count; ++p) {
    uint64_t running = 0;
    for (size_t r = 0; r < range_count; ++r) {
      offsets[r][p] = running;
      running += counts[r][p];
    }
    totals[p] = running;
  }
  std::vector<std::vector<std::pair<TermId, TermId>>> grouped(predicate_count);
  RunIndexed(pool, predicate_count, [&](size_t p) {
    grouped[p].resize(totals[p]);
  });
  RunIndexed(pool, range_count, [&](size_t r) {
    std::vector<uint64_t> cursor = offsets[r];
    for (size_t i = ranges[r].first; i < ranges[r].second; ++i) {
      const EncodedTriple& t = triples[i];
      grouped[t.predicate - 1][cursor[t.predicate - 1]++] =
          std::make_pair(t.subject, t.object);
    }
  });
  triples.clear();
  triples.shrink_to_fit();
  if (timings != nullptr) timings->group_millis = group_timer.ElapsedMillis();

  // --- Per-predicate table builds ---------------------------------------
  Stopwatch tables_timer;
  db.entries_.resize(predicate_count);
  RunIndexed(pool, predicate_count, [&](size_t p) {
    db.entries_[p].table = PropertyTable::Build(std::move(grouped[p]));
  });
  for (size_t p = 0; p < predicate_count; ++p) {
    db.total_triples_ += db.entries_[p].table.triple_count();
  }
  if (timings != nullptr) {
    timings->tables_millis = tables_timer.ElapsedMillis();
  }

  // --- Replica metadata (histogram, ID index, default thresholds) -------
  Stopwatch meta_timer;
  RunIndexed(pool, predicate_count * 2, [&](size_t slot) {
    PropertyEntry& entry = db.entries_[slot / 2];
    const ReplicaKind kind =
        (slot % 2 == 0) ? ReplicaKind::kSO : ReplicaKind::kOS;
    InitReplicaMeta(entry.table.replica(kind), max_id, options,
                    &entry.meta(kind));
  });
  if (timings != nullptr) timings->meta_millis = meta_timer.ElapsedMillis();

  // --- Derived statistics -----------------------------------------------
  if (options.precompute_pairwise_stats) {
    Stopwatch pair_timer;
    db.ComputePairStats(options.pairwise_max_columns, pool);
    if (timings != nullptr) {
      timings->pair_stats_millis = pair_timer.ElapsedMillis();
    }
  }
  if (options.build_characteristic_sets) {
    Stopwatch char_timer;
    db.char_sets_ =
        CharacteristicSets::Build(db, options.characteristic_max_sets, pool);
    if (timings != nullptr) {
      timings->char_sets_millis = char_timer.ElapsedMillis();
    }
  }

  // --- Compression (last) -----------------------------------------------
  // Every derived structure above (histograms, ID indexes, pairwise stats,
  // characteristic sets) reads the flat arrays, so the re-encode runs only
  // after all of them are built. Per-table packing is independent work.
  if (options.compression == Compression::kBlocked) {
    RunIndexed(pool, predicate_count, [&](size_t p) {
      db.entries_[p].table.Compress();
    });
  }
  return db;
}

uint64_t Database::PairKey(PredicateId p1, Role role1, PredicateId p2,
                           Role role2) {
  uint64_t a = (static_cast<uint64_t>(p1) << 1) | static_cast<uint64_t>(role1);
  uint64_t b = (static_cast<uint64_t>(p2) << 1) | static_cast<uint64_t>(role2);
  if (a > b) std::swap(a, b);
  return (a << 32) | b;
}

void Database::ComputePairStats(size_t max_columns, server::ThreadPool* pool) {
  const size_t columns = entries_.size() * 2;
  if (columns > max_columns) {
    PARJ_LOG(Info) << "skipping pairwise stats: " << columns
                   << " property columns exceed limit " << max_columns;
    return;
  }
  // Enumerate each unordered column pair once (column = (predicate, role)),
  // compute all intersections in parallel, then insert serially (the map
  // itself is not thread-safe; insertion is trivial next to the merges).
  struct ColumnPair {
    uint32_t col1;
    uint32_t col2;
  };
  std::vector<ColumnPair> pairs;
  pairs.reserve(columns * (columns + 1) / 2);
  for (uint32_t c1 = 0; c1 < columns; ++c1) {
    for (uint32_t c2 = c1; c2 < columns; ++c2) {
      pairs.push_back(ColumnPair{c1, c2});
    }
  }
  std::vector<PairJoinStat> stats(pairs.size());
  RunIndexed(pool, pairs.size(), [&](size_t i) {
    const Role r1 = static_cast<Role>(pairs[i].col1 & 1);
    const Role r2 = static_cast<Role>(pairs[i].col2 & 1);
    const TableReplica& left =
        entries_[pairs[i].col1 >> 1].table.replica(ReplicaForKeyRole(r1));
    const TableReplica& right =
        entries_[pairs[i].col2 >> 1].table.replica(ReplicaForKeyRole(r2));
    stats[i] = IntersectColumns(left, right);
  });
  pair_stats_.reserve(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    pair_stats_.emplace(
        PairKey(static_cast<PredicateId>((pairs[i].col1 >> 1) + 1),
                static_cast<Role>(pairs[i].col1 & 1),
                static_cast<PredicateId>((pairs[i].col2 >> 1) + 1),
                static_cast<Role>(pairs[i].col2 & 1)),
        stats[i]);
  }
  has_pair_stats_ = true;
}

std::optional<PairJoinStat> Database::GetPairStat(PredicateId p1, Role role1,
                                                  PredicateId p2,
                                                  Role role2) const {
  if (!has_pair_stats_) return std::nullopt;
  auto it = pair_stats_.find(PairKey(p1, role1, p2, role2));
  if (it == pair_stats_.end()) return std::nullopt;
  PairJoinStat stat = it->second;
  // PairKey normalizes column order; flip the sums when the caller's
  // (p1, role1) is the bigger column.
  const uint64_t a =
      (static_cast<uint64_t>(p1) << 1) | static_cast<uint64_t>(role1);
  const uint64_t b =
      (static_cast<uint64_t>(p2) << 1) | static_cast<uint64_t>(role2);
  if (a > b) std::swap(stat.pairs_left, stat.pairs_right);
  return stat;
}

const PropertyEntry& Database::entry(PredicateId pid) const {
  PARJ_CHECK(pid != kInvalidPredicateId && pid <= entries_.size())
      << "predicate id out of range: " << pid;
  return entries_[pid - 1];
}

const PropertyEntry* Database::FindEntry(PredicateId pid) const {
  if (pid == kInvalidPredicateId || pid > entries_.size()) return nullptr;
  return &entries_[pid - 1];
}

void Database::Calibrate(const join::CalibrationOptions& options) {
  // Every (entry, replica) calibration is independent and writes only its
  // own ReplicaMeta, so the loop parallelizes directly.
  std::optional<server::ThreadPool> pool_storage;
  if (options.threads > 1) pool_storage.emplace(options.threads);
  server::ThreadPool* pool =
      pool_storage.has_value() ? &*pool_storage : nullptr;
  RunIndexed(pool, entries_.size() * 2, [&](size_t slot) {
    PropertyEntry& entry = entries_[slot / 2];
    const ReplicaKind kind =
        (slot % 2 == 0) ? ReplicaKind::kSO : ReplicaKind::kOS;
    const TableReplica& replica = entry.table.replica(kind);
    ReplicaMeta& meta = entry.meta(kind);
    if (replica.key_count() < 64) return;  // too small to measure
    // Calibration measures the key distribution, not the storage layout;
    // a compressed replica is measured on its decoded key array so both
    // modes calibrate to identical windows.
    std::vector<TermId> scratch;
    const std::span<const TermId> keys =
        replica.is_compressed() ? replica.DecodedKeys(&scratch)
                                : replica.keys();
    join::CalibrationResult binary = join::CalibrateWindow(
        keys, join::CalibrationMode::kVersusBinarySearch, nullptr, options);
    meta.window_binary = binary.window_positions;
    meta.threshold_binary = binary.threshold_value;
    if (meta.has_index) {
      join::CalibrationResult indexed = join::CalibrateWindow(
          keys, join::CalibrationMode::kVersusIndexLookup, &meta.id_index,
          options);
      meta.window_index = indexed.window_positions;
      meta.threshold_index = indexed.threshold_value;
    }
  });
}

size_t Database::TableMemoryUsage() const {
  size_t bytes = 0;
  for (const PropertyEntry& entry : entries_) {
    bytes += entry.table.MemoryUsage();
    bytes += entry.so_meta.id_index.MemoryUsage();
    bytes += entry.os_meta.id_index.MemoryUsage();
  }
  bytes += pair_stats_.size() * (sizeof(uint64_t) + sizeof(PairJoinStat) + 16);
  return bytes;
}

size_t Database::TableAllocatedUsage() const {
  size_t bytes = 0;
  for (const PropertyEntry& entry : entries_) {
    bytes += entry.table.AllocatedBytes();
    bytes += entry.so_meta.id_index.MemoryUsage();
    bytes += entry.os_meta.id_index.MemoryUsage();
  }
  bytes += pair_stats_.size() * (sizeof(uint64_t) + sizeof(PairJoinStat) + 16);
  return bytes;
}

size_t Database::TableRawBytes() const {
  size_t bytes = 0;
  for (const PropertyEntry& entry : entries_) {
    bytes += entry.table.RawBytes();
  }
  return bytes;
}

}  // namespace parj::storage
