#include "storage/database.h"

#include <algorithm>

#include "common/logging.h"

namespace parj::storage {

namespace {

/// Computes intersection size and one-sided pair sums for two sorted
/// distinct-key columns via a linear merge.
PairJoinStat IntersectColumns(const TableReplica& left,
                              const TableReplica& right) {
  PairJoinStat stat;
  std::span<const TermId> a = left.keys();
  std::span<const TermId> b = right.keys();
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++stat.intersection;
      stat.pairs_left += left.RunLength(i);
      stat.pairs_right += right.RunLength(j);
      ++i;
      ++j;
    }
  }
  return stat;
}

void InitReplicaMeta(const TableReplica& replica, TermId max_resource_id,
                     const DatabaseOptions& options, ReplicaMeta* meta) {
  meta->histogram = EquiDepthHistogram::Build(replica.keys(),
                                              replica.offsets(),
                                              options.histogram_buckets);
  if (options.build_id_position_indexes && !replica.empty()) {
    meta->id_index =
        index::IdPositionIndex::Build(replica.keys(), max_resource_id);
    meta->has_index = true;
  }
  meta->window_binary = options.default_binary_window;
  meta->window_index = options.default_index_window;
  const double gap = replica.AverageKeyGap();
  meta->threshold_binary =
      join::WindowToValueThreshold(meta->window_binary, gap);
  meta->threshold_index = join::WindowToValueThreshold(meta->window_index, gap);
}

}  // namespace

Result<Database> Database::Build(dict::Dictionary dict,
                                 std::vector<EncodedTriple> triples,
                                 const DatabaseOptions& options) {
  Database db;
  db.options_ = options;
  db.dict_ = std::move(dict);

  const size_t predicate_count = db.dict_.predicate_count();
  std::vector<std::vector<std::pair<TermId, TermId>>> grouped(predicate_count);
  for (const EncodedTriple& t : triples) {
    if (t.predicate == kInvalidPredicateId || t.predicate > predicate_count) {
      return Status::InvalidArgument(
          "triple has predicate id " + std::to_string(t.predicate) +
          " outside [1, " + std::to_string(predicate_count) + "]");
    }
    if (t.subject == kInvalidTermId || t.object == kInvalidTermId ||
        t.subject > db.dict_.resource_count() ||
        t.object > db.dict_.resource_count()) {
      return Status::InvalidArgument("triple has resource id outside dictionary");
    }
    grouped[t.predicate - 1].emplace_back(t.subject, t.object);
  }
  triples.clear();
  triples.shrink_to_fit();

  const TermId max_id = db.dict_.resource_count();
  db.entries_.resize(predicate_count);
  for (size_t p = 0; p < predicate_count; ++p) {
    PropertyEntry& entry = db.entries_[p];
    entry.table = PropertyTable::Build(std::move(grouped[p]));
    db.total_triples_ += entry.table.triple_count();
    InitReplicaMeta(entry.table.so(), max_id, options, &entry.so_meta);
    InitReplicaMeta(entry.table.os(), max_id, options, &entry.os_meta);
  }

  if (options.precompute_pairwise_stats) {
    db.ComputePairStats(options.pairwise_max_columns);
  }
  if (options.build_characteristic_sets) {
    db.char_sets_ =
        CharacteristicSets::Build(db, options.characteristic_max_sets);
  }
  return db;
}

uint64_t Database::PairKey(PredicateId p1, Role role1, PredicateId p2,
                           Role role2) {
  uint64_t a = (static_cast<uint64_t>(p1) << 1) | static_cast<uint64_t>(role1);
  uint64_t b = (static_cast<uint64_t>(p2) << 1) | static_cast<uint64_t>(role2);
  if (a > b) std::swap(a, b);
  return (a << 32) | b;
}

void Database::ComputePairStats(size_t max_columns) {
  const size_t columns = entries_.size() * 2;
  if (columns > max_columns) {
    PARJ_LOG(Info) << "skipping pairwise stats: " << columns
                   << " property columns exceed limit " << max_columns;
    return;
  }
  for (size_t p1 = 0; p1 < entries_.size(); ++p1) {
    for (int r1 = 0; r1 < 2; ++r1) {
      const TableReplica& left =
          entries_[p1].table.replica(ReplicaForKeyRole(static_cast<Role>(r1)));
      for (size_t p2 = p1; p2 < entries_.size(); ++p2) {
        for (int r2 = 0; r2 < 2; ++r2) {
          // Enumerate each unordered column pair once.
          const uint64_t col1 = (p1 << 1) | static_cast<size_t>(r1);
          const uint64_t col2 = (p2 << 1) | static_cast<size_t>(r2);
          if (col2 < col1) continue;
          const TableReplica& right = entries_[p2].table.replica(
              ReplicaForKeyRole(static_cast<Role>(r2)));
          PairJoinStat stat = IntersectColumns(left, right);
          pair_stats_.emplace(
              PairKey(static_cast<PredicateId>(p1 + 1), static_cast<Role>(r1),
                      static_cast<PredicateId>(p2 + 1), static_cast<Role>(r2)),
              stat);
        }
      }
    }
  }
  has_pair_stats_ = true;
}

std::optional<PairJoinStat> Database::GetPairStat(PredicateId p1, Role role1,
                                                  PredicateId p2,
                                                  Role role2) const {
  if (!has_pair_stats_) return std::nullopt;
  auto it = pair_stats_.find(PairKey(p1, role1, p2, role2));
  if (it == pair_stats_.end()) return std::nullopt;
  PairJoinStat stat = it->second;
  // PairKey normalizes column order; flip the sums when the caller's
  // (p1, role1) is the bigger column.
  const uint64_t a =
      (static_cast<uint64_t>(p1) << 1) | static_cast<uint64_t>(role1);
  const uint64_t b =
      (static_cast<uint64_t>(p2) << 1) | static_cast<uint64_t>(role2);
  if (a > b) std::swap(stat.pairs_left, stat.pairs_right);
  return stat;
}

const PropertyEntry& Database::entry(PredicateId pid) const {
  PARJ_CHECK(pid != kInvalidPredicateId && pid <= entries_.size())
      << "predicate id out of range: " << pid;
  return entries_[pid - 1];
}

const PropertyEntry* Database::FindEntry(PredicateId pid) const {
  if (pid == kInvalidPredicateId || pid > entries_.size()) return nullptr;
  return &entries_[pid - 1];
}

void Database::Calibrate(const join::CalibrationOptions& options) {
  for (PropertyEntry& entry : entries_) {
    for (ReplicaKind kind : {ReplicaKind::kSO, ReplicaKind::kOS}) {
      const TableReplica& replica = entry.table.replica(kind);
      ReplicaMeta& meta = entry.meta(kind);
      if (replica.key_count() < 64) continue;  // too small to measure
      join::CalibrationResult binary = join::CalibrateWindow(
          replica.keys(), join::CalibrationMode::kVersusBinarySearch, nullptr,
          options);
      meta.window_binary = binary.window_positions;
      meta.threshold_binary = binary.threshold_value;
      if (meta.has_index) {
        join::CalibrationResult indexed = join::CalibrateWindow(
            replica.keys(), join::CalibrationMode::kVersusIndexLookup,
            &meta.id_index, options);
        meta.window_index = indexed.window_positions;
        meta.threshold_index = indexed.threshold_value;
      }
    }
  }
}

size_t Database::TableMemoryUsage() const {
  size_t bytes = 0;
  for (const PropertyEntry& entry : entries_) {
    bytes += entry.table.MemoryUsage();
    bytes += entry.so_meta.id_index.MemoryUsage();
    bytes += entry.os_meta.id_index.MemoryUsage();
  }
  bytes += pair_stats_.size() * (sizeof(uint64_t) + sizeof(PairJoinStat) + 16);
  return bytes;
}

}  // namespace parj::storage
