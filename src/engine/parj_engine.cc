#include "engine/parj_engine.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <optional>
#include <span>

#include "common/timer.h"
#include "dict/sharded_encoder.h"
#include "rdf/ntriples.h"
#include "server/thread_pool.h"
#include "storage/snapshot.h"

namespace parj::engine {

namespace {

/// In-place lexicographic dedup of row-major `rows`.
void DeduplicateRows(std::vector<TermId>* rows, size_t width,
                     uint64_t* row_count) {
  if (width == 0 || rows->empty()) return;
  const size_t n = rows->size() / width;
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  auto row_less = [&](size_t a, size_t b) {
    return std::lexicographical_compare(
        rows->begin() + a * width, rows->begin() + (a + 1) * width,
        rows->begin() + b * width, rows->begin() + (b + 1) * width);
  };
  auto row_eq = [&](size_t a, size_t b) {
    return std::equal(rows->begin() + a * width,
                      rows->begin() + (a + 1) * width,
                      rows->begin() + b * width);
  };
  std::sort(order.begin(), order.end(), row_less);
  order.erase(std::unique(order.begin(), order.end(), row_eq), order.end());
  std::vector<TermId> deduped;
  deduped.reserve(order.size() * width);
  for (size_t idx : order) {
    deduped.insert(deduped.end(), rows->begin() + idx * width,
                   rows->begin() + (idx + 1) * width);
  }
  *rows = std::move(deduped);
  *row_count = order.size();
}

/// Evaluates a UNION query: every arm is encoded, planned and executed
/// independently (projection is by name, so arms with different variable
/// numberings still align column-wise); rows are bag-unioned, then
/// DISTINCT / LIMIT apply to the whole union, per SPARQL semantics.
Result<engine::QueryResult> ExecuteUnionAst(
    const storage::Database& db, const mut::DeltaView& delta,
    const query::SelectQueryAst& ast, const engine::QueryOptions& options,
    double parse_millis) {
  using engine::QueryResult;
  if (ast.select_all) {
    return Status::Unsupported(
        "SELECT * with UNION is ambiguous; list the projected variables");
  }
  QueryResult result;
  result.parse_millis = parse_millis;
  result.var_names = ast.projection;
  result.column_count = ast.projection.size();
  result.data_version = delta.sequence();

  std::vector<query::SelectQueryAst> arms;
  {
    query::SelectQueryAst first = ast;
    first.union_arms.clear();
    first.distinct = false;
    first.limit = 0;
    arms.push_back(std::move(first));
    for (const auto& arm : ast.union_arms) {
      query::SelectQueryAst next = arms[0];
      next.patterns = arm.patterns;
      next.filters = arm.filters;
      arms.push_back(std::move(next));
    }
  }

  join::Executor executor(&db, &delta);
  for (const query::SelectQueryAst& arm : arms) {
    PARJ_ASSIGN_OR_RETURN(query::EncodedQuery encoded,
                          query::EncodeQuery(arm, db, &delta.overlay()));
    Stopwatch optimize_timer;
    PARJ_ASSIGN_OR_RETURN(
        query::Plan plan,
        query::Optimize(encoded, db, options.optimizer, &delta));
    result.optimize_millis += optimize_timer.ElapsedMillis();
    if (plan.known_empty) continue;

    join::ExecOptions exec;
    exec.num_threads = options.num_threads;
    exec.strategy = options.strategy;
    exec.scheduling = options.scheduling;
    exec.batch_probes = options.batch_probes;
    exec.emulate_parallel = options.emulate_parallel;
    exec.mode = join::ResultMode::kMaterialize;
    exec.cancel = options.cancel;
    PARJ_ASSIGN_OR_RETURN(join::ExecResult arm_result,
                          executor.Execute(plan, exec));
    result.row_count += arm_result.row_count;
    result.counters.Add(arm_result.counters);
    result.execute_millis += arm_result.wall_millis;
    result.emulated_parallel_millis += arm_result.emulated_parallel_millis;
    result.rows.insert(result.rows.end(), arm_result.rows.begin(),
                       arm_result.rows.end());
    result.plan = std::move(plan);  // last non-empty arm's plan, for EXPLAIN
  }

  if (ast.distinct) {
    DeduplicateRows(&result.rows, result.column_count, &result.row_count);
  }
  if (ast.limit != 0 && result.row_count > ast.limit) {
    result.row_count = ast.limit;
    result.rows.resize(ast.limit * result.column_count);
  }
  if (options.mode == join::ResultMode::kCount) {
    result.rows.clear();
    result.rows.shrink_to_fit();
  }
  return result;
}

}  // namespace

Result<ParjEngine> ParjEngine::FinishLoad(dict::Dictionary dict,
                                          std::vector<EncodedTriple> triples,
                                          const EngineOptions& options,
                                          LoadStats stats) {
  // load.threads is the default for the store/calibration phases too,
  // unless the caller configured those explicitly.
  EngineOptions effective = options;
  if (effective.load.threads > 1) {
    if (effective.database.build_threads <= 1) {
      effective.database.build_threads = effective.load.threads;
    }
    if (effective.calibration.threads <= 1) {
      effective.calibration.threads = effective.load.threads;
    }
  }
  stats.triples = triples.size();
  stats.threads = std::max(1, effective.load.threads);
  storage::BuildTimings timings;
  PARJ_ASSIGN_OR_RETURN(
      storage::Database db,
      storage::Database::Build(std::move(dict), std::move(triples),
                               effective.database, &timings));
  stats.build_millis += timings.group_millis + timings.tables_millis;
  stats.index_millis += timings.meta_millis + timings.pair_stats_millis +
                        timings.char_sets_millis;
  ParjEngine engine(std::move(db), effective.calibration, effective.database);
  if (effective.calibrate) {
    Stopwatch calibrate_timer;
    engine.Calibrate();
    stats.calibrate_millis = calibrate_timer.ElapsedMillis();
  }
  stats.total_millis = stats.read_millis + stats.parse_millis +
                       stats.encode_millis + stats.build_millis +
                       stats.index_millis + stats.calibrate_millis;
  engine.load_stats_ = stats;
  if (effective.wal.enabled()) {
    PARJ_RETURN_NOT_OK(engine.EnableWal(effective.wal));
  }
  return engine;
}

Result<ParjEngine> ParjEngine::FromEncoded(dict::Dictionary dict,
                                           std::vector<EncodedTriple> triples,
                                           const EngineOptions& options) {
  return FinishLoad(std::move(dict), std::move(triples), options, LoadStats{});
}

namespace {

/// Sharded two-phase encode of parsed triples: per-chunk delta encode
/// against the (empty) base dictionary in parallel, then a chunk-order
/// merge that reproduces serial first-occurrence IDs exactly (see
/// dict/sharded_encoder.h).
Result<std::vector<EncodedTriple>> EncodeShards(
    dict::Dictionary* dict, std::vector<std::span<const rdf::Triple>> shards,
    server::ThreadPool* pool) {
  std::vector<dict::EncodedChunk> encoded(shards.size());
  const dict::Dictionary& base = *dict;
  const auto encode_one = [&](size_t i) {
    encoded[i] = dict::EncodeChunk(base, shards[i]);
  };
  if (pool != nullptr && shards.size() > 1) {
    pool->ParallelFor(shards.size(), encode_one);
  } else {
    for (size_t i = 0; i < shards.size(); ++i) encode_one(i);
  }
  return dict::MergeEncodedChunks(dict, std::move(encoded), pool);
}

}  // namespace

Result<ParjEngine> ParjEngine::FromTriples(
    const std::vector<rdf::Triple>& triples, const EngineOptions& options) {
  LoadStats stats;
  std::optional<server::ThreadPool> pool;
  if (options.load.threads > 1) pool.emplace(options.load.threads);

  Stopwatch encode_timer;
  // Shard the input into contiguous spans (chunk order = input order, so
  // the merged IDs match a serial encode of the same vector).
  constexpr size_t kTriplesPerShard = size_t{64} << 10;
  std::vector<std::span<const rdf::Triple>> shards;
  for (size_t begin = 0; begin < triples.size(); begin += kTriplesPerShard) {
    const size_t len = std::min(kTriplesPerShard, triples.size() - begin);
    shards.emplace_back(triples.data() + begin, len);
  }
  dict::Dictionary dict;
  PARJ_ASSIGN_OR_RETURN(
      std::vector<EncodedTriple> encoded,
      EncodeShards(&dict, std::move(shards),
                   pool.has_value() ? &*pool : nullptr));
  stats.encode_millis = encode_timer.ElapsedMillis();
  return FinishLoad(std::move(dict), std::move(encoded), options, stats);
}

Result<ParjEngine> ParjEngine::FromNTriplesText(std::string_view text,
                                                const EngineOptions& options) {
  LoadStats stats;
  std::optional<server::ThreadPool> pool;
  if (options.load.threads > 1) pool.emplace(options.load.threads);
  rdf::ParallelParseOptions parse_options;
  parse_options.strict = options.load.strict;
  parse_options.chunk_bytes = options.load.chunk_bytes;
  parse_options.pool = pool.has_value() ? &*pool : nullptr;

  Stopwatch parse_timer;
  PARJ_ASSIGN_OR_RETURN(std::vector<rdf::ParsedChunk> chunks,
                        rdf::ParseTextParallel(text, parse_options));
  stats.parse_millis = parse_timer.ElapsedMillis();
  stats.chunks = chunks.size();
  for (const rdf::ParsedChunk& chunk : chunks) {
    stats.skipped_lines += chunk.skipped_lines;
  }

  Stopwatch encode_timer;
  std::vector<std::span<const rdf::Triple>> shards;
  shards.reserve(chunks.size());
  for (const rdf::ParsedChunk& chunk : chunks) shards.emplace_back(chunk.triples);
  dict::Dictionary dict;
  PARJ_ASSIGN_OR_RETURN(
      std::vector<EncodedTriple> encoded,
      EncodeShards(&dict, std::move(shards),
                   pool.has_value() ? &*pool : nullptr));
  stats.encode_millis = encode_timer.ElapsedMillis();
  return FinishLoad(std::move(dict), std::move(encoded), options, stats);
}

Result<ParjEngine> ParjEngine::FromNTriplesFile(const std::string& path,
                                                const EngineOptions& options) {
  LoadStats stats;
  std::optional<server::ThreadPool> pool;
  if (options.load.threads > 1) pool.emplace(options.load.threads);
  rdf::ParallelParseOptions parse_options;
  parse_options.strict = options.load.strict;
  parse_options.chunk_bytes = options.load.chunk_bytes;
  parse_options.pool = pool.has_value() ? &*pool : nullptr;

  Stopwatch parse_timer;
  PARJ_ASSIGN_OR_RETURN(
      std::vector<rdf::ParsedChunk> chunks,
      rdf::ParseFileParallel(path, parse_options, &stats.read_millis));
  stats.parse_millis = parse_timer.ElapsedMillis() - stats.read_millis;
  stats.chunks = chunks.size();
  for (const rdf::ParsedChunk& chunk : chunks) {
    stats.skipped_lines += chunk.skipped_lines;
  }

  Stopwatch encode_timer;
  std::vector<std::span<const rdf::Triple>> shards;
  shards.reserve(chunks.size());
  for (const rdf::ParsedChunk& chunk : chunks) shards.emplace_back(chunk.triples);
  dict::Dictionary dict;
  PARJ_ASSIGN_OR_RETURN(
      std::vector<EncodedTriple> encoded,
      EncodeShards(&dict, std::move(shards),
                   pool.has_value() ? &*pool : nullptr));
  stats.encode_millis = encode_timer.ElapsedMillis();
  return FinishLoad(std::move(dict), std::move(encoded), options, stats);
}

Result<ParjEngine> ParjEngine::FromSnapshotFile(const std::string& path,
                                                const EngineOptions& options) {
  EngineOptions effective = options;
  if (effective.load.threads > 1 && effective.database.build_threads <= 1) {
    effective.database.build_threads = effective.load.threads;
  }
  storage::SnapshotLoadOptions snapshot_load;
  snapshot_load.threads = effective.load.threads;
  storage::SnapshotLoadStats snapshot_stats;
  PARJ_ASSIGN_OR_RETURN(storage::Database db,
                        storage::LoadSnapshot(path, effective.database,
                                              snapshot_load, &snapshot_stats));
  LoadStats stats;
  stats.read_millis = snapshot_stats.read_millis;
  stats.parse_millis = snapshot_stats.decode_millis;  // decode == "parse"
  stats.build_millis = snapshot_stats.build_millis;
  stats.triples = db.total_triples();
  stats.threads = std::max(1, effective.load.threads);
  ParjEngine engine(std::move(db), effective.calibration, effective.database);
  if (effective.calibrate) {
    Stopwatch calibrate_timer;
    engine.Calibrate();
    stats.calibrate_millis = calibrate_timer.ElapsedMillis();
  }
  stats.total_millis = stats.read_millis + stats.parse_millis +
                       stats.build_millis + stats.calibrate_millis;
  engine.load_stats_ = stats;
  if (effective.wal.enabled()) {
    PARJ_RETURN_NOT_OK(engine.EnableWal(effective.wal));
  }
  return engine;
}

Status ParjEngine::EnableWal(const mut::WalOptions& options) {
  if (wal_ != nullptr) {
    return Status::AlreadyExists("this engine already has a WAL attached");
  }
  PARJ_ASSIGN_OR_RETURN(
      wal_, mut::Wal::Initialize(store_->base(), store_->epoch(), options));
  store_->AttachWal(wal_.get());
  return Status::OK();
}

Result<ParjEngine> ParjEngine::RecoverFromWal(const mut::WalOptions& wal,
                                              const EngineOptions& options) {
  EngineOptions effective = options;
  if (effective.load.threads > 1 && effective.database.build_threads <= 1) {
    effective.database.build_threads = effective.load.threads;
  }
  storage::SnapshotLoadOptions snapshot_load;
  snapshot_load.threads = effective.load.threads;
  Stopwatch total_timer;
  PARJ_ASSIGN_OR_RETURN(
      mut::Wal::Recovered recovered,
      mut::Wal::Recover(wal, effective.database, snapshot_load));
  ParjEngine engine(std::move(recovered.base), effective.calibration,
                    effective.database, recovered.epoch);
  // Replay before the WAL is attached: the batches are already in the
  // log, so re-applying them must not re-log them. Each Apply re-derives
  // the delta and re-allocates overlay TermIds in first-seen order —
  // exactly the IDs the crashed process handed out.
  Stopwatch replay_timer;
  for (const std::vector<mut::Mutation>& batch : recovered.batches) {
    PARJ_RETURN_NOT_OK(engine.store_->Apply(batch));
  }
  recovered.stats.replay_millis += replay_timer.ElapsedMillis();
  PARJ_ASSIGN_OR_RETURN(engine.wal_,
                        mut::Wal::Open(wal, recovered.next_segment));
  engine.store_->AttachWal(engine.wal_.get());
  if (effective.calibrate) engine.Calibrate();
  engine.recovery_stats_ = recovered.stats;
  engine.recovered_ = true;
  LoadStats stats;
  stats.read_millis = recovered.stats.snapshot_load_millis;
  stats.parse_millis = recovered.stats.replay_millis;
  stats.triples = engine.store_->base().total_triples();
  stats.threads = std::max(1, effective.load.threads);
  stats.total_millis = total_timer.ElapsedMillis();
  engine.load_stats_ = stats;
  return engine;
}

Result<query::Plan> ParjEngine::Explain(
    std::string_view sparql, const query::OptimizerOptions& options) const {
  const mut::MvccSnapshot snap = store_->snapshot();
  const storage::Database& db = snap.base();
  const mut::DeltaView& delta = snap.delta();
  PARJ_ASSIGN_OR_RETURN(query::SelectQueryAst ast, query::ParseQuery(sparql));
  PARJ_ASSIGN_OR_RETURN(query::EncodedQuery encoded,
                        query::EncodeQuery(ast, db, &delta.overlay()));
  return query::Optimize(encoded, db, options, &delta);
}

namespace {

/// Builds the executor options for one materializing/counting query run
/// (DISTINCT needs materialized rows to deduplicate, whatever the caller
/// asked for; LIMIT without DISTINCT can stop shards early). `gate`, when
/// non-null and the plan is a plain LIMIT (no DISTINCT / ORDER BY /
/// aggregation), is armed with the limit and wired in so the k-th row
/// produced anywhere stops every shard (cross-shard early exit); the
/// caller owns the gate and must keep it alive through the execution.
join::ExecOptions MakeExecOptions(const query::Plan& plan,
                                  const QueryOptions& options,
                                  join::LimitGate* gate) {
  join::ExecOptions exec;
  exec.num_threads = options.num_threads;
  exec.strategy = options.strategy;
  exec.scheduling = options.scheduling;
  exec.batch_probes = options.batch_probes;
  exec.emulate_parallel = options.emulate_parallel;
  exec.collect_probe_trace = options.collect_probe_trace;
  exec.cancel = options.cancel;
  const bool need_rows =
      plan.distinct || options.mode == join::ResultMode::kMaterialize;
  exec.mode = need_rows ? join::ResultMode::kMaterialize
                        : join::ResultMode::kCount;
  const bool plain_limit = plan.limit != 0 && !plan.distinct &&
                           plan.order_by.empty() && !plan.aggregate.enabled;
  if (plain_limit) {
    exec.per_shard_limit = plan.limit;
    if (gate != nullptr) {
      gate->limit = plan.limit;
      exec.limit_gate = gate;
    }
  }
  if (options.max_rows != 0 &&
      (exec.per_shard_limit == 0 || options.max_rows < exec.per_shard_limit)) {
    exec.per_shard_limit = options.max_rows;
  }
  return exec;
}

/// Applies the engine-level result semantics (DISTINCT dedup, LIMIT trim,
/// count-only row drop, projected variable names) to one executor result.
QueryResult FinishResult(join::ExecResult exec_result, query::Plan plan,
                         const QueryOptions& options) {
  QueryResult result;
  result.row_count = exec_result.row_count;
  result.column_count = exec_result.column_count;
  result.rows_skipped_by_limit = exec_result.rows_skipped_by_limit;
  result.rows = std::move(exec_result.rows);
  result.step_rows = std::move(exec_result.step_rows);
  result.counters = exec_result.counters;
  result.morsel_workers = std::move(exec_result.morsel_workers);
  result.execute_millis = exec_result.wall_millis;
  result.emulated_parallel_millis = exec_result.emulated_parallel_millis;
  result.shard_millis = std::move(exec_result.shard_millis);
  result.trace = std::move(exec_result.trace);

  if (plan.distinct) {
    DeduplicateRows(&result.rows, result.column_count, &result.row_count);
  }
  if (plan.limit != 0 && result.row_count > plan.limit) {
    result.row_count = plan.limit;
    if (!result.rows.empty()) {
      result.rows.resize(plan.limit * result.column_count);
    }
  }
  if (options.mode == join::ResultMode::kCount) {
    result.rows.clear();
    result.rows.shrink_to_fit();
  }

  result.var_names.reserve(plan.projection.size());
  for (int var : plan.projection) result.var_names.push_back(plan.var_names[var]);
  result.plan = std::move(plan);
  return result;
}

/// Copies the executor-side diagnostics (counters, timings, per-step and
/// per-worker tallies) into a shaped-path result.
void AbsorbExecStats(join::ExecResult* exec_result, QueryResult* result) {
  result->step_rows = std::move(exec_result->step_rows);
  result->counters = exec_result->counters;
  result->morsel_workers = std::move(exec_result->morsel_workers);
  result->execute_millis = exec_result->wall_millis;
  result->emulated_parallel_millis = exec_result->emulated_parallel_millis;
  result->shard_millis = std::move(exec_result->shard_millis);
}

/// Executes a plan with a result-shaping tail — aggregation (GROUP BY /
/// COUNT / SUM / MIN / MAX) and/or ORDER BY [LIMIT]. The pipeline runs in
/// ResultMode::kVisit: every worker streams its rows straight into the
/// shaping operator (Aggregator or bounded TopK heaps), so shaping
/// overlaps the join scan instead of materializing first. Plain ORDER BY
/// without LIMIT (or with DISTINCT) falls back to materialize-sort.
Result<QueryResult> ExecuteShapedPlan(const storage::Database& db,
                                      const mut::DeltaView& delta,
                                      query::Plan plan,
                                      const QueryOptions& options) {
  QueryResult result;
  join::Executor executor(&db, &delta);
  const size_t workers = static_cast<size_t>(std::max(1, options.num_threads));

  join::ExecOptions exec;
  exec.num_threads = options.num_threads;
  exec.strategy = options.strategy;
  exec.scheduling = options.scheduling;
  exec.batch_probes = options.batch_probes;
  exec.emulate_parallel = options.emulate_parallel;
  exec.collect_probe_trace = options.collect_probe_trace;
  exec.cancel = options.cancel;
  exec.mode = join::ResultMode::kVisit;

  if (plan.aggregate.enabled) {
    const query::AggregateSpec& spec = plan.aggregate;
    const size_t ncols = spec.output.size();
    result.column_count = ncols;
    result.column_kinds = spec.column_kinds;
    result.var_names = spec.output_names;

    join::Aggregator agg(&spec, plan.numeric_values.get(),
                         options.agg_strategy, workers);
    exec.visitor = [&agg](size_t shard, std::span<const TermId> row) {
      agg.Accumulate(shard, row);
    };
    // A known-empty plan skips execution but still runs Finish: a global
    // aggregate over nothing is one row (COUNT = 0), not zero rows.
    if (!plan.known_empty) {
      PARJ_ASSIGN_OR_RETURN(join::ExecResult exec_result,
                            executor.Execute(plan, exec));
      AbsorbExecStats(&exec_result, &result);
      result.trace = std::move(exec_result.trace);
    }
    // The shaping tail — merge, output layout, ORDER BY, trim — runs on
    // the calling thread after the shards complete; fold it into both the
    // wall time and the emulated-parallel model (it is the serial section
    // Amdahl charges against strategies with expensive merges).
    Stopwatch shape_timer;
    PARJ_ASSIGN_OR_RETURN(join::AggregateOutput out, agg.Finish(exec.pool));

    // Canonical internal layout is [group keys..., agg cells...]; lay the
    // result columns out in SELECT order via spec.output.
    result.agg_rows.reserve(out.rows * ncols);
    for (size_t r = 0; r < out.rows; ++r) {
      const uint64_t* in = out.cells.data() + r * out.width;
      for (int v : spec.output) {
        result.agg_rows.push_back(
            v >= 0 ? in[v] : in[spec.group_cols + ~v]);
      }
    }
    result.row_count = out.rows;

    if (!plan.order_by.empty() && result.row_count > 1) {
      // Kind-aware ORDER BY over the (small) aggregate table; the
      // full-row tiebreak makes the order total, hence deterministic.
      std::vector<uint32_t> order(result.row_count);
      std::iota(order.begin(), order.end(), 0);
      const std::vector<uint64_t>& cells = result.agg_rows;
      auto row_less = [&](uint32_t a, uint32_t b) {
        const uint64_t* ra = cells.data() + static_cast<size_t>(a) * ncols;
        const uint64_t* rb = cells.data() + static_cast<size_t>(b) * ncols;
        for (const query::OrderKey& key : plan.order_by) {
          const int c = join::CompareAggCell(ra[key.column], rb[key.column],
                                             spec.column_kinds[key.column]);
          if (c != 0) return key.descending ? c > 0 : c < 0;
        }
        for (size_t col = 0; col < ncols; ++col) {
          const int c = join::CompareAggCell(ra[col], rb[col],
                                             spec.column_kinds[col]);
          if (c != 0) return c < 0;
        }
        return false;
      };
      std::sort(order.begin(), order.end(), row_less);
      std::vector<uint64_t> sorted;
      sorted.reserve(cells.size());
      for (uint32_t r : order) {
        sorted.insert(sorted.end(),
                      cells.begin() + static_cast<size_t>(r) * ncols,
                      cells.begin() + static_cast<size_t>(r + 1) * ncols);
      }
      result.agg_rows = std::move(sorted);
    }
    if (plan.limit != 0 && result.row_count > plan.limit) {
      result.row_count = plan.limit;
      result.agg_rows.resize(plan.limit * ncols);
    }
    const double shape_millis = shape_timer.ElapsedMillis();
    result.execute_millis += shape_millis;
    result.emulated_parallel_millis += shape_millis;
    result.plan = std::move(plan);
    return result;
  }

  // Plain (non-aggregate) ORDER BY. Rows are projected TermIds; the sort
  // compares the ORDER BY columns by TermId — the deterministic
  // dictionary-encoding order — with a full-row ascending tiebreak.
  const size_t width = plan.projection.size();
  result.column_count = width;
  result.var_names.reserve(width);
  for (int var : plan.projection) {
    result.var_names.push_back(plan.var_names[var]);
  }

  if (plan.limit != 0 && !plan.distinct && !plan.known_empty) {
    // ORDER BY ... LIMIT k push-down: per-worker bounded top-k heaps,
    // merged at the end. Memory O(workers * k), scan never materializes.
    join::TopK topk(width, plan.limit, plan.order_by, workers);
    exec.visitor = [&topk](size_t shard, std::span<const TermId> row) {
      topk.Add(shard, row);
    };
    PARJ_ASSIGN_OR_RETURN(join::ExecResult exec_result,
                          executor.Execute(plan, exec));
    AbsorbExecStats(&exec_result, &result);
    result.trace = std::move(exec_result.trace);
    const Stopwatch shape_timer;
    result.rows = topk.Finish();
    result.row_count = width == 0 ? 0 : result.rows.size() / width;
    const double shape_millis = shape_timer.ElapsedMillis();
    result.execute_millis += shape_millis;
    result.emulated_parallel_millis += shape_millis;
  } else if (!plan.known_empty) {
    // ORDER BY without LIMIT (or with DISTINCT): materialize, dedup,
    // sort, trim.
    exec.mode = join::ResultMode::kMaterialize;
    exec.visitor = {};
    PARJ_ASSIGN_OR_RETURN(join::ExecResult exec_result,
                          executor.Execute(plan, exec));
    AbsorbExecStats(&exec_result, &result);
    result.trace = std::move(exec_result.trace);
    result.rows = std::move(exec_result.rows);
    result.row_count = exec_result.row_count;
    const Stopwatch shape_timer;
    if (plan.distinct) {
      DeduplicateRows(&result.rows, width, &result.row_count);
    }
    if (result.row_count > 1) {
      std::vector<uint32_t> order(result.row_count);
      std::iota(order.begin(), order.end(), 0);
      const std::vector<TermId>& rows = result.rows;
      auto row_less = [&](uint32_t a, uint32_t b) {
        const TermId* ra = rows.data() + static_cast<size_t>(a) * width;
        const TermId* rb = rows.data() + static_cast<size_t>(b) * width;
        for (const query::OrderKey& key : plan.order_by) {
          if (ra[key.column] != rb[key.column]) {
            return key.descending ? rb[key.column] < ra[key.column]
                                  : ra[key.column] < rb[key.column];
          }
        }
        for (size_t c = 0; c < width; ++c) {
          if (ra[c] != rb[c]) return ra[c] < rb[c];
        }
        return false;
      };
      std::sort(order.begin(), order.end(), row_less);
      std::vector<TermId> sorted;
      sorted.reserve(rows.size());
      for (uint32_t r : order) {
        sorted.insert(sorted.end(),
                      rows.begin() + static_cast<size_t>(r) * width,
                      rows.begin() + static_cast<size_t>(r + 1) * width);
      }
      result.rows = std::move(sorted);
    }
    if (plan.limit != 0 && result.row_count > plan.limit) {
      result.row_count = plan.limit;
      result.rows.resize(plan.limit * width);
    }
    const double shape_millis = shape_timer.ElapsedMillis();
    result.execute_millis += shape_millis;
    result.emulated_parallel_millis += shape_millis;
  }
  if (options.mode == join::ResultMode::kCount) {
    result.rows.clear();
    result.rows.shrink_to_fit();
  }
  result.plan = std::move(plan);
  return result;
}

}  // namespace

Result<QueryResult> ParjEngine::Execute(std::string_view sparql,
                                        const QueryOptions& options) const {
  // A query submitted with an already-expired deadline (or pre-cancelled
  // token) returns its cancellation Status without parsing or executing.
  if (options.cancel.StopRequested()) return options.cancel.ToStatus();

  // Pin the current epoch: the whole query — encode, plan, execute —
  // sees one immutable (base, delta) pair however many writes or
  // compactions land meanwhile.
  const mut::MvccSnapshot snap = store_->snapshot();
  const storage::Database& db = snap.base();
  const mut::DeltaView& delta = snap.delta();

  Stopwatch parse_timer;
  PARJ_ASSIGN_OR_RETURN(query::SelectQueryAst ast, query::ParseQuery(sparql));
  if (!ast.union_arms.empty()) {
    return ExecuteUnionAst(db, delta, ast, options,
                           parse_timer.ElapsedMillis());
  }
  PARJ_ASSIGN_OR_RETURN(query::EncodedQuery encoded,
                        query::EncodeQuery(ast, db, &delta.overlay()));
  const double parse_millis = parse_timer.ElapsedMillis();

  Stopwatch optimize_timer;
  PARJ_ASSIGN_OR_RETURN(
      query::Plan plan,
      query::Optimize(encoded, db, options.optimizer, &delta));
  const double optimize_millis = optimize_timer.ElapsedMillis();

  if (plan.aggregate.enabled || !plan.order_by.empty()) {
    PARJ_ASSIGN_OR_RETURN(
        QueryResult result,
        ExecuteShapedPlan(db, delta, std::move(plan), options));
    result.parse_millis = parse_millis;
    result.optimize_millis = optimize_millis;
    result.data_version = snap.data_version();
    return result;
  }

  join::Executor executor(&db, &delta);
  join::LimitGate gate;
  PARJ_ASSIGN_OR_RETURN(
      join::ExecResult exec_result,
      executor.Execute(plan, MakeExecOptions(plan, options, &gate)));

  QueryResult result = FinishResult(std::move(exec_result), std::move(plan),
                                    options);
  result.parse_millis = parse_millis;
  result.optimize_millis = optimize_millis;
  result.data_version = snap.data_version();
  return result;
}

Result<QueryResult> ParjEngine::ExecutePlan(
    const query::Plan& plan, const QueryOptions& options,
    const mut::MvccSnapshot* pinned) const {
  if (options.cancel.StopRequested()) return options.cancel.ToStatus();
  // A bound plan stays valid across epochs (TermIds are permanent:
  // compaction folds overlay terms into the next base dictionary at the
  // same IDs), so executing a cached plan against a later snapshot is
  // exactly re-running the query on the current data.
  const mut::MvccSnapshot snap =
      pinned != nullptr ? *pinned : store_->snapshot();
  const storage::Database& db = snap.base();
  const mut::DeltaView& delta = snap.delta();
  if (plan.aggregate.enabled || !plan.order_by.empty()) {
    PARJ_ASSIGN_OR_RETURN(QueryResult result,
                          ExecuteShapedPlan(db, delta, plan, options));
    result.data_version = snap.data_version();
    return result;
  }
  join::Executor executor(&db, &delta);
  join::LimitGate gate;
  PARJ_ASSIGN_OR_RETURN(
      join::ExecResult exec_result,
      executor.Execute(plan, MakeExecOptions(plan, options, &gate)));
  QueryResult result = FinishResult(std::move(exec_result), plan, options);
  result.data_version = snap.data_version();
  return result;
}

Result<std::vector<QueryResult>> ParjEngine::ExecuteShared(
    std::span<const query::Plan* const> plans,
    std::span<const QueryOptions> options) const {
  if (plans.size() != options.size()) {
    return Status::InvalidArgument(
        "ExecuteShared needs one QueryOptions per plan");
  }
  // One snapshot for the whole group: every member executes — and is
  // version-stamped — against the same (base, delta) pair.
  const mut::MvccSnapshot snap = store_->snapshot();
  const storage::Database& db = snap.base();
  const mut::DeltaView& delta = snap.delta();

  std::vector<join::ExecOptions> exec(plans.size());
  for (size_t m = 0; m < plans.size(); ++m) {
    if (plans[m]->aggregate.enabled || !plans[m]->order_by.empty()) {
      return Status::InvalidArgument(
          "shared-scan members cannot aggregate or ORDER BY; execute them "
          "solo");
    }
    exec[m] = MakeExecOptions(*plans[m], options[m], nullptr);
  }
  join::Executor executor(&db, &delta);
  PARJ_ASSIGN_OR_RETURN(std::vector<join::ExecResult> raw,
                        executor.ExecuteShared(plans, exec));
  std::vector<QueryResult> results;
  results.reserve(plans.size());
  for (size_t m = 0; m < plans.size(); ++m) {
    QueryResult result = FinishResult(std::move(raw[m]), *plans[m],
                                      options[m]);
    result.data_version = snap.data_version();
    result.shared_scan = true;
    results.push_back(std::move(result));
  }
  return results;
}

Result<QueryResult> ParjEngine::ExecuteStreaming(
    std::string_view sparql, const QueryOptions& options,
    const join::RowVisitor& visitor) const {
  QueryResult result;
  if (options.cancel.StopRequested()) return options.cancel.ToStatus();

  const mut::MvccSnapshot snap = store_->snapshot();
  const storage::Database& db = snap.base();
  const mut::DeltaView& delta = snap.delta();

  Stopwatch parse_timer;
  PARJ_ASSIGN_OR_RETURN(query::SelectQueryAst ast, query::ParseQuery(sparql));
  PARJ_ASSIGN_OR_RETURN(query::EncodedQuery encoded,
                        query::EncodeQuery(ast, db, &delta.overlay()));
  result.parse_millis = parse_timer.ElapsedMillis();
  if (encoded.distinct) {
    return Status::Unsupported(
        "DISTINCT requires buffering and is not available in streaming mode");
  }
  if (encoded.aggregate.enabled || !encoded.order_by.empty()) {
    return Status::Unsupported(
        "aggregation and ORDER BY are not available in streaming mode; use "
        "Execute");
  }

  Stopwatch optimize_timer;
  PARJ_ASSIGN_OR_RETURN(
      query::Plan plan,
      query::Optimize(encoded, db, options.optimizer, &delta));
  result.optimize_millis = optimize_timer.ElapsedMillis();

  join::ExecOptions exec;
  exec.num_threads = options.num_threads;
  exec.strategy = options.strategy;
  exec.scheduling = options.scheduling;
  exec.batch_probes = options.batch_probes;
  exec.emulate_parallel = options.emulate_parallel;
  exec.mode = join::ResultMode::kVisit;
  exec.visitor = visitor;
  exec.cancel = options.cancel;
  if (plan.limit != 0) exec.per_shard_limit = plan.limit;
  if (options.max_rows != 0 &&
      (exec.per_shard_limit == 0 || options.max_rows < exec.per_shard_limit)) {
    exec.per_shard_limit = options.max_rows;
  }

  join::Executor executor(&db, &delta);
  PARJ_ASSIGN_OR_RETURN(join::ExecResult exec_result,
                        executor.Execute(plan, exec));
  result.row_count = exec_result.row_count;
  result.column_count = exec_result.column_count;
  result.counters = exec_result.counters;
  result.morsel_workers = std::move(exec_result.morsel_workers);
  result.execute_millis = exec_result.wall_millis;
  result.emulated_parallel_millis = exec_result.emulated_parallel_millis;
  result.shard_millis = std::move(exec_result.shard_millis);
  result.var_names.reserve(plan.projection.size());
  for (int var : plan.projection) result.var_names.push_back(plan.var_names[var]);
  result.plan = std::move(plan);
  result.data_version = snap.data_version();
  return result;
}

std::vector<std::string> ParjEngine::DecodeRow(const QueryResult& result,
                                               size_t row) const {
  // IDs are stable across epochs (compaction folds overlay terms into the
  // next base dictionary in allocation order), so decoding against the
  // CURRENT snapshot is correct even for results produced at an earlier
  // epoch: an old overlay ID is by now either still in the overlay or
  // absorbed into the base at the same ID.
  const mut::MvccSnapshot snap = store_->snapshot();
  const dict::Dictionary& dict = snap.base().dictionary();
  const mut::TermOverlay& overlay = snap.delta().overlay();
  std::vector<std::string> out;
  out.reserve(result.column_count);
  const auto decode_term = [&](TermId id) -> std::string {
    if (id <= dict.resource_count()) {
      return dict.DecodeResource(id).ToNTriples();
    }
    const rdf::Term* term = overlay.DecodeResource(id);
    return term != nullptr ? term->ToNTriples() : std::string("?");
  };
  if (!result.column_kinds.empty()) {
    // Aggregated layout: row-major u64 cells typed by column_kinds.
    for (size_t c = 0; c < result.column_count; ++c) {
      const uint64_t cell = result.agg_rows[row * result.column_count + c];
      switch (result.column_kinds[c]) {
        case query::ColumnKind::kTerm:
          out.push_back(decode_term(static_cast<TermId>(cell)));
          break;
        case query::ColumnKind::kCount:
          out.push_back(std::to_string(cell));
          break;
        case query::ColumnKind::kNumber: {
          const double v = std::bit_cast<double>(cell);
          if (std::isnan(v)) {
            out.emplace_back();  // unbound (e.g. MIN over no numeric values)
          } else if (std::floor(v) == v && std::abs(v) <= 9.007199254740992e15) {
            out.push_back(std::to_string(static_cast<int64_t>(v)));
          } else {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.17g", v);
            out.push_back(buf);
          }
          break;
        }
      }
    }
    return out;
  }
  for (size_t c = 0; c < result.column_count; ++c) {
    out.push_back(decode_term(result.rows[row * result.column_count + c]));
  }
  return out;
}

}  // namespace parj::engine
