#ifndef PARJ_ENGINE_PARJ_ENGINE_H_
#define PARJ_ENGINE_PARJ_ENGINE_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "join/aggregate.h"
#include "join/executor.h"
#include "mutable/delta_store.h"
#include "mutable/wal.h"
#include "query/optimizer.h"
#include "query/parser.h"
#include "storage/database.h"

namespace parj::engine {

/// Bulk-load pipeline options (DESIGN.md §10). The pipeline is the same
/// at any thread count — chunked parse, sharded dictionary encode,
/// grouped store build — so the loaded engine is identical whatever
/// `threads` is; only wall time changes.
struct LoadOptions {
  /// Worker threads for every load phase (parse, encode, build, index,
  /// calibrate, snapshot decode). <= 1 runs the pipeline serially.
  int threads = 1;
  /// Parser chunk size in bytes; chunks split at newline boundaries so a
  /// triple never straddles two chunks.
  size_t chunk_bytes = size_t{16} << 20;
  /// Fail on the first malformed line (reported with its 1-based line
  /// number); false skips malformed lines, counted in
  /// LoadStats::skipped_lines.
  bool strict = true;
};

/// Per-phase wall-clock breakdown of one load, plus dataset counters.
/// Phases are disjoint; total_millis covers the whole load call.
struct LoadStats {
  double read_millis = 0.0;       ///< file -> memory (file loads only)
  double parse_millis = 0.0;      ///< N-Triples chunks -> rdf::Triple
  double encode_millis = 0.0;     ///< terms -> dense IDs (shard + merge)
  double build_millis = 0.0;      ///< group by predicate + CSR tables
  double index_millis = 0.0;      ///< histograms, ID indexes, statistics
  double calibrate_millis = 0.0;  ///< Algorithm 2 (when enabled)
  double total_millis = 0.0;
  uint64_t triples = 0;        ///< encoded triples handed to the store
  uint64_t skipped_lines = 0;  ///< malformed lines dropped (strict=false)
  uint64_t chunks = 0;         ///< parse chunks (0 for non-text loads)
  int threads = 1;             ///< effective LoadOptions::threads
};

/// Load-time options for a PARJ instance.
struct EngineOptions {
  storage::DatabaseOptions database;
  /// Run Algorithm 2 after load (paper: calibration happens "after data
  /// loading, prior to query execution"). Off by default because timing
  /// calibration takes measurable wall time; the database then uses the
  /// paper's published windows (200 / 20 positions).
  bool calibrate = false;
  join::CalibrationOptions calibration;
  /// Bulk-load pipeline knobs. `load.threads > 1` also becomes the
  /// default for database.build_threads / calibration.threads unless the
  /// caller set those explicitly.
  LoadOptions load;
  /// Crash durability (DESIGN.md §14). When `wal.dir` is set, every load
  /// path finishes by initializing a fresh write-ahead log there
  /// (AlreadyExists if the directory holds one — recover with
  /// RecoverFromWal instead), and acknowledged mutations survive crashes
  /// under the configured sync policy.
  mut::WalOptions wal;
};

/// Per-query execution options.
struct QueryOptions {
  int num_threads = 1;
  join::SearchStrategy strategy = join::SearchStrategy::kAdaptiveBinary;
  /// Work distribution across shard threads (see join::Scheduling).
  /// kMorsel by default; the paper-replication benches pin kStatic.
  join::Scheduling scheduling = join::Scheduling::kMorsel;
  /// Batched prefetched probing in the executor's inner value loops
  /// (see join::ExecOptions::batch_probes). Result-identical; off
  /// reproduces the strictly serial probe loop.
  bool batch_probes = true;
  /// kCount reproduces the paper's silent mode; kMaterialize its full
  /// result handling (minus printing).
  join::ResultMode mode = join::ResultMode::kMaterialize;
  /// See join::ExecOptions::emulate_parallel.
  bool emulate_parallel = false;
  bool collect_probe_trace = false;
  /// Hard per-shard row cap applied on top of any query LIMIT (0 = none).
  /// A safety valve for workloads with combinatorially exploding results
  /// (e.g. WatDiv IL-3 at large path lengths). Not applied to aggregation
  /// or ORDER BY queries — a mid-scan cap would silently change their
  /// answers, not just truncate them.
  uint64_t max_rows = 0;
  /// Parallel merge strategy for GROUP BY / aggregate queries (see
  /// join::AggStrategy). kAdaptive picks thread-local vs radix-partitioned
  /// tables from the observed group cardinality mid-run.
  join::AggStrategy agg_strategy = join::AggStrategy::kAdaptive;
  /// Cooperative cancellation/deadline token (see join::ExecOptions).
  /// Checked before parsing and throughout execution; a stopped query
  /// returns the token's Status. Default token never fires.
  server::CancellationToken cancel;
  query::OptimizerOptions optimizer;
};

/// Result of one query execution, with timing broken down the way the
/// paper reports it (optimization time is part of every reported number;
/// silent mode skips decode/aggregation).
struct QueryResult {
  uint64_t row_count = 0;
  size_t column_count = 0;
  std::vector<TermId> rows;  ///< row-major IDs (kMaterialize only)
  std::vector<std::string> var_names;

  /// Aggregate results (GROUP BY / COUNT / SUM / MIN / MAX) come back here
  /// instead of `rows`: row-major u64 cells, one per result column, typed
  /// by `column_kinds` (kTerm = widened TermId, kCount = raw count,
  /// kNumber = bit-cast double, NaN = unbound). Empty for plain queries;
  /// `column_kinds` is non-empty exactly when the query aggregated.
  /// DecodeRow understands both layouts.
  std::vector<uint64_t> agg_rows;
  std::vector<query::ColumnKind> column_kinds;
  /// Rows the cross-shard LIMIT gate skipped (see
  /// join::ExecResult::rows_skipped_by_limit); nonzero means LIMIT-k
  /// early exit actually cut work.
  uint64_t rows_skipped_by_limit = 0;

  /// Data-content version of the snapshot this result was computed
  /// against (see mut::MvccSnapshot::data_version). Result caches key
  /// entries on it: equal versions mean identical store contents.
  uint64_t data_version = 0;
  // Serving-path provenance, for caching metrics and tests.
  bool plan_cached = false;    ///< parse+optimize skipped (plan cache hit)
  bool result_cached = false;  ///< rows served straight from the result cache
  bool shared_scan = false;    ///< executed inside a shared-scan group

  /// Actual intermediate tuples per plan step (EXPLAIN ANALYZE data; see
  /// join::ExecResult::step_rows). Empty for UNION queries.
  std::vector<uint64_t> step_rows;
  join::SearchCounters counters;
  /// Per-worker morsel tallies (kMorsel multi-thread runs; see
  /// join::ExecResult::morsel_workers). Empty for UNION queries.
  std::vector<join::MorselWorkerStats> morsel_workers;
  double parse_millis = 0.0;
  double optimize_millis = 0.0;
  double execute_millis = 0.0;
  /// Max-shard execution time (the straggler wall model); for shaped
  /// queries the serial shaping tail (aggregate merge, ORDER BY sort) is
  /// added on top, since it runs after the shards on one thread.
  double emulated_parallel_millis = 0.0;
  std::vector<double> shard_millis;
  join::ProbeTrace trace;
  query::Plan plan;

  /// parse + optimize + execute (wall model); for emulated parallel runs
  /// use emulated_total_millis() instead.
  double total_millis() const {
    return parse_millis + optimize_millis + execute_millis;
  }
  /// parse + optimize + max-shard execution time: models the wall time of
  /// a true multi-core run (parsing/optimization are single-threaded in
  /// the paper too and dominate very selective queries, §5.2.3).
  double emulated_total_millis() const {
    return parse_millis + optimize_millis + emulated_parallel_millis;
  }
};

/// The public PARJ facade: loads RDF data into the in-memory store and
/// evaluates SPARQL BGP queries with the parallel adaptive join.
///
/// Typical use:
///
///   auto engine = ParjEngine::FromNTriplesFile("data.nt").value();
///   QueryOptions opts;
///   opts.num_threads = 16;
///   auto result = engine.Execute(
///       "SELECT ?x WHERE { ?x <p> ?y . ?y <q> <o> }", opts).value();
///   for (size_t r = 0; r < result.row_count; ++r)
///     Print(engine.DecodeRow(result, r));
class ParjEngine {
 public:
  /// Builds from string-level triples.
  static Result<ParjEngine> FromTriples(const std::vector<rdf::Triple>& triples,
                                        const EngineOptions& options = {});

  /// Parses `text` as N-Triples and builds.
  static Result<ParjEngine> FromNTriplesText(std::string_view text,
                                             const EngineOptions& options = {});

  /// Reads and parses an N-Triples file and builds.
  static Result<ParjEngine> FromNTriplesFile(const std::string& path,
                                             const EngineOptions& options = {});

  /// Builds from an already-encoded dataset (the workload generators emit
  /// this form directly, skipping string materialization).
  static Result<ParjEngine> FromEncoded(dict::Dictionary dict,
                                        std::vector<EncodedTriple> triples,
                                        const EngineOptions& options = {});

  /// Loads a snapshot file (see storage/snapshot.h) and wraps it, using
  /// options.load.threads for the parallel snapshot decode.
  static Result<ParjEngine> FromSnapshotFile(const std::string& path,
                                             const EngineOptions& options = {});

  /// Rebuilds an engine from a WAL directory (DESIGN.md §14): loads the
  /// checkpoint snapshot, replays the logged mutation batches in order
  /// (overlay TermIds re-allocate deterministically, so the recovered
  /// store is row-identical to the acknowledged prefix), truncates any
  /// torn tail, and resumes logging on a fresh segment. NotFound when the
  /// directory has no manifest (use a load path with options.wal set, or
  /// EnableWal); kDataLoss on unrecoverable corruption.
  static Result<ParjEngine> RecoverFromWal(const mut::WalOptions& wal,
                                           const EngineOptions& options = {});

  /// Wraps an already-built database (e.g. one loaded from a snapshot —
  /// see storage/snapshot.h).
  static ParjEngine FromDatabase(storage::Database db) {
    return ParjEngine(std::move(db), join::CalibrationOptions{});
  }

  ParjEngine(ParjEngine&&) = default;
  ParjEngine& operator=(ParjEngine&&) = default;

  /// Parses, plans and executes a SPARQL query.
  Result<QueryResult> Execute(std::string_view sparql,
                              const QueryOptions& options = {}) const;

  /// Executes, streaming every projected row to `visitor` instead of
  /// materializing (the paper's iterator-style result handling, §5.2).
  /// The returned QueryResult carries counts/timings but no rows.
  /// Restrictions: DISTINCT is rejected (it requires buffering); with
  /// num_threads > 1 and no emulation the visitor is called concurrently
  /// from different shards.
  Result<QueryResult> ExecuteStreaming(std::string_view sparql,
                                       const QueryOptions& options,
                                       const join::RowVisitor& visitor) const;

  /// Parses and plans without executing.
  Result<query::Plan> Explain(std::string_view sparql,
                              const query::OptimizerOptions& options = {}) const;

  /// Executes an already-optimized plan, skipping parse/encode/optimize —
  /// the plan-cache fast path. The plan must have been produced by
  /// Optimize() against this engine (TermIds are stable across
  /// compactions, so cached plans stay valid). When `pinned` is non-null
  /// the query runs against that snapshot; otherwise the current epoch is
  /// pinned. Applies the same DISTINCT / LIMIT / result-mode tail as
  /// Execute().
  Result<QueryResult> ExecutePlan(const query::Plan& plan,
                                  const QueryOptions& options,
                                  const mut::MvccSnapshot* pinned =
                                      nullptr) const;

  /// Executes several plans that share an identical leading scan in one
  /// pipeline pass over one pinned snapshot (shared-scan batching): the
  /// leading table is iterated once and every key range is pushed through
  /// each member's residual pipeline. Returns one result per plan, each
  /// row-identical to a solo ExecutePlan of that member. All members run
  /// under options[i]; plans.size() must equal options.size().
  Result<std::vector<QueryResult>> ExecuteShared(
      std::span<const query::Plan* const> plans,
      std::span<const QueryOptions> options) const;

  /// Runs Algorithm 2 on all replicas (idempotent; repeatable). Must not
  /// race with queries — a load-time / maintenance-window operation.
  void Calibrate() { store_->CalibrateBase(calibration_options_); }

  // ---- Live mutability (DESIGN.md §12) ---------------------------------
  // The engine serves queries over an MVCC store: every Execute pins an
  // epoch snapshot (base CSR store + pending-write delta), so readers are
  // never blocked by writers or compaction and always see a transaction-
  // consistent view.

  /// Inserts one triple (no-op if already present). Unseen terms get IDs
  /// past the base dictionary, stable across compactions.
  Status Insert(const rdf::Triple& triple) { return store_->Insert(triple); }

  /// Removes one triple (no-op if absent).
  Status Remove(const rdf::Triple& triple) { return store_->Remove(triple); }

  /// Applies a batch atomically: queries see none or all of it.
  Status ApplyBatch(std::span<const mut::Mutation> mutations) {
    return store_->Apply(mutations);
  }

  /// Synchronously folds the pending delta into a rebuilt base (parallel
  /// build path) and bumps the epoch. AlreadyExists when a compaction is
  /// already in flight; on any failure the serving snapshot is untouched.
  Status Compact() { return store_->Compact(); }

  /// Pins the current epoch's read view.
  mut::MvccSnapshot snapshot() const { return store_->snapshot(); }

  /// Serving gauges: delta sizes, compaction counters, live epochs.
  mut::MutationStats mutation_stats() const { return store_->stats(); }

  /// Data-content version of the current epoch: bumps on every mutation,
  /// unchanged across compaction (result-cache invalidation key).
  uint64_t data_version() const { return store_->data_version(); }

  /// Plan-statistics generation: bumps when compaction or recalibration
  /// changes the base statistics (plan-cache freshness key).
  uint64_t plan_generation() const { return store_->plan_generation(); }

  // ---- Crash durability (DESIGN.md §14) --------------------------------

  /// Starts write-ahead logging for this engine: initializes a fresh WAL
  /// directory from the current base + epoch and attaches it, so every
  /// subsequent mutation is logged before it is applied and acknowledged
  /// only once durable. AlreadyExists if this engine already logs or the
  /// directory holds a manifest. Call before serving writes.
  Status EnableWal(const mut::WalOptions& options);

  bool wal_enabled() const { return wal_ != nullptr; }

  /// Log-writer counters (all zero when WAL is disabled).
  mut::WalStats wal_stats() const {
    return wal_ != nullptr ? wal_->stats() : mut::WalStats{};
  }

  /// What recovery replayed (all zero unless this engine came from
  /// RecoverFromWal).
  const mut::RecoveryStats& recovery_stats() const { return recovery_stats_; }
  bool recovered() const { return recovered_; }

  /// The underlying MVCC store, for wiring a background mut::Compactor.
  mut::DeltaStore* delta_store() { return store_.get(); }
  const mut::DeltaStore* delta_store() const { return store_.get(); }

  /// The current epoch's base database (no pending writes). Valid until
  /// the next successful Compact(); callers that run queries should pin
  /// snapshot() instead.
  const storage::Database& database() const { return store_->base(); }

  /// Phase breakdown of the load that produced this engine (zeroed for
  /// FromDatabase-wrapped instances).
  const LoadStats& load_stats() const { return load_stats_; }

  /// Decodes one materialized row to N-Triples term strings.
  std::vector<std::string> DecodeRow(const QueryResult& result,
                                     size_t row) const;

 private:
  explicit ParjEngine(storage::Database db, join::CalibrationOptions calibration,
                      storage::DatabaseOptions database_options = {},
                      uint64_t initial_epoch = 0)
      : calibration_options_(calibration) {
    mut::DeltaStoreOptions store_options;
    store_options.database = database_options;
    store_options.calibration = calibration;
    store_options.initial_epoch = initial_epoch;
    store_ = std::make_unique<mut::DeltaStore>(std::move(db), store_options);
  }

  /// Shared tail of every load path: build the store (threaded per
  /// `options`), calibrate if asked, and finalize `stats`.
  static Result<ParjEngine> FinishLoad(dict::Dictionary dict,
                                       std::vector<EncodedTriple> triples,
                                       const EngineOptions& options,
                                       LoadStats stats);

  /// The MVCC store: immutable base + pending-write delta behind epoch
  /// snapshots. unique_ptr keeps the engine movable (DeltaStore holds
  /// mutexes).
  std::unique_ptr<mut::DeltaStore> store_;
  /// Optional write-ahead log the store is attached to. Declared after
  /// store_ so it is destroyed (flushed, writer joined) first, while the
  /// store it logs for is still alive.
  std::unique_ptr<mut::Wal> wal_;
  join::CalibrationOptions calibration_options_;
  LoadStats load_stats_;
  mut::RecoveryStats recovery_stats_;
  bool recovered_ = false;
};

}  // namespace parj::engine

#endif  // PARJ_ENGINE_PARJ_ENGINE_H_
