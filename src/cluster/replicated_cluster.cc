#include "cluster/replicated_cluster.h"

#include <algorithm>

#include "common/timer.h"
#include "query/algebra.h"
#include "query/parser.h"
#include "server/thread_pool.h"

namespace parj::cluster {

Result<ClusterResult> ReplicatedCluster::Execute(
    std::string_view sparql) const {
  PARJ_ASSIGN_OR_RETURN(query::SelectQueryAst ast, query::ParseQuery(sparql));
  PARJ_ASSIGN_OR_RETURN(query::EncodedQuery encoded,
                        query::EncodeQuery(ast, *db_));
  PARJ_ASSIGN_OR_RETURN(query::Plan plan,
                        query::Optimize(encoded, *db_, options_.optimizer));
  return ExecutePlan(plan);
}

Result<ClusterResult> ReplicatedCluster::ExecutePlan(
    const query::Plan& plan) const {
  const int nodes = std::max(1, options_.nodes);
  ClusterResult result;
  result.column_count = plan.projection.size();
  result.node_rows.assign(nodes, 0);
  result.node_millis.assign(nodes, 0.0);

  std::vector<Result<join::ExecResult>> node_results;
  node_results.reserve(nodes);
  for (int n = 0; n < nodes; ++n) {
    node_results.emplace_back(Status::Internal("node did not run"));
  }

  // One pool task per node; each node's Executor fans out into
  // threads_per_node shards within its slice (also on the shared pool).
  auto node_body = [&](int node) {
    join::Executor executor(db_);
    join::ExecOptions exec;
    exec.num_threads = options_.threads_per_node;
    exec.strategy = options_.strategy;
    exec.scheduling = options_.scheduling;
    exec.mode = options_.mode;
    exec.total_workers = nodes;
    exec.worker_index = node;
    Stopwatch timer;
    node_results[node] = executor.Execute(plan, exec);
    result.node_millis[node] = timer.ElapsedMillis();
  };
  server::ThreadPool::Shared().ParallelFor(
      static_cast<size_t>(nodes),
      [&](size_t node) { node_body(static_cast<int>(node)); });

  // Final gather (the only cross-node traffic).
  for (int n = 0; n < nodes; ++n) {
    if (!node_results[n].ok()) return node_results[n].status();
    const join::ExecResult& node = *node_results[n];
    result.row_count += node.row_count;
    result.node_rows[n] = node.row_count;
    result.counters.Add(node.counters);
    if (options_.mode == join::ResultMode::kMaterialize) {
      result.rows.insert(result.rows.end(), node.rows.begin(),
                         node.rows.end());
    }
  }
  result.gathered_tuples = result.row_count;
  result.max_node_millis =
      *std::max_element(result.node_millis.begin(), result.node_millis.end());
  return result;
}

}  // namespace parj::cluster
