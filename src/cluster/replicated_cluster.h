#ifndef PARJ_CLUSTER_REPLICATED_CLUSTER_H_
#define PARJ_CLUSTER_REPLICATED_CLUSTER_H_

#include <string_view>
#include <vector>

#include "common/status.h"
#include "join/executor.h"
#include "query/optimizer.h"
#include "storage/database.h"

namespace parj::cluster {

/// Simulation of the paper's §6 cluster design: "it is straightforward to
/// extend PARJ to a 'cluster' version through full replication, such that
/// during query execution each worker starts processing from a different
/// initial shard" — with zero communication during the join.
///
/// Every node holds a full replica of the database (here: a shared
/// read-only pointer, byte-identical to what each machine would hold);
/// a query is planned once and each node executes only its slice of the
/// first step's work range, multi-threaded locally. The only cross-node
/// traffic is the final result gather, which the result quantifies.
struct ClusterOptions {
  int nodes = 2;
  int threads_per_node = 1;
  join::SearchStrategy strategy = join::SearchStrategy::kAdaptiveBinary;
  join::ResultMode mode = join::ResultMode::kCount;
  /// Intra-node work distribution (see join::Scheduling). Node slices
  /// stay statically partitioned — the paper's zero-communication cluster
  /// contract — but within its slice each node balances dynamically.
  join::Scheduling scheduling = join::Scheduling::kMorsel;
  query::OptimizerOptions optimizer;
};

struct ClusterResult {
  uint64_t row_count = 0;
  size_t column_count = 0;
  std::vector<TermId> rows;           ///< gathered (kMaterialize only)
  std::vector<uint64_t> node_rows;    ///< rows produced per node
  std::vector<double> node_millis;    ///< per-node execution wall time
  double max_node_millis = 0.0;       ///< the cluster's modelled wall time
  /// Tuples crossing node boundaries: exactly the final gather — PARJ's
  /// cluster design exchanges nothing during the join.
  uint64_t gathered_tuples = 0;
  join::SearchCounters counters;
};

class ReplicatedCluster {
 public:
  ReplicatedCluster(const storage::Database* db, ClusterOptions options)
      : db_(db), options_(options) {}

  /// Plans once and executes the query across all nodes (each node runs
  /// on its own thread group), gathering the per-node results.
  Result<ClusterResult> Execute(std::string_view sparql) const;

  /// Executes an already-built plan.
  Result<ClusterResult> ExecutePlan(const query::Plan& plan) const;

 private:
  const storage::Database* db_;
  ClusterOptions options_;
};

}  // namespace parj::cluster

#endif  // PARJ_CLUSTER_REPLICATED_CLUSTER_H_
