#include "baseline/baseline_engine.h"

#include <gtest/gtest.h>

#include "baseline/exchange_engine.h"
#include "baseline/hash_join_engine.h"
#include "baseline/naive_engine.h"
#include "baseline/sort_merge_engine.h"
#include "common/rng.h"
#include "join/executor.h"
#include "query/optimizer.h"
#include "test_util.h"

namespace parj::baseline {
namespace {

using test::Encode;
using test::MakeDatabase;
using test::Spec;
using test::ToSortedRows;

const Spec kPaperExample = {
    {"ProfessorA", "teaches", "Mathematics"},
    {"ProfessorB", "teaches", "Chemistry"},
    {"ProfessorC", "teaches", "Literature"},
    {"ProfessorA", "teaches", "Physics"},
    {"ProfessorA", "worksFor", "University1"},
    {"ProfessorB", "worksFor", "University2"},
    {"ProfessorC", "worksFor", "University2"},
};

std::vector<std::vector<TermId>> RunEngine(const BaselineEngine& engine,
                                     const query::EncodedQuery& q) {
  auto r = engine.Execute(q);
  EXPECT_TRUE(r.ok()) << engine.name() << ": " << r.status().ToString();
  return ToSortedRows(r->rows, r->column_count);
}

TEST(NaiveEngineTest, PaperExample) {
  auto db = MakeDatabase(kPaperExample);
  auto q = Encode(
      "SELECT ?x ?y ?z WHERE { ?x <teaches> ?z . ?x <worksFor> ?y }", db);
  NaiveEngine naive(&db);
  auto r = naive.Execute(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_count, 4u);
}

TEST(NaiveEngineTest, DistinctAndLimit) {
  auto db = MakeDatabase({{"a", "p", "x"}, {"a", "p", "y"}, {"b", "p", "x"}});
  NaiveEngine naive(&db);
  auto distinct = naive.Execute(Encode("SELECT DISTINCT ?s WHERE { ?s <p> ?o }", db));
  ASSERT_TRUE(distinct.ok());
  EXPECT_EQ(distinct->row_count, 2u);
  auto limited =
      naive.Execute(Encode("SELECT ?s WHERE { ?s <p> ?o } LIMIT 2", db));
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited->row_count, 2u);
}

TEST(NaiveEngineTest, KnownEmpty) {
  auto db = MakeDatabase(kPaperExample);
  auto q = Encode("SELECT ?x WHERE { ?x <teaches> <nosuch> }", db);
  NaiveEngine naive(&db);
  auto r = naive.Execute(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_count, 0u);
}

TEST(HashJoinEngineTest, MatchesNaive) {
  auto db = MakeDatabase(kPaperExample);
  auto q = Encode(
      "SELECT ?x ?y ?z WHERE { ?x <teaches> ?z . ?x <worksFor> ?y }", db);
  NaiveEngine naive(&db);
  HashJoinEngine hash(&db);
  EXPECT_EQ(RunEngine(naive, q), RunEngine(hash, q));
}

TEST(HashJoinEngineTest, ReportsPeakIntermediate) {
  auto db = MakeDatabase(kPaperExample);
  auto q = Encode(
      "SELECT ?x ?y ?z WHERE { ?x <teaches> ?z . ?x <worksFor> ?y }", db);
  HashJoinEngine hash(&db);
  auto r = hash.Execute(q);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r->peak_intermediate, r->row_count);
}

TEST(SortMergeEngineTest, MatchesNaive) {
  auto db = MakeDatabase(kPaperExample);
  auto q = Encode(
      "SELECT ?x ?y ?z WHERE { ?x <teaches> ?z . ?x <worksFor> ?y }", db);
  NaiveEngine naive(&db);
  SortMergeEngine merge(&db);
  EXPECT_EQ(RunEngine(naive, q), RunEngine(merge, q));
}

TEST(ExchangeEngineTest, MatchesNaive) {
  auto db = MakeDatabase(kPaperExample);
  auto q = Encode(
      "SELECT ?x ?y ?z WHERE { ?x <teaches> ?z . ?x <worksFor> ?y }", db);
  NaiveEngine naive(&db);
  ExchangeEngine exchange(&db, {.num_workers = 3});
  EXPECT_EQ(RunEngine(naive, q), RunEngine(exchange, q));
}

TEST(ExchangeEngineTest, CountsCommunication) {
  Spec spec;
  for (int i = 0; i < 200; ++i) {
    spec.push_back({"s" + std::to_string(i), "p", "m" + std::to_string(i)});
    spec.push_back({"m" + std::to_string(i), "q", "t" + std::to_string(i % 3)});
  }
  auto db = MakeDatabase(spec);
  auto q = Encode("SELECT * WHERE { ?a <p> ?b . ?b <q> ?c }", db);
  ExchangeEngine exchange(&db, {.num_workers = 4});
  auto r = exchange.Execute(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_count, 200u);
  // One repartition plus the final gather must move tuples around.
  EXPECT_GT(r->exchanged_tuples, 0u);
  EXPECT_GT(r->barriers, 1u);
}

TEST(ExchangeEngineTest, SingleWorkerDegenerates) {
  auto db = MakeDatabase(kPaperExample);
  auto q = Encode(
      "SELECT ?x ?y ?z WHERE { ?x <teaches> ?z . ?x <worksFor> ?y }", db);
  NaiveEngine naive(&db);
  ExchangeEngine exchange(&db, {.num_workers = 1});
  EXPECT_EQ(RunEngine(naive, q), RunEngine(exchange, q));
}

TEST(BaselineEnginesTest, CartesianProducts) {
  auto db = MakeDatabase({{"a", "p", "b"}, {"c", "p", "d"},
                          {"x", "q", "y"}, {"z", "q", "w"}});
  auto q = Encode("SELECT * WHERE { ?a <p> ?b . ?c <q> ?d }", db);
  NaiveEngine naive(&db);
  HashJoinEngine hash(&db);
  SortMergeEngine merge(&db);
  ExchangeEngine exchange(&db, {.num_workers = 2});
  auto expected = RunEngine(naive, q);
  EXPECT_EQ(expected.size(), 4u);
  EXPECT_EQ(RunEngine(hash, q), expected);
  EXPECT_EQ(RunEngine(merge, q), expected);
  EXPECT_EQ(RunEngine(exchange, q), expected);
}

TEST(BaselineEnginesTest, SelfJoinVariable) {
  auto db = MakeDatabase({{"a", "p", "a"}, {"a", "p", "b"}, {"c", "p", "c"}});
  auto q = Encode("SELECT ?x WHERE { ?x <p> ?x }", db);
  NaiveEngine naive(&db);
  auto expected = RunEngine(naive, q);
  EXPECT_EQ(expected.size(), 2u);
  HashJoinEngine hash(&db);
  SortMergeEngine merge(&db);
  ExchangeEngine exchange(&db, {.num_workers = 2});
  EXPECT_EQ(RunEngine(hash, q), expected);
  EXPECT_EQ(RunEngine(merge, q), expected);
  EXPECT_EQ(RunEngine(exchange, q), expected);
}

TEST(GreedyPatternOrderTest, ConstantsFirstThenConnected) {
  auto db = MakeDatabase(kPaperExample);
  auto q = Encode(
      "SELECT ?x ?z WHERE { ?x <teaches> ?z . ?x <worksFor> <University2> }",
      db);
  auto order = internal::GreedyPatternOrder(db, q);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);  // the constant-filtered pattern leads
}

TEST(PatternPairsTest, FiltersConstants) {
  auto db = MakeDatabase(kPaperExample);
  {
    auto q = Encode("SELECT ?z WHERE { <ProfessorA> <teaches> ?z }", db);
    auto pairs = internal::PatternPairs(db, q.patterns[0]);
    EXPECT_EQ(pairs.size(), 2u);
  }
  {
    auto q = Encode("SELECT ?x WHERE { ?x <worksFor> <University2> }", db);
    auto pairs = internal::PatternPairs(db, q.patterns[0]);
    EXPECT_EQ(pairs.size(), 2u);
  }
  {
    auto q = Encode("SELECT ?x ?y WHERE { ?x <teaches> ?y }", db);
    auto pairs = internal::PatternPairs(db, q.patterns[0]);
    EXPECT_EQ(pairs.size(), 4u);
  }
}

}  // namespace
}  // namespace parj::baseline
