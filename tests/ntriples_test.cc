#include "rdf/ntriples.h"

#include <sstream>

#include <gtest/gtest.h>

namespace parj::rdf {
namespace {

Result<Term> ParseSingleTerm(std::string_view text) {
  size_t pos = 0;
  return ParseTerm(text, &pos);
}

TEST(ParseTermTest, Iri) {
  auto t = ParseSingleTerm("<http://example.org/x>");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->is_iri());
  EXPECT_EQ(t->lexical(), "http://example.org/x");
}

TEST(ParseTermTest, PlainLiteral) {
  auto t = ParseSingleTerm("\"hello world\"");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->is_literal());
  EXPECT_EQ(t->lexical(), "hello world");
}

TEST(ParseTermTest, EscapedLiteral) {
  auto t = ParseSingleTerm(R"("a\"b\nc")");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->lexical(), "a\"b\nc");
}

TEST(ParseTermTest, LangLiteral) {
  auto t = ParseSingleTerm("\"chat\"@fr-CA");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->lang(), "fr-CA");
}

TEST(ParseTermTest, TypedLiteral) {
  auto t = ParseSingleTerm("\"5\"^^<http://www.w3.org/2001/XMLSchema#int>");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->datatype(), "http://www.w3.org/2001/XMLSchema#int");
}

TEST(ParseTermTest, BlankNode) {
  auto t = ParseSingleTerm("_:node42");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->is_blank());
  EXPECT_EQ(t->lexical(), "node42");
}

TEST(ParseTermTest, Errors) {
  EXPECT_FALSE(ParseSingleTerm("<unterminated").ok());
  EXPECT_FALSE(ParseSingleTerm("<>").ok());
  EXPECT_FALSE(ParseSingleTerm("\"unterminated").ok());
  EXPECT_FALSE(ParseSingleTerm("_x").ok());
  EXPECT_FALSE(ParseSingleTerm("_:").ok());
  EXPECT_FALSE(ParseSingleTerm("plainword").ok());
  EXPECT_FALSE(ParseSingleTerm("").ok());
}

TEST(ParseStatementTest, BasicTriple) {
  auto t = ParseStatementLine("<s> <p> <o> .");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->subject.lexical(), "s");
  EXPECT_EQ(t->predicate.lexical(), "p");
  EXPECT_EQ(t->object.lexical(), "o");
}

TEST(ParseStatementTest, LiteralObjectWithDot) {
  auto t = ParseStatementLine("<s> <p> \"v 1.5\" .");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->object.lexical(), "v 1.5");
}

TEST(ParseStatementTest, BlankSubject) {
  auto t = ParseStatementLine("_:b <p> <o> .");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->subject.is_blank());
}

TEST(ParseStatementTest, CommentAndBlankLinesSkipped) {
  EXPECT_EQ(ParseStatementLine("# comment").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ParseStatementLine("   ").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(ParseStatementLine("").status().code(), StatusCode::kNotFound);
}

TEST(ParseStatementTest, Errors) {
  EXPECT_FALSE(ParseStatementLine("<s> <p> <o>").ok());        // missing dot
  EXPECT_FALSE(ParseStatementLine("<s> <p> <o> . extra").ok());
  EXPECT_FALSE(ParseStatementLine("\"lit\" <p> <o> .").ok());  // literal subj
  EXPECT_FALSE(ParseStatementLine("<s> \"p\" <o> .").ok());    // literal pred
  EXPECT_FALSE(ParseStatementLine("<s> _:b <o> .").ok());      // blank pred
  EXPECT_FALSE(ParseStatementLine("<s> <p> .").ok());          // missing obj
}

TEST(NTriplesParserTest, ParsesDocument) {
  const std::string doc =
      "# a comment\n"
      "<a> <p> <b> .\n"
      "\n"
      "<b> <p> \"lit\"@en .\n"
      "<c> <q> \"5\"^^<http://dt> .\n";
  NTriplesParser parser;
  auto triples = parser.ParseToVector(doc);
  ASSERT_TRUE(triples.ok());
  EXPECT_EQ(triples->size(), 3u);
  EXPECT_EQ(parser.parsed_triples(), 3u);
  EXPECT_EQ(parser.skipped_lines(), 0u);
}

TEST(NTriplesParserTest, StrictModeFailsOnBadLine) {
  NTriplesParser parser;
  auto triples = parser.ParseToVector("<a> <p> <b> .\ngarbage\n");
  EXPECT_FALSE(triples.ok());
  EXPECT_EQ(triples.status().code(), StatusCode::kParseError);
}

TEST(NTriplesParserTest, LenientModeSkipsBadLines) {
  NTriplesParser::Options opts;
  opts.strict = false;
  NTriplesParser parser(opts);
  auto triples = parser.ParseToVector("<a> <p> <b> .\ngarbage\n<c> <p> <d> .");
  ASSERT_TRUE(triples.ok());
  EXPECT_EQ(triples->size(), 2u);
  EXPECT_EQ(parser.skipped_lines(), 1u);
}

TEST(NTriplesParserTest, ParsesStream) {
  std::istringstream in("<a> <p> <b> .\n<b> <p> <c> .\n");
  NTriplesParser parser;
  std::vector<Triple> triples;
  ASSERT_TRUE(parser.ParseStream(in, [&](Triple t) {
    triples.push_back(std::move(t));
  }).ok());
  EXPECT_EQ(triples.size(), 2u);
}

TEST(NTriplesParserTest, LastLineWithoutNewline) {
  NTriplesParser parser;
  auto triples = parser.ParseToVector("<a> <p> <b> .");
  ASSERT_TRUE(triples.ok());
  EXPECT_EQ(triples->size(), 1u);
}

TEST(WriteNTriplesTest, RoundTrip) {
  std::vector<Triple> triples = {
      {Term::Iri("http://a"), Term::Iri("http://p"), Term::Literal("x\ny")},
      {Term::Blank("b0"), Term::Iri("http://p"),
       Term::LangLiteral("hi", "en")},
      {Term::Iri("http://c"), Term::Iri("http://q"),
       Term::TypedLiteral("1", "http://dt")},
  };
  std::ostringstream out;
  WriteNTriples(triples, out);
  NTriplesParser parser;
  auto parsed = parser.ParseToVector(out.str());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, triples);
}

}  // namespace
}  // namespace parj::rdf
