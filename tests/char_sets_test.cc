#include "storage/char_sets.h"

#include <gtest/gtest.h>

#include "query/optimizer.h"
#include "test_util.h"
#include "workload/lubm.h"

namespace parj::storage {
namespace {

using test::Encode;
using test::MakeDatabase;
using test::Spec;

/// Three kinds of subjects: {p, q}, {p}, {q, r}.
Spec StarSpec() {
  Spec spec;
  for (int i = 0; i < 10; ++i) {
    spec.push_back({"both" + std::to_string(i), "p", "x"});
    spec.push_back({"both" + std::to_string(i), "q", "y"});
  }
  for (int i = 0; i < 20; ++i) {
    spec.push_back({"only_p" + std::to_string(i), "p", "x"});
  }
  for (int i = 0; i < 5; ++i) {
    spec.push_back({"qr" + std::to_string(i), "q", "y"});
    spec.push_back({"qr" + std::to_string(i), "r", "z"});
  }
  return spec;
}

DatabaseOptions WithCharSets() {
  DatabaseOptions opts;
  opts.build_characteristic_sets = true;
  return opts;
}

PredicateId Pred(const Database& db, const std::string& name) {
  return db.dictionary().LookupPredicate(rdf::Term::Iri(name));
}

TEST(CharacteristicSetsTest, CountsDistinctSets) {
  Database db = MakeDatabase(StarSpec(), WithCharSets());
  const CharacteristicSets* cs = db.characteristic_sets();
  ASSERT_NE(cs, nullptr);
  EXPECT_EQ(cs->set_count(), 3u);  // {p,q}, {p}, {q,r}
  EXPECT_EQ(cs->subject_count(), 35u);
  EXPECT_FALSE(cs->truncated());
}

TEST(CharacteristicSetsTest, DistinctSubjectEstimatesAreExact) {
  Database db = MakeDatabase(StarSpec(), WithCharSets());
  const CharacteristicSets& cs = *db.characteristic_sets();
  PredicateId p = Pred(db, "p");
  PredicateId q = Pred(db, "q");
  PredicateId r = Pred(db, "r");
  EXPECT_DOUBLE_EQ(cs.EstimateDistinctSubjects({p}), 30.0);     // both + only_p
  EXPECT_DOUBLE_EQ(cs.EstimateDistinctSubjects({q}), 15.0);     // both + qr
  EXPECT_DOUBLE_EQ(cs.EstimateDistinctSubjects({p, q}), 10.0);  // both
  EXPECT_DOUBLE_EQ(cs.EstimateDistinctSubjects({q, r}), 5.0);   // qr
  EXPECT_DOUBLE_EQ(cs.EstimateDistinctSubjects({p, r}), 0.0);
  EXPECT_DOUBLE_EQ(cs.EstimateDistinctSubjects({p, q, r}), 0.0);
}

TEST(CharacteristicSetsTest, StarCardinalityExactForSingleValued) {
  // All properties single-valued in StarSpec, so star rows == subjects.
  Database db = MakeDatabase(StarSpec(), WithCharSets());
  const CharacteristicSets& cs = *db.characteristic_sets();
  PredicateId p = Pred(db, "p");
  PredicateId q = Pred(db, "q");
  EXPECT_DOUBLE_EQ(cs.EstimateStarCardinality({p, q}), 10.0);
  EXPECT_DOUBLE_EQ(cs.EstimateStarCardinality({p}), 30.0);
}

TEST(CharacteristicSetsTest, StarCardinalityCountsMultiplicities) {
  // One subject with 3 p-values and 2 q-values: the star has 6 rows.
  Database db = MakeDatabase(
      {
          {"s", "p", "a"},
          {"s", "p", "b"},
          {"s", "p", "c"},
          {"s", "q", "x"},
          {"s", "q", "y"},
      },
      WithCharSets());
  const CharacteristicSets& cs = *db.characteristic_sets();
  EXPECT_DOUBLE_EQ(
      cs.EstimateStarCardinality({Pred(db, "p"), Pred(db, "q")}), 6.0);
}

TEST(CharacteristicSetsTest, DuplicatePredicatesInQueryIgnored) {
  Database db = MakeDatabase(StarSpec(), WithCharSets());
  const CharacteristicSets& cs = *db.characteristic_sets();
  PredicateId p = Pred(db, "p");
  EXPECT_DOUBLE_EQ(cs.EstimateDistinctSubjects({p, p, p}),
                   cs.EstimateDistinctSubjects({p}));
}

TEST(CharacteristicSetsTest, TruncationKeepsPopulousSets) {
  Spec spec;
  // 40 singleton sets (one subject each) plus one huge set.
  for (int i = 0; i < 40; ++i) {
    spec.push_back({"solo" + std::to_string(i),
                    "rare" + std::to_string(i), "x"});
  }
  for (int i = 0; i < 100; ++i) {
    spec.push_back({"big" + std::to_string(i), "common", "x"});
  }
  DatabaseOptions opts;
  opts.build_characteristic_sets = true;
  opts.characteristic_max_sets = 5;
  Database db = MakeDatabase(spec, opts);
  const CharacteristicSets& cs = *db.characteristic_sets();
  EXPECT_TRUE(cs.truncated());
  EXPECT_EQ(cs.set_count(), 5u);
  // The populous set survives truncation.
  EXPECT_DOUBLE_EQ(cs.EstimateDistinctSubjects({Pred(db, "common")}), 100.0);
}

TEST(CharacteristicSetsTest, NotBuiltByDefault) {
  Database db = MakeDatabase(StarSpec());
  EXPECT_EQ(db.characteristic_sets(), nullptr);
}

TEST(CharacteristicSetsTest, OptimizerStarEstimateUsesThem) {
  // Star query over {p, q}: without characteristic sets the optimizer
  // cannot know p and q co-occur on exactly the 10 "both" subjects.
  Database db = MakeDatabase(StarSpec(), WithCharSets());
  auto query = Encode("SELECT * WHERE { ?s <p> ?o1 . ?s <q> ?o2 }", db);
  auto plan = query::Optimize(query, db);
  ASSERT_TRUE(plan.ok());
  // True cardinality is 10; the characteristic-set estimate is exact.
  EXPECT_NEAR(plan->steps.back().estimated_rows, 10.0, 1.0);
}

TEST(CharacteristicSetsTest, OptimizerStillCorrectWithCharSets) {
  workload::GeneratedData data =
      workload::GenerateLubm({.universities = 1, .seed = 42});
  DatabaseOptions opts;
  opts.build_characteristic_sets = true;
  auto db = Database::Build(std::move(data.dict), std::move(data.triples),
                            opts);
  ASSERT_TRUE(db.ok());
  ASSERT_NE(db->characteristic_sets(), nullptr);

  // Execution results with char-set-assisted plans match plain plans.
  for (const auto& q : workload::LubmQueries()) {
    auto ast = query::ParseQuery(q.sparql);
    ASSERT_TRUE(ast.ok());
    auto enc = query::EncodeQuery(*ast, *db);
    ASSERT_TRUE(enc.ok());
    query::OptimizerOptions with;
    query::OptimizerOptions without;
    without.use_characteristic_sets = false;
    auto plan_with = query::Optimize(*enc, *db, with);
    auto plan_without = query::Optimize(*enc, *db, without);
    ASSERT_TRUE(plan_with.ok());
    ASSERT_TRUE(plan_without.ok());
    join::Executor executor(&*db);
    join::ExecOptions exec;
    exec.mode = join::ResultMode::kCount;
    auto r1 = executor.Execute(*plan_with, exec);
    auto r2 = executor.Execute(*plan_without, exec);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ(r1->row_count, r2->row_count) << q.name;
  }
}

}  // namespace
}  // namespace parj::storage
