// Query normalization + plan cache: shape keys must identify exactly the
// queries that can share an optimized plan skeleton, and BindTemplate
// must produce plans row-identical to a fresh parse + optimize.

#include "query/plan_cache.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "engine/parj_engine.h"
#include "query/normalize.h"
#include "query/parser.h"

namespace parj::query {
namespace {

NormalizedQuery Normalize(const std::string& sparql) {
  auto ast = ParseQuery(sparql);
  PARJ_CHECK(ast.ok()) << ast.status().ToString();
  return NormalizeQuery(*ast);
}

engine::ParjEngine MakeEngine() {
  // Small, structured dataset: people work for departments, departments
  // belong to organizations, people know people.
  std::vector<rdf::Triple> triples;
  auto iri = [](const std::string& name) {
    return rdf::Term::Iri("http://x/" + name);
  };
  for (int p = 0; p < 20; ++p) {
    triples.push_back({iri("p" + std::to_string(p)), iri("worksFor"),
                       iri("d" + std::to_string(p % 4))});
    triples.push_back({iri("p" + std::to_string(p)), iri("knows"),
                       iri("p" + std::to_string((p + 1) % 20))});
  }
  for (int d = 0; d < 4; ++d) {
    triples.push_back({iri("d" + std::to_string(d)), iri("partOf"),
                       iri("o" + std::to_string(d % 2))});
  }
  auto engine = engine::ParjEngine::FromTriples(triples);
  PARJ_CHECK(engine.ok()) << engine.status().ToString();
  return std::move(engine).value();
}

std::vector<std::vector<TermId>> SortedRows(const engine::QueryResult& r) {
  std::vector<std::vector<TermId>> rows;
  if (r.column_count == 0) return rows;
  rows.reserve(r.row_count);
  for (size_t i = 0; i < r.rows.size(); i += r.column_count) {
    rows.emplace_back(r.rows.begin() + i,
                      r.rows.begin() + i + r.column_count);
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(NormalizeTest, SameShapeDifferentConstantsShareKey) {
  NormalizedQuery a = Normalize(
      "SELECT ?x WHERE { ?x <http://x/worksFor> <http://x/d0> }");
  NormalizedQuery b = Normalize(
      "SELECT ?x WHERE { ?x <http://x/worksFor> <http://x/d3> }");
  ASSERT_TRUE(a.eligible) << a.ineligible_reason;
  ASSERT_TRUE(b.eligible);
  EXPECT_EQ(a.shape_key, b.shape_key);
  ASSERT_EQ(a.params.size(), 2u);  // predicate + object
  EXPECT_NE(a.params[1].lexical(), b.params[1].lexical());
}

TEST(NormalizeTest, DifferentStructureDiffersInKey) {
  NormalizedQuery base = Normalize(
      "SELECT ?x WHERE { ?x <http://x/worksFor> <http://x/d0> }");
  // Constant in a different slot, different projection, added pattern,
  // DISTINCT, LIMIT: all must change the key.
  for (const char* other :
       {"SELECT ?x WHERE { <http://x/d0> <http://x/worksFor> ?x }",
        "SELECT * WHERE { ?x <http://x/worksFor> <http://x/d0> }",
        "SELECT ?x WHERE { ?x <http://x/worksFor> <http://x/d0> . "
        "?x <http://x/knows> ?y }",
        "SELECT DISTINCT ?x WHERE { ?x <http://x/worksFor> <http://x/d0> }",
        "SELECT ?x WHERE { ?x <http://x/worksFor> <http://x/d0> } LIMIT 5"}) {
    NormalizedQuery n = Normalize(other);
    ASSERT_TRUE(n.eligible) << other << ": " << n.ineligible_reason;
    EXPECT_NE(n.shape_key, base.shape_key) << other;
  }
}

TEST(NormalizeTest, SharedVariableStructureIsPartOfTheKey) {
  // ?y joining the two patterns vs. two independent variables.
  NormalizedQuery joined = Normalize(
      "SELECT ?x WHERE { ?x <http://x/worksFor> ?y . "
      "?y <http://x/partOf> ?z }");
  NormalizedQuery cross = Normalize(
      "SELECT ?x WHERE { ?x <http://x/worksFor> ?y . "
      "?w <http://x/partOf> ?z }");
  ASSERT_TRUE(joined.eligible);
  ASSERT_TRUE(cross.eligible);
  EXPECT_NE(joined.shape_key, cross.shape_key);
}

TEST(NormalizeTest, IneligibleShapes) {
  // Variable predicate.
  EXPECT_FALSE(
      Normalize("SELECT ?x WHERE { ?x ?p <http://x/d0> }").eligible);
  // Ordering filter (compiled to an epoch-specific bitmap).
  EXPECT_FALSE(
      Normalize("SELECT ?x WHERE { ?x <http://x/worksFor> ?y . "
                "FILTER(?y > 1) }")
          .eligible);
  // Constant-constant filter (folded by value at encode time).
  EXPECT_FALSE(
      Normalize("SELECT ?x WHERE { ?x <http://x/worksFor> ?y . "
                "FILTER(<http://x/d0> = <http://x/d0>) }")
          .eligible);
  // Equality filters between variables and constants stay eligible.
  EXPECT_TRUE(
      Normalize("SELECT ?x WHERE { ?x <http://x/worksFor> ?y . "
                "FILTER(?y != <http://x/d0>) }")
          .eligible);
}

TEST(PlanCacheTest, BindTemplateMatchesFreshOptimize) {
  engine::ParjEngine engine = MakeEngine();
  const std::string q_template =
      "SELECT ?x ?o WHERE { ?x <http://x/worksFor> ?d . "
      "?d <http://x/partOf> ?o . ?x <http://x/knows> <http://x/p1> }";
  const std::string q_bound =
      "SELECT ?x ?o WHERE { ?x <http://x/worksFor> ?d . "
      "?d <http://x/partOf> ?o . ?x <http://x/knows> <http://x/p7> }";
  NormalizedQuery norm_t = Normalize(q_template);
  NormalizedQuery norm_b = Normalize(q_bound);
  ASSERT_TRUE(norm_t.eligible);
  ASSERT_EQ(norm_t.shape_key, norm_b.shape_key);

  auto tmpl = engine.Explain(q_template);
  ASSERT_TRUE(tmpl.ok()) << tmpl.status().ToString();
  const mut::MvccSnapshot snap = engine.snapshot();
  auto bound =
      BindTemplate(*tmpl, norm_b, snap.base(), &snap.delta().overlay());
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_FALSE(bound->known_empty);

  engine::QueryOptions options;
  auto via_template = engine.ExecutePlan(*bound, options);
  auto via_fresh = engine.Execute(q_bound, options);
  ASSERT_TRUE(via_template.ok());
  ASSERT_TRUE(via_fresh.ok());
  EXPECT_EQ(via_template->row_count, via_fresh->row_count);
  EXPECT_EQ(SortedRows(*via_template), SortedRows(*via_fresh));
  EXPECT_EQ(via_template->var_names, via_fresh->var_names);
}

TEST(PlanCacheTest, BindTemplateAbsentTermMeansKnownEmpty) {
  engine::ParjEngine engine = MakeEngine();
  const std::string q_template =
      "SELECT ?x WHERE { ?x <http://x/worksFor> <http://x/d0> }";
  const std::string q_absent =
      "SELECT ?x WHERE { ?x <http://x/worksFor> <http://x/nowhere> }";
  auto tmpl = engine.Explain(q_template);
  ASSERT_TRUE(tmpl.ok());
  const mut::MvccSnapshot snap = engine.snapshot();
  auto bound = BindTemplate(*tmpl, Normalize(q_absent), snap.base(),
                            &snap.delta().overlay());
  ASSERT_TRUE(bound.ok());
  EXPECT_TRUE(bound->known_empty);
  auto result = engine.ExecutePlan(*bound, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->row_count, 0u);
}

TEST(PlanCacheTest, BindTemplateDropsNeFilterOnAbsentTerm) {
  engine::ParjEngine engine = MakeEngine();
  const std::string q_template =
      "SELECT ?x WHERE { ?x <http://x/worksFor> ?y . "
      "FILTER(?y != <http://x/d0>) }";
  const std::string q_absent =
      "SELECT ?x WHERE { ?x <http://x/worksFor> ?y . "
      "FILTER(?y != <http://x/nowhere>) }";
  auto tmpl = engine.Explain(q_template);
  ASSERT_TRUE(tmpl.ok());
  const mut::MvccSnapshot snap = engine.snapshot();
  auto bound = BindTemplate(*tmpl, Normalize(q_absent), snap.base(),
                            &snap.delta().overlay());
  ASSERT_TRUE(bound.ok());
  EXPECT_FALSE(bound->known_empty);
  // No binding can equal an absent term, so '!=' always holds and the
  // bound plan carries no filter at all — same as the encoder's folding.
  EXPECT_TRUE(bound->filters.empty());
  auto via_template = engine.ExecutePlan(*bound, {});
  auto via_fresh = engine.Execute(q_absent, {});
  ASSERT_TRUE(via_template.ok());
  ASSERT_TRUE(via_fresh.ok());
  EXPECT_EQ(SortedRows(*via_template), SortedRows(*via_fresh));
}

TEST(PlanCacheTest, GenerationMismatchIsAMissAndDropsTheEntry) {
  PlanCache cache(8);
  auto plan = std::make_shared<const Plan>();
  cache.InsertBound("q1", /*generation=*/1, /*fingerprint=*/7, plan);
  EXPECT_NE(cache.LookupBound("q1", 1, 7), nullptr);
  EXPECT_EQ(cache.LookupBound("q1", 2, 7), nullptr);  // stale: dropped
  EXPECT_EQ(cache.LookupBound("q1", 1, 7), nullptr);
  cache.InsertBound("q1", 2, 7, plan);
  EXPECT_EQ(cache.LookupBound("q1", 2, 9), nullptr);  // options changed
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 3u);
}

TEST(PlanCacheTest, LruEvictsOldestWithinBudget) {
  PlanCache cache(2);
  auto plan = std::make_shared<const Plan>();
  cache.InsertBound("a", 1, 0, plan);
  cache.InsertBound("b", 1, 0, plan);
  EXPECT_NE(cache.LookupBound("a", 1, 0), nullptr);  // a is now MRU
  cache.InsertBound("c", 1, 0, plan);                // evicts b
  EXPECT_NE(cache.LookupBound("a", 1, 0), nullptr);
  EXPECT_EQ(cache.LookupBound("b", 1, 0), nullptr);
  EXPECT_NE(cache.LookupBound("c", 1, 0), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  // Shape level has its own budget.
  cache.InsertShape("s1", 1, 0, plan);
  cache.InsertShape("s2", 1, 0, plan);
  EXPECT_EQ(cache.size(), 4u);
}

TEST(PlanCacheTest, OptimizerFingerprintSeparatesOptionSets) {
  OptimizerOptions a;
  OptimizerOptions b;
  EXPECT_EQ(OptimizerFingerprint(a), OptimizerFingerprint(b));
  b.use_pair_stats = !b.use_pair_stats;
  EXPECT_NE(OptimizerFingerprint(a), OptimizerFingerprint(b));
  OptimizerOptions c;
  c.forced_order = {1, 0};
  EXPECT_NE(OptimizerFingerprint(a), OptimizerFingerprint(c));
}

}  // namespace
}  // namespace parj::query
