#include "storage/database.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace parj::storage {
namespace {

using test::MakeDatabase;
using test::Spec;

const Spec kTeachesWorksFor = {
    // The paper's §3 running example.
    {"ProfessorA", "teaches", "Mathematics"},
    {"ProfessorB", "teaches", "Chemistry"},
    {"ProfessorC", "teaches", "Literature"},
    {"ProfessorA", "teaches", "Physics"},
    {"ProfessorA", "worksFor", "University1"},
    {"ProfessorB", "worksFor", "University2"},
    {"ProfessorC", "worksFor", "University2"},
};

TEST(DatabaseTest, BuildsOneTablePerProperty) {
  Database db = MakeDatabase(kTeachesWorksFor);
  EXPECT_EQ(db.predicate_count(), 2u);
  EXPECT_EQ(db.total_triples(), 7u);
  const PropertyEntry& teaches = db.entry(1);
  EXPECT_EQ(teaches.table.triple_count(), 4u);
  EXPECT_EQ(teaches.table.distinct_subjects(), 3u);
  EXPECT_EQ(teaches.table.distinct_objects(), 4u);
  const PropertyEntry& works_for = db.entry(2);
  EXPECT_EQ(works_for.table.triple_count(), 3u);
  EXPECT_EQ(works_for.table.distinct_objects(), 2u);
}

TEST(DatabaseTest, DuplicateTriplesCollapse) {
  Database db = MakeDatabase({{"a", "p", "b"}, {"a", "p", "b"}});
  EXPECT_EQ(db.total_triples(), 1u);
}

TEST(DatabaseTest, FindEntryRangeChecks) {
  Database db = MakeDatabase({{"a", "p", "b"}});
  EXPECT_NE(db.FindEntry(1), nullptr);
  EXPECT_EQ(db.FindEntry(0), nullptr);
  EXPECT_EQ(db.FindEntry(2), nullptr);
}

TEST(DatabaseTest, RejectsOutOfRangeIds) {
  dict::Dictionary dict;
  dict.EncodeResource(rdf::Term::Iri("a"));
  dict.EncodePredicate(rdf::Term::Iri("p"));
  {
    std::vector<EncodedTriple> bad = {{1, 2, 1}};  // predicate 2 unknown
    EXPECT_FALSE(Database::Build(std::move(dict), std::move(bad)).ok());
  }
  dict::Dictionary dict2;
  dict2.EncodeResource(rdf::Term::Iri("a"));
  dict2.EncodePredicate(rdf::Term::Iri("p"));
  std::vector<EncodedTriple> bad2 = {{1, 1, 99}};  // resource 99 unknown
  EXPECT_FALSE(Database::Build(std::move(dict2), std::move(bad2)).ok());
}

TEST(DatabaseTest, IndexesBuiltWhenRequested) {
  DatabaseOptions with;
  with.build_id_position_indexes = true;
  Database db = MakeDatabase(kTeachesWorksFor, with);
  EXPECT_TRUE(db.entry(1).so_meta.has_index);
  EXPECT_TRUE(db.entry(1).os_meta.has_index);
  // Index agrees with FindKey on every key.
  const TableReplica& so = db.entry(1).table.so();
  for (size_t k = 0; k < so.key_count(); ++k) {
    EXPECT_EQ(db.entry(1).so_meta.id_index.Find(so.KeyAt(k)), k);
  }

  DatabaseOptions without;
  without.build_id_position_indexes = false;
  Database db2 = MakeDatabase(kTeachesWorksFor, without);
  EXPECT_FALSE(db2.entry(1).so_meta.has_index);
}

TEST(DatabaseTest, DefaultThresholdsFollowWindows) {
  DatabaseOptions opts;
  opts.default_binary_window = 100.0;
  opts.default_index_window = 10.0;
  Database db = MakeDatabase(kTeachesWorksFor, opts);
  const ReplicaMeta& meta = db.entry(1).so_meta;
  const double gap = db.entry(1).table.so().AverageKeyGap();
  EXPECT_EQ(meta.threshold_binary,
            join::WindowToValueThreshold(100.0, gap));
  EXPECT_EQ(meta.threshold_index, join::WindowToValueThreshold(10.0, gap));
  EXPECT_EQ(meta.ThresholdFor(join::SearchStrategy::kAdaptiveBinary),
            meta.threshold_binary);
  EXPECT_EQ(meta.ThresholdFor(join::SearchStrategy::kAdaptiveIndex),
            meta.threshold_index);
}

TEST(DatabaseTest, PairStatsExactOnKnownGraph) {
  // teaches subjects: {A, B, C}; worksFor subjects: {A, B, C}.
  Database db = MakeDatabase(kTeachesWorksFor);
  ASSERT_TRUE(db.has_pair_stats());
  auto stat = db.GetPairStat(1, Role::kSubject, 2, Role::kSubject);
  ASSERT_TRUE(stat.has_value());
  EXPECT_EQ(stat->intersection, 3u);
  EXPECT_EQ(stat->pairs_left, 4u);   // teaches pairs over {A,B,C}
  EXPECT_EQ(stat->pairs_right, 3u);  // worksFor pairs over {A,B,C}

  // Orientation flips when queried the other way round.
  auto flipped = db.GetPairStat(2, Role::kSubject, 1, Role::kSubject);
  ASSERT_TRUE(flipped.has_value());
  EXPECT_EQ(flipped->pairs_left, 3u);
  EXPECT_EQ(flipped->pairs_right, 4u);
}

TEST(DatabaseTest, PairStatsSubjectObjectDisjoint) {
  // teaches objects {Mathematics, Chemistry, Literature, Physics} never
  // appear as worksFor subjects.
  Database db = MakeDatabase(kTeachesWorksFor);
  auto stat = db.GetPairStat(1, Role::kObject, 2, Role::kSubject);
  ASSERT_TRUE(stat.has_value());
  EXPECT_EQ(stat->intersection, 0u);
}

TEST(DatabaseTest, PairStatsSameProperty) {
  Database db = MakeDatabase({{"a", "p", "b"}, {"b", "p", "c"}});
  // p's subjects {a, b} vs p's objects {b, c}: intersection {b}.
  auto stat = db.GetPairStat(1, Role::kSubject, 1, Role::kObject);
  ASSERT_TRUE(stat.has_value());
  EXPECT_EQ(stat->intersection, 1u);
  EXPECT_EQ(stat->pairs_left, 1u);   // b's subject run: (b, c)
  EXPECT_EQ(stat->pairs_right, 1u);  // b's object run: (a, b)
}

TEST(DatabaseTest, PairStatsSkippedBeyondColumnLimit) {
  DatabaseOptions opts;
  opts.pairwise_max_columns = 1;  // 2 columns per property > 1
  Database db = MakeDatabase(kTeachesWorksFor, opts);
  EXPECT_FALSE(db.has_pair_stats());
  EXPECT_FALSE(db.GetPairStat(1, Role::kSubject, 2, Role::kSubject)
                   .has_value());
}

TEST(DatabaseTest, CalibrateUpdatesLargeReplicasOnly) {
  // Small tables are skipped by calibration (too small to measure).
  Database db = MakeDatabase(kTeachesWorksFor);
  const int64_t before = db.entry(1).so_meta.threshold_binary;
  join::CalibrationOptions opts;
  opts.searches_per_step = 64;
  opts.max_iterations = 2;
  db.Calibrate(opts);
  EXPECT_EQ(db.entry(1).so_meta.threshold_binary, before);
}

TEST(DatabaseTest, ParallelBuildMatchesSerial) {
  // Larger spec so the parallel build actually splits into ranges.
  Spec spec;
  for (int i = 0; i < 500; ++i) {
    spec.push_back({"s" + std::to_string(i % 37),
                    "p" + std::to_string(i % 7),
                    "o" + std::to_string(i % 53)});
  }
  Database serial = MakeDatabase(spec);
  for (int threads : {2, 8}) {
    DatabaseOptions options;
    options.build_threads = threads;
    Database parallel = MakeDatabase(spec, options);
    ASSERT_EQ(parallel.predicate_count(), serial.predicate_count());
    ASSERT_EQ(parallel.total_triples(), serial.total_triples());
    for (PredicateId pid = 1; pid <= serial.predicate_count(); ++pid) {
      for (ReplicaKind kind : {ReplicaKind::kSO, ReplicaKind::kOS}) {
        const TableReplica& a = serial.entry(pid).table.replica(kind);
        const TableReplica& b = parallel.entry(pid).table.replica(kind);
        ASSERT_EQ(a.key_count(), b.key_count()) << "pid " << pid;
        for (size_t k = 0; k < a.key_count(); ++k) {
          EXPECT_EQ(a.KeyAt(k), b.KeyAt(k));
          ASSERT_EQ(a.RunLength(k), b.RunLength(k));
          const auto run_a = a.Run(k);
          const auto run_b = b.Run(k);
          for (size_t v = 0; v < run_a.size(); ++v) {
            ASSERT_EQ(run_a[v], run_b[v]) << "pid " << pid << " key " << k;
          }
        }
      }
    }
    // Derived statistics agree too.
    auto stat_a = serial.GetPairStat(1, Role::kSubject, 2, Role::kSubject);
    auto stat_b = parallel.GetPairStat(1, Role::kSubject, 2, Role::kSubject);
    ASSERT_EQ(stat_a.has_value(), stat_b.has_value());
    if (stat_a.has_value()) {
      EXPECT_EQ(stat_a->intersection, stat_b->intersection);
      EXPECT_EQ(stat_a->pairs_left, stat_b->pairs_left);
      EXPECT_EQ(stat_a->pairs_right, stat_b->pairs_right);
    }
  }
}

TEST(DatabaseTest, ParallelBuildValidatesIdsWithSameErrors) {
  for (int threads : {1, 8}) {
    DatabaseOptions options;
    options.build_threads = threads;
    dict::Dictionary dict;
    dict.EncodeResource(rdf::Term::Iri("a"));
    dict.EncodePredicate(rdf::Term::Iri("p"));
    std::vector<EncodedTriple> bad = {{1, 1, 1}, {1, 2, 1}};  // predicate 2
    Status status = Database::Build(std::move(dict), std::move(bad), options)
                        .status();
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("predicate id 2"), std::string::npos)
        << threads << " threads: " << status.ToString();
  }
}

TEST(DatabaseTest, BuildTimingsReported) {
  dict::Dictionary dict;
  std::vector<EncodedTriple> triples;
  for (int i = 0; i < 100; ++i) {
    EncodedTriple t;
    t.subject = dict.EncodeResource(rdf::Term::Iri("s" + std::to_string(i)));
    t.predicate = dict.EncodePredicate(rdf::Term::Iri("p"));
    t.object = dict.EncodeResource(rdf::Term::Iri("o" + std::to_string(i)));
    triples.push_back(t);
  }
  BuildTimings timings;
  auto db = Database::Build(std::move(dict), std::move(triples), {}, &timings);
  ASSERT_TRUE(db.ok());
  EXPECT_GE(timings.group_millis, 0.0);
  EXPECT_GE(timings.tables_millis, 0.0);
  EXPECT_GE(timings.meta_millis, 0.0);
}

TEST(DatabaseTest, MemoryUsageAccounting) {
  Database db = MakeDatabase(kTeachesWorksFor);
  EXPECT_GT(db.TableMemoryUsage(), 0u);
  EXPECT_GT(db.DictionaryMemoryUsage(), 0u);
}

TEST(DatabaseTest, MaxResourceId) {
  Database db = MakeDatabase(kTeachesWorksFor);
  EXPECT_EQ(db.max_resource_id(), db.dictionary().resource_count());
}

}  // namespace
}  // namespace parj::storage
